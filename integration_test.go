// Cross-module integration tests: whole pipelines from live store runs
// through recording, derivation, and the theorem constructions. Each test
// exercises several packages together, complementing the per-package unit
// tests.
package repro

import (
	"encoding/json"
	"testing"

	"repro/internal/abstract"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store/causal"
	"repro/internal/store/kbuffer"
	"repro/internal/store/lww"
)

// TestPipelineRandomRunFullAudit drives random faulty workloads against the
// causal store and runs the complete audit: well-formedness, compliance,
// validity, correctness, causal consistency, §4 properties, convergence.
func TestPipelineRandomRunFullAudit(t *testing.T) {
	types := spec.MVRTypes().With("set", spec.TypeORSet).With("ctr", spec.TypeCounter)
	objs := []model.ObjectID{"x", "y", "set", "ctr"}
	for seed := int64(0); seed < 12; seed++ {
		c := sim.NewCluster(causal.New(types), 4, seed)
		c.SetFaults(sim.Faults{DupProb: 0.25, Reorder: true})
		c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 250})
		c.Quiesce()

		if err := c.Execution().CheckWellFormed(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.CheckConverged(objs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v := c.PropertyViolations(); len(v) != 0 {
			t.Fatalf("seed %d: property violations %v", seed, v)
		}
		a := c.DerivedAbstract()
		if err := consistency.CheckCausal(a, types); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := abstract.Complies(c.Execution(), a); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPipelineDropsPreserveSafety verifies that with real message loss the
// causal store keeps all safety properties (convergence is forfeited, and is
// not asserted).
func TestPipelineDropsPreserveSafety(t *testing.T) {
	types := spec.MVRTypes()
	for seed := int64(0); seed < 8; seed++ {
		c := sim.NewCluster(causal.New(types), 3, seed)
		c.SetFaults(sim.Faults{DropProb: 0.5, Reorder: true})
		c.RunRandom(sim.WorkloadConfig{Objects: []model.ObjectID{"x", "y"}, Steps: 200})
		if err := c.Execution().CheckWellFormed(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a := c.DerivedAbstract()
		if err := consistency.CheckCausal(a, types); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPipelineTheorem6OnStoreDerivedExecutions closes the loop: executions
// DERIVED from causal store runs that happen to be OCC are fed back into the
// Theorem 6 construction (after the revealing transformation), which must
// reproduce them on a fresh cluster.
func TestPipelineTheorem6OnStoreDerivedExecutions(t *testing.T) {
	types := spec.MVRTypes()
	verified := 0
	for seed := int64(0); seed < 40 && verified < 5; seed++ {
		c := sim.NewCluster(causal.New(types), 3, seed)
		c.RunRandom(sim.WorkloadConfig{Objects: []model.ObjectID{"x", "y"}, Steps: 14, SendProb: 0.6, DeliverProb: 0.7})
		a := c.DerivedAbstract()
		if consistency.CheckOCC(a, types) != nil {
			continue
		}
		rev := gen.MakeRevealing(a, types)
		if err := consistency.CheckOCC(rev, types); err != nil {
			continue // revealing reads may expose unwitnessed pairs
		}
		rep, err := core.ConstructCompliant(causal.New(types), rev)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Complies() {
			t.Fatalf("seed %d: mismatches %v", seed, rep.Mismatches)
		}
		verified++
	}
	if verified == 0 {
		t.Fatal("no OCC store-derived executions found")
	}
}

// TestPipelineJSONRoundTripThroughCheckers exports a derived execution to
// JSON, re-imports it, and confirms every checker verdict is preserved.
func TestPipelineJSONRoundTripThroughCheckers(t *testing.T) {
	types := spec.MVRTypes()
	c := sim.NewCluster(causal.New(types), 3, 21)
	c.RunRandom(sim.WorkloadConfig{Objects: []model.ObjectID{"x", "y"}, Steps: 80})
	c.Quiesce()
	a := c.DerivedAbstract()

	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := abstract.UnmarshalExecution(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equivalent(a) {
		t.Fatal("round trip not equivalent")
	}
	va := consistency.Evaluate(a, types, a.Len())
	vb := consistency.Evaluate(back, types, back.Len())
	if (va.Causal == nil) != (vb.Causal == nil) || (va.OCC == nil) != (vb.OCC == nil) {
		t.Fatalf("verdicts changed across round trip: %+v vs %+v", va, vb)
	}
}

// TestPipelineStoreZoo compares the three stores on one partition scenario:
// the causal store exposes siblings, the LWW store hides them, the K-buffer
// store delays them.
func TestPipelineStoreZoo(t *testing.T) {
	scenario := func(st interface {
		Name() string
	}, cluster *sim.Cluster) model.Response {
		cluster.Do(0, "x", model.Write("a"))
		cluster.Do(1, "x", model.Write("b"))
		cluster.Send(0)
		cluster.Send(1)
		cluster.DeliverOne(2)
		cluster.DeliverOne(2)
		return cluster.Do(2, "x", model.Read())
	}
	types := spec.MVRTypes()

	causalResp := scenario(causal.New(types), sim.NewCluster(causal.New(types), 3, 1))
	if len(causalResp.Values) != 2 {
		t.Fatalf("causal store read = %s, want both siblings", causalResp)
	}
	lwwResp := scenario(lww.New(types), sim.NewCluster(lww.New(types), 3, 1))
	if len(lwwResp.Values) != 1 {
		t.Fatalf("lww store read = %s, want one winner", lwwResp)
	}
	kbResp := scenario(kbuffer.New(types, 4), sim.NewCluster(kbuffer.New(types, 4), 3, 1))
	if len(kbResp.Values) != 0 {
		t.Fatalf("kbuffer store read = %s, want delayed emptiness", kbResp)
	}
}

// TestPipelineLowerBoundAcrossEncodings runs Theorem 12 against every causal
// store variant; decoding must succeed regardless of encoding or batching.
func TestPipelineLowerBoundAcrossEncodings(t *testing.T) {
	variants := []struct {
		name string
		opts causal.Options
	}{
		{"dense", causal.Options{}},
		{"sparse", causal.Options{SparseDeps: true}},
		{"perupdate", causal.Options{PerUpdateMessages: true}},
	}
	for _, v := range variants {
		st := causal.NewWithOptions(spec.MVRTypes(), v.opts)
		res, err := core.RunMessageLowerBound(st, core.LowerBoundConfig{N: 6, S: 5, K: 32, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if !res.DecodeOK {
			t.Fatalf("%s: decoded %v, want %v", v.name, res.Decoded, res.G)
		}
		if res.MgBits < res.BoundBits {
			t.Fatalf("%s: |m_g| = %d bits below the information-theoretic bound %d", v.name, res.MgBits, res.BoundBits)
		}
	}
}

// TestPipelineOCCStrictlyBetweenCausalAndNothing samples generated
// executions and verifies the paper's model ordering: OCC ⊆ causal, with
// both inclusions strict on the sample.
func TestPipelineOCCStrictlyBetweenCausalAndNothing(t *testing.T) {
	types := spec.MVRTypes()
	var sample []*abstract.Execution
	for seed := int64(0); seed < 30; seed++ {
		sample = append(sample, gen.RandomCausal(gen.Config{Seed: seed, Events: 20}))
	}
	sample = append(sample, gen.WitnessedConcurrency(2, false))
	inOCC := func(a *abstract.Execution) bool { return consistency.CheckOCC(a, types) == nil }
	inCausal := func(a *abstract.Execution) bool { return consistency.CheckCausal(a, types) == nil }
	subset, strict := consistency.Stronger(sample, inOCC, inCausal)
	if !subset {
		t.Fatal("an OCC execution was not causally consistent")
	}
	if !strict {
		t.Skip("sample contained no causal-but-not-OCC execution (generator drift)")
	}
}

// TestPipelineProposition2OnRecordedRuns verifies the paper's Proposition 2
// on every recorded run: a read can only return values whose writes happen
// before it.
func TestPipelineProposition2OnRecordedRuns(t *testing.T) {
	stores := []struct {
		name string
		mk   func() *sim.Cluster
	}{
		{"causal", func() *sim.Cluster { return sim.NewCluster(causal.New(spec.MVRTypes()), 3, 31) }},
		{"lww", func() *sim.Cluster { return sim.NewCluster(lww.New(spec.MVRTypes()), 3, 31) }},
		{"kbuffer", func() *sim.Cluster { return sim.NewCluster(kbuffer.New(spec.MVRTypes(), 2), 3, 31) }},
	}
	for _, tc := range stores {
		c := tc.mk()
		c.SetFaults(sim.Faults{DupProb: 0.2, Reorder: true})
		c.RunRandom(sim.WorkloadConfig{Objects: []model.ObjectID{"x", "y"}, Steps: 150})
		c.Quiesce()
		if err := core.VerifyProposition2(c.Execution()); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}
