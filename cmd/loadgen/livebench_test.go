package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/store"
)

// TestRunLivebenchDeterministic: the tracked BENCH_LIVECHECK table must be
// byte-identical across runs of the same flags and seed (everything in the
// JSON comes from the deterministic simulator — the wall-clock replay table
// is human-mode only), with one row per registered store, clean verdicts on
// the causal stores, and violations actually flagged on the weak ones.
func TestRunLivebenchDeterministic(t *testing.T) {
	cfg := livebenchConfig{seed: 3, steps: 400, objects: 3, jsonOut: true}
	var a, b bytes.Buffer
	if err := runLivebench(&a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := runLivebench(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed produced different livebench tables:\n%s\n%s", a.String(), b.String())
	}

	var table struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(a.Bytes(), &table); err != nil {
		t.Fatalf("livebench JSON does not parse: %v\n%s", err, a.String())
	}
	if len(table.Rows) != len(store.Names()) {
		t.Fatalf("%d rows, want one per registered store (%d)", len(table.Rows), len(store.Names()))
	}
	col := map[string]int{}
	for i, c := range table.Columns {
		col[c] = i
	}
	for _, row := range table.Rows {
		name, violations := row[col["store"]], row[col["violations"]]
		peak, events := row[col["peak tracked"]], row[col["events"]]
		switch name {
		case "causal", "causal-perupdate", "causal-sparse", "kbuffer", "statesync":
			if violations != "0" {
				t.Errorf("%s: %s live violations on a causally safe store", name, violations)
			}
		case "lww", "gsp":
			if violations == "0" {
				t.Errorf("%s: expected the live checker to flag violations under faults", name)
			}
		}
		if peak == "0" || events == "0" {
			t.Errorf("%s: empty measurement (peak %s, events %s)", name, peak, events)
		}
	}
}
