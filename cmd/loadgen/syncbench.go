package main

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/spec"
	"repro/internal/store"
)

// syncbenchConfig parameterizes a -syncbench run: the deterministic
// anti-entropy catch-up cost table behind the tracked BENCH_SYNC.json.
type syncbenchConfig struct {
	store   string
	ops     int
	batch   int
	seed    int64
	objects int
	jsonOut bool
}

// syncbenchPrefixes are the joiner states measured, as percentages of the
// donor log: a cold join, three partial rejoins, and an already-caught-up
// digest-only handshake.
var syncbenchPrefixes = []int{0, 25, 50, 90, 100}

// syncbenchWindows are the pull credit windows measured: stop-and-wait
// (the pre-v4 protocol, and Config.SyncWindow 1) against the default
// window. Bytes are window-independent; the rtts column is what the
// window buys.
var syncbenchWindows = []int{1, 8}

// runSyncbench emits the Merkle anti-entropy cost table: for each joiner
// prefix, the digest handshake bytes, the updates and chunks actually
// pulled, and the bytes on the wire versus shipping the full log through
// the same chunking. Pure function of (store, ops, seed, batch) — the
// workload generator and the frame appenders are the ones the real join
// path uses, with no sockets or timers involved.
func runSyncbench(w io.Writer, cfg syncbenchConfig) error {
	if cfg.ops < 1 || cfg.batch < 1 || cfg.objects < 1 {
		return fmt.Errorf("syncbench needs at least one op, object, and a positive batch")
	}
	st, err := cli.OpenStore(cfg.store, spec.MVRTypes(), store.Options{})
	if err != nil {
		return err
	}
	payloads, _ := wirebenchWorkload(st, cfg.ops, cfg.objects, cfg.seed)
	if len(payloads) == 0 {
		return fmt.Errorf("workload produced no broadcast payloads")
	}

	t := bench.NewTable(
		fmt.Sprintf("loadgen syncbench: %s, seed %d, %d updates, batch %d",
			st.Name(), cfg.seed, len(payloads), cfg.batch),
		"prefix %", "win", "have", "pulled", "chunks", "rtts", "digest B", "pull B", "full B", "saved %")
	for _, pc := range syncbenchPrefixes {
		prefix := len(payloads) * pc / 100
		for _, win := range syncbenchWindows {
			row := cluster.SyncCost(payloads, prefix, cfg.batch, 0, win)
			saved := int64(0)
			if row.FullBytes > 0 {
				saved = 100 - row.PulledBytes*100/row.FullBytes
			}
			t.AddRow(pc, row.Window, row.Prefix, row.Pulled, row.Chunks, row.RTTs,
				row.DigestBytes, row.PulledBytes, row.FullBytes, saved)
		}
	}
	return cli.Output(w, cfg.jsonOut).Emit(t)
}
