// Command loadgen drives a running served cluster (internal/cluster) with
// k concurrent clients issuing a seeded Put/Get mix, waits for quiescence,
// verifies convergence, and reports throughput, latency percentiles,
// bytes on the wire, and retransmission counts as a bench.Table. With
// -audit it additionally downloads every node's recorded history, merges
// it, and replays the run through the repository's checkers: well-formed
// execution, §4 property violations, and — for the causal stores — causal
// consistency of the derived abstract execution.
//
// With -chaos it instead self-hosts an in-process cluster (still replicating
// over loopback TCP) and runs a seeded fault schedule — partitions, link
// shaping, a crash/restart — against it while the clients drive load; the
// fault log is emitted first and is byte-identical for a given -seed.
//
// Usage:
//
//	loadgen -nodes :7000,:7001,:7002 -clients 8 -ops 200
//	loadgen -nodes :7000,:7001,:7002 -clients 32 -conns 4
//	loadgen -nodes :7000,:7001,:7002 -json -audit
//	loadgen -chaos -store causal -seed 42 -json
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/spec"
)

func main() {
	seed := cli.SeedFlag(flag.CommandLine, 1)
	jsonOut := cli.JSONFlag(flag.CommandLine)
	nodes := flag.String("nodes", "127.0.0.1:7000", "cluster node addresses, comma-separated")
	clients := flag.Int("clients", 4, "concurrent clients (assigned to nodes round-robin)")
	ops := flag.Int("ops", 100, "operations per client")
	mutate := flag.Float64("mutate", 0.5, "fraction of operations that are writes")
	objects := flag.Int("objects", 3, "number of objects")
	keys := flag.Int("keys", 0, "size of a k%06d keyspace (overrides -objects; convergence is verified on a seeded sample when large)")
	zipfDist := flag.Bool("zipf", false, "draw keys from a zipfian popularity curve (s=1.1) instead of uniformly")
	shards := flag.Int("shards", 1, "shard count of the target cluster; -audit then downloads and checks each shard's histories separately")
	audit := flag.Bool("audit", false, "download histories and replay the run through the checkers")
	quiesceTimeout := flag.Duration("quiesce-timeout", 30*time.Second, "how long to wait for cluster quiescence")
	chaos := flag.Bool("chaos", false, "self-host an in-process cluster and run a seeded fault schedule against it (-nodes is ignored)")
	storeName := cli.StoreFlag(flag.CommandLine, "causal")
	chaosNodes := flag.Int("chaos-nodes", 3, "cluster size for -chaos runs")
	chaosDataDir := flag.String("chaos-data-dir", "", "journal -chaos node histories to this directory; crash/restart directives then recover from disk (in-memory if empty)")
	wirebench := flag.Bool("wirebench", false, "measure wire-codec costs: deterministic encode-path table (bytes/op, frames, allocs/op) for the JSON fallback vs the binary+batch codec; human mode adds a live TCP comparison")
	wireBatch := flag.Int("wire-batch", 64, "tBatch coalescing cap for the -wirebench binary rows")
	wireCodec := flag.String("wire-codec", "", "codec for structured replies in the live-cluster mode (json, binary; default binary)")
	conns := flag.Int("conns", 0, "pooled connections per node for the workload clients (0 = one dedicated connection per client)")
	opTimeout := flag.Duration("op-timeout", 10*time.Second, "per-operation deadline for client round trips (0 = unbounded)")
	syncbench := flag.Bool("syncbench", false, "measure Merkle anti-entropy catch-up costs: deterministic digest/range-pull table per joiner prefix")
	churn := flag.Int("churn", 0, "leave→join windows in the -chaos schedule (victims disjoint from the crash victims)")
	liveAudit := flag.Bool("live-audit", false, "with -chaos: stream every node's events through the online checker during the run and prove its verdict against the post-run audit")
	livebench := flag.Bool("livebench", false, "measure the online checker: deterministic per-store table of events checked, violations, and peak tracked state vs history length; human mode adds a wall-clock replay throughput table")
	shardbench := flag.Bool("shardbench", false, "measure keyspace sharding: deterministic routing-balance table (per-shard op spread and speedup bound for uniform and zipfian draws); human mode adds a live sharded-vs-single throughput comparison")
	flag.Parse()

	if *shardbench {
		scfg := shardbenchConfig{
			store:          *storeName,
			keys:           *keys,
			ops:            *ops,
			shards:         *shards,
			clients:        *clients,
			mutate:         *mutate,
			seed:           *seed,
			quiesceTimeout: *quiesceTimeout,
			jsonOut:        *jsonOut,
		}
		if scfg.keys == 0 {
			scfg.keys = 1000000
		}
		if err := runShardbench(os.Stdout, scfg); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}

	if *livebench {
		lcfg := livebenchConfig{
			seed:    *seed,
			steps:   *ops,
			objects: *objects,
			jsonOut: *jsonOut,
		}
		if err := runLivebench(os.Stdout, lcfg); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}

	if *liveAudit && !*chaos {
		fmt.Fprintln(os.Stderr, "loadgen: -live-audit requires -chaos (the TCP client mode audits offline via -audit)")
		os.Exit(1)
	}

	if *syncbench {
		scfg := syncbenchConfig{
			store:   *storeName,
			ops:     *ops,
			batch:   *wireBatch,
			seed:    *seed,
			objects: *objects,
			jsonOut: *jsonOut,
		}
		if err := runSyncbench(os.Stdout, scfg); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}

	if *wirebench {
		wcfg := wirebenchConfig{
			store:          *storeName,
			ops:            *ops,
			batch:          *wireBatch,
			seed:           *seed,
			clients:        *clients,
			objects:        *objects,
			mutate:         *mutate,
			quiesceTimeout: *quiesceTimeout,
			jsonOut:        *jsonOut,
		}
		if err := runWirebench(os.Stdout, wcfg); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}

	if *chaos {
		ccfg := chaosConfig{
			store:          *storeName,
			nodes:          *chaosNodes,
			clients:        *clients,
			ops:            *ops,
			mutate:         *mutate,
			objects:        *objects,
			seed:           *seed,
			quiesceTimeout: *quiesceTimeout,
			jsonOut:        *jsonOut,
			dataDir:        *chaosDataDir,
			churn:          *churn,
			liveAudit:      *liveAudit,
		}
		if err := runChaos(os.Stdout, ccfg); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}

	cfg := config{
		nodes:          strings.Split(*nodes, ","),
		clients:        *clients,
		ops:            *ops,
		mutate:         *mutate,
		objects:        *objects,
		keys:           *keys,
		zipf:           *zipfDist,
		shards:         *shards,
		seed:           *seed,
		audit:          *audit,
		quiesceTimeout: *quiesceTimeout,
		jsonOut:        *jsonOut,
		wireCodec:      *wireCodec,
		conns:          *conns,
		opTimeout:      *opTimeout,
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	nodes          []string
	clients        int
	ops            int
	mutate         float64
	objects        int
	keys           int
	zipf           bool
	shards         int
	seed           int64
	audit          bool
	quiesceTimeout time.Duration
	jsonOut        bool
	wireCodec      string
	conns          int
	opTimeout      time.Duration
}

func run(w io.Writer, cfg config) error {
	if len(cfg.nodes) == 0 || cfg.clients < 1 || cfg.ops < 1 || cfg.objects < 1 {
		return fmt.Errorf("need at least one node, client, op, and object")
	}
	if cfg.shards == 0 {
		cfg.shards = 1 // zero value: the unsharded default
	}
	if cfg.shards < 1 {
		return fmt.Errorf("-shards %d: need at least 1", cfg.shards)
	}
	// -keys switches to the sharding workload's k%06d keyspace; the legacy
	// x%d naming stays the default so existing invocations are unchanged.
	var objs []model.ObjectID
	if cfg.keys > 0 {
		objs = make([]model.ObjectID, cfg.keys)
		for i := range objs {
			objs[i] = model.ObjectID(fmt.Sprintf("k%06d", i))
		}
	} else {
		objs = make([]model.ObjectID, cfg.objects)
		for i := range objs {
			objs[i] = model.ObjectID(fmt.Sprintf("x%d", i))
		}
	}

	// One control connection per node: quiescence polling, stats,
	// convergence reads, history downloads. The op timeout keeps a wedged
	// node from hanging the control plane forever.
	control := make([]*cluster.Client, len(cfg.nodes))
	for i, addr := range cfg.nodes {
		c, err := cluster.Dial(addr, 0)
		if err != nil {
			return err
		}
		defer c.Close()
		if cfg.wireCodec != "" {
			if err := c.SetCodec(cfg.wireCodec); err != nil {
				return err
			}
		}
		c.SetOpTimeout(cfg.opTimeout)
		control[i] = c
	}

	// Workload connections: with -conns, clients on the same node share a
	// fixed pool of that many connections (bounded sockets, parallel
	// streams); otherwise each client dials its own, the legacy shape.
	var pools []*cluster.Pool
	if cfg.conns > 0 {
		pools = make([]*cluster.Pool, len(cfg.nodes))
		for i, addr := range cfg.nodes {
			p, err := cluster.NewPool(addr, cluster.PoolOptions{
				Size: cfg.conns, OpTimeout: cfg.opTimeout, Codec: cfg.wireCodec,
			})
			if err != nil {
				return err
			}
			defer p.Close()
			pools[i] = p
		}
	}

	// Workload: each client gets a split-seed RNG stream, so runs are
	// reproducible for any client count.
	type result struct {
		latencies []time.Duration
		errs      int
	}
	results := make([]result, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(gen.SplitSeed(cfg.seed, ci)))
			var z *rand.Zipf
			if cfg.zipf && len(objs) > 1 {
				z = rand.NewZipf(rng, 1.1, 1, uint64(len(objs)-1))
			}
			var d cluster.Doer
			if pools != nil {
				d = pools[ci%len(pools)]
			} else {
				c, err := cluster.Dial(cfg.nodes[ci%len(cfg.nodes)], 0)
				if err != nil {
					results[ci].errs = cfg.ops
					return
				}
				defer c.Close()
				c.SetOpTimeout(cfg.opTimeout)
				d = c
			}
			for i := 0; i < cfg.ops; i++ {
				var obj model.ObjectID
				if z != nil {
					obj = objs[z.Uint64()]
				} else {
					obj = objs[rng.Intn(len(objs))]
				}
				op := model.Read()
				if rng.Float64() < cfg.mutate {
					op = model.Write(model.Value(fmt.Sprintf("c%d.v%d", ci, i)))
				}
				t0 := time.Now()
				if _, err := d.Do(obj, op); err != nil {
					results[ci].errs++
					continue
				}
				results[ci].latencies = append(results[ci].latencies, time.Since(t0))
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	errs := 0
	for _, r := range results {
		lats = append(lats, r.latencies...)
		errs += r.errs
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	// Quiescence: all nodes must report quiesced on two consecutive polls
	// (acks follow application, so a stable all-quiesced poll means every
	// broadcast update was delivered — Definition 17 over a real network).
	if err := waitQuiesced(control, cfg.quiesceTimeout); err != nil {
		return err
	}

	doers := make([]cluster.Doer, len(control))
	for i, c := range control {
		doers[i] = c
	}
	// A million-key run cannot afford a read of every key from every node;
	// verify a seeded sample instead (quiescence already implies every
	// update was delivered, so a converged sample is strong evidence the
	// rest converged too). The sample stream is split off after the client
	// streams so adding clients never reshuffles it.
	checkObjs := objs
	if len(objs) > 64 {
		srng := rand.New(rand.NewSource(gen.SplitSeed(cfg.seed, cfg.clients)))
		checkObjs = make([]model.ObjectID, 64)
		for i := range checkObjs {
			checkObjs[i] = objs[srng.Intn(len(objs))]
		}
	}
	convergence := cluster.CheckConverged(doers, checkObjs)

	var agg cluster.Stats
	storeName := ""
	for _, c := range control {
		s, err := c.Stats()
		if err != nil {
			return err
		}
		storeName = s.Store
		agg.Ops += s.Ops
		agg.Sends += s.Sends
		agg.BytesOut += s.BytesOut
		agg.Retransmits += s.Retransmits
		agg.Reconnects += s.Reconnects
		agg.DupFrames += s.DupFrames
		agg.Violations += s.Violations
	}

	out := cli.Output(w, cfg.jsonOut)
	pct := func(p float64) interface{} { return latCell(lats, p) }
	done := len(lats)
	t := bench.NewTable(fmt.Sprintf("loadgen: %s, %d nodes, seed %d", storeName, len(cfg.nodes), cfg.seed),
		"clients", "ops", "errors", "samples", "ops/sec", "p50 ms", "p95 ms", "p99 ms", "max ms",
		"wire KB", "retransmits", "reconnects", "dup frames")
	t.AddRow(cfg.clients, done, errs, len(lats),
		float64(done)/elapsed.Seconds(),
		pct(0.50), pct(0.95), pct(0.99), pct(1.0),
		float64(agg.BytesOut)/1024.0,
		agg.Retransmits, agg.Reconnects, agg.DupFrames)
	if err := out.Emit(t); err != nil {
		return err
	}

	if !cfg.audit {
		return convergence
	}

	// Audit: replay the recorded histories through the checker pipeline —
	// per shard on a sharded cluster. Each shard is its own broadcast
	// domain with its own Lamport clock, so same-shard histories merge into
	// an execution of their own; Proposition 1's per-object projections
	// make the per-shard verdicts compose into the whole cluster's (no key
	// spans two shards).
	causal := strings.HasPrefix(storeName, "causal")
	a := bench.NewTable(fmt.Sprintf("loadgen audit: %s, %d nodes, %d shard(s)", storeName, len(cfg.nodes), cfg.shards),
		"shard", "events", "messages", "well-formed", "causal (Def 12)")
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	for s := 0; s < cfg.shards; s++ {
		hists := make([]cluster.History, len(control))
		for i, c := range control {
			var h cluster.History
			var err error
			if cfg.shards > 1 {
				h, err = c.ShardHistory(s)
			} else {
				h, err = c.History()
			}
			if err != nil {
				return err
			}
			hists[i] = h
		}
		audited, err := cluster.BuildAudit(hists)
		if err != nil {
			return err
		}
		events := 0
		for _, h := range hists {
			events += len(h.Events)
		}
		wellFormed := audited.Exec.CheckWellFormed()
		keep(wellFormed)
		causalVerdict := error(nil)
		causalCell := interface{}("-")
		if causal {
			causalVerdict = consistency.CheckCausal(audited.Abstract, spec.MVRTypes())
			keep(causalVerdict)
			causalCell = bench.Check(causalVerdict)
		}
		a.AddRow(s, events, len(audited.Exec.Messages), bench.Check(wellFormed), causalCell)
	}
	s := bench.NewTable("loadgen audit verdict", "metric", "value")
	s.AddRow("converged after quiescence", bench.Check(convergence))
	s.AddRow("§4 property violations", agg.Violations)
	if err := out.Emit(a); err != nil {
		return err
	}
	if err := out.Emit(s); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}
	if agg.Violations != 0 {
		return fmt.Errorf("%d §4 property violations recorded", agg.Violations)
	}
	return convergence
}

// latCell renders one latency-percentile table cell: "-" when no operation
// succeeded (an all-error run still owes its stats row — aborting before
// rendering used to hide the error count and skip the quiescence and audit
// pipeline entirely), otherwise the percentile in milliseconds.
func latCell(lats []time.Duration, p float64) interface{} {
	if len(lats) == 0 {
		return "-"
	}
	return float64(percentile(lats, p).Microseconds()) / 1000.0
}

// percentile reads the p-th percentile from sorted latencies by nearest
// rank: the smallest sample with at least a p fraction of the samples at or
// below it. The previous int(p*(n-1)) truncation systematically under-read
// the tail — p95 of 20 samples indexed 18 of 0..19 (the 90th percentile)
// and p99 needed 100+ samples before it ever left the p98 slot.
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(lats)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}

// waitQuiesced polls every node's stats until all report quiescence twice
// in a row.
func waitQuiesced(control []*cluster.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	clean := 0
	for time.Now().Before(deadline) {
		all := true
		for _, c := range control {
			s, err := c.Stats()
			if err != nil {
				return err
			}
			if !s.Quiesced {
				all = false
				break
			}
		}
		if all {
			if clean++; clean >= 2 {
				return nil
			}
		} else {
			clean = 0
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("cluster did not quiesce within %v", timeout)
}
