package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
)

// TestPercentileNearestRank pins the percentile fix: nearest-rank semantics
// (smallest sample with ≥ p of the mass at or below it), exercised at the
// sample counts where the old int(p*(n-1)) truncation under-read the tail.
func TestPercentileNearestRank(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	seq := func(n int) []time.Duration {
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(i+1) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name string
		lats []time.Duration
		p    float64
		want time.Duration
	}{
		// p95 of 20 samples is the 19th order statistic (ceil(.95*20)=19),
		// i.e. the second-largest — the old code read index 18 of 0..19,
		// which is the largest only by accident of the off-by-one.
		{"p95 of 20", seq(20), 0.95, 19 * time.Millisecond},
		// p99 of 100 samples must be the 99th order statistic; the old
		// truncation gave index 98 (the p98 slot).
		{"p99 of 100", seq(100), 0.99, 99 * time.Millisecond},
		{"p50 odd", ms(1, 2, 3), 0.50, 2 * time.Millisecond},
		{"p50 even", ms(1, 2, 3, 4), 0.50, 2 * time.Millisecond},
		{"max", seq(7), 1.0, 7 * time.Millisecond},
		{"single sample", ms(5), 0.99, 5 * time.Millisecond},
		{"empty", nil, 0.5, 0},
		{"p0 clamps to min", seq(10), 0, 1 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(tc.lats, tc.p); got != tc.want {
			t.Errorf("%s: percentile(%d samples, %v) = %v, want %v",
				tc.name, len(tc.lats), tc.p, got, tc.want)
		}
	}
}

// TestLatCellZeroSamples pins the all-errors rendering fix: a run where
// every operation failed must still render its stats row — "-" latency
// cells, zero-valued counters — instead of aborting before the table (and
// before the quiescence/audit pipeline) with "every operation failed".
func TestLatCellZeroSamples(t *testing.T) {
	if got := latCell(nil, 0.99); got != "-" {
		t.Fatalf("latCell(nil) = %v, want \"-\"", got)
	}
	if got := latCell([]time.Duration{}, 0.50); got != "-" {
		t.Fatalf("latCell(empty) = %v, want \"-\"", got)
	}
	if got := latCell([]time.Duration{4 * time.Millisecond}, 0.50); got != 4.0 {
		t.Fatalf("latCell(4ms sample) = %v, want 4.0", got)
	}
	// The cell must survive table rendering in both output modes.
	var buf bytes.Buffer
	tb := bench.NewTable("zero-sample row", "samples", "ops/sec", "p99 ms")
	tb.AddRow(0, 0.0, latCell(nil, 0.99))
	if err := cli.Output(&buf, false).Emit(tb); err != nil {
		t.Fatalf("text render: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("-")) {
		t.Fatalf("text output lacks the \"-\" cell:\n%s", buf.String())
	}
	buf.Reset()
	if err := cli.Output(&buf, true).Emit(tb); err != nil {
		t.Fatalf("json render: %v", err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("json output invalid: %v\n%s", err, buf.String())
	}
}

// TestRunChaosDeterministicFaultLog is the acceptance check for -chaos: a
// seeded run whose schedule holds at least one partition and one
// crash/restart must audit clean, and rerunning with the same seed must
// emit a byte-identical JSON fault log (the first output line).
func TestRunChaosDeterministicFaultLog(t *testing.T) {
	cfg := chaosConfig{
		store:          "causal",
		nodes:          3,
		clients:        3,
		ops:            40,
		mutate:         0.5,
		objects:        3,
		seed:           42,
		quiesceTimeout: 30 * time.Second,
		jsonOut:        true,
	}

	sched := chaosSchedule(cfg)
	partitions, crashes, linkFaults := sched.Counts()
	if partitions < 1 || crashes < 1 || linkFaults < 1 {
		t.Fatalf("schedule too tame: %d partitions, %d crashes, %d link faults",
			partitions, crashes, linkFaults)
	}

	faultLog := func() string {
		var buf bytes.Buffer
		if err := runChaos(&buf, cfg); err != nil {
			t.Fatalf("runChaos: %v\noutput:\n%s", err, buf.String())
		}
		sc := bufio.NewScanner(&buf)
		if !sc.Scan() {
			t.Fatalf("no output")
		}
		return sc.Text()
	}
	first := faultLog()
	second := faultLog()
	if first != second {
		t.Fatalf("fault log not reproducible for seed %d:\n%s\nvs\n%s", cfg.seed, first, second)
	}

	// The fault log is a bench table whose rows cover every directive.
	var tb struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(first), &tb); err != nil {
		t.Fatalf("fault log is not a JSON bench table: %v", err)
	}
	if len(tb.Rows) != len(sched.Directives) {
		t.Fatalf("fault log rows = %d, schedule has %d directives", len(tb.Rows), len(sched.Directives))
	}
}

// TestRunChaosDiskBacked runs the same chaos pipeline with
// -chaos-data-dir: histories journal to disk and the schedule's
// crash/restart recovers through durable.Open. The run must still audit
// clean, and every node must leave a journal behind.
func TestRunChaosDiskBacked(t *testing.T) {
	dataDir := t.TempDir()
	cfg := chaosConfig{
		store:          "causal",
		nodes:          3,
		clients:        2,
		ops:            30,
		mutate:         0.5,
		objects:        2,
		seed:           42,
		quiesceTimeout: 30 * time.Second,
		jsonOut:        true,
		dataDir:        dataDir,
	}
	var buf bytes.Buffer
	if err := runChaos(&buf, cfg); err != nil {
		t.Fatalf("runChaos: %v\noutput:\n%s", err, buf.String())
	}
	for i := 0; i < cfg.nodes; i++ {
		wal := filepath.Join(dataDir, fmt.Sprintf("node%d", i), "wal.log")
		info, err := os.Stat(wal)
		if err != nil {
			t.Fatalf("node %d left no journal: %v", i, err)
		}
		if info.Size() == 0 {
			t.Fatalf("node %d journal is empty", i)
		}
	}
}

// TestRunChaosFullReport checks the complete chaos report shape and the
// clean audit verdicts on the text path.
func TestRunChaosFullReport(t *testing.T) {
	cfg := chaosConfig{
		store:          "causal",
		nodes:          3,
		clients:        2,
		ops:            30,
		mutate:         0.6,
		objects:        2,
		seed:           7,
		quiesceTimeout: 30 * time.Second,
		jsonOut:        true,
	}
	var buf bytes.Buffer
	if err := runChaos(&buf, cfg); err != nil {
		t.Fatalf("runChaos: %v\noutput:\n%s", err, buf.String())
	}

	type table struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	var tables []table
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var tb table
		if err := json.Unmarshal(sc.Bytes(), &tb); err != nil {
			t.Fatalf("line %q is not a JSON bench table: %v", sc.Text(), err)
		}
		tables = append(tables, tb)
	}
	if len(tables) != 3 {
		t.Fatalf("want fault log + report + audit tables, got %d", len(tables))
	}

	report := tables[1]
	col := func(name string) string {
		for i, c := range report.Columns {
			if c == name && len(report.Rows) == 1 && i < len(report.Rows[0]) {
				return report.Rows[0][i]
			}
		}
		t.Fatalf("report missing column %q: %v", name, report.Columns)
		return ""
	}
	if got := col("crashes"); got != "1" {
		t.Fatalf("crashes = %q, want 1", got)
	}
	if got := col("restarts"); got != "1" {
		t.Fatalf("restarts = %q, want 1", got)
	}
	if got := col("partitions"); got == "0" {
		t.Fatalf("partitions = %q, want ≥1", got)
	}
	if col("samples") == "0" {
		t.Fatal("no latency samples collected")
	}

	audit := tables[2]
	cell := func(metric string) string {
		for _, row := range audit.Rows {
			if len(row) == 2 && row[0] == metric {
				return row[1]
			}
		}
		t.Fatalf("audit table missing metric %q: %v", metric, audit.Rows)
		return ""
	}
	if got := cell("well-formed execution"); got != "ok" {
		t.Fatalf("well-formed = %q", got)
	}
	if got := cell("converged after quiescence"); got != "ok" {
		t.Fatalf("converged = %q", got)
	}
	if got := cell("derived A causal (Def 12)"); got != "ok" {
		t.Fatalf("causal = %q", got)
	}
	if got := cell("§4 property violations"); got != "0" {
		t.Fatalf("violations = %q", got)
	}
}

// TestRunChaosLiveAudit runs the chaos pipeline with the streaming checker
// tapped into every node: the run must stay clean on the causal store, the
// checker must actually see the run's events, and the live-vs-post-run
// equivalence row must come out ok.
func TestRunChaosLiveAudit(t *testing.T) {
	cfg := chaosConfig{
		store:          "causal",
		nodes:          3,
		clients:        2,
		ops:            30,
		mutate:         0.6,
		objects:        2,
		seed:           9,
		quiesceTimeout: 30 * time.Second,
		jsonOut:        true,
		liveAudit:      true,
	}
	var buf bytes.Buffer
	if err := runChaos(&buf, cfg); err != nil {
		t.Fatalf("runChaos: %v\noutput:\n%s", err, buf.String())
	}
	type table struct {
		Title string     `json:"title"`
		Rows  [][]string `json:"rows"`
	}
	var audit table
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var tb table
		if err := json.Unmarshal(sc.Bytes(), &tb); err != nil {
			t.Fatalf("line %q is not a JSON bench table: %v", sc.Text(), err)
		}
		if strings.Contains(tb.Title, "audit") {
			audit = tb
		}
	}
	cell := func(metric string) string {
		for _, row := range audit.Rows {
			if len(row) == 2 && row[0] == metric {
				return row[1]
			}
		}
		t.Fatalf("audit table missing metric %q: %v", metric, audit.Rows)
		return ""
	}
	if got := cell("live events checked"); got == "0" {
		t.Fatal("live checker saw no events")
	}
	if got := cell("live violations (final)"); got != "0" {
		t.Fatalf("live violations = %q on the causal store", got)
	}
	if got := cell("live verdict matches post-run audit"); got != "ok" {
		t.Fatalf("equivalence row = %q", got)
	}
	if got := cell("live peak tracked state"); got == "0" {
		t.Fatal("peak tracked state never rose above zero")
	}
}
