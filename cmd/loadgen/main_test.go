package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"

	_ "repro/internal/store/causal"
)

// bootCluster starts an in-process 3-node causal cluster for loadgen to
// target over loopback TCP — the same code path as external served
// processes, minus process management.
func bootCluster(t *testing.T) []string {
	t.Helper()
	const n = 3
	nodes := make([]*cluster.Node, n)
	for i := 0; i < n; i++ {
		st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd, err := cluster.NewNode(cluster.Config{
			ID: model.ReplicaID(i), N: n, Store: st, Listen: "127.0.0.1:0",
			DialBackoffMin: 5 * time.Millisecond,
			RetransmitMin:  25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	addrs := make([]string, n)
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
		peers := make(map[model.ReplicaID]string)
		for j, other := range nodes {
			if j != i {
				peers[model.ReplicaID(j)] = other.Addr()
			}
		}
		if err := nd.Connect(peers); err != nil {
			t.Fatal(err)
		}
	}
	return addrs
}

// TestRunJSONEmitsValidBenchTables is the -json acceptance check: the
// report must be valid JSON Lines bench tables carrying throughput,
// latency percentile, wire-byte, and retransmit columns, and the audited
// run must come back clean.
func TestRunJSONEmitsValidBenchTables(t *testing.T) {
	addrs := bootCluster(t)
	var buf bytes.Buffer
	cfg := config{
		nodes:          addrs,
		clients:        4,
		ops:            40,
		mutate:         0.5,
		objects:        3,
		seed:           7,
		audit:          true,
		quiesceTimeout: 30 * time.Second,
		jsonOut:        true,
	}
	if err := run(&buf, cfg); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}

	type table struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	var tables []table
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var tb table
		if err := json.Unmarshal(sc.Bytes(), &tb); err != nil {
			t.Fatalf("line %q is not a JSON bench table: %v", sc.Text(), err)
		}
		tables = append(tables, tb)
	}
	if len(tables) != 3 {
		t.Fatalf("want workload + audit + verdict tables, got %d", len(tables))
	}

	load := tables[0]
	for _, col := range []string{"ops/sec", "p50 ms", "p95 ms", "p99 ms", "wire KB", "retransmits"} {
		found := false
		for _, c := range load.Columns {
			if c == col {
				found = true
			}
		}
		if !found {
			t.Fatalf("workload table missing column %q: %v", col, load.Columns)
		}
	}
	if len(load.Rows) != 1 {
		t.Fatalf("workload rows = %v", load.Rows)
	}

	// The audit table carries one row per shard (one here: unsharded).
	audit := tables[1]
	if len(audit.Rows) != 1 || len(audit.Rows[0]) != 5 {
		t.Fatalf("audit rows = %v, want one 5-column shard row", audit.Rows)
	}
	if wf, causal := audit.Rows[0][3], audit.Rows[0][4]; wf != "ok" || causal != "ok" {
		t.Fatalf("shard row well-formed = %q, causal = %q", wf, causal)
	}
	verdict := tables[2]
	cell := func(metric string) string {
		for _, row := range verdict.Rows {
			if len(row) == 2 && row[0] == metric {
				return row[1]
			}
		}
		t.Fatalf("verdict table missing metric %q: %v", metric, verdict.Rows)
		return ""
	}
	if got := cell("converged after quiescence"); got != "ok" {
		t.Fatalf("converged = %q", got)
	}
	if got := cell("§4 property violations"); got != "0" {
		t.Fatalf("violations = %q", got)
	}
}

// TestRunTextReport smoke-tests the aligned-text renderer path.
func TestRunTextReport(t *testing.T) {
	addrs := bootCluster(t)
	var buf bytes.Buffer
	cfg := config{
		nodes:          addrs,
		clients:        2,
		ops:            15,
		mutate:         0.6,
		objects:        2,
		seed:           3,
		quiesceTimeout: 30 * time.Second,
	}
	if err := run(&buf, cfg); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "loadgen: causal, 3 nodes") || !strings.Contains(out, "retransmits") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}
