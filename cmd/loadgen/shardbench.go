package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

// shardbenchConfig parameterizes a -shardbench run: the deterministic
// routing-balance table (the rows behind the tracked BENCH_SHARD.json)
// plus, in human mode, a live loopback throughput comparison of a sharded
// cluster against the same cluster at one shard.
type shardbenchConfig struct {
	store          string
	keys           int
	ops            int
	shards         int
	clients        int
	mutate         float64
	seed           int64
	quiesceTimeout time.Duration
	jsonOut        bool
}

// shardDraws routes a seeded stream of ops draws over the keyspace and
// returns the per-shard op counts. Pure function of (keys, ops, shards,
// zipf, seed): the tracked table is byte-identical across runs.
func shardDraws(keys, ops, shards int, zipf bool, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	var z *rand.Zipf
	if zipf {
		// s=1.1, v=1 — a mildly skewed web-like popularity curve; the hot
		// key takes a few percent of all draws at a million keys.
		z = rand.NewZipf(rng, 1.1, 1, uint64(keys-1))
	}
	router := cluster.NewShardRouter(shards)
	counts := make([]int64, shards)
	for i := 0; i < ops; i++ {
		var k uint64
		if z != nil {
			k = z.Uint64()
		} else {
			k = uint64(rng.Intn(keys))
		}
		counts[router.Route(shardKey(k))]++
	}
	return counts
}

// shardKey names key k the way the -keys workload does, so the bench routes
// exactly the objects a real run would.
func shardKey(k uint64) model.ObjectID {
	return model.ObjectID(fmt.Sprintf("k%06d", k))
}

// runShardbench emits the deterministic shard-balance table — for each
// shard count up to -shards, the per-shard op spread under uniform and
// zipfian key popularity, and the resulting parallel speedup bound
// ops/max(shard ops): the factor by which per-shard event loops can beat a
// single loop if routing is the only limit. Human (non-JSON) mode follows
// with a live loopback cluster measuring how much of that bound the real
// node realizes against itself at -shards 1. Wall-clock stays out of the
// tracked artifact, per the BENCH_*.json drift-gate precedent.
func runShardbench(w io.Writer, cfg shardbenchConfig) error {
	if cfg.keys < 2 || cfg.ops < 1 || cfg.shards < 1 {
		return fmt.Errorf("shardbench needs at least two keys, one op, and one shard")
	}
	out := cli.Output(w, cfg.jsonOut)

	t := bench.NewTable(
		fmt.Sprintf("loadgen shardbench: %d keys, %d ops, seed %d", cfg.keys, cfg.ops, cfg.seed),
		"dist", "shards", "min ops", "max ops", "max/min", "speedup bound")
	round := func(x float64) float64 { return math.Round(x*100) / 100 }
	for _, dist := range []string{"uniform", "zipf"} {
		for sh := 1; sh <= cfg.shards; sh *= 2 {
			counts := shardDraws(cfg.keys, cfg.ops, sh, dist == "zipf", cfg.seed)
			min, max := counts[0], counts[0]
			for _, c := range counts[1:] {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			ratio := interface{}("-")
			if min > 0 {
				ratio = round(float64(max) / float64(min))
			}
			t.AddRow(dist, sh, min, max, ratio, round(float64(cfg.ops)/float64(max)))
		}
	}
	if err := out.Emit(t); err != nil {
		return err
	}

	if cfg.jsonOut {
		// The tracked artifact ends here: the live comparison below is
		// wall-clock and would break the byte-identical drift gate.
		return nil
	}
	return runShardbenchLive(w, cfg, out)
}

// runShardbenchLive boots a 3-node loopback cluster twice — at one shard
// and at -shards — and drives the same seeded client mix through both,
// reporting aggregate throughput, the measured speedup, and how evenly the
// sharded run's ops landed across its event loops.
func runShardbenchLive(w io.Writer, cfg shardbenchConfig, out bench.Output) error {
	t := bench.NewTable(
		fmt.Sprintf("loadgen shardbench live: %s, %d clients (wall-clock, untracked)", cfg.store, cfg.clients),
		"shards", "ops", "ops/sec", "p50 ms", "p99 ms", "speedup", "shard max/min")
	base := 0.0
	for _, sh := range []int{1, cfg.shards} {
		row, err := shardbenchLiveRun(cfg, sh)
		if err != nil {
			return err
		}
		speedup := interface{}("-")
		if sh == 1 {
			base = row.opsPerSec
		} else if base > 0 {
			speedup = math.Round(row.opsPerSec/base*100) / 100
		}
		t.AddRow(sh, row.ops, row.opsPerSec, row.p50, row.p99, speedup, row.balance)
	}
	return out.Emit(t)
}

type shardLiveRow struct {
	ops       int
	opsPerSec float64
	p50, p99  float64
	balance   interface{}
}

func shardbenchLiveRun(cfg shardbenchConfig, shards int) (shardLiveRow, error) {
	const n = 3
	nodes := make([]*cluster.Node, 0, n)
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	for i := 0; i < n; i++ {
		st, err := cli.OpenStore(cfg.store, spec.MVRTypes(), store.Options{})
		if err != nil {
			return shardLiveRow{}, err
		}
		nd, err := cluster.NewNode(cluster.Config{
			ID: model.ReplicaID(i), N: n, Store: st,
			Listen: "127.0.0.1:0", Seed: cfg.seed, Shards: shards,
		})
		if err != nil {
			return shardLiveRow{}, err
		}
		nodes = append(nodes, nd)
	}
	for i, nd := range nodes {
		peers := make(map[model.ReplicaID]string)
		for j, other := range nodes {
			if j != i {
				peers[model.ReplicaID(j)] = other.Addr()
			}
		}
		if err := nd.Connect(peers); err != nil {
			return shardLiveRow{}, err
		}
	}

	lats := make([][]time.Duration, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(gen.SplitSeed(cfg.seed, ci)))
			z := rand.NewZipf(rng, 1.1, 1, uint64(cfg.keys-1))
			c, err := cluster.Dial(nodes[ci%n].Addr(), 0)
			if err != nil {
				return
			}
			defer c.Close()
			perClient := cfg.ops / cfg.clients
			for i := 0; i < perClient; i++ {
				obj := shardKey(z.Uint64())
				op := model.Read()
				if rng.Float64() < cfg.mutate {
					op = model.Write(model.Value(fmt.Sprintf("c%d.v%d", ci, i)))
				}
				t0 := time.Now()
				if _, err := c.Do(obj, op); err == nil {
					lats[ci] = append(lats[ci], time.Since(t0))
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if !cluster.WaitQuiesced(nodes, cfg.quiesceTimeout) {
		return shardLiveRow{}, fmt.Errorf("shardbench live (%d shards): cluster did not quiesce within %v", shards, cfg.quiesceTimeout)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return shardLiveRow{}, fmt.Errorf("shardbench live (%d shards): every operation failed", shards)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row := shardLiveRow{
		ops:       len(all),
		opsPerSec: float64(len(all)) / elapsed.Seconds(),
		p50:       float64(percentile(all, 0.50).Microseconds()) / 1000.0,
		p99:       float64(percentile(all, 0.99).Microseconds()) / 1000.0,
		balance:   "-",
	}
	if shards > 1 {
		var min, max int64 = -1, 0
		for _, nd := range nodes {
			s := nd.Stats()
			for _, c := range s.ShardOps {
				if min < 0 || c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
		}
		if min > 0 {
			row.balance = math.Round(float64(max)/float64(min)*100) / 100
		}
	}
	return row, nil
}
