package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

// wirebenchConfig parameterizes a -wirebench run: deterministic encode-path
// measurements (the tracked table) plus, in human mode, a live TCP
// comparison of the two codecs.
type wirebenchConfig struct {
	store          string
	ops            int
	batch          int
	seed           int64
	clients        int
	objects        int
	mutate         float64
	quiesceTimeout time.Duration
	jsonOut        bool
}

// wirebenchWorkload drives one replica with a seeded write-heavy mix and
// captures what the node would persist and transmit: the recorded event
// sequence (journal input) and the broadcast payloads (transport input).
// Pure function of (store, ops, seed) — no clocks, no network.
func wirebenchWorkload(st store.Store, ops int, objects int, seed int64) (payloads [][]byte, events []cluster.Event) {
	rng := rand.New(rand.NewSource(gen.SplitSeed(seed, 0)))
	rep := st.NewReplica(0, 3)
	lamport := uint64(0)
	seq := uint64(0)
	for i := 0; i < ops; i++ {
		obj := model.ObjectID(fmt.Sprintf("x%d", rng.Intn(objects)))
		op := model.Write(model.Value(fmt.Sprintf("c0.v%d", i)))
		resp := rep.Do(obj, op)
		lamport++
		events = append(events, cluster.Event{
			Kind: model.ActDo, Lamport: lamport, Object: obj, Op: op, Rval: resp,
		})
		for {
			p := rep.PendingMessage()
			if p == nil {
				break
			}
			payload := append([]byte(nil), p...)
			rep.OnSend()
			seq++
			lamport++
			events = append(events, cluster.Event{
				Kind: model.ActSend, Lamport: lamport,
				Origin: 0, Seq: seq, Payload: payload,
			})
			payloads = append(payloads, payload)
		}
	}
	return payloads, events
}

// journalBench appends the event sequence to a throwaway durable log in the
// given codec and returns total on-disk bytes and allocations per append.
// SnapshotEvery is disabled so the wal holds exactly one record per event.
func journalBench(events []cluster.Event, codec string) (diskBytes int64, allocsPerOp float64, err error) {
	measure := func(dir string) (int64, error) {
		l, _, err := durable.Open(dir, durable.Meta{Node: 0, N: 3, Store: "bench"},
			durable.Options{NoSync: true, SnapshotEvery: -1, Codec: codec})
		if err != nil {
			return 0, err
		}
		for _, ev := range events {
			if err := l.Append(ev); err != nil {
				l.Close()
				return 0, err
			}
		}
		if err := l.Close(); err != nil {
			return 0, err
		}
		info, err := os.Stat(filepath.Join(dir, "wal.log"))
		if err != nil {
			return 0, err
		}
		return info.Size(), nil
	}

	dir, err := os.MkdirTemp("", "wirebench-journal-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	diskBytes, err = measure(filepath.Join(dir, "size"))
	if err != nil {
		return 0, 0, err
	}
	// Allocations: one full append pass per run, averaged, normalized per
	// event. Disk writes ride along identically for both codecs.
	runs := 0
	total := testing.AllocsPerRun(3, func() {
		sub := filepath.Join(dir, fmt.Sprintf("allocs%d", runs))
		runs++
		if _, err := measure(sub); err != nil {
			panic(err)
		}
	})
	// Subtract nothing: Open/Close overhead is shared by both codec rows, so
	// the comparison stays apples-to-apples even though the per-op figure
	// includes a small fixed cost.
	allocsPerOp = total / float64(len(events))
	return diskBytes, allocsPerOp, nil
}

// runWirebench emits the deterministic wire-cost table — the rows behind
// the tracked BENCH_WIRE.json — and, in human (non-JSON) mode, follows it
// with a live TCP comparison whose wall-clock numbers are informative but
// deliberately kept out of the tracked artifact.
func runWirebench(w io.Writer, cfg wirebenchConfig) error {
	if cfg.ops < 1 || cfg.batch < 1 || cfg.objects < 1 {
		return fmt.Errorf("wirebench needs at least one op, object, and a positive batch")
	}
	st, err := cli.OpenStore(cfg.store, spec.MVRTypes(), store.Options{})
	if err != nil {
		return err
	}
	out := cli.Output(w, cfg.jsonOut)

	payloads, events := wirebenchWorkload(st, cfg.ops, cfg.objects, cfg.seed)
	if len(payloads) == 0 {
		return fmt.Errorf("workload produced no broadcast payloads")
	}
	us := cluster.NewBenchUpdates(payloads)
	nOps := float64(len(payloads))

	// Updates: the v1 fallback (one tUpdate frame per update, fresh buffers)
	// against the negotiated path (pooled writer, tBatch coalescing).
	v1Bytes, v1Frames := us.EncodeV1()
	v1Allocs := testing.AllocsPerRun(10, func() { us.EncodeV1() }) / nOps
	bBytes, bFrames := us.EncodeBatched(cfg.batch)
	bAllocs := testing.AllocsPerRun(10, func() { us.EncodeBatched(cfg.batch) }) / nOps

	// Bulk transfers: anti-entropy range chunks and the binary history
	// download frame, raw versus wrapped in the negotiated v4 compression
	// envelope. Same chunking either way — the envelope is the only delta.
	rBytes, rFrames := us.EncodeRange(cfg.batch, 0, false)
	rAllocs := testing.AllocsPerRun(10, func() { us.EncodeRange(cfg.batch, 0, false) }) / nOps
	rcBytes, rcFrames := us.EncodeRange(cfg.batch, 0, true)
	us.EncodeRange(cfg.batch, 0, true) // warm the flate pools before counting
	rcAllocs := testing.AllocsPerRun(10, func() { us.EncodeRange(cfg.batch, 0, true) }) / nOps
	hBytes, err := cluster.EncodeHistoryFrame(events, false)
	if err != nil {
		return err
	}
	hcBytes, err := cluster.EncodeHistoryFrame(events, true)
	if err != nil {
		return err
	}
	nEv := float64(len(events))
	hAllocs := testing.AllocsPerRun(10, func() { cluster.EncodeHistoryFrame(events, false) }) / nEv
	hcAllocs := testing.AllocsPerRun(10, func() { cluster.EncodeHistoryFrame(events, true) }) / nEv

	// Journal: the same recorded events in both on-disk codecs.
	jJSONBytes, jJSONAllocs, err := journalBench(events, "json")
	if err != nil {
		return err
	}
	jBinBytes, jBinAllocs, err := journalBench(events, "binary")
	if err != nil {
		return err
	}

	round := func(x float64) float64 { return math.Round(x*10) / 10 }
	t := bench.NewTable(
		fmt.Sprintf("loadgen wirebench: %s, seed %d, %d updates, batch %d", st.Name(), cfg.seed, len(payloads), cfg.batch),
		"path", "codec", "batch", "ops", "frames", "bytes/op", "allocs/op")
	t.AddRow("updates", "json", 1, len(payloads), v1Frames, round(float64(v1Bytes)/nOps), round(v1Allocs))
	t.AddRow("updates", "binary", cfg.batch, len(payloads), bFrames, round(float64(bBytes)/nOps), round(bAllocs))
	t.AddRow("range", "binary", cfg.batch, len(payloads), rFrames, round(float64(rBytes)/nOps), round(rAllocs))
	t.AddRow("range", "binary+flate", cfg.batch, len(payloads), rcFrames, round(float64(rcBytes)/nOps), round(rcAllocs))
	t.AddRow("history", "binary", 1, len(events), int64(1), round(float64(hBytes)/nEv), round(hAllocs))
	t.AddRow("history", "binary+flate", 1, len(events), int64(1), round(float64(hcBytes)/nEv), round(hcAllocs))
	t.AddRow("journal", "json", 1, len(events), int64(len(events)), round(float64(jJSONBytes)/float64(len(events))), round(jJSONAllocs))
	t.AddRow("journal", "binary", 1, len(events), int64(len(events)), round(float64(jBinBytes)/float64(len(events))), round(jBinAllocs))
	if err := out.Emit(t); err != nil {
		return err
	}

	if cfg.jsonOut {
		// The tracked artifact ends here: everything below is wall-clock and
		// would break the byte-identical drift gate.
		return nil
	}
	return runWirebenchLive(w, cfg, out)
}

// runWirebenchLive self-hosts a 3-node loopback cluster once per codec and
// drives the usual client mix through it, reporting throughput, latency,
// and the transport counters. Wall-clock: human-mode output only.
func runWirebenchLive(w io.Writer, cfg wirebenchConfig, out bench.Output) error {
	t := bench.NewTable(
		fmt.Sprintf("loadgen wirebench live: %s, %d clients x %d ops (wall-clock, untracked)", cfg.store, cfg.clients, cfg.ops),
		"codec", "ops/sec", "p50 ms", "p99 ms", "wire KB", "frames", "bytes/frame")
	for _, codec := range []string{"json", "binary"} {
		row, err := wirebenchLiveRun(cfg, codec)
		if err != nil {
			return err
		}
		t.AddRow(codec, row.opsPerSec, row.p50, row.p99,
			float64(row.bytes)/1024.0, row.frames, float64(row.bytes)/float64(row.frames))
	}
	return out.Emit(t)
}

type liveRow struct {
	opsPerSec float64
	p50, p99  float64
	bytes     int64
	frames    int64
}

func wirebenchLiveRun(cfg wirebenchConfig, codec string) (liveRow, error) {
	st, err := cli.OpenStore(cfg.store, spec.MVRTypes(), store.Options{})
	if err != nil {
		return liveRow{}, err
	}
	const n = 3
	nodes := make([]*cluster.Node, 0, n)
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	addrs := make(map[model.ReplicaID]string, n)
	for i := 0; i < n; i++ {
		nd, err := cluster.NewNode(cluster.Config{
			ID: model.ReplicaID(i), N: n, Store: st,
			Listen: "127.0.0.1:0", Seed: cfg.seed, Codec: codec,
		})
		if err != nil {
			return liveRow{}, err
		}
		nodes = append(nodes, nd)
		addrs[model.ReplicaID(i)] = nd.Addr()
	}
	for i, nd := range nodes {
		peers := make(map[model.ReplicaID]string)
		for id, a := range addrs {
			if id != model.ReplicaID(i) {
				peers[id] = a
			}
		}
		if err := nd.Connect(peers); err != nil {
			return liveRow{}, err
		}
	}

	objs := make([]model.ObjectID, cfg.objects)
	for i := range objs {
		objs[i] = model.ObjectID(fmt.Sprintf("x%d", i))
	}
	lats := make([][]time.Duration, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(gen.SplitSeed(cfg.seed, ci)))
			c, err := cluster.Dial(nodes[ci%n].Addr(), 0)
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; i < cfg.ops; i++ {
				obj := objs[rng.Intn(len(objs))]
				op := model.Read()
				if rng.Float64() < cfg.mutate {
					op = model.Write(model.Value(fmt.Sprintf("c%d.v%d", ci, i)))
				}
				t0 := time.Now()
				if _, err := c.Do(obj, op); err == nil {
					lats[ci] = append(lats[ci], time.Since(t0))
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if !cluster.WaitQuiesced(nodes, cfg.quiesceTimeout) {
		return liveRow{}, fmt.Errorf("wirebench live (%s): cluster did not quiesce within %v", codec, cfg.quiesceTimeout)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return liveRow{}, fmt.Errorf("wirebench live (%s): every operation failed", codec)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row := liveRow{
		opsPerSec: float64(len(all)) / elapsed.Seconds(),
		p50:       float64(percentile(all, 0.50).Microseconds()) / 1000.0,
		p99:       float64(percentile(all, 0.99).Microseconds()) / 1000.0,
	}
	for _, nd := range nodes {
		s := nd.Stats()
		row.bytes += s.BytesOut
		row.frames += s.FramesOut
	}
	return row, nil
}
