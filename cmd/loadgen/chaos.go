package main

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/durable"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/livecheck"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

// chaosConfig parameterizes a -chaos run: a self-hosted cluster (replicating
// over loopback TCP through the fault interceptor) driven by the usual
// client mix while a seeded fault schedule partitions links, shapes them,
// and crash/restarts a node.
type chaosConfig struct {
	store          string
	nodes          int
	clients        int
	ops            int
	mutate         float64
	objects        int
	seed           int64
	quiesceTimeout time.Duration
	jsonOut        bool
	dataDir        string
	churn          int
	// liveAudit streams every node's events through the online checker
	// (internal/livecheck) while the run is still serving load, then proves
	// the live verdict against the post-run merged-history audit.
	liveAudit bool
}

// chaosTick maps fault-schedule steps to wall time. Small enough that the
// default 80-step schedule finishes well inside a test run, large enough
// that partitions overlap real traffic.
const chaosTick = 5 * time.Millisecond

// chaosSchedule derives the run's fault schedule from the root seed alone —
// the reason the fault log is byte-identical across same-seed runs.
func chaosSchedule(cfg chaosConfig) fault.Schedule {
	return fault.Generate(fault.Config{
		Seed: cfg.seed, N: cfg.nodes, Steps: 80,
		Partitions: 1, Crashes: 1, LinkFaults: 2,
		Churns: cfg.churn,
	})
}

// runChaos boots the cluster under a Supervisor, emits the fault log,
// overlaps the schedule with client load, then walks the standard
// post-run pipeline: quiescence, convergence, merged-history audit.
func runChaos(w io.Writer, cfg chaosConfig) error {
	if cfg.nodes < 2 || cfg.clients < 1 || cfg.ops < 1 || cfg.objects < 1 {
		return fmt.Errorf("chaos needs at least two nodes and one client, op, and object")
	}
	objs := make([]model.ObjectID, cfg.objects)
	for i := range objs {
		objs[i] = model.ObjectID(fmt.Sprintf("x%d", i))
	}
	out := cli.Output(w, cfg.jsonOut)

	// Fault log first: it is a pure function of the seed, so rerunning with
	// the same -seed reproduces these lines byte for byte even though the
	// load timings below are wall-clock.
	sched := chaosSchedule(cfg)
	if err := out.Emit(sched.Table()); err != nil {
		return err
	}

	st, err := cli.OpenStore(cfg.store, spec.MVRTypes(), store.Options{})
	if err != nil {
		return err
	}
	em := fault.NewNetem(cfg.nodes)
	base := cluster.Config{
		Store: st, Seed: cfg.seed,
		DialTimeout:    time.Second,
		DialBackoffMin: 5 * time.Millisecond,
		DialBackoffMax: 100 * time.Millisecond,
		RetransmitMin:  25 * time.Millisecond,
		RetransmitMax:  250 * time.Millisecond,
	}
	if cfg.dataDir != "" {
		// Disk-backed chaos: every node journals through internal/durable and
		// every crash/restart directive recovers from the data directory —
		// the kill -9 code path under the fault schedule.
		base.Storage = &durable.Storage{Dir: cfg.dataDir}
	}
	var ck *livecheck.Checker
	if cfg.liveAudit {
		// One cluster-wide checker fed by every node's event-loop tap
		// (Observe is mutex-guarded; cross-stream skew is the checker's
		// normal operating mode). The supervisor copies base per
		// incarnation, so restarted nodes keep streaming into it.
		ck = livecheck.New(cfg.nodes, livecheck.Options{Types: spec.MVRTypes()})
		// Chaos clusters are single-shard (the Supervisor requires it), so
		// the tap's shard index is always 0 and one checker sees everything.
		base.Tap = func(_ int, ev livecheck.Event) { ck.Observe(ev) }
	}
	sup, err := cluster.NewSupervisor(base, cfg.nodes, em, chaosTick)
	if err != nil {
		return err
	}
	defer sup.Close()

	// Load and schedule overlap: clients keep issuing operations while
	// links are cut and the victim is down. Operations against a crashed
	// node fail fast with ErrNodeDown and count as errors — downtime is
	// part of the experiment, not a reason to stall the client.
	type result struct {
		latencies []time.Duration
		errs      int
	}
	results := make([]result, cfg.clients)
	schedErr := make(chan error, 1)
	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		schedErr <- sup.RunSchedule(sched)
	}()
	for ci := 0; ci < cfg.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(gen.SplitSeed(cfg.seed, ci)))
			for i := 0; i < cfg.ops; i++ {
				obj := objs[rng.Intn(len(objs))]
				op := model.Read()
				if rng.Float64() < cfg.mutate {
					op = model.Write(model.Value(fmt.Sprintf("c%d.v%d", ci, i)))
				}
				t0 := time.Now()
				if _, err := sup.Do(ci%cfg.nodes, obj, op); err != nil {
					results[ci].errs++
				} else {
					results[ci].latencies = append(results[ci].latencies, time.Since(t0))
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := <-schedErr; err != nil {
		return fmt.Errorf("fault schedule: %w", err)
	}
	// Snapshot the live verdict before quiescence: a violation the checker
	// flagged here was caught while the cluster was still serving load, not
	// reconstructed after the fact.
	var preQuiesce livecheck.Verdict
	if ck != nil {
		preQuiesce = ck.Verdict()
	}

	var lats []time.Duration
	errs := 0
	for _, r := range results {
		lats = append(lats, r.latencies...)
		errs += r.errs
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	// The schedule healed every fault and restarted every victim on its
	// way out, so the ordinary quiescence/convergence/audit pipeline owes
	// the same clean verdict as a fault-free run (Definition 3 delivery
	// plus Lemma 3 convergence survive transient faults).
	live := sup.Nodes()
	if len(live) != cfg.nodes {
		return fmt.Errorf("%d of %d nodes live after the schedule", len(live), cfg.nodes)
	}
	if !cluster.WaitQuiesced(live, cfg.quiesceTimeout) {
		return fmt.Errorf("cluster did not quiesce within %v after the schedule", cfg.quiesceTimeout)
	}
	doers := make([]cluster.Doer, cfg.nodes)
	for i := range doers {
		doers[i] = sup.Doer(i)
	}
	convergence := cluster.CheckConverged(doers, objs)

	var agg cluster.Stats
	for _, nd := range live {
		s := nd.Stats()
		agg.Ops += s.Ops
		agg.Sends += s.Sends
		agg.BytesOut += s.BytesOut
		agg.Retransmits += s.Retransmits
		agg.Reconnects += s.Reconnects
		agg.DupFrames += s.DupFrames
		agg.Violations += s.Violations
	}
	crashes, restarts := sup.Crashes()
	leaves, joins := sup.Churn()
	partitions, _, linkFaults := sched.Counts()

	pct := func(p float64) interface{} { return latCell(lats, p) }
	t := bench.NewTable(fmt.Sprintf("loadgen chaos: %s, %d nodes, seed %d", cfg.store, cfg.nodes, cfg.seed),
		"clients", "ops", "errors", "samples", "ops/sec", "p50 ms", "p99 ms",
		"partitions", "crashes", "restarts", "leaves", "joins", "link faults", "retransmits", "reconnects")
	t.AddRow(cfg.clients, cfg.clients*cfg.ops, errs, len(lats),
		float64(len(lats))/elapsed.Seconds(),
		pct(0.50), pct(0.99),
		partitions, crashes, restarts, leaves, joins, linkFaults,
		agg.Retransmits, agg.Reconnects)
	if err := out.Emit(t); err != nil {
		return err
	}

	hists, err := sup.Histories()
	if err != nil {
		return err
	}
	audited, err := cluster.BuildAudit(hists)
	if err != nil {
		return err
	}
	events := 0
	for _, h := range hists {
		events += len(h.Events)
	}
	causalVerdict := error(nil)
	causal := strings.HasPrefix(cfg.store, "causal")
	if causal {
		causalVerdict = consistency.CheckCausal(audited.Abstract, spec.MVRTypes())
	}
	a := bench.NewTable(fmt.Sprintf("loadgen chaos audit: %s, %d nodes", cfg.store, cfg.nodes),
		"metric", "value")
	a.AddRow("recorded events", events)
	a.AddRow("messages broadcast", len(audited.Exec.Messages))
	a.AddRow("well-formed execution", bench.Check(audited.Exec.CheckWellFormed()))
	a.AddRow("converged after quiescence", bench.Check(convergence))
	if causal {
		a.AddRow("derived A causal (Def 12)", bench.Check(causalVerdict))
	}
	a.AddRow("§4 property violations", agg.Violations)
	var equivErr error
	if ck != nil {
		// The live verdict must agree with the offline pipeline: both sides
		// evaluate the same recorded frontiers, one incrementally during the
		// run, one from the merged histories afterwards.
		live := ck.Verdict()
		reference := consistency.CheckCausal(audited.Abstract, spec.MVRTypes())
		if (live.Violations > 0) != (reference != nil) {
			equivErr = fmt.Errorf("live checker says %d violations, post-run audit says %v",
				live.Violations, reference)
		}
		a.AddRow("live events checked", live.Events)
		a.AddRow("live violations (before quiesce)", preQuiesce.Violations)
		a.AddRow("live violations (final)", live.Violations)
		a.AddRow("live peak tracked state", live.PeakTracked)
		a.AddRow("live verdict matches post-run audit", bench.Check(equivErr))
	}
	if err := out.Emit(a); err != nil {
		return err
	}

	if err := audited.Exec.CheckWellFormed(); err != nil {
		return err
	}
	if equivErr != nil {
		return equivErr
	}
	if causalVerdict != nil {
		return causalVerdict
	}
	if agg.Violations != 0 {
		return fmt.Errorf("%d §4 property violations recorded", agg.Violations)
	}
	return convergence
}
