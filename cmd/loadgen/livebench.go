package main

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/livecheck"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"
)

// livebenchConfig parameterizes a -livebench run: the deterministic online
// checker cost table behind the tracked BENCH_LIVECHECK.json.
type livebenchConfig struct {
	seed    int64
	steps   int
	objects int
	jsonOut bool
}

// runLivebench measures the online checker over every registered store: a
// seeded simulator run (fault schedule overlapping the workload, then a
// quiescing drain) streams through livecheck, and the table reports how
// much state the checker held at its peak against how many events flowed
// past it — the bounded-memory claim as a number. Everything in the table
// is a pure function of (store, seed, steps, objects): event counts,
// violation counts, and peak tracked state all come from the deterministic
// simulator, never from wall time. Human mode appends a wall-clock replay
// table (events/sec through a fresh checker) that is deliberately kept out
// of the JSON so the tracked artifact stays byte-stable.
func runLivebench(w io.Writer, cfg livebenchConfig) error {
	if cfg.steps < 1 || cfg.objects < 1 {
		return fmt.Errorf("livebench needs at least one step and one object")
	}
	objs := make([]model.ObjectID, cfg.objects)
	for i := range objs {
		objs[i] = model.ObjectID(fmt.Sprintf("x%d", i))
	}
	names := store.Names()
	sort.Strings(names)

	const nodes = 3
	t := bench.NewTable(
		fmt.Sprintf("loadgen livebench: %d nodes, seed %d, %d steps", nodes, cfg.seed, cfg.steps),
		"store", "events", "dos", "violations", "peak tracked", "final tracked", "peak/events %")
	type replay struct {
		name   string
		events []livecheck.Event
	}
	var replays []replay
	for _, name := range names {
		st, err := cli.OpenStore(name, spec.MVRTypes(), store.Options{})
		if err != nil {
			return err
		}
		ck := livecheck.New(nodes, livecheck.Options{Types: spec.MVRTypes()})
		rec := livecheck.NewRecorder()
		c := sim.NewCluster(st, nodes, cfg.seed)
		c.SetTap(livecheck.Tee(ck.Observe, rec.Observe))
		sched := fault.Generate(fault.Config{
			Seed: cfg.seed, N: nodes, Steps: cfg.steps,
			Partitions: 1, Crashes: 1, LinkFaults: 2,
		})
		// Delivery-heavy workload: sends and deliveries keep pace with
		// mints, so the undelivered window — and with it the checker's
		// tracked state — stays stationary instead of growing with the
		// run. (The checker's state is Θ(window); a workload whose window
		// grows linearly would measure the workload, not the checker.)
		c.RunScheduled(sched, sim.WorkloadConfig{
			Objects: objs, Steps: cfg.steps,
			MutateRatio: 0.4, SendProb: 0.9, DeliverProb: 0.95,
		})
		c.Quiesce()
		v := ck.Verdict()
		ratio := 0.0
		if v.Events > 0 {
			ratio = float64(v.PeakTracked) * 100 / float64(v.Events)
		}
		t.AddRow(name, v.Events, v.Dos, v.Violations, v.PeakTracked, v.TrackedDots, ratio)
		var all []livecheck.Event
		for _, evs := range rec.PerNode() {
			all = append(all, evs...)
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].Lamport < all[j].Lamport })
		replays = append(replays, replay{name: name, events: all})
	}
	out := cli.Output(w, cfg.jsonOut)
	if err := out.Emit(t); err != nil {
		return err
	}
	if cfg.jsonOut {
		return nil
	}

	// Wall-clock replay: the recorded streams pushed through a fresh
	// checker as fast as the CPU allows — the per-event overhead a serving
	// cluster would pay for the tap.
	rt := bench.NewTable("livebench replay throughput (wall clock, not tracked)",
		"store", "events", "elapsed ms", "events/sec")
	for _, rp := range replays {
		ck := livecheck.New(nodes, livecheck.Options{Types: spec.MVRTypes()})
		start := time.Now()
		for _, ev := range rp.events {
			ck.Observe(ev)
		}
		elapsed := time.Since(start)
		persec := 0.0
		if elapsed > 0 {
			persec = float64(len(rp.events)) / elapsed.Seconds()
		}
		rt.AddRow(rp.name, len(rp.events), float64(elapsed.Microseconds())/1000.0, persec)
	}
	return out.Emit(rt)
}
