package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunSyncbenchDeterministic: the tracked BENCH_SYNC table must be
// byte-identical across runs of the same flags and seed, and its rows must
// show catch-up cost proportional to the missing suffix (monotone pull
// bytes, fixed full-transfer baseline).
func TestRunSyncbenchDeterministic(t *testing.T) {
	cfg := syncbenchConfig{store: "causal", ops: 120, batch: 64, seed: 7, objects: 3, jsonOut: true}
	var a, b bytes.Buffer
	if err := runSyncbench(&a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := runSyncbench(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed produced different sync tables:\n%s\n%s", a.String(), b.String())
	}

	var table struct {
		Columns []string        `json:"columns"`
		Rows    [][]json.Number `json:"rows"`
	}
	if err := json.Unmarshal(a.Bytes(), &table); err != nil {
		t.Fatalf("syncbench JSON does not parse: %v\n%s", err, a.String())
	}
	col := map[string]int{}
	for i, c := range table.Columns {
		col[c] = i
	}
	if want := len(syncbenchPrefixes) * len(syncbenchWindows); len(table.Rows) != want {
		t.Fatalf("%d rows, want %d", len(table.Rows), want)
	}
	prevPull := int64(-1)
	full := ""
	for i, row := range table.Rows {
		pull, err := row[col["pull B"]].Int64()
		if err != nil {
			t.Fatal(err)
		}
		win, err := row[col["win"]].Int64()
		if err != nil {
			t.Fatal(err)
		}
		// Rows pair up per prefix (one per window): bytes shrink between
		// prefixes, stay equal within a pair.
		if i%len(syncbenchWindows) == 0 {
			if prevPull >= 0 && pull >= prevPull {
				t.Fatalf("row %d: pull bytes %d did not shrink below %d", i, pull, prevPull)
			}
			prevPull = pull
		} else if pull != prevPull {
			t.Fatalf("row %d: window %d changed pull bytes %d != %d", i, win, pull, prevPull)
		}
		if f := row[col["full B"]].String(); full == "" {
			full = f
		} else if f != full {
			t.Fatalf("row %d: full-transfer baseline moved: %s != %s", i, f, full)
		}
	}

	// The window column must pay off where it matters: for any multi-chunk
	// pull, windowed RTTs strictly below stop-and-wait.
	windowedWins := 0
	for i := 0; i+1 < len(table.Rows); i += len(syncbenchWindows) {
		chunks, _ := table.Rows[i][col["chunks"]].Int64()
		swRTT, _ := table.Rows[i][col["rtts"]].Int64()
		winRTT, _ := table.Rows[i+1][col["rtts"]].Int64()
		if chunks > 1 {
			if winRTT >= swRTT {
				t.Fatalf("row %d: windowed rtts %d not below stop-and-wait %d (%d chunks)", i, winRTT, swRTT, chunks)
			}
			windowedWins++
		}
	}
	if windowedWins == 0 {
		t.Fatal("no multi-chunk scenario exercised the window")
	}
}
