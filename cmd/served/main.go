// Command served runs one replica of a TCP-backed store cluster
// (internal/cluster). Peers replicate to each other over the listen
// address; clients (cmd/loadgen, or anything speaking the cluster
// protocol) connect to the same address. An optional admin HTTP endpoint
// serves health, metrics, and the node's recorded history for offline
// auditing.
//
// Usage (3-node cluster on one machine):
//
//	served -store causal -id 0 -listen :7000 -peers 1=:7001,2=:7002 &
//	served -store causal -id 1 -listen :7001 -peers 0=:7000,2=:7002 &
//	served -store causal -id 2 -listen :7002 -peers 0=:7000,1=:7001 &
//
// The cluster size is 1+len(peers) unless -n says otherwise. Shutdown is
// graceful on SIGINT/SIGTERM.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	storeName := cli.StoreFlag(flag.CommandLine, "causal")
	id := flag.Int("id", 0, "this node's replica ID (0-based)")
	listen := flag.String("listen", "127.0.0.1:7000", "replication+client listen address")
	peersSpec := flag.String("peers", "", "peer replicas as id=addr pairs, comma-separated (e.g. 1=:7001,2=:7002)")
	n := flag.Int("n", 0, "cluster size (default 1+len(peers))")
	admin := flag.String("admin", "", "admin HTTP listen address serving /healthz, /metrics, /history (disabled if empty)")
	k := flag.Int("k", 2, "K for the kbuffer store")
	flag.Parse()

	if err := run(*storeName, *id, *listen, *peersSpec, *n, *admin, *k); err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
}

// parsePeers parses "1=:7001,2=host:7002" into a peer address map.
func parsePeers(spec string) (map[model.ReplicaID]string, error) {
	peers := make(map[model.ReplicaID]string)
	if spec == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(part, "=")
		if !ok || addr == "" {
			return nil, fmt.Errorf("bad peer %q (want id=addr)", part)
		}
		var rid int
		if _, err := fmt.Sscanf(id, "%d", &rid); err != nil || rid < 0 {
			return nil, fmt.Errorf("bad peer id %q", id)
		}
		if _, dup := peers[model.ReplicaID(rid)]; dup {
			return nil, fmt.Errorf("duplicate peer id %d", rid)
		}
		peers[model.ReplicaID(rid)] = addr
	}
	return peers, nil
}

func run(storeName string, id int, listen, peersSpec string, n int, admin string, k int) error {
	peers, err := parsePeers(peersSpec)
	if err != nil {
		return err
	}
	if n == 0 {
		n = 1 + len(peers)
	}
	st, err := cli.OpenStore(storeName, spec.MVRTypes(), store.Options{K: k})
	if err != nil {
		return err
	}
	node, err := cluster.NewNode(cluster.Config{
		ID:     model.ReplicaID(id),
		N:      n,
		Store:  st,
		Listen: listen,
		Peers:  peers,
	})
	if err != nil {
		return err
	}
	defer node.Close()

	peerIDs := make([]int, 0, len(peers))
	for pid := range peers {
		peerIDs = append(peerIDs, int(pid))
	}
	sort.Ints(peerIDs)
	fmt.Printf("served: r%d (%s, cluster of %d) listening on %s, peers %v\n",
		id, st.Name(), n, node.Addr(), peerIDs)

	if admin != "" {
		go serveAdmin(admin, node)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("served: r%d shutting down on %v\n", id, s)
	return nil
}

// serveAdmin exposes the node over plain HTTP for operators and offline
// audits: /healthz (200 once serving), /metrics (the Stats snapshot), and
// /history (the recorded local history, ready for cluster.BuildAudit).
func serveAdmin(addr string, node *cluster.Node) {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok r%d quiesced=%v\n", node.ID(), node.Quiesced())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, node.Stats())
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, node.History())
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "served: admin:", err)
	}
}
