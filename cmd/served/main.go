// Command served runs one replica of a TCP-backed store cluster
// (internal/cluster). Peers replicate to each other over the listen
// address; clients (cmd/loadgen, or anything speaking the cluster
// protocol) connect to the same address. An optional admin HTTP endpoint
// serves health, metrics, and the node's recorded history for offline
// auditing.
//
// Usage (3-node cluster on one machine):
//
//	served -store causal -id 0 -listen 127.0.0.1:7000 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002 &
//	served -store causal -id 1 -listen 127.0.0.1:7001 -peers 0=127.0.0.1:7000,2=127.0.0.1:7002 &
//	served -store causal -id 2 -listen 127.0.0.1:7002 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001 &
//
// Peer addresses must carry an explicit host: they are re-advertised to
// other members during joins, where a bare ":7001" would point each
// receiver at itself.
//
// With -data-dir the node journals every recorded event to an fsync'd
// on-disk log (internal/durable) before acknowledging it, and restores
// its history from that directory on boot — so the process can be
// kill -9'd and restarted in place without losing acknowledged state.
//
// A node can also join a running cluster dynamically instead of being
// named in every peer list at boot:
//
//	served -store causal -id 3 -n 4 -listen 127.0.0.1:7003 -join 0=127.0.0.1:7000
//
// The joiner announces itself to the seed, adopts the cluster's
// membership view, catches up on missing history via Merkle anti-entropy
// over the durable log (pulling only the ranges it lacks), and then
// enters normal replication. -join requires -n, since the seeds are not
// the whole population.
//
// The cluster size is 1+len(peers) unless -n says otherwise. Shutdown is
// graceful on SIGINT/SIGTERM.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/livecheck"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	var cfg serveConfig
	storeName := cli.StoreFlag(flag.CommandLine, "causal")
	flag.IntVar(&cfg.id, "id", 0, "this node's replica ID (0-based)")
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:7000", "replication+client listen address")
	flag.StringVar(&cfg.peersSpec, "peers", "", "peer replicas as id=addr pairs, comma-separated (e.g. 1=127.0.0.1:7001,2=127.0.0.1:7002)")
	flag.IntVar(&cfg.n, "n", 0, "cluster size (default 1+len(peers); required with -join)")
	flag.StringVar(&cfg.admin, "admin", "", "admin HTTP listen address serving /healthz, /metrics, /membership, /history (disabled if empty)")
	flag.IntVar(&cfg.k, "k", 2, "K for the kbuffer store")
	flag.IntVar(&cfg.shards, "shards", 1, "independent keyspace shards (event loops) inside this node; all nodes must agree")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "directory for the durable event journal (journaling disabled if empty)")
	flag.StringVar(&cfg.wireCodec, "wire-codec", "", "preferred wire codec for replication links and the journal (json, binary; default: the store's own preference)")
	flag.StringVar(&cfg.joinSpec, "join", "", "join a running cluster through these seed nodes (id=addr pairs like -peers; requires -n)")
	flag.DurationVar(&cfg.syncDelay, "sync-delay", 0, "pause between anti-entropy chunks served to a joiner (test knob, 0 disables)")
	flag.IntVar(&cfg.syncWindow, "sync-window", 0, "anti-entropy pull credit window in chunks (1 = stop-and-wait; default 8)")
	flag.StringVar(&cfg.compress, "compress", "", "large-frame compression offered in negotiation (flate, none; default flate)")
	flag.Parse()
	cfg.store = *storeName

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
}

// serveConfig carries the parsed command line into run.
type serveConfig struct {
	store      string
	id         int
	listen     string
	peersSpec  string
	n          int
	admin      string
	k          int
	shards     int
	dataDir    string
	wireCodec  string
	joinSpec   string
	syncDelay  time.Duration
	syncWindow int
	compress   string
}

// checkPeerAddr rejects peer addresses a membership exchange could not
// re-advertise: no port, or an empty host like ":7001", which every
// receiver would resolve to itself.
func checkPeerAddr(addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad address %q: %v", addr, err)
	}
	if host == "" {
		return fmt.Errorf("address %q has no host (a bare port is ambiguous once re-advertised to other members)", addr)
	}
	if port == "" {
		return fmt.Errorf("address %q has no port", addr)
	}
	return nil
}

// parsePeers parses "1=127.0.0.1:7001,2=host:7002" into a peer address map.
// self is this node's own replica ID: a peer entry claiming it is a
// configuration error caught here, not a dial loop discovered at runtime.
func parsePeers(spec string, self int) (map[model.ReplicaID]string, error) {
	peers := make(map[model.ReplicaID]string)
	if spec == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(part, "=")
		if !ok || addr == "" {
			return nil, fmt.Errorf("bad peer %q (want id=addr)", part)
		}
		rid, err := strconv.Atoi(id)
		if err != nil || rid < 0 {
			return nil, fmt.Errorf("bad peer id %q", id)
		}
		if rid == self {
			return nil, fmt.Errorf("peer %q names this node's own id %d", part, self)
		}
		if err := checkPeerAddr(addr); err != nil {
			return nil, err
		}
		if _, dup := peers[model.ReplicaID(rid)]; dup {
			return nil, fmt.Errorf("duplicate peer id %d", rid)
		}
		peers[model.ReplicaID(rid)] = addr
	}
	return peers, nil
}

// parseTopology validates the -peers and -join flags together: both use the
// same id=addr syntax, and an id may appear in at most one of them — a node
// that is both a static peer and a join seed would be dialed twice under
// two different link-setup protocols.
func parseTopology(cfg serveConfig) (peers, join map[model.ReplicaID]string, err error) {
	peers, err = parsePeers(cfg.peersSpec, cfg.id)
	if err != nil {
		return nil, nil, err
	}
	if cfg.joinSpec == "" {
		return peers, nil, nil
	}
	join, err = parsePeers(cfg.joinSpec, cfg.id)
	if err != nil {
		return nil, nil, fmt.Errorf("-join: %w", err)
	}
	if len(join) == 0 {
		return nil, nil, fmt.Errorf("-join: no seed nodes")
	}
	if cfg.n == 0 {
		return nil, nil, fmt.Errorf("-join requires -n: the seed list is not the whole cluster")
	}
	for rid := range join {
		if _, dup := peers[rid]; dup {
			return nil, nil, fmt.Errorf("node %d appears in both -peers and -join", rid)
		}
	}
	return peers, join, nil
}

func run(cfg serveConfig) error {
	peers, join, err := parseTopology(cfg)
	if err != nil {
		return err
	}
	n := cfg.n
	if n == 0 {
		n = 1 + len(peers)
	}
	st, err := cli.OpenStore(cfg.store, spec.MVRTypes(), store.Options{K: cfg.k})
	if err != nil {
		return err
	}

	if cfg.shards < 1 {
		return fmt.Errorf("-shards %d: need at least 1", cfg.shards)
	}
	// Node-local streaming checkers, one per shard: each observes only this
	// node's own event stream for its shard (peers' mints arrive as
	// watermarks), so it enforces the session guarantees — frontier
	// monotonicity, read-your-writes, own-dot integrity — live, without any
	// cross-node coordination. Per-shard checkers compose (Proposition 1: no
	// key spans shards), so the set's verdict covers the whole node. Full
	// causal/rval verdicts still come from the offline /history + BuildAudit
	// pipeline, run per shard.
	ck := livecheck.NewShardSet(n, cfg.shards, livecheck.Options{
		Observed: []model.ReplicaID{model.ReplicaID(cfg.id)},
		Types:    spec.MVRTypes(),
	})
	ncfg := cluster.Config{
		ID:             model.ReplicaID(cfg.id),
		N:              n,
		Store:          st,
		Listen:         cfg.listen,
		Peers:          peers,
		Join:           join,
		Shards:         cfg.shards,
		Codec:          cfg.wireCodec,
		SyncChunkDelay: cfg.syncDelay,
		SyncWindow:     cfg.syncWindow,
		Compress:       cfg.compress,
		Tap:            ck.Observe,
	}
	if cfg.dataDir != "" {
		// Each shard journals to its own fsync'd log (data-dir itself when
		// unsharded — the pre-sharding layout — or data-dir/shard-NNN/ per
		// shard), opened by the node via the storage hook so recovery and
		// journaling follow each shard's event loop. Sharded logs share one
		// group-commit coordinator: concurrent appends across shards ride a
		// single fsync round, and acked ⇒ on-disk still holds per shard.
		ncfg.Storage = &shardStorage{
			dir:   cfg.dataDir,
			codec: cfg.wireCodec,
			group: durable.NewGroupCommitter(),
		}
	}
	node, err := cluster.NewNode(ncfg)
	if err != nil {
		return err
	}
	defer node.Close()
	if cfg.dataDir != "" {
		fmt.Printf("served: r%d journaling to %s (restored %d events)\n", cfg.id, cfg.dataDir, node.Restored())
	}

	peerIDs := make([]int, 0, len(peers))
	for pid := range peers {
		peerIDs = append(peerIDs, int(pid))
	}
	sort.Ints(peerIDs)
	fmt.Printf("served: r%d (%s, cluster of %d) listening on %s, peers %v\n",
		cfg.id, st.Name(), n, node.Addr(), peerIDs)

	var adminSrv *http.Server
	if cfg.admin != "" {
		adminSrv, err = startAdmin(cfg.admin, node, ck)
		if err != nil {
			return fmt.Errorf("admin: %w", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("served: r%d shutting down on %v\n", cfg.id, s)
	if adminSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := adminSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "served: admin shutdown:", err)
		}
	}
	return nil
}

// shardStorage implements cluster.NodeStorage over the served data-dir
// layout: the directory itself holds the single-shard log (byte-compatible
// with directories written before sharding existed), and a sharded node
// nests shard-NNN/ subdirectories, one log per shard, all sharing the
// group-commit fsync coordinator.
type shardStorage struct {
	dir   string
	codec string
	group *durable.GroupCommitter
}

func (s *shardStorage) Open(id model.ReplicaID, n int, storeName string, shard, shards int) (func(cluster.Event) error, *cluster.History, *membership.Forest, func() error, error) {
	dir := s.dir
	opts := durable.Options{Codec: s.codec}
	if shards > 1 {
		dir = filepath.Join(s.dir, fmt.Sprintf("shard-%03d", shard))
		opts.Group = s.group
	}
	l, hist, err := durable.Open(dir, durable.Meta{Node: id, N: n, Store: storeName, Shard: shard, Shards: shards}, opts)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return l.Append, hist, l.Tree(), l.Close, nil
}

// writeJSON marshals v to a buffer before touching the ResponseWriter, so a
// marshal failure becomes a clean 500 instead of an error trailer glued to
// a 200 and half a body.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus is writeJSON with an explicit status code, for endpoints
// whose status carries the verdict (/livecheck: 503 once dirty).
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

// startAdmin exposes the node over plain HTTP for operators and offline
// audits: /healthz (200 once serving), /metrics (the Stats snapshot),
// /membership (the node's view of who is in the cluster), /history
// (the recorded local history, ready for cluster.BuildAudit; ?shard=N
// selects one shard of a sharded node, default 0), and /livecheck (the
// streaming checkers' composed verdict — 200 while clean, 503 once a
// session-guarantee violation has been flagged, so a probe can alert
// without parsing the body; ?shard=N narrows to one shard). The returned
// server is already serving; the caller owns its Shutdown.
func startAdmin(addr string, node *cluster.Node, ck *livecheck.ShardSet) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok r%d quiesced=%v\n", node.ID(), node.Quiesced())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, node.Stats())
	})
	mux.HandleFunc("/membership", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, node.Membership())
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		shard := 0
		if s := r.URL.Query().Get("shard"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad shard", http.StatusBadRequest)
				return
			}
			shard = v
		}
		h, err := node.ShardHistory(shard)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/livecheck", func(w http.ResponseWriter, r *http.Request) {
		var v livecheck.Verdict
		if s := r.URL.Query().Get("shard"); s != "" {
			i, err := strconv.Atoi(s)
			if err != nil || i < 0 || i >= ck.Shards() {
				http.Error(w, "bad shard", http.StatusBadRequest)
				return
			}
			v = ck.Shard(i).Verdict()
		} else {
			v = ck.Verdict()
		}
		code := http.StatusOK
		if !v.Clean {
			code = http.StatusServiceUnavailable
		}
		writeJSONStatus(w, code, v)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "served: admin:", err)
		}
	}()
	return srv, nil
}
