package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

// TestMain doubles as the served entrypoint for the kill -9 harness: when
// re-exec'd with SERVED_RUN_MAIN=1 the test binary IS served, flags and
// all, so the harness below can SIGKILL a real process mid-run.
func TestMain(m *testing.M) {
	if os.Getenv("SERVED_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// freePort reserves a loopback port by binding and immediately releasing
// it; the momentary race is acceptable in a test harness.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// syncBuffer collects the child's output; exec's copier goroutine writes
// while the test reads, so both sides lock.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// servedProc is one child served process under harness control.
type servedProc struct {
	cmd *exec.Cmd
	out *syncBuffer
}

func spawnServedArgs(t *testing.T, args ...string) *servedProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SERVED_RUN_MAIN=1")
	out := &syncBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return &servedProc{cmd: cmd, out: out}
}

func spawnServed(t *testing.T, addr, peers, dataDir string) *servedProc {
	t.Helper()
	return spawnServedArgs(t,
		"-store", "causal", "-id", "0", "-listen", addr,
		"-peers", peers, "-n", "3", "-data-dir", dataDir)
}

// dialReady polls the child's replication port until it accepts clients.
func dialReady(t *testing.T, addr string) *cluster.Client {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := cluster.Dial(addr, time.Second)
		if err == nil {
			if _, err := c.Stats(); err == nil {
				return c
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("child on %s never became ready: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestKill9Recovery is the tentpole's end-to-end proof: node 0 runs as a
// real served child process journaling to -data-dir, takes client writes
// while replicating with two in-process peers, and is SIGKILL'd mid-load.
// A fresh child on the same data directory must restore the journal, rejoin
// the cluster, reach quiescence, converge with the peers, and audit clean —
// which (per the ack-after-fsync ordering) also proves no event another
// node holds a receipt for was lost to the kill.
func TestKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	addr0 := freePort(t)
	dataDir := t.TempDir()

	// In-process peers r1 and r2.
	mkNode := func(id int) *cluster.Node {
		st, err := cli.OpenStore("causal", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd, err := cluster.NewNode(cluster.Config{
			ID: model.ReplicaID(id), N: 3, Store: st, Listen: "127.0.0.1:0",
			DialTimeout:    time.Second,
			DialBackoffMin: 5 * time.Millisecond,
			DialBackoffMax: 100 * time.Millisecond,
			RetransmitMin:  25 * time.Millisecond,
			RetransmitMax:  250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		return nd
	}
	r1, r2 := mkNode(1), mkNode(2)
	if err := r1.Connect(map[model.ReplicaID]string{0: addr0, 2: r2.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := r2.Connect(map[model.ReplicaID]string{0: addr0, 1: r1.Addr()}); err != nil {
		t.Fatal(err)
	}
	peerSpec := fmt.Sprintf("1=%s,2=%s", r1.Addr(), r2.Addr())

	// First incarnation: load it, then kill -9 mid-stream.
	child := spawnServed(t, addr0, peerSpec, dataDir)
	c := dialReady(t, addr0)
	acked := 0
	for i := 0; i < 30; i++ {
		if _, err := c.Do("x", model.Write(model.Value(fmt.Sprintf("pre%d", i)))); err != nil {
			t.Fatalf("write %d: %v\nchild output:\n%s", i, err, child.out)
		}
		acked++
		if _, err := r1.Do("y", model.Write(model.Value(fmt.Sprintf("peer%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	// No quiescence wait: the kill lands while replication is in flight.
	if err := child.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child.cmd.Wait()

	// Second incarnation on the same data directory.
	child = spawnServed(t, addr0, peerSpec, dataDir)
	defer func() {
		child.cmd.Process.Signal(syscall.SIGTERM)
		child.cmd.Wait()
	}()
	c = dialReady(t, addr0)
	defer c.Close()

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 {
		t.Fatalf("restarted child reports no events; journal not restored\nchild output:\n%s", child.out)
	}
	if !strings.Contains(child.out.String(), "restored") {
		t.Fatalf("restart did not report a restore:\n%s", child.out)
	}

	// Fresh traffic everywhere, then cluster-wide quiescence: two
	// consecutive clean polls across the child (via Stats) and both peers.
	for i := 0; i < 5; i++ {
		if _, err := c.Do("x", model.Write(model.Value(fmt.Sprintf("post%d", i)))); err != nil {
			t.Fatalf("post-restart write %d: %v\nchild output:\n%s", i, err, child.out)
		}
	}
	quiesced := func() bool {
		if !r1.Quiesced() || !r2.Quiesced() {
			return false
		}
		s, err := c.Stats()
		return err == nil && s.Quiesced
	}
	deadline := time.Now().Add(30 * time.Second)
	clean := 0
	for clean < 2 {
		if time.Now().After(deadline) {
			s, _ := c.Stats()
			t.Fatalf("cluster did not quiesce after restart; child stats %+v, r1 %+v, r2 %+v\nchild output:\n%s",
				s, r1.Stats(), r2.Stats(), child.out)
		}
		if quiesced() {
			clean++
		} else {
			clean = 0
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Converge and audit across the process boundary.
	doers := []cluster.Doer{c, r1, r2}
	if err := cluster.CheckConverged(doers, []model.ObjectID{"x", "y"}); err != nil {
		t.Fatalf("%v\nchild output:\n%s", err, child.out)
	}
	h0, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(h0.Events) < acked {
		t.Fatalf("recovered history has %d events, fewer than the %d acked client writes", len(h0.Events), acked)
	}
	audit, err := cluster.BuildAudit([]cluster.History{h0, r1.History(), r2.History()})
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatalf("derived abstract execution not causal: %v", err)
	}
	for _, nd := range []*cluster.Node{r1, r2} {
		if v := nd.Violations(); len(v) != 0 {
			t.Fatalf("r%d property violations: %v", nd.ID(), v)
		}
	}
}

// TestKill9MidSyncJoin is the membership subsystem's end-to-end crash
// proof: a served child joins a live donor through -join with an empty
// data directory, the donor paces its anti-entropy chunks (SyncChunkDelay)
// so the pull is held open, and the joiner is SIGKILL'd mid-pull. A fresh
// child on the same data directory must restore the partial journal
// (journal-before-ack made every acked chunk durable), re-join, pull only
// the still-missing suffix — verified by the donor's served-update
// accounting, which would double if the restart re-pulled the whole log —
// converge with the donor, and audit clean.
//
// The synced history belongs to a node that wrote it and then left: a
// live origin's backlog also flows over the replication link the donor
// opens back to the joiner (racing the paced pull), but a departed
// origin's updates can only arrive via anti-entropy, which pins the whole
// catch-up inside the kill window.
//
// The harness runs once per pull credit window: stop-and-wait (window 1,
// the pre-v4 protocol) and the windowed default. Journal-before-ack holds
// identically in both — the joiner applies and journals every chunk before
// its ack leaves, the credit window only lets more unacked chunks be in
// flight — so a kill -9 mid-pull must still resume from the partial
// journal without re-pulling anything already journaled.
func TestKill9MidSyncJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	for _, window := range []int{1, 8} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			testKill9MidSyncJoin(t, window)
		})
	}
}

func testKill9MidSyncJoin(t *testing.T, window int) {
	const writes = 30

	mkNode := func(id int, mut func(*cluster.Config)) *cluster.Node {
		st, err := cli.OpenStore("causal", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := cluster.Config{
			ID: model.ReplicaID(id), N: 3, Store: st, Listen: "127.0.0.1:0",
			DialTimeout:    time.Second,
			DialBackoffMin: 5 * time.Millisecond,
			DialBackoffMax: 100 * time.Millisecond,
			RetransmitMin:  25 * time.Millisecond,
			RetransmitMax:  250 * time.Millisecond,
		}
		if mut != nil {
			mut(&cfg)
		}
		nd, err := cluster.NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nd
	}
	// Donor r0: JSON-pinned so range chunks carry one update each, with a
	// chunk delay that stretches the 30-update pull across ~1.5s — a wide
	// window for the kill.
	donor := mkNode(0, func(c *cluster.Config) {
		c.Codec = "json"
		c.SyncChunkDelay = 50 * time.Millisecond
	})
	defer donor.Close()

	// Origin r2 writes the history to be synced, replicates it to the
	// donor, and departs.
	r2 := mkNode(2, nil)
	if err := r2.Connect(map[model.ReplicaID]string{0: donor.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := donor.Connect(map[model.ReplicaID]string{2: r2.Addr()}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		if _, err := r2.Do("x", model.Write(model.Value(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if !cluster.WaitQuiesced([]*cluster.Node{donor, r2}, 15*time.Second) {
		t.Fatal("donor never absorbed the origin's writes")
	}
	h2 := r2.History()
	if err := r2.Leave(); err != nil {
		t.Fatal(err)
	}
	r2.Close()

	addr1 := freePort(t)
	dataDir := t.TempDir()
	joinArgs := []string{
		"-store", "causal", "-id", "1", "-listen", addr1, "-n", "3",
		"-join", "0=" + donor.Addr(), "-data-dir", dataDir,
		"-sync-window", strconv.Itoa(window),
	}

	// First incarnation: wait until the donor has served a few chunks into
	// the pull, then kill -9. The ack protocol bounds the gap between
	// served and journaled at the credit window (one chunk in stop-and-wait
	// mode), so the kill threshold shifts by window-1 to guarantee the
	// joiner journaled something before dying.
	killAt := int64(5 + window - 1)
	child := spawnServedArgs(t, joinArgs...)
	deadline := time.Now().Add(10 * time.Second)
	for donor.Stats().SyncServed < killAt {
		if time.Now().After(deadline) {
			t.Fatalf("donor never started serving the pull\nchild output:\n%s", child.out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := child.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child.cmd.Wait()
	// Let the donor's doomed in-flight sends hit the dead socket before
	// snapshotting: with a credit window it can burst up to window chunks
	// past the last ack before the write fails, and those must land in
	// served1, not leak into the second pull's accounting.
	time.Sleep(250 * time.Millisecond)
	served1 := donor.Stats().SyncServed
	if served1 >= writes {
		t.Fatalf("kill landed after the full pull (%d of %d served); widen -sync-delay", served1, writes)
	}

	// Second incarnation on the same data directory: it must restore a
	// non-empty, partial journal before re-joining.
	child = spawnServedArgs(t, joinArgs...)
	defer func() {
		child.cmd.Process.Signal(syscall.SIGTERM)
		child.cmd.Wait()
	}()
	restoredRe := regexp.MustCompile(`restored (\d+) events`)
	var restored int
	deadline = time.Now().Add(10 * time.Second)
	for {
		if m := restoredRe.FindStringSubmatch(child.out.String()); m != nil {
			restored, _ = strconv.Atoi(m[1])
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted joiner never reported a restore:\n%s", child.out)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if restored == 0 || restored >= writes {
		t.Fatalf("restored %d events, want a partial journal in (0,%d)", restored, writes)
	}

	// The re-join completes: the joiner holds every donor update, the
	// donor's lifetime served count stays below two full logs (a restart
	// that re-pulled everything would reach served1+30; journal-before-ack
	// bounds it by served1+1 plus the missing suffix), and the pair
	// converges and audits clean across the process boundary.
	c := dialReady(t, addr1)
	defer c.Close()
	deadline = time.Now().Add(30 * time.Second)
	for {
		s, err := c.Stats()
		if err == nil && s.Events >= writes {
			break
		}
		if time.Now().After(deadline) {
			s, _ := c.Stats()
			t.Fatalf("joiner never caught up: stats %+v\nchild output:\n%s", s, child.out)
		}
		time.Sleep(50 * time.Millisecond)
	}
	total := donor.Stats().SyncServed
	pulled2 := total - served1
	if pulled2 >= writes {
		t.Fatalf("restarted joiner re-pulled the full log: donor served %d then %d more, want < %d", served1, pulled2, writes)
	}
	// Tight accounting: the second pull serves exactly the suffix the
	// journal lacks (chunks are one update each under the JSON-pinned
	// donor). Anything below writes-restored means journaled updates were
	// lost; anything above it plus the window means the restart re-pulled
	// chunks the first incarnation already journaled and acked.
	if min := int64(writes - restored); pulled2 < min || pulled2 > min+int64(window) {
		t.Fatalf("second pull served %d chunks, want in [%d, %d] (restored %d of %d, window %d)",
			pulled2, min, min+int64(window), restored, writes, window)
	}

	quiesced := func() bool {
		s, err := c.Stats()
		return err == nil && s.Quiesced && donor.Quiesced()
	}
	deadline = time.Now().Add(30 * time.Second)
	clean := 0
	for clean < 2 {
		if time.Now().After(deadline) {
			s, _ := c.Stats()
			t.Fatalf("pair did not quiesce: joiner %+v, donor %+v\nchild output:\n%s", s, donor.Stats(), child.out)
		}
		if quiesced() {
			clean++
		} else {
			clean = 0
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := cluster.CheckConverged([]cluster.Doer{donor, c}, []model.ObjectID{"x"}); err != nil {
		t.Fatalf("%v\nchild output:\n%s", err, child.out)
	}
	for _, m := range donor.Membership() {
		if m.ID == 1 && m.Left {
			t.Fatalf("donor's view still marks the joiner as left: %+v", m)
		}
		if m.ID == 2 && !m.Left {
			t.Fatalf("donor's view forgot the origin's departure: %+v", m)
		}
	}
	h1, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	audit, err := cluster.BuildAudit([]cluster.History{donor.History(), h1, h2})
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatalf("derived abstract execution not causal: %v", err)
	}
}

// TestKill9ShardedGroupCommit is the sharding tentpole's crash proof: a
// served child runs 4 shards, each journaling to its own data-dir/shard-NNN
// log behind the shared group-commit coordinator, and the shards are driven
// to DIFFERENT journal frontiers — a skewed synchronous phase gives shard s
// roughly (s+1)× the traffic, then concurrent per-shard writers keep
// appends (and so group-commit rounds) in flight when the SIGKILL lands. A
// fresh child on the same data directory must recover EVERY shard to at
// least its last acked write: acked ⇒ on-disk is per shard through the
// shared fsync round, so no shard's frontier may regress past an ack, no
// matter where in a round the kill hit. The restarted node then rejoins two
// sharded peers, converges, and audits clean per shard.
func TestKill9ShardedGroupCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	const shards = 4
	addr0 := freePort(t)
	dataDir := t.TempDir()

	mkNode := func(id int) *cluster.Node {
		st, err := cli.OpenStore("causal", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd, err := cluster.NewNode(cluster.Config{
			ID: model.ReplicaID(id), N: 3, Store: st, Listen: "127.0.0.1:0",
			Shards:         shards,
			DialTimeout:    time.Second,
			DialBackoffMin: 5 * time.Millisecond,
			DialBackoffMax: 100 * time.Millisecond,
			RetransmitMin:  25 * time.Millisecond,
			RetransmitMax:  250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		return nd
	}
	r1, r2 := mkNode(1), mkNode(2)
	if err := r1.Connect(map[model.ReplicaID]string{0: addr0, 2: r2.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := r2.Connect(map[model.ReplicaID]string{0: addr0, 1: r1.Addr()}); err != nil {
		t.Fatal(err)
	}
	peerSpec := fmt.Sprintf("1=%s,2=%s", r1.Addr(), r2.Addr())
	spawn := func() *servedProc {
		return spawnServedArgs(t,
			"-store", "causal", "-id", "0", "-listen", addr0, "-peers", peerSpec,
			"-n", "3", "-data-dir", dataDir, "-shards", strconv.Itoa(shards))
	}

	// Bucket keys by shard so the load can target each frontier separately.
	router := cluster.NewShardRouter(shards)
	keys := make([][]model.ObjectID, shards)
	for i := 0; ; i++ {
		short := false
		for s := range keys {
			if len(keys[s]) < 4 {
				short = true
			}
		}
		if !short {
			break
		}
		obj := model.ObjectID(fmt.Sprintf("k%03d", i))
		keys[router.Route(obj)] = append(keys[router.Route(obj)], obj)
	}

	child := spawn()
	c := dialReady(t, addr0)

	// Phase 1 (synchronous, skewed): shard s takes (s+1)*5 acked writes, so
	// the four journals sit at visibly different frontiers before the crash.
	acked := make([]atomic.Int64, shards)
	for s := 0; s < shards; s++ {
		for i := 0; i < (s+1)*5; i++ {
			obj := keys[s][i%len(keys[s])]
			if _, err := c.Do(obj, model.Write(model.Value(fmt.Sprintf("pre%d.%d", s, i)))); err != nil {
				t.Fatalf("shard %d write %d: %v\nchild output:\n%s", s, i, err, child.out)
			}
			acked[s].Add(1)
		}
	}

	// Phase 2 (concurrent): one writer per shard on its own connection keeps
	// every shard's append stream — and the shared group-commit rounds — hot
	// while the kill lands. Only acked writes count toward the recovery bar.
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wc, err := cluster.Dial(addr0, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s int, wc *cluster.Client) {
			defer wg.Done()
			defer wc.Close()
			for i := 0; ; i++ {
				obj := keys[s][i%len(keys[s])]
				if _, err := wc.Do(obj, model.Write(model.Value(fmt.Sprintf("mid%d.%d", s, i)))); err != nil {
					return // the kill landed
				}
				acked[s].Add(1)
			}
		}(s, wc)
	}
	time.Sleep(200 * time.Millisecond)
	if err := child.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child.cmd.Wait()
	wg.Wait()
	c.Close()

	// Second incarnation: every shard must hold at least its acked writes.
	child = spawn()
	defer func() {
		child.cmd.Process.Signal(syscall.SIGTERM)
		child.cmd.Wait()
	}()
	c = dialReady(t, addr0)
	defer c.Close()
	if !strings.Contains(child.out.String(), "restored") {
		t.Fatalf("restart did not report a restore:\n%s", child.out)
	}
	var frontiers []int
	for s := 0; s < shards; s++ {
		h, err := c.ShardHistory(s)
		if err != nil {
			t.Fatalf("shard %d history: %v", s, err)
		}
		if h.Shard != s || h.Shards != shards {
			t.Fatalf("shard %d history tagged (%d of %d)", s, h.Shard, h.Shards)
		}
		dos := 0
		for _, ev := range h.Events {
			if ev.Kind == model.ActDo {
				dos++
			}
		}
		if int64(dos) < acked[s].Load() {
			t.Fatalf("shard %d recovered %d do events, fewer than its %d acked writes\nchild output:\n%s",
				s, dos, acked[s].Load(), child.out)
		}
		frontiers = append(frontiers, dos)
	}
	// The skewed phase must actually have produced distinct frontiers, or
	// the test degenerates into the unsharded recovery check.
	distinct := make(map[int]bool)
	for _, f := range frontiers {
		distinct[f] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all shards recovered identical frontiers %v; skew failed", frontiers)
	}

	// Fresh traffic on every shard, cluster-wide quiescence, convergence,
	// and a per-shard audit across the process boundary.
	var allKeys []model.ObjectID
	for s := 0; s < shards; s++ {
		if _, err := c.Do(keys[s][0], model.Write(model.Value(fmt.Sprintf("post%d", s)))); err != nil {
			t.Fatalf("post-restart write shard %d: %v\nchild output:\n%s", s, err, child.out)
		}
		allKeys = append(allKeys, keys[s]...)
	}
	quiesced := func() bool {
		if !r1.Quiesced() || !r2.Quiesced() {
			return false
		}
		s, err := c.Stats()
		return err == nil && s.Quiesced
	}
	deadline := time.Now().Add(30 * time.Second)
	clean := 0
	for clean < 2 {
		if time.Now().After(deadline) {
			s, _ := c.Stats()
			t.Fatalf("cluster did not quiesce after restart; child stats %+v\nchild output:\n%s", s, child.out)
		}
		if quiesced() {
			clean++
		} else {
			clean = 0
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := cluster.CheckConverged([]cluster.Doer{c, r1, r2}, allKeys); err != nil {
		t.Fatalf("%v\nchild output:\n%s", err, child.out)
	}
	for s := 0; s < shards; s++ {
		h0, err := c.ShardHistory(s)
		if err != nil {
			t.Fatal(err)
		}
		h1, err := r1.ShardHistory(s)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := r2.ShardHistory(s)
		if err != nil {
			t.Fatal(err)
		}
		audit, err := cluster.BuildAudit([]cluster.History{h0, h1, h2})
		if err != nil {
			t.Fatalf("shard %d audit: %v", s, err)
		}
		if err := audit.Exec.CheckWellFormed(); err != nil {
			t.Fatalf("shard %d execution not well-formed: %v", s, err)
		}
		if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
			t.Fatalf("shard %d abstract execution not causal: %v", s, err)
		}
	}
}
