package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/livecheck"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("1=127.0.0.1:7001,2=host:7002", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[1] != "127.0.0.1:7001" || peers[2] != "host:7002" {
		t.Fatalf("peers = %v", peers)
	}
	if got, _ := parsePeers("", 0); len(got) != 0 {
		t.Fatalf("empty spec parsed to %v", got)
	}
	for _, bad := range []string{"x", "a=h:1", "-1=h:1", "1=", "1=h:1,1=h:2"} {
		if _, err := parsePeers(bad, 0); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

// TestParsePeersRejectsBadAddrs: a peer address with no host (":7001")
// re-advertised during a join points every receiver at itself, and one
// with no port cannot be dialed at all — both must fail at parse time,
// not as a runtime dial loop.
func TestParsePeersRejectsBadAddrs(t *testing.T) {
	for _, bad := range []string{"1=:7001", "1=host", "1=host:", "1=host:1:2", "1=127.0.0.1:7001,2=:7002"} {
		if peers, err := parsePeers(bad, 0); err == nil {
			t.Fatalf("%q accepted as %v", bad, peers)
		}
	}
}

// TestParsePeersRejectsTrailingGarbage: the old fmt.Sscanf parser stopped
// at the first non-digit, so "1x=h:7001" silently configured peer 1 — a
// typo'd cluster came up wired to the wrong replica.
func TestParsePeersRejectsTrailingGarbage(t *testing.T) {
	for _, bad := range []string{"1x=h:7001", "0 1=h:7001", "+1 =h:7001", "1.5=h:7001", "0x1=h:7001"} {
		if peers, err := parsePeers(bad, 9); err == nil {
			t.Fatalf("%q accepted as %v", bad, peers)
		}
	}
}

// TestParsePeersRejectsSelf: a peer entry naming the node's own -id would
// have the node dialing itself forever; it must fail at parse time.
func TestParsePeersRejectsSelf(t *testing.T) {
	if peers, err := parsePeers("1=h:7001,2=h:7002", 2); err == nil {
		t.Fatalf("self-peer accepted as %v", peers)
	}
	// The same spec is fine for a node with a different id.
	if _, err := parsePeers("1=h:7001,2=h:7002", 0); err != nil {
		t.Fatal(err)
	}
}

// TestParseTopology drives the combined -peers/-join validation: the join
// spec shares the peer syntax, requires an explicit -n, and an id may not
// appear in both maps.
func TestParseTopology(t *testing.T) {
	cases := []struct {
		name    string
		cfg     serveConfig
		wantErr string
	}{
		{"peers only", serveConfig{id: 0, peersSpec: "1=h:7001,2=h:7002"}, ""},
		{"join only", serveConfig{id: 3, n: 4, joinSpec: "0=h:7000,1=h:7001"}, ""},
		{"peers and disjoint join", serveConfig{id: 3, n: 4, peersSpec: "1=h:7001", joinSpec: "0=h:7000"}, ""},
		{"join without n", serveConfig{id: 3, joinSpec: "0=h:7000"}, "requires -n"},
		{"duplicate id across flags", serveConfig{id: 3, n: 4, peersSpec: "0=h:7000", joinSpec: "0=h:7000"}, "both -peers and -join"},
		{"join names self", serveConfig{id: 3, n: 4, joinSpec: "3=h:7003"}, "own id"},
		{"join empty host", serveConfig{id: 3, n: 4, joinSpec: "0=:7000"}, "no host"},
		{"join bad syntax", serveConfig{id: 3, n: 4, joinSpec: "zero"}, "want id=addr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			peers, join, err := parseTopology(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatal(err)
				}
				if tc.cfg.joinSpec != "" && len(join) == 0 {
					t.Fatalf("join spec %q parsed to empty map", tc.cfg.joinSpec)
				}
				if tc.cfg.joinSpec == "" && join != nil {
					t.Fatalf("no join spec but join = %v", join)
				}
				if tc.cfg.peersSpec != "" && len(peers) == 0 {
					t.Fatalf("peer spec %q parsed to empty map", tc.cfg.peersSpec)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted as peers=%v join=%v, want error containing %q", peers, join, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

type unmarshalable struct{}

func (unmarshalable) MarshalJSON() ([]byte, error) { return nil, errors.New("boom") }

// TestWriteJSONMarshalFailure: the old handler encoded straight into the
// ResponseWriter, so a marshal failure arrived as an error message glued
// onto a 200 and a partial JSON body. Buffer-first must give a clean 500.
func TestWriteJSONMarshalFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, unmarshalable{})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct == "application/json" {
		t.Fatal("failure response still claims application/json")
	}

	rec = httptest.NewRecorder()
	writeJSON(rec, map[string]int{"ok": 1})
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("success path: status %d, content-type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
}

// TestAdminServerGracefulShutdown boots a single node with an admin
// endpoint, checks the endpoints serve, then shuts the server down the way
// run does on SIGINT — the listener must actually close.
func TestAdminServerGracefulShutdown(t *testing.T) {
	st, err := cli.OpenStore("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ck := livecheck.NewShardSet(1, 1, livecheck.Options{
		Observed: []model.ReplicaID{0},
		Types:    spec.MVRTypes(),
	})
	node, err := cluster.NewNode(cluster.Config{
		ID: 0, N: 1, Store: st, Listen: "127.0.0.1:0",
		Tap: ck.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := node.Do(model.ObjectID("x"), model.Write(model.Value("v"))); err != nil {
		t.Fatal(err)
	}

	srv, err := startAdmin("127.0.0.1:0", node, ck)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr
	for _, path := range []string{"/healthz", "/metrics", "/membership", "/history", "/livecheck"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s: status %d, %d body bytes", path, resp.StatusCode, len(body))
		}
	}

	// The live verdict reflects the tapped write, and its clean/dirty state
	// drives the HTTP status: a flagged violation turns the endpoint 503 so
	// a dumb probe can alert without parsing JSON.
	resp, err := http.Get(fmt.Sprintf("http://%s/livecheck", addr))
	if err != nil {
		t.Fatal(err)
	}
	var v livecheck.Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !v.Clean || v.Dos < 1 {
		t.Fatalf("live verdict = %+v, want clean with ≥1 do", v)
	}
	ck.Observe(0, livecheck.Event{ // fabricated regression: frontier falls
		Node: 0, Kind: model.ActDo, Object: "x", Op: model.Read(),
		Rval: model.ReadResponse(nil), Frontier: []uint64{0},
	})
	resp, err = http.Get(fmt.Sprintf("http://%s/livecheck", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dirty /livecheck status = %d, want 503", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("admin listener still accepting after Shutdown")
	}
}
