package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("1=:7001,2=host:7002", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[1] != ":7001" || peers[2] != "host:7002" {
		t.Fatalf("peers = %v", peers)
	}
	if got, _ := parsePeers("", 0); len(got) != 0 {
		t.Fatalf("empty spec parsed to %v", got)
	}
	for _, bad := range []string{"x", "a=:1", "-1=:1", "1=", "1=:1,1=:2"} {
		if _, err := parsePeers(bad, 0); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

// TestParsePeersRejectsTrailingGarbage: the old fmt.Sscanf parser stopped
// at the first non-digit, so "1x=:7001" silently configured peer 1 — a
// typo'd cluster came up wired to the wrong replica.
func TestParsePeersRejectsTrailingGarbage(t *testing.T) {
	for _, bad := range []string{"1x=:7001", "0 1=:7001", "+1 =:7001", "1.5=:7001", "0x1=:7001"} {
		if peers, err := parsePeers(bad, 9); err == nil {
			t.Fatalf("%q accepted as %v", bad, peers)
		}
	}
}

// TestParsePeersRejectsSelf: a peer entry naming the node's own -id would
// have the node dialing itself forever; it must fail at parse time.
func TestParsePeersRejectsSelf(t *testing.T) {
	if peers, err := parsePeers("1=:7001,2=:7002", 2); err == nil {
		t.Fatalf("self-peer accepted as %v", peers)
	}
	// The same spec is fine for a node with a different id.
	if _, err := parsePeers("1=:7001,2=:7002", 0); err != nil {
		t.Fatal(err)
	}
}

type unmarshalable struct{}

func (unmarshalable) MarshalJSON() ([]byte, error) { return nil, errors.New("boom") }

// TestWriteJSONMarshalFailure: the old handler encoded straight into the
// ResponseWriter, so a marshal failure arrived as an error message glued
// onto a 200 and a partial JSON body. Buffer-first must give a clean 500.
func TestWriteJSONMarshalFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, unmarshalable{})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct == "application/json" {
		t.Fatal("failure response still claims application/json")
	}

	rec = httptest.NewRecorder()
	writeJSON(rec, map[string]int{"ok": 1})
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("success path: status %d, content-type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
}

// TestAdminServerGracefulShutdown boots a single node with an admin
// endpoint, checks the endpoints serve, then shuts the server down the way
// run does on SIGINT — the listener must actually close.
func TestAdminServerGracefulShutdown(t *testing.T) {
	st, err := cli.OpenStore("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.NewNode(cluster.Config{
		ID: 0, N: 1, Store: st, Listen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := node.Do(model.ObjectID("x"), model.Write(model.Value("v"))); err != nil {
		t.Fatal(err)
	}

	srv, err := startAdmin("127.0.0.1:0", node)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr
	for _, path := range []string{"/healthz", "/metrics", "/history"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s: status %d, %d body bytes", path, resp.StatusCode, len(body))
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("admin listener still accepting after Shutdown")
	}
}
