package main

import "testing"

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("1=:7001,2=host:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[1] != ":7001" || peers[2] != "host:7002" {
		t.Fatalf("peers = %v", peers)
	}
	if got, _ := parsePeers(""); len(got) != 0 {
		t.Fatalf("empty spec parsed to %v", got)
	}
	for _, bad := range []string{"x", "a=:1", "-1=:1", "1=", "1=:1,1=:2"} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}
