// Command msgbound runs the Theorem 12 message-size lower-bound
// construction (the paper's Figure 4) against the causal store and reports
// measured message sizes against the Ω(min{n−2, s−1}·lg k) bound.
//
// Usage:
//
//	msgbound -n 5 -s 4 -k 16            # one construction + decode
//	msgbound -sweep k -n 6 -s 6         # |m_g| vs k
//	msgbound -sweep n -s 64 -k 64       # |m_g| vs n
//	msgbound -sweep s -n 64 -k 64       # |m_g| vs s
//	msgbound -sweep grid                 # full (n, s, k) cross product
//	msgbound -sweep grid -parallel 8     # sweep cells on 8 workers
//	msgbound -encoding sparse            # sparse dependency clocks
//	msgbound -sweep k -json              # JSON Lines instead of tables
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	seed := cli.SeedFlag(flag.CommandLine, 1)
	parallel := cli.ParallelFlag(flag.CommandLine)
	jsonOut := cli.JSONFlag(flag.CommandLine)
	n := flag.Int("n", 5, "number of replicas (≥ 3)")
	s := flag.Int("s", 4, "number of MVR objects (≥ 2)")
	k := flag.Int("k", 16, "per-writer write count; g maps into [1..k]")
	sweep := flag.String("sweep", "", "sweep dimension: k, n, s, or grid")
	encoding := flag.String("encoding", "dense", "dependency encoding: dense or sparse")
	flag.Parse()

	if err := run(os.Stdout, *n, *s, *k, *seed, *parallel, *jsonOut, *sweep, *encoding); err != nil {
		fmt.Fprintln(os.Stderr, "msgbound:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, n, s, k int, seed int64, parallel int, jsonOut bool, sweep, encoding string) error {
	var storeName string
	switch encoding {
	case "dense":
		storeName = "causal"
	case "sparse":
		storeName = "causal-sparse"
	default:
		return fmt.Errorf("unknown encoding %q", encoding)
	}
	factory := func() store.Store { return cli.MustStore(storeName, spec.MVRTypes(), store.Options{}) }
	out := cli.Output(w, jsonOut)

	switch sweep {
	case "":
		res, err := core.RunMessageLowerBound(factory(), core.LowerBoundConfig{N: n, S: s, K: k, Seed: seed})
		if err != nil {
			return err
		}
		t := bench.NewTable("Theorem 12 construction (Figure 4)",
			"n", "s", "k", "n'", "g", "|m_g| bits", "bound bits", "max β msg bits", "messages", "decoded", "ok")
		t.AddRow(res.N, res.S, res.K, res.NPrime, fmt.Sprintf("%v", res.G), res.MgBits,
			res.BoundBits, res.BetaMaxBits, res.TotalMessages, fmt.Sprintf("%v", res.Decoded), res.DecodeOK)
		return out.Emit(t)
	case "k":
		points, err := core.SweepK(factory, n, s, []int{2, 8, 32, 128, 512, 2048, 8192, 32768}, seed, parallel)
		if err != nil {
			return err
		}
		return emitSweep(out, fmt.Sprintf("|m_g| vs k (n=%d, s=%d, %s)", n, s, encoding), "k", points,
			func(p core.SweepPoint) int { return p.K })
	case "n":
		points, err := core.SweepN(factory, []int{3, 4, 6, 10, 18, 34, 66}, s, k, seed, parallel)
		if err != nil {
			return err
		}
		return emitSweep(out, fmt.Sprintf("|m_g| vs n (s=%d, k=%d, %s)", s, k, encoding), "n", points,
			func(p core.SweepPoint) int { return p.N })
	case "s":
		points, err := core.SweepS(factory, n, []int{2, 3, 5, 9, 17, 33, 65}, k, seed, parallel)
		if err != nil {
			return err
		}
		return emitSweep(out, fmt.Sprintf("|m_g| vs s (n=%d, k=%d, %s)", n, k, encoding), "s", points,
			func(p core.SweepPoint) int { return p.S })
	case "grid":
		points, err := core.SweepGrid(factory,
			[]int{3, 4, 6, 10}, []int{2, 3, 5, 9}, []int{2, 16, 128, 1024}, seed, parallel)
		if err != nil {
			return err
		}
		t := bench.NewTable(fmt.Sprintf("|m_g| over the (n, s, k) grid (%s)", encoding),
			"n", "s", "k", "n'", "|m_g| bits", "bound bits", "bits/writer", "decode ok")
		for _, p := range points {
			t.AddRow(p.N, p.S, p.K, p.NPrime, p.MgBits, p.BoundBits, p.BitsPerCoordinate, p.DecodeOK)
		}
		return out.Emit(t)
	default:
		return fmt.Errorf("unknown sweep dimension %q", sweep)
	}
}

func emitSweep(out bench.Output, title, dim string, points []core.SweepPoint, key func(core.SweepPoint) int) error {
	t := bench.NewTable(title, dim, "n'", "|m_g| bits", "bound bits", "bits/writer", "decode ok")
	for _, p := range points {
		t.AddRow(key(p), p.NPrime, p.MgBits, p.BoundBits, p.BitsPerCoordinate, p.DecodeOK)
	}
	return out.Emit(t)
}
