// Command msgbound runs the Theorem 12 message-size lower-bound
// construction (the paper's Figure 4) against the causal store and reports
// measured message sizes against the Ω(min{n−2, s−1}·lg k) bound.
//
// Usage:
//
//	msgbound -n 5 -s 4 -k 16            # one construction + decode
//	msgbound -sweep k -n 6 -s 6         # |m_g| vs k
//	msgbound -sweep n -s 64 -k 64       # |m_g| vs n
//	msgbound -sweep s -n 64 -k 64       # |m_g| vs s
//	msgbound -encoding sparse            # sparse dependency clocks
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/causal"
)

func main() {
	n := flag.Int("n", 5, "number of replicas (≥ 3)")
	s := flag.Int("s", 4, "number of MVR objects (≥ 2)")
	k := flag.Int("k", 16, "per-writer write count; g maps into [1..k]")
	seed := flag.Int64("seed", 1, "seed for the random g")
	sweep := flag.String("sweep", "", "sweep dimension: k, n, or s")
	encoding := flag.String("encoding", "dense", "dependency encoding: dense or sparse")
	flag.Parse()

	if err := run(os.Stdout, *n, *s, *k, *seed, *sweep, *encoding); err != nil {
		fmt.Fprintln(os.Stderr, "msgbound:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, n, s, k int, seed int64, sweep, encoding string) error {
	var factory func() store.Store
	switch encoding {
	case "dense":
		factory = func() store.Store { return causal.New(spec.MVRTypes()) }
	case "sparse":
		factory = func() store.Store {
			return causal.NewWithOptions(spec.MVRTypes(), causal.Options{SparseDeps: true})
		}
	default:
		return fmt.Errorf("unknown encoding %q", encoding)
	}

	switch sweep {
	case "":
		res, err := core.RunMessageLowerBound(factory(), core.LowerBoundConfig{N: n, S: s, K: k, Seed: seed})
		if err != nil {
			return err
		}
		t := bench.NewTable("Theorem 12 construction (Figure 4)",
			"n", "s", "k", "n'", "g", "|m_g| bits", "bound bits", "max β msg bits", "messages", "decoded", "ok")
		t.AddRow(res.N, res.S, res.K, res.NPrime, fmt.Sprintf("%v", res.G), res.MgBits,
			res.BoundBits, res.BetaMaxBits, res.TotalMessages, fmt.Sprintf("%v", res.Decoded), res.DecodeOK)
		t.Render(w)
	case "k":
		points, err := core.SweepK(factory, n, s, []int{2, 8, 32, 128, 512, 2048, 8192, 32768}, seed)
		if err != nil {
			return err
		}
		renderSweep(w, fmt.Sprintf("|m_g| vs k (n=%d, s=%d, %s)", n, s, encoding), "k", points,
			func(p core.SweepPoint) int { return p.K })
	case "n":
		points, err := core.SweepN(factory, []int{3, 4, 6, 10, 18, 34, 66}, s, k, seed)
		if err != nil {
			return err
		}
		renderSweep(w, fmt.Sprintf("|m_g| vs n (s=%d, k=%d, %s)", s, k, encoding), "n", points,
			func(p core.SweepPoint) int { return p.N })
	case "s":
		points, err := core.SweepS(factory, n, []int{2, 3, 5, 9, 17, 33, 65}, k, seed)
		if err != nil {
			return err
		}
		renderSweep(w, fmt.Sprintf("|m_g| vs s (n=%d, k=%d, %s)", n, k, encoding), "s", points,
			func(p core.SweepPoint) int { return p.S })
	default:
		return fmt.Errorf("unknown sweep dimension %q", sweep)
	}
	return nil
}

func renderSweep(w io.Writer, title, dim string, points []core.SweepPoint, key func(core.SweepPoint) int) {
	t := bench.NewTable(title, dim, "n'", "|m_g| bits", "bound bits", "bits/writer", "decode ok")
	for _, p := range points {
		t.AddRow(key(p), p.NPrime, p.MgBits, p.BoundBits, p.BitsPerCoordinate, p.DecodeOK)
	}
	t.Render(w)
}
