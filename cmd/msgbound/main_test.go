package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingle(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 5, 4, 8, 1, 1, false, "", "dense"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "|m_g| bits") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

func TestRunSweeps(t *testing.T) {
	for _, sweep := range []string{"k", "n", "s", "grid"} {
		var sb strings.Builder
		if err := run(&sb, 6, 6, 16, 1, 1, false, sweep, "sparse"); err != nil {
			t.Fatalf("sweep %s: %v", sweep, err)
		}
		if !strings.Contains(sb.String(), "decode ok") {
			t.Fatalf("sweep %s: unexpected output", sweep)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 5, 4, 8, 1, 1, false, "zzz", "dense"); err == nil {
		t.Fatal("expected unknown sweep error")
	}
	if err := run(&sb, 5, 4, 8, 1, 1, false, "", "zzz"); err == nil {
		t.Fatal("expected unknown encoding error")
	}
}

// TestRunSweepParallelMatchesSequential pins the deterministic-aggregation
// guarantee: a sweep's rendered table is byte-identical for every worker
// count.
func TestRunSweepParallelMatchesSequential(t *testing.T) {
	for _, sweep := range []string{"k", "grid"} {
		var seq strings.Builder
		if err := run(&seq, 6, 6, 16, 1, 1, false, sweep, "dense"); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			var par strings.Builder
			if err := run(&par, 6, 6, 16, 1, workers, false, sweep, "dense"); err != nil {
				t.Fatal(err)
			}
			if par.String() != seq.String() {
				t.Errorf("sweep %s parallel=%d output differs from sequential", sweep, workers)
			}
		}
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 6, 6, 16, 1, 2, true, "k", "dense"); err != nil {
		t.Fatal(err)
	}
	var table struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &table); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	if len(table.Rows) == 0 || len(table.Columns) == 0 {
		t.Fatalf("empty JSON table: %+v", table)
	}
}
