package main

import (
	"strings"
	"testing"
)

func TestRunSingle(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 5, 4, 8, 1, "", "dense"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "|m_g| bits") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

func TestRunSweeps(t *testing.T) {
	for _, sweep := range []string{"k", "n", "s"} {
		var sb strings.Builder
		if err := run(&sb, 6, 6, 16, 1, sweep, "sparse"); err != nil {
			t.Fatalf("sweep %s: %v", sweep, err)
		}
		if !strings.Contains(sb.String(), "decode ok") {
			t.Fatalf("sweep %s: unexpected output", sweep)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 5, 4, 8, 1, "zzz", "dense"); err == nil {
		t.Fatal("expected unknown sweep error")
	}
	if err := run(&sb, 5, 4, 8, 1, "", "zzz"); err == nil {
		t.Fatal("expected unknown encoding error")
	}
}
