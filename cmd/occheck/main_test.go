package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/spec"
)

func TestRunExample(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", "mvr", 0, true, false, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"valid (Def 4)", "OCC (Def 18)", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exec.json")
	if err := os.WriteFile(path, []byte(exampleInput), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, "", "mvr", 3, false, false, []string{path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "audit of 5 events") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

func TestRunRejectsMissingInput(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", "mvr", 0, false, false, nil); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestParseTypes(t *testing.T) {
	types, err := parseTypes("s=orset,c=counter", "register")
	if err != nil {
		t.Fatal(err)
	}
	if types.Of("s") != spec.TypeORSet || types.Of("c") != spec.TypeCounter || types.Of("zz") != spec.TypeRegister {
		t.Fatal("type mapping wrong")
	}
	if _, err := parseTypes("bad", "mvr"); err == nil {
		t.Fatal("expected malformed pair error")
	}
	if _, err := parseTypes("x=nope", "mvr"); err == nil {
		t.Fatal("expected unknown type error")
	}
	if _, err := parseTypes("", "nope"); err == nil {
		t.Fatal("expected unknown default error")
	}
}
