// Command occheck audits a JSON abstract execution against the paper's
// checker stack: Definition 4 validity, Definition 8 correctness, causal
// consistency (Definition 12), observable causal consistency (Definition
// 18), and the finite-window form of eventual consistency (Definition 13).
//
// Usage:
//
//	occheck [-types obj=mvr,obj2=orset] [-default mvr] [-lag N] file.json
//	occheck -example            # print an example input and its audit
//	occheck -json file.json     # the audit table as one JSON line
//
// Input format (see internal/abstract JSON doc):
//
//	{"events": [
//	  {"replica": 0, "object": "x", "op": "write", "arg": "a", "ok": true},
//	  {"replica": 1, "object": "x", "op": "read", "values": ["a"], "vis": [0]}
//	]}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/abstract"
	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/spec"
)

const exampleInput = `{"events": [
  {"replica": 0, "object": "y1", "op": "write", "arg": "b1", "ok": true},
  {"replica": 0, "object": "x",  "op": "write", "arg": "w0", "ok": true, "vis": [0]},
  {"replica": 1, "object": "y0", "op": "write", "arg": "b0", "ok": true},
  {"replica": 1, "object": "x",  "op": "write", "arg": "w1", "ok": true, "vis": [2]},
  {"replica": 2, "object": "x",  "op": "read", "values": ["w0","w1"], "vis": [0,1,2,3]}
]}`

func main() {
	typesFlag := flag.String("types", "", "comma-separated object=type pairs (types: mvr, register, orset, counter)")
	defaultType := flag.String("default", "mvr", "default object type")
	lag := flag.Int("lag", 0, "eventual-consistency lag bound (0 = skip the check)")
	example := flag.Bool("example", false, "audit a built-in example input")
	jsonOut := cli.JSONFlag(flag.CommandLine)
	flag.Parse()

	if err := run(os.Stdout, *typesFlag, *defaultType, *lag, *example, *jsonOut, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "occheck:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, typesFlag, defaultType string, lag int, example, jsonOut bool, args []string) error {
	var data []byte
	switch {
	case example:
		data = []byte(exampleInput)
		if !jsonOut {
			fmt.Fprintln(w, "input:")
			fmt.Fprintln(w, exampleInput)
			fmt.Fprintln(w)
		}
	case len(args) == 1 && args[0] == "-":
		var err error
		data, err = io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
	case len(args) == 1:
		var err error
		data, err = os.ReadFile(args[0])
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("expected one input file (or '-' for stdin, or -example)")
	}

	a, err := abstract.UnmarshalExecution(data)
	if err != nil {
		return err
	}
	types, err := parseTypes(typesFlag, defaultType)
	if err != nil {
		return err
	}

	if lag == 0 {
		lag = a.Len() // effectively skip: no lag can exceed |H|
	}
	v := consistency.Evaluate(a, types, lag)
	sess := consistency.CheckSessionGuarantees(a)
	t := bench.NewTable(fmt.Sprintf("audit of %d events", a.Len()),
		"check", "verdict", "detail")
	t.AddRow("valid (Def 4)", bench.Verdict(v.Valid), bench.Check(v.Valid))
	t.AddRow("correct (Def 8)", bench.Verdict(v.Correct), bench.Check(v.Correct))
	t.AddRow("causal (Def 12)", bench.Verdict(v.Causal), bench.Check(v.Causal))
	t.AddRow("OCC (Def 18)", bench.Verdict(v.OCC), bench.Check(v.OCC))
	t.AddRow(fmt.Sprintf("eventual window (lag ≤ %d)", lag), bench.Verdict(v.Eventual), bench.Check(v.Eventual))
	t.AddRow("read-your-writes", bench.Verdict(sess.ReadYourWrites), bench.Check(sess.ReadYourWrites))
	t.AddRow("monotonic reads", bench.Verdict(sess.MonotonicReads), bench.Check(sess.MonotonicReads))
	t.AddRow("writes-follow-reads", bench.Verdict(sess.WritesFollowReads), bench.Check(sess.WritesFollowReads))
	t.AddRow("monotonic writes", bench.Verdict(sess.MonotonicWrites), bench.Check(sess.MonotonicWrites))
	return cli.Output(w, jsonOut).Emit(t)
}

func parseTypes(typesFlag, defaultType string) (spec.Types, error) {
	dt, err := parseType(defaultType)
	if err != nil {
		return spec.Types{}, err
	}
	types := spec.Types{DefaultType: dt}
	if typesFlag == "" {
		return types, nil
	}
	for _, pair := range strings.Split(typesFlag, ",") {
		parts := strings.SplitN(pair, "=", 2)
		if len(parts) != 2 {
			return spec.Types{}, fmt.Errorf("malformed type pair %q", pair)
		}
		typ, err := parseType(parts[1])
		if err != nil {
			return spec.Types{}, err
		}
		types = types.With(model.ObjectID(parts[0]), typ)
	}
	return types, nil
}

func parseType(s string) (spec.ObjectType, error) {
	switch s {
	case "mvr":
		return spec.TypeMVR, nil
	case "register":
		return spec.TypeRegister, nil
	case "orset":
		return spec.TypeORSet, nil
	case "counter":
		return spec.TypeCounter, nil
	default:
		return 0, fmt.Errorf("unknown object type %q", s)
	}
}
