package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRunEveryStore(t *testing.T) {
	for _, name := range []string{"causal", "causal-sparse", "causal-perupdate", "lww", "kbuffer", "gsp", "statesync"} {
		var sb strings.Builder
		if err := run(&sb, name, 3, 120, 3, 7, 2, sim.Faults{}, 1, 1, false); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(sb.String(), "client operations") {
			t.Fatalf("%s: unexpected output:\n%s", name, sb.String())
		}
	}
}

func TestRunWithFaults(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "causal", 3, 100, 2, 3, 2, sim.Faults{DupProb: 0.3, Reorder: true}, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "converged after quiescence") {
		t.Fatal("missing convergence row")
	}
}

func TestRunRejectsUnknownStore(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", 2, 10, 1, 1, 1, sim.Faults{}, 1, 1, false); err == nil {
		t.Fatal("expected unknown store error")
	}
}

// TestRunMultiRunDeterministic pins the split-seed multi-run mode: the
// concatenated report is byte-identical for every worker count, and each
// run's table carries its own split stream seed.
func TestRunMultiRunDeterministic(t *testing.T) {
	var seq strings.Builder
	if err := run(&seq, "causal", 3, 60, 2, 7, 2, sim.Faults{}, 3, 1, false); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(seq.String(), "client operations"); n != 3 {
		t.Fatalf("expected 3 run tables, got %d", n)
	}
	for _, workers := range []int{2, 4} {
		var par strings.Builder
		if err := run(&par, "causal", 3, 60, 2, 7, 2, sim.Faults{}, 3, workers, false); err != nil {
			t.Fatal(err)
		}
		if par.String() != seq.String() {
			t.Errorf("parallel=%d output differs from sequential", workers)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "causal", 3, 60, 2, 7, 2, sim.Faults{}, 1, 1, true); err != nil {
		t.Fatal(err)
	}
	var table struct {
		Title string     `json:"title"`
		Rows  [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &table); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	if !strings.Contains(table.Title, "storesim") || len(table.Rows) == 0 {
		t.Fatalf("unexpected JSON table: %+v", table)
	}
}
