package main

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRunEveryStore(t *testing.T) {
	for _, name := range []string{"causal", "causal-sparse", "causal-perupdate", "lww", "kbuffer", "gsp", "statesync"} {
		var sb strings.Builder
		if err := run(&sb, name, 3, 120, 3, 7, 2, sim.Faults{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(sb.String(), "client operations") {
			t.Fatalf("%s: unexpected output:\n%s", name, sb.String())
		}
	}
}

func TestRunWithFaults(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "causal", 3, 100, 2, 3, 2, sim.Faults{DupProb: 0.3, Reorder: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "converged after quiescence") {
		t.Fatal("missing convergence row")
	}
}

func TestRunRejectsUnknownStore(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", 2, 10, 1, 1, 1, sim.Faults{}); err == nil {
		t.Fatal("expected unknown store error")
	}
}
