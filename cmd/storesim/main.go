// Command storesim runs a named store under a seeded random workload with
// fault injection, then audits the run: §4 property violations, quiescent
// convergence, the derived abstract execution's consistency verdicts, and
// message statistics.
//
// Usage:
//
//	storesim -store causal -replicas 4 -steps 500 -seed 7
//	storesim -store lww -drop 0.2 -dup 0.1 -reorder
//	storesim -store kbuffer -k 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/causal"
	"repro/internal/store/gsp"
	"repro/internal/store/kbuffer"
	"repro/internal/store/lww"
	"repro/internal/store/statesync"
)

func main() {
	storeName := flag.String("store", "causal", "store to simulate: causal, causal-sparse, causal-perupdate, lww, kbuffer, gsp, statesync")
	replicas := flag.Int("replicas", 3, "number of replicas")
	steps := flag.Int("steps", 300, "workload steps")
	objects := flag.Int("objects", 3, "number of objects")
	seed := flag.Int64("seed", 1, "workload seed")
	k := flag.Int("k", 2, "K for the kbuffer store")
	drop := flag.Float64("drop", 0, "message drop probability")
	dup := flag.Float64("dup", 0, "message duplication probability")
	reorder := flag.Bool("reorder", false, "deliver messages out of order")
	flag.Parse()

	if err := run(os.Stdout, *storeName, *replicas, *steps, *objects, *seed, *k,
		sim.Faults{DropProb: *drop, DupProb: *dup, Reorder: *reorder}); err != nil {
		fmt.Fprintln(os.Stderr, "storesim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, storeName string, replicas, steps, objects int, seed int64, k int, faults sim.Faults) error {
	types := spec.MVRTypes()
	var st store.Store
	switch storeName {
	case "causal":
		st = causal.New(types)
	case "causal-sparse":
		st = causal.NewWithOptions(types, causal.Options{SparseDeps: true})
	case "causal-perupdate":
		st = causal.NewWithOptions(types, causal.Options{PerUpdateMessages: true})
	case "lww":
		st = lww.New(types)
	case "kbuffer":
		st = kbuffer.New(types, k)
	case "gsp":
		st = gsp.New(types)
	case "statesync":
		st = statesync.New(types)
	default:
		return fmt.Errorf("unknown store %q", storeName)
	}

	objs := make([]model.ObjectID, objects)
	for i := range objs {
		objs[i] = model.ObjectID(fmt.Sprintf("x%d", i))
	}

	c := sim.NewCluster(st, replicas, seed)
	c.SetFaults(faults)
	ops := c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: steps})
	preQuiescence := len(c.Execution().DoEvents())
	c.Quiesce()
	convergence := c.CheckConverged(objs)

	// Message statistics from the recorded execution.
	msgs, totalBits, maxBits := 0, 0, 0
	for _, m := range c.Execution().Messages {
		msgs++
		totalBits += m.Bits()
		if m.Bits() > maxBits {
			maxBits = m.Bits()
		}
	}

	a := c.DerivedAbstract()
	verdict := consistency.Evaluate(a, types, preQuiescence)

	t := bench.NewTable(fmt.Sprintf("storesim: %s, %d replicas, seed %d", st.Name(), replicas, seed),
		"metric", "value")
	t.AddRow("client operations", ops)
	t.AddRow("do events (incl. convergence reads)", len(c.Execution().DoEvents()))
	t.AddRow("messages broadcast", msgs)
	t.AddRow("total message bits", totalBits)
	t.AddRow("max message bits", maxBits)
	t.AddRow("§4 property violations", len(c.PropertyViolations()))
	t.AddRow("well-formed execution", bench.Check(c.Execution().CheckWellFormed()))
	t.AddRow("converged after quiescence", bench.Check(convergence))
	t.AddRow("derived A valid (Def 4)", bench.Check(verdict.Valid))
	t.AddRow("derived A correct (Def 8)", bench.Check(shorten(verdict.Correct)))
	t.AddRow("derived A causal (Def 12)", bench.Check(shorten(verdict.Causal)))
	t.AddRow("derived A OCC (Def 18)", bench.Check(shorten(verdict.OCC)))
	t.Render(w)

	for _, v := range c.PropertyViolations() {
		fmt.Fprintln(w, "violation:", v)
	}
	return nil
}

// shorten truncates long checker errors for table cells.
func shorten(err error) error {
	if err == nil {
		return nil
	}
	msg := err.Error()
	if len(msg) > 90 {
		msg = msg[:87] + "..."
	}
	return fmt.Errorf("%s", msg)
}
