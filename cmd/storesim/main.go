// Command storesim runs a named store under a seeded random workload with
// fault injection, then audits the run: §4 property violations, quiescent
// convergence, the derived abstract execution's consistency verdicts, and
// message statistics.
//
// Usage:
//
//	storesim -store causal -replicas 4 -steps 500 -seed 7
//	storesim -store lww -drop 0.2 -dup 0.1 -reorder
//	storesim -store kbuffer -k 3
//	storesim -runs 4 -parallel 4    # four split-seed runs, one table each
//	storesim -json                  # JSON Lines, one table per run
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	storeName := cli.StoreFlag(flag.CommandLine, "causal")
	seed := cli.SeedFlag(flag.CommandLine, 1)
	parallel := cli.ParallelFlag(flag.CommandLine)
	jsonOut := cli.JSONFlag(flag.CommandLine)
	replicas := flag.Int("replicas", 3, "number of replicas")
	steps := flag.Int("steps", 300, "workload steps")
	objects := flag.Int("objects", 3, "number of objects")
	k := flag.Int("k", 2, "K for the kbuffer store")
	drop := flag.Float64("drop", 0, "message drop probability")
	dup := flag.Float64("dup", 0, "message duplication probability")
	reorder := flag.Bool("reorder", false, "deliver messages out of order")
	runs := flag.Int("runs", 1, "independent split-seed runs")
	flag.Parse()

	if err := run(os.Stdout, *storeName, *replicas, *steps, *objects, *seed, *k,
		sim.Faults{DropProb: *drop, DupProb: *dup, Reorder: *reorder},
		*runs, *parallel, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "storesim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, storeName string, replicas, steps, objects int, seed int64, k int, faults sim.Faults, runs, parallel int, jsonOut bool) error {
	types := spec.MVRTypes()
	st, err := cli.OpenStore(storeName, types, store.Options{K: k})
	if err != nil {
		return err
	}

	objs := make([]model.ObjectID, objects)
	for i := range objs {
		objs[i] = model.ObjectID(fmt.Sprintf("x%d", i))
	}

	if runs <= 0 {
		runs = 1
	}
	// A single run uses the root seed directly (the historical behavior);
	// multi-run audits give run i its own split stream of the root seed.
	// Runs buffer their output and flush in index order, so the report is
	// byte-identical for every worker count.
	bufs := make([]bytes.Buffer, runs)
	err = core.ForEachCell(parallel, runs, func(i int) error {
		var c *sim.Cluster
		if runs == 1 {
			c = sim.NewCluster(st, replicas, seed)
		} else {
			c = sim.NewClusterWorker(st, replicas, seed, i)
		}
		c.SetFaults(faults)
		ops := c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: steps})
		preQuiescence := len(c.Execution().DoEvents())
		c.Quiesce()
		convergence := c.CheckConverged(objs)

		// Message statistics from the recorded execution.
		msgs, totalBits, maxBits := 0, 0, 0
		for _, m := range c.Execution().Messages {
			msgs++
			totalBits += m.Bits()
			if m.Bits() > maxBits {
				maxBits = m.Bits()
			}
		}

		a := c.DerivedAbstract()
		verdict := consistency.Evaluate(a, types, preQuiescence)

		t := bench.NewTable(fmt.Sprintf("storesim: %s, %d replicas, seed %d", st.Name(), replicas, c.Seed()),
			"metric", "value")
		t.AddRow("client operations", ops)
		t.AddRow("do events (incl. convergence reads)", len(c.Execution().DoEvents()))
		t.AddRow("messages broadcast", msgs)
		t.AddRow("total message bits", totalBits)
		t.AddRow("max message bits", maxBits)
		t.AddRow("§4 property violations", len(c.PropertyViolations()))
		t.AddRow("well-formed execution", bench.Check(c.Execution().CheckWellFormed()))
		t.AddRow("converged after quiescence", bench.Check(convergence))
		t.AddRow("derived A valid (Def 4)", bench.Check(verdict.Valid))
		t.AddRow("derived A correct (Def 8)", bench.Check(shorten(verdict.Correct)))
		t.AddRow("derived A causal (Def 12)", bench.Check(shorten(verdict.Causal)))
		t.AddRow("derived A OCC (Def 18)", bench.Check(shorten(verdict.OCC)))

		out := cli.Output(&bufs[i], jsonOut)
		if err := out.Emit(t); err != nil {
			return err
		}
		if !jsonOut {
			for _, v := range c.PropertyViolations() {
				fmt.Fprintln(&bufs[i], "violation:", v)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i := range bufs {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// shorten truncates long checker errors for table cells.
func shorten(err error) error {
	if err == nil {
		return nil
	}
	msg := err.Error()
	if len(msg) > 90 {
		msg = msg[:87] + "..."
	}
	return fmt.Errorf("%s", msg)
}
