// Command explore exhaustively model-checks a named scripted workload
// against a store: every interleaving of operations and deliveries is
// enumerated by the parallel frontier engine, invariants are checked in
// every reachable state, and every fully-drained final state is checked for
// convergence. Output is byte-identical for every -parallel value.
//
// Usage:
//
//	explore -store causal -script twowriter
//	explore -store lww -script twowriter      # finds the inversion schedule
//	explore -store gsp -script race
//	explore -parallel 8 -script fourwriter    # spread replays over 8 workers
//	explore -json -store lww                  # machine-readable verdict
//	explore -list
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

// scripts is the registry of named workloads.
var scripts = map[string]explore.Script{
	// twowriter: a dependent write chain racing a concurrent writer.
	"twowriter": {
		Replicas: 3,
		Ops: []explore.Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 0, Object: "y", Op: model.Write("b")},
			{Replica: 1, Object: "x", Op: model.Write("c")},
			{Replica: 2, Object: "x", Op: model.Read()},
			{Replica: 2, Object: "y", Op: model.Read()},
		},
	},
	// race: three replicas write the same register concurrently.
	"race": {
		Replicas: 3,
		Ops: []explore.Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 1, Object: "x", Op: model.Write("b")},
			{Replica: 2, Object: "x", Op: model.Write("c")},
		},
	},
	// chain: a three-link causal chain across objects and replicas.
	"chain": {
		Replicas: 3,
		Ops: []explore.Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 1, Object: "x", Op: model.Read()},
			{Replica: 1, Object: "y", Op: model.Write("b")},
			{Replica: 2, Object: "y", Op: model.Read()},
			{Replica: 2, Object: "z", Op: model.Write("c")},
		},
	},
	// fourwriter: four replicas write two objects concurrently — a much
	// larger frontier (~135k states) for exercising parallel exploration.
	"fourwriter": {
		Replicas: 4,
		Ops: []explore.Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 1, Object: "y", Op: model.Write("b")},
			{Replica: 2, Object: "x", Op: model.Write("c")},
			{Replica: 3, Object: "y", Op: model.Write("d")},
		},
	},
}

func main() {
	storeName := cli.StoreFlag(flag.CommandLine, "causal")
	parallel := cli.ParallelFlag(flag.CommandLine)
	jsonOut := cli.JSONFlag(flag.CommandLine)
	scriptName := flag.String("script", "twowriter", "named script (see -list)")
	k := flag.Int("k", 2, "K for the kbuffer store")
	maxStates := flag.Int("maxstates", 200000, "state budget")
	list := flag.Bool("list", false, "list available scripts")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(scripts))
		for name := range scripts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-10s %d replicas, %d ops\n", name, scripts[name].Replicas, len(scripts[name].Ops))
		}
		return
	}
	if err := run(os.Stdout, *storeName, *scriptName, *k, *maxStates, *parallel, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

// report is the machine-readable exploration verdict emitted with -json.
type report struct {
	Store       string `json:"store"`
	Script      string `json:"script"`
	States      int    `json:"states"`
	FinalStates int    `json:"final_states"`
	Transitions int    `json:"transitions"`
	// Verdict is "ok" when every reachable state satisfied the invariants
	// and every final state converged, else "violation".
	Verdict   string `json:"verdict"`
	Violation string `json:"violation,omitempty"`
}

func run(w io.Writer, storeName, scriptName string, k, maxStates, parallel int, jsonOut bool) error {
	script, ok := scripts[scriptName]
	if !ok {
		return fmt.Errorf("unknown script %q (use -list)", scriptName)
	}
	st, err := cli.OpenStore(storeName, spec.MVRTypes(), store.Options{K: k})
	if err != nil {
		return err
	}
	cfg := explore.Config{Store: st, MaxStates: maxStates, Parallel: parallel}
	// Store traits replace the old per-name special cases: stores declare
	// themselves what the explorer must tolerate.
	if pv, ok := st.(store.PropertyViolator); ok && pv.ViolatesProperties() {
		cfg.AllowPropertyViolations = true
	}
	if ra, ok := st.(store.ReadAger); ok {
		cfg.ConvergenceReadRounds = ra.ExtraReadRounds()
	}

	res, expErr := explore.Explore(script, cfg)
	if errors.Is(expErr, explore.ErrBudgetExceeded) {
		return expErr // a resource limit, not a finding about the store
	}
	if jsonOut {
		rep := report{Store: st.Name(), Script: scriptName, Verdict: "ok"}
		if res != nil {
			rep.States, rep.FinalStates, rep.Transitions = res.States, res.FinalStates, res.Transitions
		}
		if expErr != nil {
			rep.Verdict = "violation"
			rep.Violation = expErr.Error()
		}
		data, err := json.Marshal(rep)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(data))
		return nil
	}
	if res != nil {
		fmt.Fprintf(w, "store %s, script %s: %d states, %d final states, %d transitions\n",
			st.Name(), scriptName, res.States, res.FinalStates, res.Transitions)
	}
	if expErr != nil {
		fmt.Fprintf(w, "VIOLATION: %v\n", expErr)
		return nil // the violation itself is the (successful) finding
	}
	fmt.Fprintln(w, "all reachable states satisfy the invariants; all final states converged")
	return nil
}
