// Command explore exhaustively model-checks a named scripted workload
// against a store: every interleaving of operations and deliveries is
// enumerated, invariants are checked in every reachable state, and every
// fully-drained final state is checked for convergence.
//
// Usage:
//
//	explore -store causal -script twowriter
//	explore -store lww -script twowriter      # finds the inversion schedule
//	explore -store gsp -script race
//	explore -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/causal"
	"repro/internal/store/gsp"
	"repro/internal/store/kbuffer"
	"repro/internal/store/lww"
	"repro/internal/store/statesync"
)

// scripts is the registry of named workloads.
var scripts = map[string]explore.Script{
	// twowriter: a dependent write chain racing a concurrent writer.
	"twowriter": {
		Replicas: 3,
		Ops: []explore.Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 0, Object: "y", Op: model.Write("b")},
			{Replica: 1, Object: "x", Op: model.Write("c")},
			{Replica: 2, Object: "x", Op: model.Read()},
			{Replica: 2, Object: "y", Op: model.Read()},
		},
	},
	// race: three replicas write the same register concurrently.
	"race": {
		Replicas: 3,
		Ops: []explore.Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 1, Object: "x", Op: model.Write("b")},
			{Replica: 2, Object: "x", Op: model.Write("c")},
		},
	},
	// chain: a three-link causal chain across objects and replicas.
	"chain": {
		Replicas: 3,
		Ops: []explore.Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 1, Object: "x", Op: model.Read()},
			{Replica: 1, Object: "y", Op: model.Write("b")},
			{Replica: 2, Object: "y", Op: model.Read()},
			{Replica: 2, Object: "z", Op: model.Write("c")},
		},
	},
}

func main() {
	storeName := flag.String("store", "causal", "store: causal, statesync, lww, kbuffer, gsp")
	scriptName := flag.String("script", "twowriter", "named script (see -list)")
	k := flag.Int("k", 2, "K for the kbuffer store")
	maxStates := flag.Int("maxstates", 200000, "state budget")
	list := flag.Bool("list", false, "list available scripts")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(scripts))
		for name := range scripts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-10s %d replicas, %d ops\n", name, scripts[name].Replicas, len(scripts[name].Ops))
		}
		return
	}
	if err := run(os.Stdout, *storeName, *scriptName, *k, *maxStates); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, storeName, scriptName string, k, maxStates int) error {
	script, ok := scripts[scriptName]
	if !ok {
		return fmt.Errorf("unknown script %q (use -list)", scriptName)
	}
	types := spec.MVRTypes()
	cfg := explore.Config{MaxStates: maxStates}
	var st store.Store
	switch storeName {
	case "causal":
		st = causal.New(types)
	case "statesync":
		st = statesync.New(types)
	case "lww":
		st = lww.New(types)
	case "kbuffer":
		st = kbuffer.New(types, k)
		cfg.ConvergenceReadRounds = k
		cfg.AllowPropertyViolations = true // visible reads by design
	case "gsp":
		st = gsp.New(types)
		cfg.AllowPropertyViolations = true // sequencer commits on receive
	default:
		return fmt.Errorf("unknown store %q", storeName)
	}
	cfg.Store = st

	res, err := explore.Explore(script, cfg)
	if res != nil {
		fmt.Fprintf(w, "store %s, script %s: %d states, %d final states, %d transitions\n",
			st.Name(), scriptName, res.States, res.FinalStates, res.Transitions)
	}
	if err != nil {
		fmt.Fprintf(w, "VIOLATION: %v\n", err)
		return nil // the violation itself is the (successful) finding
	}
	fmt.Fprintln(w, "all reachable states satisfy the invariants; all final states converged")
	return nil
}
