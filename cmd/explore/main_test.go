package main

import (
	"strings"
	"testing"
)

func TestRunScriptsAcrossStores(t *testing.T) {
	for _, store := range []string{"causal", "statesync", "lww", "kbuffer", "gsp"} {
		for _, script := range []string{"twowriter", "race", "chain"} {
			var sb strings.Builder
			if err := run(&sb, store, script, 2, 500000); err != nil {
				t.Fatalf("%s/%s: %v", store, script, err)
			}
			if !strings.Contains(sb.String(), "states") {
				t.Fatalf("%s/%s: unexpected output:\n%s", store, script, sb.String())
			}
		}
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", "twowriter", 2, 1000); err == nil {
		t.Fatal("expected unknown store error")
	}
	if err := run(&sb, "causal", "nope", 2, 1000); err == nil {
		t.Fatal("expected unknown script error")
	}
}
