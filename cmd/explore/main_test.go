package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunScriptsAcrossStores(t *testing.T) {
	for _, store := range []string{"causal", "statesync", "lww", "kbuffer", "gsp"} {
		for _, script := range []string{"twowriter", "race", "chain"} {
			var sb strings.Builder
			if err := run(&sb, store, script, 2, 500000, 1, false); err != nil {
				t.Fatalf("%s/%s: %v", store, script, err)
			}
			if !strings.Contains(sb.String(), "states") {
				t.Fatalf("%s/%s: unexpected output:\n%s", store, script, sb.String())
			}
		}
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", "twowriter", 2, 1000, 1, false); err == nil {
		t.Fatal("expected unknown store error")
	}
	if err := run(&sb, "causal", "nope", 2, 1000, 1, false); err == nil {
		t.Fatal("expected unknown script error")
	}
}

// TestRunParallelMatchesSequential asserts the byte-identical guarantee of
// the parallel engine end to end, including the violation schedule the lww
// store produces (the reported counterexample must not depend on worker
// scheduling).
func TestRunParallelMatchesSequential(t *testing.T) {
	for _, store := range []string{"causal", "lww"} {
		var seq strings.Builder
		if err := run(&seq, store, "twowriter", 2, 500000, 1, false); err != nil {
			t.Fatalf("%s sequential: %v", store, err)
		}
		for _, workers := range []int{2, 4, 8} {
			var par strings.Builder
			if err := run(&par, store, "twowriter", 2, 500000, workers, false); err != nil {
				t.Fatalf("%s parallel=%d: %v", store, workers, err)
			}
			if par.String() != seq.String() {
				t.Errorf("%s parallel=%d output differs:\n--- sequential ---\n%s--- parallel ---\n%s",
					store, workers, seq.String(), par.String())
			}
		}
	}
}

func TestRunJSON(t *testing.T) {
	for _, store := range []string{"causal", "lww"} {
		var sb strings.Builder
		if err := run(&sb, store, "twowriter", 2, 500000, 2, true); err != nil {
			t.Fatal(err)
		}
		var rep report
		if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
			t.Fatalf("%s: output is not JSON: %v\n%s", store, err, sb.String())
		}
		if rep.States == 0 || rep.Store == "" || rep.Verdict != "ok" {
			t.Fatalf("%s: incomplete report: %+v", store, rep)
		}
	}
}
