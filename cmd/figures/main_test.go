package main

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunAllExperiments smoke-tests every experiment section end to end.
func TestRunAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 0, "", "", true, false, 1, 2, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Theorem 6", "Theorem 12",
		"§5.3", "quiescent convergence", "Charron-Bost", "op-driven messages",
		"Propagation ablation", "State size", "Session guarantees",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleSelections(t *testing.T) {
	for _, tc := range []struct {
		fig, thm int
		sec, ext string
		mustShow string
	}{
		{fig: 1, mustShow: "Figure 1"},
		{fig: 2, mustShow: "Figure 2"},
		{fig: 3, mustShow: "Figure 3"},
		{thm: 6, mustShow: "Theorem 6"},
		{sec: "5.3", mustShow: "§5.3"},
		{ext: "gsp", mustShow: "op-driven"},
	} {
		var sb strings.Builder
		if err := run(&sb, tc.fig, tc.thm, tc.sec, tc.ext, false, false, 1, 1, false); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if !strings.Contains(sb.String(), tc.mustShow) {
			t.Errorf("%+v: output missing %q", tc, tc.mustShow)
		}
	}
}

// TestRunParallelMatchesSequential pins deterministic aggregation for the
// fan-out sections (Theorem 6 batch, Theorem 12 sweep cells): the rendered
// tables are byte-identical for every worker count.
func TestRunParallelMatchesSequential(t *testing.T) {
	for _, thm := range []int{6, 12} {
		var seq strings.Builder
		if err := run(&seq, 0, thm, "", "", false, false, 1, 1, false); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			var par strings.Builder
			if err := run(&par, 0, thm, "", "", false, false, 1, workers, false); err != nil {
				t.Fatal(err)
			}
			if par.String() != seq.String() {
				t.Errorf("thm %d parallel=%d output differs from sequential", thm, workers)
			}
		}
	}
}

// TestRunJSON checks the -json mode emits JSON Lines: one parseable table
// object per line.
func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 12, "", "", false, false, 1, 2, true); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var table struct {
			Title   string     `json:"title"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		}
		if err := json.Unmarshal(sc.Bytes(), &table); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		if table.Title == "" || len(table.Rows) == 0 {
			t.Fatalf("line %d: empty table: %s", lines, sc.Text())
		}
	}
	if lines != 4 {
		t.Fatalf("theorem 12 should emit 4 JSON tables, got %d", lines)
	}
}
