package main

import (
	"strings"
	"testing"
)

// TestRunAllExperiments smoke-tests every experiment section end to end.
func TestRunAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 0, "", "", true, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Theorem 6", "Theorem 12",
		"§5.3", "quiescent convergence", "Charron-Bost", "op-driven messages",
		"Propagation ablation", "State size", "Session guarantees",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleSelections(t *testing.T) {
	for _, tc := range []struct {
		fig, thm int
		sec, ext string
		mustShow string
	}{
		{fig: 1, mustShow: "Figure 1"},
		{fig: 2, mustShow: "Figure 2"},
		{fig: 3, mustShow: "Figure 3"},
		{thm: 6, mustShow: "Theorem 6"},
		{sec: "5.3", mustShow: "§5.3"},
		{ext: "gsp", mustShow: "op-driven"},
	} {
		var sb strings.Builder
		if err := run(&sb, tc.fig, tc.thm, tc.sec, tc.ext, false, false); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if !strings.Contains(sb.String(), tc.mustShow) {
			t.Errorf("%+v: output missing %q", tc, tc.mustShow)
		}
	}
}
