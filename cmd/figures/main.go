// Command figures regenerates every paper artifact reproduced in this
// repository (see DESIGN.md §3): the Figure 1 specification semantics, the
// Figure 2 concurrency-inference experiment, the Figure 3 OCC scenarios, the
// Theorem 6 construction, the Theorem 12 / Figure 4 message lower bound, the
// §5.3 invisible-reads counterexample, quiescent convergence (Lemma 3 /
// Corollary 4), and the Charron-Bost dimension extension.
//
// Usage:
//
//	figures -all            # everything (default)
//	figures -fig 2          # one figure (1, 2, 3)
//	figures -thm 12         # one theorem (6, 12)
//	figures -sec 5.3        # the §5.3 experiment
//	figures -ext gsp        # extensions: charronbost, convergence, gsp,
//	                        # propagation, statesize, sessions
//	figures -slow           # include the slow crown S_4 refutation
//	figures -parallel 8     # sweep/batch cells on 8 workers
//	figures -json           # JSON Lines, one table per line
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/abstract"
	"repro/internal/bench"
	"repro/internal/charronbost"
	"repro/internal/cli"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	seed := cli.SeedFlag(flag.CommandLine, 1)
	parallel := cli.ParallelFlag(flag.CommandLine)
	jsonOut := cli.JSONFlag(flag.CommandLine)
	fig := flag.Int("fig", 0, "regenerate one figure (1, 2, or 3)")
	thm := flag.Int("thm", 0, "regenerate one theorem experiment (6 or 12)")
	sec := flag.String("sec", "", "regenerate a section experiment (5.3)")
	ext := flag.String("ext", "", "regenerate an extension (charronbost, convergence, gsp, propagation, statesize, sessions)")
	all := flag.Bool("all", false, "regenerate everything")
	slow := flag.Bool("slow", false, "include slow experiments (crown S_4)")
	flag.Parse()

	if err := run(os.Stdout, *fig, *thm, *sec, *ext, *all, *slow, *seed, *parallel, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// mvr opens a registered store over the MVR type assignment; the registry
// replaces the per-command store switches (see internal/store/registry.go).
func mvr(name string) store.Store {
	return cli.MustStore(name, spec.MVRTypes(), store.Options{})
}

func run(w io.Writer, fig, thm int, sec, ext string, all, slow bool, seed int64, parallel int, jsonOut bool) error {
	out := cli.Output(w, jsonOut)
	none := fig == 0 && thm == 0 && sec == "" && ext == ""
	if all || none {
		fig, thm = -1, -1
		sec, ext = "-", "-"
	}
	if fig == 1 || fig == -1 {
		if err := figure1(out); err != nil {
			return err
		}
	}
	if fig == 2 || fig == -1 {
		if err := figure2(out); err != nil {
			return err
		}
	}
	if fig == 3 || fig == -1 {
		if err := figure3(out); err != nil {
			return err
		}
	}
	if thm == 6 || thm == -1 {
		if err := theorem6(out, seed, parallel); err != nil {
			return err
		}
	}
	if thm == 12 || thm == -1 {
		if err := theorem12(out, seed, parallel); err != nil {
			return err
		}
	}
	if sec == "5.3" || sec == "-" {
		if err := section53(out); err != nil {
			return err
		}
	}
	if ext == "convergence" || ext == "-" {
		if err := convergence(out, seed); err != nil {
			return err
		}
	}
	if ext == "charronbost" || ext == "-" {
		if err := charronBost(out, slow); err != nil {
			return err
		}
	}
	if ext == "gsp" || ext == "-" {
		if err := openQuestion(out); err != nil {
			return err
		}
	}
	if ext == "propagation" || ext == "-" {
		if err := propagation(out, seed); err != nil {
			return err
		}
	}
	if ext == "statesize" || ext == "-" {
		if err := statesize(out); err != nil {
			return err
		}
	}
	if ext == "sessions" || ext == "-" {
		if err := sessions(out); err != nil {
			return err
		}
	}
	return nil
}

// sessions decomposes causal consistency into the four session guarantees
// on one dependency-inversion schedule: r0 writes x and broadcasts; r1
// observes it and writes y; r2 receives ONLY r1's message and reads both
// objects. A causally consistent store buffers y's update until x's
// arrives; an eagerly-applying store exposes y without x, which breaks
// writes-follow-reads while keeping the purely session-local guarantees.
func sessions(out bench.Output) error {
	t := bench.NewTable("Session guarantees — decomposing causal consistency",
		"store", "read-your-writes", "monotonic reads", "writes-follow-reads", "monotonic writes", "causal (Def 12)")
	for _, name := range []string{"causal", "statesync", "lww"} {
		st := mvr(name)
		c := sim.NewCluster(st, 3, 2)
		c.Do(0, "x", model.Write("a"))
		c.Send(0)
		c.DeliverOne(1) // r1 observes x=a
		c.Do(1, "x", model.Read())
		c.Do(1, "y", model.Write("b")) // causally after x=a
		c.Send(1)
		c.DeliverFrom(2, 1) // r2 gets ONLY r1's message
		c.Do(2, "y", model.Read())
		c.Do(2, "x", model.Read())
		a := c.DerivedAbstract()
		v := consistency.CheckSessionGuarantees(a)
		t.AddRow(st.Name(),
			bench.Verdict(v.ReadYourWrites), bench.Verdict(v.MonotonicReads),
			bench.Verdict(v.WritesFollowReads), bench.Verdict(v.MonotonicWrites),
			bench.Verdict(consistency.CheckCausal(a, st.Types())))
	}
	t.Note = "the session guarantees are strictly weaker than causal consistency: the lww store keeps all four session-local guarantees on this schedule yet fails transitivity (writes-follow-reads) by applying y=b without its dependency"
	return out.Emit(t)
}

// propagation contrasts op-based (store/causal) and state-based
// (store/statesync) update propagation under message loss, and the message
// sizes each pays.
func propagation(out bench.Output, seed int64) error {
	t := bench.NewTable("Propagation ablation — op-based vs state-based under message loss",
		"store", "drop prob", "converged after loss-free tail?", "total msg KB", "max msg bytes")
	objs := []model.ObjectID{"x", "y"}
	for _, name := range []string{"causal", "statesync"} {
		for _, drop := range []float64{0, 0.4, 0.8} {
			st := mvr(name)
			c := sim.NewCluster(st, 3, seed+4)
			c.SetFaults(sim.Faults{DropProb: drop})
			c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 150, MutateRatio: 0.8})
			c.SetFaults(sim.Faults{})
			// A loss-free tail: every replica mutates once and everything
			// drains. State-based messages subsume all earlier losses;
			// op-based losses are permanent.
			for r := 0; r < c.N(); r++ {
				c.Do(model.ReplicaID(r), "x", model.Write(model.Value(fmt.Sprintf("tail%d", r))))
			}
			c.Quiesce()
			totalBytes, maxBytes := 0, 0
			for _, m := range c.Execution().Messages {
				totalBytes += len(m.Payload)
				if len(m.Payload) > maxBytes {
					maxBytes = len(m.Payload)
				}
			}
			t.AddRow(st.Name(), drop, bench.Verdict(c.CheckConverged(objs)),
				fmt.Sprintf("%.1f", float64(totalBytes)/1024), maxBytes)
		}
	}
	t.Note = "state-based propagation reconverges through arbitrary loss at the price of full-state messages; op-based deltas are small but a dropped update is gone (no retransmission in the model)"
	return out.Emit(t)
}

// statesize measures per-replica metadata growth — the §7 space-bound
// flavor: MVR version sets carry O(n)-entry dependency clocks, so replica
// state grows with both the replica count and the surviving sibling count.
func statesize(out bench.Output) error {
	t := bench.NewTable("State size — MVR metadata growth (space lower-bound flavor, §7)",
		"replicas", "concurrent writers", "siblings held", "state bytes (digest proxy)")
	for _, n := range []int{2, 4, 8, 16} {
		st := mvr("causal")
		replicas := make([]store.Replica, n)
		for i := range replicas {
			replicas[i] = st.NewReplica(model.ReplicaID(i), n)
		}
		// Every replica writes x concurrently; replica 0 receives everything.
		for i := 1; i < n; i++ {
			replicas[i].Do("x", model.Write(model.Value(fmt.Sprintf("v%d", i))))
			payload := replicas[i].PendingMessage()
			replicas[i].OnSend()
			replicas[0].Receive(payload)
		}
		siblings := len(replicas[0].Do("x", model.Read()).Values)
		t.AddRow(n, n-1, siblings, len(replicas[0].StateDigest()))
	}
	t.Note = "each surviving sibling stores an n-entry dependency clock: state grows with min{concurrency, writers} × n, matching the flavor of the Burckhardt et al. space bounds the full version extends"
	return out.Emit(t)
}

// openQuestion probes the paper's §5.3/§7 open question: can the op-driven
// messages assumption be relaxed? The GSP store (sequencer-ordered writes,
// the paper's [11]) violates Definition 15 and in exchange guarantees one
// agreed total order of writes at every replica — strictly stronger than
// anything a write-propagating store achieves, and impossible for one (the
// causal store applies concurrent writes in divergent orders).
func openQuestion(out bench.Output) error {
	t := bench.NewTable("Open question — relaxing op-driven messages (GSP vs write-propagating)",
		"store", "op-driven?", "invisible reads?", "identical apply order?", "exposes concurrency?")

	scenario := func(st store.Store) (opDriven, invisible, sameOrder, exposes bool, err error) {
		c := sim.NewCluster(st, 3, 4)
		// Two concurrent writers; everything propagates through the mesh.
		c.Do(1, "x", model.Write("a"))
		c.Do(2, "x", model.Write("b"))
		c.Do(1, "y", model.Write("p"))
		c.Do(2, "y", model.Write("q"))
		c.Quiesce()
		resp := c.Do(0, "x", model.Read())
		exposes = len(resp.Values) > 1

		opDriven, invisible = true, true
		for _, v := range c.PropertyViolations() {
			switch v.Property {
			case "op-driven messages":
				opDriven = false
			case "invisible reads":
				invisible = false
			}
		}

		order := func(r model.ReplicaID) []model.Dot {
			switch rep := c.Replica(r).(type) {
			case interface{ Log() []model.Dot }:
				return rep.Log()
			case interface{ ApplyOrder() []model.Dot }:
				return rep.ApplyOrder()
			default:
				return nil
			}
		}
		sameOrder = true
		base := order(1)
		for r := 2; r < c.N(); r++ {
			other := order(model.ReplicaID(r))
			if len(other) != len(base) {
				sameOrder = false
				continue
			}
			for i := range base {
				if base[i] != other[i] {
					sameOrder = false
				}
			}
		}
		return opDriven, invisible, sameOrder, exposes, nil
	}

	for _, name := range []string{"causal", "gsp", "lww"} {
		st := mvr(name)
		opDriven, invisible, sameOrder, exposes, err := scenario(st)
		if err != nil {
			return err
		}
		t.AddRow(st.Name(), opDriven, invisible, sameOrder, exposes)
	}
	t.Note = "gsp trades Definition 15 for one agreed total order (stronger than OCC on its histories); write-propagating stores apply concurrent writes in divergent orders and at best expose the concurrency"
	return out.Emit(t)
}

// figure1 exercises the Figure 1 specification functions on canonical
// operation contexts.
func figure1(out bench.Output) error {
	t := bench.NewTable("Figure 1 — replicated object specifications",
		"object", "scenario", "read returns")
	types := spec.MVRTypes().With("s", spec.TypeORSet).With("reg", spec.TypeRegister)

	eval := func(obj model.ObjectID, events []model.Event, edges [][2]int) string {
		a := abstract.New()
		for _, e := range events {
			a.Append(e)
		}
		for _, edge := range edges {
			a.AddVis(edge[0], edge[1])
		}
		return spec.Specified(a, types, a.Len()-1).String()
	}
	ok := model.OKResponse()

	t.AddRow("register", "two concurrent writes, last in H wins", eval("reg",
		[]model.Event{
			model.DoEvent(0, "reg", model.Write("v1"), ok),
			model.DoEvent(1, "reg", model.Write("v2"), ok),
			model.DoEvent(2, "reg", model.Read(), model.Response{}),
		}, [][2]int{{0, 2}, {1, 2}}))
	t.AddRow("mvr", "two concurrent writes, both returned", eval("x",
		[]model.Event{
			model.DoEvent(0, "x", model.Write("v1"), ok),
			model.DoEvent(1, "x", model.Write("v2"), ok),
			model.DoEvent(2, "x", model.Read(), model.Response{}),
		}, [][2]int{{0, 2}, {1, 2}}))
	t.AddRow("mvr", "causally ordered writes, newest only", eval("x",
		[]model.Event{
			model.DoEvent(0, "x", model.Write("v1"), ok),
			model.DoEvent(1, "x", model.Write("v2"), ok),
			model.DoEvent(2, "x", model.Read(), model.Response{}),
		}, [][2]int{{0, 1}, {0, 2}, {1, 2}}))
	t.AddRow("orset", "add observed by remove: removed", eval("s",
		[]model.Event{
			model.DoEvent(0, "s", model.Add("e"), ok),
			model.DoEvent(1, "s", model.Remove("e"), ok),
			model.DoEvent(2, "s", model.Read(), model.Response{}),
		}, [][2]int{{0, 1}, {0, 2}, {1, 2}}))
	t.AddRow("orset", "add concurrent with remove: add wins", eval("s",
		[]model.Event{
			model.DoEvent(0, "s", model.Add("e"), ok),
			model.DoEvent(1, "s", model.Remove("e"), ok),
			model.DoEvent(2, "s", model.Read(), model.Response{}),
		}, [][2]int{{0, 2}, {1, 2}}))
	return out.Emit(t)
}

// figure2 runs the concurrency-inference experiment against the exposing
// and hiding stores.
func figure2(out bench.Output) error {
	t := bench.NewTable("Figure 2 — clients infer concurrency (E2)",
		"store", "read of x at r2", "complying causal A exists?", "hiding provably impossible?")
	for _, name := range []string{"causal", "lww"} {
		rep, err := core.RunFigure2(mvr(name))
		if err != nil {
			return err
		}
		t.AddRow(rep.StoreName, rep.XRead, bench.Verdict(rep.DerivedCausal), rep.HidingImpossible)
	}
	t.Note = "the lww store returns a single winner; the deductive prover shows no causally consistent MVR abstract execution can explain its history"
	return out.Emit(t)
}

// figure3 reports the OCC motivation scenarios.
func figure3(out bench.Output) error {
	cases, err := core.BuildFigure3()
	if err != nil {
		return err
	}
	t := bench.NewTable("Figure 3 — observable causal consistency (E3)",
		"case", "causally consistent?", "OCC?", "hiding impossible?", "description")
	for _, c := range cases {
		t.AddRow(c.Name, bench.Verdict(c.Causal), bench.Verdict(c.OCC), c.HidingImpossible, c.Description)
	}
	t.Note = "3a/3b: singleton reads let the store hide concurrency while staying causal; 3c: Definition 18 witnesses make hiding provably impossible"
	return out.Emit(t)
}

// theorem6 runs the §5.2.2 construction on crafted and random OCC abstract
// executions; the random batch fans out over parallel workers via
// core.Theorem6Batch.
func theorem6(out bench.Output, seed int64, parallel int) error {
	st := func() store.Store { return mvr("causal") }
	t := bench.NewTable("Theorem 6 — construction of α complying with A ∈ OCC (E4)",
		"input", "|H|", "OCC?", "construction complies?", "hb ⊆ vis?")
	for _, rounds := range []int{1, 2, 4, 8} {
		a := gen.WitnessedConcurrency(rounds, true)
		occErr := consistency.CheckOCC(a, spec.MVRTypes())
		rep, err := core.ConstructCompliant(st(), a)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("witnessed-concurrency r=%d", rounds), a.Len(),
			bench.Verdict(occErr), rep.Complies(), bench.Verdict(core.VerifyHBWithinVis(rep, a)))
	}
	cells, err := core.Theorem6Batch(st, gen.Config{Events: 24}, seed, 200, parallel)
	if err != nil {
		return err
	}
	occCount, complied := core.Theorem6Tally(cells)
	t.AddRow("random revealing causal (200 split seeds)", "≤24",
		fmt.Sprintf("%d OCC", occCount), fmt.Sprintf("%d/%d", complied, occCount), "-")
	t.Note = "Theorem 6 predicts 100% compliance on OCC inputs: no consistency model stronger than OCC is satisfiable"
	return out.Emit(t)
}

// theorem12 regenerates the Figure 4 experiment and the message-size
// sweeps; each sweep row is an independent construction cell, so the rows
// compute on parallel workers (core.ForEachCell) and render in input order.
func theorem12(out bench.Output, seed int64, parallel int) error {
	dense := func() store.Store { return mvr("causal") }
	sparse := func() store.Store { return mvr("causal-sparse") }

	one, err := core.RunMessageLowerBound(dense(), core.LowerBoundConfig{N: 5, S: 4, K: 16, Seed: seed})
	if err != nil {
		return err
	}
	single := bench.NewTable("Theorem 12 / Figure 4 — encode g into m_g, decode at a fresh replica (E5)",
		"n", "s", "k", "n'", "g", "|m_g| bits", "bound n'·⌈lg k⌉", "decoded", "ok")
	single.AddRow(one.N, one.S, one.K, one.NPrime, fmt.Sprintf("%v", one.G),
		one.MgBits, one.BoundBits, fmt.Sprintf("%v", one.Decoded), one.DecodeOK)
	if err := out.Emit(single); err != nil {
		return err
	}

	ks := []int{2, 8, 32, 128, 512, 2048, 8192}
	kt := bench.NewTable("Theorem 12 — |m_g| grows with lg k (n=6, s=6)",
		"k", "|m_g| bits", "bound bits", "bits per writer", "decode ok")
	points, err := core.SweepK(dense, 6, 6, ks, seed+2, parallel)
	if err != nil {
		return err
	}
	for _, p := range points {
		kt.AddRow(p.K, p.MgBits, p.BoundBits, p.BitsPerCoordinate, p.DecodeOK)
	}
	if err := out.Emit(kt); err != nil {
		return err
	}

	// The dense-vs-sparse comparison rows pair two constructions per cell.
	type pair struct{ dense, sparse *core.LowerBoundResult }
	comparison := func(cfgs []core.LowerBoundConfig) ([]pair, error) {
		rows := make([]pair, len(cfgs))
		err := core.ForEachCell(parallel, len(cfgs), func(i int) error {
			dp, err := core.RunMessageLowerBound(dense(), cfgs[i])
			if err != nil {
				return err
			}
			sp, err := core.RunMessageLowerBound(sparse(), cfgs[i])
			if err != nil {
				return err
			}
			rows[i] = pair{dp, sp}
			return nil
		})
		return rows, err
	}

	var nCfgs []core.LowerBoundConfig
	for _, n := range []int{3, 4, 6, 10, 18, 34} {
		nCfgs = append(nCfgs, core.LowerBoundConfig{N: n, S: 64, K: 64, Seed: seed + 4})
	}
	nRows, err := comparison(nCfgs)
	if err != nil {
		return err
	}
	nt := bench.NewTable("Theorem 12 — |m_g| grows with n' = min{n−2, s−1} (k=64)",
		"n", "s", "n'", "dense |m_g|", "sparse |m_g|", "bound bits")
	for _, r := range nRows {
		nt.AddRow(r.dense.N, 64, r.dense.NPrime, r.dense.MgBits, r.sparse.MgBits, r.dense.BoundBits)
	}
	if err := out.Emit(nt); err != nil {
		return err
	}

	var sCfgs []core.LowerBoundConfig
	for _, s := range []int{2, 3, 5, 9, 17, 33, 64} {
		sCfgs = append(sCfgs, core.LowerBoundConfig{N: 34, S: s, K: 64, Seed: seed + 4})
	}
	sRows, err := comparison(sCfgs)
	if err != nil {
		return err
	}
	st := bench.NewTable("Theorem 12 — the min{n,s} crossover (n=34, k=64)",
		"s", "n'", "dense |m_g|", "sparse |m_g|", "bound bits")
	for _, r := range sRows {
		st.AddRow(r.dense.S, r.dense.NPrime, r.dense.MgBits, r.sparse.MgBits, r.dense.BoundBits)
	}
	st.Note = "dense clocks pay Θ(n·lg k) regardless of s — the §6 gap; sparse dependency encoding tracks min{n−2, s−1}·lg k"
	return out.Emit(st)
}

// section53 contrasts the K-buffer store with the causal store.
func section53(out bench.Output) error {
	t := bench.NewTable("§5.3 — invisible reads are necessary (E6)",
		"store", "invisible-read violations", "read after 1 delivery", "read after K more reads")
	for _, k := range []int{1, 2, 4} {
		st := cli.MustStore("kbuffer", spec.MVRTypes(), store.Options{K: k})
		rep := core.RunSection53(st, k)
		t.AddRow(rep.StoreName, rep.InvisibleReadViolations, rep.ImmediateRead, rep.ExposedAfterKReads)
	}
	rep := core.RunSection53(mvr("causal"), 1)
	t.AddRow(rep.StoreName, rep.InvisibleReadViolations, rep.ImmediateRead, rep.ExposedAfterKReads)
	t.Note = "the K-buffer store avoids the immediate-visibility execution every invisible-reads store admits, so it satisfies a strictly stronger consistency model — at the cost of visible reads"
	return out.Emit(t)
}

// convergence demonstrates Lemma 3 / Corollary 4 across stores and faults.
func convergence(out bench.Output, seed int64) error {
	t := bench.NewTable("Lemma 3 / Corollary 4 — quiescent convergence (E7)",
		"store", "faults", "ops", "converged after quiescence?", "§4 property violations")
	objs := []model.ObjectID{"x", "y", "z"}
	cfgs := []struct {
		name   string
		faults sim.Faults
	}{
		{"none", sim.Faults{}},
		{"dup+reorder", sim.Faults{DupProb: 0.3, Reorder: true}},
	}
	mixed := spec.MVRTypes().With("y", spec.TypeORSet).With("z", spec.TypeCounter)
	stores := []store.Store{
		mvr("causal"),
		cli.MustStore("causal", mixed, store.Options{}),
		mvr("causal-perupdate"),
		mvr("lww"),
	}
	for _, st := range stores {
		for _, cfg := range cfgs {
			c := sim.NewCluster(st, 4, seed+10)
			c.SetFaults(cfg.faults)
			ops := c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 400})
			c.Quiesce()
			t.AddRow(st.Name(), cfg.name, ops, bench.Verdict(c.CheckConverged(objs)),
				len(c.PropertyViolations()))
		}
	}
	return out.Emit(t)
}

// charronBost reports crown dimensions.
func charronBost(out bench.Output, slow bool) error {
	t := bench.NewTable("Charron-Bost extension — crown S_n order dimension (E8)",
		"n", "elements", "linear extensions", "dimension", "vectors characterize?")
	ns := []int{2, 3}
	if slow {
		ns = append(ns, 4)
	}
	for _, n := range ns {
		o := charronbost.Crown(n)
		exts := o.LinearExtensions()
		dim, err := o.Dimension(n + 1)
		if err != nil {
			return err
		}
		realizer, err := o.Realizer(dim)
		if err != nil {
			return err
		}
		check := charronbost.CheckCharacterizes(o, charronbost.Vectors(realizer, o.N))
		t.AddRow(n, o.N, len(exts), dim, bench.Verdict(check))
	}
	t.Note = "dimension n means vector clocks of fewer than n components cannot characterize n-process causality; Theorem 12 generalizes this to arbitrary message formats"
	return out.Emit(t)
}
