// Command chaoshunt hunts for adversarial fault schedules: a beam search
// over the schedule seed space (internal/chaossearch) that maximizes a
// chosen stress objective against a store, reusing the explorer's
// level-synchronized parallel frontier. Every evaluation's chaos-metrics
// record feeds the report, so the output doubles as the tracked chaos
// pipeline (BENCH_CHAOS.json): one table row per objective, byte-identical
// for every -parallel value.
//
// Usage:
//
//	chaoshunt -store causal -budget 64
//	chaoshunt -store gsp -objective violations    # hunt §4 violations
//	chaoshunt -objective all -json                # the tracked pipeline rows
//	chaoshunt -store causal -validate             # re-run best on the TCP cluster
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/chaossearch"
	"repro/internal/cli"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	storeName := cli.StoreFlag(flag.CommandLine, "causal")
	seed := cli.SeedFlag(flag.CommandLine, 1)
	parallel := cli.ParallelFlag(flag.CommandLine)
	jsonOut := cli.JSONFlag(flag.CommandLine)
	objective := flag.String("objective", "all", "objective to maximize: convergence, retransmits, redelivery, violations, or all")
	budget := flag.Int("budget", 64, "schedule evaluations per objective")
	steps := flag.Int("steps", 150, "logical steps per candidate schedule")
	k := flag.Int("k", 2, "K for the kbuffer store")
	validate := flag.Bool("validate", false, "re-run each best schedule on the real TCP cluster (wall-clock, nondeterministic)")
	flag.Parse()

	if err := run(os.Stdout, *storeName, *seed, *budget, *steps, *k, *parallel, *objective, *jsonOut, *validate); err != nil {
		fmt.Fprintln(os.Stderr, "chaoshunt:", err)
		os.Exit(1)
	}
}

// objectives resolves the -objective flag ("all" fans out in canonical
// order, so the report's row order is fixed).
func objectives(name string) ([]chaossearch.Objective, error) {
	if name == "all" {
		return chaossearch.Objectives(), nil
	}
	obj, err := chaossearch.ParseObjective(name)
	if err != nil {
		return nil, err
	}
	return []chaossearch.Objective{obj}, nil
}

func run(w io.Writer, storeName string, seed int64, budget, steps, k, parallel int, objective string, jsonOut, validate bool) error {
	objs, err := objectives(objective)
	if err != nil {
		return err
	}
	out := cli.Output(w, jsonOut)

	table := bench.NewTable(
		fmt.Sprintf("adversarial chaos search: store=%s seed=%d budget=%d steps=%d", storeName, seed, budget, steps),
		"objective", "evals", "levels", "best seed", "best score", "uniform median", "uniform max",
		"downtime", "part span", "link span", "blocked", "dup copies", "quiesce rounds", "quiesce deliveries", "violations")
	table.Note = "scores and metrics are deterministic counters: a pure function of the flags, identical for any -parallel"

	type found struct {
		obj  chaossearch.Objective
		seed int64
	}
	var bests []found
	for _, obj := range objs {
		st, err := cli.OpenStore(storeName, spec.MVRTypes(), store.Options{K: k})
		if err != nil {
			return err
		}
		cfg := chaossearch.Config{
			Store: st, Seed: seed, Steps: steps,
			Objective: obj, Budget: budget, Parallel: parallel,
		}
		res, err := chaossearch.Search(cfg)
		if err != nil {
			return err
		}
		// The uniform control: an equal budget of unguided samples from a
		// decorrelated stream. The searched best should beat its median.
		cfg.Store, err = cli.OpenStore(storeName, spec.MVRTypes(), store.Options{K: k})
		if err != nil {
			return err
		}
		base, err := chaossearch.Baseline(cfg)
		if err != nil {
			return err
		}
		median, max := chaossearch.MedianScore(base)
		m := res.Best.Metrics
		table.AddRow(string(obj), res.Evals, res.Levels, res.Best.Seed, res.Best.Score, median, max,
			m.TotalDowntime(), m.PartitionSpan, m.LinkFaultSpan, m.Blocked, m.DupCopies,
			m.QuiesceRounds, m.QuiesceDeliveries, m.Violations)
		bests = append(bests, found{obj, res.Best.Seed})
	}
	if err := out.Emit(table); err != nil {
		return err
	}
	if !validate {
		return nil
	}

	// TCP re-validation rides outside the tracked pipeline: wall-clock
	// scheduling makes every count below run-dependent.
	vt := bench.NewTable(
		fmt.Sprintf("TCP cluster validation: store=%s", storeName),
		"objective", "seed", "converged", "retransmits", "reconnects", "dup frames", "gap frames", "downtime")
	vt.Note = "wall-clock transport counts: corroborates the simulator's ranking, not byte-reproducible"
	for _, b := range bests {
		st, err := cli.OpenStore(storeName, spec.MVRTypes(), store.Options{K: k})
		if err != nil {
			return err
		}
		cfg := chaossearch.Config{Store: st, Seed: seed, Steps: steps, Objective: b.obj, Budget: budget}
		m, verr := chaossearch.Validate(cfg, b.seed, 2*time.Millisecond)
		if verr != nil {
			vt.AddRow(string(b.obj), b.seed, bench.Check(verr), "-", "-", "-", "-", "-")
			continue
		}
		vt.AddRow(string(b.obj), b.seed, "ok", m.Retransmits, m.Reconnects, m.DupFrames, m.GapFrames, m.TotalDowntime())
	}
	return out.Emit(vt)
}
