package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunDeterministicAcrossParallel: chaoshunt's report is a pure function
// of its flags — byte-identical for every -parallel value, in both output
// formats. This is the contract that lets BENCH_CHAOS.json be tracked and
// drift-gated in CI.
func TestRunDeterministicAcrossParallel(t *testing.T) {
	for _, jsonOut := range []bool{false, true} {
		var want []byte
		for _, parallel := range []int{1, 3, 8} {
			var buf bytes.Buffer
			if err := run(&buf, "causal", 1, 12, 100, 2, parallel, "all", jsonOut, false); err != nil {
				t.Fatalf("json=%v parallel=%d: %v", jsonOut, parallel, err)
			}
			if want == nil {
				want = buf.Bytes()
				continue
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("json=%v: parallel=%d output differs from parallel=1:\n%s\nvs\n%s",
					jsonOut, parallel, buf.Bytes(), want)
			}
		}
	}
}

// TestRunAllObjectives: -objective all emits one row per objective in
// canonical order; a single named objective emits exactly one.
func TestRunAllObjectives(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "gsp", 1, 8, 100, 2, 1, "all", false, false); err != nil {
		t.Fatal(err)
	}
	var rowOrder []string
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) > 0 {
			rowOrder = append(rowOrder, fields[0])
		}
	}
	got := strings.Join(rowOrder, " ")
	want := "convergence retransmits redelivery violations"
	if !strings.Contains(got, want) {
		t.Fatalf("objective rows not in canonical order: %q lacks %q", got, want)
	}
	if err := run(&buf, "causal", 1, 4, 100, 2, 1, "latency", false, false); err == nil {
		t.Fatal("run accepted an unknown objective")
	}
}
