// Package repro's root benchmarks regenerate the cost side of every
// experiment in DESIGN.md §3 — one benchmark per paper artifact (E1–E9) plus
// the ablations of DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/charronbost"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/execution"
	"repro/internal/explore"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/causal"
	"repro/internal/store/gsp"
	"repro/internal/store/kbuffer"
	"repro/internal/store/lww"
	"repro/internal/store/statesync"
)

func causalStore() store.Store { return causal.New(spec.MVRTypes()) }

// BenchmarkFig1SpecEval measures Figure 1 specification evaluation: checking
// an entire generated causal execution against the MVR specification (E1).
func BenchmarkFig1SpecEval(b *testing.B) {
	a := gen.RandomCausal(gen.Config{Seed: 1, Events: 64, Replicas: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := spec.CheckCorrect(a, spec.MVRTypes()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2InferenceSearch measures the deductive impossibility proof on
// the hiding store's Figure 2 history (E2).
func BenchmarkFig2InferenceSearch(b *testing.B) {
	_, history := core.Figure2Schedule(lww.New(spec.MVRTypes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		impossible, _, err := consistency.ProveNoCausalMVR(history, spec.MVRTypes())
		if err != nil || !impossible {
			b.Fatalf("impossible=%v err=%v", impossible, err)
		}
	}
}

// BenchmarkFig2ExhaustiveSearch measures the complete brute-force search on
// a smaller hiding history (DESIGN.md §5 ablation 3: the two non-compliance
// engines).
func BenchmarkFig2ExhaustiveSearch(b *testing.B) {
	history := []model.Event{
		model.DoEvent(0, "u", model.Write("c"), model.OKResponse()),
		model.DoEvent(0, "x", model.Write("a"), model.OKResponse()),
		model.DoEvent(0, "m", model.Write("d"), model.OKResponse()),
		model.DoEvent(1, "x", model.Write("b"), model.OKResponse()),
		model.DoEvent(1, "u", model.Read(), model.ReadResponse(nil)),
		model.DoEvent(2, "m", model.Read(), model.ReadResponse([]model.Value{"d"})),
		model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"b"})),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := consistency.FindComplying(history, spec.MVRTypes(), consistency.SearchOptions{
			RequireCausal: true, MaxNodes: 50_000_000,
		})
		if err != nil || a != nil {
			b.Fatalf("a=%v err=%v", a, err)
		}
	}
}

// BenchmarkFig3OCCCheck measures Definition 18 checking on witnessed
// concurrency executions (E3).
func BenchmarkFig3OCCCheck(b *testing.B) {
	a := gen.WitnessedConcurrency(8, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := consistency.CheckOCC(a, spec.MVRTypes()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem6Construction measures the §5.2.2 recursive construction
// against the causal store, per input size (E4).
func BenchmarkTheorem6Construction(b *testing.B) {
	for _, rounds := range []int{1, 4, 16} {
		a := gen.WitnessedConcurrency(rounds, true)
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.ConstructCompliant(causalStore(), a)
				if err != nil || !rep.Complies() {
					b.Fatalf("complies=%v err=%v", rep.Complies(), err)
				}
			}
		})
	}
}

// BenchmarkTheorem12Encoding measures the Figure 4 construction + decode per
// k (E5).
func BenchmarkTheorem12Encoding(b *testing.B) {
	for _, k := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.RunMessageLowerBound(causalStore(), core.LowerBoundConfig{N: 5, S: 4, K: k, Seed: 1})
				if err != nil || !res.DecodeOK {
					b.Fatalf("decode=%v err=%v", res.DecodeOK, err)
				}
			}
		})
	}
}

// BenchmarkMessageSizeSweep measures the full k-sweep used for the E9
// upper/lower bound comparison.
func BenchmarkMessageSizeSweep(b *testing.B) {
	ks := []int{2, 16, 128, 1024}
	for i := 0; i < b.N; i++ {
		if _, err := core.SweepK(causalStore, 6, 6, ks, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKBufferStore measures the §5.3 counterexample scenario (E6).
func BenchmarkKBufferStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := core.RunSection53(kbuffer.New(spec.MVRTypes(), 3), 3)
		if len(rep.ImmediateRead.Values) != 0 {
			b.Fatal("K-buffer exposed immediately")
		}
	}
}

// BenchmarkQuiescentConvergence measures a full workload + quiescence +
// convergence check (E7).
func BenchmarkQuiescentConvergence(b *testing.B) {
	objs := []model.ObjectID{"x", "y", "z"}
	for i := 0; i < b.N; i++ {
		c := sim.NewCluster(causalStore(), 4, int64(i))
		c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 200})
		c.Quiesce()
		if err := c.CheckConverged(objs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharronBost measures the exact dimension computation of crown S_3
// (E8).
func BenchmarkCharronBost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := charronbost.Crown(3).Dimension(4)
		if err != nil || d != 3 {
			b.Fatalf("dim=%d err=%v", d, err)
		}
	}
}

// BenchmarkAblationOutboxBatching contrasts one message relaying the whole
// outbox against per-update messages (DESIGN.md §5 ablation 1).
func BenchmarkAblationOutboxBatching(b *testing.B) {
	run := func(b *testing.B, st store.Store) {
		objs := []model.ObjectID{"x", "y"}
		for i := 0; i < b.N; i++ {
			c := sim.NewCluster(st, 3, 5)
			c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 150, SendProb: 0.15})
			c.Quiesce()
		}
	}
	b.Run("batched", func(b *testing.B) { run(b, causal.New(spec.MVRTypes())) })
	b.Run("perupdate", func(b *testing.B) {
		run(b, causal.NewWithOptions(spec.MVRTypes(), causal.Options{PerUpdateMessages: true}))
	})
}

// BenchmarkAblationDepsEncoding contrasts dense and sparse dependency-clock
// encodings on the Theorem 12 construction (DESIGN.md §5 ablation 2).
func BenchmarkAblationDepsEncoding(b *testing.B) {
	bench := func(b *testing.B, st func() store.Store) {
		for i := 0; i < b.N; i++ {
			res, err := core.RunMessageLowerBound(st(), core.LowerBoundConfig{N: 18, S: 64, K: 64, Seed: 1})
			if err != nil || !res.DecodeOK {
				b.Fatalf("decode=%v err=%v", res.DecodeOK, err)
			}
			b.ReportMetric(float64(res.MgBits), "mg-bits")
		}
	}
	b.Run("dense", func(b *testing.B) { bench(b, causalStore) })
	b.Run("sparse", func(b *testing.B) {
		bench(b, func() store.Store {
			return causal.NewWithOptions(spec.MVRTypes(), causal.Options{SparseDeps: true})
		})
	})
}

// BenchmarkCausalStoreOps measures raw store operation cost outside the
// recording harness.
func BenchmarkCausalStoreOps(b *testing.B) {
	b.Run("write", func(b *testing.B) {
		r := causal.New(spec.MVRTypes()).NewReplica(0, 4)
		for i := 0; i < b.N; i++ {
			r.Do("x", model.Write(model.Value(fmt.Sprintf("v%d", i))))
			r.OnSend() // drain the outbox so it does not grow unboundedly
		}
	})
	b.Run("read", func(b *testing.B) {
		r := causal.New(spec.MVRTypes()).NewReplica(0, 4)
		r.Do("x", model.Write("a"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Do("x", model.Read())
		}
	})
	b.Run("receive", func(b *testing.B) {
		st := causal.New(spec.MVRTypes())
		src := st.NewReplica(0, 2)
		payloads := make([][]byte, 0, 256)
		for i := 0; i < 256; i++ {
			src.Do("x", model.Write(model.Value(fmt.Sprintf("v%d", i))))
			payloads = append(payloads, src.PendingMessage())
			src.OnSend()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst := st.NewReplica(1, 2)
			for _, p := range payloads {
				dst.Receive(p)
			}
		}
	})
}

// BenchmarkHappensBefore measures happens-before computation over recorded
// executions.
func BenchmarkHappensBefore(b *testing.B) {
	c := sim.NewCluster(causalStore(), 4, 3)
	c.RunRandom(sim.WorkloadConfig{Objects: []model.ObjectID{"x", "y"}, Steps: 400})
	c.Quiesce()
	x := c.Execution()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		execution.ComputeHB(x)
	}
}

// BenchmarkDerivedAbstract measures deriving and checking the abstract
// execution of a run.
func BenchmarkDerivedAbstract(b *testing.B) {
	c := sim.NewCluster(causalStore(), 3, 3)
	c.RunRandom(sim.WorkloadConfig{Objects: []model.ObjectID{"x", "y"}, Steps: 120})
	c.Quiesce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := c.DerivedAbstract()
		if err := consistency.CheckCausal(a, spec.MVRTypes()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreZooWorkload measures one identical workload+quiescence cycle
// against every store in the repository.
func BenchmarkStoreZooWorkload(b *testing.B) {
	stores := []store.Store{
		causal.New(spec.MVRTypes()),
		causal.NewWithOptions(spec.MVRTypes(), causal.Options{SparseDeps: true}),
		statesync.New(spec.MVRTypes()),
		lww.New(spec.MVRTypes()),
		kbuffer.New(spec.MVRTypes(), 2),
		gsp.New(spec.MVRTypes()),
	}
	objs := []model.ObjectID{"x", "y"}
	for _, st := range stores {
		b.Run(st.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := sim.NewCluster(st, 3, 9)
				c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 150})
				c.Quiesce()
			}
		})
	}
}

// BenchmarkDeductiveProver measures the order-free impossibility engine on
// the Figure 3c hiding history.
func BenchmarkDeductiveProver(b *testing.B) {
	history := []model.Event{
		model.DoEvent(0, "y1", model.Write("b1"), model.OKResponse()),
		model.DoEvent(0, "x", model.Write("w0"), model.OKResponse()),
		model.DoEvent(0, "y1", model.Write("b1x"), model.OKResponse()),
		model.DoEvent(0, "y0", model.Read(), model.ReadResponse(nil)),
		model.DoEvent(1, "y0", model.Write("b0"), model.OKResponse()),
		model.DoEvent(1, "x", model.Write("w1"), model.OKResponse()),
		model.DoEvent(1, "y0", model.Write("b0x"), model.OKResponse()),
		model.DoEvent(1, "y1", model.Read(), model.ReadResponse(nil)),
		model.DoEvent(2, "y1", model.Read(), model.ReadResponse([]model.Value{"b1x"})),
		model.DoEvent(2, "y0", model.Read(), model.ReadResponse([]model.Value{"b0x"})),
		model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"w1"})),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		impossible, _, err := consistency.ProveNoCausalMVR(history, spec.MVRTypes())
		if err != nil || !impossible {
			b.Fatalf("impossible=%v err=%v", impossible, err)
		}
	}
}

// BenchmarkSessionGuarantees measures the session-guarantee checker stack.
func BenchmarkSessionGuarantees(b *testing.B) {
	a := gen.RandomCausal(gen.Config{Seed: 2, Events: 60, Replicas: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := consistency.CheckSessionGuarantees(a); !v.OK() {
			b.Fatalf("%+v", v)
		}
	}
}

// BenchmarkCrownEmbedding measures the crown-execution bridge.
func BenchmarkCrownEmbedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := charronbost.VerifyCrownEmbedding(6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelExplore measures the frontier engine on the largest
// bundled script per worker count. On multicore hardware the 4-worker run
// should scale near-linearly; the per-count outputs are identical by
// construction (see internal/explore).
func BenchmarkParallelExplore(b *testing.B) {
	script := explore.Script{
		Replicas: 3,
		Ops: []explore.Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 0, Object: "y", Op: model.Write("b")},
			{Replica: 1, Object: "x", Op: model.Write("c")},
			{Replica: 1, Object: "y", Op: model.Write("d")},
			{Replica: 2, Object: "x", Op: model.Read()},
			{Replica: 2, Object: "y", Op: model.Read()},
		},
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := explore.Explore(script, explore.Config{
					Store: causalStore(), MaxStates: 2_000_000, Parallel: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

// BenchmarkParallelSweep measures the Theorem 12 (n, s, k) grid per worker
// count — the embarrassingly parallel experiment surface.
func BenchmarkParallelSweep(b *testing.B) {
	ns := []int{3, 4, 6, 10}
	ss := []int{2, 3, 5, 9}
	ks := []int{2, 16, 128, 1024}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SweepGrid(causalStore, ns, ss, ks, 1, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
