// Zoo: a guided tour of the repository's five data stores on one scenario —
// two replicas concurrently write the same register while partitioned, then
// the network heals. Each store resolves the conflict according to its
// position in the paper's design space:
//
//	causal     write-propagating, causal: exposes both writes as MVR siblings
//	statesync  write-propagating, state-based: same semantics, full-state gossip
//	lww        write-propagating, hides concurrency: silently picks a winner
//	kbuffer    visible reads (§5.3): delays remote writes for K reads
//	gsp        sequencer-ordered (not op-driven): one agreed global order
//
// Run with: go run ./examples/zoo
package main

import (
	"fmt"
	"log"

	"repro/internal/cli"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var stores []store.Store
	for _, name := range []string{"causal", "statesync", "lww", "kbuffer", "gsp"} {
		stores = append(stores, cli.MustStore(name, spec.MVRTypes(), store.Options{K: 2}))
	}
	const x = model.ObjectID("x")

	fmt.Println("scenario: r1 writes x=left and r2 writes x=right while partitioned;")
	fmt.Println("the partition heals, everything drains, and r0 reads x.")
	fmt.Println()

	for _, st := range stores {
		c := sim.NewCluster(st, 3, 1)
		c.Partition([]model.ReplicaID{1}, []model.ReplicaID{2})
		c.Do(1, x, model.Write("left"))
		c.Do(2, x, model.Write("right"))
		c.Send(1)
		c.Send(2)
		c.Heal()
		c.Quiesce()

		first := c.Do(0, x, model.Read())
		// A few more reads let the K-buffer store age its withheld queue.
		final := first
		for i := 0; i < 2; i++ {
			final = c.Do(0, x, model.Read())
		}

		opDriven, invisible := true, true
		for _, v := range c.PropertyViolations() {
			switch v.Property {
			case "op-driven messages":
				opDriven = false
			case "invisible reads":
				invisible = false
			}
		}
		fmt.Printf("%-10s first read %-14s after more reads %-14s (op-driven=%v, invisible reads=%v)\n",
			st.Name(), first, final, opDriven, invisible)
	}

	fmt.Println()
	fmt.Println("the causal and statesync stores expose the conflict ({left,right});")
	fmt.Println("lww and gsp return a single winner — lww by timestamp (detectably")
	fmt.Println("inconsistent with the MVR spec under causal consistency, Figure 2),")
	fmt.Println("gsp by paying with non-op-driven messages; kbuffer needs K reads")
	fmt.Println("before remote writes appear at all.")
	return nil
}
