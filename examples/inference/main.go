// Inference: the paper's Figure 2, end to end. With two or more objects,
// causal consistency and eventual consistency let CLIENTS detect that a
// data store hid concurrency: the same fixed schedule is driven against a
// store that exposes concurrent MVR writes (the causal store) and one that
// totally orders them (the last-writer-wins store). The hiding store's
// client history admits NO causally consistent MVR abstract execution — the
// deductive prover prints the contradiction.
//
// Run with: go run ./examples/inference
package main

import (
	"fmt"
	"log"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/causal"
	"repro/internal/store/lww"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("The Figure 2 schedule: replicas 0 and 1 concurrently write the MVR x")
	fmt.Println("while bracketing the writes with marker objects; replica 2 receives both")
	fmt.Println("broadcasts and reads the markers, then x.")

	for _, st := range []store.Store{causal.New(spec.MVRTypes()), lww.New(spec.MVRTypes())} {
		cluster, history := core.Figure2Schedule(st)
		fmt.Printf("\n=== store %q ===\n", st.Name())
		fmt.Println("space-time diagram (W write, R read, S send, V receive):")
		fmt.Println(cluster.Execution().Timeline())
		fmt.Println("client history:")
		for i, e := range history {
			fmt.Printf("  H[%2d] %s\n", i, e)
		}

		impossible, trace, err := consistency.ProveNoCausalMVR(history, st.Types())
		if err != nil {
			return err
		}
		if impossible {
			fmt.Println("\nverdict: NO causally consistent MVR abstract execution explains this")
			fmt.Println("history — the clients have detected the hidden concurrency:")
			for _, line := range trace {
				fmt.Println("  ", line)
			}
			continue
		}
		fmt.Println("\nverdict: the history is explainable; the store's own derived abstract")
		fmt.Println("execution is checked below:")
		a := cluster.DerivedAbstract()
		if err := consistency.CheckCausal(a, st.Types()); err != nil {
			return fmt.Errorf("derived execution unexpectedly inconsistent: %w", err)
		}
		fmt.Println("   valid + correct + causally consistent: ok")
	}
	return nil
}
