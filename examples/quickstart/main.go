// Quickstart: a three-replica causally consistent store with multi-valued
// registers. Writes complete immediately at one replica (high availability);
// a network partition lets two replicas write the same register
// concurrently, and after healing both values surface as siblings — the
// concurrency the MVR specification deliberately exposes (paper §3.1).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store/causal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Every object is a multi-valued register.
	cluster := sim.NewCluster(causal.New(spec.MVRTypes()), 3, 42)
	const profile = model.ObjectID("user:42:displayname")

	// A write is acknowledged locally, with no coordination.
	fmt.Println("r0 writes:", cluster.Do(0, profile, model.Write("Ada")))

	// Propagate to everyone: broadcast r0's pending message, deliver all.
	cluster.Send(0)
	cluster.DeliverOne(1)
	cluster.DeliverOne(2)
	fmt.Println("r1 reads :", cluster.Do(1, profile, model.Read()))

	// Partition {r0} | {r1, r2} and write on both sides.
	cluster.Partition([]model.ReplicaID{0}, []model.ReplicaID{1, 2})
	cluster.Do(0, profile, model.Write("Ada L."))
	cluster.Do(1, profile, model.Write("A. Lovelace"))
	cluster.Send(0)
	cluster.Send(1)

	// Each side sees only its own write while partitioned.
	fmt.Println("\nduring the partition:")
	fmt.Println("r0 reads :", cluster.Do(0, profile, model.Read()))
	fmt.Println("r2 reads :", cluster.Do(2, profile, model.Read())) // r1's write flows inside the group

	// Heal and drain the network: the concurrent writes become siblings
	// everywhere — the data store exposes the conflict instead of silently
	// dropping one side.
	cluster.Quiesce()
	fmt.Println("\nafter healing:")
	for r := 0; r < cluster.N(); r++ {
		fmt.Printf("r%d reads : %s\n", r, cluster.Do(model.ReplicaID(r), profile, model.Read()))
	}

	// A causally later write resolves the conflict: it observed both
	// siblings, so it dominates both.
	cluster.Do(2, profile, model.Write("Ada Lovelace"))
	cluster.Quiesce()
	fmt.Println("\nafter r2 resolves the conflict:")
	for r := 0; r < cluster.N(); r++ {
		fmt.Printf("r%d reads : %s\n", r, cluster.Do(model.ReplicaID(r), profile, model.Read()))
	}

	// The run satisfied the write-propagating properties throughout.
	if v := cluster.PropertyViolations(); len(v) > 0 {
		return fmt.Errorf("property violations: %v", v)
	}
	fmt.Println("\ninvisible reads and op-driven messages held for the whole run")
	return nil
}
