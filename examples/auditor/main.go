// Auditor: consistency auditing of a live store run with the full checker
// stack. A seeded random workload with duplication and reordering faults is
// driven against the causal store; the recorded concrete execution is
// checked for well-formedness, the derived abstract execution for validity,
// correctness, causal consistency, and OCC, and the run is exported as JSON
// for cmd/occheck.
//
// Run with: go run ./examples/auditor
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"repro/internal/abstract"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store/causal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	types := spec.MVRTypes().With("set", spec.TypeORSet).With("ctr", spec.TypeCounter)
	cluster := sim.NewCluster(causal.New(types), 3, 99)
	cluster.SetFaults(sim.Faults{DupProb: 0.2, Reorder: true})

	objs := []model.ObjectID{"x", "y", "set", "ctr"}
	ops := cluster.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 60})
	cluster.Quiesce()
	fmt.Printf("ran %d operations across 3 replicas (dup+reorder faults), then quiesced\n\n", ops)

	// 1. The concrete execution is well-formed (Definition 1).
	exec := cluster.Execution()
	report("concrete execution well-formed (Def 1)", exec.CheckWellFormed())

	// 2. The derived abstract execution passes the checker stack.
	a := cluster.DerivedAbstract()
	report("abstract execution valid (Def 4)", a.Validate())
	report("correct (Def 8)", spec.CheckCorrect(a, types))
	report("causally consistent (Def 12)", consistency.CheckCausal(a, types))
	occErr := consistency.CheckOCC(a, types)
	report("observably causally consistent (Def 18)", occErr)
	if occErr != nil {
		fmt.Println("   (expected: random runs rarely contain Definition 18 witnesses —")
		fmt.Println("    OCC is strictly stronger than causal consistency)")
	}

	// 3. Compliance: the abstract execution explains the concrete one, and
	// returned values flowed through messages (Proposition 2).
	report("concrete execution complies with derived A (Def 9)", abstract.Complies(exec, a))
	report("reads only return happened-before writes (Prop 2)", core.VerifyProposition2(exec))
	sessions := consistency.CheckSessionGuarantees(a)
	report("session guarantees (RYW/MR/WFR/MW)", firstErr(sessions.ReadYourWrites, sessions.MonotonicReads, sessions.WritesFollowReads, sessions.MonotonicWrites))

	// 4. Properties of §4 held throughout.
	if v := cluster.PropertyViolations(); len(v) > 0 {
		return fmt.Errorf("write-propagating properties violated: %v", v)
	}
	fmt.Println("ok: invisible reads (Def 16) and op-driven messages (Def 15)")

	// 5. Export the abstract execution for offline auditing with occheck.
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nexported %d events / %d bytes of JSON; audit offline with:\n", a.Len(), len(data))
	fmt.Println("  go run ./cmd/occheck <file>")
	roundTrip, err := abstract.UnmarshalExecution(data)
	if err != nil {
		return err
	}
	if !roundTrip.Equivalent(a) {
		return fmt.Errorf("JSON round trip lost information")
	}
	fmt.Println("JSON round trip: equivalent execution recovered")
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func report(name string, err error) {
	if err != nil {
		fmt.Printf("FAIL %s: %v\n", name, err)
		return
	}
	fmt.Println("ok:", name)
}
