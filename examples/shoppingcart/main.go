// Shoppingcart: the Dynamo motivation (paper §1) on an observed-remove set.
// A shopping cart replicated across data centers must stay writable during
// partitions; with an ORset, a remove only deletes the adds it has seen, so
// a concurrent re-add "wins" and no purchase is silently lost — the
// add-wins semantics of Figure 1(c).
//
// Run with: go run ./examples/shoppingcart
package main

import (
	"fmt"
	"log"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store/causal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The cart is an ORset; everything else defaults to MVR.
	types := spec.MVRTypes().With("cart:alice", spec.TypeORSet)
	cluster := sim.NewCluster(causal.New(types), 2, 7)
	const cart = model.ObjectID("cart:alice")

	// Alice's browser talks to replica 0: she fills her cart.
	cluster.Do(0, cart, model.Add("book"))
	cluster.Do(0, cart, model.Add("kettle"))
	cluster.Send(0)
	cluster.DeliverOne(1)
	fmt.Println("replica 1 sees the cart:", cluster.Do(1, cart, model.Read()))

	// A partition separates the replicas. On one side Alice empties the
	// cart; on the other side (a second tab routed elsewhere) she re-adds
	// the book.
	cluster.Partition([]model.ReplicaID{0}, []model.ReplicaID{1})
	cluster.Do(1, cart, model.Remove("book"))
	cluster.Do(1, cart, model.Remove("kettle"))
	cluster.Do(0, cart, model.Add("book")) // concurrent with the removes
	cluster.Send(0)
	cluster.Send(1)

	fmt.Println("\nduring the partition:")
	fmt.Println("replica 0:", cluster.Do(0, cart, model.Read()))
	fmt.Println("replica 1:", cluster.Do(1, cart, model.Read()))

	// Heal. The remove deletes only the adds it observed; the concurrent
	// re-add survives. The kettle stays removed (its removal observed the
	// only add).
	cluster.Quiesce()
	fmt.Println("\nafter healing (add wins over concurrent remove):")
	fmt.Println("replica 0:", cluster.Do(0, cart, model.Read()))
	fmt.Println("replica 1:", cluster.Do(1, cart, model.Read()))

	got := cluster.Do(0, cart, model.Read())
	want := model.ReadResponse([]model.Value{"book"})
	if !got.Equal(want) {
		return fmt.Errorf("cart = %s, want %s", got, want)
	}

	// Removing after observing the re-add works as expected.
	cluster.Do(1, cart, model.Remove("book"))
	cluster.Quiesce()
	fmt.Println("\nafter an observed remove:")
	fmt.Println("replica 0:", cluster.Do(0, cart, model.Read()))
	return nil
}
