// Package model defines the vocabulary of the PODC'15 replicated data store
// model (Attiya, Ellen, Morrison): replica and object identifiers, client
// operations and responses, the three kinds of events (do, send, receive),
// and broadcast messages.
//
// Everything else in this repository — concrete executions, abstract
// executions, object specifications, stores, and the theorem constructions —
// is phrased in terms of these types.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// ReplicaID identifies a replica. Replicas are numbered 0..n-1.
type ReplicaID int

// ObjectID names a replicated object (the paper's o).
type ObjectID string

// Value is the value written to, or read from, a replicated object. The
// paper assumes each write writes a distinct value so that a write event and
// its value can be identified; generators in this repository enforce that.
type Value string

// OpKind enumerates the client operations supported by the replicated object
// types of Figure 1 (read/write register, MVR, ORset) plus the PN-counter
// extension.
type OpKind int

// Operation kinds. OpRead applies to every object type.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpAdd
	OpRemove
	OpInc
)

// String returns the lower-case operation name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpInc:
		return "inc"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// IsMutator reports whether the operation kind updates object state (i.e. is
// not a read).
func (k OpKind) IsMutator() bool { return k != OpRead }

// Operation is a client operation op invoked on a replicated object.
type Operation struct {
	Kind OpKind
	// Arg is the value written/added/removed. Unused for reads and counter
	// increments.
	Arg Value
	// Delta is the increment amount for OpInc (may be negative, giving a
	// PN-counter decrement).
	Delta int64
}

// Read returns a read operation.
func Read() Operation { return Operation{Kind: OpRead} }

// Write returns a write(v) operation.
func Write(v Value) Operation { return Operation{Kind: OpWrite, Arg: v} }

// Add returns an add(v) operation (ORset).
func Add(v Value) Operation { return Operation{Kind: OpAdd, Arg: v} }

// Remove returns a remove(v) operation (ORset).
func Remove(v Value) Operation { return Operation{Kind: OpRemove, Arg: v} }

// Inc returns an inc(delta) operation (PN-counter).
func Inc(delta int64) Operation { return Operation{Kind: OpInc, Delta: delta} }

// String renders the operation as, e.g., "write(a)" or "read".
func (op Operation) String() string {
	switch op.Kind {
	case OpRead:
		return "read"
	case OpInc:
		return fmt.Sprintf("inc(%d)", op.Delta)
	default:
		return fmt.Sprintf("%s(%s)", op.Kind, op.Arg)
	}
}

// Response is the value rval(e) returned by a do event. Mutators return OK;
// reads return a set of values (a singleton for registers, possibly several
// for MVRs and ORsets) or a counter total.
type Response struct {
	// OK is true for mutator acknowledgements.
	OK bool
	// Values is the sorted set of values returned by a read.
	Values []Value
	// Count is the total returned by a counter read.
	Count int64
}

// OKResponse is the acknowledgement returned by every mutator.
func OKResponse() Response { return Response{OK: true} }

// ReadResponse builds a read response from a set of values, sorting and
// deduplicating them so that responses compare canonically.
func ReadResponse(values []Value) Response {
	vs := make([]Value, len(values))
	copy(vs, values)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	dedup := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			dedup = append(dedup, v)
		}
	}
	return Response{Values: dedup}
}

// CountResponse builds a counter read response.
func CountResponse(total int64) Response { return Response{Count: total} }

// Equal reports whether two responses are identical.
func (r Response) Equal(other Response) bool {
	if r.OK != other.OK || r.Count != other.Count || len(r.Values) != len(other.Values) {
		return false
	}
	for i := range r.Values {
		if r.Values[i] != other.Values[i] {
			return false
		}
	}
	return true
}

// Contains reports whether a read response includes value v.
func (r Response) Contains(v Value) bool {
	for _, got := range r.Values {
		if got == v {
			return true
		}
	}
	return false
}

// String renders the response: "ok", "{a,b}", or a counter total.
func (r Response) String() string {
	if r.OK {
		return "ok"
	}
	if r.Values != nil {
		parts := make([]string, len(r.Values))
		for i, v := range r.Values {
			parts[i] = string(v)
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return fmt.Sprintf("%d", r.Count)
}

// Action is the kind of an event: do, send, or receive (the paper's act(e)).
type Action int

// Event actions.
const (
	ActDo Action = iota + 1
	ActSend
	ActReceive
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case ActDo:
		return "do"
	case ActSend:
		return "send"
	case ActReceive:
		return "receive"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Dot identifies a single update: the Seq-th mutator originating at replica
// Origin. Dots give updates identity across replicas (for deduplication,
// visibility tracking, and ORset observed-remove semantics).
type Dot struct {
	Origin ReplicaID
	Seq    uint64
}

// String renders the dot as "(r2,5)".
func (d Dot) String() string { return fmt.Sprintf("(r%d,%d)", d.Origin, d.Seq) }

// Event is one event of a concrete execution (Definition 1). A do event
// carries the object, operation, and response; send and receive events carry
// the identifier of the message instance (an index into the execution's
// message table).
type Event struct {
	// Seq is the event's global index in the execution.
	Seq int
	// Replica is R(e), the replica at which the event occurs.
	Replica ReplicaID
	// Act is act(e).
	Act Action

	// Object, Op, Rval are set for do events (obj(e), op(e), rval(e)).
	Object ObjectID
	Op     Operation
	Rval   Response

	// MsgID is set for send and receive events: the identifier of the
	// message instance being sent or received.
	MsgID int
}

// IsDo reports whether the event is a do event.
func (e Event) IsDo() bool { return e.Act == ActDo }

// IsWrite reports whether the event is a do event invoking a mutator.
func (e Event) IsWrite() bool { return e.Act == ActDo && e.Op.Kind.IsMutator() }

// IsRead reports whether the event is a do event invoking a read.
func (e Event) IsRead() bool { return e.Act == ActDo && e.Op.Kind == OpRead }

// String renders the event compactly, e.g. "r1:do x.write(a)=ok" or
// "r0:send m3".
func (e Event) String() string {
	switch e.Act {
	case ActDo:
		return fmt.Sprintf("r%d:do %s.%s=%s", e.Replica, e.Object, e.Op, e.Rval)
	case ActSend:
		return fmt.Sprintf("r%d:send m%d", e.Replica, e.MsgID)
	case ActReceive:
		return fmt.Sprintf("r%d:receive m%d", e.Replica, e.MsgID)
	default:
		return fmt.Sprintf("r%d:%s", e.Replica, e.Act)
	}
}

// Message is one broadcast message: the sender and the opaque payload the
// sender's state machine produced. Payload size is what Theorem 12 bounds.
type Message struct {
	// ID is the message identifier referenced by send/receive events.
	ID int
	// From is the broadcasting replica.
	From ReplicaID
	// Payload is the wire encoding produced by the replica state machine.
	Payload []byte
}

// Bits returns the payload size in bits, the unit of Theorem 12.
func (m Message) Bits() int { return len(m.Payload) * 8 }

// DoEvent constructs a do event (without a global sequence number, which the
// recording execution assigns).
func DoEvent(r ReplicaID, obj ObjectID, op Operation, rval Response) Event {
	return Event{Replica: r, Act: ActDo, Object: obj, Op: op, Rval: rval}
}

// SendEvent constructs a send event.
func SendEvent(r ReplicaID, msgID int) Event {
	return Event{Replica: r, Act: ActSend, MsgID: msgID}
}

// ReceiveEvent constructs a receive event.
func ReceiveEvent(r ReplicaID, msgID int) Event {
	return Event{Replica: r, Act: ActReceive, MsgID: msgID}
}
