package model

import (
	"testing"
)

func TestOpKindStrings(t *testing.T) {
	cases := map[OpKind]string{
		OpRead: "read", OpWrite: "write", OpAdd: "add", OpRemove: "remove", OpInc: "inc",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := OpKind(99).String(); got != "opkind(99)" {
		t.Errorf("unknown kind rendered %q", got)
	}
}

func TestIsMutator(t *testing.T) {
	if OpRead.IsMutator() {
		t.Error("read is not a mutator")
	}
	for _, k := range []OpKind{OpWrite, OpAdd, OpRemove, OpInc} {
		if !k.IsMutator() {
			t.Errorf("%s should be a mutator", k)
		}
	}
}

func TestOperationString(t *testing.T) {
	cases := []struct {
		op   Operation
		want string
	}{
		{Read(), "read"},
		{Write("a"), "write(a)"},
		{Add("e"), "add(e)"},
		{Remove("e"), "remove(e)"},
		{Inc(-3), "inc(-3)"},
	}
	for _, tc := range cases {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.op, got, tc.want)
		}
	}
}

func TestReadResponseSortsAndDedups(t *testing.T) {
	r := ReadResponse([]Value{"b", "a", "b", "c", "a"})
	want := []Value{"a", "b", "c"}
	if len(r.Values) != len(want) {
		t.Fatalf("values = %v", r.Values)
	}
	for i := range want {
		if r.Values[i] != want[i] {
			t.Fatalf("values = %v, want %v", r.Values, want)
		}
	}
}

func TestReadResponseDoesNotAliasInput(t *testing.T) {
	in := []Value{"b", "a"}
	r := ReadResponse(in)
	in[0] = "zzz"
	if r.Contains("zzz") {
		t.Fatal("response aliases caller slice")
	}
}

func TestResponseEqual(t *testing.T) {
	cases := []struct {
		a, b Response
		want bool
	}{
		{OKResponse(), OKResponse(), true},
		{OKResponse(), ReadResponse(nil), false},
		{ReadResponse([]Value{"a"}), ReadResponse([]Value{"a"}), true},
		{ReadResponse([]Value{"a"}), ReadResponse([]Value{"b"}), false},
		{ReadResponse([]Value{"a"}), ReadResponse([]Value{"a", "b"}), false},
		{CountResponse(3), CountResponse(3), true},
		{CountResponse(3), CountResponse(4), false},
		{ReadResponse(nil), ReadResponse(nil), true},
	}
	for _, tc := range cases {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("%s.Equal(%s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestResponseString(t *testing.T) {
	if got := OKResponse().String(); got != "ok" {
		t.Errorf("ok response = %q", got)
	}
	if got := ReadResponse([]Value{"b", "a"}).String(); got != "{a,b}" {
		t.Errorf("read response = %q", got)
	}
	if got := CountResponse(-2).String(); got != "-2" {
		t.Errorf("count response = %q", got)
	}
}

func TestResponseContains(t *testing.T) {
	r := ReadResponse([]Value{"a", "b"})
	if !r.Contains("a") || r.Contains("z") {
		t.Fatal("Contains misbehaves")
	}
}

func TestEventPredicatesAndString(t *testing.T) {
	w := DoEvent(1, "x", Write("a"), OKResponse())
	if !w.IsDo() || !w.IsWrite() || w.IsRead() {
		t.Fatal("write event predicates wrong")
	}
	r := DoEvent(0, "x", Read(), ReadResponse([]Value{"a"}))
	if !r.IsRead() || r.IsWrite() {
		t.Fatal("read event predicates wrong")
	}
	if got := w.String(); got != "r1:do x.write(a)=ok" {
		t.Errorf("event string = %q", got)
	}
	s := SendEvent(0, 3)
	if got := s.String(); got != "r0:send m3" {
		t.Errorf("send string = %q", got)
	}
	if s.IsDo() || s.IsWrite() {
		t.Fatal("send event predicates wrong")
	}
	rcv := ReceiveEvent(2, 3)
	if got := rcv.String(); got != "r2:receive m3" {
		t.Errorf("receive string = %q", got)
	}
}

func TestMessageBits(t *testing.T) {
	m := Message{Payload: make([]byte, 5)}
	if m.Bits() != 40 {
		t.Fatalf("Bits = %d", m.Bits())
	}
}

func TestDotString(t *testing.T) {
	if got := (Dot{Origin: 2, Seq: 5}).String(); got != "(r2,5)" {
		t.Errorf("dot string = %q", got)
	}
}
