package membership

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestViewMergeEpochRules(t *testing.T) {
	v := NewView()
	if !v.Merge(Member{ID: 1, Addr: ":7001", Epoch: 1}) {
		t.Fatal("first record should change the view")
	}
	// Same epoch, same state: a duplicate announcement is idempotent.
	if v.Merge(Member{ID: 1, Addr: ":7001", Epoch: 1}) {
		t.Fatal("duplicate record changed the view")
	}
	// Same epoch: left beats alive (a delayed alive dup cannot resurrect).
	if !v.Merge(Member{ID: 1, Addr: ":7001", Epoch: 1, Left: true}) {
		t.Fatal("departure at the same epoch should win")
	}
	if v.Merge(Member{ID: 1, Addr: ":7001", Epoch: 1}) {
		t.Fatal("alive dup at the same epoch resurrected a left member")
	}
	// Higher epoch: the rejoin incarnation wins over the old departure.
	if !v.Merge(Member{ID: 1, Addr: ":7009", Epoch: 2}) {
		t.Fatal("higher-epoch rejoin should win")
	}
	m, ok := v.Get(1)
	if !ok || m.Left || m.Epoch != 2 || m.Addr != ":7009" {
		t.Fatalf("after rejoin: %+v", m)
	}
	if got := len(v.Alive()); got != 1 {
		t.Fatalf("alive = %d, want 1", got)
	}
}

// TestViewMergeConvergent checks the semilattice property operationally:
// merging the same records in random orders always converges to the same
// view.
func TestViewMergeConvergent(t *testing.T) {
	records := []Member{
		{ID: 0, Addr: "a", Epoch: 1},
		{ID: 0, Addr: "a", Epoch: 1, Left: true},
		{ID: 0, Addr: "b", Epoch: 2},
		{ID: 1, Addr: "c", Epoch: 5},
		{ID: 1, Addr: "d", Epoch: 4, Left: true},
		{ID: 2, Addr: "e", Epoch: 1},
	}
	want := ""
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		v := NewView()
		for _, i := range rng.Perm(len(records)) {
			v.Merge(records[i])
		}
		got := v.String()
		if trial == 0 {
			want = got
		} else if got != want {
			t.Fatalf("merge order changed the fixed point:\n got %s\nwant %s", got, want)
		}
	}
}

// buildForest hashes k deterministic updates for origin 0.
func buildForest(k int) *Forest {
	f := NewForest(3)
	for i := 1; i <= k; i++ {
		payload := []byte(fmt.Sprintf("update-%d", i))
		if err := f.Append(0, uint64(i), payload); err != nil {
			panic(err)
		}
	}
	return f
}

func TestForestPrefixAgreement(t *testing.T) {
	// Two forests sharing a prefix agree on every prefix root up to the
	// shorter one, and disagree beyond any point of divergence.
	a := buildForest(100)
	b := buildForest(70)
	for k := uint64(0); k <= 70; k++ {
		if a.PrefixRoot(0, k) != b.PrefixRoot(0, k) {
			t.Fatalf("prefix roots diverge at k=%d on identical prefixes", k)
		}
	}
	if a.PrefixRoot(0, 100) == a.PrefixRoot(0, 70) {
		t.Fatal("roots over different prefixes collide")
	}
}

func TestForestDetectsDivergence(t *testing.T) {
	a := buildForest(100)
	b := buildForest(100)
	// Corrupt one update hash in the middle of b.
	b.hashes[0][40][0] ^= 0xff
	if a.Root(0) == b.Root(0) {
		t.Fatal("root blind to a corrupted update")
	}
	// The walk localizes the damage: descend from the root, at each level
	// taking the first child whose hash disagrees, and land on the leaf
	// covering update 40.
	k := uint64(100)
	level, index := TopLevel(k), uint64(0)
	for level > 0 {
		next := uint64(0)
		found := false
		for c := uint64(0); c < 2; c++ {
			ha, okA := a.NodeHash(0, k, level-1, 2*index+c)
			hb, okB := b.NodeHash(0, k, level-1, 2*index+c)
			if okA != okB || (okA && ha != hb) {
				next = 2*index + c
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("level %d node %d differs but no child does", level, index)
		}
		level, index = level-1, next
	}
	lo, hi := index*LeafSpan, (index+1)*LeafSpan
	if 40 < lo || 40 >= hi {
		t.Fatalf("walk landed on leaf [%d,%d), corrupted update is 40", lo, hi)
	}
}

func TestForestAppendRejectsGaps(t *testing.T) {
	f := NewForest(2)
	if err := f.Append(0, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(0, 3, []byte("c")); err == nil {
		t.Fatal("gap in seq accepted")
	}
	if err := f.Append(5, 1, []byte("x")); err == nil {
		t.Fatal("out-of-range origin accepted")
	}
}

func TestForestCheckpointRoundTrip(t *testing.T) {
	a := buildForest(90)
	// Persisting the raw hash arrays and reloading them reproduces every
	// root — what the durable checkpoint relies on.
	b := NewForest(3)
	for i := uint64(0); i < a.Count(0); i++ {
		if err := b.AppendHash(0, a.UpdateHash(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Root(0) != b.Root(0) || a.PrefixRoot(0, 33) != b.PrefixRoot(0, 33) {
		t.Fatal("checkpoint round trip changed roots")
	}
}

func TestTopLevel(t *testing.T) {
	for _, tc := range []struct {
		k    uint64
		want int
	}{
		{0, 0}, {1, 0}, {32, 0}, {33, 1}, {64, 1}, {65, 2}, {1 << 12, 7},
	} {
		if got := TopLevel(tc.k); got != tc.want {
			t.Fatalf("TopLevel(%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
}
