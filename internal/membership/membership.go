// Package membership holds the cluster-membership state machine and the
// Merkle history digests that let a joining node catch up by pulling only
// the ranges it is missing.
//
// The paper's replica model (§2) fixes the replica population up front;
// what this package adds is the bookkeeping that lets a real cluster
// approximate that model while nodes come and go: a View records, per
// replica ID, whether the node is currently a member (alive) or has
// departed (left), stamped with an incarnation epoch so a rejoin is
// distinguishable from a duplicate announcement; a Forest summarizes each
// origin's broadcast history as an incremental Merkle tree, so two nodes
// can agree on the exact prefix they share by exchanging O(lg k) hashes —
// the |m_g| metadata Theorem 12's lower bound counts — instead of
// re-shipping the log.
//
// The package is deliberately transport-free: internal/cluster encodes
// Views and tree hashes onto the wire and internal/durable checkpoints a
// Forest next to its snapshots, but nothing here imports either.
package membership

import (
	"fmt"
	"sort"
	"sync"
)

// Member is one node's membership record: its replica ID, last known
// listen address, incarnation epoch, and whether it is alive or has left.
// Records are totally ordered by (Epoch, Left): a higher epoch always
// wins, and within one epoch a departure beats liveness — so a node that
// left can only come back by announcing a strictly higher epoch, which is
// what makes a rejoin distinguishable from a delayed duplicate of the old
// incarnation's announcement.
type Member struct {
	ID    int    `json:"id"`
	Addr  string `json:"addr"`
	Epoch uint64 `json:"epoch"`
	Left  bool   `json:"left,omitempty"`
}

// supersedes reports whether record a should replace record b.
func supersedes(a, b Member) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	return a.Left && !b.Left
}

// View is a node's convergent picture of the membership: one Member per
// replica ID, merged under the epoch rules above. Merge is commutative,
// associative, and idempotent (it is a join-semilattice per ID), so seeded
// gossip rounds converge every view to the same fixed point regardless of
// exchange order. Safe for concurrent use.
type View struct {
	mu      sync.Mutex
	members map[int]Member
}

// NewView returns an empty view.
func NewView() *View {
	return &View{members: make(map[int]Member)}
}

// Merge folds one record in, returning true if the view changed.
func (v *View) Merge(m Member) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	have, ok := v.members[m.ID]
	if !ok || supersedes(m, have) {
		v.members[m.ID] = m
		return true
	}
	return false
}

// MergeAll folds a batch of records in (one gossip frame's worth),
// returning true if any changed the view.
func (v *View) MergeAll(ms []Member) bool {
	changed := false
	for _, m := range ms {
		if v.Merge(m) {
			changed = true
		}
	}
	return changed
}

// Get returns the record for id, if any.
func (v *View) Get(id int) (Member, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.members[id]
	return m, ok
}

// Members snapshots every record, sorted by ID (the canonical order every
// node renders and gossips, so views are comparable byte-for-byte).
func (v *View) Members() []Member {
	v.mu.Lock()
	out := make([]Member, 0, len(v.members))
	for _, m := range v.members {
		out = append(out, m)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Alive snapshots the records currently considered members, sorted by ID.
func (v *View) Alive() []Member {
	all := v.Members()
	out := all[:0]
	for _, m := range all {
		if !m.Left {
			out = append(out, m)
		}
	}
	return out
}

// String renders the view compactly for logs: "0@:7000 1@:7001 2!left(3)".
func (v *View) String() string {
	s := ""
	for i, m := range v.Members() {
		if i > 0 {
			s += " "
		}
		if m.Left {
			s += fmt.Sprintf("r%d!left(%d)", m.ID, m.Epoch)
		} else {
			s += fmt.Sprintf("r%d@%s(%d)", m.ID, m.Addr, m.Epoch)
		}
	}
	return s
}
