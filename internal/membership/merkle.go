package membership

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// LeafSpan is how many consecutive updates one Merkle leaf covers. Leaves
// this wide keep the tree shallow (a million-update history is a 15-level
// walk) while bounding how much a walk over-fetches: a divergent prefix is
// localized to within LeafSpan updates.
const LeafSpan = 32

// Hash is one SHA-256 digest.
type Hash [32]byte

// Forest holds one node's incremental Merkle summary of every origin's
// broadcast history: per origin, the per-update hashes in seq order, from
// which any leaf, interior node, or prefix root is derived on demand.
//
// Append is O(1); roots and node hashes are recomputed per query (O(k) for
// a k-update origin), which keeps the structure trivially checkpointable —
// the update-hash arrays ARE the whole state — at history sizes this
// repository measures. The zero value is unusable; use NewForest.
//
// The Forest is not internally locked: the cluster's event loop owns the
// writes (Append runs in the same loop turn that journals the hashed
// event) and readers go through the same loop.
type Forest struct {
	hashes [][]Hash
}

// NewForest returns an empty forest for an n-origin cluster.
func NewForest(n int) *Forest {
	return &Forest{hashes: make([][]Hash, n)}
}

// Origins returns the origin population the forest was created for.
func (f *Forest) Origins() int { return len(f.hashes) }

// Count returns how many of origin's updates the forest has hashed.
func (f *Forest) Count(origin int) uint64 {
	if origin < 0 || origin >= len(f.hashes) {
		return 0
	}
	return uint64(len(f.hashes[origin]))
}

// HashUpdate digests one broadcast update's identity and content: origin,
// seq, and payload — exactly the fields every replica holds identically.
// Lamport stamps are deliberately excluded: a receiver records an update
// under its own local clock, so including them would make identical
// histories hash differently across nodes. The fields are
// length-delimited by construction (fixed-width encodings), so distinct
// updates cannot collide by concatenation tricks.
func HashUpdate(origin int, seq uint64, payload []byte) Hash {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(origin))
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], seq)
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], uint64(len(payload)))
	h.Write(b[:])
	h.Write(payload)
	var out Hash
	h.Sum(out[:0])
	return out
}

// Append hashes origin's next update into the forest. seq must be exactly
// count+1 (broadcast sequences are gap-free cumulative counters); anything
// else is a caller bug worth failing loudly over, since a silently
// misaligned tree would "detect" divergence that is not there.
func (f *Forest) Append(origin int, seq uint64, payload []byte) error {
	if origin < 0 || origin >= len(f.hashes) {
		return fmt.Errorf("membership: hash append for origin %d outside forest of %d", origin, len(f.hashes))
	}
	if want := uint64(len(f.hashes[origin])) + 1; seq != want {
		return fmt.Errorf("membership: origin %d hash append at seq %d, want %d", origin, seq, want)
	}
	f.hashes[origin] = append(f.hashes[origin], HashUpdate(origin, seq, payload))
	return nil
}

// AppendHash appends a precomputed update hash (the checkpoint-restore
// path: internal/durable persists the raw hash arrays and reloads them
// without re-reading payloads).
func (f *Forest) AppendHash(origin int, h Hash) error {
	if origin < 0 || origin >= len(f.hashes) {
		return fmt.Errorf("membership: hash append for origin %d outside forest of %d", origin, len(f.hashes))
	}
	f.hashes[origin] = append(f.hashes[origin], h)
	return nil
}

// UpdateHash returns the hash of origin's i-th update (0-based).
func (f *Forest) UpdateHash(origin int, i uint64) Hash {
	return f.hashes[origin][i]
}

// TopLevel returns the level of the root node of a tree over k updates:
// level 0 is the leaves, each covering LeafSpan updates.
func TopLevel(k uint64) int {
	leaves := (k + LeafSpan - 1) / LeafSpan
	level := 0
	for leaves > 1 {
		leaves = (leaves + 1) / 2
		level++
	}
	return level
}

// Domain-separation prefixes: leaf and interior hashes can never collide
// with each other or with raw update hashes.
var (
	leafTag     = []byte{0x00}
	interiorTag = []byte{0x01}
)

// NodeHash returns the hash of node (level, index) in the Merkle tree over
// the first prefix updates of origin, and whether that node exists (covers
// at least one update). Node (level, index) covers the update range
// [index·LeafSpan·2^level, (index+1)·LeafSpan·2^level) clipped to prefix.
// An interior node with a single child takes that child's hash unchanged
// (the "lifted" convention), so the root over k updates is insensitive to
// how the incomplete right spine is padded.
func (f *Forest) NodeHash(origin int, prefix uint64, level int, index uint64) (Hash, bool) {
	if origin < 0 || origin >= len(f.hashes) {
		return Hash{}, false
	}
	if prefix > uint64(len(f.hashes[origin])) {
		return Hash{}, false
	}
	span := uint64(LeafSpan) << uint(level)
	start := index * span
	if start >= prefix || level < 0 {
		return Hash{}, false
	}
	if level == 0 {
		end := start + LeafSpan
		if end > prefix {
			end = prefix
		}
		h := sha256.New()
		h.Write(leafTag)
		for i := start; i < end; i++ {
			hh := f.hashes[origin][i]
			h.Write(hh[:])
		}
		var out Hash
		h.Sum(out[:0])
		return out, true
	}
	left, okL := f.NodeHash(origin, prefix, level-1, 2*index)
	right, okR := f.NodeHash(origin, prefix, level-1, 2*index+1)
	if !okL {
		return Hash{}, false
	}
	if !okR {
		return left, true
	}
	h := sha256.New()
	h.Write(interiorTag)
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out, true
}

// PrefixRoot returns the Merkle root over the first k updates of origin
// (the zero Hash for k == 0). Two nodes whose roots over the same k agree
// hold, with cryptographic certainty, the same k-update prefix — which is
// what lets anti-entropy ship only the range beyond k.
func (f *Forest) PrefixRoot(origin int, k uint64) Hash {
	if k == 0 {
		return Hash{}
	}
	h, ok := f.NodeHash(origin, k, TopLevel(k), 0)
	if !ok {
		return Hash{}
	}
	return h
}

// Root returns the Merkle root over origin's full hashed history.
func (f *Forest) Root(origin int) Hash {
	return f.PrefixRoot(origin, f.Count(origin))
}
