package livecheck

// ShardSet runs one Checker per shard of a sharded node or cluster and
// composes their verdicts. Correctness rests on the same per-object
// projection argument (Proposition 1) the offline audit uses: a key lives on
// exactly one shard, every shard has its own (origin, seq) broadcast domain
// and Lamport clock, and no §4 property relates operations on different
// objects — so the full event stream satisfies the checked guarantees iff
// every shard's projection does, and the projections can be checked
// independently with no shared state.
//
// Observe's signature matches cluster.Config.Tap, so a ShardSet drops in
// where a single Checker's Observe did: `cfg.Tap = set.Observe`.
type ShardSet struct {
	checkers []*Checker
}

// NewShardSet creates shards independent checkers for a cluster of n nodes,
// each configured with opts. shards < 1 is treated as 1.
func NewShardSet(n, shards int, opts Options) *ShardSet {
	if shards < 1 {
		shards = 1
	}
	s := &ShardSet{checkers: make([]*Checker, shards)}
	for i := range s.checkers {
		s.checkers[i] = New(n, opts)
	}
	return s
}

// Shards returns how many per-shard checkers the set holds.
func (s *ShardSet) Shards() int { return len(s.checkers) }

// Shard returns shard i's checker (for per-shard verdicts and tests).
func (s *ShardSet) Shard(i int) *Checker { return s.checkers[i] }

// Observe feeds one tapped event to its shard's checker. Events for a shard
// the set does not know are dropped rather than mis-attributed — that only
// happens on a shard-count misconfiguration, which the cluster layer
// already refuses at the hello exchange.
func (s *ShardSet) Observe(shard int, ev Event) {
	if shard < 0 || shard >= len(s.checkers) {
		return
	}
	s.checkers[shard].Observe(ev)
}

// Verdict composes the per-shard verdicts into one: counters and state
// accounting sum, the kept violations concatenate in shard order, and the
// set is clean iff every shard is. PeakTracked sums the per-shard peaks,
// which upper-bounds the true simultaneous peak.
func (s *ShardSet) Verdict() Verdict {
	var out Verdict
	out.Clean = true
	for _, c := range s.checkers {
		v := c.Verdict()
		out.Events += v.Events
		out.Dos += v.Dos
		out.Sends += v.Sends
		out.Receives += v.Receives
		out.Violations += v.Violations
		out.First = append(out.First, v.First...)
		out.TrackedDots += v.TrackedDots
		out.PeakTracked += v.PeakTracked
		out.PendingDots += v.PendingDots
		out.UndeliveredDots += v.UndeliveredDots
		out.RvalSkipped += v.RvalSkipped
		out.Clean = out.Clean && v.Clean
	}
	return out
}

// ShardVerdicts snapshots every shard's verdict, index = shard.
func (s *ShardSet) ShardVerdicts() []Verdict {
	out := make([]Verdict, len(s.checkers))
	for i, c := range s.checkers {
		out[i] = c.Verdict()
	}
	return out
}

// Err returns the first violation across shards (lowest shard index wins),
// or nil when every shard is clean.
func (s *ShardSet) Err() error {
	for _, c := range s.checkers {
		if err := c.Err(); err != nil {
			return err
		}
	}
	return nil
}
