package livecheck_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/fault"
	"repro/internal/livecheck"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"

	_ "repro/internal/store/causal"
	_ "repro/internal/store/gsp"
	_ "repro/internal/store/kbuffer"
	_ "repro/internal/store/lww"
	_ "repro/internal/store/statesync"
)

// histories rebuilds per-node cluster histories from a Recorder's streams,
// feeding the same frontier data the live checker saw into the offline
// BuildAudit pipeline — the two sides of the equivalence claim consume
// identical inputs.
func histories(rec *livecheck.Recorder, n int, storeName string) []cluster.History {
	per := rec.PerNode()
	hists := make([]cluster.History, n)
	for i := 0; i < n; i++ {
		h := cluster.History{Node: model.ReplicaID(i), N: n, Store: storeName}
		for _, ev := range per[model.ReplicaID(i)] {
			h.Events = append(h.Events, cluster.Event{
				Kind: ev.Kind, Lamport: ev.Lamport,
				Object: ev.Object, Op: ev.Op, Rval: ev.Rval,
				Dot: ev.Dot, Frontier: ev.Frontier,
				Origin: ev.Origin, Seq: ev.Seq,
			})
		}
		hists[i] = h
	}
	return hists
}

// TestStreamingMatchesPostRunAudit is the tentpole's equivalence property:
// for every registered store, on seeded chaos schedules, the streaming
// checker's clean/violating verdict agrees with the offline pipeline
// (BuildAudit + CheckCausal over the very histories the tap recorded). The
// causal stores must come out clean on both sides; the weaker stores may
// violate — the property is agreement, not cleanliness.
func TestStreamingMatchesPostRunAudit(t *testing.T) {
	objs := []model.ObjectID{"x0", "x1", "x2"}
	const nodes = 3
	for _, name := range store.Names() {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				st, err := store.Open(name, spec.MVRTypes(), store.Options{})
				if err != nil {
					t.Fatal(err)
				}
				ck := livecheck.New(nodes, livecheck.Options{Types: spec.MVRTypes()})
				rec := livecheck.NewRecorder()
				c := sim.NewCluster(st, nodes, seed)
				c.SetTap(livecheck.Tee(ck.Observe, rec.Observe))
				sched := fault.Generate(fault.Config{
					Seed: seed, N: nodes, Steps: 300,
					Partitions: 1, Crashes: 1, LinkFaults: 2,
				})
				c.RunScheduled(sched, sim.WorkloadConfig{
					Objects: objs, Steps: 300,
					MutateRatio: 0.4, SendProb: 0.9, DeliverProb: 0.95,
				})
				c.Quiesce()

				v := ck.Verdict()
				audited, err := cluster.BuildAudit(histories(rec, nodes, name))
				if err != nil {
					t.Fatal(err)
				}
				if err := audited.Exec.CheckWellFormed(); err != nil {
					t.Fatalf("recorded streams merged into a malformed execution: %v", err)
				}
				reference := consistency.CheckCausal(audited.Abstract, spec.MVRTypes())
				if (v.Violations > 0) != (reference != nil) {
					t.Fatalf("streaming verdict disagrees with post-run audit:\nlive: %+v\nfirst: %v\npost-run: %v",
						v, v.First, reference)
				}
			})
		}
	}
}

// TestBoundedStateSublinear pins the o(history) claim: with a stationary
// undelivered window (no faults, delivery keeping pace with minting), the
// checker's peak tracked state must not scale with the run length — 4x the
// steps may not even double the peak, and the peak must sit far below the
// event count.
func TestBoundedStateSublinear(t *testing.T) {
	objs := []model.ObjectID{"x0", "x1", "x2"}
	const nodes = 3
	run := func(steps int) livecheck.Verdict {
		st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ck := livecheck.New(nodes, livecheck.Options{Types: spec.MVRTypes()})
		c := sim.NewCluster(st, nodes, 7)
		c.SetTap(ck.Observe)
		c.RunScheduled(fault.Schedule{}, sim.WorkloadConfig{
			Objects: objs, Steps: steps,
			MutateRatio: 0.4, SendProb: 0.9, DeliverProb: 0.95,
		})
		c.Quiesce()
		return ck.Verdict()
	}
	small := run(4000)
	large := run(16000)
	if small.Violations != 0 || large.Violations != 0 {
		t.Fatalf("causal store flagged on a fault-free run: %+v / %+v", small, large)
	}
	if large.PeakTracked >= 2*small.PeakTracked {
		t.Fatalf("peak tracked state scales with history: %d at 4k steps, %d at 16k",
			small.PeakTracked, large.PeakTracked)
	}
	if int64(large.PeakTracked)*10 >= large.Events {
		t.Fatalf("peak tracked state (%d) is not small against history length (%d events)",
			large.PeakTracked, large.Events)
	}
}
