package livecheck_test

import (
	"testing"

	"repro/internal/livecheck"
	"repro/internal/model"
)

// TestShardSetComposesVerdicts: per-shard traffic lands on per-shard
// checkers, counters sum, and the composite is clean only when every shard
// is. A clean exchange on shard 0 and a read-your-writes failure on shard 2
// must yield a dirty composite whose violation is attributed to shard 2
// alone.
func TestShardSetComposesVerdicts(t *testing.T) {
	s := livecheck.NewShardSet(2, 3, livecheck.Options{})
	if s.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", s.Shards())
	}

	// Shard 0: a clean write/replicate/read exchange.
	s.Observe(0, writeEv(0, "a", "v", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0}))
	s.Observe(0, sendEv(0, 1))
	s.Observe(0, recvEv(1, 0, 1))
	s.Observe(0, readEv(1, "a", model.ReadResponse([]model.Value{"v"}), []uint64{1, 0}))
	// Shard 1: untouched.
	// Shard 2: a write whose frontier omits the writer's own dot.
	s.Observe(2, writeEv(0, "c", "v", model.Dot{Origin: 0, Seq: 1}, []uint64{0, 0}))

	v := s.Verdict()
	if v.Clean {
		t.Fatal("composite verdict clean despite shard 2's violation")
	}
	if v.Events != 5 || v.Dos != 3 || v.Sends != 1 || v.Receives != 1 {
		t.Fatalf("summed counters wrong: %+v", v)
	}
	if v.Violations != 1 || v.First[0].Kind != livecheck.ReadYourWrites {
		t.Fatalf("composite violations = %d %v, want one read-your-writes", v.Violations, v.First)
	}

	per := s.ShardVerdicts()
	if len(per) != 3 {
		t.Fatalf("ShardVerdicts returned %d entries", len(per))
	}
	if !per[0].Clean || per[0].Events != 4 {
		t.Fatalf("shard 0 verdict = %+v, want clean with 4 events", per[0])
	}
	if !per[1].Clean || per[1].Events != 0 {
		t.Fatalf("shard 1 verdict = %+v, want clean and empty", per[1])
	}
	if per[2].Clean || per[2].Violations != 1 {
		t.Fatalf("shard 2 verdict = %+v, want the one violation", per[2])
	}

	if err := s.Err(); err == nil {
		t.Fatal("Err() = nil on a dirty set")
	}
	if err := s.Shard(0).Err(); err != nil {
		t.Fatalf("shard 0 Err() = %v, want nil", err)
	}
}

// TestShardSetErrLowestShardFirst: with violations on several shards, Err
// reports the lowest shard's — deterministic attribution for operators.
func TestShardSetErrLowestShardFirst(t *testing.T) {
	s := livecheck.NewShardSet(1, 3, livecheck.Options{})
	// Shard 2 goes dirty first in observation order, then shard 1.
	s.Observe(2, writeEv(0, "c", "v", model.Dot{Origin: 0, Seq: 1}, []uint64{0}))
	s.Observe(1, writeEv(0, "b", "v", model.Dot{Origin: 0, Seq: 1}, []uint64{0}))
	err := s.Err()
	if err == nil {
		t.Fatal("Err() = nil with two dirty shards")
	}
	if want := s.Shard(1).Err(); err.Error() != want.Error() {
		t.Fatalf("Err() = %v, want shard 1's %v", err, want)
	}
}

// TestShardSetDropsOutOfRange: events for unknown shards are dropped, not
// mis-attributed or panicking — and a shard count below 1 clamps to 1 so a
// single-shard tap still works.
func TestShardSetDropsOutOfRange(t *testing.T) {
	s := livecheck.NewShardSet(1, 2, livecheck.Options{})
	s.Observe(-1, sendEv(0, 1))
	s.Observe(2, sendEv(0, 1))
	if v := s.Verdict(); v.Events != 0 || !v.Clean {
		t.Fatalf("out-of-range events were counted: %+v", v)
	}

	one := livecheck.NewShardSet(1, 0, livecheck.Options{})
	if one.Shards() != 1 {
		t.Fatalf("shards=0 clamps to %d, want 1", one.Shards())
	}
	one.Observe(0, writeEv(0, "x", "v", model.Dot{Origin: 0, Seq: 1}, []uint64{1}))
	if v := one.Verdict(); v.Dos != 1 || !v.Clean {
		t.Fatalf("clamped set verdict = %+v", v)
	}
}
