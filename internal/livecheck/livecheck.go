// Package livecheck is an incremental causal/session-guarantee checker: it
// consumes the do/send/receive event stream of a running cluster — simulated
// (internal/sim) or TCP (internal/cluster), both engines tap the same Event —
// and flags a violation the moment a read's rval or frontier contradicts
// happens-before, instead of waiting for quiescence and an O(|do|²) post-run
// BuildAudit.
//
// The checker's state is bounded by the active window, not the history: it
// keeps per-node delivered frontiers, the dependency records of dots not yet
// covered by every node (retired as soon as the minimum frontier passes
// them), the out-of-order observations awaiting their mint record, and the
// per-node maximal visible write sets (bounded by write concurrency). That
// is the per-object tractability of "On Verifying Causal Consistency"
// (Bouajjani, Enea, Guerraoui, Hamza) applied to our prefix-closed
// per-origin frontiers: because every registered store's visibility is a
// per-origin prefix, happens-before coverage reduces to coordinate-wise
// frontier comparisons and never needs the full vis graph.
//
// The streamed checks correspond to the post-run verdict as follows:
//
//   - frontier monotonicity per node ⇔ the session-order closure that
//     abstract.Validate demands of the derived execution (monotonic reads);
//   - own-dot coverage at every do event ⇔ read-your-writes (a session
//     edge from an own write the frontier does not cover is exactly the
//     Validate closure failure for that pair);
//   - causal dependency coverage — when a node's frontier first covers dot
//     (o,k), the frontier recorded at (o,k)'s mint must already be covered
//     too ⇔ the write-write transitivity violations TransitiveViolation
//     finds (read-middle triangles are auto-transitive under containment
//     edges, see DESIGN.md §5.12);
//   - the MVR rval check — a read must return exactly the values of the
//     maximal visible writes ⇔ spec.CheckCorrect under MVR typing, since
//     both evaluate the same frontier-derived visibility.
package livecheck

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/spec"
)

// Event is one tapped do/send/receive event, stamped with the node that
// recorded it. It is cluster.Event minus the payload (the checker never
// inspects store state) plus the recording node; Lamport is carried so a
// recorded stream can be converted back into per-node histories for the
// post-run equivalence check. The Frontier slice must not be mutated after
// the call — both engines pass the same immutable copy their histories keep.
type Event struct {
	Node    model.ReplicaID
	Kind    model.Action
	Lamport uint64

	// Do events.
	Object model.ObjectID
	Op     model.Operation
	Rval   model.Response
	Dot    model.Dot
	// Frontier is the per-origin visible-update prefix right after the do
	// event; nil when the store does not report visibility (such events are
	// counted but not frontier-checked).
	Frontier []uint64

	// Send and receive events (broadcast identity, in send-seq units —
	// distinct from store-dot units, which count mutators).
	Origin model.ReplicaID
	Seq    uint64
}

// ViolationKind names the invariant a violation broke.
type ViolationKind string

// Violation kinds.
const (
	// FrontierRegression: a node's reported frontier moved backwards — a
	// later read saw less than an earlier one (monotonic-reads failure).
	FrontierRegression ViolationKind = "frontier-regression"
	// ReadYourWrites: a node's frontier does not cover its own minted dots.
	ReadYourWrites ViolationKind = "read-your-writes"
	// CausalDependency: a node's frontier covers a dot but not the
	// dependencies recorded at that dot's mint (transitivity failure — the
	// classic "reply visible before the message" anomaly).
	CausalDependency ViolationKind = "causal-dependency"
	// RvalMismatch: an MVR read returned something other than the values of
	// the maximal visible writes (Definition 8 correctness failure).
	RvalMismatch ViolationKind = "rval-mismatch"
	// DuplicateDot: an origin minted the same dot twice (corrupted stream).
	DuplicateDot ViolationKind = "duplicate-dot"
	// ForeignDot: a do event minted a dot naming another origin (corrupted
	// stream).
	ForeignDot ViolationKind = "foreign-dot"
)

// Violation is one flagged contradiction, reported at the earliest event
// where the checker could prove it.
type Violation struct {
	Kind  ViolationKind   `json:"kind"`
	Node  model.ReplicaID `json:"node"`
	Event int64           `json:"event"` // 1-based index in the observed stream
	Dot   model.Dot       `json:"dot"`
	// Dep is the uncovered dependency for CausalDependency violations.
	Dep    model.Dot      `json:"dep,omitempty"`
	Object model.ObjectID `json:"object,omitempty"`
	Detail string         `json:"detail"`
}

// Error renders the violation as a one-line diagnosis.
func (v Violation) Error() string {
	return fmt.Sprintf("livecheck: %s at r%d event %d: %s", v.Kind, v.Node, v.Event, v.Detail)
}

// Options configures a Checker.
type Options struct {
	// Observed lists the node streams feeding this checker; nil means all n.
	// A partial view (e.g. a served node checking only its own stream)
	// disables the checks that need every origin's mint records — dots of
	// unobserved origins are tracked as watermarks only, rval checking is
	// off, and state retirement floors over the observed nodes alone.
	Observed []model.ReplicaID
	// Types assigns object types for the rval check; the zero value types
	// every object as MVR, matching the engines' default workloads.
	Types spec.Types
	// MaxViolations caps how many violations are retained in full (the
	// total count is always exact). Default 16.
	MaxViolations int
}

// Verdict is a point-in-time snapshot of the checker: counters, the flagged
// violations, and the bounded-state accounting that BENCH_LIVECHECK tracks.
type Verdict struct {
	Events   int64 `json:"events"`
	Dos      int64 `json:"dos"`
	Sends    int64 `json:"sends"`
	Receives int64 `json:"receives"`

	Violations int         `json:"violations"`
	First      []Violation `json:"first,omitempty"` // up to MaxViolations, in detection order

	// TrackedDots is the current bounded state: live mint records + pending
	// out-of-order observations + maximal-set entries. PeakTracked is its
	// high-water mark — the o(history) claim is Peak ≪ Events on runs whose
	// delivery keeps up.
	TrackedDots int `json:"tracked_dots"`
	PeakTracked int `json:"peak_tracked"`
	PendingDots int `json:"pending_dots"`
	// UndeliveredDots sums, over observed receivers, the broadcasts sent but
	// not yet received — the delivery lag the tracked state is bounded by.
	UndeliveredDots int64 `json:"undelivered_dots"`
	// RvalSkipped counts reads the rval check could not rule on (partial
	// view, unresolved out-of-order coverage, or a pre-attach gap).
	RvalSkipped int64 `json:"rval_skipped,omitempty"`
	Clean       bool  `json:"clean"`
}

// mintRec is the dependency record of one minted dot: the minting event's
// reported frontier (its causal past) and, for writes, what it wrote.
type mintRec struct {
	dep []uint64
	obj model.ObjectID
	op  model.Operation
	ok  bool // false for gap placeholders (dot never streamed)
}

// mintQueue holds an origin's live mint records contiguously: recs[i]
// describes dot (origin, base+1+i). Records below base are retired (covered
// by every floored node) or pre-attach.
type mintQueue struct {
	base uint64
	recs []mintRec
}

// obsRef is a coverage observation waiting for its mint record: node's
// reported frontier first covered the dot at stream index event, before the
// minting event itself was observed (cross-stream skew).
type obsRef struct {
	node     model.ReplicaID
	frontier []uint64
	event    int64
}

// maxEntry is one maximal visible write at a node: not dominated by any
// other visible write of the same object. dep is the write's mint frontier,
// used for the pairwise domination test; entries are bounded by write
// concurrency, independent of history length.
type maxEntry struct {
	dot   model.Dot
	value model.Value
	dep   []uint64
}

// Checker incrementally verifies a tapped event stream. Observe is safe for
// concurrent use (both engines call it from per-node loops); Verdict may be
// read at any time, including mid-run — that is the point.
type Checker struct {
	mu       sync.Mutex
	n        int
	types    spec.Types
	observed []bool
	full     bool
	maxViol  int

	events, dos, sends, receives int64

	frontier [][]uint64 // last adopted frontier per node (nil until reported)
	covered  [][]uint64 // per node, per origin: highest dot seq coverage-processed
	minted   []uint64   // per origin: highest dot seq minted (or skipped) in its stream
	pre      []uint64   // per origin: dots 1..pre[o] predate the tap attach, unchecked
	mints    []mintQueue
	pending  map[model.Dot][]obsRef
	pendingN int
	// nodePending counts a node's coverage observations still awaiting mint
	// records; its reads cannot be rval-checked until they resolve.
	nodePending []int
	maximal     []map[model.ObjectID][]maxEntry
	maximalN    int
	rvalOff     bool
	rvalSkipped int64

	sendHigh []uint64   // per origin: highest broadcast seq sent
	recvHigh [][]uint64 // per node, per origin: highest broadcast seq received

	peakTracked int
	violations  int
	kept        []Violation
}

// New creates a checker for a cluster of n nodes.
func New(n int, opts Options) *Checker {
	c := &Checker{
		n:           n,
		types:       opts.Types,
		observed:    make([]bool, n),
		maxViol:     opts.MaxViolations,
		frontier:    make([][]uint64, n),
		covered:     make([][]uint64, n),
		minted:      make([]uint64, n),
		pre:         make([]uint64, n),
		mints:       make([]mintQueue, n),
		pending:     make(map[model.Dot][]obsRef),
		nodePending: make([]int, n),
		maximal:     make([]map[model.ObjectID][]maxEntry, n),
		sendHigh:    make([]uint64, n),
		recvHigh:    make([][]uint64, n),
	}
	if c.maxViol <= 0 {
		c.maxViol = 16
	}
	if opts.Observed == nil {
		for i := range c.observed {
			c.observed[i] = true
		}
	} else {
		for _, r := range opts.Observed {
			if 0 <= int(r) && int(r) < n {
				c.observed[r] = true
			}
		}
	}
	c.full = true
	for _, ok := range c.observed {
		c.full = c.full && ok
	}
	for i := 0; i < n; i++ {
		c.covered[i] = make([]uint64, n)
		c.recvHigh[i] = make([]uint64, n)
		c.maximal[i] = make(map[model.ObjectID][]maxEntry)
	}
	return c
}

// Observe feeds one tapped event through the checker.
func (c *Checker) Observe(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events++
	if int(ev.Node) < 0 || int(ev.Node) >= c.n {
		return
	}
	switch ev.Kind {
	case model.ActDo:
		c.dos++
		c.observeDo(ev, c.events)
		c.retire()
	case model.ActSend:
		c.sends++
		if int(ev.Origin) >= 0 && int(ev.Origin) < c.n && ev.Seq > c.sendHigh[ev.Origin] {
			c.sendHigh[ev.Origin] = ev.Seq
		}
	case model.ActReceive:
		c.receives++
		if int(ev.Origin) >= 0 && int(ev.Origin) < c.n && ev.Seq > c.recvHigh[ev.Node][ev.Origin] {
			c.recvHigh[ev.Node][ev.Origin] = ev.Seq
		}
	}
	if t := c.tracked(); t > c.peakTracked {
		c.peakTracked = t
	}
}

// Verdict snapshots the checker. Safe at any time, including mid-run.
func (c *Checker) Verdict() Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := Verdict{
		Events: c.events, Dos: c.dos, Sends: c.sends, Receives: c.receives,
		Violations:  c.violations,
		First:       append([]Violation(nil), c.kept...),
		TrackedDots: c.tracked(),
		PeakTracked: c.peakTracked,
		PendingDots: c.pendingN,
		RvalSkipped: c.rvalSkipped,
		Clean:       c.violations == 0,
	}
	for o := 0; o < c.n; o++ {
		for m := 0; m < c.n; m++ {
			if m == o || !c.observed[m] {
				continue
			}
			if c.sendHigh[o] > c.recvHigh[m][o] {
				v.UndeliveredDots += int64(c.sendHigh[o] - c.recvHigh[m][o])
			}
		}
	}
	return v
}

// Err returns the first flagged violation as an error, or nil when clean —
// the streaming counterpart of consistency.CheckCausal's verdict.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.kept) == 0 {
		return nil
	}
	v := c.kept[0]
	return v
}

func (c *Checker) flag(v Violation) {
	c.violations++
	if len(c.kept) < c.maxViol {
		c.kept = append(c.kept, v)
	}
}

// tracked is the current bounded-state size in entries.
func (c *Checker) tracked() int {
	t := c.pendingN + c.maximalN
	for o := range c.mints {
		t += len(c.mints[o].recs)
	}
	return t
}

func (c *Checker) observeDo(ev Event, idx int64) {
	node := int(ev.Node)
	if ev.Op.Kind.IsMutator() && ev.Dot.Seq != 0 {
		c.observeMint(ev, idx)
	}
	f := ev.Frontier
	if f == nil {
		// No visibility report: the store cannot be frontier-checked; rval
		// checking would be guessing.
		c.rvalOff = true
		return
	}
	// Frontier monotonicity (monotonic reads / session closure).
	regressed := false
	if old := c.frontier[node]; old != nil {
		for o := 0; o < c.n && o < len(f) && o < len(old); o++ {
			if f[o] < old[o] {
				regressed = true
				c.flag(Violation{
					Kind: FrontierRegression, Node: ev.Node, Event: idx,
					Dot: model.Dot{Origin: model.ReplicaID(o), Seq: old[o]},
					Detail: fmt.Sprintf("frontier[r%d] fell from %d to %d — an earlier event at r%d had seen more",
						o, old[o], f[o], node),
				})
			}
		}
	}
	c.adoptFrontier(node, f)
	// Read-your-writes: the node's own minted dots must stay visible to it.
	if c.observed[node] && int(ev.Node) < len(f) && f[ev.Node] < c.minted[node] {
		c.flag(Violation{
			Kind: ReadYourWrites, Node: ev.Node, Event: idx,
			Dot: model.Dot{Origin: ev.Node, Seq: c.minted[node]},
			Detail: fmt.Sprintf("r%d's frontier covers only %d of its own %d writes",
				node, f[ev.Node], c.minted[node]),
		})
	}
	// Coverage: process each dot the frontier newly covers, per origin.
	for o := 0; o < c.n && o < len(f); o++ {
		for k := c.covered[node][o] + 1; k <= f[o]; k++ {
			c.cover(model.ReplicaID(o), k, ev.Node, f, idx)
		}
		if f[o] > c.covered[node][o] {
			c.covered[node][o] = f[o]
		}
	}
	// MVR rval check: the read must return exactly the values of the
	// maximal visible writes. A regressed frontier is already contradictory
	// (and flagged above) — judging the rval against the adopted max would
	// pile a second charge on the same root cause, so abstain.
	if ev.Op.Kind == model.OpRead {
		if regressed {
			c.rvalSkipped++
		} else {
			c.checkRval(ev, idx)
		}
	}
}

// adoptFrontier stores the element-wise max of the node's reported
// frontiers, so one regression (already flagged) cannot cascade into
// spurious downstream findings.
func (c *Checker) adoptFrontier(node int, f []uint64) {
	cur := c.frontier[node]
	if cur == nil {
		cur = make([]uint64, c.n)
		c.frontier[node] = cur
	}
	for o := 0; o < c.n && o < len(f); o++ {
		if f[o] > cur[o] {
			cur[o] = f[o]
		}
	}
}

// observeMint registers a dot's dependency record and resolves any
// observations that covered the dot before its mint was observed.
func (c *Checker) observeMint(ev Event, idx int64) {
	if ev.Dot.Origin != ev.Node {
		c.flag(Violation{
			Kind: ForeignDot, Node: ev.Node, Event: idx, Dot: ev.Dot,
			Detail: fmt.Sprintf("r%d minted dot %s naming another origin", ev.Node, ev.Dot),
		})
		return
	}
	o := int(ev.Node)
	q := &c.mints[o]
	switch {
	case ev.Dot.Seq <= c.minted[o]:
		c.flag(Violation{
			Kind: DuplicateDot, Node: ev.Node, Event: idx, Dot: ev.Dot,
			Detail: fmt.Sprintf("dot %s minted again (stream already at %d)", ev.Dot, c.minted[o]),
		})
		return
	case ev.Dot.Seq > c.minted[o]+1:
		// A gap: dots minted before the tap attached (a restored store whose
		// first observed write continues an on-disk dot sequence). With no
		// live records yet, slide past the gap and leave those dots
		// unchecked; mid-stream the gap dots get explicit unchecked
		// placeholders so the queue stays contiguous.
		if len(q.recs) == 0 {
			q.base = ev.Dot.Seq - 1
			c.pre[o] = ev.Dot.Seq - 1
		} else {
			for k := c.minted[o] + 1; k < ev.Dot.Seq; k++ {
				q.recs = append(q.recs, mintRec{})
			}
		}
		c.rvalOff = true
		// Observations parked on pre-attach dots can never resolve; drop them.
		for k := c.minted[o] + 1; k < ev.Dot.Seq; k++ {
			d := model.Dot{Origin: ev.Dot.Origin, Seq: k}
			if refs, ok := c.pending[d]; ok {
				c.pendingN -= len(refs)
				for _, ref := range refs {
					c.nodePending[ref.node]--
				}
				delete(c.pending, d)
			}
		}
	}
	rec := mintRec{obj: ev.Object, op: ev.Op, ok: true}
	if ev.Frontier != nil {
		rec.dep = append([]uint64(nil), ev.Frontier...)
	}
	q.recs = append(q.recs, rec)
	c.minted[o] = ev.Dot.Seq
	if refs, ok := c.pending[ev.Dot]; ok {
		for _, ref := range refs {
			c.checkDep(ev.Dot, rec, ref.node, ref.frontier, ref.event)
			c.addMaximal(int(ref.node), ev.Dot, rec)
			c.nodePending[ref.node]--
		}
		c.pendingN -= len(refs)
		delete(c.pending, ev.Dot)
	}
}

// cover processes node's first coverage of dot (o,k) under reported
// frontier f: dependency check plus maximal-set maintenance, deferred to
// the pending queue when the mint record has not been observed yet.
func (c *Checker) cover(o model.ReplicaID, k uint64, node model.ReplicaID, f []uint64, idx int64) {
	if !c.observed[o] {
		return // watermark only: an unobserved origin never streams a mint
	}
	if k <= c.pre[o] {
		c.rvalOff = true
		return
	}
	q := &c.mints[o]
	if k <= q.base {
		// Already retired: possible only when an event arrives from a node
		// outside the configured floor set (not normally tapped); there is
		// nothing left to re-check against.
		c.rvalOff = true
		return
	}
	if k <= c.minted[o] {
		rec := q.recs[k-q.base-1]
		if !rec.ok {
			c.rvalOff = true
			return
		}
		c.checkDep(model.Dot{Origin: o, Seq: k}, rec, node, f, idx)
		c.addMaximal(int(node), model.Dot{Origin: o, Seq: k}, rec)
		return
	}
	d := model.Dot{Origin: o, Seq: k}
	c.pending[d] = append(c.pending[d], obsRef{node: node, frontier: f, event: idx})
	c.pendingN++
	c.nodePending[node]++
}

// checkDep verifies transitivity at the moment of coverage: everything the
// minting event had seen must be inside the covering frontier too.
func (c *Checker) checkDep(d model.Dot, rec mintRec, node model.ReplicaID, f []uint64, idx int64) {
	for p := 0; p < len(rec.dep) && p < c.n; p++ {
		fp := uint64(0)
		if p < len(f) {
			fp = f[p]
		}
		if rec.dep[p] > fp {
			c.flag(Violation{
				Kind: CausalDependency, Node: node, Event: idx, Dot: d,
				Dep:    model.Dot{Origin: model.ReplicaID(p), Seq: rec.dep[p]},
				Object: rec.obj,
				Detail: fmt.Sprintf("r%d sees %s but not its dependency (r%d,%d) — causal order inverted",
					node, d, p, rec.dep[p]),
			})
			return
		}
	}
}

// addMaximal folds a newly visible write into node's maximal set for its
// object: dropped if an existing visible write dominates it, and dominating
// entries it covers are removed. Insertion order across origins does not
// matter — both domination directions are tested — so deferred (pending)
// resolutions land in the same set.
func (c *Checker) addMaximal(node int, d model.Dot, rec mintRec) {
	if rec.op.Kind != model.OpWrite {
		if rec.op.Kind.IsMutator() && c.types.Of(rec.obj) == spec.TypeMVR {
			c.rvalOff = true // an MVR object mutated by a non-write: not checkable
		}
		return
	}
	if c.types.Of(rec.obj) != spec.TypeMVR {
		return
	}
	covers := func(dep []uint64, d model.Dot) bool {
		return int(d.Origin) < len(dep) && dep[d.Origin] >= d.Seq
	}
	entries := c.maximal[node][rec.obj]
	kept := entries[:0]
	dominated := false
	for _, e := range entries {
		if covers(e.dep, d) {
			dominated = true
		}
		if covers(rec.dep, e.dot) {
			c.maximalN--
			continue // the new write causally follows e: e is no longer maximal
		}
		kept = append(kept, e)
	}
	if !dominated {
		kept = append(kept, maxEntry{dot: d, value: rec.op.Arg, dep: rec.dep})
		c.maximalN++
	}
	c.maximal[node][rec.obj] = kept
}

// checkRval rules on an MVR read against the node's maximal visible writes.
// It abstains (counting RvalSkipped) whenever the expected set is not fully
// known: partial view, a pre-attach gap, no frontier, an unsupported object
// type, or coverage still parked in the pending queue.
func (c *Checker) checkRval(ev Event, idx int64) {
	if c.types.Of(ev.Object) != spec.TypeMVR {
		return
	}
	node := int(ev.Node)
	if !c.full || c.rvalOff || c.nodePending[node] > 0 || ev.Frontier == nil {
		c.rvalSkipped++
		return
	}
	entries := c.maximal[node][ev.Object]
	values := make([]model.Value, 0, len(entries))
	for _, e := range entries {
		values = append(values, e.value)
	}
	want := model.ReadResponse(values)
	if !ev.Rval.Equal(want) {
		c.flag(Violation{
			Kind: RvalMismatch, Node: ev.Node, Event: idx, Object: ev.Object,
			Detail: fmt.Sprintf("read of %s returned %s, maximal visible writes say %s",
				ev.Object, ev.Rval, want),
		})
	}
}

// retire drops mint records every floored node has covered: once the
// minimum observed frontier passes a dot, no first-coverage of it can ever
// happen again, so its dependency record is dead weight. This is what keeps
// tracked state at o(history) — records live only as long as the slowest
// node's delivery lag.
func (c *Checker) retire() {
	for o := 0; o < c.n; o++ {
		floor := ^uint64(0)
		for m := 0; m < c.n; m++ {
			if !c.observed[m] {
				continue
			}
			if c.covered[m][o] < floor {
				floor = c.covered[m][o]
			}
		}
		q := &c.mints[o]
		for len(q.recs) > 0 && q.base < floor {
			q.recs[0] = mintRec{} // release the dep slice before sliding
			q.recs = q.recs[1:]
			q.base++
		}
	}
}

// Tee fans one tap out to several consumers (e.g. a live checker plus a
// Recorder feeding the post-run equivalence audit).
func Tee(fns ...func(Event)) func(Event) {
	return func(ev Event) {
		for _, fn := range fns {
			if fn != nil {
				fn(ev)
			}
		}
	}
}

// Recorder accumulates tapped events per node, preserving arrival order —
// enough to rebuild per-node histories and replay the post-run audit the
// streaming verdict is checked against.
type Recorder struct {
	mu     sync.Mutex
	events map[model.ReplicaID][]Event
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{events: make(map[model.ReplicaID][]Event)}
}

// Observe appends one event to its node's stream.
func (r *Recorder) Observe(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events[ev.Node] = append(r.events[ev.Node], ev)
}

// PerNode returns each node's recorded stream (shared slices; callers must
// not mutate).
func (r *Recorder) PerNode() map[model.ReplicaID][]Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[model.ReplicaID][]Event, len(r.events))
	for k, v := range r.events {
		out[k] = v
	}
	return out
}
