package livecheck_test

import (
	"testing"

	"repro/internal/livecheck"
	"repro/internal/model"
)

// doEv builds a tapped do event. A nil frontier models a store without
// visibility reporting.
func doEv(node int, obj model.ObjectID, op model.Operation, rval model.Response, dot model.Dot, frontier []uint64) livecheck.Event {
	return livecheck.Event{
		Node: model.ReplicaID(node), Kind: model.ActDo,
		Object: obj, Op: op, Rval: rval, Dot: dot, Frontier: frontier,
	}
}

func writeEv(node int, obj model.ObjectID, v model.Value, dot model.Dot, frontier []uint64) livecheck.Event {
	return doEv(node, obj, model.Write(v), model.OKResponse(), dot, frontier)
}

func readEv(node int, obj model.ObjectID, rval model.Response, frontier []uint64) livecheck.Event {
	return doEv(node, obj, model.Read(), rval, model.Dot{}, frontier)
}

func sendEv(node int, seq uint64) livecheck.Event {
	return livecheck.Event{Node: model.ReplicaID(node), Kind: model.ActSend, Origin: model.ReplicaID(node), Seq: seq}
}

func recvEv(node, from int, seq uint64) livecheck.Event {
	return livecheck.Event{Node: model.ReplicaID(node), Kind: model.ActReceive, Origin: model.ReplicaID(from), Seq: seq}
}

func feed(c *livecheck.Checker, evs ...livecheck.Event) {
	for _, ev := range evs {
		c.Observe(ev)
	}
}

func wantKinds(t *testing.T, v livecheck.Verdict, kinds ...livecheck.ViolationKind) {
	t.Helper()
	if v.Violations != len(kinds) {
		t.Fatalf("got %d violations (%v), want %d", v.Violations, v.First, len(kinds))
	}
	for i, k := range kinds {
		if v.First[i].Kind != k {
			t.Fatalf("violation %d is %s, want %s (%v)", i, v.First[i].Kind, k, v.First)
		}
	}
}

func TestCleanExchange(t *testing.T) {
	c := livecheck.New(2, livecheck.Options{})
	feed(c,
		writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0}),
		sendEv(0, 1),
		recvEv(1, 0, 1),
		readEv(1, "x", model.ReadResponse([]model.Value{"a"}), []uint64{1, 0}),
	)
	v := c.Verdict()
	wantKinds(t, v)
	if !v.Clean || v.Dos != 2 || v.Sends != 1 || v.Receives != 1 {
		t.Fatalf("bad counters: %+v", v)
	}
	if v.UndeliveredDots != 0 {
		t.Fatalf("undelivered = %d after full delivery", v.UndeliveredDots)
	}
	if v.RvalSkipped != 0 {
		t.Fatalf("rval check abstained on a fully observed run: %+v", v)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v on a clean run", err)
	}
}

func TestFrontierRegression(t *testing.T) {
	c := livecheck.New(2, livecheck.Options{})
	feed(c,
		writeEv(1, "x", "a", model.Dot{Origin: 1, Seq: 1}, []uint64{0, 1}),
		readEv(0, "x", model.ReadResponse([]model.Value{"a"}), []uint64{0, 1}),
		readEv(0, "x", model.ReadResponse(nil), []uint64{0, 0}), // saw less than before
	)
	wantKinds(t, c.Verdict(), livecheck.FrontierRegression)
}

func TestReadYourWrites(t *testing.T) {
	c := livecheck.New(2, livecheck.Options{})
	feed(c, writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{0, 0}))
	wantKinds(t, c.Verdict(), livecheck.ReadYourWrites)
}

func TestCausalDependency(t *testing.T) {
	c := livecheck.New(3, livecheck.Options{})
	feed(c,
		writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0, 0}),
		readEv(1, "x", model.ReadResponse([]model.Value{"a"}), []uint64{1, 0, 0}),
		writeEv(1, "x", "b", model.Dot{Origin: 1, Seq: 1}, []uint64{1, 1, 0}),
		// r2 sees b but not the a that b causally depends on.
		readEv(2, "x", model.ReadResponse([]model.Value{"b"}), []uint64{0, 1, 0}),
	)
	v := c.Verdict()
	if v.Violations == 0 || v.First[0].Kind != livecheck.CausalDependency {
		t.Fatalf("want a causal-dependency violation, got %+v", v)
	}
	f := v.First[0]
	if f.Dot != (model.Dot{Origin: 1, Seq: 1}) || f.Dep != (model.Dot{Origin: 0, Seq: 1}) {
		t.Fatalf("violation blames %s missing %s, want (r1,1) missing (r0,1)", f.Dot, f.Dep)
	}
}

func TestCausalDependencyPendingMint(t *testing.T) {
	// Cross-stream skew: the covering read is observed before the minting
	// write's own stream delivers the mint record. The violation must still
	// surface — at resolution time, against the frontier the read reported.
	c := livecheck.New(3, livecheck.Options{})
	feed(c,
		writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0, 0}),
		readEv(2, "x", model.ReadResponse([]model.Value{"b"}), []uint64{0, 1, 0}),
	)
	if v := c.Verdict(); v.Violations != 0 || v.PendingDots != 1 {
		t.Fatalf("premature verdict before the mint record arrived: %+v", v)
	}
	feed(c, writeEv(1, "x", "b", model.Dot{Origin: 1, Seq: 1}, []uint64{1, 1, 0}))
	v := c.Verdict()
	if v.Violations != 1 || v.First[0].Kind != livecheck.CausalDependency {
		t.Fatalf("want the deferred causal-dependency violation, got %+v", v)
	}
	if v.First[0].Event != 2 {
		t.Fatalf("violation anchored at event %d, want the covering read (2)", v.First[0].Event)
	}
	if v.PendingDots != 0 {
		t.Fatalf("pending observation not resolved: %+v", v)
	}
}

func TestRvalMismatch(t *testing.T) {
	c := livecheck.New(2, livecheck.Options{})
	feed(c,
		writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0}),
		writeEv(1, "x", "b", model.Dot{Origin: 1, Seq: 1}, []uint64{0, 1}),
		// Both writes visible and concurrent: an MVR read owes {a,b}.
		readEv(0, "x", model.ReadResponse([]model.Value{"a"}), []uint64{1, 1}),
	)
	wantKinds(t, c.Verdict(), livecheck.RvalMismatch)

	c = livecheck.New(2, livecheck.Options{})
	feed(c,
		writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0}),
		writeEv(1, "x", "b", model.Dot{Origin: 1, Seq: 1}, []uint64{0, 1}),
		readEv(0, "x", model.ReadResponse([]model.Value{"a", "b"}), []uint64{1, 1}),
	)
	wantKinds(t, c.Verdict())
}

func TestRvalDominationOrderIndependent(t *testing.T) {
	// b overwrites a (a is in b's causal past). Whatever order coverage
	// lands in, the maximal set must converge to {b}.
	evs := []livecheck.Event{
		writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0}),
		readEv(1, "x", model.ReadResponse([]model.Value{"a"}), []uint64{1, 0}),
		writeEv(1, "x", "b", model.Dot{Origin: 1, Seq: 1}, []uint64{1, 1}),
	}
	c := livecheck.New(2, livecheck.Options{})
	feed(c, evs...)
	feed(c, readEv(0, "x", model.ReadResponse([]model.Value{"b"}), []uint64{1, 1}))
	wantKinds(t, c.Verdict())
}

func TestPreStreamAttach(t *testing.T) {
	// A checker attached mid-life (restored store): the first observed mint
	// continues an on-disk dot sequence. Dots below it are unchecked — no
	// spurious violations — and the rval check abstains rather than guesses.
	c := livecheck.New(2, livecheck.Options{})
	feed(c,
		writeEv(0, "x", "e", model.Dot{Origin: 0, Seq: 5}, []uint64{5, 0}),
		readEv(0, "x", model.ReadResponse([]model.Value{"e"}), []uint64{5, 0}),
	)
	v := c.Verdict()
	wantKinds(t, v)
	if v.RvalSkipped == 0 {
		t.Fatalf("rval check should abstain after a pre-attach gap: %+v", v)
	}
}

func TestDuplicateDot(t *testing.T) {
	c := livecheck.New(2, livecheck.Options{})
	feed(c,
		writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0}),
		writeEv(0, "x", "b", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0}),
	)
	v := c.Verdict()
	if v.Violations == 0 || v.First[0].Kind != livecheck.DuplicateDot {
		t.Fatalf("want duplicate-dot, got %+v", v)
	}
}

func TestForeignDot(t *testing.T) {
	c := livecheck.New(2, livecheck.Options{})
	feed(c, writeEv(0, "x", "a", model.Dot{Origin: 1, Seq: 1}, []uint64{0, 0}))
	wantKinds(t, c.Verdict(), livecheck.ForeignDot)
}

func TestRetirement(t *testing.T) {
	c := livecheck.New(2, livecheck.Options{})
	feed(c, writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0}))
	before := c.Verdict()
	feed(c, readEv(1, "x", model.ReadResponse([]model.Value{"a"}), []uint64{1, 0}))
	v := c.Verdict()
	wantKinds(t, v)
	// Every node covers (r0,1) now: its mint record is retired, leaving
	// only the two per-node maximal entries for x.
	if v.TrackedDots != 2 {
		t.Fatalf("tracked = %d after full coverage (was %d), want 2 maximal entries",
			v.TrackedDots, before.TrackedDots)
	}
	if v.PendingDots != 0 {
		t.Fatalf("pending = %d, want 0", v.PendingDots)
	}
}

func TestPartialView(t *testing.T) {
	// A served node checking only its own stream: dots of unobserved
	// origins are watermarks, not trackable state, and never block
	// retirement; rval checking abstains.
	c := livecheck.New(3, livecheck.Options{Observed: []model.ReplicaID{1}})
	feed(c,
		writeEv(1, "x", "b", model.Dot{Origin: 1, Seq: 1}, []uint64{0, 1, 0}),
		readEv(1, "x", model.ReadResponse([]model.Value{"b", "c"}), []uint64{3, 1, 0}),
	)
	v := c.Verdict()
	wantKinds(t, v)
	if v.PendingDots != 0 {
		t.Fatalf("unobserved origins must not park pending state: %+v", v)
	}
	if v.RvalSkipped == 0 {
		t.Fatalf("partial view must abstain from rval verdicts: %+v", v)
	}
	// The mint record for (r1,1) is retired the moment the only observed
	// node covers it; the surviving tracked state is r1's single maximal
	// entry for x.
	if v.TrackedDots != 1 {
		t.Fatalf("tracked = %d, want 1 (mint retired, one maximal entry)", v.TrackedDots)
	}
	// Session guarantees still enforced on the observed stream.
	feed(c, readEv(1, "x", model.ReadResponse(nil), []uint64{0, 0, 0}))
	v = c.Verdict()
	if v.Violations == 0 || v.First[0].Kind != livecheck.FrontierRegression {
		t.Fatalf("regression on own stream must still flag: %+v", v)
	}
}

func TestNilFrontierStore(t *testing.T) {
	// A store without visibility reporting: events are counted, nothing is
	// frontier-checked, and the rval check abstains.
	c := livecheck.New(2, livecheck.Options{})
	feed(c,
		writeEv(0, "x", "a", model.Dot{}, nil),
		readEv(1, "x", model.ReadResponse(nil), nil),
	)
	v := c.Verdict()
	wantKinds(t, v)
	if v.Dos != 2 {
		t.Fatalf("dos = %d, want 2", v.Dos)
	}
}

func TestTee(t *testing.T) {
	c := livecheck.New(2, livecheck.Options{})
	rec := livecheck.NewRecorder()
	tap := livecheck.Tee(c.Observe, rec.Observe)
	tap(writeEv(0, "x", "a", model.Dot{Origin: 0, Seq: 1}, []uint64{1, 0}))
	if got := c.Verdict().Dos; got != 1 {
		t.Fatalf("checker saw %d dos, want 1", got)
	}
	if got := len(rec.PerNode()[0]); got != 1 {
		t.Fatalf("recorder kept %d events for r0, want 1", got)
	}
}

func TestUndeliveredWindow(t *testing.T) {
	c := livecheck.New(3, livecheck.Options{})
	feed(c, sendEv(0, 1), sendEv(0, 2), recvEv(1, 0, 1))
	v := c.Verdict()
	// r1 misses seq 2 (1 dot), r2 misses both (2 dots).
	if v.UndeliveredDots != 3 {
		t.Fatalf("undelivered = %d, want 3", v.UndeliveredDots)
	}
}
