package consistency

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/abstract"
	"repro/internal/model"
	"repro/internal/spec"
)

// The exhaustive complying-visibility search answers: given a concrete
// client history (the do events a store produced, with their responses),
// does ANY correct (and optionally causally consistent) abstract execution
// comply with it? A "no" is a machine-checked proof that the store's
// responses cannot be explained by the specification — the argument behind
// Figure 2: the history produced by a store that totally orders concurrent
// MVR writes admits no causally consistent MVR abstract execution, so
// clients can infer the hidden concurrency.
//
// The search fixes H to the given global order (compliance only constrains
// per-replica projections, and any complying A is equivalent to one whose H
// follows the concrete order of a compliant interleaving) and enumerates,
// event by event, every visibility predecessor set satisfying Definition 4,
// downward-closure (for causal consistency), and specification correctness.

// ErrSearchBudget is returned when the exhaustive search exceeds its node
// budget without resolving.
var ErrSearchBudget = errors.New("consistency: search budget exceeded")

// ErrTooLarge is returned when the history has more events than the bitmask
// search supports.
var ErrTooLarge = errors.New("consistency: history too large for exhaustive search")

// SearchOptions configures the exhaustive search.
type SearchOptions struct {
	// RequireCausal additionally demands transitive visibility.
	RequireCausal bool
	// MaxNodes bounds the number of candidate visibility sets explored
	// (default 5e6).
	MaxNodes int
}

type searcher struct {
	events []model.Event
	types  spec.Types
	opts   SearchOptions
	vis    []uint64 // vis[j] = bitmask of predecessors of event j
	nodes  int
	found  *abstract.Execution
	count  int
	all    bool // count all solutions instead of stopping at the first
}

// FindComplying searches for a correct (and, if requested, causally
// consistent) abstract execution complying with the given do-event history.
// It returns (nil, nil) when provably none exists.
func FindComplying(events []model.Event, types spec.Types, opts SearchOptions) (*abstract.Execution, error) {
	s, err := newSearcher(events, types, opts)
	if err != nil {
		return nil, err
	}
	if err := s.run(0); err != nil {
		return nil, err
	}
	return s.found, nil
}

// CountComplying counts the complying abstract executions (distinct
// visibility relations) of the history.
func CountComplying(events []model.Event, types spec.Types, opts SearchOptions) (int, error) {
	s, err := newSearcher(events, types, opts)
	if err != nil {
		return 0, err
	}
	s.all = true
	if err := s.run(0); err != nil {
		return 0, err
	}
	return s.count, nil
}

func newSearcher(events []model.Event, types spec.Types, opts SearchOptions) (*searcher, error) {
	if len(events) > 24 {
		return nil, fmt.Errorf("%w: %d events (max 24)", ErrTooLarge, len(events))
	}
	for _, e := range events {
		if !e.IsDo() {
			return nil, fmt.Errorf("consistency: history contains non-do event %s", e)
		}
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 5_000_000
	}
	return &searcher{events: events, types: types, opts: opts, vis: make([]uint64, len(events))}, nil
}

func (s *searcher) run(j int) error {
	if j == len(s.events) {
		s.count++
		if s.found == nil {
			s.found = s.materialize()
		}
		return nil
	}
	forced, all := s.bounds(j)
	free := all &^ forced

	// Enumerate every subset of the free predecessors, from the forced set
	// upward, using the standard submask walk.
	sub := free
	for {
		mask := forced | (free &^ sub)
		s.nodes++
		if s.nodes > s.opts.MaxNodes {
			return ErrSearchBudget
		}
		if s.admissible(j, mask) {
			s.vis[j] = mask
			if err := s.run(j + 1); err != nil {
				return err
			}
			if s.found != nil && !s.all {
				return nil
			}
		}
		if sub == 0 {
			break
		}
		sub = (sub - 1) & free
	}
	return nil
}

// bounds returns the forced predecessor mask (session order plus session
// closure, Definition 4 conditions (1) and (2)) and the mask of all prior
// events.
func (s *searcher) bounds(j int) (forced, all uint64) {
	r := s.events[j].Replica
	for i := 0; i < j; i++ {
		all |= 1 << uint(i)
		if s.events[i].Replica == r {
			forced |= 1 << uint(i) // condition (1)
			forced |= s.vis[i]     // condition (2)
		}
	}
	return forced, all
}

// admissible checks downward-closure (when causal consistency is required)
// and specification correctness of event j's recorded response under
// predecessor set mask.
func (s *searcher) admissible(j int, mask uint64) bool {
	if s.opts.RequireCausal {
		m := mask
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &= m - 1
			if s.vis[i]&^mask != 0 {
				return false
			}
		}
	}
	e := s.events[j]
	sp := s.types.SpecOf(e.Object)
	if !sp.Allows(e.Op.Kind) {
		return false
	}
	want := s.evalWith(j, mask, sp)
	return e.Rval.Equal(want)
}

// evalWith evaluates the specification of event j against the candidate
// predecessor set, building the operation context directly from the masks.
func (s *searcher) evalWith(j int, mask uint64, sp spec.Spec) model.Response {
	var idx []int
	for i := 0; i < j; i++ {
		if mask&(1<<uint(i)) != 0 && s.events[i].Object == s.events[j].Object {
			idx = append(idx, i)
		}
	}
	ctxEvents := make([]model.Event, 0, len(idx)+1)
	for _, i := range idx {
		ctxEvents = append(ctxEvents, s.events[i])
	}
	ctxEvents = append(ctxEvents, s.events[j])
	ctx := abstract.NewContext(ctxEvents, func(p, q int) bool {
		if q == len(idx) {
			return p < len(idx) // everything in the context is visible to the target
		}
		if p >= len(idx) || q >= len(idx) {
			return false
		}
		return s.vis[idx[q]]&(1<<uint(idx[p])) != 0
	})
	return sp.Eval(ctx)
}

// materialize converts the current assignment into an abstract.Execution.
func (s *searcher) materialize() *abstract.Execution {
	a := abstract.New()
	for _, e := range s.events {
		a.Append(e)
	}
	for j := range s.events {
		m := s.vis[j]
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &= m - 1
			a.AddVis(i, j)
		}
	}
	return a
}
