// Package consistency implements the paper's consistency models as checkers
// over abstract executions: causal consistency (Definition 12), observable
// causal consistency (Definition 18), eventual consistency (Definition 13)
// on finite windows, and natural causal consistency (the CAC comparison of
// §5.3). It also provides an exhaustive search for a complying correct
// abstract execution of a small concrete history, used to prove
// *non*-compliance (e.g. that the hiding store's Figure 2 history admits no
// causally consistent MVR abstract execution).
package consistency

import (
	"fmt"

	"repro/internal/abstract"
	"repro/internal/model"
	"repro/internal/spec"
)

// CheckCausal verifies that A is a causally consistent abstract execution:
// valid (Definition 4), correct (Definition 8), and with transitive
// visibility (Definition 12).
func CheckCausal(a *abstract.Execution, types spec.Types) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if err := spec.CheckCorrect(a, types); err != nil {
		return err
	}
	if h, i, j, bad := a.TransitiveViolation(); bad {
		return fmt.Errorf("consistency: vis not transitive: H[%d]-vis->H[%d]-vis->H[%d] but no H[%d]-vis->H[%d]", h, i, j, h, j)
	}
	return nil
}

// OCCViolation describes a read whose exposed concurrency lacks the
// Definition 18 witnesses: the pair (w0, w1) in rval(r) could be "hidden" by
// an ordering data store.
type OCCViolation struct {
	Read   int // index of r in H
	W0, W1 int // indices of the unwitnessed concurrent writes
}

// Error implements error.
func (v *OCCViolation) Error() string {
	return fmt.Sprintf("consistency: OCC violated at read H[%d]: concurrent writes H[%d], H[%d] have no Definition 18 witnesses", v.Read, v.W0, v.W1)
}

// CheckOCC verifies that A is observably causally consistent (Definition
// 18): causally consistent, and for every MVR read returning at least two
// writes {w0, w1}, there exist witness writes w'0, w'1 such that
//
//	(1) w'_i -vis-> w_{1-i} and obj(w'_i) ≠ obj(r),
//	(2) obj(w'_0) ≠ obj(w'_1),
//	(3) ¬(w'_i -vis-> w_i),
//	(4) every write ŵ to obj(w'_i) with ŵ -vis-> w_i has ŵ -vis-> w'_i.
//
// The witnesses pin down information flow that prevents the data store from
// pretending w0 -vis-> w1 or w1 -vis-> w0 (Figure 3c).
func CheckOCC(a *abstract.Execution, types spec.Types) error {
	if err := CheckCausal(a, types); err != nil {
		return err
	}
	writers, err := writeIndex(a)
	if err != nil {
		return err
	}
	for j, e := range a.H {
		if !e.IsRead() || types.Of(e.Object) != spec.TypeMVR || len(e.Rval.Values) < 2 {
			continue
		}
		ws := make([]int, 0, len(e.Rval.Values))
		for _, v := range e.Rval.Values {
			w, ok := writers[objValue{e.Object, v}]
			if !ok {
				return fmt.Errorf("consistency: read H[%d] returns value %q with no write event on %s", j, v, e.Object)
			}
			ws = append(ws, w)
		}
		for p := 0; p < len(ws); p++ {
			for q := p + 1; q < len(ws); q++ {
				if !hasWitnesses(a, e.Object, ws[p], ws[q]) {
					return &OCCViolation{Read: j, W0: ws[p], W1: ws[q]}
				}
			}
		}
	}
	return nil
}

type objValue struct {
	obj model.ObjectID
	val model.Value
}

// writeIndex maps (object, value) to the index of the write event producing
// it, enforcing the paper's distinct-written-values assumption per object.
func writeIndex(a *abstract.Execution) (map[objValue]int, error) {
	idx := make(map[objValue]int)
	for j, e := range a.H {
		if e.Act == model.ActDo && e.Op.Kind == model.OpWrite {
			key := objValue{e.Object, e.Op.Arg}
			if prev, dup := idx[key]; dup {
				return nil, fmt.Errorf("consistency: writes H[%d] and H[%d] both write %q to %s (distinct-values assumption violated)", prev, j, e.Op.Arg, e.Object)
			}
			idx[key] = j
		}
	}
	return idx, nil
}

// hasWitnesses searches for w'0, w'1 satisfying Definition 18 for the pair
// (w0, w1) returned by a read of object o.
func hasWitnesses(a *abstract.Execution, o model.ObjectID, w0, w1 int) bool {
	// Candidates for w'_0: writes visible to w1 (condition 1 with i=0).
	// Candidates for w'_1: writes visible to w0.
	cands := func(target, self int) []int {
		var out []int
		for i := 0; i < len(a.H); i++ {
			e := a.H[i]
			if !e.IsWrite() || e.Object == o {
				continue
			}
			if a.Vis(i, target) && !a.Vis(i, self) { // conditions (1) and (3)
				out = append(out, i)
			}
		}
		return out
	}
	c0 := cands(w1, w0)
	c1 := cands(w0, w1)
	for _, wp0 := range c0 {
		if !witnessCondition4(a, wp0, w0) {
			continue
		}
		for _, wp1 := range c1 {
			if a.H[wp0].Object == a.H[wp1].Object { // condition (2)
				continue
			}
			if witnessCondition4(a, wp1, w1) {
				return true
			}
		}
	}
	return false
}

// witnessCondition4 checks Definition 18(4) for witness wpi of w_i: every
// write ŵ to obj(w'_i) visible to w_i must be visible to w'_i.
func witnessCondition4(a *abstract.Execution, wpi, wi int) bool {
	obj := a.H[wpi].Object
	for h := 0; h < len(a.H); h++ {
		e := a.H[h]
		if h != wpi && e.IsWrite() && e.Object == obj && a.Vis(h, wi) && !a.Vis(h, wpi) {
			return false
		}
	}
	return true
}

// BlindSuffix returns, for event j, the number of later same-object events
// that do not see it. Definition 13 requires this to be finite for every
// event of an infinite execution; on finite windows the checkers bound it.
func BlindSuffix(a *abstract.Execution, j int) int {
	count := 0
	for k := j + 1; k < len(a.H); k++ {
		if a.H[k].Object == a.H[j].Object && !a.Vis(j, k) {
			count++
		}
	}
	return count
}

// CheckEventualWindow verifies the finite-window approximation of eventual
// consistency (Definition 13): no event has more than lagBound later
// same-object events blind to it. An infinite execution is eventually
// consistent iff every finite prefix passes for *some* bound, so callers pick
// lagBound from the propagation budget of the run (e.g. the maximum number
// of operations between a write and the quiescence that follows it).
func CheckEventualWindow(a *abstract.Execution, lagBound int) error {
	for j := range a.H {
		if lag := BlindSuffix(a, j); lag > lagBound {
			return fmt.Errorf("consistency: H[%d] = %s has %d blind same-object successors (bound %d)", j, a.H[j], lag, lagBound)
		}
	}
	return nil
}

// CheckConvergedSuffix verifies the quiescent form of eventual consistency:
// every event before the suffix boundary is visible to every same-object
// event at or after it. Executions driven to quiescence (Corollary 4) must
// pass with the boundary at the first post-quiescence operation.
func CheckConvergedSuffix(a *abstract.Execution, boundary int) error {
	for j := 0; j < boundary && j < len(a.H); j++ {
		for k := boundary; k < len(a.H); k++ {
			if k > j && a.H[k].Object == a.H[j].Object && !a.Vis(j, k) {
				return fmt.Errorf("consistency: post-quiescence event H[%d] blind to H[%d]", k, j)
			}
		}
	}
	return nil
}

// Stronger reports whether consistency model membership f is strictly
// stronger than g over the provided sample of abstract executions: every
// execution admitted by f is admitted by g, and some execution admitted by g
// is rejected by f. This is the paper's C' ⊊ C, made checkable on samples.
func Stronger(sample []*abstract.Execution, f, g func(*abstract.Execution) bool) (subset, strict bool) {
	subset = true
	for _, a := range sample {
		inF, inG := f(a), g(a)
		if inF && !inG {
			subset = false
		}
		if inG && !inF {
			strict = true
		}
	}
	return subset, subset && strict
}

// Verdict summarizes all checks on one abstract execution, for reporting
// tools.
type Verdict struct {
	Valid    error
	Correct  error
	Causal   error
	OCC      error
	Eventual error
}

// Evaluate runs the full checker stack with the given eventual-consistency
// lag bound.
func Evaluate(a *abstract.Execution, types spec.Types, lagBound int) Verdict {
	v := Verdict{}
	v.Valid = a.Validate()
	if v.Valid == nil {
		v.Correct = spec.CheckCorrect(a, types)
	} else {
		v.Correct = fmt.Errorf("skipped: %v", v.Valid)
	}
	v.Causal = CheckCausal(a, types)
	v.OCC = CheckOCC(a, types)
	v.Eventual = CheckEventualWindow(a, lagBound)
	return v
}
