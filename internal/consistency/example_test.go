package consistency_test

import (
	"fmt"

	"repro/internal/abstract"
	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/spec"
)

// ExampleProveNoCausalMVR refutes a client history in which a store hid
// concurrency: no causally consistent MVR abstract execution explains it.
func ExampleProveNoCausalMVR() {
	history := []model.Event{
		model.DoEvent(0, "u", model.Write("c"), model.OKResponse()),
		model.DoEvent(0, "x", model.Write("a"), model.OKResponse()),
		model.DoEvent(0, "m", model.Write("d"), model.OKResponse()),
		model.DoEvent(1, "x", model.Write("b"), model.OKResponse()),
		model.DoEvent(1, "u", model.Read(), model.ReadResponse(nil)),
		model.DoEvent(2, "m", model.Read(), model.ReadResponse([]model.Value{"d"})),
		model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"b"})), // a hidden
	}
	impossible, _, err := consistency.ProveNoCausalMVR(history, spec.MVRTypes())
	if err != nil {
		panic(err)
	}
	fmt.Println("provably unexplainable:", impossible)
	// Output:
	// provably unexplainable: true
}

// ExampleCheckOCC validates the Definition 18 witness pattern of Figure 3c.
func ExampleCheckOCC() {
	// Build: witness writes y1@r0 and y0@r1 precede concurrent writes to x;
	// a read observes both concurrent values.
	a := buildFig3c()
	fmt.Println("causal:", consistency.CheckCausal(a, spec.MVRTypes()) == nil)
	fmt.Println("OCC:", consistency.CheckOCC(a, spec.MVRTypes()) == nil)
	// Output:
	// causal: true
	// OCC: true
}

func buildFig3c() *abstract.Execution {
	a := abstract.New()
	a.Append(model.DoEvent(0, "y1", model.Write("b1"), model.OKResponse()))
	a.Append(model.DoEvent(0, "x", model.Write("w0"), model.OKResponse()))
	a.Append(model.DoEvent(1, "y0", model.Write("b0"), model.OKResponse()))
	a.Append(model.DoEvent(1, "x", model.Write("w1"), model.OKResponse()))
	a.Append(model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"w0", "w1"})))
	a.AddVis(0, 1)
	a.AddVis(2, 3)
	for _, j := range []int{0, 1, 2, 3} {
		a.AddVis(j, 4)
	}
	return a
}
