package consistency

import (
	"fmt"

	"repro/internal/abstract"
	"repro/internal/model"
)

// Session guarantees (Terry et al.), phrased over abstract executions. They
// are the classical decomposition of causal consistency: an abstract
// execution is causally consistent iff it is correct with transitive
// visibility, and transitive visibility implies all four session guarantees
// below (the converse does not hold — the guarantees are each strictly
// weaker). The checkers give fine-grained diagnostics when a store run
// fails the full causal check, and witness the "strictly weaker" half on
// samples.
//
// Terminology on (H, vis): a write is any mutator; "session" is the
// per-replica order of H.

// CheckReadYourWrites verifies that every operation sees all earlier
// mutators of its own session (a consequence of Definition 4's session
// order, but checked independently so broken relations are diagnosed
// precisely).
func CheckReadYourWrites(a *abstract.Execution) error {
	return checkSessionRule(a, func(i, j int) (bool, string) {
		if a.H[i].IsWrite() && a.H[i].Replica == a.H[j].Replica && !a.Vis(i, j) {
			return false, "read-your-writes"
		}
		return true, ""
	})
}

// CheckMonotonicReads verifies that visibility never shrinks along a
// session: every event visible to an operation is visible to all later
// operations of the same session (Definition 4 condition (2)).
func CheckMonotonicReads(a *abstract.Execution) error {
	for j := range a.H {
		for k := j + 1; k < a.Len(); k++ {
			if a.H[j].Replica != a.H[k].Replica {
				continue
			}
			for i := 0; i < j; i++ {
				if a.Vis(i, j) && !a.Vis(i, k) {
					return fmt.Errorf("consistency: monotonic reads violated: H[%d] visible to H[%d] but not to later H[%d] at r%d",
						i, j, k, a.H[j].Replica)
				}
			}
		}
	}
	return nil
}

// CheckWritesFollowReads verifies that anything visible to a session before
// one of its writes is visible wherever that write is visible: if e -vis-> w
// precedes w in w's session... more precisely, for any w at session S and
// any e visible to an earlier operation of S, every event that sees w also
// sees e. This is the session-guarantee fragment of transitivity.
func CheckWritesFollowReads(a *abstract.Execution) error {
	for w := range a.H {
		if !a.H[w].IsWrite() {
			continue
		}
		// Events visible to w (which, by session order + condition (2),
		// includes everything visible to earlier same-session operations).
		for i := 0; i < w; i++ {
			if !a.Vis(i, w) {
				continue
			}
			for k := w + 1; k < a.Len(); k++ {
				if a.Vis(w, k) && !a.Vis(i, k) {
					return fmt.Errorf("consistency: writes-follow-reads violated: H[%d] visible to write H[%d], H[%d] sees the write but not H[%d]",
						i, w, k, i)
				}
			}
		}
	}
	return nil
}

// CheckMonotonicWrites verifies that a session's writes are observed in
// session order: if a later write of a session is visible to an event, so
// are all of the session's earlier writes.
func CheckMonotonicWrites(a *abstract.Execution) error {
	for w2 := range a.H {
		if !a.H[w2].IsWrite() {
			continue
		}
		for w1 := 0; w1 < w2; w1++ {
			if !a.H[w1].IsWrite() || a.H[w1].Replica != a.H[w2].Replica {
				continue
			}
			for k := w2 + 1; k < a.Len(); k++ {
				if a.Vis(w2, k) && !a.Vis(w1, k) {
					return fmt.Errorf("consistency: monotonic writes violated: H[%d] sees write H[%d] but not earlier same-session write H[%d]",
						k, w2, w1)
				}
			}
		}
	}
	return nil
}

// SessionVerdict aggregates the four session guarantees.
type SessionVerdict struct {
	ReadYourWrites    error
	MonotonicReads    error
	WritesFollowReads error
	MonotonicWrites   error
}

// OK reports whether all four guarantees hold.
func (v SessionVerdict) OK() bool {
	return v.ReadYourWrites == nil && v.MonotonicReads == nil &&
		v.WritesFollowReads == nil && v.MonotonicWrites == nil
}

// CheckSessionGuarantees evaluates all four guarantees.
func CheckSessionGuarantees(a *abstract.Execution) SessionVerdict {
	return SessionVerdict{
		ReadYourWrites:    CheckReadYourWrites(a),
		MonotonicReads:    CheckMonotonicReads(a),
		WritesFollowReads: CheckWritesFollowReads(a),
		MonotonicWrites:   CheckMonotonicWrites(a),
	}
}

// checkSessionRule applies a per-pair session predicate over same-session
// ordered pairs (i before j).
func checkSessionRule(a *abstract.Execution, rule func(i, j int) (bool, string)) error {
	perReplica := make(map[model.ReplicaID][]int)
	for j, e := range a.H {
		for _, i := range perReplica[e.Replica] {
			if ok, name := rule(i, j); !ok {
				return fmt.Errorf("consistency: %s violated between H[%d] and H[%d] at r%d", name, i, j, e.Replica)
			}
		}
		perReplica[e.Replica] = append(perReplica[e.Replica], j)
	}
	return nil
}

// NaturallyOrdered checks the natural causal consistency requirement of the
// CAC theorem (§5.3 comparison): the abstract execution's H must follow the
// given real-time order of the do events exactly — not merely per replica.
// realTime maps H indices to real-time positions (e.g. global do-event
// sequence numbers of the recorded run).
func NaturallyOrdered(a *abstract.Execution, realTime []int) error {
	if len(realTime) != a.Len() {
		return fmt.Errorf("consistency: real-time order has %d entries for %d events", len(realTime), a.Len())
	}
	for j := 1; j < a.Len(); j++ {
		if realTime[j] < realTime[j-1] {
			return fmt.Errorf("consistency: H[%d] and H[%d] violate real-time order (natural causal consistency)", j-1, j)
		}
	}
	return nil
}
