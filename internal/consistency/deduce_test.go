package consistency

import (
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
)

func TestDeduceInconclusiveOnSatisfiable(t *testing.T) {
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(1, "x", model.Read(), model.ReadResponse([]model.Value{"a"})),
	}
	impossible, _, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if impossible {
		t.Fatal("refuted a satisfiable history")
	}
}

func TestDeduceGhostValue(t *testing.T) {
	events := []model.Event{
		do(0, "x", model.Read(), model.ReadResponse([]model.Value{"ghost"})),
	}
	impossible, trace, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if !impossible || len(trace) == 0 {
		t.Fatal("ghost value should be refuted with a trace")
	}
}

func TestDeduceReadYourWrites(t *testing.T) {
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(0, "x", model.Read(), model.ReadResponse(nil)),
	}
	impossible, _, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if !impossible {
		t.Fatal("blind read after local write should be refuted")
	}
}

func TestDeduceCycleFromFutureRead(t *testing.T) {
	// The read precedes the only write of the value in its own session: the
	// required evidence edge closes a cycle.
	events := []model.Event{
		do(0, "x", model.Read(), model.ReadResponse([]model.Value{"a"})),
		do(0, "x", model.Write("a"), model.OKResponse()),
	}
	impossible, _, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if !impossible {
		t.Fatal("reading a future write should be refuted")
	}
}

func TestDeduceMonotonicReads(t *testing.T) {
	// Session r1 sees b (which causally follows a) and then only a:
	// the second read is stale and unexplainable.
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(0, "x", model.Write("b"), model.OKResponse()),
		do(1, "x", model.Read(), model.ReadResponse([]model.Value{"b"})),
		do(1, "x", model.Read(), model.ReadResponse([]model.Value{"a"})),
	}
	impossible, _, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if !impossible {
		t.Fatal("non-monotonic reads should be refuted")
	}
}

func TestDeduceAllowsStaleButConsistentRead(t *testing.T) {
	// Seeing only the older write is fine when the newer one need not be
	// visible.
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(0, "x", model.Write("b"), model.OKResponse()),
		do(1, "x", model.Read(), model.ReadResponse([]model.Value{"a"})),
	}
	impossible, _, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if impossible {
		t.Fatal("reading only the older write is consistent")
	}
}

func TestDeduceBranchingOverDominators(t *testing.T) {
	// Write a forced visible but hidden; TWO candidate dominators exist (b
	// and c); both branches must be explored. Here both survive, so the
	// result is inconclusive.
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(0, "m", model.Write("d"), model.OKResponse()),
		do(1, "x", model.Write("b"), model.OKResponse()),
		do(2, "x", model.Write("c"), model.OKResponse()),
		do(3, "m", model.Read(), model.ReadResponse([]model.Value{"d"})),
		do(3, "x", model.Read(), model.ReadResponse([]model.Value{"b", "c"})),
	}
	impossible, _, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if impossible {
		t.Fatal("a is dominated by b or c; history is satisfiable")
	}
}

func TestDeduceRejectsNonMVRTypes(t *testing.T) {
	events := []model.Event{do(0, "s", model.Add("e"), model.OKResponse())}
	types := spec.Types{DefaultType: spec.TypeORSet}
	if _, _, err := ProveNoCausalMVR(events, types); err == nil {
		t.Fatal("expected type rejection")
	}
}

func TestDeduceRejectsNonDoEvents(t *testing.T) {
	if _, _, err := ProveNoCausalMVR([]model.Event{model.SendEvent(0, 1)}, mvr()); err == nil {
		t.Fatal("expected rejection")
	}
}

func TestDeduceRejectsOversizedHistory(t *testing.T) {
	events := make([]model.Event, 65)
	for i := range events {
		events[i] = do(0, "x", model.Read(), model.ReadResponse(nil))
	}
	if _, _, err := ProveNoCausalMVR(events, mvr()); err == nil {
		t.Fatal("expected size rejection")
	}
}

func TestDeduceDominatedValueContradiction(t *testing.T) {
	// The read returns a, but its session already saw b which dominates a.
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(0, "x", model.Write("b"), model.OKResponse()),
		do(0, "x", model.Read(), model.ReadResponse([]model.Value{"a"})),
	}
	impossible, _, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if !impossible {
		t.Fatal("session-dominated value should be refuted")
	}
}
