package consistency

// Tests of the structural properties the paper demands of consistency
// models (§3.2): prefix-closure (Definition 5) and closure under
// equivalence (Definition 9 / the discussion after it). The causal and OCC
// checkers must give the same verdict on every prefix of a member and on
// every equivalent reordering of any execution.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/spec"
)

func TestCausalConsistencyIsPrefixClosed(t *testing.T) {
	types := spec.MVRTypes()
	for seed := int64(0); seed < 10; seed++ {
		a := gen.RandomCausal(gen.Config{Seed: seed, Events: 18})
		if err := CheckCausal(a, types); err != nil {
			t.Fatalf("seed %d: generator broke: %v", seed, err)
		}
		for n := 0; n <= a.Len(); n++ {
			if err := CheckCausal(a.Prefix(n), types); err != nil {
				t.Fatalf("seed %d: prefix of length %d not causal: %v", seed, n, err)
			}
		}
	}
}

func TestOCCIsPrefixClosed(t *testing.T) {
	types := spec.MVRTypes()
	checked := 0
	for _, rounds := range []int{1, 2, 3} {
		a := gen.WitnessedConcurrency(rounds, true)
		if err := CheckOCC(a, types); err != nil {
			t.Fatalf("rounds %d: %v", rounds, err)
		}
		for n := 0; n <= a.Len(); n++ {
			if err := CheckOCC(a.Prefix(n), types); err != nil {
				t.Fatalf("rounds %d: prefix of length %d not OCC: %v", rounds, n, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no prefixes checked")
	}
}

func TestCheckersClosedUnderEquivalence(t *testing.T) {
	types := spec.MVRTypes()
	for seed := int64(0); seed < 6; seed++ {
		a := gen.RandomCausal(gen.Config{Seed: seed, Events: 14})
		wantCausal := CheckCausal(a, types) == nil
		wantOCC := CheckOCC(a, types) == nil
		perms := a.TopologicalReorders(20)
		if len(perms) < 2 {
			continue // totally ordered execution: only the identity
		}
		for _, perm := range perms {
			b, err := a.Reorder(perm)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !b.Equivalent(a) {
				t.Fatalf("seed %d: reordering broke equivalence", seed)
			}
			if got := CheckCausal(b, types) == nil; got != wantCausal {
				t.Fatalf("seed %d: causal verdict changed under equivalence: %v vs %v", seed, got, wantCausal)
			}
			if got := CheckOCC(b, types) == nil; got != wantOCC {
				t.Fatalf("seed %d: OCC verdict changed under equivalence", seed)
			}
		}
	}
}

func TestReorderRejectsInvalidPermutations(t *testing.T) {
	a := gen.RandomCausal(gen.Config{Seed: 1, Events: 6})
	if _, err := a.Reorder([]int{0, 1}); err == nil {
		t.Fatal("expected length mismatch rejection")
	}
	bad := make([]int, a.Len())
	for i := range bad {
		bad[i] = 0 // duplicate entries
	}
	if _, err := a.Reorder(bad); err == nil {
		t.Fatal("expected duplicate rejection")
	}
	// Reversing the whole order reverses at least one session or vis edge.
	rev := make([]int, a.Len())
	for i := range rev {
		rev[i] = a.Len() - 1 - i
	}
	if _, err := a.Reorder(rev); err == nil {
		t.Fatal("expected edge-reversal rejection")
	}
}

func TestTopologicalReordersIncludeIdentity(t *testing.T) {
	a := gen.RandomCausal(gen.Config{Seed: 3, Events: 10})
	perms := a.TopologicalReorders(50)
	foundIdentity := false
	for _, perm := range perms {
		id := true
		for i, p := range perm {
			if p != i {
				id = false
				break
			}
		}
		if id {
			foundIdentity = true
		}
	}
	if !foundIdentity {
		t.Fatal("identity permutation missing from topological reorders")
	}
}
