package consistency

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/model"
	"repro/internal/spec"
)

// The deductive prover establishes that a client history over MVR objects
// admits NO causally consistent correct abstract execution — the
// machine-checked form of the Figure 2 inference: clients can use causality
// to detect that a store hid concurrency.
//
// It computes the visibility edges FORCED in every complying causal abstract
// execution and derives a contradiction:
//
//	session order      e_i before e_j at one replica        ⟹ i -vis-> j
//	transitivity       i -vis-> j -vis-> k                  ⟹ i -vis-> k
//	                   (session closure follows from these two)
//	read evidence      read r returns value of write w      ⟹ w -vis-> r
//	domination         write w of obj(r) forced visible to r but absent from
//	                   rval(r) ⟹ some write w'' of obj(r) has w -vis-> w''
//	                   and w'' -vis-> r (branch over candidates w'')
//
// Contradictions:
//
//	empty read         rval(r) = {} but a write of obj(r) is forced visible
//	dead value         rval(r) contains v but its write cannot precede r
//	                   (the required edge closes a forced cycle)
//	dominated value    w ∈ rval(r) but forced edges dominate w at r
//	no dominator       a stray write has no cycle-free candidate dominator
//	cycle              forced edges form a cycle (visibility is a suborder
//	                   of the H order, so cycles are impossible)
//
// Crucially, the deduction is ORDER-FREE: compliance only fixes per-replica
// order, so the prover never assumes a particular interleaving H. Forced
// edges form a general DAG; any acyclic visibility extending session order
// can be topologically sorted into a compatible H, so a contradiction here
// rules out every complying causal abstract execution. The prover is sound
// for impossibility (true means none exists) and inconclusive otherwise —
// existence is shown constructively elsewhere (sim.DerivedAbstract +
// CheckCausal).

// ErrDeduceBudget is returned when the branch budget is exhausted.
var ErrDeduceBudget = errors.New("consistency: deduction budget exceeded")

// ProveNoCausalMVR returns (true, trace) when the history provably admits no
// causally consistent correct MVR abstract execution; the trace explains the
// contradictions. A false result is inconclusive. All objects must be MVRs,
// written values unique per object, and the history at most 64 events.
func ProveNoCausalMVR(events []model.Event, types spec.Types) (bool, []string, error) {
	if len(events) > 64 {
		return false, nil, fmt.Errorf("consistency: deductive prover handles at most 64 events, got %d", len(events))
	}
	for _, e := range events {
		if !e.IsDo() {
			return false, nil, fmt.Errorf("consistency: non-do event %s in history", e)
		}
		if types.Of(e.Object) != spec.TypeMVR {
			return false, nil, fmt.Errorf("consistency: deductive prover handles MVR objects only; %s is %s", e.Object, types.Of(e.Object))
		}
		if e.Op.Kind != model.OpRead && e.Op.Kind != model.OpWrite {
			return false, nil, fmt.Errorf("consistency: MVR history contains %s", e.Op.Kind)
		}
	}
	d := &deducer{events: events, budget: 500000}
	f, contradiction := d.seed()
	if contradiction != "" {
		return true, []string{contradiction}, nil
	}
	impossible, trace := d.refute(f)
	if d.budget <= 0 {
		return false, nil, ErrDeduceBudget
	}
	return impossible, trace, nil
}

type deducer struct {
	events []model.Event
	budget int
}

// preds is a forced-visibility matrix over a general DAG: preds[j] has bit i
// set iff e_i -vis-> e_j is forced (any i, not only i < j in the given
// order).
type preds []uint64

// seed installs session-order and read-evidence edges.
func (d *deducer) seed() (preds, string) {
	n := len(d.events)
	f := make(preds, n)
	perReplica := make(map[model.ReplicaID][]int)
	for j, e := range d.events {
		for _, i := range perReplica[e.Replica] {
			f[j] |= 1 << uint(i)
		}
		perReplica[e.Replica] = append(perReplica[e.Replica], j)
	}
	for j, e := range d.events {
		if !e.IsRead() {
			continue
		}
		for _, v := range e.Rval.Values {
			w, ok := d.writeOf(e.Object, v)
			if !ok {
				return nil, fmt.Sprintf("read [%d]=%s returns %q but no write of %s produces it", j, e, v, e.Object)
			}
			f[j] |= 1 << uint(w)
		}
	}
	return f, ""
}

// closeForced computes the transitive closure; it reports a cycle by
// returning the index of an event forced to precede itself, or -1.
func (d *deducer) closeForced(f preds) int {
	for changed := true; changed; {
		changed = false
		for j := range f {
			old := f[j]
			m := f[j]
			for m != 0 {
				i := bits.TrailingZeros64(m)
				m &= m - 1
				f[j] |= f[i]
			}
			if f[j] != old {
				changed = true
			}
		}
	}
	for j := range f {
		if f[j]&(1<<uint(j)) != 0 {
			return j
		}
	}
	return -1
}

// refute returns true when every way of satisfying the outstanding
// domination obligations leads to contradiction.
func (d *deducer) refute(f preds) (bool, []string) {
	d.budget--
	if d.budget <= 0 {
		return false, nil
	}
	if c := d.closeForced(f); c >= 0 {
		return true, []string{fmt.Sprintf("forced visibility cycle through [%d]=%s", c, d.events[c])}
	}

	for j, e := range d.events {
		if !e.IsRead() {
			continue
		}
		for i := range d.events {
			if i == j || f[j]&(1<<uint(i)) == 0 {
				continue
			}
			w := d.events[i]
			if !w.IsWrite() || w.Object != e.Object {
				continue
			}
			if e.Rval.Contains(w.Op.Arg) {
				if k, dom := d.dominatedBy(f, j, i); dom {
					return true, []string{fmt.Sprintf("read [%d]=%s returns %q yet its write [%d] is forced dominated by [%d], itself forced visible", j, e, w.Op.Arg, i, k)}
				}
				continue
			}
			// Stray visible write: absent from the response, so it must be
			// dominated by a visible same-object write.
			if len(e.Rval.Values) == 0 {
				return true, []string{fmt.Sprintf("read [%d]=%s returns {} yet write [%d]=%s is forced visible", j, e, i, w)}
			}
			if _, dom := d.dominatedBy(f, j, i); dom {
				continue
			}
			cands := d.dominatorCandidates(f, j, i)
			if len(cands) == 0 {
				return true, []string{fmt.Sprintf("write [%d]=%s is forced visible to read [%d]=%s, absent from its response, and has no cycle-free dominator", i, w, j, e)}
			}
			// Branch: in any complying execution SOME candidate must
			// dominate; impossibility requires refuting each choice.
			var traces []string
			for _, k := range cands {
				branch := make(preds, len(f))
				copy(branch, f)
				branch[k] |= 1 << uint(i) // w -vis-> w''
				branch[j] |= 1 << uint(k) // w'' -vis-> r
				ok, trace := d.refute(branch)
				if !ok {
					return false, nil
				}
				detail := "contradiction"
				if len(trace) > 0 {
					detail = trace[0]
				}
				traces = append(traces, fmt.Sprintf("if write [%d] dominated by [%d]: %s", i, k, detail))
			}
			return true, traces
		}
	}
	return false, nil // no contradiction found: inconclusive
}

// dominatedBy reports whether write i is already forced-dominated at read j,
// returning the dominating write.
func (d *deducer) dominatedBy(f preds, j, i int) (int, bool) {
	for k := range d.events {
		if k == i || k == j {
			continue
		}
		wk := d.events[k]
		if wk.IsWrite() && wk.Object == d.events[j].Object && f[k]&(1<<uint(i)) != 0 && f[j]&(1<<uint(k)) != 0 {
			return k, true
		}
	}
	return 0, false
}

// dominatorCandidates lists same-object writes k that could dominate write i
// at read j without closing a forced cycle: the new edges i->k and k->j are
// admissible iff there is no forced path k->i and no forced path j->k.
func (d *deducer) dominatorCandidates(f preds, j, i int) []int {
	var out []int
	for k := range d.events {
		if k == i || k == j {
			continue
		}
		wk := d.events[k]
		if !wk.IsWrite() || wk.Object != d.events[j].Object {
			continue
		}
		if f[i]&(1<<uint(k)) != 0 { // forced k->i: edge i->k would cycle
			continue
		}
		if f[k]&(1<<uint(j)) != 0 { // forced j->k: edge k->j would cycle
			continue
		}
		out = append(out, k)
	}
	return out
}

// writeOf finds the unique write of obj producing value v.
func (d *deducer) writeOf(obj model.ObjectID, v model.Value) (int, bool) {
	for i, e := range d.events {
		if e.IsWrite() && e.Object == obj && e.Op.Arg == v {
			return i, true
		}
	}
	return 0, false
}
