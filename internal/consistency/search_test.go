package consistency

import (
	"errors"
	"testing"

	"repro/internal/model"
)

func do(r model.ReplicaID, obj model.ObjectID, op model.Operation, rval model.Response) model.Event {
	return model.DoEvent(r, obj, op, rval)
}

func TestFindComplyingTrivialHistory(t *testing.T) {
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(0, "x", model.Read(), model.ReadResponse([]model.Value{"a"})),
	}
	a, err := FindComplying(events, mvr(), SearchOptions{RequireCausal: true})
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("expected a complying execution")
	}
	if err := CheckCausal(a, mvr()); err != nil {
		t.Fatal(err)
	}
}

func TestFindComplyingRequiresVisibleWrite(t *testing.T) {
	// A read returning a value with no corresponding write has no
	// explanation.
	events := []model.Event{
		do(0, "x", model.Read(), model.ReadResponse([]model.Value{"ghost"})),
	}
	a, err := FindComplying(events, mvr(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a != nil {
		t.Fatal("ghost value should be unexplainable")
	}
}

func TestFindComplyingSessionGuarantee(t *testing.T) {
	// Read-your-writes is forced by session order: a blind read after a
	// local write is unexplainable.
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(0, "x", model.Read(), model.ReadResponse(nil)),
	}
	a, err := FindComplying(events, mvr(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a != nil {
		t.Fatal("session order makes the blind read impossible")
	}
}

func TestFindComplyingConcurrentExposure(t *testing.T) {
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(1, "x", model.Write("b"), model.OKResponse()),
		do(2, "x", model.Read(), model.ReadResponse([]model.Value{"a", "b"})),
	}
	a, err := FindComplying(events, mvr(), SearchOptions{RequireCausal: true})
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("exposed concurrency should be explainable")
	}
	if a.Vis(0, 1) || a.Vis(1, 0) {
		t.Fatal("explanation must keep the writes concurrent")
	}
}

func TestFindComplyingHiddenConcurrencySingleObject(t *testing.T) {
	// With a single object, hiding works: {b} alone is explainable by
	// pretending a -vis-> b (the Perrin et al. §3.4 observation).
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(1, "x", model.Write("b"), model.OKResponse()),
		do(2, "x", model.Read(), model.ReadResponse([]model.Value{"b"})),
	}
	a, err := FindComplying(events, mvr(), SearchOptions{RequireCausal: true})
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("single-object hiding should be explainable")
	}
	if err := CheckCausal(a, mvr()); err != nil {
		t.Fatal(err)
	}
	// Two classes of explanation exist: "a never reached the read" and "the
	// store pretends a -vis-> b"; both are counted.
	n, err := CountComplying(events, mvr(), SearchOptions{RequireCausal: true})
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("expected at least two explanations, got %d", n)
	}
}

func TestCountComplyingCountsDistinctVis(t *testing.T) {
	events := []model.Event{
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(1, "y", model.Read(), model.ReadResponse(nil)),
	}
	// The write may or may not be visible to the cross-object read: exactly
	// two complying causal visibility relations.
	n, err := CountComplying(events, mvr(), SearchOptions{RequireCausal: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestSearchRejectsOversizedHistory(t *testing.T) {
	events := make([]model.Event, 25)
	for i := range events {
		events[i] = do(0, "x", model.Write(model.Value(rune('a'+i))), model.OKResponse())
	}
	_, err := FindComplying(events, mvr(), SearchOptions{})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestSearchRejectsNonDoEvents(t *testing.T) {
	_, err := FindComplying([]model.Event{model.SendEvent(0, 1)}, mvr(), SearchOptions{})
	if err == nil {
		t.Fatal("expected rejection")
	}
}

func TestSearchBudgetExhaustion(t *testing.T) {
	events := []model.Event{
		do(0, "a", model.Write("1"), model.OKResponse()),
		do(1, "b", model.Write("2"), model.OKResponse()),
		do(2, "c", model.Write("3"), model.OKResponse()),
		do(3, "d", model.Write("4"), model.OKResponse()),
		do(4, "e", model.Write("5"), model.OKResponse()),
		do(5, "f", model.Write("6"), model.OKResponse()),
	}
	_, err := CountComplying(events, mvr(), SearchOptions{MaxNodes: 3})
	if !errors.Is(err, ErrSearchBudget) {
		t.Fatalf("err = %v", err)
	}
}

func TestSearchAgreesWithDeducerOnImpossibility(t *testing.T) {
	// A small hiding history both engines must reject: marker m forces a
	// into the read's past.
	events := []model.Event{
		do(0, "u", model.Write("c"), model.OKResponse()),                 // 0: witness past of a
		do(0, "x", model.Write("a"), model.OKResponse()),                 // 1
		do(0, "m", model.Write("d"), model.OKResponse()),                 // 2: marker after a
		do(1, "x", model.Write("b"), model.OKResponse()),                 // 3
		do(1, "u", model.Read(), model.ReadResponse(nil)),                // 4: blind to u
		do(2, "m", model.Read(), model.ReadResponse([]model.Value{"d"})), // 5
		do(2, "x", model.Read(), model.ReadResponse([]model.Value{"b"})), // 6: hides a
	}
	a, err := FindComplying(events, mvr(), SearchOptions{RequireCausal: true, MaxNodes: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if a != nil {
		t.Fatalf("search found a complying execution:\n%s", a)
	}
	impossible, _, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if !impossible {
		t.Fatal("deducer failed to refute")
	}
}

func TestSearchAgreesWithDeducerOnPossibility(t *testing.T) {
	events := []model.Event{
		do(0, "u", model.Write("c"), model.OKResponse()),
		do(0, "x", model.Write("a"), model.OKResponse()),
		do(0, "m", model.Write("d"), model.OKResponse()),
		do(1, "x", model.Write("b"), model.OKResponse()),
		do(2, "m", model.Read(), model.ReadResponse([]model.Value{"d"})),
		do(2, "x", model.Read(), model.ReadResponse([]model.Value{"a", "b"})), // exposes
	}
	a, err := FindComplying(events, mvr(), SearchOptions{RequireCausal: true, MaxNodes: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("search should find a complying execution")
	}
	if err := CheckCausal(a, mvr()); err != nil {
		t.Fatal(err)
	}
	impossible, _, err := ProveNoCausalMVR(events, mvr())
	if err != nil {
		t.Fatal(err)
	}
	if impossible {
		t.Fatal("deducer refuted a satisfiable history")
	}
}
