package consistency

import (
	"testing"

	"repro/internal/abstract"
	"repro/internal/gen"
	"repro/internal/model"
)

func TestSessionGuaranteesHoldOnCausalExecutions(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		a := gen.RandomCausal(gen.Config{Seed: seed, Events: 25})
		v := CheckSessionGuarantees(a)
		if !v.OK() {
			t.Fatalf("seed %d: %+v", seed, v)
		}
	}
}

func TestReadYourWritesViolation(t *testing.T) {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(0, "x", model.Read(), model.ReadResponse(nil))) // no session edge
	if err := CheckReadYourWrites(a); err == nil {
		t.Fatal("expected read-your-writes violation")
	}
}

func TestMonotonicReadsViolation(t *testing.T) {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(1, "x", model.Read(), model.ReadResponse([]model.Value{"a"})))
	a.Append(model.DoEvent(1, "x", model.Read(), model.ReadResponse(nil)))
	a.AddVis(0, 1) // visible to the first read
	a.AddVis(1, 2) // session
	// 0 not visible to 2: visibility shrank.
	if err := CheckMonotonicReads(a); err == nil {
		t.Fatal("expected monotonic reads violation")
	}
}

func TestWritesFollowReadsViolation(t *testing.T) {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))                 // 0
	a.Append(model.DoEvent(1, "y", model.Write("b"), model.OKResponse()))                 // 1: saw a
	a.Append(model.DoEvent(2, "y", model.Read(), model.ReadResponse([]model.Value{"b"}))) // 2: sees b, not a
	a.AddVis(0, 1)
	a.AddVis(1, 2)
	if err := CheckWritesFollowReads(a); err == nil {
		t.Fatal("expected writes-follow-reads violation")
	}
}

func TestMonotonicWritesViolation(t *testing.T) {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))                 // 0
	a.Append(model.DoEvent(0, "y", model.Write("b"), model.OKResponse()))                 // 1: same session
	a.Append(model.DoEvent(1, "y", model.Read(), model.ReadResponse([]model.Value{"b"}))) // sees b, not a
	a.AddVis(0, 1)                                                                        // session
	a.AddVis(1, 2)
	if err := CheckMonotonicWrites(a); err == nil {
		t.Fatal("expected monotonic writes violation")
	}
}

func TestSessionGuaranteesWeakerThanCausal(t *testing.T) {
	// All four guarantees hold, yet visibility is not transitive across
	// sessions: causal consistency is strictly stronger than their
	// conjunction. Chain: w_a@r0 -vis-> r_b@r1 ... use reads as the middle
	// link, which no session guarantee constrains forward.
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))                 // 0
	a.Append(model.DoEvent(1, "x", model.Read(), model.ReadResponse([]model.Value{"a"}))) // 1: sees a
	a.Append(model.DoEvent(2, "z", model.Read(), model.ReadResponse(nil)))                // 2: sees read 1, not a
	a.AddVis(0, 1)
	a.AddVis(1, 2) // a read visible cross-session without its past
	if a.IsTransitive() {
		t.Fatal("test construction should be intransitive")
	}
	v := CheckSessionGuarantees(a)
	if !v.OK() {
		t.Fatalf("session guarantees should hold: %+v", v)
	}
}

func TestNaturallyOrdered(t *testing.T) {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(1, "x", model.Read(), model.ReadResponse(nil)))
	if err := NaturallyOrdered(a, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := NaturallyOrdered(a, []int{1, 0}); err == nil {
		t.Fatal("expected real-time order violation")
	}
	if err := NaturallyOrdered(a, []int{0}); err == nil {
		t.Fatal("expected length mismatch")
	}
}
