package consistency

import (
	"errors"
	"testing"

	"repro/internal/abstract"
	"repro/internal/model"
	"repro/internal/spec"
)

func mvr() spec.Types { return spec.MVRTypes() }

// causalChain: w0@r0 -> w1@r1 (visible) -> read@r2 seeing both.
func causalChain() *abstract.Execution {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(1, "x", model.Write("b"), model.OKResponse()))
	a.Append(model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"b"})))
	a.AddVis(0, 1)
	a.AddVis(0, 2)
	a.AddVis(1, 2)
	return a
}

func TestCheckCausalAccepts(t *testing.T) {
	if err := CheckCausal(causalChain(), mvr()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCausalRejectsIntransitive(t *testing.T) {
	a := causalChain()
	b := abstract.New()
	for _, e := range a.H {
		b.Append(e)
	}
	b.AddVis(0, 1)
	b.AddVis(1, 2) // missing 0->2
	b.SetRval(2, model.ReadResponse([]model.Value{"b"}))
	if err := CheckCausal(b, mvr()); err == nil {
		t.Fatal("expected transitivity rejection")
	}
}

func TestCheckCausalRejectsIncorrect(t *testing.T) {
	a := causalChain()
	a.SetRval(2, model.ReadResponse([]model.Value{"a"})) // dominated value
	if err := CheckCausal(a, mvr()); err == nil {
		t.Fatal("expected correctness rejection")
	}
}

func TestCheckCausalRejectsInvalid(t *testing.T) {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(0, "x", model.Read(), model.ReadResponse(nil))) // session edge missing
	if err := CheckCausal(a, mvr()); err == nil {
		t.Fatal("expected validation rejection")
	}
}

// occWitnessed builds the Figure 3c pattern: a read exposing {w0, w1} with
// proper Definition 18 witnesses.
func occWitnessed() *abstract.Execution {
	a := abstract.New()
	a.Append(model.DoEvent(0, "y1", model.Write("b1"), model.OKResponse())) // 0: w'1
	a.Append(model.DoEvent(0, "x", model.Write("w0"), model.OKResponse()))  // 1: w0
	a.Append(model.DoEvent(1, "y0", model.Write("b0"), model.OKResponse())) // 2: w'0
	a.Append(model.DoEvent(1, "x", model.Write("w1"), model.OKResponse()))  // 3: w1
	a.Append(model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"w0", "w1"})))
	a.AddVis(0, 1)
	a.AddVis(2, 3)
	a.AddVis(0, 4)
	a.AddVis(1, 4)
	a.AddVis(2, 4)
	a.AddVis(3, 4)
	return a
}

func TestCheckOCCAcceptsWitnessed(t *testing.T) {
	if err := CheckOCC(occWitnessed(), mvr()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckOCCRejectsUnwitnessed(t *testing.T) {
	// Two bare concurrent writes exposed by a read: no witnesses exist.
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("w0"), model.OKResponse()))
	a.Append(model.DoEvent(1, "x", model.Write("w1"), model.OKResponse()))
	a.Append(model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"w0", "w1"})))
	a.AddVis(0, 2)
	a.AddVis(1, 2)
	var viol *OCCViolation
	err := CheckOCC(a, mvr())
	if err == nil || !errors.As(err, &viol) {
		t.Fatalf("expected OCC violation, got %v", err)
	}
	if viol.Read != 2 {
		t.Fatalf("violation at read %d", viol.Read)
	}
}

func TestCheckOCCRejectsWitnessVisibleToBoth(t *testing.T) {
	// The would-be witnesses are visible to BOTH writes, violating
	// condition 3: no qualifying witness pair remains.
	b := abstract.New()
	b.Append(model.DoEvent(0, "y1", model.Write("b1"), model.OKResponse())) // 0: w'1
	b.Append(model.DoEvent(1, "y0", model.Write("b0"), model.OKResponse())) // 1: w'0
	b.Append(model.DoEvent(0, "x", model.Write("w0"), model.OKResponse()))  // 2: w0
	b.Append(model.DoEvent(1, "x", model.Write("w1"), model.OKResponse()))  // 3: w1
	b.Append(model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"w0", "w1"})))
	b.AddVis(0, 2) // session
	b.AddVis(1, 3) // session
	b.AddVis(0, 3) // w'1 visible to w1 too
	b.AddVis(1, 2) // w'0 visible to w0 too
	for _, j := range []int{0, 1, 2, 3} {
		b.AddVis(j, 4)
	}
	if err := CheckOCC(b, mvr()); err == nil {
		t.Fatal("expected OCC rejection")
	}
}

func TestCheckOCCRejectsCondition4(t *testing.T) {
	// A concurrent write ŵ to the witness object is visible to w1 but not to
	// the witness w'1, breaking condition 4 — the ŵ hiding channel of 3b.
	a := abstract.New()
	a.Append(model.DoEvent(0, "y1", model.Write("b1"), model.OKResponse()))   // 0: w'1
	a.Append(model.DoEvent(0, "x", model.Write("w0"), model.OKResponse()))    // 1: w0
	a.Append(model.DoEvent(1, "y1", model.Write("what"), model.OKResponse())) // 2: ŵ on y1
	a.Append(model.DoEvent(1, "y0", model.Write("b0"), model.OKResponse()))   // 3: w'0
	a.Append(model.DoEvent(1, "x", model.Write("w1"), model.OKResponse()))    // 4: w1
	a.Append(model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"w0", "w1"})))
	a.AddVis(0, 1)
	a.AddVis(2, 3)
	a.AddVis(2, 4)
	a.AddVis(3, 4)
	for _, j := range []int{0, 1, 2, 3, 4} {
		a.AddVis(j, 5)
	}
	if err := CheckOCC(a, mvr()); err == nil {
		t.Fatal("expected condition 4 rejection")
	}
}

func TestCheckOCCIgnoresSingletonReads(t *testing.T) {
	a := causalChain()
	if err := CheckOCC(a, mvr()); err != nil {
		t.Fatalf("singleton reads need no witnesses: %v", err)
	}
}

func TestCheckOCCRejectsDuplicateWriteValues(t *testing.T) {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("v"), model.OKResponse()))
	a.Append(model.DoEvent(1, "x", model.Write("v"), model.OKResponse()))
	a.Append(model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"v"})))
	a.AddVis(0, 2)
	if err := CheckOCC(a, mvr()); err == nil {
		t.Fatal("expected distinct-values rejection")
	}
}

func TestBlindSuffixAndEventualWindow(t *testing.T) {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(1, "x", model.Read(), model.ReadResponse(nil))) // blind
	a.Append(model.DoEvent(1, "x", model.Read(), model.ReadResponse(nil))) // blind
	a.AddVis(1, 2)
	if got := BlindSuffix(a, 0); got != 2 {
		t.Fatalf("blind suffix = %d, want 2", got)
	}
	if err := CheckEventualWindow(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := CheckEventualWindow(a, 1); err == nil {
		t.Fatal("expected lag-bound violation")
	}
}

func TestCheckConvergedSuffix(t *testing.T) {
	a := abstract.New()
	a.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	a.Append(model.DoEvent(1, "x", model.Read(), model.ReadResponse([]model.Value{"a"})))
	a.AddVis(0, 1)
	if err := CheckConvergedSuffix(a, 1); err != nil {
		t.Fatal(err)
	}
	b := abstract.New()
	b.Append(model.DoEvent(0, "x", model.Write("a"), model.OKResponse()))
	b.Append(model.DoEvent(1, "x", model.Read(), model.ReadResponse(nil)))
	if err := CheckConvergedSuffix(b, 1); err == nil {
		t.Fatal("expected blind post-quiescence read rejection")
	}
}

func TestStronger(t *testing.T) {
	occ := occWitnessed()
	chain := causalChain()
	sample := []*abstract.Execution{occ, chain}
	inOCC := func(a *abstract.Execution) bool { return CheckOCC(a, mvr()) == nil }
	inCausal := func(a *abstract.Execution) bool { return CheckCausal(a, mvr()) == nil }
	subset, strict := Stronger(sample, inOCC, inCausal)
	if !subset {
		t.Fatal("OCC should be a subset of causal on this sample")
	}
	// Both sample executions are OCC, so strictness is not witnessed here.
	_ = strict

	// An unwitnessed exposure is causal but not OCC: strictness witnessed.
	unwitnessed := abstract.New()
	unwitnessed.Append(model.DoEvent(0, "x", model.Write("w0"), model.OKResponse()))
	unwitnessed.Append(model.DoEvent(1, "x", model.Write("w1"), model.OKResponse()))
	unwitnessed.Append(model.DoEvent(2, "x", model.Read(), model.ReadResponse([]model.Value{"w0", "w1"})))
	unwitnessed.AddVis(0, 2)
	unwitnessed.AddVis(1, 2)
	subset, strict = Stronger(append(sample, unwitnessed), inOCC, inCausal)
	if !subset || !strict {
		t.Fatalf("OCC should be strictly stronger: subset=%v strict=%v", subset, strict)
	}
}

func TestEvaluateAggregates(t *testing.T) {
	v := Evaluate(occWitnessed(), mvr(), 5)
	if v.Valid != nil || v.Correct != nil || v.Causal != nil || v.OCC != nil || v.Eventual != nil {
		t.Fatalf("verdict = %+v", v)
	}
}
