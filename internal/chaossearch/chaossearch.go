// Package chaossearch searches the fault.Schedule seed space adversarially:
// instead of sampling schedules uniformly (the storetest chaos battery), it
// hill-climbs toward the schedules that stress a store the most under a
// pluggable objective — longest convergence stall, heaviest
// retransmit/reconnect pressure, most redelivered frames, or closest
// approach to a checker violation.
//
// The motivation is the adversary of the paper's own proofs: Theorem 6's
// recursion hand-crafts the delivery schedule that forces OCC-maximal
// behaviour, and verification work on causal consistency (Bouajjani et al.)
// finds that the interesting executions are adversarially chosen, not
// random. The search keeps every candidate inside the model's obligations —
// every evaluated schedule must pass fault.Schedule.CheckBalanced, so
// eventual delivery (Definition 3) survives the adversary and quiescence
// (Definition 17) remains reachable; the adversary maximizes the COST of
// convergence, never prevents it.
//
// Mechanically the search reuses the level-synchronized parallel frontier of
// internal/explore: each level's candidate seeds are evaluated by a worker
// pool into index-addressed slots (dedup through explore.VisitedSet, seeds
// derived with gen.SplitSeed), and a single-threaded merge ranks them in
// canonical order — so results are byte-identical for any worker count.
// Level 0 is uniform sampling; each later level expands the global
// top-BeamWidth survivors into BranchFactor children each (elitist beam),
// topping the frontier up with fresh uniform seeds so the full budget is
// always spent and the search can never do worse than the sampling it
// replaces. Evaluation runs on the fast path (sim.RunScheduled with a
// metrics Observer attached); Validate optionally re-runs a found schedule
// on the real TCP cluster.
package chaossearch

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/store"
)

// Objective names what the search maximizes.
type Objective string

const (
	// ObjConvergence maximizes convergence latency: the deliveries and
	// rounds quiescence still required after the schedule ended (Lemma 3's
	// cost, in logical work).
	ObjConvergence Objective = "convergence"
	// ObjRetransmits maximizes retransmission pressure: deliveries blocked
	// by cuts/stalls/crashes on the fast path, plus actual retransmits and
	// reconnects when validated on the TCP cluster.
	ObjRetransmits Objective = "retransmits"
	// ObjRedelivery maximizes redelivered traffic: duplicated broadcast
	// copies and dup/gap frames receivers had to dedup or wait out.
	ObjRedelivery Objective = "redelivery"
	// ObjViolations maximizes checker-violation proximity: found §4
	// violations dominate, stress proxies break ties among clean runs.
	ObjViolations Objective = "violations"
	// ObjChurn maximizes membership-churn cost: the anti-entropy catch-up
	// work joins force (weighted heaviest), the churn directives applied,
	// and the residual quiesce work — the schedules where leaving and
	// rejoining at the worst moments hurts the most.
	ObjChurn Objective = "churn"
)

// Objectives lists every registered objective, in canonical order.
func Objectives() []Objective {
	return []Objective{ObjConvergence, ObjRetransmits, ObjRedelivery, ObjViolations, ObjChurn}
}

// ParseObjective resolves an -objective flag value.
func ParseObjective(s string) (Objective, error) {
	for _, o := range Objectives() {
		if s == string(o) {
			return o, nil
		}
	}
	return "", fmt.Errorf("chaossearch: unknown objective %q (have %v)", s, Objectives())
}

// Score collapses one metrics record to the objective's scalar. Scores are
// derived from deterministic counters only, so a candidate's score is a
// pure function of (store, seed, schedule config).
func Score(obj Objective, m fault.Metrics) int64 {
	switch obj {
	case ObjConvergence:
		return m.QuiesceDeliveries*8 + m.QuiesceRounds
	case ObjRetransmits:
		return m.Blocked + m.Retransmits + m.Reconnects
	case ObjRedelivery:
		return m.DupCopies + m.DupFrames + m.GapFrames
	case ObjViolations:
		return m.Violations*1_000_000 + m.Blocked + m.QuiesceDeliveries
	case ObjChurn:
		return m.SyncUpdates*4 + m.Leaves + m.Joins + m.QuiesceDeliveries
	}
	return 0
}

// Config parameterizes one search.
type Config struct {
	// Store is the store under attack.
	Store store.Store
	// Seed is the root seed; every candidate schedule seed, uniform
	// baseline seed, and workload stream is split from it.
	Seed int64
	// Nodes, Steps, Partitions, Crashes, LinkFaults, and Churns shape
	// every candidate schedule (fault.Config); zero fields take the
	// canonical chaos-battery values (3 nodes, 150 steps, 2 partitions, 2
	// crashes, 3 link faults, 2 leave→join windows). Note crash and churn
	// victims are disjoint, so Crashes+Churns is capped at Nodes.
	Nodes      int
	Steps      int
	Partitions int
	Crashes    int
	LinkFaults int
	Churns     int
	// Objective selects the score (default ObjConvergence).
	Objective Objective
	// Budget is the total number of schedule evaluations (default 64).
	Budget int
	// BeamWidth and BranchFactor shape the frontier: each level expands
	// the top BeamWidth survivors into BranchFactor children each
	// (defaults 4 and 8).
	BeamWidth    int
	BranchFactor int
	// Parallel is the evaluation worker count (default 1). The result is
	// identical for every value.
	Parallel int
}

func (cfg Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&cfg.Nodes, 3)
	def(&cfg.Steps, 150)
	def(&cfg.Partitions, 2)
	def(&cfg.Crashes, 2)
	def(&cfg.LinkFaults, 3)
	def(&cfg.Churns, 2)
	def(&cfg.Budget, 64)
	def(&cfg.BeamWidth, 4)
	def(&cfg.BranchFactor, 8)
	def(&cfg.Parallel, 1)
	if cfg.Objective == "" {
		cfg.Objective = ObjConvergence
	}
	return cfg
}

// Sample is one evaluated candidate: a schedule seed, its metrics record,
// and the objective score.
type Sample struct {
	Seed    int64         `json:"seed"`
	Score   int64         `json:"score"`
	Ops     int           `json:"ops"`
	Metrics fault.Metrics `json:"metrics"`
}

// Result is a completed search.
type Result struct {
	Objective Objective
	// Best is the highest-scoring evaluated candidate.
	Best Sample
	// Samples holds every evaluation, ranked score-descending (seed
	// ascending on ties) — the canonical order the merge phase maintains.
	Samples []Sample
	// Levels and Evals count frontier levels and evaluations performed.
	Levels int
	Evals  int
}

// Seed streams, decorrelated from each other and from every other stream
// constant in the repository (scheduleStream -7001, workers 0..k).
const (
	uniformStream  = -8101 // level-0 and refill uniform candidates
	baselineStream = -8102 // Baseline's control samples
	workloadStream = -8103 // per-candidate sim workload stream
)

// searchObjects is the object pool every evaluation workload operates on.
var searchObjects = []model.ObjectID{"x", "y", "z"}

// Schedule returns the fault schedule a candidate seed denotes under cfg.
func (cfg Config) Schedule(seed int64) fault.Schedule {
	cfg = cfg.withDefaults()
	return fault.Generate(fault.Config{
		Seed: seed, N: cfg.Nodes, Steps: cfg.Steps,
		Partitions: cfg.Partitions, Crashes: cfg.Crashes, LinkFaults: cfg.LinkFaults,
		Churns: cfg.Churns,
	})
}

// evaluate scores one candidate seed on the fast path: generate its
// schedule, run the scheduled workload in the simulator with an Observer
// attached, quiesce (instrumented — the quiesce work IS the convergence
// latency), surface aged reads for ReadAger stores, and collect the record.
// A pure function of (cfg, seed): no wall clock, no shared state.
func (cfg Config) evaluate(seed int64) (Sample, error) {
	sched := cfg.Schedule(seed)
	if err := sched.CheckBalanced(); err != nil {
		return Sample{}, fmt.Errorf("chaossearch: seed %d generated an unbalanced schedule: %w", seed, err)
	}
	obs := fault.NewObserver(cfg.Nodes)
	cl := sim.NewCluster(cfg.Store, cfg.Nodes, gen.SplitSeed(seed, workloadStream))
	cl.SetObserver(obs)
	ops := cl.RunScheduled(sched, sim.WorkloadConfig{Objects: searchObjects, Steps: cfg.Steps})
	cl.Quiesce()
	if ra, ok := cfg.Store.(store.ReadAger); ok {
		for round := 0; round < ra.ExtraReadRounds(); round++ {
			for _, obj := range searchObjects {
				cl.ReadAll(obj)
			}
			cl.Quiesce()
		}
	}
	if err := cl.CheckConverged(searchObjects); err != nil {
		// Scheduled runs are never lossy, so divergence here is a real
		// finding — surface it instead of scoring it.
		return Sample{}, fmt.Errorf("chaossearch: seed %d: %w", seed, err)
	}
	obs.SetViolations(int64(len(cl.PropertyViolations())))
	m := obs.Metrics()
	return Sample{Seed: seed, Score: Score(cfg.Objective, m), Ops: ops, Metrics: m}, nil
}

// evalAll evaluates a frontier of seeds into index-addressed slots, using
// the explore engine's worker discipline: workers race only for slot
// indices, results land at their canonical position, and the caller's
// single-threaded merge does everything order-sensitive. Identical output
// for any worker count.
func (cfg Config) evalAll(seeds []int64) ([]Sample, error) {
	out := make([]Sample, len(seeds))
	errs := make([]error, len(seeds))
	workers := cfg.Parallel
	if workers > len(seeds) {
		workers = len(seeds)
	}
	if workers <= 1 {
		for i, s := range seeds {
			out[i], errs[i] = cfg.evaluate(s)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(seeds) {
						return
					}
					out[i], errs[i] = cfg.evaluate(seeds[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rank sorts samples score-descending, seed-ascending on ties: the total
// order every parallelism level reproduces.
func rank(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Score != samples[j].Score {
			return samples[i].Score > samples[j].Score
		}
		return samples[i].Seed < samples[j].Seed
	})
}

// Search runs the beam search and returns the ranked evaluations.
func Search(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("chaossearch: Config.Store is required")
	}
	seen := explore.NewVisitedSet(64)
	key := func(s int64) string { return strconv.FormatInt(s, 10) }
	uniformRoot := gen.SplitSeed(cfg.Seed, uniformStream)
	nextUniform := 0

	res := &Result{Objective: cfg.Objective}
	var all []Sample
	for res.Evals < cfg.Budget {
		want := cfg.BeamWidth * cfg.BranchFactor
		if want > cfg.Budget-res.Evals {
			want = cfg.Budget - res.Evals
		}
		var frontier []int64
		// Children of the global top-BeamWidth survivors (elitist beam).
		// Level 0 has no survivors yet, so it is pure uniform sampling.
		for b := 0; b < cfg.BeamWidth && b < len(all) && len(frontier) < want; b++ {
			for j := 0; j < cfg.BranchFactor && len(frontier) < want; j++ {
				child := gen.SplitSeed(all[b].Seed, j+1)
				if seen.Add(key(child)) {
					frontier = append(frontier, child)
				}
			}
		}
		// Top up with fresh uniform candidates: the budget is always fully
		// spent, and the search's best can never fall below what uniform
		// sampling of the same budget would have found.
		for len(frontier) < want {
			u := gen.SplitSeed(uniformRoot, nextUniform)
			nextUniform++
			if seen.Add(key(u)) {
				frontier = append(frontier, u)
			}
		}
		samples, err := cfg.evalAll(frontier)
		if err != nil {
			return nil, err
		}
		all = append(all, samples...)
		rank(all)
		res.Evals += len(samples)
		res.Levels++
	}
	res.Samples = all
	res.Best = all[0]
	return res, nil
}

// Baseline evaluates cfg.Budget uniformly sampled schedule seeds from a
// stream decorrelated from the search's own, in draw order: the control
// the search must beat (its best should exceed the baseline's median —
// see MedianScore).
func Baseline(cfg Config) ([]Sample, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("chaossearch: Config.Store is required")
	}
	root := gen.SplitSeed(cfg.Seed, baselineStream)
	seeds := make([]int64, cfg.Budget)
	for i := range seeds {
		seeds[i] = gen.SplitSeed(root, i)
	}
	return cfg.evalAll(seeds)
}

// MedianScore returns the nearest-rank (lower) median of the samples'
// scores, and the maximum.
func MedianScore(samples []Sample) (median, max int64) {
	if len(samples) == 0 {
		return 0, 0
	}
	scores := make([]int64, len(samples))
	for i, s := range samples {
		scores[i] = s.Score
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i] < scores[j] })
	return scores[(len(scores)-1)/2], scores[len(scores)-1]
}

// Validate re-runs one found schedule on the real TCP cluster: a
// supervised loopback cluster under the same directives, client load
// riding along, transport metrics collected through the same Observer
// hook. Wall-clock scheduling makes these counts nondeterministic — they
// corroborate the simulator's ranking (a schedule that blocks deliveries
// on the fast path forces retransmits and reconnects here), they do not
// reproduce it byte for byte.
func Validate(cfg Config, seed int64, tick time.Duration) (fault.Metrics, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return fault.Metrics{}, errors.New("chaossearch: Config.Store is required")
	}
	sched := cfg.Schedule(seed)
	obs := fault.NewObserver(cfg.Nodes)
	em := fault.NewNetem(cfg.Nodes)
	base := cluster.Config{Store: cfg.Store, Seed: cfg.Seed, Observer: obs}
	sup, err := cluster.NewSupervisor(base, cfg.Nodes, em, tick)
	if err != nil {
		return fault.Metrics{}, err
	}
	defer sup.Close()

	done := make(chan error, 1)
	go func() { done <- sup.RunSchedule(sched) }()
	i := 0
load:
	for {
		select {
		case err := <-done:
			if err != nil {
				return fault.Metrics{}, err
			}
			break load
		default:
		}
		obj := searchObjects[i%len(searchObjects)]
		val := model.Value(fmt.Sprintf("w%d", i))
		_, err := sup.Do(i%cfg.Nodes, obj, model.Write(val))
		if err != nil && !errors.Is(err, cluster.ErrNodeDown) && !errors.Is(err, cluster.ErrClosed) {
			return fault.Metrics{}, err
		}
		i++
		time.Sleep(tick)
	}
	if !cluster.WaitQuiesced(sup.Nodes(), 30*time.Second) {
		return fault.Metrics{}, errors.New("chaossearch: cluster did not quiesce after the schedule")
	}
	doers := make([]cluster.Doer, cfg.Nodes)
	for j := range doers {
		doers[j] = sup.Doer(j)
	}
	if ra, ok := cfg.Store.(store.ReadAger); ok {
		for round := 0; round < ra.ExtraReadRounds(); round++ {
			for _, d := range doers {
				for _, obj := range searchObjects {
					if _, err := d.Do(obj, model.Read()); err != nil {
						return fault.Metrics{}, err
					}
				}
			}
		}
		if !cluster.WaitQuiesced(sup.Nodes(), 30*time.Second) {
			return fault.Metrics{}, errors.New("chaossearch: cluster did not re-quiesce after aged reads")
		}
	}
	if err := cluster.CheckConverged(doers, searchObjects); err != nil {
		return fault.Metrics{}, err
	}
	return obs.Metrics(), nil
}
