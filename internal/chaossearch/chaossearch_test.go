package chaossearch

import (
	"encoding/json"
	"testing"

	"repro/internal/spec"
	"repro/internal/store/causal"
	"repro/internal/store/gsp"
	"repro/internal/store/kbuffer"
)

func testConfig(budget int) Config {
	return Config{
		Store:  causal.New(spec.MVRTypes()),
		Seed:   1,
		Steps:  100,
		Budget: budget,
	}
}

// TestSearchDeterministicAcrossParallel: the ranked result is a pure
// function of the config — byte-identical for every worker count.
func TestSearchDeterministicAcrossParallel(t *testing.T) {
	var want []byte
	for _, parallel := range []int{1, 2, 4} {
		cfg := testConfig(24)
		cfg.Parallel = parallel
		res, err := Search(cfg)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("parallel=%d result differs from parallel=1:\n%s\nvs\n%s", parallel, got, want)
		}
	}
}

// TestSearchBeatsUniformMedian: the acceptance criterion — for each
// objective the searched best strictly exceeds the median of an equal
// budget of uniform samples. An elitist beam with uniform refill can tie
// the uniform MAX at worst, but its best should clear the median easily;
// anything else means the expansion step is not climbing.
func TestSearchBeatsUniformMedian(t *testing.T) {
	for _, obj := range Objectives() {
		cfg := testConfig(32)
		cfg.Objective = obj
		if obj == ObjViolations {
			// Violations need a store that can actually violate §4
			// properties under chaos.
			cfg.Store = gsp.New(spec.MVRTypes())
		}
		res, err := Search(cfg)
		if err != nil {
			t.Fatalf("%s: search: %v", obj, err)
		}
		base, err := Baseline(cfg)
		if err != nil {
			t.Fatalf("%s: baseline: %v", obj, err)
		}
		median, max := MedianScore(base)
		if res.Best.Score <= median {
			t.Errorf("%s: best searched score %d does not beat uniform median %d (uniform max %d)",
				obj, res.Best.Score, median, max)
		}
	}
}

// TestSearchSpendsBudget: exactly Budget evaluations, no more, no fewer —
// the uniform refill guarantees a full frontier even when beam children
// collide with already-visited seeds.
func TestSearchSpendsBudget(t *testing.T) {
	for _, budget := range []int{1, 7, 32, 50} {
		res, err := Search(testConfig(budget))
		if err != nil {
			t.Fatal(err)
		}
		if res.Evals != budget || len(res.Samples) != budget {
			t.Fatalf("budget %d: Evals=%d len(Samples)=%d", budget, res.Evals, len(res.Samples))
		}
		if res.Best.Seed != res.Samples[0].Seed || res.Best.Score != res.Samples[0].Score {
			t.Fatalf("budget %d: Best is not the top-ranked sample", budget)
		}
	}
}

// TestSearchedSchedulesBalanced is the window-balance property test: every
// schedule the search visits — beam children included, not just the
// uniform stream Generate's own tests cover — satisfies CheckBalanced, so
// the adversary can never learn to violate eventual delivery.
func TestSearchedSchedulesBalanced(t *testing.T) {
	cfg := testConfig(48)
	cfg.Store = kbuffer.New(spec.MVRTypes(), 2)
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, s := range res.Samples {
		if seen[s.Seed] {
			t.Errorf("seed %d evaluated twice — visited-set dedup broken", s.Seed)
		}
		seen[s.Seed] = true
		if err := cfg.Schedule(s.Seed).CheckBalanced(); err != nil {
			t.Errorf("seed %d: %v", s.Seed, err)
		}
	}
}

// TestBaselineDecorrelated: the control stream shares no seeds with the
// search, otherwise beating the median would be circular.
func TestBaselineDecorrelated(t *testing.T) {
	cfg := testConfig(16)
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	searched := make(map[int64]bool)
	for _, s := range res.Samples {
		searched[s.Seed] = true
	}
	for _, b := range base {
		if searched[b.Seed] {
			t.Fatalf("baseline seed %d also appears in the search", b.Seed)
		}
	}
}

func TestParseObjective(t *testing.T) {
	for _, o := range Objectives() {
		got, err := ParseObjective(string(o))
		if err != nil || got != o {
			t.Fatalf("ParseObjective(%q) = %v, %v", o, got, err)
		}
	}
	if _, err := ParseObjective("latency"); err == nil {
		t.Fatal("ParseObjective accepted an unknown objective")
	}
}
