package gsp_test

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/gsp"
	"repro/internal/store/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, storetest.Config{
		Factory:          func() store.Store { return gsp.New(spec.MVRTypes()) },
		InvisibleReads:   true,
		OpDrivenMessages: false, // violated by design: the sequencer commits on receive
		Converges:        true,
		// The sequencer assigns positions in arrival order, so delivery
		// order is semantically significant.
		SkipDeliveryCommutation: true,
	})
}
