package gsp

import (
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
)

// FuzzReceive feeds arbitrary bytes to both the sequencer and a follower.
func FuzzReceive(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x01})
	src := New(spec.MVRTypes()).NewReplica(1, 3)
	src.Do("x", model.Write("a"))
	f.Add(src.PendingMessage())
	f.Fuzz(func(t *testing.T, payload []byte) {
		for _, id := range []model.ReplicaID{0, 2} {
			r := New(spec.MVRTypes()).NewReplica(id, 3)
			r.Receive(payload)
			_ = r.Do("x", model.Read())
			_ = r.StateDigest()
			_ = r.PendingMessage()
		}
	})
}
