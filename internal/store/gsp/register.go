package gsp

import (
	"repro/internal/spec"
	"repro/internal/store"
)

func init() {
	store.Register("gsp", func(types spec.Types, _ store.Options) store.Store {
		return New(types)
	})
}

// ViolatesProperties implements store.PropertyViolator: the sequencer
// generates commit messages in response to received proposals, violating
// Definition 15 by design.
func (s *Store) ViolatesProperties() bool { return true }

// Conformance implements store.ConformanceReporter: commit messages are not
// op-driven, and the sequencer assigns global positions in arrival order, so
// delivery order is semantically significant.
func (s *Store) Conformance() store.Conformance {
	return store.Conformance{
		ViolatesOpDrivenMessages: true,
		OrdersDeliveries:         true,
	}
}
