// Package gsp implements a Global Sequence Protocol store (Burckhardt,
// Leijen, Protzenko, Fähndrich — ECOOP'15, the paper's [11]): a sequencer
// replica assigns every write a position in one global sequence, and every
// replica applies writes in exactly that order.
//
// The store probes the paper's open question about the op-driven-messages
// assumption (§5.3, §7). GSP deliberately VIOLATES Definition 15: the
// sequencer generates a commit message in response to a received proposal,
// not in response to a client operation. In exchange it guarantees a
// property no write-propagating store can have — all replicas observe
// writes in one agreed total order (confirmed logs are prefixes of each
// other), so concurrency is never exposed and the store satisfies a
// consistency model stronger than OCC on its histories. Reads remain
// invisible and operations remain highly available: a write is acknowledged
// immediately and visible locally (read-your-writes via the pending
// overlay) before confirmation.
//
// The liveness trade is the one the paper describes: GSP is eventually
// consistent only while the sequencer remains reachable — weaker fault
// tolerance than write-propagating gossip, which is exactly why Theorem 6's
// scope excludes it.
//
// All objects behave as registers ordered by the global sequence (the
// protocol's defining choice); MVR-typed objects therefore return a single
// value — GSP is a "hiding" store, but a globally consistent one.
package gsp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/wire"
)

// SequencerID is the replica that orders writes.
const SequencerID model.ReplicaID = 0

// Store is the GSP store factory.
type Store struct {
	types spec.Types
}

var _ store.Store = (*Store)(nil)

// New returns a GSP store. Object types are retained for auditing; the
// protocol serves register semantics in global-sequence order.
func New(types spec.Types) *Store { return &Store{types: types} }

// Name implements store.Store.
func (s *Store) Name() string { return "gsp" }

// WireCodec implements store.PayloadCodec: payloads are varint-encoded
// proposal/commit records, safe for binary wire framing.
func (s *Store) WireCodec() string { return "binary" }

// Types implements store.Store.
func (s *Store) Types() spec.Types { return s.types }

// NewReplica implements store.Store.
func (s *Store) NewReplica(id model.ReplicaID, n int) store.Replica {
	return &Replica{
		id:        id,
		types:     s.types,
		confirmed: make(map[model.ObjectID]confirmedState),
		commitBuf: make(map[uint64]updateRec),
		seenProps: make(map[model.Dot]bool),
	}
}

// updateRec is one write traveling as a proposal or a commit.
type updateRec struct {
	Origin   model.ReplicaID
	LocalSeq uint64 // the proposal dot: origin's LocalSeq-th write
	Obj      model.ObjectID
	Kind     model.OpKind
	Value    model.Value
	Delta    int64
}

func (u updateRec) dot() model.Dot { return model.Dot{Origin: u.Origin, Seq: u.LocalSeq} }

// confirmedState is the register/counter state of one object under the
// confirmed prefix.
type confirmedState struct {
	value model.Value
	set   bool
	total int64
}

// wire record kinds.
const (
	recPropose = 1
	recCommit  = 2
)

type outRec struct {
	kind      int
	globalSeq uint64 // for commits
	u         updateRec
}

// Replica is one GSP replica. Replica SequencerID is the sequencer.
type Replica struct {
	id    model.ReplicaID
	types spec.Types

	// Confirmed prefix: applied commits in global order.
	confirmedLen  uint64
	confirmedLog  []model.Dot
	confirmed     map[model.ObjectID]confirmedState
	confirmedDots map[model.Dot]bool

	// Out-of-order commits waiting for their predecessors.
	commitBuf map[uint64]updateRec

	// Own unconfirmed writes, overlaid on reads (read-your-writes).
	pending  []updateRec
	localSeq uint64

	// Sequencer-only: proposals already sequenced (deduplication) and the
	// next global sequence number.
	seenProps map[model.Dot]bool
	nextSeq   uint64

	outbox []outRec
}

var (
	_ store.Replica     = (*Replica)(nil)
	_ store.VisReporter = (*Replica)(nil)
	_ store.DotReporter = (*Replica)(nil)
)

// ID implements store.Replica.
func (r *Replica) ID() model.ReplicaID { return r.id }

// isSequencer reports whether this replica orders writes.
func (r *Replica) isSequencer() bool { return r.id == SequencerID }

// Log returns the confirmed global order as proposal dots — identical (as a
// prefix relation) across all replicas at all times, and identical outright
// after quiescence. This is the property no write-propagating store
// provides.
func (r *Replica) Log() []model.Dot {
	out := make([]model.Dot, len(r.confirmedLog))
	copy(out, r.confirmedLog)
	return out
}

// Sees implements store.VisReporter: confirmed writes plus own pending ones.
func (r *Replica) Sees(d model.Dot) bool {
	if r.confirmedDots[d] {
		return true
	}
	for _, u := range r.pending {
		if u.dot() == d {
			return true
		}
	}
	return false
}

// LastDot implements store.DotReporter.
func (r *Replica) LastDot() (model.Dot, bool) {
	if r.localSeq == 0 {
		return model.Dot{}, false
	}
	return model.Dot{Origin: r.id, Seq: r.localSeq}, true
}

// Do implements store.Replica.
func (r *Replica) Do(obj model.ObjectID, op model.Operation) model.Response {
	switch op.Kind {
	case model.OpRead:
		return r.read(obj)
	case model.OpWrite, model.OpInc:
		r.localSeq++
		u := updateRec{Origin: r.id, LocalSeq: r.localSeq, Obj: obj, Kind: op.Kind, Value: op.Arg, Delta: op.Delta}
		if r.isSequencer() {
			// The sequencer's own writes commit immediately.
			r.seenProps[u.dot()] = true
			r.commit(r.nextSeq, u)
			r.outbox = append(r.outbox, outRec{kind: recCommit, globalSeq: r.nextSeq, u: u})
			r.nextSeq++
		} else {
			r.pending = append(r.pending, u)
			r.outbox = append(r.outbox, outRec{kind: recPropose, u: u})
		}
		return model.OKResponse()
	default:
		return model.Response{} // GSP serves registers and counters only
	}
}

// read evaluates the confirmed state with the replica's own pending writes
// overlaid in issue order.
func (r *Replica) read(obj model.ObjectID) model.Response {
	st := r.confirmed[obj]
	value, set, total := st.value, st.set, st.total
	for _, u := range r.pending {
		if u.Obj != obj {
			continue
		}
		switch u.Kind {
		case model.OpWrite:
			value, set = u.Value, true
		case model.OpInc:
			total += u.Delta
		}
	}
	if r.types.Of(obj) == spec.TypeCounter {
		return model.CountResponse(total)
	}
	if !set {
		return model.ReadResponse(nil)
	}
	return model.ReadResponse([]model.Value{value})
}

// commit applies one update at its global position. Callers guarantee
// in-order application.
func (r *Replica) commit(globalSeq uint64, u updateRec) {
	if globalSeq != r.confirmedLen {
		panic(fmt.Sprintf("gsp: commit %d applied at prefix length %d", globalSeq, r.confirmedLen))
	}
	r.confirmedLen++
	r.confirmedLog = append(r.confirmedLog, u.dot())
	if r.confirmedDots == nil {
		r.confirmedDots = make(map[model.Dot]bool)
	}
	r.confirmedDots[u.dot()] = true
	st := r.confirmed[u.Obj]
	switch u.Kind {
	case model.OpWrite:
		st.value, st.set = u.Value, true
	case model.OpInc:
		st.total += u.Delta
	}
	r.confirmed[u.Obj] = st
	// Confirmed own writes leave the pending overlay.
	if u.Origin == r.id {
		kept := r.pending[:0]
		for _, p := range r.pending {
			if p.dot() != u.dot() {
				kept = append(kept, p)
			}
		}
		r.pending = kept
	}
}

// drainCommits applies buffered commits that became in-order.
func (r *Replica) drainCommits() {
	for {
		seq := r.confirmedLen
		u, ok := r.commitBuf[seq]
		if !ok {
			return
		}
		delete(r.commitBuf, seq)
		r.commit(seq, u)
	}
}

// Receive implements store.Replica. The sequencer turns proposals into
// commits — creating a pending message in response to a receive, the
// deliberate Definition 15 violation; every replica applies commits in
// global order, buffering gaps.
func (r *Replica) Receive(payload []byte) {
	recs, err := decodePayload(payload)
	if err != nil {
		return
	}
	for _, rec := range recs {
		switch rec.kind {
		case recPropose:
			if !r.isSequencer() || r.seenProps[rec.u.dot()] {
				continue
			}
			r.seenProps[rec.u.dot()] = true
			r.commit(r.nextSeq, rec.u)
			r.outbox = append(r.outbox, outRec{kind: recCommit, globalSeq: r.nextSeq, u: rec.u})
			r.nextSeq++
		case recCommit:
			if rec.globalSeq < r.confirmedLen || r.confirmedDots[rec.u.dot()] {
				continue // duplicate
			}
			if rec.globalSeq == r.confirmedLen {
				r.commit(rec.globalSeq, rec.u)
				r.drainCommits()
			} else {
				r.commitBuf[rec.globalSeq] = rec.u
			}
		}
	}
}

// PendingMessage implements store.Replica.
func (r *Replica) PendingMessage() []byte {
	if len(r.outbox) == 0 {
		return nil
	}
	w := wire.NewWriter()
	w.Uvarint(uint64(len(r.outbox)))
	for _, rec := range r.outbox {
		w.Uvarint(uint64(rec.kind))
		w.Uvarint(rec.globalSeq)
		w.Uvarint(uint64(rec.u.Origin))
		w.Uvarint(rec.u.LocalSeq)
		w.String(string(rec.u.Obj))
		w.Uvarint(uint64(rec.u.Kind))
		w.String(string(rec.u.Value))
		w.Varint(rec.u.Delta)
	}
	return w.Bytes()
}

// OnSend implements store.Replica.
func (r *Replica) OnSend() { r.outbox = nil }

func decodePayload(payload []byte) ([]outRec, error) {
	rd := wire.NewReader(payload)
	count := rd.Uvarint()
	if count > uint64(len(payload)) {
		return nil, fmt.Errorf("gsp: implausible record count %d", count)
	}
	recs := make([]outRec, 0, count)
	for i := uint64(0); i < count; i++ {
		var rec outRec
		rec.kind = int(rd.Uvarint())
		rec.globalSeq = rd.Uvarint()
		rec.u.Origin = model.ReplicaID(rd.Uvarint())
		rec.u.LocalSeq = rd.Uvarint()
		rec.u.Obj = model.ObjectID(rd.String())
		rec.u.Kind = model.OpKind(rd.Uvarint())
		rec.u.Value = model.Value(rd.String())
		rec.u.Delta = rd.Varint()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// StateDigest implements store.Replica.
func (r *Replica) StateDigest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confirmed=%d localSeq=%d nextSeq=%d\n", r.confirmedLen, r.localSeq, r.nextSeq)
	fmt.Fprintf(&b, "log=%v\n", r.confirmedLog)
	objIDs := make([]string, 0, len(r.confirmed))
	for id := range r.confirmed {
		objIDs = append(objIDs, string(id))
	}
	sort.Strings(objIDs)
	for _, id := range objIDs {
		st := r.confirmed[model.ObjectID(id)]
		fmt.Fprintf(&b, "obj %s: %s set=%v total=%d\n", id, st.value, st.set, st.total)
	}
	fmt.Fprintf(&b, "pending=%v bufferedCommits=%d outbox=%d\n", dots(r.pending), len(r.commitBuf), len(r.outbox))
	return b.String()
}

func dots(us []updateRec) []model.Dot {
	out := make([]model.Dot, len(us))
	for i, u := range us {
		out[i] = u.dot()
	}
	return out
}
