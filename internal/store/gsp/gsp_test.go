package gsp

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store/causal"
)

func trio(t *testing.T) (*Replica, *Replica, *Replica) {
	t.Helper()
	st := New(spec.MVRTypes())
	r0, ok0 := st.NewReplica(0, 3).(*Replica) // sequencer
	r1, ok1 := st.NewReplica(1, 3).(*Replica)
	r2, ok2 := st.NewReplica(2, 3).(*Replica)
	if !ok0 || !ok1 || !ok2 {
		t.Fatal("unexpected replica type")
	}
	return r0, r1, r2
}

// pump broadcasts every pending message and delivers to all peers until no
// replica has anything to send.
func pump(replicas ...*Replica) {
	for {
		sent := false
		for _, from := range replicas {
			payload := from.PendingMessage()
			if payload == nil {
				continue
			}
			from.OnSend()
			sent = true
			for _, to := range replicas {
				if to != from {
					to.Receive(payload)
				}
			}
		}
		if !sent {
			return
		}
	}
}

func TestReadYourWritesBeforeConfirmation(t *testing.T) {
	_, r1, _ := trio(t)
	r1.Do("x", model.Write("a"))
	if got := r1.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("pending write invisible locally: %s", got)
	}
}

func TestSequencerOrdersAllWrites(t *testing.T) {
	r0, r1, r2 := trio(t)
	r1.Do("x", model.Write("a"))
	r2.Do("x", model.Write("b"))
	pump(r0, r1, r2)
	l0, l1, l2 := r0.Log(), r1.Log(), r2.Log()
	if len(l0) != 2 || len(l1) != 2 || len(l2) != 2 {
		t.Fatalf("logs: %v %v %v", l0, l1, l2)
	}
	for i := range l0 {
		if l0[i] != l1[i] || l0[i] != l2[i] {
			t.Fatalf("confirmed orders differ: %v %v %v", l0, l1, l2)
		}
	}
	// Everyone converges to the same single value — no exposed concurrency.
	g0 := r0.Do("x", model.Read())
	g1 := r1.Do("x", model.Read())
	g2 := r2.Do("x", model.Read())
	if !g0.Equal(g1) || !g0.Equal(g2) || len(g0.Values) != 1 {
		t.Fatalf("reads: %s %s %s", g0, g1, g2)
	}
}

func TestSequencerOwnWritesCommitImmediately(t *testing.T) {
	r0, _, _ := trio(t)
	r0.Do("x", model.Write("a"))
	if len(r0.Log()) != 1 {
		t.Fatalf("log = %v", r0.Log())
	}
	if got := r0.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestCommitsApplyInOrderWithBuffering(t *testing.T) {
	r0, r1, _ := trio(t)
	r0.Do("x", model.Write("a"))
	c1 := r0.PendingMessage()
	r0.OnSend()
	r0.Do("x", model.Write("b"))
	c2 := r0.PendingMessage()
	r0.OnSend()
	// Deliver out of order: the second commit must buffer.
	r1.Receive(c2)
	if len(r1.Log()) != 0 {
		t.Fatalf("out-of-order commit applied: %v", r1.Log())
	}
	if got := r1.Do("x", model.Read()); len(got.Values) != 0 {
		t.Fatalf("read exposed buffered commit: %s", got)
	}
	r1.Receive(c1)
	if len(r1.Log()) != 2 {
		t.Fatalf("drain failed: %v", r1.Log())
	}
	if got := r1.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestDuplicateProposalSequencedOnce(t *testing.T) {
	r0, r1, _ := trio(t)
	r1.Do("x", model.Write("a"))
	p := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p)
	r0.OnSend() // discard the commit broadcast
	r0.Receive(p)
	if len(r0.Log()) != 1 {
		t.Fatalf("duplicate proposal sequenced twice: %v", r0.Log())
	}
}

func TestDuplicateCommitIgnored(t *testing.T) {
	r0, r1, _ := trio(t)
	r0.Do("x", model.Write("a"))
	c := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(c)
	before := r1.StateDigest()
	r1.Receive(c)
	if r1.StateDigest() != before {
		t.Fatal("duplicate commit changed state")
	}
}

func TestViolatesOpDrivenMessagesAtSequencer(t *testing.T) {
	// The defining Definition 15 violation: receiving a proposal creates a
	// pending commit at the sequencer.
	c := sim.NewCluster(New(spec.MVRTypes()), 3, 1)
	c.Do(1, "x", model.Write("a"))
	c.Send(1)
	c.DeliverOne(0) // sequencer receives the proposal
	found := false
	for _, v := range c.PropertyViolations() {
		if v.Property == "op-driven messages" && v.Replica == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("GSP's op-driven-messages violation went undetected")
	}
}

func TestReadsRemainInvisible(t *testing.T) {
	r0, r1, r2 := trio(t)
	r1.Do("x", model.Write("a"))
	pump(r0, r1, r2)
	before := r2.StateDigest()
	r2.Do("x", model.Read())
	r2.Do("other", model.Read())
	if r2.StateDigest() != before {
		t.Fatal("GSP read changed state")
	}
}

func TestCounterThroughGlobalSequence(t *testing.T) {
	types := spec.Types{DefaultType: spec.TypeCounter}
	st := New(types)
	r0 := st.NewReplica(0, 2).(*Replica)
	r1 := st.NewReplica(1, 2).(*Replica)
	r0.Do("c", model.Inc(5))
	r1.Do("c", model.Inc(-2))
	pump(r0, r1)
	want := model.CountResponse(3)
	if got := r0.Do("c", model.Read()); !got.Equal(want) {
		t.Fatalf("r0 counter = %s", got)
	}
	if got := r1.Do("c", model.Read()); !got.Equal(want) {
		t.Fatalf("r1 counter = %s", got)
	}
}

func TestUnsupportedOperationRejected(t *testing.T) {
	_, r1, _ := trio(t)
	if got := r1.Do("s", model.Add("e")); got.OK {
		t.Fatal("GSP should not acknowledge set operations")
	}
}

func TestPrefixAgreementUnderRandomWorkload(t *testing.T) {
	c := sim.NewCluster(New(spec.MVRTypes()), 4, 17)
	objs := []model.ObjectID{"x", "y"}
	c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 300})
	c.Quiesce()
	if err := c.CheckConverged(objs); err != nil {
		t.Fatal(err)
	}
	// Confirmed logs agree exactly after quiescence.
	base, ok := c.Replica(0).(*Replica)
	if !ok {
		t.Fatal("unexpected replica type")
	}
	for r := 1; r < c.N(); r++ {
		rep := c.Replica(model.ReplicaID(r)).(*Replica)
		l0, lr := base.Log(), rep.Log()
		if len(l0) != len(lr) {
			t.Fatalf("log lengths differ: %d vs %d", len(l0), len(lr))
		}
		for i := range l0 {
			if l0[i] != lr[i] {
				t.Fatalf("global order differs at %d: %v vs %v", i, l0[i], lr[i])
			}
		}
	}
}

func TestCorruptPayloadIgnored(t *testing.T) {
	_, r1, _ := trio(t)
	before := r1.StateDigest()
	r1.Receive([]byte{0xff, 0xff})
	if r1.StateDigest() != before {
		t.Fatal("corrupt payload changed state")
	}
}

func TestSeesPendingAndConfirmed(t *testing.T) {
	r0, r1, _ := trio(t)
	r1.Do("x", model.Write("a"))
	dot, _ := r1.LastDot()
	if !r1.Sees(dot) {
		t.Fatal("own pending write invisible")
	}
	if r0.Sees(dot) {
		t.Fatal("unconfirmed write visible remotely")
	}
	pump(r0, r1)
	if !r0.Sees(dot) {
		t.Fatal("confirmed write invisible at sequencer")
	}
}

// TestSequencerPartitionBlocksConvergence demonstrates the liveness trade
// GSP makes (the §5.3 comparison: one-way convergence / GSP-style liveness
// is weaker than gossip): with the sequencer isolated, the connected
// majority cannot converge — proposals have nowhere to be ordered — whereas
// a write-propagating store converges within any connected component.
func TestSequencerPartitionBlocksConvergence(t *testing.T) {
	c := sim.NewCluster(New(spec.MVRTypes()), 3, 1)
	c.Partition([]model.ReplicaID{1, 2}) // sequencer 0 isolated
	c.Do(1, "x", model.Write("a"))
	c.Do(2, "x", model.Write("b"))
	c.Send(1)
	c.Send(2)
	for c.DeliverOne(1) || c.DeliverOne(2) {
	}
	// Each replica sees only its own pending write: no agreement.
	g1 := c.Do(1, "x", model.Read())
	g2 := c.Do(2, "x", model.Read())
	if g1.Equal(g2) {
		t.Fatalf("unexpected agreement without the sequencer: %s vs %s", g1, g2)
	}
	// Healing restores liveness: the sequencer orders the buffered
	// proposals and everyone converges.
	c.Heal()
	c.Quiesce()
	g1 = c.Do(1, "x", model.Read())
	g2 = c.Do(2, "x", model.Read())
	if !g1.Equal(g2) || len(g1.Values) != 1 {
		t.Fatalf("no convergence after healing: %s vs %s", g1, g2)
	}
}

// TestWritePropagatingStoreConvergesWithoutAnyCoordinator is the contrast:
// the same partition scenario converges within the connected component for
// the causal store — no distinguished replica is needed.
func TestWritePropagatingStoreConvergesWithoutAnyCoordinator(t *testing.T) {
	c := sim.NewCluster(causal.New(spec.MVRTypes()), 3, 1)
	c.Partition([]model.ReplicaID{1, 2}) // replica 0 isolated, irrelevant
	c.Do(1, "x", model.Write("a"))
	c.Do(2, "x", model.Write("b"))
	c.Send(1)
	c.Send(2)
	for c.DeliverOne(1) || c.DeliverOne(2) {
	}
	g1 := c.Do(1, "x", model.Read())
	g2 := c.Do(2, "x", model.Read())
	if !g1.Equal(g2) || len(g1.Values) != 2 {
		t.Fatalf("connected component did not converge: %s vs %s", g1, g2)
	}
}
