package statesync

import (
	"repro/internal/spec"
	"repro/internal/store"
)

func init() {
	store.Register("statesync", func(types spec.Types, _ store.Options) store.Store {
		return New(types)
	})
}
