package statesync

import (
	"repro/internal/spec"
	"repro/internal/store"
)

func init() {
	store.Register("statesync", func(types spec.Types, _ store.Options) store.Store {
		return New(types)
	})
}

// ConvergesUnderLoss implements store.LossConverger: every broadcast carries
// the replica's full state, so any post-loss mutation's message subsumes all
// previously dropped ones and convergence survives genuine message loss.
func (s *Store) ConvergesUnderLoss() bool { return true }
