package statesync

import (
	"fmt"
	"testing"

	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store/causal"
)

func pair(t *testing.T, types spec.Types) (*Replica, *Replica) {
	t.Helper()
	st := New(types)
	r0, ok0 := st.NewReplica(0, 2).(*Replica)
	r1, ok1 := st.NewReplica(1, 2).(*Replica)
	if !ok0 || !ok1 {
		t.Fatal("unexpected replica type")
	}
	return r0, r1
}

func sync(t *testing.T, from, to *Replica) {
	t.Helper()
	payload := from.PendingMessage()
	if payload == nil {
		t.Fatal("expected a pending state")
	}
	from.OnSend()
	to.Receive(payload)
}

func TestWriteReadBack(t *testing.T) {
	r0, _ := pair(t, spec.MVRTypes())
	r0.Do("x", model.Write("a"))
	if got := r0.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestStatePropagates(t *testing.T) {
	r0, r1 := pair(t, spec.MVRTypes())
	r0.Do("x", model.Write("a"))
	r0.Do("y", model.Write("b"))
	sync(t, r0, r1)
	if got := r1.Do("y", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestConcurrentMVRSiblings(t *testing.T) {
	r0, r1 := pair(t, spec.MVRTypes())
	r0.Do("x", model.Write("a"))
	r1.Do("x", model.Write("b"))
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	want := model.ReadResponse([]model.Value{"a", "b"})
	if got := r0.Do("x", model.Read()); !got.Equal(want) {
		t.Fatalf("r0 = %s", got)
	}
	if got := r1.Do("x", model.Read()); !got.Equal(want) {
		t.Fatalf("r1 = %s", got)
	}
}

func TestCausalOverwriteCollapses(t *testing.T) {
	r0, r1 := pair(t, spec.MVRTypes())
	r0.Do("x", model.Write("a"))
	sync(t, r0, r1)
	r1.Do("x", model.Write("b"))
	sync(t, r1, r0)
	if got := r0.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestJoinIsIdempotent(t *testing.T) {
	r0, r1 := pair(t, spec.MVRTypes())
	r0.Do("x", model.Write("a"))
	payload := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(payload)
	before := r1.StateDigest()
	r1.Receive(payload)
	r1.Receive(payload)
	if r1.StateDigest() != before {
		t.Fatal("join not idempotent")
	}
}

func TestDropRecovery(t *testing.T) {
	// The defining property: a LOST state message is subsumed by any later
	// one.
	r0, r1 := pair(t, spec.MVRTypes())
	r0.Do("x", model.Write("a"))
	_ = r0.PendingMessage() // dropped on the floor
	r0.OnSend()
	r0.Do("y", model.Write("b"))
	sync(t, r0, r1) // only the later message arrives
	if got := r1.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("earlier write lost despite later state message: %s", got)
	}
}

func TestORSetObservedRemoveSticksAcrossJoins(t *testing.T) {
	types := spec.Types{DefaultType: spec.TypeORSet}
	r0, r1 := pair(t, types)
	r0.Do("s", model.Add("e"))
	sync(t, r0, r1)
	r1.Do("s", model.Remove("e"))
	sync(t, r1, r0)
	if got := r0.Do("s", model.Read()); len(got.Values) != 0 {
		t.Fatalf("removed element resurrected: %s", got)
	}
	// The stale adder's next state must not resurrect the element either.
	r0.Do("other", model.Add("z"))
	sync(t, r0, r1)
	if got := r1.Do("s", model.Read()); len(got.Values) != 0 {
		t.Fatalf("stale state resurrected the element: %s", got)
	}
}

func TestORSetConcurrentAddWins(t *testing.T) {
	types := spec.Types{DefaultType: spec.TypeORSet}
	r0, r1 := pair(t, types)
	r0.Do("s", model.Add("e"))
	sync(t, r0, r1)
	r1.Do("s", model.Remove("e"))
	r0.Do("s", model.Add("e")) // concurrent re-add
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	want := model.ReadResponse([]model.Value{"e"})
	if got := r0.Do("s", model.Read()); !got.Equal(want) {
		t.Fatalf("r0 = %s", got)
	}
	if got := r1.Do("s", model.Read()); !got.Equal(want) {
		t.Fatalf("r1 = %s", got)
	}
}

func TestCounterJoin(t *testing.T) {
	types := spec.Types{DefaultType: spec.TypeCounter}
	r0, r1 := pair(t, types)
	r0.Do("c", model.Inc(5))
	r0.Do("c", model.Inc(-1))
	r1.Do("c", model.Inc(-2))
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	want := model.CountResponse(2)
	if got := r0.Do("c", model.Read()); !got.Equal(want) {
		t.Fatalf("r0 = %s", got)
	}
	if got := r1.Do("c", model.Read()); !got.Equal(want) {
		t.Fatalf("r1 = %s", got)
	}
}

func TestRegisterLWWJoin(t *testing.T) {
	types := spec.Types{DefaultType: spec.TypeRegister}
	r0, r1 := pair(t, types)
	r0.Do("reg", model.Write("a"))
	r1.Do("reg", model.Write("b"))
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	g0 := r0.Do("reg", model.Read())
	g1 := r1.Do("reg", model.Read())
	if !g0.Equal(g1) || len(g0.Values) != 1 {
		t.Fatalf("register diverged: %s vs %s", g0, g1)
	}
}

func TestInvisibleReadsAndOpDriven(t *testing.T) {
	r0, r1 := pair(t, spec.MVRTypes())
	if r0.PendingMessage() != nil {
		t.Fatal("initial pending state")
	}
	r0.Do("x", model.Write("a"))
	sync(t, r0, r1)
	if r1.PendingMessage() != nil {
		t.Fatal("receive created a pending state (Definition 15 violated)")
	}
	before := r1.StateDigest()
	r1.Do("x", model.Read())
	r1.Do("nothere", model.Read())
	if r1.StateDigest() != before {
		t.Fatal("read changed state (Definition 16 violated)")
	}
}

func TestConvergesUnderHeavyDrops(t *testing.T) {
	// The op-based causal store cannot converge past dropped updates; the
	// state-based store reconverges from any later message. After the lossy
	// phase each replica mutates once more and broadcasts loss-free.
	runLossy := func(st interface {
		Name() string
	}, cluster *sim.Cluster, objs []model.ObjectID) error {
		cluster.SetFaults(sim.Faults{DropProb: 0.7})
		cluster.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 120, MutateRatio: 0.8})
		cluster.SetFaults(sim.Faults{})
		for r := 0; r < cluster.N(); r++ {
			cluster.Do(model.ReplicaID(r), objs[0], model.Write(model.Value("final-"+st.Name()+string(rune('0'+r)))))
		}
		cluster.Quiesce()
		return cluster.CheckConverged(objs)
	}

	objs := []model.ObjectID{"x", "y"}
	ss := New(spec.MVRTypes())
	if err := runLossy(ss, sim.NewCluster(ss, 3, 5), objs); err != nil {
		t.Fatalf("statesync failed to reconverge: %v", err)
	}

	cs := causal.New(spec.MVRTypes())
	err := runLossy(cs, sim.NewCluster(cs, 3, 5), objs)
	if err == nil {
		t.Log("op-based store happened to converge despite drops (all lost updates were to the final-write object)")
	} else {
		t.Logf("op-based store diverged as expected: %v", err)
	}
}

func TestDerivedAbstractCausal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := sim.NewCluster(New(spec.MVRTypes()), 3, seed)
		objs := []model.ObjectID{"x", "y"}
		c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 100})
		c.Quiesce()
		if err := c.CheckConverged(objs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a := c.DerivedAbstract()
		if err := consistency.CheckCausal(a, spec.MVRTypes()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v := c.PropertyViolations(); len(v) != 0 {
			t.Fatalf("seed %d: %v", seed, v)
		}
	}
}

func TestCorruptPayloadIgnored(t *testing.T) {
	_, r1 := pair(t, spec.MVRTypes())
	before := r1.StateDigest()
	r1.Receive([]byte{0xff, 0xff, 0x03})
	if r1.StateDigest() != before {
		t.Fatal("corrupt payload changed state")
	}
}

func TestMessageSizeGrowsWithState(t *testing.T) {
	r0, _ := pair(t, spec.MVRTypes())
	r0.Do("x", model.Write("a"))
	small := len(r0.PendingMessage())
	r0.OnSend()
	for i := 0; i < 50; i++ {
		r0.Do(model.ObjectID(fmt.Sprintf("obj%d", i)), model.Write(model.Value(fmt.Sprintf("v%d", i))))
	}
	large := len(r0.PendingMessage())
	if large <= small*3 {
		t.Fatalf("full-state message did not grow: %d vs %d bytes", small, large)
	}
}
