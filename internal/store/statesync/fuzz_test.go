package statesync

import (
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
)

// FuzzReceive feeds arbitrary bytes to a state-based replica: joins of
// undecodable payloads must be no-ops and never panic.
func FuzzReceive(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00})
	src := New(spec.MVRTypes()).NewReplica(0, 2)
	src.Do("x", model.Write("a"))
	src.Do("s", model.Write("b"))
	f.Add(src.PendingMessage())
	f.Fuzz(func(t *testing.T, payload []byte) {
		r := New(spec.MVRTypes()).NewReplica(1, 2)
		r.Receive(payload)
		_ = r.Do("x", model.Read())
		_ = r.StateDigest()
	})
}
