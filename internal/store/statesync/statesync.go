// Package statesync implements a state-based (convergent/CvRDT) replicated
// store: instead of shipping individual updates, every broadcast carries the
// replica's full object state, and receiving is a join in a semilattice —
// idempotent, commutative, and associative.
//
// The store is the propagation-strategy counterpoint to store/causal (which
// is op-based/CmRDT): both are write-propagating in the paper's sense
// (invisible reads, op-driven messages — a full-state message is still only
// pending after a client mutator), both are causally consistent (a joined
// state is causally closed: it carries its entire causal context), but they
// fail differently under message loss. A dropped op-based update is gone
// forever — the causal store never converges past it — while any LATER
// state-based message subsumes everything lost before it, so statesync
// reconverges after arbitrary drops. The price is message size: Θ(total
// state) per broadcast instead of Θ(delta), the trade-off the Theorem 12
// measurements quantify from the other side.
//
// Supported object types: MVRs (version sets pruned under dependency
// domination), LWW registers, ORsets (dot-context optimized, no tombstones),
// and PN-counters (per-origin positive/negative vectors).
package statesync

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Store is the state-based store factory.
type Store struct {
	types spec.Types
}

var _ store.Store = (*Store)(nil)

// New returns a state-based store serving the given object types.
func New(types spec.Types) *Store { return &Store{types: types} }

// Name implements store.Store.
func (s *Store) Name() string { return "statesync" }

// WireCodec implements store.PayloadCodec: payloads are the varint-encoded
// full-state lattice elements, safe for binary wire framing.
func (s *Store) WireCodec() string { return "binary" }

// Types implements store.Store.
func (s *Store) Types() spec.Types { return s.types }

// NewReplica implements store.Store.
func (s *Store) NewReplica(id model.ReplicaID, n int) store.Replica {
	return &Replica{
		id:      id,
		n:       n,
		types:   s.types,
		clock:   vclock.New(n),
		objects: make(map[model.ObjectID]*objState),
	}
}

// version is one surviving MVR write.
type version struct {
	Value model.Value
	Dot   model.Dot
	Deps  vclock.VC
}

// objState is the lattice state of one object.
type objState struct {
	typ spec.ObjectType

	versions []version // MVR: concurrent writes

	regValue  model.Value // register: LWW by (lamport, origin)
	regTS     uint64
	regOrigin model.ReplicaID
	regSet    bool

	adds map[model.Value]map[model.Dot]bool // ORset: live add-dots

	pos, neg vclock.VC // counter: per-origin increment/decrement totals
}

// Replica is one state-based replica. Its whole state is a join-semilattice
// element: (clock, objects) with pointwise joins.
type Replica struct {
	id      model.ReplicaID
	n       int
	types   spec.Types
	lamport uint64
	// clock is the causal context: clock[i] counts replica i's mutators
	// reflected in this state. It doubles as the ORset dot context.
	clock   vclock.VC
	objects map[model.ObjectID]*objState
	dirty   bool // a mutator occurred since the last broadcast
}

var (
	_ store.Replica     = (*Replica)(nil)
	_ store.VisReporter = (*Replica)(nil)
	_ store.DotReporter = (*Replica)(nil)
)

// ID implements store.Replica.
func (r *Replica) ID() model.ReplicaID { return r.id }

// Sees implements store.VisReporter. The state-based causal context is not
// always a contiguous prefix per origin? It is: local mutators are
// contiguous, and joins take pointwise max of contiguous contexts, which
// stays contiguous. So dot coverage is exact.
func (r *Replica) Sees(d model.Dot) bool { return r.clock.Sees(d) }

// LastDot implements store.DotReporter.
func (r *Replica) LastDot() (model.Dot, bool) {
	seq := r.clock.Get(r.id)
	if seq == 0 {
		return model.Dot{}, false
	}
	return model.Dot{Origin: r.id, Seq: seq}, true
}

func (r *Replica) object(id model.ObjectID) *objState {
	st, ok := r.objects[id]
	if !ok {
		st = newObjState(r.types.Of(id), r.n)
		r.objects[id] = st
	}
	return st
}

func newObjState(typ spec.ObjectType, n int) *objState {
	st := &objState{typ: typ}
	if typ == spec.TypeORSet {
		st.adds = make(map[model.Value]map[model.Dot]bool)
	}
	if typ == spec.TypeCounter {
		st.pos = vclock.New(n)
		st.neg = vclock.New(n)
	}
	return st
}

// Do implements store.Replica.
func (r *Replica) Do(obj model.ObjectID, op model.Operation) model.Response {
	if op.Kind == model.OpRead {
		if st, ok := r.objects[obj]; ok {
			return read(st)
		}
		return read(newObjState(r.types.Of(obj), r.n))
	}
	st := r.object(obj)
	if !spec.ForType(st.typ).Allows(op.Kind) {
		return model.Response{}
	}
	deps := r.clock.Clone()
	dot := model.Dot{Origin: r.id, Seq: r.clock.Inc(r.id)}
	r.lamport++
	r.dirty = true
	switch op.Kind {
	case model.OpWrite:
		switch st.typ {
		case spec.TypeMVR:
			kept := st.versions[:0]
			for _, v := range st.versions {
				if !deps.Sees(v.Dot) {
					kept = append(kept, v)
				}
			}
			st.versions = append(kept, version{Value: op.Arg, Dot: dot, Deps: deps})
		case spec.TypeRegister:
			st.regValue, st.regTS, st.regOrigin, st.regSet = op.Arg, r.lamport, r.id, true
		}
	case model.OpAdd:
		dots := st.adds[op.Arg]
		if dots == nil {
			dots = make(map[model.Dot]bool)
			st.adds[op.Arg] = dots
		}
		dots[dot] = true
	case model.OpRemove:
		// Observed remove: drop the locally visible add-dots. The dots stay
		// covered by the clock (the dot context), which is what makes the
		// removal stick across joins without tombstones.
		delete(st.adds, op.Arg)
	case model.OpInc:
		if op.Delta >= 0 {
			st.pos.Set(r.id, st.pos.Get(r.id)+uint64(op.Delta))
		} else {
			st.neg.Set(r.id, st.neg.Get(r.id)+uint64(-op.Delta))
		}
	}
	return model.OKResponse()
}

func read(st *objState) model.Response {
	switch st.typ {
	case spec.TypeMVR:
		values := make([]model.Value, 0, len(st.versions))
		for _, v := range st.versions {
			values = append(values, v.Value)
		}
		return model.ReadResponse(values)
	case spec.TypeRegister:
		if !st.regSet {
			return model.ReadResponse(nil)
		}
		return model.ReadResponse([]model.Value{st.regValue})
	case spec.TypeORSet:
		var values []model.Value
		for v, dots := range st.adds {
			if len(dots) > 0 {
				values = append(values, v)
			}
		}
		return model.ReadResponse(values)
	case spec.TypeCounter:
		return model.CountResponse(int64(st.pos.Sum()) - int64(st.neg.Sum()))
	default:
		return model.Response{}
	}
}

// PendingMessage implements store.Replica: the full state, pending iff a
// mutator occurred since the last broadcast (op-driven messages hold).
func (r *Replica) PendingMessage() []byte {
	if !r.dirty {
		return nil
	}
	return r.encode()
}

// OnSend implements store.Replica.
func (r *Replica) OnSend() { r.dirty = false }

// Receive implements store.Replica: decode the remote state and join it in.
func (r *Replica) Receive(payload []byte) {
	remote, err := decode(payload, r.n)
	if err != nil {
		return
	}
	r.join(remote)
}

// join merges a decoded remote state into the local lattice element.
func (r *Replica) join(remote *decoded) {
	if remote.lamport > r.lamport {
		r.lamport = remote.lamport
	}
	for id, rst := range remote.objects {
		lst := r.object(id)
		if lst.typ != rst.typ {
			continue // type confusion: ignore, as with corrupt payloads
		}
		switch lst.typ {
		case spec.TypeMVR:
			// A version survives iff it is not in the other side's causal
			// context, or it is still alive on the side that knows it.
			merged := make([]version, 0, len(lst.versions)+len(rst.versions))
			have := make(map[model.Dot]bool)
			for _, v := range lst.versions {
				have[v.Dot] = true
			}
			remoteHas := make(map[model.Dot]bool)
			for _, v := range rst.versions {
				remoteHas[v.Dot] = true
			}
			for _, v := range lst.versions {
				if remoteHas[v.Dot] || !remote.clock.Sees(v.Dot) {
					merged = append(merged, v)
				}
			}
			for _, v := range rst.versions {
				if !have[v.Dot] && !r.clock.Sees(v.Dot) {
					merged = append(merged, v)
				}
			}
			// Prune versions dominated by other surviving versions.
			lst.versions = pruneDominated(merged)
		case spec.TypeRegister:
			if rst.regSet && (!lst.regSet || rst.regTS > lst.regTS ||
				(rst.regTS == lst.regTS && rst.regOrigin > lst.regOrigin)) {
				lst.regValue, lst.regTS, lst.regOrigin, lst.regSet = rst.regValue, rst.regTS, rst.regOrigin, true
			}
		case spec.TypeORSet:
			// Optimized ORset join with dot contexts: an add-dot survives iff
			// both sides have it, or one side has it and the other has not
			// yet observed it.
			for v, rdots := range rst.adds {
				ldots := lst.adds[v]
				for d := range rdots {
					if (ldots != nil && ldots[d]) || !r.clock.Sees(d) {
						if ldots == nil {
							ldots = make(map[model.Dot]bool)
							lst.adds[v] = ldots
						}
						ldots[d] = true
					}
				}
			}
			for v, ldots := range lst.adds {
				rdots := rst.adds[v]
				for d := range ldots {
					if (rdots == nil || !rdots[d]) && remote.clock.Sees(d) {
						delete(ldots, d)
					}
				}
				if len(ldots) == 0 {
					delete(lst.adds, v)
				}
			}
		case spec.TypeCounter:
			lst.pos.Merge(rst.pos)
			lst.neg.Merge(rst.neg)
		}
	}
	r.clock.Merge(remote.clock)
}

// pruneDominated removes versions whose dot is covered by another surviving
// version's dependencies.
func pruneDominated(versions []version) []version {
	kept := versions[:0]
	for i, v := range versions {
		dominated := false
		for j, w := range versions {
			if i != j && w.Deps.Sees(v.Dot) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, v)
		}
	}
	return kept
}

// decoded is a parsed remote state.
type decoded struct {
	lamport uint64
	clock   vclock.VC
	objects map[model.ObjectID]*objState
}

// encode serializes the full replica state.
func (r *Replica) encode() []byte {
	w := wire.NewWriter()
	w.Uvarint(r.lamport)
	w.VC(r.clock)
	ids := make([]string, 0, len(r.objects))
	for id := range r.objects {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		st := r.objects[model.ObjectID(id)]
		w.String(id)
		w.Uvarint(uint64(st.typ))
		switch st.typ {
		case spec.TypeMVR:
			w.Uvarint(uint64(len(st.versions)))
			for _, v := range st.versions {
				w.String(string(v.Value))
				w.Dot(v.Dot)
				w.VC(v.Deps)
			}
		case spec.TypeRegister:
			w.String(string(st.regValue))
			w.Uvarint(st.regTS)
			w.Uvarint(uint64(st.regOrigin))
			if st.regSet {
				w.Uvarint(1)
			} else {
				w.Uvarint(0)
			}
		case spec.TypeORSet:
			values := make([]string, 0, len(st.adds))
			for v := range st.adds {
				values = append(values, string(v))
			}
			sort.Strings(values)
			w.Uvarint(uint64(len(values)))
			for _, v := range values {
				w.String(v)
				dots := make([]model.Dot, 0, len(st.adds[model.Value(v)]))
				for d := range st.adds[model.Value(v)] {
					dots = append(dots, d)
				}
				sortDots(dots)
				w.Uvarint(uint64(len(dots)))
				for _, d := range dots {
					w.Dot(d)
				}
			}
		case spec.TypeCounter:
			w.VC(st.pos)
			w.VC(st.neg)
		}
	}
	return w.Bytes()
}

func decode(payload []byte, n int) (*decoded, error) {
	rd := wire.NewReader(payload)
	out := &decoded{objects: make(map[model.ObjectID]*objState)}
	out.lamport = rd.Uvarint()
	out.clock = rd.VC()
	count := rd.Uvarint()
	if count > uint64(len(payload)) {
		return nil, fmt.Errorf("statesync: implausible object count %d", count)
	}
	for i := uint64(0); i < count; i++ {
		id := model.ObjectID(rd.String())
		typ := spec.ObjectType(rd.Uvarint())
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		st := newObjState(typ, n)
		switch typ {
		case spec.TypeMVR:
			versions := rd.Uvarint()
			if versions > uint64(len(payload)) {
				return nil, fmt.Errorf("statesync: implausible version count %d", versions)
			}
			for j := uint64(0); j < versions; j++ {
				var v version
				v.Value = model.Value(rd.String())
				v.Dot = rd.Dot()
				v.Deps = rd.VC()
				st.versions = append(st.versions, v)
			}
		case spec.TypeRegister:
			st.regValue = model.Value(rd.String())
			st.regTS = rd.Uvarint()
			st.regOrigin = model.ReplicaID(rd.Uvarint())
			st.regSet = rd.Uvarint() == 1
		case spec.TypeORSet:
			values := rd.Uvarint()
			if values > uint64(len(payload)) {
				return nil, fmt.Errorf("statesync: implausible value count %d", values)
			}
			for j := uint64(0); j < values; j++ {
				v := model.Value(rd.String())
				dotCount := rd.Uvarint()
				if dotCount > uint64(len(payload)) {
					return nil, fmt.Errorf("statesync: implausible dot count %d", dotCount)
				}
				dots := make(map[model.Dot]bool, dotCount)
				for k := uint64(0); k < dotCount; k++ {
					dots[rd.Dot()] = true
				}
				st.adds[v] = dots
			}
		case spec.TypeCounter:
			st.pos = rd.VC()
			st.neg = rd.VC()
		default:
			return nil, fmt.Errorf("statesync: unknown object type %d", typ)
		}
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		out.objects[id] = st
	}
	return out, rd.Err()
}

func sortDots(ds []model.Dot) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Origin != ds[j].Origin {
			return ds[i].Origin < ds[j].Origin
		}
		return ds[i].Seq < ds[j].Seq
	})
}

// StateDigest implements store.Replica: the canonical encoding plus the
// dirty flag (broadcast obligations are replica state too).
func (r *Replica) StateDigest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dirty=%v\n", r.dirty)
	b.Write(r.encode())
	return b.String()
}
