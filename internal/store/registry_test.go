package store_test

import (
	"strings"
	"testing"

	// The cli package's blank imports register every store; importing it here
	// keeps this test aligned with what the commands actually see.
	_ "repro/internal/cli"
	"repro/internal/spec"
	"repro/internal/store"
)

func TestRegistryHasEveryStore(t *testing.T) {
	want := []string{"causal", "causal-perupdate", "causal-sparse", "gsp", "kbuffer", "lww", "statesync"}
	got := store.Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("registered names = %v, want %v", got, want)
	}
	for _, name := range want {
		st, err := store.Open(name, spec.MVRTypes(), store.Options{K: 2})
		if err != nil {
			t.Fatalf("Open(%s): %v", name, err)
		}
		if st == nil {
			t.Fatalf("Open(%s) returned a nil store", name)
		}
	}
}

func TestOpenUnknownStoreListsNames(t *testing.T) {
	_, err := store.Open("nope", spec.MVRTypes(), store.Options{})
	if err == nil {
		t.Fatal("expected an error for an unknown store")
	}
	if !strings.Contains(err.Error(), "causal") || !strings.Contains(err.Error(), "gsp") {
		t.Fatalf("error should list the registered stores: %v", err)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	store.Register("causal", func(types spec.Types, opts store.Options) store.Store { return nil })
}

// TestStoreTraits pins the trait interfaces the explorer keys on: the
// K-buffer store ages reads and legitimately violates §4 properties, gsp
// violates op-driven messages, and the well-behaved stores declare neither.
func TestStoreTraits(t *testing.T) {
	violators := map[string]bool{"kbuffer": true, "gsp": true}
	agers := map[string]int{"kbuffer": 3}
	for _, name := range store.Names() {
		st, err := store.Open(name, spec.MVRTypes(), store.Options{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		pv, ok := st.(store.PropertyViolator)
		if got := ok && pv.ViolatesProperties(); got != violators[name] {
			t.Errorf("%s: ViolatesProperties = %v, want %v", name, got, violators[name])
		}
		ra, ok := st.(store.ReadAger)
		got := 0
		if ok {
			got = ra.ExtraReadRounds()
		}
		if got != agers[name] {
			t.Errorf("%s: ExtraReadRounds = %d, want %d", name, got, agers[name])
		}
	}
}
