package store

import (
	"strconv"
	"testing"

	"repro/internal/model"
)

// fakeReplica is a scriptable replica for exercising the property checkers.
type fakeReplica struct {
	id            model.ReplicaID
	digest        string
	pending       []byte
	mutateOnRead  bool
	pendOnReceive bool
	reads         int
}

func (f *fakeReplica) ID() model.ReplicaID { return f.id }

func (f *fakeReplica) Do(obj model.ObjectID, op model.Operation) model.Response {
	if op.Kind == model.OpRead {
		f.reads++
		if f.mutateOnRead {
			f.digest = "read" + strconv.Itoa(f.reads)
		}
		return model.ReadResponse(nil)
	}
	f.digest += "w"
	f.pending = []byte{1}
	return model.OKResponse()
}

func (f *fakeReplica) PendingMessage() []byte { return f.pending }
func (f *fakeReplica) OnSend()                { f.pending = nil }
func (f *fakeReplica) Receive(payload []byte) {
	if f.pendOnReceive {
		f.pending = []byte{2}
	}
}
func (f *fakeReplica) StateDigest() string { return f.digest }

func TestCheckerCleanReplica(t *testing.T) {
	f := &fakeReplica{id: 1}
	c := NewPropertyChecker(f)
	c.CheckDo("x", model.Write("a"), func() model.Response { return f.Do("x", model.Write("a")) })
	c.CheckDo("x", model.Read(), func() model.Response { return f.Do("x", model.Read()) })
	c.CheckReceive(nil, func() { f.Receive(nil) })
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("violations: %v", c.Violations())
	}
}

func TestCheckerFlagsInitialPending(t *testing.T) {
	f := &fakeReplica{id: 2, pending: []byte{9}}
	c := NewPropertyChecker(f)
	if c.Err() == nil {
		t.Fatal("initial pending message undetected")
	}
}

func TestCheckerFlagsVisibleRead(t *testing.T) {
	f := &fakeReplica{id: 3, mutateOnRead: true}
	c := NewPropertyChecker(f)
	c.CheckDo("x", model.Read(), func() model.Response { return f.Do("x", model.Read()) })
	err := c.Err()
	if err == nil {
		t.Fatal("visible read undetected")
	}
	var pv *PropertyViolation
	if !asViolation(err, &pv) || pv.Property != "invisible reads" || pv.Replica != 3 {
		t.Fatalf("violation = %v", err)
	}
}

func asViolation(err error, target **PropertyViolation) bool {
	pv, ok := err.(*PropertyViolation)
	if ok {
		*target = pv
	}
	return ok
}

func TestCheckerIgnoresWriteStateChanges(t *testing.T) {
	f := &fakeReplica{id: 4}
	c := NewPropertyChecker(f)
	c.CheckDo("x", model.Write("a"), func() model.Response { return f.Do("x", model.Write("a")) })
	if c.Err() != nil {
		t.Fatal("writes may change state")
	}
}

func TestCheckerFlagsMessageDrivenMessages(t *testing.T) {
	f := &fakeReplica{id: 5, pendOnReceive: true}
	c := NewPropertyChecker(f)
	c.CheckReceive([]byte{1}, func() { f.Receive([]byte{1}) })
	err := c.Err()
	if err == nil {
		t.Fatal("message-driven message undetected")
	}
	var pv *PropertyViolation
	if !asViolation(err, &pv) || pv.Property != "op-driven messages" {
		t.Fatalf("violation = %v", err)
	}
}

func TestCheckerAllowsPendingThroughReceive(t *testing.T) {
	// Definition 15(2) only forbids creating a pending message where none
	// existed; keeping one pending is fine.
	f := &fakeReplica{id: 6, pendOnReceive: true}
	c := NewPropertyChecker(f)
	f.Do("x", model.Write("a")) // creates pending
	c.CheckReceive([]byte{1}, func() { f.Receive([]byte{1}) })
	if c.Err() != nil {
		t.Fatalf("unexpected violation: %v", c.Err())
	}
}

func TestViolationErrorString(t *testing.T) {
	v := &PropertyViolation{Property: "invisible reads", Replica: 7, Detail: "boom"}
	want := "store: invisible reads violated at r7: boom"
	if v.Error() != want {
		t.Fatalf("error = %q", v.Error())
	}
}
