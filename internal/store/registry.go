package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/spec"
)

// Options carries the store-specific construction knobs a Factory may
// consult. Stores ignore fields that do not apply to them, so one Options
// value can be threaded through a generic CLI surface.
type Options struct {
	// K is the K-buffer read-aging depth (0 means the store default).
	K int
}

// Factory instantiates a registered store for the given object types.
type Factory func(types spec.Types, opts Options) Store

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named store factory to the process-wide registry. Store
// packages call it from init, so importing a store package (directly or via
// internal/cli) makes it addressable by name everywhere — the single source
// of truth replacing per-binary store switch statements. Register panics on
// an empty name or a duplicate registration: both are programmer errors.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("store: Register needs a name and a factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("store: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// Open instantiates the named store, or lists the registered names in its
// error so CLI surfaces get a helpful message for free.
func Open(name string, types spec.Types, opts Options) (Store, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("store: unknown store %q (registered: %v)", name, Names())
	}
	return f(types, opts), nil
}

// Names returns the registered store names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PropertyViolator is implemented by stores that violate the §4
// write-propagating properties BY DESIGN (the K-buffer store's visible
// reads, the GSP sequencer's non-op-driven commits). Drivers that assert
// the properties — the explorer, the conformance battery — consult it
// instead of hard-coding store names.
type PropertyViolator interface {
	ViolatesProperties() bool
}

// ReadAger is implemented by stores whose received updates become visible
// only as local reads elapse (the K-buffer store). Convergence checks must
// perform ExtraReadRounds rounds of reads before asserting Lemma 3 at
// quiescence.
type ReadAger interface {
	ExtraReadRounds() int
}

// LossConverger is implemented by stores that reconverge through genuine
// message loss (the state-sync store: any later broadcast carries the full
// state, subsuming every dropped message). Convergence checkers consult it
// before refusing to assert Lemma 3 on a lossy run — for every other store
// a dropped update is gone, since the model has no retransmission.
type LossConverger interface {
	ConvergesUnderLoss() bool
}

// Conformance declares how a store deviates from the default conformance
// contract, so registry-driven test sweeps (storetest.RunRegistered) can
// derive the right expectations for every registered name without a
// hand-maintained table. The zero value claims the full contract: invisible
// reads, op-driven messages, one send drains the outbox, duplicate
// deliveries are digest-idempotent, and independent deliveries commute.
type Conformance struct {
	// ViolatesInvisibleReads: reads change replica state by design
	// (Definition 16 fails; the K-buffer store).
	ViolatesInvisibleReads bool
	// ViolatesOpDrivenMessages: receives create pending messages by design
	// (Definition 15 fails; the GSP sequencer).
	ViolatesOpDrivenMessages bool
	// ConvergenceReadRounds is how many read rounds expose withheld state
	// before convergence is asserted (0 means one round).
	ConvergenceReadRounds int
	// MaxSendsToDrain bounds consecutive sends needed to empty the outbox
	// (0 means one; per-update batching needs one send per update).
	MaxSendsToDrain int
	// TransientDeliveryState: redelivery is tolerated but not
	// digest-identical (the K-buffer holds duplicate payloads until
	// exposure).
	TransientDeliveryState bool
	// OrdersDeliveries: delivery order is semantically significant, so
	// independent deliveries need not commute (the GSP sequencer assigns
	// positions in arrival order).
	OrdersDeliveries bool
}

// ConformanceReporter is implemented by stores whose conformance deviates
// from the zero-value Conformance contract.
type ConformanceReporter interface {
	Conformance() Conformance
}
