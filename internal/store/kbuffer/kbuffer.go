// Package kbuffer implements the §5.3 counterexample data store: a causal
// store whose reads are NOT invisible. A received message is withheld from
// the underlying causal state until K subsequent local read operations have
// been applied; each read decrements the countdowns (a state change, so
// Definition 16 fails by design).
//
// The store remains eventually consistent and has op-driven messages, yet it
// never produces an execution in which a replica writes and another replica
// immediately reads the value after one message delivery — an execution
// every invisible-reads store admits. It therefore satisfies a consistency
// model STRICTLY stronger than causal consistency (and OCC), demonstrating
// that the invisible-reads assumption of Theorem 6 cannot be dropped.
package kbuffer

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/causal"
)

// Store is the K-buffer store factory.
type Store struct {
	inner *causal.Store
	k     int
}

var _ store.Store = (*Store)(nil)

// New returns a K-buffer store over the given object types: received
// messages are exposed only after k local reads.
func New(types spec.Types, k int) *Store {
	if k < 1 {
		k = 1
	}
	return &Store{inner: causal.New(types), k: k}
}

// Name implements store.Store.
func (s *Store) Name() string { return fmt.Sprintf("kbuffer(k=%d)", s.k) }

// WireCodec implements store.PayloadCodec: payloads are the wrapped causal
// store's varint batches, safe for binary wire framing.
func (s *Store) WireCodec() string { return "binary" }

// Types implements store.Store.
func (s *Store) Types() spec.Types { return s.inner.Types() }

// NewReplica implements store.Store.
func (s *Store) NewReplica(id model.ReplicaID, n int) store.Replica {
	inner, ok := s.inner.NewReplica(id, n).(*causal.Replica)
	if !ok {
		panic("kbuffer: causal store returned unexpected replica type")
	}
	return &Replica{inner: inner, k: s.k}
}

type withheld struct {
	payload   []byte
	countdown int
}

// Replica wraps a causal replica, withholding received payloads until K
// local reads have elapsed.
type Replica struct {
	inner *causal.Replica
	k     int
	held  []withheld
}

var (
	_ store.Replica     = (*Replica)(nil)
	_ store.VisReporter = (*Replica)(nil)
	_ store.DotReporter = (*Replica)(nil)
)

// ID implements store.Replica.
func (r *Replica) ID() model.ReplicaID { return r.inner.ID() }

// Sees implements store.VisReporter: visibility is granted only on exposure.
func (r *Replica) Sees(d model.Dot) bool { return r.inner.Sees(d) }

// LastDot implements store.DotReporter.
func (r *Replica) LastDot() (model.Dot, bool) { return r.inner.LastDot() }

// Do implements store.Replica. A read first ages the withheld messages —
// the state change that makes reads visible — exposing any whose countdown
// has elapsed, then evaluates against the inner state.
func (r *Replica) Do(obj model.ObjectID, op model.Operation) model.Response {
	if op.Kind == model.OpRead {
		kept := r.held[:0]
		for _, h := range r.held {
			h.countdown--
			if h.countdown <= 0 {
				r.inner.Receive(h.payload)
			} else {
				kept = append(kept, h)
			}
		}
		r.held = kept
	}
	return r.inner.Do(obj, op)
}

// PendingMessage implements store.Replica.
func (r *Replica) PendingMessage() []byte { return r.inner.PendingMessage() }

// OnSend implements store.Replica.
func (r *Replica) OnSend() { r.inner.OnSend() }

// Receive implements store.Replica: the payload is withheld for K reads.
func (r *Replica) Receive(payload []byte) {
	p := make([]byte, len(payload))
	copy(p, payload)
	r.held = append(r.held, withheld{payload: p, countdown: r.k})
}

// HeldMessages returns the number of withheld payloads (for tests).
func (r *Replica) HeldMessages() int { return len(r.held) }

// StateDigest implements store.Replica: inner state plus the withheld queue,
// whose countdowns change on every read.
func (r *Replica) StateDigest() string {
	digest := r.inner.StateDigest()
	for i, h := range r.held {
		digest += fmt.Sprintf("held[%d]=%d bytes countdown=%d\n", i, len(h.payload), h.countdown)
	}
	return digest
}
