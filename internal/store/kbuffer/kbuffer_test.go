package kbuffer

import (
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
)

func pair(t *testing.T, k int) (*Replica, *Replica) {
	t.Helper()
	st := New(spec.MVRTypes(), k)
	r0, ok0 := st.NewReplica(0, 2).(*Replica)
	r1, ok1 := st.NewReplica(1, 2).(*Replica)
	if !ok0 || !ok1 {
		t.Fatal("unexpected replica type")
	}
	return r0, r1
}

func TestName(t *testing.T) {
	if got := New(spec.MVRTypes(), 3).Name(); got != "kbuffer(k=3)" {
		t.Fatalf("name = %q", got)
	}
}

func TestKFloorsAtOne(t *testing.T) {
	if got := New(spec.MVRTypes(), 0).Name(); got != "kbuffer(k=1)" {
		t.Fatalf("name = %q", got)
	}
}

func TestWithholdsForKReads(t *testing.T) {
	const k = 3
	r0, r1 := pair(t, k)
	r0.Do("x", model.Write("a"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	if r1.HeldMessages() != 1 {
		t.Fatalf("held = %d", r1.HeldMessages())
	}
	// The first k-1 reads stay blind; the k-th read exposes.
	for i := 1; i < k; i++ {
		if got := r1.Do("x", model.Read()); len(got.Values) != 0 {
			t.Fatalf("read %d exposed early: %s", i, got)
		}
	}
	if got := r1.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("read %d = %s, want exposure", k, got)
	}
	if r1.HeldMessages() != 0 {
		t.Fatalf("held after exposure = %d", r1.HeldMessages())
	}
}

func TestLocalWritesImmediatelyVisible(t *testing.T) {
	r0, _ := pair(t, 5)
	r0.Do("x", model.Write("a"))
	if got := r0.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("own write hidden: %s", got)
	}
}

func TestReadsAreVisible(t *testing.T) {
	r0, r1 := pair(t, 2)
	r0.Do("x", model.Write("a"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	before := r1.StateDigest()
	r1.Do("x", model.Read())
	if r1.StateDigest() == before {
		t.Fatal("read left state unchanged — K-buffer must violate Definition 16")
	}
}

func TestOpDrivenPreserved(t *testing.T) {
	r0, r1 := pair(t, 2)
	r0.Do("x", model.Write("a"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	if r1.PendingMessage() != nil {
		t.Fatal("receive created a pending message")
	}
}

func TestVisibilityGrantedOnlyOnExposure(t *testing.T) {
	r0, r1 := pair(t, 2)
	r0.Do("x", model.Write("a"))
	dot, _ := r0.LastDot()
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	if r1.Sees(dot) {
		t.Fatal("dot visible before exposure")
	}
	r1.Do("x", model.Read())
	r1.Do("x", model.Read())
	if !r1.Sees(dot) {
		t.Fatal("dot invisible after exposure")
	}
}

func TestCountdownSharedAcrossObjects(t *testing.T) {
	// Reads of ANY object age the withheld queue (the §5.3 example counts
	// local read operations, not per-object reads).
	r0, r1 := pair(t, 2)
	r0.Do("x", model.Write("a"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	r1.Do("other", model.Read())
	r1.Do("other", model.Read())
	if got := r1.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("exposure after cross-object reads failed: %s", got)
	}
}

func TestMultipleHeldMessagesExposeInOrder(t *testing.T) {
	r0, r1 := pair(t, 1)
	r0.Do("x", model.Write("a"))
	p1 := r0.PendingMessage()
	r0.OnSend()
	r0.Do("x", model.Write("b"))
	p2 := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p1)
	r1.Receive(p2)
	if got := r1.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("read = %s, want b after both exposures", got)
	}
}

func TestWriteDoesNotAgeCountdown(t *testing.T) {
	r0, r1 := pair(t, 1)
	r0.Do("x", model.Write("a"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	r1.Do("y", model.Write("local"))
	if r1.HeldMessages() != 1 {
		t.Fatal("a write aged the countdown; only reads should")
	}
}

func TestPayloadCopiedOnReceive(t *testing.T) {
	r0, r1 := pair(t, 1)
	r0.Do("x", model.Write("a"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	for i := range p {
		p[i] = 0xff // corrupt the caller's buffer
	}
	if got := r1.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("held payload aliased caller buffer: %s", got)
	}
}
