package kbuffer

import (
	"repro/internal/spec"
	"repro/internal/store"
)

func init() {
	store.Register("kbuffer", func(types spec.Types, opts store.Options) store.Store {
		k := opts.K
		if k == 0 {
			k = 2
		}
		return New(types, k)
	})
}

// ViolatesProperties implements store.PropertyViolator: reads age the
// withheld queue, so Definition 16 fails by design.
func (s *Store) ViolatesProperties() bool { return true }

// ExtraReadRounds implements store.ReadAger: a received update surfaces
// only after K local reads, so convergence checks need K read rounds.
func (s *Store) ExtraReadRounds() int { return s.k }

// Conformance implements store.ConformanceReporter: reads age the withheld
// queue (visible reads by design), K+1 read rounds expose everything, and
// held payloads deduplicate only at exposure time.
func (s *Store) Conformance() store.Conformance {
	return store.Conformance{
		ViolatesInvisibleReads: true,
		ConvergenceReadRounds:  s.k + 1,
		TransientDeliveryState: true,
	}
}
