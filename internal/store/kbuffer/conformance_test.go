package kbuffer_test

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/kbuffer"
	"repro/internal/store/storetest"
)

func TestConformance(t *testing.T) {
	const k = 2
	storetest.Run(t, storetest.Config{
		Factory:          func() store.Store { return kbuffer.New(spec.MVRTypes(), k) },
		InvisibleReads:   false, // violated by design (§5.3)
		OpDrivenMessages: true,
		Converges:        true,
		// K reads must elapse before withheld messages expose.
		ConvergenceReadRounds: k + 1,
		// Held payloads are deduplicated only at exposure time.
		SkipDuplicateIdempotence: true,
	})
}
