package storetest

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/store"
)

// runChaos is the fault-schedule battery: every converging store must ride
// out a seeded schedule of partitions, crash/restart windows, and link
// faults — none of which lose messages — and still converge after
// quiescence (Lemma 3 under Definition 3 delivery). A second subtest layers
// genuine loss on top and checks the verdict matches the store's declared
// loss behavior: ErrLossyRun for ordinary stores, convergence for
// store.LossConverger ones.
func runChaos(t *testing.T, cfg Config) {
	objs := []model.ObjectID{"obj0", "obj1", "obj2"}
	readRounds := func(c *sim.Cluster) {
		for round := 1; round < cfg.ConvergenceReadRounds; round++ {
			for r := 0; r < c.N(); r++ {
				for _, obj := range objs {
					c.Do(model.ReplicaID(r), obj, model.Read())
				}
			}
		}
	}
	schedule := func(seed int64) fault.Schedule {
		return fault.Generate(fault.Config{
			Seed: seed, N: 3, Steps: 150,
			Partitions: 2, Crashes: 1, LinkFaults: 3,
		})
	}

	t.Run("ChaosScheduleConverges", func(t *testing.T) {
		for seed := int64(0); seed < 4; seed++ {
			c := sim.NewCluster(cfg.Factory(), 3, seed)
			sched := schedule(seed)
			if p, cr, lf := sched.Counts(); p < 2 || cr < 1 || lf < 3 {
				t.Fatalf("seed %d: degenerate schedule: %d partitions, %d crashes, %d link faults", seed, p, cr, lf)
			}
			c.RunScheduled(sched, sim.WorkloadConfig{Objects: objs, Steps: 150})
			c.Quiesce()
			readRounds(c)
			if err := c.CheckConverged(objs); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	})

	t.Run("ChaosLossyRun", func(t *testing.T) {
		c := sim.NewCluster(cfg.Factory(), 3, 9)
		c.SetFaults(sim.Faults{DropProb: 0.3})
		c.RunScheduled(schedule(9), sim.WorkloadConfig{Objects: objs, Steps: 150, MutateRatio: 0.8})
		if c.Drops() == 0 {
			t.Skip("no copies dropped at this seed; nothing to assert")
		}
		c.Quiesce()
		readRounds(c)
		err := c.CheckConverged(objs)
		lc, ok := c.Store().(store.LossConverger)
		if ok && lc.ConvergesUnderLoss() {
			if err != nil {
				t.Fatalf("loss-converging store failed to converge through %d drops: %v", c.Drops(), err)
			}
			return
		}
		if !errors.Is(err, sim.ErrLossyRun) {
			t.Fatalf("lossy run verdict = %v, want ErrLossyRun", err)
		}
	})
}
