// Package storetest provides a reusable conformance suite for store.Store
// implementations: the §2 state-machine contract (deterministic pending
// messages, a send relays everything), tolerance of the deliveries
// well-formed executions permit (duplication, reordering), determinism of
// state digests, and — where the store claims them — the §4
// write-propagating properties and quiescent convergence.
//
// Each store's test package calls Run with a Config describing which
// optional properties the store claims. New stores get the full battery for
// one line of code.
package storetest

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"
)

// Config declares which properties the store under test claims.
type Config struct {
	// Factory builds a fresh store per subtest.
	Factory func() store.Store
	// InvisibleReads: the store claims Definition 16.
	InvisibleReads bool
	// OpDrivenMessages: the store claims Definition 15.
	OpDrivenMessages bool
	// Converges: quiescence implies convergence (Lemma 3) under a loss-free
	// random schedule.
	Converges bool
	// ConvergenceReadRounds is how many read rounds expose withheld state
	// before convergence is asserted (the K-buffer store needs K).
	ConvergenceReadRounds int
	// MaxSendsToDrain bounds how many consecutive sends empty the outbox
	// (per-update stores need more than one).
	MaxSendsToDrain int
	// SkipDuplicateIdempotence skips the digest-level redelivery check for
	// stores whose transient state tracks deliveries (K-buffer holds
	// duplicate payloads until exposure; it stays correct, but not
	// digest-identical).
	SkipDuplicateIdempotence bool
	// SkipDeliveryCommutation skips the delivery-order check for stores
	// that order messages by design (the GSP sequencer assigns global
	// positions in arrival order).
	SkipDeliveryCommutation bool
	// Mutator returns a supported mutator operation with a unique value per
	// call (defaults to MVR writes).
	Mutator func(i int) (model.ObjectID, model.Operation)
}

func (c *Config) defaults() {
	if c.ConvergenceReadRounds == 0 {
		c.ConvergenceReadRounds = 1
	}
	if c.MaxSendsToDrain == 0 {
		c.MaxSendsToDrain = 1
	}
	if c.Mutator == nil {
		c.Mutator = func(i int) (model.ObjectID, model.Operation) {
			return model.ObjectID(fmt.Sprintf("obj%d", i%3)), model.Write(model.Value(fmt.Sprintf("v%d", i)))
		}
	}
}

// ConfigFor derives a conformance Config from the store's own registry
// traits: the store.Conformance it declares (zero value — the full contract
// — when it declares none). This is what lets RunRegistered test stores it
// has never heard of.
func ConfigFor(factory func() store.Store) Config {
	var c store.Conformance
	if cr, ok := factory().(store.ConformanceReporter); ok {
		c = cr.Conformance()
	}
	return Config{
		Factory:                  factory,
		InvisibleReads:           !c.ViolatesInvisibleReads,
		OpDrivenMessages:         !c.ViolatesOpDrivenMessages,
		Converges:                true,
		ConvergenceReadRounds:    c.ConvergenceReadRounds,
		MaxSendsToDrain:          c.MaxSendsToDrain,
		SkipDuplicateIdempotence: c.TransientDeliveryState,
		SkipDeliveryCommutation:  c.OrdersDeliveries,
	}
}

// RunRegistered runs the conformance battery on every name in the store
// registry, deriving each store's expectations from its declared
// store.Conformance. A store package only has to call store.Register to be
// covered — a registration can no longer skip the suite by not having a
// conformance test of its own.
func RunRegistered(t *testing.T, opts store.Options) {
	names := store.Names()
	if len(names) == 0 {
		t.Fatal("store registry is empty — nothing to conform")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			factory := func() store.Store {
				st, err := store.Open(name, spec.MVRTypes(), opts)
				if err != nil {
					t.Fatalf("open %q: %v", name, err)
				}
				return st
			}
			Run(t, ConfigFor(factory))
		})
	}
}

// Run executes the conformance battery.
func Run(t *testing.T, cfg Config) {
	cfg.defaults()
	t.Run("InitialStateHasNoPendingMessage", func(t *testing.T) {
		r := cfg.Factory().NewReplica(0, 3)
		if r.PendingMessage() != nil {
			t.Fatal("Definition 15(1): message pending in σ₀")
		}
	})
	t.Run("PendingMessageIsDeterministic", func(t *testing.T) {
		r := cfg.Factory().NewReplica(0, 3)
		obj, op := cfg.Mutator(0)
		r.Do(obj, op)
		p1 := r.PendingMessage()
		p2 := r.PendingMessage()
		if string(p1) != string(p2) {
			t.Fatal("PendingMessage is not a deterministic function of state")
		}
	})
	t.Run("SendDrainsPending", func(t *testing.T) {
		r := cfg.Factory().NewReplica(0, 3)
		for i := 0; i < 4; i++ {
			obj, op := cfg.Mutator(i)
			r.Do(obj, op)
		}
		sends := 0
		for r.PendingMessage() != nil {
			r.OnSend()
			sends++
			if sends > 4*cfg.MaxSendsToDrain {
				t.Fatalf("outbox never drained after %d sends", sends)
			}
		}
	})
	t.Run("StateDigestDeterministic", func(t *testing.T) {
		build := func() store.Replica {
			r := cfg.Factory().NewReplica(1, 3)
			for i := 0; i < 6; i++ {
				obj, op := cfg.Mutator(i)
				r.Do(obj, op)
			}
			return r
		}
		if build().StateDigest() != build().StateDigest() {
			t.Fatal("identical histories produced different digests")
		}
	})
	if !cfg.SkipDuplicateIdempotence {
		runDuplicateIdempotence(t, cfg)
	}
	runRest(t, cfg)
}

func runDuplicateIdempotence(t *testing.T, cfg Config) {
	t.Run("DuplicateDeliveryIdempotent", func(t *testing.T) {
		st := cfg.Factory()
		src := st.NewReplica(0, 2)
		dst := st.NewReplica(1, 2)
		var payloads [][]byte
		for i := 0; i < 5; i++ {
			obj, op := cfg.Mutator(i)
			src.Do(obj, op)
			if p := src.PendingMessage(); p != nil {
				payloads = append(payloads, p)
				src.OnSend()
			}
		}
		for _, p := range payloads {
			dst.Receive(p)
		}
		before := dst.StateDigest()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 10; i++ {
			dst.Receive(payloads[rng.Intn(len(payloads))])
		}
		if dst.StateDigest() != before {
			t.Fatal("redelivery changed state")
		}
	})
}

func runRest(t *testing.T, cfg Config) {
	t.Run("WritesCreatePendingMessages", func(t *testing.T) {
		// Lemma 5's conclusion: in a quiescent-looking state, a write leaves
		// the replica with a message pending — otherwise the write could
		// never propagate and eventual consistency would fail.
		r := cfg.Factory().NewReplica(0, 3)
		obj, op := cfg.Mutator(0)
		r.Do(obj, op)
		if r.PendingMessage() == nil {
			t.Fatal("no message pending after a write (Lemma 5)")
		}
	})
	t.Run("HighAvailability", func(t *testing.T) {
		// Every operation returns immediately with no network interaction —
		// structurally guaranteed by the interface, checked here for the
		// full op surface.
		r := cfg.Factory().NewReplica(2, 3)
		obj, op := cfg.Mutator(0)
		if got := r.Do(obj, op); !got.OK {
			t.Fatalf("mutator not acknowledged: %s", got)
		}
		_ = r.Do(obj, model.Read())
		_ = r.Do("never-written", model.Read())
	})
	if cfg.InvisibleReads {
		t.Run("InvisibleReads", func(t *testing.T) {
			r := cfg.Factory().NewReplica(0, 2)
			obj, op := cfg.Mutator(0)
			r.Do(obj, op)
			before := r.StateDigest()
			r.Do(obj, model.Read())
			r.Do("other", model.Read())
			if r.StateDigest() != before {
				t.Fatal("Definition 16 violated")
			}
		})
	}
	if cfg.OpDrivenMessages {
		t.Run("OpDrivenMessages", func(t *testing.T) {
			st := cfg.Factory()
			src := st.NewReplica(0, 2)
			dst := st.NewReplica(1, 2)
			obj, op := cfg.Mutator(0)
			src.Do(obj, op)
			p := src.PendingMessage()
			src.OnSend()
			dst.Receive(p)
			if dst.PendingMessage() != nil {
				t.Fatal("Definition 15(2) violated: receive created a pending message")
			}
		})
	}
	if cfg.Converges {
		t.Run("QuiescentConvergence", func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				c := sim.NewCluster(cfg.Factory(), 3, seed)
				c.SetFaults(sim.Faults{DupProb: 0.2, Reorder: true})
				objs := []model.ObjectID{"obj0", "obj1", "obj2"}
				c.RunRandom(sim.WorkloadConfig{Objects: objs, Steps: 150})
				c.Quiesce()
				for round := 1; round < cfg.ConvergenceReadRounds; round++ {
					for r := 0; r < c.N(); r++ {
						for _, obj := range objs {
							c.Do(model.ReplicaID(r), obj, model.Read())
						}
					}
				}
				if err := c.CheckConverged(objs); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
		runChaos(t, cfg)
		runShardedCluster(t, cfg)
	}
	if cfg.SkipDeliveryCommutation {
		return
	}
	t.Run("IndependentDeliveriesCommute", func(t *testing.T) {
		// Two messages from different origins applied in either order leave
		// identical state (for stores where both orders are deliverable;
		// causal stores buffer, which must also commute).
		st := cfg.Factory()
		a := st.NewReplica(1, 3)
		b := st.NewReplica(2, 3)
		obj, op := cfg.Mutator(0)
		a.Do(obj, op)
		obj2, op2 := cfg.Mutator(1)
		b.Do(obj2, op2)
		pa := a.PendingMessage()
		pb := b.PendingMessage()
		d1 := st.NewReplica(0, 3)
		d1.Receive(pa)
		d1.Receive(pb)
		d2 := st.NewReplica(0, 3)
		d2.Receive(pb)
		d2.Receive(pa)
		if d1.StateDigest() != d2.StateDigest() {
			t.Fatal("independent deliveries do not commute")
		}
	})
}
