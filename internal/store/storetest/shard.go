package storetest

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
)

// runShardedCluster is the conformance battery's sharded-cluster leg: every
// registered store that claims convergence must also converge when its
// replicas run inside sharded nodes — each shard an independent replica of
// the store with its own broadcast domain — and each shard's merged
// histories must stand as a well-formed execution on their own. This is
// Proposition 1 exercised per store: no object spans shards, so the sharded
// node honors exactly the guarantees the store honors, shard by shard.
func runShardedCluster(t *testing.T, cfg Config) {
	t.Run("ShardedCluster", func(t *testing.T) {
		const n = 2
		const shards = 2
		nodes := make([]*cluster.Node, n)
		for i := range nodes {
			nd, err := cluster.NewNode(cluster.Config{
				ID: model.ReplicaID(i), N: n, Store: cfg.Factory(),
				Listen:         "127.0.0.1:0",
				Shards:         shards,
				DialTimeout:    time.Second,
				DialBackoffMin: 5 * time.Millisecond,
				DialBackoffMax: 100 * time.Millisecond,
				RetransmitMin:  25 * time.Millisecond,
				RetransmitMax:  250 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = nd
		}
		t.Cleanup(func() {
			for _, nd := range nodes {
				nd.Close()
			}
		})
		for i, nd := range nodes {
			peers := make(map[model.ReplicaID]string)
			for j, other := range nodes {
				if j != i {
					peers[model.ReplicaID(j)] = other.Addr()
				}
			}
			if err := nd.Connect(peers); err != nil {
				t.Fatal(err)
			}
		}

		// Pick objects covering both shards (two per shard), then drive the
		// store's own mutator ops at them from both nodes.
		router := cluster.NewShardRouter(shards)
		perShard := make(map[int][]model.ObjectID)
		for i := 0; len(perShard[0]) < 2 || len(perShard[1]) < 2; i++ {
			if i > 1000 {
				t.Fatal("could not cover both shards")
			}
			obj := model.ObjectID(fmt.Sprintf("sh%03d", i))
			if s := router.Route(obj); len(perShard[s]) < 2 {
				perShard[s] = append(perShard[s], obj)
			}
		}
		objs := append(append([]model.ObjectID{}, perShard[0]...), perShard[1]...)
		for i := 0; i < 24; i++ {
			obj := objs[i%len(objs)]
			_, op := cfg.Mutator(i)
			if _, err := nodes[i%n].Do(obj, op); err != nil {
				t.Fatalf("op %d on %q: %v", i, obj, err)
			}
		}
		if !cluster.WaitQuiesced(nodes, 15*time.Second) {
			t.Fatal("sharded cluster did not quiesce")
		}
		// Extra read rounds expose withheld state (the K-buffer store needs
		// K), mirroring the sim convergence subtest.
		for round := 1; round < cfg.ConvergenceReadRounds; round++ {
			for _, nd := range nodes {
				for _, obj := range objs {
					if _, err := nd.Do(obj, model.Read()); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		doers := make([]cluster.Doer, n)
		for i, nd := range nodes {
			doers[i] = nd
		}
		if err := cluster.CheckConverged(doers, objs); err != nil {
			t.Fatalf("sharded cluster did not converge: %v", err)
		}

		// Each shard's histories must merge into a well-formed execution by
		// themselves, and hold only objects that route to that shard.
		for s := 0; s < shards; s++ {
			hists := make([]cluster.History, n)
			for i, nd := range nodes {
				h, err := nd.ShardHistory(s)
				if err != nil {
					t.Fatal(err)
				}
				for _, ev := range h.Events {
					if ev.Kind == model.ActDo && router.Route(ev.Object) != s {
						t.Fatalf("node %d shard %d recorded do on %q (routes to %d)",
							i, s, ev.Object, router.Route(ev.Object))
					}
				}
				hists[i] = h
			}
			audited, err := cluster.BuildAudit(hists)
			if err != nil {
				t.Fatalf("shard %d audit: %v", s, err)
			}
			if err := audited.Exec.CheckWellFormed(); err != nil {
				t.Fatalf("shard %d execution not well-formed: %v", s, err)
			}
		}
	})
}
