package storetest_test

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/storetest"

	// Populate the registry with every store of the repository, exactly as
	// internal/cli does for the binaries.
	_ "repro/internal/store/causal"
	_ "repro/internal/store/gsp"
	_ "repro/internal/store/kbuffer"
	_ "repro/internal/store/lww"
	_ "repro/internal/store/statesync"
)

// TestRegisteredStoresConform sweeps the registry: every registered name —
// including ablation variants — gets the full conformance battery, with
// expectations derived from the store's own Conformance declaration.
func TestRegisteredStoresConform(t *testing.T) {
	storetest.RunRegistered(t, store.Options{})
}

// TestConfigForDerivesTraits pins the trait → config mapping on the two
// stores that deviate by design.
func TestConfigForDerivesTraits(t *testing.T) {
	open := func(name string) func() store.Store {
		return func() store.Store {
			st, err := store.Open(name, spec.MVRTypes(), store.Options{K: 3})
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
	}
	kb := storetest.ConfigFor(open("kbuffer"))
	if kb.InvisibleReads || !kb.OpDrivenMessages || kb.ConvergenceReadRounds != 4 || !kb.SkipDuplicateIdempotence {
		t.Fatalf("kbuffer config = %+v", kb)
	}
	gsp := storetest.ConfigFor(open("gsp"))
	if !gsp.InvisibleReads || gsp.OpDrivenMessages || !gsp.SkipDeliveryCommutation {
		t.Fatalf("gsp config = %+v", gsp)
	}
	causal := storetest.ConfigFor(open("causal"))
	if !causal.InvisibleReads || !causal.OpDrivenMessages || causal.MaxSendsToDrain != 0 {
		t.Fatalf("causal config = %+v", causal)
	}
	per := storetest.ConfigFor(open("causal-perupdate"))
	if per.MaxSendsToDrain != 4 {
		t.Fatalf("causal-perupdate config = %+v", per)
	}
}
