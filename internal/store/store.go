// Package store defines the replica state-machine interface of the paper's
// §2 model — replicas handle client operations immediately (high
// availability), broadcast messages, and receive messages — together with
// checkable forms of the two write-propagating properties of §4:
// op-driven messages (Definition 15) and invisible reads (Definition 16).
//
// Concrete data stores live in the subpackages: store/causal (the flagship
// causally+eventually consistent store), store/lww (a store that totally
// orders concurrent writes, hiding concurrency), and store/kbuffer (the §5.3
// counterexample whose reads are not invisible).
package store

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/spec"
)

// Replica is the state machine R = (Σ, σ₀, E, Δ) of §2, exposed through its
// three event kinds. All methods are single-threaded: the simulator drives
// each replica from one goroutine, which models the paper's interleaving
// semantics directly.
type Replica interface {
	// ID returns the replica's identity.
	ID() model.ReplicaID

	// Do applies a client operation and immediately returns its response,
	// without communicating with other replicas (the high-availability
	// requirement of the model).
	Do(obj model.ObjectID, op model.Operation) model.Response

	// PendingMessage returns the broadcast payload the replica wants to
	// send, or nil if no message is pending. Per the model, the content is a
	// deterministic function of the state, and a single send relays
	// everything the replica has to send.
	PendingMessage() []byte

	// OnSend transitions the replica past its send event; afterwards no
	// message is pending (the model's assumption that a send event relays
	// everything the replica has to send).
	OnSend()

	// Receive applies a received broadcast payload. Duplicate and reordered
	// deliveries must be tolerated (well-formed executions permit them).
	Receive(payload []byte)

	// StateDigest returns a deterministic fingerprint of the full replica
	// state σ, used by the invisible-reads checker (Definition 16) and by
	// convergence checks (Lemma 3).
	StateDigest() string
}

// Store is a data store D: a named factory of replicas sharing a
// configuration.
type Store interface {
	// Name identifies the store in reports.
	Name() string
	// NewReplica creates the replica with the given identity in a population
	// of n replicas.
	NewReplica(id model.ReplicaID, n int) Replica
	// Types returns the object typing the store serves.
	Types() spec.Types
}

// PayloadCodec is implemented by Stores whose replicas' broadcast payloads
// are a stable, self-delimiting binary encoding (rather than opaque blobs
// that only round-trip through JSON envelopes). Declaring it lets the
// cluster transport negotiate wire.Binary framing for connections carrying
// this store's updates — batched varint update frames, binary journal
// records, raw payload bytes in history transfers — instead of the JSON
// fallback every node speaks. Stores without the trait keep the JSON
// fallback, so a cluster mixing both still interoperates: codec choice is
// per-connection, negotiated down to what both ends understand.
type PayloadCodec interface {
	// WireCodec names the preferred frame codec for this store's payloads
	// ("binary" for the built-in compact codec). The name must be
	// registered with wire.RegisterCodec; unknown names fall back to JSON.
	WireCodec() string
}

// PreferredWireCodec returns the wire codec name a store declares through
// PayloadCodec, or "json" — the universal fallback — for stores that
// don't.
func PreferredWireCodec(s Store) string {
	if pc, ok := s.(PayloadCodec); ok {
		if name := pc.WireCodec(); name != "" {
			return name
		}
	}
	return "json"
}

// DotReporter is implemented by replicas that can identify their latest
// local mutator with a dot, letting the simulator derive the visibility
// relation of the run.
type DotReporter interface {
	// LastDot returns the dot of the most recent local mutator, and whether
	// one exists.
	LastDot() (model.Dot, bool)
}

// VisReporter is implemented by replicas that can report which update dots
// are currently visible to their reads. The simulator snapshots this at each
// do event to derive the abstract execution the run complies with.
type VisReporter interface {
	// Sees reports whether the update identified by d is visible to client
	// operations at this replica in its current state.
	Sees(d model.Dot) bool
}

// PropertyViolation describes a detected violation of a §4 property.
type PropertyViolation struct {
	Property string
	Replica  model.ReplicaID
	Detail   string
}

// Error implements error.
func (v *PropertyViolation) Error() string {
	return fmt.Sprintf("store: %s violated at r%d: %s", v.Property, v.Replica, v.Detail)
}

// PropertyChecker observes a replica's transitions and reports violations of
// the write-propagating store properties:
//
//   - invisible reads (Definition 16): a read leaves the state unchanged;
//   - op-driven messages (Definition 15): no message is pending initially,
//     and receiving a message never creates a pending message where none
//     existed.
//
// The simulator wires one checker around every replica it drives.
type PropertyChecker struct {
	replica    Replica
	violations []*PropertyViolation
}

// NewPropertyChecker wraps a freshly created replica and immediately checks
// Definition 15(1): no message pending in the initial state.
func NewPropertyChecker(r Replica) *PropertyChecker {
	c := &PropertyChecker{replica: r}
	if r.PendingMessage() != nil {
		c.report("op-driven messages", "message pending in initial state σ₀")
	}
	return c
}

func (c *PropertyChecker) report(property, detail string) {
	c.violations = append(c.violations, &PropertyViolation{
		Property: property,
		Replica:  c.replica.ID(),
		Detail:   detail,
	})
}

// BeforeDo/AfterDo bracket a do event; for reads they compare state digests
// (Definition 16).
func (c *PropertyChecker) CheckDo(obj model.ObjectID, op model.Operation, do func() model.Response) model.Response {
	var before string
	if op.Kind == model.OpRead {
		before = c.replica.StateDigest()
	}
	resp := do()
	if op.Kind == model.OpRead {
		if after := c.replica.StateDigest(); after != before {
			c.report("invisible reads", fmt.Sprintf("read of %s changed replica state", obj))
		}
	}
	return resp
}

// CheckReceive brackets a receive event, enforcing Definition 15(2): if no
// message was pending before the receive, none may be pending after.
func (c *PropertyChecker) CheckReceive(payload []byte, receive func()) {
	pendingBefore := c.replica.PendingMessage() != nil
	receive()
	if !pendingBefore && c.replica.PendingMessage() != nil {
		c.report("op-driven messages", "receive created a pending message")
	}
}

// Violations returns all violations observed so far.
func (c *PropertyChecker) Violations() []*PropertyViolation { return c.violations }

// Err returns the first violation as an error, or nil.
func (c *PropertyChecker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return c.violations[0]
}
