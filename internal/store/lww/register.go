package lww

import (
	"repro/internal/spec"
	"repro/internal/store"
)

func init() {
	store.Register("lww", func(types spec.Types, _ store.Options) store.Store {
		return New(types)
	})
}
