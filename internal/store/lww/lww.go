// Package lww implements the §3.4 strawman data store: a store that totally
// orders concurrent writes by Lamport timestamp and exposes only the winner,
// "in effect, implementing a read/write register instead of an MVR" (Perrin
// et al.'s argument that replicated objects can be given sequential
// specifications).
//
// The store is eventually consistent and write-propagating (invisible reads,
// op-driven messages), and with a single object its clients indeed cannot
// detect the hidden concurrency. The paper's Figure 2 — reproduced in this
// repository as experiment E2 — shows that with multiple objects and causal
// consistency the hiding becomes observable: this store's client histories
// on the Figure 2 schedule admit no causally consistent MVR abstract
// execution.
//
// Updates apply immediately on receipt (no causal buffering), so the store
// is available and convergent but not causally consistent.
package lww

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/wire"
)

// Store is the last-writer-wins store factory.
type Store struct {
	types spec.Types
}

var _ store.Store = (*Store)(nil)

// New returns an LWW store. The declared object types are retained for
// auditing, but every object behaves as a register: that mismatch is the
// point of the §3.4 analysis.
func New(types spec.Types) *Store { return &Store{types: types} }

// Name implements store.Store.
func (s *Store) Name() string { return "lww" }

// WireCodec implements store.PayloadCodec: payloads are the varint update
// batches PendingMessage encodes, safe for binary wire framing.
func (s *Store) WireCodec() string { return "binary" }

// Types implements store.Store.
func (s *Store) Types() spec.Types { return s.types }

// NewReplica implements store.Store.
func (s *Store) NewReplica(id model.ReplicaID, n int) store.Replica {
	return &Replica{
		id:      id,
		objects: make(map[model.ObjectID]*regState),
		seen:    make(map[model.Dot]bool),
	}
}

type regState struct {
	value  model.Value
	ts     uint64
	origin model.ReplicaID
	set    bool
}

type pendingWrite struct {
	Dot   model.Dot
	TS    uint64
	Obj   model.ObjectID
	Value model.Value
}

// Replica is one LWW replica.
type Replica struct {
	id      model.ReplicaID
	lamport uint64
	nextSeq uint64
	objects map[model.ObjectID]*regState
	seen    map[model.Dot]bool // applied update dots, for deduplication and visibility
	outbox  []pendingWrite

	// applyLog is observational metadata (excluded from the state digest):
	// the local application order, used by the total-order comparison
	// experiment.
	applyLog []model.Dot
}

var (
	_ store.Replica     = (*Replica)(nil)
	_ store.VisReporter = (*Replica)(nil)
	_ store.DotReporter = (*Replica)(nil)
)

// ID implements store.Replica.
func (r *Replica) ID() model.ReplicaID { return r.id }

// Sees implements store.VisReporter.
func (r *Replica) Sees(d model.Dot) bool { return r.seen[d] }

// LastDot implements store.DotReporter.
func (r *Replica) LastDot() (model.Dot, bool) {
	if r.nextSeq == 0 {
		return model.Dot{}, false
	}
	return model.Dot{Origin: r.id, Seq: r.nextSeq}, true
}

// Do implements store.Replica.
func (r *Replica) Do(obj model.ObjectID, op model.Operation) model.Response {
	st, ok := r.objects[obj]
	switch op.Kind {
	case model.OpRead:
		if !ok || !st.set {
			return model.ReadResponse(nil)
		}
		return model.ReadResponse([]model.Value{st.value})
	case model.OpWrite:
		r.lamport++
		r.nextSeq++
		w := pendingWrite{
			Dot:   model.Dot{Origin: r.id, Seq: r.nextSeq},
			TS:    r.lamport,
			Obj:   obj,
			Value: op.Arg,
		}
		r.applyWrite(w)
		r.outbox = append(r.outbox, w)
		return model.OKResponse()
	default:
		return model.Response{}
	}
}

func (r *Replica) applyWrite(w pendingWrite) {
	if w.TS > r.lamport {
		r.lamport = w.TS
	}
	r.applyLog = append(r.applyLog, w.Dot)
	r.seen[w.Dot] = true
	st, ok := r.objects[w.Obj]
	if !ok {
		st = &regState{}
		r.objects[w.Obj] = st
	}
	if !st.set || w.TS > st.ts || (w.TS == st.ts && w.Dot.Origin > st.origin) {
		st.value, st.ts, st.origin, st.set = w.Value, w.TS, w.Dot.Origin, true
	}
}

// ApplyOrder returns the order in which this replica applied writes —
// generally divergent across replicas, since the LWW store applies eagerly
// on receipt.
func (r *Replica) ApplyOrder() []model.Dot {
	out := make([]model.Dot, len(r.applyLog))
	copy(out, r.applyLog)
	return out
}

// PendingMessage implements store.Replica.
func (r *Replica) PendingMessage() []byte {
	if len(r.outbox) == 0 {
		return nil
	}
	w := wire.NewWriter()
	w.Uvarint(uint64(len(r.outbox)))
	for _, u := range r.outbox {
		w.Dot(u.Dot)
		w.Uvarint(u.TS)
		w.String(string(u.Obj))
		w.String(string(u.Value))
	}
	return w.Bytes()
}

// OnSend implements store.Replica.
func (r *Replica) OnSend() { r.outbox = nil }

// Receive implements store.Replica: writes apply immediately; duplicates are
// dropped by dot.
func (r *Replica) Receive(payload []byte) {
	rd := wire.NewReader(payload)
	count := rd.Uvarint()
	if count > uint64(len(payload)) {
		return
	}
	for i := uint64(0); i < count; i++ {
		var u pendingWrite
		u.Dot = rd.Dot()
		u.TS = rd.Uvarint()
		u.Obj = model.ObjectID(rd.String())
		u.Value = model.Value(rd.String())
		if rd.Err() != nil {
			return
		}
		if !r.seen[u.Dot] {
			r.applyWrite(u)
		}
	}
}

// StateDigest implements store.Replica.
func (r *Replica) StateDigest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lamport=%d nextSeq=%d\n", r.lamport, r.nextSeq)
	ids := make([]string, 0, len(r.objects))
	for id := range r.objects {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := r.objects[model.ObjectID(id)]
		fmt.Fprintf(&b, "obj %s: %s ts=%d origin=%d set=%v\n", id, st.value, st.ts, st.origin, st.set)
	}
	dots := make([]string, 0, len(r.seen))
	for d := range r.seen {
		dots = append(dots, d.String())
	}
	sort.Strings(dots)
	fmt.Fprintf(&b, "seen=%v outbox=%d\n", dots, len(r.outbox))
	return b.String()
}
