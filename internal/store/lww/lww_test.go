package lww

import (
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
)

func pair(t *testing.T) (*Replica, *Replica) {
	t.Helper()
	st := New(spec.MVRTypes())
	r0, ok0 := st.NewReplica(0, 2).(*Replica)
	r1, ok1 := st.NewReplica(1, 2).(*Replica)
	if !ok0 || !ok1 {
		t.Fatal("unexpected replica type")
	}
	return r0, r1
}

func TestNameAndTypes(t *testing.T) {
	st := New(spec.MVRTypes())
	if st.Name() != "lww" {
		t.Fatalf("name = %q", st.Name())
	}
	if st.Types().Of("x") != spec.TypeMVR {
		t.Fatal("declared types lost")
	}
}

func TestLocalWriteReadBack(t *testing.T) {
	r0, _ := pair(t)
	r0.Do("x", model.Write("a"))
	if got := r0.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestEmptyRead(t *testing.T) {
	r0, _ := pair(t)
	if got := r0.Do("x", model.Read()); len(got.Values) != 0 {
		t.Fatalf("read = %s", got)
	}
}

func TestUnsupportedOperation(t *testing.T) {
	r0, _ := pair(t)
	if got := r0.Do("x", model.Add("e")); got.OK {
		t.Fatal("add should not be acknowledged")
	}
}

func TestConcurrentWritesConvergeToSingleWinner(t *testing.T) {
	r0, r1 := pair(t)
	r0.Do("x", model.Write("a"))
	r1.Do("x", model.Write("b"))
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	g0 := r0.Do("x", model.Read())
	g1 := r1.Do("x", model.Read())
	if !g0.Equal(g1) {
		t.Fatalf("diverged: %s vs %s", g0, g1)
	}
	if len(g0.Values) != 1 {
		t.Fatalf("hiding store exposed multiple values: %s", g0)
	}
	// Tie on timestamp resolves to the higher origin.
	if g0.Values[0] != "b" {
		t.Fatalf("winner = %s, want b (higher origin)", g0)
	}
}

func TestHigherTimestampWinsOverOrigin(t *testing.T) {
	r0, r1 := pair(t)
	r1.Do("x", model.Write("b")) // ts 1 at r1
	r0.Do("y", model.Write("filler"))
	r0.Do("x", model.Write("a")) // ts 2 at r0
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	want := model.ReadResponse([]model.Value{"a"})
	if got := r1.Do("x", model.Read()); !got.Equal(want) {
		t.Fatalf("read = %s, want %s", got, want)
	}
}

func TestImmediateApplicationNoCausalBuffering(t *testing.T) {
	// The LWW store applies out of causal order: receiving only the second
	// message exposes its write immediately.
	st := New(spec.MVRTypes())
	r0 := st.NewReplica(0, 3).(*Replica)
	r1 := st.NewReplica(1, 3).(*Replica)
	r2 := st.NewReplica(2, 3).(*Replica)
	r0.Do("x", model.Write("a"))
	pa := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(pa)
	r1.Do("y", model.Write("b"))
	pb := r1.PendingMessage()
	r1.OnSend()
	r2.Receive(pb) // missing dependency a
	if got := r2.Do("y", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("eager application expected, read = %s", got)
	}
	if got := r2.Do("x", model.Read()); len(got.Values) != 0 {
		t.Fatalf("x should be unknown: %s", got)
	}
}

func TestDuplicateDeliveryIdempotent(t *testing.T) {
	r0, r1 := pair(t)
	r0.Do("x", model.Write("a"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	before := r1.StateDigest()
	r1.Receive(p)
	if r1.StateDigest() != before {
		t.Fatal("duplicate delivery changed state")
	}
}

func TestInvisibleReadsAndOpDriven(t *testing.T) {
	r0, r1 := pair(t)
	if r0.PendingMessage() != nil {
		t.Fatal("initial pending message")
	}
	r0.Do("x", model.Write("a"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	if r1.PendingMessage() != nil {
		t.Fatal("receive created a pending message")
	}
	before := r1.StateDigest()
	r1.Do("x", model.Read())
	r1.Do("unknown", model.Read())
	if r1.StateDigest() != before {
		t.Fatal("read changed state")
	}
}

func TestCorruptPayloadIgnored(t *testing.T) {
	_, r1 := pair(t)
	before := r1.StateDigest()
	r1.Receive([]byte{0xff, 0x01})
	if r1.StateDigest() != before {
		t.Fatal("corrupt payload changed state")
	}
}

func TestVisReporter(t *testing.T) {
	r0, r1 := pair(t)
	r0.Do("x", model.Write("a"))
	dot, ok := r0.LastDot()
	if !ok {
		t.Fatal("no dot after write")
	}
	if r1.Sees(dot) {
		t.Fatal("premature visibility")
	}
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	if !r1.Sees(dot) {
		t.Fatal("visibility lost")
	}
	if _, ok := r1.LastDot(); ok {
		t.Fatal("r1 has no local mutator")
	}
}

func TestOutboxBatches(t *testing.T) {
	r0, r1 := pair(t)
	r0.Do("x", model.Write("a"))
	r0.Do("y", model.Write("b"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	if got := r1.Do("y", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("batched update lost: %s", got)
	}
}
