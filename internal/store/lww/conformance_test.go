package lww_test

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/lww"
	"repro/internal/store/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, storetest.Config{
		Factory:          func() store.Store { return lww.New(spec.MVRTypes()) },
		InvisibleReads:   true,
		OpDrivenMessages: true,
		Converges:        true,
	})
}
