package causal_test

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store/causal"
)

// Example shows the causal store's MVR semantics directly through the
// replica state-machine interface: concurrent writes surface as siblings; a
// causally later write collapses them.
func Example() {
	st := causal.New(spec.MVRTypes())
	r0 := st.NewReplica(0, 2)
	r1 := st.NewReplica(1, 2)

	// Concurrent writes on both sides of a (conceptual) partition.
	r0.Do("x", model.Write("left"))
	r1.Do("x", model.Write("right"))

	// Exchange the pending broadcasts.
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	fmt.Println("siblings:", r0.Do("x", model.Read()))

	// A write that has observed both siblings dominates them.
	r1.Do("x", model.Write("merged"))
	p := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p)
	fmt.Println("resolved:", r0.Do("x", model.Read()))
	// Output:
	// siblings: {left,right}
	// resolved: {merged}
}
