package causal

import (
	"repro/internal/spec"
	"repro/internal/store"
)

// The causal store registers itself and its two ablation variants
// (DESIGN.md §5: dependency encoding and outbox batching) so binaries
// address them by name instead of duplicating constructor switches.
func init() {
	store.Register("causal", func(types spec.Types, _ store.Options) store.Store {
		return New(types)
	})
	store.Register("causal-sparse", func(types spec.Types, _ store.Options) store.Store {
		return NewWithOptions(types, Options{SparseDeps: true})
	})
	store.Register("causal-perupdate", func(types spec.Types, _ store.Options) store.Store {
		return NewWithOptions(types, Options{PerUpdateMessages: true})
	})
}

// Conformance implements store.ConformanceReporter: the store claims the
// full contract, except that per-update batching needs one send per queued
// update to drain the outbox.
func (s *Store) Conformance() store.Conformance {
	var c store.Conformance
	if s.opts.PerUpdateMessages {
		c.MaxSendsToDrain = 4
	}
	return c
}
