package causal_test

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/causal"
	"repro/internal/store/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, storetest.Config{
		Factory:          func() store.Store { return causal.New(spec.MVRTypes()) },
		InvisibleReads:   true,
		OpDrivenMessages: true,
		Converges:        true,
	})
}

func TestConformanceSparse(t *testing.T) {
	storetest.Run(t, storetest.Config{
		Factory: func() store.Store {
			return causal.NewWithOptions(spec.MVRTypes(), causal.Options{SparseDeps: true})
		},
		InvisibleReads:   true,
		OpDrivenMessages: true,
		Converges:        true,
	})
}

func TestConformancePerUpdate(t *testing.T) {
	storetest.Run(t, storetest.Config{
		Factory: func() store.Store {
			return causal.NewWithOptions(spec.MVRTypes(), causal.Options{PerUpdateMessages: true})
		},
		InvisibleReads:   true,
		OpDrivenMessages: true,
		Converges:        true,
		MaxSendsToDrain:  4,
	})
}
