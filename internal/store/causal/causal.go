// Package causal implements the repository's flagship data store: a
// causally consistent and eventually consistent replicated store in the
// style of Ahamad et al.'s causal memory and of the practical systems the
// paper cites (Dynamo-style MVRs, COPS-style causal propagation).
//
// The store is write-propagating in the paper's sense: reads are invisible
// (Definition 16 — a read never changes replica state) and messages are
// op-driven (Definition 15 — only client mutators create pending messages;
// receives never do). It supports all four object types of internal/spec:
// multi-valued registers, last-writer-wins registers, observed-remove sets,
// and PN-counters.
//
// Mechanics: every mutator mints a dot (origin, seq) and records its causal
// dependencies as the replica's vector clock at invocation time. Local
// updates apply immediately (high availability) and accumulate in an outbox;
// the pending message relays the whole outbox. Remote updates are buffered
// until causally ready — all their dependencies applied — which yields
// causal consistency; eventual delivery of messages then yields eventual
// consistency. Concurrent MVR writes survive side by side as versions whose
// dependency clocks are incomparable, exactly the concurrency the MVR
// specification exposes.
package causal

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Options tune representation choices called out for ablation in DESIGN.md.
type Options struct {
	// SparseDeps encodes dependency clocks sparsely (index/value pairs for
	// non-zero entries) instead of densely.
	SparseDeps bool
	// PerUpdateMessages caps each broadcast at a single update instead of
	// relaying the entire outbox, trading message count for size.
	PerUpdateMessages bool
}

// Store is the causal data store factory.
type Store struct {
	types spec.Types
	opts  Options
}

var _ store.Store = (*Store)(nil)

// New returns a causal store serving the given object types.
func New(types spec.Types) *Store { return &Store{types: types} }

// NewWithOptions returns a causal store with ablation options.
func NewWithOptions(types spec.Types, opts Options) *Store {
	return &Store{types: types, opts: opts}
}

// Name implements store.Store.
func (s *Store) Name() string {
	name := "causal"
	if s.opts.SparseDeps {
		name += "+sparse"
	}
	if s.opts.PerUpdateMessages {
		name += "+perupdate"
	}
	return name
}

// Types implements store.Store.
func (s *Store) Types() spec.Types { return s.types }

// WireCodec implements store.PayloadCodec: payloads are the varint update
// batches encodePayload produces, safe for binary wire framing.
func (s *Store) WireCodec() string { return "binary" }

// NewReplica implements store.Store.
func (s *Store) NewReplica(id model.ReplicaID, n int) store.Replica {
	return &Replica{
		id:      id,
		n:       n,
		types:   s.types,
		opts:    s.opts,
		clock:   vclock.New(n),
		objects: make(map[model.ObjectID]*objState),
	}
}

// update is one replicated mutator: the unit of propagation.
type update struct {
	Dot     model.Dot
	Lamport uint64
	Obj     model.ObjectID
	Kind    model.OpKind
	Value   model.Value
	Delta   int64
	// Deps is the originating replica's clock when the update was invoked:
	// its causal dependencies. Deps[origin] == Dot.Seq-1 by construction.
	Deps vclock.VC
	// Removed lists the add-dots an ORset remove observed.
	Removed []model.Dot
}

// version is one surviving MVR write.
type version struct {
	Value model.Value
	Dot   model.Dot
	Deps  vclock.VC
}

// objState holds per-object replica state for whichever type the object has.
type objState struct {
	typ spec.ObjectType

	versions []version // MVR

	regValue  model.Value // register (LWW)
	regTS     uint64
	regOrigin model.ReplicaID
	regSet    bool

	adds map[model.Value]map[model.Dot]bool // ORset: live add-dots per value

	total int64 // counter
}

// Replica is one causal store replica.
type Replica struct {
	id      model.ReplicaID
	n       int
	types   spec.Types
	opts    Options
	clock   vclock.VC
	lamport uint64
	objects map[model.ObjectID]*objState
	buffer  []update // remote updates awaiting causal readiness
	outbox  []update // local updates not yet broadcast

	// applyLog records the local application order of updates:
	// observational metadata (not part of the state digest) used by the
	// total-order comparison experiments — write-propagating replicas apply
	// concurrent updates in different orders, unlike a sequencer protocol.
	applyLog []model.Dot
}

var (
	_ store.Replica     = (*Replica)(nil)
	_ store.VisReporter = (*Replica)(nil)
	_ store.DotReporter = (*Replica)(nil)
)

// ID implements store.Replica.
func (r *Replica) ID() model.ReplicaID { return r.id }

// Clock returns a copy of the replica's vector clock (its visible causal
// past).
func (r *Replica) Clock() vclock.VC { return r.clock.Clone() }

// Sees implements store.VisReporter: an update is visible once applied,
// i.e. once the clock covers its dot.
func (r *Replica) Sees(d model.Dot) bool { return r.clock.Sees(d) }

// LastDot implements store.DotReporter.
func (r *Replica) LastDot() (model.Dot, bool) {
	seq := r.clock.Get(r.id)
	if seq == 0 {
		return model.Dot{}, false
	}
	return model.Dot{Origin: r.id, Seq: seq}, true
}

func (r *Replica) object(id model.ObjectID) *objState {
	st, ok := r.objects[id]
	if !ok {
		st = &objState{typ: r.types.Of(id)}
		if st.typ == spec.TypeORSet {
			st.adds = make(map[model.Value]map[model.Dot]bool)
		}
		r.objects[id] = st
	}
	return st
}

// Do implements store.Replica: reads evaluate local state without modifying
// it; mutators mint an update, apply it locally, and enqueue it for
// broadcast.
func (r *Replica) Do(obj model.ObjectID, op model.Operation) model.Response {
	if op.Kind == model.OpRead {
		// Reads must not materialize object state: lazily creating the
		// entry would make reads visible (Definition 16).
		if st, ok := r.objects[obj]; ok {
			return r.read(st)
		}
		return r.read(&objState{typ: r.types.Of(obj)})
	}
	st := r.object(obj)
	if !spec.ForType(st.typ).Allows(op.Kind) {
		return model.Response{} // unsupported operation: empty response
	}
	u := update{
		Obj:   obj,
		Kind:  op.Kind,
		Value: op.Arg,
		Delta: op.Delta,
		Deps:  r.clock.Clone(),
	}
	if op.Kind == model.OpRemove {
		for dot := range st.adds[op.Arg] {
			u.Removed = append(u.Removed, dot)
		}
		sortDots(u.Removed)
	}
	r.lamport++
	u.Lamport = r.lamport
	u.Dot = model.Dot{Origin: r.id, Seq: r.clock.Get(r.id) + 1}
	r.apply(u)
	r.outbox = append(r.outbox, u)
	return model.OKResponse()
}

func (r *Replica) read(st *objState) model.Response {
	switch st.typ {
	case spec.TypeMVR:
		values := make([]model.Value, 0, len(st.versions))
		for _, v := range st.versions {
			values = append(values, v.Value)
		}
		return model.ReadResponse(values)
	case spec.TypeRegister:
		if !st.regSet {
			return model.ReadResponse(nil)
		}
		return model.ReadResponse([]model.Value{st.regValue})
	case spec.TypeORSet:
		var values []model.Value
		for v, dots := range st.adds {
			if len(dots) > 0 {
				values = append(values, v)
			}
		}
		return model.ReadResponse(values)
	case spec.TypeCounter:
		return model.CountResponse(st.total)
	default:
		return model.Response{}
	}
}

// apply integrates a causally ready update into object state and advances
// the clock past its dot.
func (r *Replica) apply(u update) {
	if u.Lamport > r.lamport {
		r.lamport = u.Lamport
	}
	r.applyLog = append(r.applyLog, u.Dot)
	r.clock.Set(u.Dot.Origin, u.Dot.Seq)
	st := r.object(u.Obj)
	switch u.Kind {
	case model.OpWrite:
		switch st.typ {
		case spec.TypeMVR:
			// Keep only versions not in u's causal past; u itself cannot be
			// dominated by a surviving version because updates apply in
			// causal order.
			kept := st.versions[:0]
			for _, v := range st.versions {
				if !u.Deps.Sees(v.Dot) {
					kept = append(kept, v)
				}
			}
			st.versions = append(kept, version{Value: u.Value, Dot: u.Dot, Deps: u.Deps})
		case spec.TypeRegister:
			if !st.regSet || u.Lamport > st.regTS ||
				(u.Lamport == st.regTS && u.Dot.Origin > st.regOrigin) {
				st.regValue, st.regTS, st.regOrigin, st.regSet = u.Value, u.Lamport, u.Dot.Origin, true
			}
		}
	case model.OpAdd:
		dots := st.adds[u.Value]
		if dots == nil {
			dots = make(map[model.Dot]bool)
			st.adds[u.Value] = dots
		}
		dots[u.Dot] = true
	case model.OpRemove:
		dots := st.adds[u.Value]
		for _, d := range u.Removed {
			delete(dots, d)
		}
		if len(dots) == 0 {
			delete(st.adds, u.Value)
		}
	case model.OpInc:
		st.total += u.Delta
	}
}

// ready reports whether the update's full causal past is applied.
func (r *Replica) ready(u update) bool {
	return u.Dot.Seq == r.clock.Get(u.Dot.Origin)+1 && u.Deps.LessEq(r.clock)
}

// Receive implements store.Replica: decode, deduplicate, buffer, and drain
// everything that became causally ready.
func (r *Replica) Receive(payload []byte) {
	updates, err := decodePayload(payload, r.n, r.opts.SparseDeps)
	if err != nil {
		// A corrupt payload is ignored: well-formed executions never produce
		// one, and dropping it is indistinguishable from a message drop.
		return
	}
	for _, u := range updates {
		if r.clock.Sees(u.Dot) || r.buffered(u.Dot) {
			continue // duplicate delivery
		}
		r.buffer = append(r.buffer, u)
	}
	r.drain()
}

func (r *Replica) buffered(d model.Dot) bool {
	for _, u := range r.buffer {
		if u.Dot == d {
			return true
		}
	}
	return false
}

// drain applies buffered updates until no more are causally ready.
func (r *Replica) drain() {
	for {
		applied := false
		kept := r.buffer[:0]
		for _, u := range r.buffer {
			if r.ready(u) {
				r.apply(u)
				applied = true
			} else {
				kept = append(kept, u)
			}
		}
		r.buffer = kept
		if !applied {
			return
		}
	}
}

// PendingMessage implements store.Replica: the outbox encoding, or nil.
func (r *Replica) PendingMessage() []byte {
	if len(r.outbox) == 0 {
		return nil
	}
	batch := r.outbox
	if r.opts.PerUpdateMessages {
		batch = r.outbox[:1]
	}
	return encodePayload(batch, r.opts.SparseDeps)
}

// OnSend implements store.Replica.
func (r *Replica) OnSend() {
	if r.opts.PerUpdateMessages && len(r.outbox) > 1 {
		r.outbox = r.outbox[1:]
		return
	}
	r.outbox = nil
}

// StateDigest implements store.Replica with a deterministic rendering of the
// full state σ.
func (r *Replica) StateDigest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "clock=%s lamport=%d\n", r.clock, r.lamport)
	objIDs := make([]string, 0, len(r.objects))
	for id := range r.objects {
		objIDs = append(objIDs, string(id))
	}
	sort.Strings(objIDs)
	for _, id := range objIDs {
		st := r.objects[model.ObjectID(id)]
		fmt.Fprintf(&b, "obj %s (%s):", id, st.typ)
		switch st.typ {
		case spec.TypeMVR:
			vs := make([]string, 0, len(st.versions))
			for _, v := range st.versions {
				vs = append(vs, fmt.Sprintf("%s@%s%s", v.Value, v.Dot, v.Deps))
			}
			sort.Strings(vs)
			fmt.Fprintf(&b, " %v", vs)
		case spec.TypeRegister:
			fmt.Fprintf(&b, " %s ts=%d origin=%d set=%v", st.regValue, st.regTS, st.regOrigin, st.regSet)
		case spec.TypeORSet:
			vals := make([]string, 0, len(st.adds))
			for v, dots := range st.adds {
				ds := make([]model.Dot, 0, len(dots))
				for d := range dots {
					ds = append(ds, d)
				}
				sortDots(ds)
				vals = append(vals, fmt.Sprintf("%s:%v", v, ds))
			}
			sort.Strings(vals)
			fmt.Fprintf(&b, " %v", vals)
		case spec.TypeCounter:
			fmt.Fprintf(&b, " %d", st.total)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "buffer=%v\noutbox=%v\n", updateDots(r.buffer), updateDots(r.outbox))
	return b.String()
}

// BufferedUpdates returns the number of remote updates awaiting causal
// readiness (exposed for tests and diagnostics).
func (r *Replica) BufferedUpdates() int { return len(r.buffer) }

// ApplyOrder returns the order in which this replica applied updates.
// Concurrent updates generally apply in different orders at different
// replicas — the contrast with gsp.Replica.Log in the open-question
// experiment.
func (r *Replica) ApplyOrder() []model.Dot {
	out := make([]model.Dot, len(r.applyLog))
	copy(out, r.applyLog)
	return out
}

func updateDots(us []update) []model.Dot {
	out := make([]model.Dot, len(us))
	for i, u := range us {
		out[i] = u.Dot
	}
	return out
}

func sortDots(ds []model.Dot) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Origin != ds[j].Origin {
			return ds[i].Origin < ds[j].Origin
		}
		return ds[i].Seq < ds[j].Seq
	})
}

// encodePayload serializes a batch of updates.
func encodePayload(batch []update, sparse bool) []byte {
	w := wire.NewWriter()
	w.Uvarint(uint64(len(batch)))
	for _, u := range batch {
		w.Dot(u.Dot)
		w.Uvarint(u.Lamport)
		w.String(string(u.Obj))
		w.Uvarint(uint64(u.Kind))
		w.String(string(u.Value))
		w.Varint(u.Delta)
		if sparse {
			w.SparseVC(u.Deps)
		} else {
			w.VC(u.Deps)
		}
		w.Uvarint(uint64(len(u.Removed)))
		for _, d := range u.Removed {
			w.Dot(d)
		}
	}
	return w.Bytes()
}

// decodePayload parses a batch of updates.
func decodePayload(payload []byte, n int, sparse bool) ([]update, error) {
	rd := wire.NewReader(payload)
	count := rd.Uvarint()
	if count > uint64(len(payload)) {
		return nil, fmt.Errorf("causal: implausible update count %d", count)
	}
	updates := make([]update, 0, count)
	for i := uint64(0); i < count; i++ {
		var u update
		u.Dot = rd.Dot()
		u.Lamport = rd.Uvarint()
		u.Obj = model.ObjectID(rd.String())
		u.Kind = model.OpKind(rd.Uvarint())
		u.Value = model.Value(rd.String())
		u.Delta = rd.Varint()
		if sparse {
			u.Deps = rd.SparseVC(n)
		} else {
			u.Deps = rd.VC()
		}
		removed := rd.Uvarint()
		if removed > uint64(len(payload)) {
			return nil, fmt.Errorf("causal: implausible removed-dot count %d", removed)
		}
		for j := uint64(0); j < removed; j++ {
			u.Removed = append(u.Removed, rd.Dot())
		}
		if err := rd.Err(); err != nil {
			return nil, err
		}
		updates = append(updates, u)
	}
	return updates, nil
}
