package causal

import (
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
)

// FuzzReceive feeds arbitrary bytes to a replica: Receive must never panic,
// and a payload that fails to decode must leave the state untouched.
func FuzzReceive(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	// A genuine payload as a seed.
	src := New(spec.MVRTypes()).NewReplica(0, 2)
	src.Do("x", model.Write("a"))
	f.Add(src.PendingMessage())
	f.Fuzz(func(t *testing.T, payload []byte) {
		r := New(spec.MVRTypes()).NewReplica(1, 2)
		r.Receive(payload)
		// State must remain serviceable.
		_ = r.Do("x", model.Read())
		_ = r.StateDigest()
	})
}
