package causal

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
)

func newPair(t *testing.T) (*Replica, *Replica) {
	t.Helper()
	st := New(spec.MVRTypes())
	r0, ok0 := st.NewReplica(0, 2).(*Replica)
	r1, ok1 := st.NewReplica(1, 2).(*Replica)
	if !ok0 || !ok1 {
		t.Fatal("causal store returned unexpected replica type")
	}
	return r0, r1
}

// relay broadcasts r's pending message into the peers.
func relay(t *testing.T, from *Replica, to ...*Replica) []byte {
	t.Helper()
	payload := from.PendingMessage()
	if payload == nil {
		t.Fatal("expected a pending message")
	}
	from.OnSend()
	for _, r := range to {
		r.Receive(payload)
	}
	return payload
}

func TestLocalWriteImmediatelyVisible(t *testing.T) {
	r0, _ := newPair(t)
	if got := r0.Do("x", model.Write("a")); !got.OK {
		t.Fatalf("write returned %s", got)
	}
	got := r0.Do("x", model.Read())
	if want := model.ReadResponse([]model.Value{"a"}); !got.Equal(want) {
		t.Fatalf("read = %s, want %s", got, want)
	}
}

func TestReadOfUnwrittenObjectIsEmpty(t *testing.T) {
	r0, _ := newPair(t)
	if got := r0.Do("x", model.Read()); len(got.Values) != 0 {
		t.Fatalf("read of fresh object = %s, want {}", got)
	}
}

func TestRemoteWritePropagates(t *testing.T) {
	r0, r1 := newPair(t)
	r0.Do("x", model.Write("a"))
	relay(t, r0, r1)
	got := r1.Do("x", model.Read())
	if want := model.ReadResponse([]model.Value{"a"}); !got.Equal(want) {
		t.Fatalf("remote read = %s, want %s", got, want)
	}
}

func TestConcurrentWritesSurfaceAsSiblings(t *testing.T) {
	r0, r1 := newPair(t)
	r0.Do("x", model.Write("a"))
	r1.Do("x", model.Write("b"))
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	want := model.ReadResponse([]model.Value{"a", "b"})
	if got := r0.Do("x", model.Read()); !got.Equal(want) {
		t.Fatalf("r0 read = %s, want %s", got, want)
	}
	if got := r1.Do("x", model.Read()); !got.Equal(want) {
		t.Fatalf("r1 read = %s, want %s", got, want)
	}
}

func TestCausalOverwriteCollapsesSiblings(t *testing.T) {
	r0, r1 := newPair(t)
	r0.Do("x", model.Write("a"))
	relay(t, r0, r1)
	r1.Do("x", model.Write("b")) // causally after a
	relay(t, r1, r0)
	want := model.ReadResponse([]model.Value{"b"})
	if got := r0.Do("x", model.Read()); !got.Equal(want) {
		t.Fatalf("r0 read = %s, want %s", got, want)
	}
}

func TestCausalBufferingHoldsOutOfOrderUpdate(t *testing.T) {
	st := New(spec.MVRTypes())
	r0 := st.NewReplica(0, 3).(*Replica)
	r1 := st.NewReplica(1, 3).(*Replica)
	r2 := st.NewReplica(2, 3).(*Replica)

	r0.Do("x", model.Write("a"))
	pa := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(pa)
	r1.Do("y", model.Write("b")) // depends on a
	pb := r1.PendingMessage()
	r1.OnSend()

	// r2 receives b before a: it must buffer b, exposing neither y=b without
	// its dependency nor a stale view afterwards.
	r2.Receive(pb)
	if got := r2.Do("y", model.Read()); len(got.Values) != 0 {
		t.Fatalf("y visible before its dependency: %s", got)
	}
	if r2.BufferedUpdates() != 1 {
		t.Fatalf("buffered = %d, want 1", r2.BufferedUpdates())
	}
	r2.Receive(pa)
	if got, want := r2.Do("y", model.Read()), model.ReadResponse([]model.Value{"b"}); !got.Equal(want) {
		t.Fatalf("y after both deliveries = %s, want %s", got, want)
	}
	if got, want := r2.Do("x", model.Read()), model.ReadResponse([]model.Value{"a"}); !got.Equal(want) {
		t.Fatalf("x after both deliveries = %s, want %s", got, want)
	}
	if r2.BufferedUpdates() != 0 {
		t.Fatalf("buffer not drained: %d", r2.BufferedUpdates())
	}
}

func TestDuplicateDeliveryIsIdempotent(t *testing.T) {
	r0, r1 := newPair(t)
	r0.Do("x", model.Write("a"))
	payload := relay(t, r0, r1)
	before := r1.StateDigest()
	r1.Receive(payload)
	r1.Receive(payload)
	if after := r1.StateDigest(); after != before {
		t.Fatalf("duplicate delivery changed state:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestReadsAreInvisible(t *testing.T) {
	r0, r1 := newPair(t)
	r0.Do("x", model.Write("a"))
	relay(t, r0, r1)
	before := r1.StateDigest()
	r1.Do("x", model.Read())
	r1.Do("nope", model.Read())
	if after := r1.StateDigest(); after != before {
		t.Fatal("read changed replica state (Definition 16 violated)")
	}
}

func TestOpDrivenMessages(t *testing.T) {
	r0, r1 := newPair(t)
	if r0.PendingMessage() != nil {
		t.Fatal("message pending in initial state (Definition 15 violated)")
	}
	r0.Do("x", model.Write("a"))
	payload := r0.PendingMessage()
	if payload == nil {
		t.Fatal("no message pending after a write")
	}
	r0.OnSend()
	if r0.PendingMessage() != nil {
		t.Fatal("message still pending after send")
	}
	r1.Receive(payload)
	if r1.PendingMessage() != nil {
		t.Fatal("receive created a pending message (Definition 15 violated)")
	}
}

func TestOutboxBatchesMultipleWrites(t *testing.T) {
	r0, r1 := newPair(t)
	r0.Do("x", model.Write("a"))
	r0.Do("y", model.Write("b"))
	r0.Do("z", model.Write("c"))
	relay(t, r0, r1)
	for _, tc := range []struct {
		obj  model.ObjectID
		want model.Value
	}{{"x", "a"}, {"y", "b"}, {"z", "c"}} {
		if got := r1.Do(tc.obj, model.Read()); !got.Equal(model.ReadResponse([]model.Value{tc.want})) {
			t.Fatalf("read %s = %s, want {%s}", tc.obj, got, tc.want)
		}
	}
}

func TestPerUpdateMessagesOption(t *testing.T) {
	st := NewWithOptions(spec.MVRTypes(), Options{PerUpdateMessages: true})
	r0 := st.NewReplica(0, 2).(*Replica)
	r1 := st.NewReplica(1, 2).(*Replica)
	r0.Do("x", model.Write("a"))
	r0.Do("y", model.Write("b"))
	count := 0
	for r0.PendingMessage() != nil {
		p := r0.PendingMessage()
		r0.OnSend()
		r1.Receive(p)
		count++
		if count > 10 {
			t.Fatal("per-update send never drained")
		}
	}
	if count != 2 {
		t.Fatalf("sent %d messages, want 2", count)
	}
	if got := r1.Do("y", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("read y = %s", got)
	}
}

func TestSparseDepsRoundTrip(t *testing.T) {
	st := NewWithOptions(spec.MVRTypes(), Options{SparseDeps: true})
	r0 := st.NewReplica(0, 8).(*Replica)
	r1 := st.NewReplica(1, 8).(*Replica)
	r0.Do("x", model.Write("a"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	if got := r1.Do("x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("sparse read = %s", got)
	}
}

func TestLWWRegisterConvergesToLatest(t *testing.T) {
	types := spec.Types{DefaultType: spec.TypeRegister}
	st := New(types)
	r0 := st.NewReplica(0, 2).(*Replica)
	r1 := st.NewReplica(1, 2).(*Replica)
	r0.Do("reg", model.Write("a"))
	r1.Do("reg", model.Write("b"))
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	g0 := r0.Do("reg", model.Read())
	g1 := r1.Do("reg", model.Read())
	if !g0.Equal(g1) {
		t.Fatalf("register diverged: %s vs %s", g0, g1)
	}
	if len(g0.Values) != 1 {
		t.Fatalf("register read = %s, want a single value", g0)
	}
}

func TestORSetAddWins(t *testing.T) {
	types := spec.Types{DefaultType: spec.TypeORSet}
	st := New(types)
	r0 := st.NewReplica(0, 2).(*Replica)
	r1 := st.NewReplica(1, 2).(*Replica)

	r0.Do("s", model.Add("e"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)

	// Concurrently: r1 removes the observed add while r0 re-adds.
	r1.Do("s", model.Remove("e"))
	r0.Do("s", model.Add("e"))
	p1 := r1.PendingMessage()
	r1.OnSend()
	p0 := r0.PendingMessage()
	r0.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)

	want := model.ReadResponse([]model.Value{"e"}) // the concurrent add wins
	if got := r0.Do("s", model.Read()); !got.Equal(want) {
		t.Fatalf("r0 set = %s, want %s", got, want)
	}
	if got := r1.Do("s", model.Read()); !got.Equal(want) {
		t.Fatalf("r1 set = %s, want %s", got, want)
	}
}

func TestORSetRemoveObservedAdd(t *testing.T) {
	types := spec.Types{DefaultType: spec.TypeORSet}
	st := New(types)
	r0 := st.NewReplica(0, 2).(*Replica)
	r1 := st.NewReplica(1, 2).(*Replica)
	r0.Do("s", model.Add("e"))
	p := r0.PendingMessage()
	r0.OnSend()
	r1.Receive(p)
	r1.Do("s", model.Remove("e"))
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	if got := r0.Do("s", model.Read()); len(got.Values) != 0 {
		t.Fatalf("observed remove did not remove: %s", got)
	}
}

func TestCounterSumsDeltas(t *testing.T) {
	types := spec.Types{DefaultType: spec.TypeCounter}
	st := New(types)
	r0 := st.NewReplica(0, 2).(*Replica)
	r1 := st.NewReplica(1, 2).(*Replica)
	r0.Do("c", model.Inc(5))
	r1.Do("c", model.Inc(-2))
	p0 := r0.PendingMessage()
	r0.OnSend()
	p1 := r1.PendingMessage()
	r1.OnSend()
	r0.Receive(p1)
	r1.Receive(p0)
	want := model.CountResponse(3)
	if got := r0.Do("c", model.Read()); !got.Equal(want) {
		t.Fatalf("r0 counter = %s, want %s", got, want)
	}
	if got := r1.Do("c", model.Read()); !got.Equal(want) {
		t.Fatalf("r1 counter = %s, want %s", got, want)
	}
}

func TestCorruptPayloadIgnored(t *testing.T) {
	_, r1 := newPair(t)
	before := r1.StateDigest()
	r1.Receive([]byte{0xff, 0xff, 0xff})
	if r1.StateDigest() != before {
		t.Fatal("corrupt payload changed state")
	}
}

func TestStateDigestMentionsObjects(t *testing.T) {
	r0, _ := newPair(t)
	r0.Do("x", model.Write("a"))
	if d := r0.StateDigest(); !strings.Contains(d, "obj x") {
		t.Fatalf("digest missing object state:\n%s", d)
	}
}

func TestStoreNameReflectsOptions(t *testing.T) {
	if got := NewWithOptions(spec.MVRTypes(), Options{SparseDeps: true}).Name(); got != "causal+sparse" {
		t.Fatalf("name = %q", got)
	}
	if got := New(spec.MVRTypes()).Name(); got != "causal" {
		t.Fatalf("name = %q", got)
	}
}

func TestVisReporterTracksApplication(t *testing.T) {
	r0, r1 := newPair(t)
	r0.Do("x", model.Write("a"))
	dot, ok := r0.LastDot()
	if !ok || dot != (model.Dot{Origin: 0, Seq: 1}) {
		t.Fatalf("LastDot = %v, %v", dot, ok)
	}
	if r1.Sees(dot) {
		t.Fatal("r1 sees the write before delivery")
	}
	relay(t, r0, r1)
	if !r1.Sees(dot) {
		t.Fatal("r1 does not see the write after delivery")
	}
}
