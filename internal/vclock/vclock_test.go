package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestZeroClockProperties(t *testing.T) {
	v := New(3)
	if !v.IsZero() {
		t.Fatal("fresh clock not zero")
	}
	if v.Sum() != 0 {
		t.Fatal("fresh clock sum not zero")
	}
	if !v.LessEq(New(0)) || !New(0).LessEq(v) {
		t.Fatal("zero clocks of different lengths should be equal")
	}
}

func TestIncAndGet(t *testing.T) {
	v := New(2)
	if got := v.Inc(1); got != 1 {
		t.Fatalf("first Inc = %d, want 1", got)
	}
	if got := v.Inc(1); got != 2 {
		t.Fatalf("second Inc = %d, want 2", got)
	}
	if v.Get(0) != 0 || v.Get(1) != 2 {
		t.Fatalf("clock = %s", v)
	}
}

func TestGetOutOfRangeIsZero(t *testing.T) {
	v := New(2)
	if v.Get(17) != 0 || v.Get(-1) != 0 {
		t.Fatal("out-of-range entries must read as zero")
	}
}

func TestSetGrowsClock(t *testing.T) {
	v := New(1)
	v.Set(4, 7)
	if v.Get(4) != 7 || len(v) != 5 {
		t.Fatalf("clock = %s", v)
	}
}

func TestCompareOrders(t *testing.T) {
	a := VC{1, 2, 0}
	b := VC{1, 3, 0}
	c := VC{2, 1, 0}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("a < b expected")
	}
	if !a.Concurrent(c) {
		t.Fatal("a ∥ c expected")
	}
	if !b.Concurrent(c) {
		t.Fatal("b ∥ c expected")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestEqualIgnoresTrailingZeros(t *testing.T) {
	if !(VC{1, 0, 0}).Equal(VC{1}) {
		t.Fatal("trailing zeros should not affect equality")
	}
}

func TestSeesDot(t *testing.T) {
	v := VC{0, 3}
	if !v.Sees(model.Dot{Origin: 1, Seq: 3}) || !v.Sees(model.Dot{Origin: 1, Seq: 1}) {
		t.Fatal("should see covered dots")
	}
	if v.Sees(model.Dot{Origin: 1, Seq: 4}) || v.Sees(model.Dot{Origin: 0, Seq: 1}) {
		t.Fatal("should not see uncovered dots")
	}
}

func TestMergeBasics(t *testing.T) {
	a := VC{1, 5}
	a.Merge(VC{3, 2, 4})
	want := VC{3, 5, 4}
	if !a.Equal(want) {
		t.Fatalf("merge = %s, want %s", a, want)
	}
}

func TestStringRendering(t *testing.T) {
	if got := (VC{1, 0, 3}).String(); got != "[1 0 3]" {
		t.Fatalf("String = %q", got)
	}
}

// randVC generates a random clock for the quick properties.
func randVC(rng *rand.Rand) VC {
	n := rng.Intn(5)
	v := New(n)
	for i := range v {
		v[i] = uint64(rng.Intn(4))
	}
	return v
}

func TestQuickMergeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVC(rng), randVC(rng)
		return a.Merged(b).Equal(b.Merged(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randVC(rng), randVC(rng), randVC(rng)
		return a.Merged(b).Merged(c).Equal(a.Merged(b.Merged(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVC(rng)
		return a.Merged(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVC(rng), randVC(rng)
		m := a.Merged(b)
		return a.LessEq(m) && b.LessEq(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrderIsPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randVC(rng), randVC(rng), randVC(rng)
		// Reflexive, antisymmetric (via Equal), transitive.
		if !a.LessEq(a) {
			return false
		}
		if a.LessEq(b) && b.LessEq(a) && !a.Equal(b) {
			return false
		}
		if a.LessEq(b) && b.LessEq(c) && !a.LessEq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExactlyOneRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVC(rng), randVC(rng)
		states := 0
		if a.Less(b) {
			states++
		}
		if b.Less(a) {
			states++
		}
		if a.Equal(b) {
			states++
		}
		if a.Concurrent(b) {
			states++
		}
		return states == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneIsIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVC(rng)
		if len(a) == 0 {
			return true
		}
		c := a.Clone()
		c[0]++
		return !a.Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
