// Package vclock implements vector clocks (Fidge/Mattern logical time) used
// as the causality substrate of the causal data store, and the dots that
// identify individual updates.
//
// A clock over n replicas is a vector of n counters; entry i counts the
// mutators originating at replica i that are in the causal past. Clocks form
// a lattice under pointwise max (Merge); the strict partial order Less is
// exactly the happens-before order of the updates they summarize, and two
// incomparable clocks witness concurrency — the structure the paper's MVR
// specification exposes to clients.
package vclock

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// VC is a dense vector clock over a fixed replica population. The zero-length
// clock is the clock of the empty causal past.
type VC []uint64

// New returns the zero clock for n replicas.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of the clock.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Get returns entry r, treating out-of-range entries as zero so that clocks
// of different populations compare sensibly.
func (v VC) Get(r model.ReplicaID) uint64 {
	if int(r) < 0 || int(r) >= len(v) {
		return 0
	}
	return v[r]
}

// Set assigns entry r, growing the clock if needed.
func (v *VC) Set(r model.ReplicaID, val uint64) {
	for int(r) >= len(*v) {
		*v = append(*v, 0)
	}
	(*v)[r] = val
}

// Inc increments entry r by one and returns the new value (the Seq of the
// dot minted for a fresh local update).
func (v *VC) Inc(r model.ReplicaID) uint64 {
	v.Set(r, v.Get(r)+1)
	return v.Get(r)
}

// Merge sets v to the pointwise maximum of v and other (join in the clock
// lattice). Merge is commutative, associative, and idempotent.
func (v *VC) Merge(other VC) {
	for r := range other {
		if other[r] > v.Get(model.ReplicaID(r)) {
			v.Set(model.ReplicaID(r), other[r])
		}
	}
}

// Merged returns the join of v and other without mutating either.
func (v VC) Merged(other VC) VC {
	c := v.Clone()
	c.Merge(other)
	return c
}

// LessEq reports v ≤ other pointwise.
func (v VC) LessEq(other VC) bool {
	for r := range v {
		if v[r] > other.Get(model.ReplicaID(r)) {
			return false
		}
	}
	return true
}

// Less reports v ≤ other and v ≠ other: the update summarized by v strictly
// happens before that of other.
func (v VC) Less(other VC) bool {
	return v.LessEq(other) && !other.LessEq(v)
}

// Equal reports pointwise equality (ignoring trailing zeros, so clocks of
// different lengths can be equal).
func (v VC) Equal(other VC) bool {
	return v.LessEq(other) && other.LessEq(v)
}

// Concurrent reports that neither clock dominates the other — the updates
// they summarize are concurrent.
func (v VC) Concurrent(other VC) bool {
	return !v.LessEq(other) && !other.LessEq(v)
}

// Sees reports whether the update identified by dot d is in the causal past
// summarized by v. This relies on the causal store's invariant that entry i
// counts a contiguous prefix of replica i's updates.
func (v VC) Sees(d model.Dot) bool { return v.Get(d.Origin) >= d.Seq }

// Sum returns the total number of updates in the causal past, a convenient
// scalar (Lamport-style) timestamp lower bound.
func (v VC) Sum() uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

// IsZero reports whether every entry is zero.
func (v VC) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// String renders the clock as "[1 0 3]".
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
