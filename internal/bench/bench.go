// Package bench provides the small experiment-reporting harness shared by
// cmd/figures, cmd/msgbound, and the root benchmarks: named tables with
// aligned columns, assembled row by row, rendered to any io.Writer.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of rows under fixed column headers.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	underline := make([]string, len(t.Columns))
	for i := range underline {
		underline[i] = strings.Repeat("-", widths[i])
	}
	line(underline)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// MarshalJSON renders the table as a machine-readable object:
// {"title": ..., "note": ..., "columns": [...], "rows": [[...], ...]}.
// Cells keep the exact strings the text renderer would print, so JSON and
// text reports of one run carry identical data.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Note    string     `json:"note,omitempty"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Title: t.Title, Note: t.Note, Columns: t.Columns, Rows: rows})
}

// RenderJSON writes the table as one compact JSON object followed by a
// newline (JSON Lines), so multi-table experiment runs can be diffed and
// tracked as BENCH_*.json files across PRs.
func (t *Table) RenderJSON(w io.Writer) error {
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Output routes tables to either the aligned-text or the JSON Lines
// renderer; commands thread one Output through their experiment sections so
// a single -json flag switches the whole report format.
type Output struct {
	W    io.Writer
	JSON bool
}

// Emit renders one table in the selected format.
func (o Output) Emit(t *Table) error {
	if o.JSON {
		return t.RenderJSON(o.W)
	}
	t.Render(o.W)
	return nil
}

// Verdict renders a pass/fail cell from an error.
func Verdict(err error) string {
	if err == nil {
		return "yes"
	}
	return "no"
}

// Check renders "ok" or the error text.
func Check(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
