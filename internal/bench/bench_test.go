package bench

import (
	"errors"
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := NewTable("demo", "name", "count")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 22)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, underline, two rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// The count column starts at the same offset in both data rows.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "22") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableNote(t *testing.T) {
	tb := NewTable("demo", "c")
	tb.Note = "remember this"
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "note: remember this") {
		t.Fatalf("missing note:\n%s", sb.String())
	}
}

func TestTableFloatsRenderedWithOneDecimal(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.14159)
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "3.1") || strings.Contains(sb.String(), "3.14") {
		t.Fatalf("float formatting wrong:\n%s", sb.String())
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	var sb strings.Builder
	tb.Render(&sb)
	if strings.Contains(sb.String(), "==") {
		t.Fatalf("unexpected title:\n%s", sb.String())
	}
}

func TestVerdictAndCheck(t *testing.T) {
	if Verdict(nil) != "yes" || Verdict(errors.New("x")) != "no" {
		t.Fatal("Verdict wrong")
	}
	if Check(nil) != "ok" || Check(errors.New("boom")) != "boom" {
		t.Fatal("Check wrong")
	}
}

func TestTableRaggedRowTolerated(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("only-one")
	var sb strings.Builder
	tb.Render(&sb) // must not panic
	if !strings.Contains(sb.String(), "only-one") {
		t.Fatal("row lost")
	}
}
