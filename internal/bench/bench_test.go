package bench

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := NewTable("demo", "name", "count")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 22)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, underline, two rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// The count column starts at the same offset in both data rows.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "22") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableNote(t *testing.T) {
	tb := NewTable("demo", "c")
	tb.Note = "remember this"
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "note: remember this") {
		t.Fatalf("missing note:\n%s", sb.String())
	}
}

func TestTableFloatsRenderedWithOneDecimal(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.14159)
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "3.1") || strings.Contains(sb.String(), "3.14") {
		t.Fatalf("float formatting wrong:\n%s", sb.String())
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	var sb strings.Builder
	tb.Render(&sb)
	if strings.Contains(sb.String(), "==") {
		t.Fatalf("unexpected title:\n%s", sb.String())
	}
}

func TestVerdictAndCheck(t *testing.T) {
	if Verdict(nil) != "yes" || Verdict(errors.New("x")) != "no" {
		t.Fatal("Verdict wrong")
	}
	if Check(nil) != "ok" || Check(errors.New("boom")) != "boom" {
		t.Fatal("Check wrong")
	}
}

func TestTableRaggedRowTolerated(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("only-one")
	var sb strings.Builder
	tb.Render(&sb) // must not panic
	if !strings.Contains(sb.String(), "only-one") {
		t.Fatal("row lost")
	}
}

func TestTableJSONRoundTrips(t *testing.T) {
	tab := NewTable("t12", "k", "bits")
	tab.AddRow(2, 10)
	tab.AddRow(8, 30.0)
	tab.Note = "a note"
	var sb strings.Builder
	if err := tab.RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") || strings.Count(out, "\n") != 1 {
		t.Fatalf("RenderJSON should emit exactly one JSON line: %q", out)
	}
	var got struct {
		Title   string     `json:"title"`
		Note    string     `json:"note"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "t12" || got.Note != "a note" || len(got.Columns) != 2 {
		t.Fatalf("bad round trip: %+v", got)
	}
	// JSON cells match what the text renderer prints, floats included.
	if got.Rows[1][1] != "30.0" {
		t.Fatalf("float cell = %q, want %q", got.Rows[1][1], "30.0")
	}
}

func TestTableJSONEmptyRowsAndNote(t *testing.T) {
	var sb strings.Builder
	if err := NewTable("empty", "c").RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(sb.String())
	if !strings.Contains(out, `"rows":[]`) {
		t.Fatalf("nil rows should marshal as []: %s", out)
	}
	if strings.Contains(out, "note") {
		t.Fatalf("empty note should be omitted: %s", out)
	}
}

func TestOutputSelectsRenderer(t *testing.T) {
	tab := NewTable("x", "a")
	tab.AddRow(1)
	var text, js strings.Builder
	if err := (Output{W: &text}).Emit(tab); err != nil {
		t.Fatal(err)
	}
	if err := (Output{W: &js, JSON: true}).Emit(tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "== x ==") {
		t.Fatal("text mode should render the aligned table")
	}
	if !json.Valid([]byte(js.String())) {
		t.Fatal("JSON mode should emit valid JSON")
	}
}
