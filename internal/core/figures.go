package core

import (
	"fmt"

	"repro/internal/abstract"
	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store"
)

// This file realizes the paper's motivating figures as executable scenarios.
//
// Figure 2: with multiple objects, causal consistency and eventual
// consistency let clients INFER concurrency of writes even when the store
// orders them. We run one fixed schedule against a store; if the store hides
// concurrency (returns a single winner for concurrent MVR writes), the
// resulting client history admits NO causally consistent MVR abstract
// execution — proved by the deductive engine — whereas the exposing causal
// store's history on the same schedule complies with its derived abstract
// execution.
//
// Figure 3: the OCC definition's motivation, as three checkable abstract
// executions: (a) hiding a concurrent write is harmless in isolation, (b)
// hiding can be repaired by further pretend-ordering when a concurrent
// same-object write ŵ exists, and (c) the witness pattern of Definition 18
// makes hiding impossible, so the read must return both writes.

// Figure2Schedule drives the fixed Figure 2 schedule against st and returns
// the cluster (for derived-abstract analysis) and the client history.
//
// Replicas 0 and 1 concurrently write the MVR x (a1 and a2) while
// interleaving writes to their private MVRs u0 and u1; each then performs a
// read of the peer's private object while still partitioned (necessarily
// returning {}). Replica 2 receives both broadcasts and reads u0, u1, and x.
// The second write to u0 (value d0) happens after a1, so observing d0 at
// replica 2 drags a1 into the causal past of replica 2's x read; likewise d1
// drags a2. A store that returns a single value for x at replica 2 is
// forced into the contradiction of Figure 2.
func Figure2Schedule(st store.Store) (*sim.Cluster, []model.Event) {
	c := sim.NewCluster(st, 3, 1)
	const (
		u0 = model.ObjectID("u0")
		u1 = model.ObjectID("u1")
		x  = model.ObjectID("x")
	)
	c.Do(0, u0, model.Write("c0"))
	c.Do(0, x, model.Write("a1"))
	c.Do(0, u0, model.Write("d0"))
	c.Do(0, u1, model.Read()) // blind: nothing received yet

	c.Do(1, u1, model.Write("c1"))
	c.Do(1, x, model.Write("a2"))
	c.Do(1, u1, model.Write("d1"))
	c.Do(1, u0, model.Read()) // blind

	c.Send(0)
	c.Send(1)
	c.DeliverFrom(2, 0)
	c.DeliverFrom(2, 1)

	c.Do(2, u0, model.Read())
	c.Do(2, u1, model.Read())
	c.Do(2, x, model.Read())

	return c, c.Execution().DoEvents()
}

// Figure2Report is the outcome of the Figure 2 experiment for one store.
type Figure2Report struct {
	StoreName string
	// XRead is replica 2's response to the final read of x.
	XRead model.Response
	// HidingImpossible is true when the deductive prover showed the history
	// admits no causally consistent MVR abstract execution.
	HidingImpossible bool
	// Trace is the prover's contradiction trace (when HidingImpossible).
	Trace []string
	// DerivedCausal is nil when the store's own derived abstract execution
	// is causally consistent and correct (the exposing store's case).
	DerivedCausal error
}

// RunFigure2 executes the Figure 2 experiment against st.
func RunFigure2(st store.Store) (*Figure2Report, error) {
	c, history := Figure2Schedule(st)
	rep := &Figure2Report{StoreName: st.Name()}
	for i := len(history) - 1; i >= 0; i-- {
		if history[i].Object == "x" && history[i].IsRead() {
			rep.XRead = history[i].Rval
			break
		}
	}
	impossible, trace, err := consistency.ProveNoCausalMVR(history, st.Types())
	if err != nil {
		return nil, fmt.Errorf("core: figure 2 prover: %w", err)
	}
	rep.HidingImpossible = impossible
	rep.Trace = trace
	rep.DerivedCausal = consistency.CheckCausal(c.DerivedAbstract(), st.Types())
	return rep, nil
}

// Figure3Case is one of the three Figure 3 abstract executions with its
// checker verdicts.
type Figure3Case struct {
	Name        string
	Description string
	A           *abstract.Execution
	Causal      error
	OCC         error
	// HidingImpossible applies to case (c): whether returning a single
	// value is provably inconsistent.
	HidingImpossible bool
}

// BuildFigure3 constructs the three Figure 3 scenarios.
func BuildFigure3() ([]Figure3Case, error) {
	types := spec.MVRTypes()
	var cases []Figure3Case

	// (a) Two concurrent writes to x; the read returns only w1. The store
	// pretends w0 -vis-> w1; the resulting abstract execution is correct and
	// causal, so with no witnesses hiding succeeds.
	a := abstract.New()
	w0 := a.Append(model.Event{Replica: 0, Act: model.ActDo, Object: "x", Op: model.Write("w0"), Rval: model.OKResponse()})
	w1 := a.Append(model.Event{Replica: 1, Act: model.ActDo, Object: "x", Op: model.Write("w1"), Rval: model.OKResponse()})
	r := a.Append(model.Event{Replica: 2, Act: model.ActDo, Object: "x", Op: model.Read(), Rval: model.ReadResponse([]model.Value{"w1"})})
	a.AddVis(w0, w1) // the pretend edge
	a.AddVis(w0, r)
	a.AddVis(w1, r)
	cases = append(cases, Figure3Case{
		Name:        "3a",
		Description: "hiding w0 by pretending w0-vis->w1: correct and causal",
		A:           a,
		Causal:      consistency.CheckCausal(a, types),
		OCC:         consistency.CheckOCC(a, types),
	})

	// (b) A witness w'1 (object y, before w0 at replica 0) now rides along:
	// pretending w0 -vis-> w1 forces w'1 -vis-> w1 by transitivity, and so
	// w'1 visible to replica 1's later read of y. The store stays correct by
	// pretending w'1 -vis-> ŵ, where ŵ is replica 1's own concurrent write
	// to y — more pretending, still causal.
	b := abstract.New()
	wp1 := b.Append(model.Event{Replica: 0, Act: model.ActDo, Object: "y", Op: model.Write("w'1"), Rval: model.OKResponse()})
	w0b := b.Append(model.Event{Replica: 0, Act: model.ActDo, Object: "x", Op: model.Write("w0"), Rval: model.OKResponse()})
	what := b.Append(model.Event{Replica: 1, Act: model.ActDo, Object: "y", Op: model.Write("ŵ"), Rval: model.OKResponse()})
	w1b := b.Append(model.Event{Replica: 1, Act: model.ActDo, Object: "x", Op: model.Write("w1"), Rval: model.OKResponse()})
	rp := b.Append(model.Event{Replica: 1, Act: model.ActDo, Object: "y", Op: model.Read(), Rval: model.ReadResponse([]model.Value{"ŵ"})})
	rb := b.Append(model.Event{Replica: 2, Act: model.ActDo, Object: "x", Op: model.Read(), Rval: model.ReadResponse([]model.Value{"w1"})})
	b.AddVis(wp1, w0b)  // session
	b.AddVis(what, w1b) // session
	b.AddVis(what, rp)  // session
	b.AddVis(w1b, rp)   // session
	b.AddVis(w0b, w1b)  // pretend w0 -vis-> w1
	b.AddVis(wp1, w1b)  // forced by transitivity
	b.AddVis(wp1, what) // pretend w'1 -vis-> ŵ (the repair)
	b.AddVis(wp1, rp)
	b.AddVis(w0b, rp)
	b.AddVis(w0b, rb)
	b.AddVis(w1b, rb)
	b.AddVis(wp1, rb)
	b.AddVis(what, rb) // transitivity through w1
	cases = append(cases, Figure3Case{
		Name:        "3b",
		Description: "witness w'1 repaired by pretending w'1-vis->ŵ: still correct and causal",
		A:           b,
		Causal:      consistency.CheckCausal(b, types),
		OCC:         consistency.CheckOCC(b, types),
	})

	// (c) The full Definition 18 witness pattern: y0 and y1 witness writes
	// with no concurrent same-object writes to hide behind. Exposing both
	// values is OCC; returning a single value is provably impossible.
	cExec := abstract.New()
	cwp1 := cExec.Append(model.Event{Replica: 0, Act: model.ActDo, Object: "y1", Op: model.Write("b1"), Rval: model.OKResponse()})
	cw0 := cExec.Append(model.Event{Replica: 0, Act: model.ActDo, Object: "x", Op: model.Write("w0"), Rval: model.OKResponse()})
	cwp0 := cExec.Append(model.Event{Replica: 1, Act: model.ActDo, Object: "y0", Op: model.Write("b0"), Rval: model.OKResponse()})
	cw1 := cExec.Append(model.Event{Replica: 1, Act: model.ActDo, Object: "x", Op: model.Write("w1"), Rval: model.OKResponse()})
	cr := cExec.Append(model.Event{Replica: 2, Act: model.ActDo, Object: "x", Op: model.Read(), Rval: model.ReadResponse([]model.Value{"w0", "w1"})})
	cExec.AddVis(cwp1, cw0) // session: w'1 visible to w0
	cExec.AddVis(cwp0, cw1) // session: w'0 visible to w1
	cExec.AddVis(cw0, cr)
	cExec.AddVis(cw1, cr)
	cExec.AddVis(cwp1, cr)
	cExec.AddVis(cwp0, cr)
	occCase := Figure3Case{
		Name:        "3c",
		Description: "Definition 18 witnesses force the read to return {w0,w1}",
		A:           cExec,
		Causal:      consistency.CheckCausal(cExec, types),
		OCC:         consistency.CheckOCC(cExec, types),
	}

	// The hiding variant of (c): same client history with the read's
	// response collapsed to {w1}, plus the observations that pin the
	// witnesses to the reader (reads of y0 and y1 returning the witness
	// values, and the writers' blind reads of each other's witness objects).
	hideHistory := []model.Event{
		{Replica: 0, Act: model.ActDo, Object: "y1", Op: model.Write("b1"), Rval: model.OKResponse()},
		{Replica: 0, Act: model.ActDo, Object: "x", Op: model.Write("w0"), Rval: model.OKResponse()},
		{Replica: 0, Act: model.ActDo, Object: "y1", Op: model.Write("b1'"), Rval: model.OKResponse()},
		{Replica: 0, Act: model.ActDo, Object: "y0", Op: model.Read(), Rval: model.ReadResponse(nil)},
		{Replica: 1, Act: model.ActDo, Object: "y0", Op: model.Write("b0"), Rval: model.OKResponse()},
		{Replica: 1, Act: model.ActDo, Object: "x", Op: model.Write("w1"), Rval: model.OKResponse()},
		{Replica: 1, Act: model.ActDo, Object: "y0", Op: model.Write("b0'"), Rval: model.OKResponse()},
		{Replica: 1, Act: model.ActDo, Object: "y1", Op: model.Read(), Rval: model.ReadResponse(nil)},
		{Replica: 2, Act: model.ActDo, Object: "y1", Op: model.Read(), Rval: model.ReadResponse([]model.Value{"b1'"})},
		{Replica: 2, Act: model.ActDo, Object: "y0", Op: model.Read(), Rval: model.ReadResponse([]model.Value{"b0'"})},
		{Replica: 2, Act: model.ActDo, Object: "x", Op: model.Read(), Rval: model.ReadResponse([]model.Value{"w1"})},
	}
	impossible, _, err := consistency.ProveNoCausalMVR(hideHistory, spec.MVRTypes())
	if err != nil {
		return nil, fmt.Errorf("core: figure 3c prover: %w", err)
	}
	occCase.HidingImpossible = impossible
	cases = append(cases, occCase)
	return cases, nil
}

// Section53Report is the outcome of the §5.3 experiment on the K-buffer
// store.
type Section53Report struct {
	StoreName string
	// InvisibleReadViolations counts Definition 16 violations observed — the
	// K-buffer store violates by design; the causal store must not.
	InvisibleReadViolations int
	// ImmediateRead is the peer's read response right after one message
	// delivery: non-empty for invisible-reads stores, empty for K-buffer.
	ImmediateRead model.Response
	// ExposedAfterKReads is the response after K further reads — eventual
	// consistency is retained.
	ExposedAfterKReads model.Response
}

// RunSection53 demonstrates that dropping invisible reads lets a store avoid
// causally consistent executions that every invisible-reads store admits:
// replica 0 writes x and broadcasts; replica 1 receives the message and
// immediately reads x.
func RunSection53(st store.Store, k int) *Section53Report {
	c := sim.NewCluster(st, 2, 1)
	const x = model.ObjectID("x")
	c.Do(0, x, model.Write("a"))
	c.Send(0)
	c.DeliverOne(1)
	rep := &Section53Report{StoreName: st.Name()}
	rep.ImmediateRead = c.Do(1, x, model.Read())
	for i := 0; i < k; i++ {
		rep.ExposedAfterKReads = c.Do(1, x, model.Read())
	}
	rep.InvisibleReadViolations = 0
	for _, v := range c.PropertyViolations() {
		if v.Property == "invisible reads" {
			rep.InvisibleReadViolations++
		}
	}
	return rep
}
