package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEachCell runs n independent experiment cells on a pool of parallel
// workers (0 defaults to GOMAXPROCS, 1 runs inline). Each cell writes its
// result into caller-owned, index-addressed storage, so output order never
// depends on scheduling; ForEachCell returns the error of the
// lowest-indexed failing cell, making the error deterministic too. It is
// the shared engine behind the Theorem 12 sweeps, the Theorem 6 batch
// construction, and cmd/figures' experiment grids.
func ForEachCell(parallel, n int, cell func(i int) error) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		// Inline fast path; stop at the first error like a plain loop.
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var nextIdx atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
