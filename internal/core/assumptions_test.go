package core

// Tests that probe the NECESSITY of Theorem 6's assumptions by running its
// construction against stores that each violate exactly one of them, and
// that extend the positive results to a second write-propagating store
// (state-based propagation), showing the theorems are about the assumptions,
// not about one implementation.

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/spec"
	"repro/internal/store/kbuffer"
	"repro/internal/store/lww"
	"repro/internal/store/statesync"
)

// TestTheorem6HoldsForStateBasedStore runs the §5.2.2 construction against
// the state-based store: it is write-propagating and provides MVRs, so
// compliance must hold exactly as for the op-based causal store.
func TestTheorem6HoldsForStateBasedStore(t *testing.T) {
	for _, rounds := range []int{1, 2, 4} {
		a := gen.WitnessedConcurrency(rounds, true)
		rep, err := ConstructCompliant(statesync.New(spec.MVRTypes()), a)
		if err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
		if !rep.Complies() {
			t.Fatalf("rounds=%d: mismatches %v", rounds, rep.Mismatches)
		}
	}
	occ, complied := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		a := gen.RandomCausal(gen.Config{Seed: seed, Events: 20, Revealing: true})
		if consistency.CheckOCC(a, spec.MVRTypes()) != nil {
			continue
		}
		occ++
		rep, err := ConstructCompliant(statesync.New(spec.MVRTypes()), a)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Complies() {
			complied++
		}
	}
	if occ == 0 || complied != occ {
		t.Fatalf("compliance %d/%d on OCC inputs", complied, occ)
	}
}

// TestTheorem6FailsWithoutInvisibleReads runs the construction against the
// K-buffer store, which violates Definition 16: delivered writes stay
// withheld, so reads that the OCC input requires to observe them come back
// empty — exactly the §5.3 escape hatch.
func TestTheorem6FailsWithoutInvisibleReads(t *testing.T) {
	a := gen.WitnessedConcurrency(2, true)
	rep, err := ConstructCompliant(kbuffer.New(spec.MVRTypes(), 5), a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complies() {
		t.Fatal("the K-buffer store reproduced an OCC execution it should be able to avoid")
	}
}

// TestTheorem6FailsWithoutMVRs runs the construction against the LWW store,
// which does not provide MVRs: reads required to return two concurrent
// writes return a single winner.
func TestTheorem6FailsWithoutMVRs(t *testing.T) {
	a := gen.WitnessedConcurrency(1, true)
	rep, err := ConstructCompliant(lww.New(spec.MVRTypes()), a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complies() {
		t.Fatal("the LWW store reproduced an execution with exposed concurrency")
	}
	// The failing event is an MVR read that needed both values.
	found := false
	for _, m := range rep.Mismatches {
		if m.Event.IsRead() && len(m.Event.Rval.Values) >= 2 && len(m.Got.Values) < 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a collapsed multi-value read among mismatches: %v", rep.Mismatches)
	}
}

// TestTheorem12HoldsForStateBasedStore runs the Figure 4 construction
// against the state-based store: m_g is the encoder's full state, which
// carries g bodily — decoding succeeds without the incremental probe, and
// the message is necessarily large.
func TestTheorem12HoldsForStateBasedStore(t *testing.T) {
	res, err := RunMessageLowerBound(statesync.New(spec.MVRTypes()), LowerBoundConfig{N: 5, S: 4, K: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DecodeOK {
		t.Fatalf("decoded %v, want %v", res.Decoded, res.G)
	}
	if res.MgBits < res.BoundBits {
		t.Fatalf("|m_g| = %d below the bound %d", res.MgBits, res.BoundBits)
	}
}

// TestTheorem12StateBasedPaysMore confirms the full-state m_g dwarfs the
// delta-based one on the same construction.
func TestTheorem12StateBasedPaysMore(t *testing.T) {
	cfg := LowerBoundConfig{N: 6, S: 5, K: 32, Seed: 3}
	delta, err := RunMessageLowerBound(causalStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunMessageLowerBound(statesync.New(spec.MVRTypes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.MgBits <= delta.MgBits {
		t.Fatalf("full-state m_g (%d bits) not larger than delta m_g (%d bits)", full.MgBits, delta.MgBits)
	}
}
