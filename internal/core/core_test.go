package core

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/causal"
	"repro/internal/store/kbuffer"
	"repro/internal/store/lww"
)

func causalStore() store.Store { return causal.New(spec.MVRTypes()) }

func TestFigure2HidingStoreProvablyInconsistent(t *testing.T) {
	rep, err := RunFigure2(lww.New(spec.MVRTypes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.XRead.Values) != 1 {
		t.Fatalf("LWW store read x = %s, expected a single hidden winner", rep.XRead)
	}
	if !rep.HidingImpossible {
		t.Fatal("deductive prover failed to refute the hiding store's history")
	}
	if len(rep.Trace) == 0 {
		t.Fatal("expected a contradiction trace")
	}
}

func TestFigure2ExposingStoreComplies(t *testing.T) {
	rep, err := RunFigure2(causalStore())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.XRead.Values) != 2 {
		t.Fatalf("causal store read x = %s, expected both concurrent writes", rep.XRead)
	}
	if rep.HidingImpossible {
		t.Fatal("prover refuted the exposing store's history, which has a complying causal execution")
	}
	if rep.DerivedCausal != nil {
		t.Fatalf("derived abstract execution not causally consistent: %v", rep.DerivedCausal)
	}
}

func TestFigure3Cases(t *testing.T) {
	cases, err := BuildFigure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(cases))
	}
	for _, c := range cases {
		if c.Causal != nil {
			t.Errorf("case %s not causally consistent: %v", c.Name, c.Causal)
		}
	}
	// 3a and 3b hide successfully (reads return singletons, so OCC is
	// vacuous); 3c exposes concurrency and is OCC, and its hiding variant is
	// provably impossible.
	for _, c := range cases {
		if c.OCC != nil {
			t.Errorf("case %s: OCC check failed: %v", c.Name, c.OCC)
		}
	}
	if !cases[2].HidingImpossible {
		t.Error("case 3c: hiding should be provably impossible")
	}
}

func TestTheorem6WitnessedConcurrencyComplies(t *testing.T) {
	for _, rounds := range []int{1, 2, 4} {
		a := gen.WitnessedConcurrency(rounds, true)
		if err := consistency.CheckOCC(a, spec.MVRTypes()); err != nil {
			t.Fatalf("rounds=%d: generated execution not OCC: %v", rounds, err)
		}
		report, err := ConstructCompliant(causalStore(), a)
		if err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
		if !report.Complies() {
			t.Fatalf("rounds=%d: construction mismatches: %v", rounds, report.Mismatches)
		}
		if err := VerifyHBWithinVis(report, a); err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
		if err := report.Exec.CheckWellFormed(); err != nil {
			t.Fatalf("rounds=%d: constructed execution ill-formed: %v", rounds, err)
		}
	}
}

func TestTheorem6RandomOCCExecutionsComply(t *testing.T) {
	tried, occ := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		a := gen.RandomCausal(gen.Config{Seed: seed, Events: 24, Revealing: true})
		if err := consistency.CheckCausal(a, spec.MVRTypes()); err != nil {
			t.Fatalf("seed %d: generator produced non-causal execution: %v", seed, err)
		}
		tried++
		if consistency.CheckOCC(a, spec.MVRTypes()) != nil {
			continue // causally consistent but not OCC: out of Theorem 6 scope
		}
		occ++
		report, err := ConstructCompliant(causalStore(), a)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !report.Complies() {
			t.Fatalf("seed %d: construction mismatches: %v\nexecution:\n%s", seed, report.Mismatches, a)
		}
	}
	if occ == 0 {
		t.Fatalf("no OCC executions among %d generated; generator too weak", tried)
	}
	t.Logf("verified compliance on %d/%d OCC executions", occ, tried)
}

func TestTheorem12DecodesG(t *testing.T) {
	res, err := RunMessageLowerBound(causalStore(), LowerBoundConfig{N: 5, S: 4, K: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DecodeOK {
		t.Fatalf("decode failed: got %v, want %v", res.Decoded, res.G)
	}
	if res.NPrime != 3 {
		t.Fatalf("n' = %d, want 3", res.NPrime)
	}
	if res.MgBits < res.NPrime {
		t.Fatalf("m_g suspiciously small: %d bits", res.MgBits)
	}
	if err := res.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("α_g ill-formed: %v", err)
	}
}

func TestTheorem12ExplicitG(t *testing.T) {
	res, err := RunMessageLowerBound(causalStore(), LowerBoundConfig{N: 4, S: 10, K: 5, G: []int{5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded[0] != 5 || res.Decoded[1] != 1 {
		t.Fatalf("decoded %v, want [5 1]", res.Decoded)
	}
}

func TestTheorem12MessageGrowsWithK(t *testing.T) {
	points, err := SweepK(causalStore, 6, 6, []int{2, 16, 256, 4096}, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].MgBits < points[i-1].MgBits {
			t.Fatalf("m_g shrank as k grew: %+v", points)
		}
	}
	if points[len(points)-1].MgBits <= points[0].MgBits {
		t.Fatalf("m_g did not grow from k=2 to k=4096: %+v", points)
	}
}

func TestTheorem12MessageGrowsWithMinNS(t *testing.T) {
	// With abundant objects, growing n grows n' and hence m_g.
	byN, err := SweepN(causalStore, []int{3, 5, 9}, 64, 64, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(byN); i++ {
		if byN[i].MgBits <= byN[i-1].MgBits {
			t.Fatalf("m_g did not grow with n: %+v", byN)
		}
	}
	// With abundant replicas, growing s grows n' — visible in the sparse
	// dependency encoding, whose m_g carries one entry per writer.
	sparse := func() store.Store {
		return causal.NewWithOptions(spec.MVRTypes(), causal.Options{SparseDeps: true})
	}
	byS, err := SweepS(sparse, 64, []int{2, 5, 9}, 64, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(byS); i++ {
		if byS[i].MgBits <= byS[i-1].MgBits {
			t.Fatalf("m_g did not grow with s: %+v", byS)
		}
	}
	// The dense encoding pays Θ(n·lg k) independent of s — exactly the §6
	// gap between the Ω(min{n,s}·lg k) bound and vector-clock algorithms.
	bySDense, err := SweepS(causalStore, 64, []int{2, 9}, 64, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bySDense[0].MgBits != bySDense[1].MgBits {
		t.Fatalf("dense m_g unexpectedly varied with s: %+v", bySDense)
	}
}

func TestSection53KBufferHidesImmediateRead(t *testing.T) {
	const k = 3
	rep := RunSection53(kbuffer.New(spec.MVRTypes(), k), k)
	if len(rep.ImmediateRead.Values) != 0 {
		t.Fatalf("K-buffer exposed the write immediately: %s", rep.ImmediateRead)
	}
	if rep.InvisibleReadViolations == 0 {
		t.Fatal("K-buffer store should violate invisible reads by design")
	}
	if len(rep.ExposedAfterKReads.Values) != 1 {
		t.Fatalf("K-buffer never exposed the write: %s (eventual consistency lost)", rep.ExposedAfterKReads)
	}
}

func TestSection53CausalStoreExposesImmediately(t *testing.T) {
	rep := RunSection53(causalStore(), 3)
	if len(rep.ImmediateRead.Values) != 1 {
		t.Fatalf("causal store hid an applied write: %s", rep.ImmediateRead)
	}
	if rep.InvisibleReadViolations != 0 {
		t.Fatalf("causal store violated invisible reads %d times", rep.InvisibleReadViolations)
	}
}
