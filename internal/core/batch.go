package core

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/gen"
	"repro/internal/spec"
	"repro/internal/store"
)

// Theorem6Cell is the outcome of the §5.2.2 construction on one generated
// abstract execution of a Theorem 6 batch.
type Theorem6Cell struct {
	// Seed is the cell's split sub-seed (gen.SplitSeed of the batch root).
	Seed int64
	// Events is |H| of the generated execution.
	Events int
	// OCC reports whether the generated execution is observably causally
	// consistent (only OCC inputs are in Theorem 6's scope).
	OCC bool
	// Complies reports whether the construction reproduced every response.
	Complies bool
	// HBWithinVis reports the Proposition 8 consequence on the constructed
	// execution (checked only for OCC inputs).
	HBWithinVis bool
}

// Theorem6Batch generates count random revealing causal executions from one
// root seed and runs the Theorem 6 construction on each, on parallel
// workers. Cell i derives its own RNG stream via gen.SplitSeed(rootSeed, i)
// and its own store instance from newStore, so the batch is reproducible
// from the root seed and byte-identical for every parallel value. cfg
// supplies the generator shape (Events, Replicas, ...); its Seed and
// Revealing fields are overridden per cell (Theorem 6's scope needs
// revealing inputs).
func Theorem6Batch(newStore func() store.Store, cfg gen.Config, rootSeed int64, count, parallel int) ([]Theorem6Cell, error) {
	cells := make([]Theorem6Cell, count)
	err := ForEachCell(parallel, count, func(i int) error {
		gcfg := cfg
		gcfg.Seed = gen.SplitSeed(rootSeed, i)
		gcfg.Revealing = true
		a := gen.RandomCausal(gcfg)
		cell := Theorem6Cell{Seed: gcfg.Seed, Events: a.Len()}
		cell.OCC = consistency.CheckOCC(a, spec.MVRTypes()) == nil
		if cell.OCC {
			rep, err := ConstructCompliant(newStore(), a)
			if err != nil {
				return fmt.Errorf("core: theorem 6 batch cell %d (seed %d): %w", i, gcfg.Seed, err)
			}
			cell.Complies = rep.Complies()
			cell.HBWithinVis = VerifyHBWithinVis(rep, a) == nil
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// Theorem6Tally aggregates a batch: how many cells were OCC, and how many
// of those complied (Theorem 6 asserts the two are equal).
func Theorem6Tally(cells []Theorem6Cell) (occ, complied int) {
	for _, c := range cells {
		if c.OCC {
			occ++
			if c.Complies {
				complied++
			}
		}
	}
	return occ, complied
}
