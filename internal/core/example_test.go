package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/spec"
	"repro/internal/store/causal"
	"repro/internal/store/lww"
)

// ExampleConstructCompliant runs the Theorem 6 recursion: any OCC abstract
// execution is reproduced, response for response, by a live
// write-propagating store.
func ExampleConstructCompliant() {
	a := gen.WitnessedConcurrency(1, true) // a revealing OCC execution
	report, err := core.ConstructCompliant(causal.New(spec.MVRTypes()), a)
	if err != nil {
		panic(err)
	}
	fmt.Println("events:", a.Len())
	fmt.Println("complies:", report.Complies())
	// Output:
	// events: 9
	// complies: true
}

// ExampleRunMessageLowerBound runs the Theorem 12 / Figure 4 construction:
// g is encoded into the single message m_g and decoded back by a replica
// that saw only the g-independent prefix.
func ExampleRunMessageLowerBound() {
	res, err := core.RunMessageLowerBound(causal.New(spec.MVRTypes()), core.LowerBoundConfig{
		N: 4, S: 3, K: 8, G: []int{3, 7},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("decoded:", res.Decoded)
	fmt.Println("message bits ≥ bound:", res.MgBits >= res.BoundBits)
	// Output:
	// decoded: [3 7]
	// message bits ≥ bound: true
}

// ExampleRunFigure2 shows the Figure 2 inference: the store that totally
// orders concurrent MVR writes produces a client history no causally
// consistent abstract execution can explain.
func ExampleRunFigure2() {
	rep, err := core.RunFigure2(lww.New(spec.MVRTypes()))
	if err != nil {
		panic(err)
	}
	fmt.Println("read of x:", rep.XRead)
	fmt.Println("hiding provably impossible:", rep.HidingImpossible)
	// Output:
	// read of x: {a2}
	// hiding provably impossible: true
}

// ExampleVerifyProposition2 checks the information-flow floor on a recorded
// run.
func ExampleVerifyProposition2() {
	cluster, _ := core.Figure2Schedule(causal.New(spec.MVRTypes()))
	fmt.Println(core.VerifyProposition2(cluster.Execution()) == nil)
	// Output:
	// true
}
