package core

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/causal"
)

func causalFactory() store.Store { return causal.New(spec.MVRTypes()) }

func TestForEachCellVisitsEveryIndexOnce(t *testing.T) {
	for _, parallel := range []int{0, 1, 2, 7, 100} {
		const n = 50
		var counts [n]atomic.Int32
		if err := ForEachCell(parallel, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("parallel=%d: cell %d ran %d times", parallel, i, c)
			}
		}
	}
}

// TestForEachCellReturnsLowestIndexError pins the deterministic error
// contract: whichever worker finishes first, the reported error is the
// lowest-indexed failing cell's.
func TestForEachCellReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, parallel := range []int{1, 2, 8} {
		err := ForEachCell(parallel, 20, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 15:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("parallel=%d: err = %v, want %v", parallel, err, errLow)
		}
	}
}

// TestSweepsParallelMatchSequential checks every sweep produces identical
// points for any worker count.
func TestSweepsParallelMatchSequential(t *testing.T) {
	ks := []int{2, 8, 32}
	ns := []int{3, 4, 6}
	ss := []int{2, 3, 5}

	seqK, err := SweepK(causalFactory, 6, 6, ks, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	seqN, err := SweepN(causalFactory, ns, 6, 16, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	seqS, err := SweepS(causalFactory, 6, ss, 16, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	seqG, err := SweepGrid(causalFactory, ns, ss, ks, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqG) != len(ns)*len(ss)*len(ks) {
		t.Fatalf("grid has %d cells, want %d", len(seqG), len(ns)*len(ss)*len(ks))
	}

	for _, workers := range []int{2, 4} {
		parK, err := SweepK(causalFactory, 6, 6, ks, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		parN, err := SweepN(causalFactory, ns, 6, 16, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		parS, err := SweepS(causalFactory, 6, ss, 16, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		parG, err := SweepGrid(causalFactory, ns, ss, ks, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, cmp := range []struct {
			name     string
			seq, par []SweepPoint
		}{
			{"k", seqK, parK}, {"n", seqN, parN}, {"s", seqS, parS}, {"grid", seqG, parG},
		} {
			if !reflect.DeepEqual(cmp.seq, cmp.par) {
				t.Errorf("sweep %s: parallel=%d differs from sequential", cmp.name, workers)
			}
		}
	}
}

// TestSweepGridRowMajorOrder pins the (n, then s, then k) cell order the
// rendered tables rely on.
func TestSweepGridRowMajorOrder(t *testing.T) {
	ns, ss, ks := []int{3, 4}, []int{2, 3}, []int{2, 8}
	points, err := SweepGrid(causalFactory, ns, ss, ks, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, n := range ns {
		for _, s := range ss {
			for _, k := range ks {
				if points[i].N != n || points[i].S != s || points[i].K != k {
					t.Fatalf("cell %d = (n=%d, s=%d, k=%d), want (n=%d, s=%d, k=%d)",
						i, points[i].N, points[i].S, points[i].K, n, s, k)
				}
				i++
			}
		}
	}
}

// TestTheorem6BatchDeterministicAndCompliant checks the batch is identical
// for every worker count and that Theorem 6 holds on it: every OCC cell
// complies and keeps hb ⊆ vis.
func TestTheorem6BatchDeterministicAndCompliant(t *testing.T) {
	cfg := gen.Config{Events: 18}
	seq, err := Theorem6Batch(causalFactory, cfg, 11, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	occ, complied := Theorem6Tally(seq)
	if occ == 0 {
		t.Fatal("batch produced no OCC executions; the experiment is vacuous")
	}
	if complied != occ {
		t.Fatalf("Theorem 6 violated: %d/%d OCC cells complied", complied, occ)
	}
	for _, c := range seq {
		if c.OCC && !c.HBWithinVis {
			t.Fatalf("cell with seed %d: hb ⊄ vis on an OCC input", c.Seed)
		}
	}
	for _, workers := range []int{2, 4} {
		par, err := Theorem6Batch(causalFactory, cfg, 11, 40, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("parallel=%d batch differs from sequential", workers)
		}
	}
}
