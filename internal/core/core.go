package core
