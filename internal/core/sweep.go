package core

import (
	"fmt"

	"repro/internal/store"
)

// SweepPoint is one measured row of the Theorem 12 message-size sweep.
type SweepPoint struct {
	N, S, K   int
	NPrime    int
	MgBits    int
	BoundBits int
	// BitsPerCoordinate is MgBits / NPrime, exposing the per-writer lg k
	// growth.
	BitsPerCoordinate float64
	DecodeOK          bool
}

// SweepK measures |m_g| for growing k at fixed n and s, exhibiting the lg k
// growth of Theorem 12.
func SweepK(st func() store.Store, n, s int, ks []int, seed int64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ks))
	for _, k := range ks {
		res, err := RunMessageLowerBound(st(), LowerBoundConfig{N: n, S: s, K: k, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("core: sweep k=%d: %w", k, err)
		}
		out = append(out, point(res))
	}
	return out, nil
}

// SweepN measures |m_g| for growing n at fixed s and k, exhibiting the
// min{n−2, s−1} factor: growth is linear in n until n−2 crosses s−1, then
// flat in the bound while the dense-clock implementation keeps paying O(n)
// (the §6 gap between the Ω(min{n,s}·lg k) bound and the O(n·k)-style
// vector-clock upper bound).
func SweepN(st func() store.Store, ns []int, s, k int, seed int64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ns))
	for _, n := range ns {
		res, err := RunMessageLowerBound(st(), LowerBoundConfig{N: n, S: s, K: k, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("core: sweep n=%d: %w", n, err)
		}
		out = append(out, point(res))
	}
	return out, nil
}

// SweepS measures |m_g| for growing s at fixed n and k.
func SweepS(st func() store.Store, n int, ss []int, k int, seed int64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ss))
	for _, s := range ss {
		res, err := RunMessageLowerBound(st(), LowerBoundConfig{N: n, S: s, K: k, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("core: sweep s=%d: %w", s, err)
		}
		out = append(out, point(res))
	}
	return out, nil
}

func point(res *LowerBoundResult) SweepPoint {
	p := SweepPoint{
		N: res.N, S: res.S, K: res.K, NPrime: res.NPrime,
		MgBits: res.MgBits, BoundBits: res.BoundBits, DecodeOK: res.DecodeOK,
	}
	if res.NPrime > 0 {
		p.BitsPerCoordinate = float64(res.MgBits) / float64(res.NPrime)
	}
	return p
}
