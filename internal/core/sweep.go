package core

import (
	"fmt"

	"repro/internal/store"
)

// SweepPoint is one measured row of the Theorem 12 message-size sweep.
type SweepPoint struct {
	N, S, K   int
	NPrime    int
	MgBits    int
	BoundBits int
	// BitsPerCoordinate is MgBits / NPrime, exposing the per-writer lg k
	// growth.
	BitsPerCoordinate float64
	DecodeOK          bool
}

// Sweep cells are independent α_g constructions, each against its own
// simulator instance from the st factory, so they parallelize across
// ForEachCell workers; results land in input order and are byte-identical
// for every parallel value.

// SweepK measures |m_g| for growing k at fixed n and s, exhibiting the lg k
// growth of Theorem 12.
func SweepK(st func() store.Store, n, s int, ks []int, seed int64, parallel int) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(ks))
	err := ForEachCell(parallel, len(ks), func(i int) error {
		res, err := RunMessageLowerBound(st(), LowerBoundConfig{N: n, S: s, K: ks[i], Seed: seed})
		if err != nil {
			return fmt.Errorf("core: sweep k=%d: %w", ks[i], err)
		}
		out[i] = point(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepN measures |m_g| for growing n at fixed s and k, exhibiting the
// min{n−2, s−1} factor: growth is linear in n until n−2 crosses s−1, then
// flat in the bound while the dense-clock implementation keeps paying O(n)
// (the §6 gap between the Ω(min{n,s}·lg k) bound and the O(n·k)-style
// vector-clock upper bound).
func SweepN(st func() store.Store, ns []int, s, k int, seed int64, parallel int) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(ns))
	err := ForEachCell(parallel, len(ns), func(i int) error {
		res, err := RunMessageLowerBound(st(), LowerBoundConfig{N: ns[i], S: s, K: k, Seed: seed})
		if err != nil {
			return fmt.Errorf("core: sweep n=%d: %w", ns[i], err)
		}
		out[i] = point(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepS measures |m_g| for growing s at fixed n and k.
func SweepS(st func() store.Store, n int, ss []int, k int, seed int64, parallel int) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(ss))
	err := ForEachCell(parallel, len(ss), func(i int) error {
		res, err := RunMessageLowerBound(st(), LowerBoundConfig{N: n, S: ss[i], K: k, Seed: seed})
		if err != nil {
			return fmt.Errorf("core: sweep s=%d: %w", ss[i], err)
		}
		out[i] = point(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepGrid measures the full (n, s, k) cross product — len(ns)·len(ss)·
// len(ks) independent constructions — in row-major (n, then s, then k)
// order. The grid is the volume-opening sweep: parallel cells make ranges
// practical that a single-threaded loop could not cover.
func SweepGrid(st func() store.Store, ns, ss, ks []int, seed int64, parallel int) ([]SweepPoint, error) {
	total := len(ns) * len(ss) * len(ks)
	out := make([]SweepPoint, total)
	err := ForEachCell(parallel, total, func(i int) error {
		n := ns[i/(len(ss)*len(ks))]
		s := ss[(i/len(ks))%len(ss)]
		k := ks[i%len(ks)]
		res, err := RunMessageLowerBound(st(), LowerBoundConfig{N: n, S: s, K: k, Seed: seed})
		if err != nil {
			return fmt.Errorf("core: sweep cell (n=%d, s=%d, k=%d): %w", n, s, k, err)
		}
		out[i] = point(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func point(res *LowerBoundResult) SweepPoint {
	p := SweepPoint{
		N: res.N, S: res.S, K: res.K, NPrime: res.NPrime,
		MgBits: res.MgBits, BoundBits: res.BoundBits, DecodeOK: res.DecodeOK,
	}
	if res.NPrime > 0 {
		p.BitsPerCoordinate = float64(res.MgBits) / float64(res.NPrime)
	}
	return p
}
