package core

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/execution"
	"repro/internal/model"
	"repro/internal/store"
)

// Theorem 12: a causally+eventually consistent write-propagating store with
// s MVRs on n replicas must, for every k, send an Ω(min{n−2, s−1}·lg k)-bit
// message in some execution. The proof encodes an arbitrary function
// g: [n'] → [k] (n' = min{n−2, s−1}) into the single message m_g broadcast
// by replica R_{n-1} after it writes y, and then DECODES g from m_g at a
// replica that never saw the g-dependent deliveries — so m_g must carry
// n'·lg k bits. This file runs that construction (the paper's Figure 4)
// against a live store and machine-checks the decoding.

// LowerBoundConfig parameterizes one α_g construction.
type LowerBoundConfig struct {
	// N is the number of replicas (≥ 3).
	N int
	// S is the number of MVR objects (≥ 2): x_1..x_{n'} and y (any further
	// objects are simply unused, as in the paper).
	S int
	// K is the per-writer operation count; g maps into [1..K].
	K int
	// G is the function to encode, G[i] ∈ [1..K] for i ∈ [0..n'-1]. If nil a
	// seeded random g is drawn.
	G []int
	// Seed seeds the random g.
	Seed int64
}

// LowerBoundResult reports the measured construction.
type LowerBoundResult struct {
	N, S, K int
	// NPrime is min{N−2, S−1}, the number of encoding writers.
	NPrime int
	// G is the encoded function (1-based values).
	G []int
	// MgBits is the measured size of m_g in bits.
	MgBits int
	// BoundBits is the information-theoretic content NPrime·⌈lg K⌉ the
	// theorem says some message must carry.
	BoundBits int
	// BetaMaxBits is the largest β-phase message (the g-independent
	// prefix), for contrast with m_g.
	BetaMaxBits int
	// TotalMessages counts every message broadcast in α_g.
	TotalMessages int
	// Decoded is the function recovered from m_g; DecodeOK reports whether
	// it equals G.
	Decoded  []int
	DecodeOK bool
	// Exec is the recorded α_g (β·γ phases; decoding runs on raw payloads).
	Exec *execution.Execution
}

// String summarizes the result as one table row.
func (r *LowerBoundResult) String() string {
	return fmt.Sprintf("n=%d s=%d k=%d n'=%d |m_g|=%d bits bound=%d bits decode=%v",
		r.N, r.S, r.K, r.NPrime, r.MgBits, r.BoundBits, r.DecodeOK)
}

// xObject returns the name of MVR x_i (1-based).
func xObject(i int) model.ObjectID { return model.ObjectID("x" + strconv.Itoa(i)) }

// yObject is the flag MVR the encoder writes.
const yObject = model.ObjectID("y")

// encodeValue renders the paper's write value ⟨j,i⟩.
func encodeValue(j, i int) model.Value {
	return model.Value(strconv.Itoa(j) + "," + strconv.Itoa(i))
}

// parseValue recovers (j, i) from ⟨j,i⟩.
func parseValue(v model.Value) (j, i int, err error) {
	parts := strings.SplitN(string(v), ",", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("core: malformed encoded value %q", v)
	}
	j, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	i, err = strconv.Atoi(parts[1])
	return j, i, err
}

// RunMessageLowerBound executes α_g = β·γ_g against st and decodes g from
// m_g (Figure 4).
//
// Replica roles (0-based): the decoder is R_0 (it takes no part in α_g, so
// it is in its initial state, like the paper's R_n); the writers are
// R_1..R_{n'}; the encoder is R_{N-1}.
//
//	β:  writer R_i performs writes w_i^1..w_i^K to x_i, broadcasting message
//	    m_i^j after each (Lemma 5 guarantees a pending message exists).
//	γ:  the encoder receives m_i^1..m_i^{g(i)} for each i, reading x_i after
//	    each delivery; it then writes 1 to y and broadcasts m_g.
//
// Decoding g(i) given m_g: a fresh replica receives every β message except
// R_i's (these are g-independent), then m_g — which cannot become visible,
// since its causal past contains w_i^{g(i)} — then R_i's messages one at a
// time, reading y after each. The read of y first returns the flag write
// exactly after the g(i)-th delivery; reading x_i then yields ⟨g(i), i⟩.
func RunMessageLowerBound(st store.Store, cfg LowerBoundConfig) (*LowerBoundResult, error) {
	nPrime := cfg.N - 2
	if cfg.S-1 < nPrime {
		nPrime = cfg.S - 1
	}
	if nPrime < 1 {
		return nil, fmt.Errorf("core: need n ≥ 3 and s ≥ 2 (got n=%d, s=%d)", cfg.N, cfg.S)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: need k ≥ 1, got %d", cfg.K)
	}
	g := cfg.G
	if g == nil {
		rng := rand.New(rand.NewSource(cfg.Seed))
		g = make([]int, nPrime)
		for i := range g {
			g[i] = 1 + rng.Intn(cfg.K)
		}
	}
	if len(g) != nPrime {
		return nil, fmt.Errorf("core: g has %d entries, want n'=%d", len(g), nPrime)
	}
	for i, v := range g {
		if v < 1 || v > cfg.K {
			return nil, fmt.Errorf("core: g(%d)=%d outside [1..%d]", i+1, v, cfg.K)
		}
	}

	res := &LowerBoundResult{
		N: cfg.N, S: cfg.S, K: cfg.K, NPrime: nPrime, G: g,
		BoundBits: nPrime * int(math.Ceil(math.Log2(float64(cfg.K)))),
		Exec:      execution.New(),
	}

	encoderID := model.ReplicaID(cfg.N - 1)
	writers := make([]store.Replica, nPrime+1) // 1-based
	for i := 1; i <= nPrime; i++ {
		writers[i] = st.NewReplica(model.ReplicaID(i), cfg.N)
	}
	encoder := st.NewReplica(encoderID, cfg.N)

	// β: the g-independent write/broadcast phase. beta[i][j] is message
	// m_i^j (1-based in both coordinates); betaPayloads keeps the raw bytes
	// for the decoder.
	beta := make([][]int, nPrime+1)
	betaPayloads := make([][][]byte, nPrime+1)
	for i := 1; i <= nPrime; i++ {
		beta[i] = make([]int, cfg.K+1)
		betaPayloads[i] = make([][]byte, cfg.K+1)
		for j := 1; j <= cfg.K; j++ {
			resp := writers[i].Do(xObject(i), model.Write(encodeValue(j, i)))
			res.Exec.AppendDo(model.ReplicaID(i), xObject(i), model.Write(encodeValue(j, i)), resp)
			payload := writers[i].PendingMessage()
			if payload == nil {
				return nil, fmt.Errorf("core: writer R_%d has no pending message after w_%d^%d (Lemma 5 violated)", i, i, j)
			}
			sent := res.Exec.AppendSend(model.ReplicaID(i), payload)
			writers[i].OnSend()
			beta[i][j] = sent.MsgID
			betaPayloads[i][j] = payload
			if bits := len(payload) * 8; bits > res.BetaMaxBits {
				res.BetaMaxBits = bits
			}
			res.TotalMessages++
		}
	}

	// γ: the encoder absorbs the first g(i) messages of each writer,
	// reading x_i after each delivery, then writes the flag and broadcasts
	// m_g.
	for i := 1; i <= nPrime; i++ {
		for j := 1; j <= g[i-1]; j++ {
			msg, _ := res.Exec.Message(beta[i][j])
			res.Exec.AppendReceive(encoderID, beta[i][j])
			encoder.Receive(msg.Payload)
			got := encoder.Do(xObject(i), model.Read())
			res.Exec.AppendDo(encoderID, xObject(i), model.Read(), got)
			want := model.ReadResponse([]model.Value{encodeValue(j, i)})
			if !got.Equal(want) {
				return nil, fmt.Errorf("core: encoder read of %s after m_%d^%d returned %s, want %s", xObject(i), i, j, got, want)
			}
		}
	}
	resp := encoder.Do(yObject, model.Write("1"))
	res.Exec.AppendDo(encoderID, yObject, model.Write("1"), resp)
	mg := encoder.PendingMessage()
	if mg == nil {
		return nil, fmt.Errorf("core: encoder has no pending message after writing y (Lemma 5 violated)")
	}
	res.Exec.AppendSend(encoderID, mg)
	encoder.OnSend()
	res.TotalMessages++
	res.MgBits = len(mg) * 8

	// Decoding: one fresh replica per coordinate, driven by raw payloads.
	res.Decoded = make([]int, nPrime)
	for i := 1; i <= nPrime; i++ {
		u, err := decodeCoordinate(st, cfg, betaPayloads, mg, i, nPrime)
		if err != nil {
			return nil, fmt.Errorf("core: decode g(%d): %w", i, err)
		}
		res.Decoded[i-1] = u
	}
	res.DecodeOK = true
	for i := range g {
		if g[i] != res.Decoded[i] {
			res.DecodeOK = false
		}
	}
	return res, res.validateDecode()
}

func (r *LowerBoundResult) validateDecode() error {
	if !r.DecodeOK {
		return fmt.Errorf("core: decoded %v, want %v", r.Decoded, r.G)
	}
	return nil
}

// decodeCoordinate runs the paper's d_i transition sequence on a fresh
// replica: deliver all β messages of writers p ≠ i, then m_g (which must
// stay invisible), then R_i's messages in order, reading y after each, until
// the flag appears; x_i then holds ⟨g(i), i⟩.
func decodeCoordinate(st store.Store, cfg LowerBoundConfig, betaPayloads [][][]byte, mg []byte, i, nPrime int) (int, error) {
	dec := st.NewReplica(0, cfg.N)
	for p := 1; p <= nPrime; p++ {
		if p == i {
			continue
		}
		for j := 1; j <= cfg.K; j++ {
			dec.Receive(betaPayloads[p][j])
		}
	}
	dec.Receive(mg)
	if got := dec.Do(yObject, model.Read()); len(got.Values) != 0 {
		// A delta-based causal store must buffer m_g here — its causal past
		// includes w_i^{g(i)}, which the decoder lacks. A full-state store
		// (statesync) instead ships the dependencies bodily inside m_g, so
		// the flag is visible immediately and x_i is directly readable; the
		// decoding still extracts g(i) from m_g alone, just without the
		// incremental-delivery probe. Either way m_g must carry the
		// information, which is the theorem's point.
		xv := dec.Do(xObject(i), model.Read())
		if len(xv.Values) != 1 {
			return 0, fmt.Errorf("flag visible after m_g alone but %s reads %s: causal consistency violated", xObject(i), xv)
		}
		u, ii, err := parseValue(xv.Values[0])
		if err != nil || ii != i {
			return 0, fmt.Errorf("flag visible after m_g alone but %s holds %s: causal consistency violated", xObject(i), xv)
		}
		return u, nil
	}
	for j := 1; j <= cfg.K; j++ {
		dec.Receive(betaPayloads[i][j])
		got := dec.Do(yObject, model.Read())
		if len(got.Values) == 0 {
			continue
		}
		xv := dec.Do(xObject(i), model.Read())
		if len(xv.Values) != 1 {
			return 0, fmt.Errorf("read of %s returned %s, want a single value", xObject(i), xv)
		}
		u, ii, err := parseValue(xv.Values[0])
		if err != nil {
			return 0, err
		}
		if ii != i {
			return 0, fmt.Errorf("read of %s returned value of x%d", xObject(i), ii)
		}
		if u != j {
			return 0, fmt.Errorf("flag appeared after %d deliveries but x_%d holds ⟨%d,%d⟩", j, i, u, ii)
		}
		return u, nil
	}
	return 0, fmt.Errorf("flag never became visible after all %d deliveries", cfg.K)
}
