// Package core implements the paper's primary contribution as executable
// algorithms: the revealing-execution transformation (§5.2.1), the recursive
// construction of a concrete execution complying with any observably
// causally consistent abstract execution (§5.2.2, the heart of Theorem 6),
// its machine-checked compliance verification (§5.2.3), and the Theorem 12
// message-size lower-bound construction with its decoder (Figure 4).
package core

import (
	"fmt"

	"repro/internal/abstract"
	"repro/internal/execution"
	"repro/internal/model"
	"repro/internal/store"
)

// Mismatch records one compliance failure of the Theorem 6 construction: a
// do event whose constructed response differs from the abstract execution's.
type Mismatch struct {
	// Index is the event's position in H.
	Index int
	// Event is the abstract event e, carrying the expected rval(e).
	Event model.Event
	// Got is rval(ê), the response the live store produced.
	Got model.Response
}

// String renders the mismatch.
func (m Mismatch) String() string {
	return fmt.Sprintf("H[%d] = %s: store returned %s", m.Index, m.Event, m.Got)
}

// ConstructionReport is the outcome of running the §5.2.2 construction.
type ConstructionReport struct {
	// Exec is the constructed concrete execution α.
	Exec *execution.Execution
	// Mismatches lists events where rval(ê) ≠ rval(e). Theorem 6 asserts
	// this is empty whenever the input is a revealing OCC abstract execution
	// and the store is write-propagating, eventually consistent, and
	// provides MVRs.
	Mismatches []Mismatch
	// MessagesSent and MessagesDelivered count the construction's step-3
	// sends and step-1 deliveries.
	MessagesSent      int
	MessagesDelivered int
}

// Complies reports whether the construction reproduced every response.
func (r *ConstructionReport) Complies() bool { return len(r.Mismatches) == 0 }

// ConstructCompliant runs the recursive construction of §5.2.2: it builds,
// event by event, a concrete execution α of store st intended to comply with
// the abstract execution a. For each event e of H at replica R, in order:
//
//	(1) Message delivery: for every e' with e' -vis-> e, in H order, the
//	    first message broadcast by R(e') after e' (if any) is delivered to R
//	    unless already delivered.
//	(2) Invoking op(e): ê = R.Do(obj(e), op(e)); the construction then
//	    compares rval(ê) with rval(e).
//	(3) Message sending: if R now has a pending message, it is broadcast
//	    (recorded once; deliveries happen lazily in later step-1s).
//
// The returned report carries α and all response mismatches; the proof of
// Theorem 6 (Lemmas 10 and 11) is precisely that no mismatch can occur when
// a is revealing and observably causally consistent.
func ConstructCompliant(st store.Store, a *abstract.Execution) (*ConstructionReport, error) {
	replicas := a.Replicas()
	if len(replicas) == 0 {
		return &ConstructionReport{Exec: execution.New()}, nil
	}
	n := int(replicas[len(replicas)-1]) + 1

	live := make(map[model.ReplicaID]store.Replica, n)
	for _, r := range replicas {
		live[r] = st.NewReplica(r, n)
	}

	report := &ConstructionReport{Exec: execution.New()}
	msgAfter := make([]int, a.Len()) // msgAfter[j] = msgID broadcast in step 3 of event j, or -1
	for j := range msgAfter {
		msgAfter[j] = -1
	}
	delivered := make(map[[2]int]bool) // (msgID, replica) -> already delivered

	for j, e := range a.H {
		r := e.Replica
		rep := live[r]

		// Step 1: deliver the post-e' messages of e's visibility
		// predecessors, in H order.
		for _, i := range a.VisPreds(j) {
			if a.H[i].Replica == r {
				continue
			}
			mid := msgAfter[i]
			if mid < 0 {
				continue
			}
			key := [2]int{mid, int(r)}
			if delivered[key] {
				continue
			}
			delivered[key] = true
			msg, ok := report.Exec.Message(mid)
			if !ok {
				return nil, fmt.Errorf("core: construction lost message m%d", mid)
			}
			report.Exec.AppendReceive(r, mid)
			rep.Receive(msg.Payload)
			report.MessagesDelivered++
		}

		// Step 2: invoke the operation.
		got := rep.Do(e.Object, e.Op)
		report.Exec.AppendDo(r, e.Object, e.Op, got)
		if !got.Equal(e.Rval) {
			report.Mismatches = append(report.Mismatches, Mismatch{Index: j, Event: e, Got: got})
		}

		// Step 3: broadcast the pending message, if any.
		if payload := rep.PendingMessage(); payload != nil {
			sent := report.Exec.AppendSend(r, payload)
			rep.OnSend()
			msgAfter[j] = sent.MsgID
			report.MessagesSent++
		}
	}
	return report, nil
}

// VerifyHBWithinVis checks Proposition 8's consequence on a constructed
// execution: for do events, happens-before in α implies visibility in A (the
// construction never smuggles information flow outside vis). The do events
// of α must correspond one-to-one with H in order.
func VerifyHBWithinVis(report *ConstructionReport, a *abstract.Execution) error {
	hb := execution.ComputeHB(report.Exec)
	var doSeqs []int
	for _, e := range report.Exec.Events {
		if e.IsDo() {
			doSeqs = append(doSeqs, e.Seq)
		}
	}
	if len(doSeqs) != a.Len() {
		return fmt.Errorf("core: constructed execution has %d do events, abstract has %d", len(doSeqs), a.Len())
	}
	for j := range doSeqs {
		for i := 0; i < j; i++ {
			if hb.Before(doSeqs[i], doSeqs[j]) && !a.Vis(i, j) {
				return fmt.Errorf("core: constructed hb edge H[%d]->H[%d] outside vis", i, j)
			}
		}
	}
	return nil
}
