package core

import (
	"fmt"

	"repro/internal/execution"
	"repro/internal/model"
)

// VerifyProposition2 checks Proposition 2 on a recorded concrete execution:
// for any data store providing MVRs, if a read r returns the value of a
// write w, then w happens before r. Values are resolved to writes by the
// paper's distinct-written-values assumption (per object).
//
// This is the information-flow floor under everything else: a returned value
// must have physically reached the reading replica through messages.
func VerifyProposition2(x *execution.Execution) error {
	hb := execution.ComputeHB(x)
	type key struct {
		obj model.ObjectID
		val model.Value
	}
	writes := make(map[key]int)
	for _, e := range x.Events {
		if e.IsWrite() && e.Op.Kind == model.OpWrite {
			k := key{e.Object, e.Op.Arg}
			if prev, dup := writes[k]; dup {
				return fmt.Errorf("core: events %d and %d both write %q to %s (distinct-values assumption violated)",
					prev, e.Seq, e.Op.Arg, e.Object)
			}
			writes[k] = e.Seq
		}
	}
	for _, e := range x.Events {
		if !e.IsRead() {
			continue
		}
		for _, v := range e.Rval.Values {
			w, ok := writes[key{e.Object, v}]
			if !ok {
				return fmt.Errorf("core: read %d returns %q with no writing event", e.Seq, v)
			}
			if !hb.Before(w, e.Seq) {
				return fmt.Errorf("core: Proposition 2 violated: read %d returns value of write %d without w -hb-> r", e.Seq, w)
			}
		}
	}
	return nil
}
