package execution

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Timeline renders the execution as an ASCII space-time diagram: one column
// per replica, one row per event in global order, with message identifiers
// linking sends to receives. Intended for debugging and for the examples —
// the textual cousin of the paper's figures.
//
//	r0                  r1                  r2
//	W x=a
//	S m0
//	                    R m0
//	                    W y=b
func (x *Execution) Timeline() string {
	replicas := x.Replicas()
	if len(replicas) == 0 {
		return "(empty execution)\n"
	}
	col := make(map[model.ReplicaID]int, len(replicas))
	for i, r := range replicas {
		col[r] = i
	}
	const width = 20
	var b strings.Builder
	for _, r := range replicas {
		fmt.Fprintf(&b, "%-*s", width, fmt.Sprintf("r%d", r))
	}
	b.WriteByte('\n')
	for _, e := range x.Events {
		cell := describe(e)
		if len(cell) > width-2 {
			cell = cell[:width-2]
		}
		b.WriteString(strings.Repeat(" ", col[e.Replica]*width))
		b.WriteString(cell)
		b.WriteByte('\n')
	}
	return b.String()
}

// describe renders one event compactly for the timeline.
func describe(e model.Event) string {
	switch e.Act {
	case model.ActDo:
		switch e.Op.Kind {
		case model.OpRead:
			return fmt.Sprintf("R %s=%s", e.Object, e.Rval)
		case model.OpWrite:
			return fmt.Sprintf("W %s=%s", e.Object, e.Op.Arg)
		case model.OpAdd:
			return fmt.Sprintf("A %s+%s", e.Object, e.Op.Arg)
		case model.OpRemove:
			return fmt.Sprintf("D %s-%s", e.Object, e.Op.Arg)
		case model.OpInc:
			return fmt.Sprintf("I %s%+d", e.Object, e.Op.Delta)
		}
	case model.ActSend:
		return fmt.Sprintf("S m%d", e.MsgID)
	case model.ActReceive:
		return fmt.Sprintf("V m%d", e.MsgID)
	}
	return e.String()
}
