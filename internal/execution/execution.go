// Package execution implements concrete executions of the replicated data
// store model: interleaved sequences of do, send, and receive events
// occurring at replicas (Definition 1), the happens-before relation over them
// (Definition 2), and the projections of Proposition 1.
//
// A concrete execution is what happens "under the hood" of a data store run;
// the abstract package models what clients observe. The two are connected by
// compliance (Definition 9).
package execution

import (
	"fmt"

	"repro/internal/model"
)

// Execution is a finite concrete execution: a global sequence of events plus
// the table of message instances referenced by send/receive events.
type Execution struct {
	// Events holds the events in global order; Events[i].Seq == i.
	Events []model.Event
	// Messages maps message IDs to message instances. A message ID is
	// assigned at its send event; receive events reference it.
	Messages map[int]model.Message

	nextMsgID int
}

// New returns an empty execution.
func New() *Execution {
	return &Execution{Messages: make(map[int]model.Message)}
}

// Len returns the number of events.
func (x *Execution) Len() int { return len(x.Events) }

// AppendDo records a do event and returns it.
func (x *Execution) AppendDo(r model.ReplicaID, obj model.ObjectID, op model.Operation, rval model.Response) model.Event {
	e := model.DoEvent(r, obj, op, rval)
	return x.append(e)
}

// AppendSend records a send event broadcasting payload from r, mints a fresh
// message ID, and returns the event.
func (x *Execution) AppendSend(r model.ReplicaID, payload []byte) model.Event {
	id := x.nextMsgID
	x.nextMsgID++
	p := make([]byte, len(payload))
	copy(p, payload)
	x.Messages[id] = model.Message{ID: id, From: r, Payload: p}
	return x.append(model.SendEvent(r, id))
}

// AppendReceive records a receive event of message msgID at r.
func (x *Execution) AppendReceive(r model.ReplicaID, msgID int) model.Event {
	return x.append(model.ReceiveEvent(r, msgID))
}

func (x *Execution) append(e model.Event) model.Event {
	e.Seq = len(x.Events)
	x.Events = append(x.Events, e)
	return e
}

// Message returns the message instance for id.
func (x *Execution) Message(id int) (model.Message, bool) {
	m, ok := x.Messages[id]
	return m, ok
}

// DoEvents returns the subsequence of do events, in global order.
func (x *Execution) DoEvents() []model.Event {
	var out []model.Event
	for _, e := range x.Events {
		if e.IsDo() {
			out = append(out, e)
		}
	}
	return out
}

// ProjectReplica returns α|R: the subsequence of events at replica r.
func (x *Execution) ProjectReplica(r model.ReplicaID) []model.Event {
	var out []model.Event
	for _, e := range x.Events {
		if e.Replica == r {
			out = append(out, e)
		}
	}
	return out
}

// ProjectDoReplica returns α|R^do: the subsequence of do events at replica r
// (the per-replica client history used by compliance, Definition 9).
func (x *Execution) ProjectDoReplica(r model.ReplicaID) []model.Event {
	var out []model.Event
	for _, e := range x.Events {
		if e.Replica == r && e.IsDo() {
			out = append(out, e)
		}
	}
	return out
}

// Replicas returns the set of replica IDs appearing in the execution, as a
// sorted slice.
func (x *Execution) Replicas() []model.ReplicaID {
	seen := make(map[model.ReplicaID]bool)
	var max model.ReplicaID = -1
	for _, e := range x.Events {
		seen[e.Replica] = true
		if e.Replica > max {
			max = e.Replica
		}
	}
	var out []model.ReplicaID
	for r := model.ReplicaID(0); r <= max; r++ {
		if seen[r] {
			out = append(out, r)
		}
	}
	return out
}

// CheckWellFormed verifies condition (2) of Definition 1: every receive(m)
// event is preceded by a send(m) event at a different replica. (Condition
// (1), per-replica well-formedness of the state machine, is enforced by
// construction when executions are recorded from live replicas.) Messages
// may be dropped, reordered, or received multiple times — none of that
// violates well-formedness.
func (x *Execution) CheckWellFormed() error {
	sentAt := make(map[int]int)             // msgID -> seq of send event
	sender := make(map[int]model.ReplicaID) // msgID -> sending replica
	for _, e := range x.Events {
		switch e.Act {
		case model.ActSend:
			if _, dup := sentAt[e.MsgID]; dup {
				return fmt.Errorf("execution: message m%d sent twice (event %d)", e.MsgID, e.Seq)
			}
			if _, ok := x.Messages[e.MsgID]; !ok {
				return fmt.Errorf("execution: send of unknown message m%d (event %d)", e.MsgID, e.Seq)
			}
			sentAt[e.MsgID] = e.Seq
			sender[e.MsgID] = e.Replica
		case model.ActReceive:
			at, ok := sentAt[e.MsgID]
			if !ok {
				return fmt.Errorf("execution: receive of unsent message m%d (event %d)", e.MsgID, e.Seq)
			}
			if at >= e.Seq {
				return fmt.Errorf("execution: message m%d received (event %d) before sent (event %d)", e.MsgID, e.Seq, at)
			}
			if sender[e.MsgID] == e.Replica {
				return fmt.Errorf("execution: replica r%d received its own message m%d (event %d)", e.Replica, e.MsgID, e.Seq)
			}
		}
	}
	return nil
}

// String renders the execution one event per line.
func (x *Execution) String() string {
	out := ""
	for _, e := range x.Events {
		out += fmt.Sprintf("%4d  %s\n", e.Seq, e)
	}
	return out
}
