package execution

import (
	"repro/internal/model"
)

// bitset is a fixed-capacity set of event indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(other bitset) {
	for i := range other {
		b[i] |= other[i]
	}
}

// HB is the happens-before relation of an execution (Definition 2),
// materialized as, for each event, the set of events that happen before it.
type HB struct {
	n     int
	past  []bitset // past[i] = { j : e_j -hb-> e_i }
	execu *Execution
}

// ComputeHB computes happens-before for the execution by a single forward
// pass: the causal past of an event is the union of the pasts of its direct
// predecessors (previous event at the same replica; the send event for a
// receive) plus the predecessors themselves. Events are processed in global
// order, so all predecessors are already computed. O(n²/64) time and space.
func ComputeHB(x *Execution) *HB {
	n := len(x.Events)
	hb := &HB{n: n, past: make([]bitset, n), execu: x}
	lastAt := make(map[model.ReplicaID]int) // replica -> seq of its latest event
	sendOf := make(map[int]int)             // msgID -> seq of send event
	for i, e := range x.Events {
		past := newBitset(n)
		if prev, ok := lastAt[e.Replica]; ok {
			past.or(hb.past[prev])
			past.set(prev)
		}
		if e.Act == model.ActReceive {
			if s, ok := sendOf[e.MsgID]; ok {
				past.or(hb.past[s])
				past.set(s)
			}
		}
		if e.Act == model.ActSend {
			sendOf[e.MsgID] = i
		}
		lastAt[e.Replica] = i
		hb.past[i] = past
		_ = e
	}
	return hb
}

// Before reports e_i -hb-> e_j (by global sequence numbers).
func (h *HB) Before(i, j int) bool {
	if i < 0 || j < 0 || i >= h.n || j >= h.n || i == j {
		return false
	}
	return h.past[j].get(i)
}

// Concurrent reports that neither event happens before the other.
func (h *HB) Concurrent(i, j int) bool {
	return i != j && !h.Before(i, j) && !h.Before(j, i)
}

// Past returns the sequence numbers of all events that happen before event j,
// in global order.
func (h *HB) Past(j int) []int {
	var out []int
	for i := 0; i < h.n; i++ {
		if h.past[j].get(i) {
			out = append(out, i)
		}
	}
	return out
}

// PastClosure returns β of Proposition 1(2): the subsequence of the execution
// consisting of all events e' with e' -hb-> e_j, plus e_j itself if
// includeSelf is set. Proposition 1 guarantees this is itself a well-formed
// execution.
func (h *HB) PastClosure(j int, includeSelf bool) *Execution {
	out := New()
	out.nextMsgID = h.execu.nextMsgID
	for id, m := range h.execu.Messages {
		out.Messages[id] = m
	}
	for i, e := range h.execu.Events {
		if h.past[j].get(i) || (includeSelf && i == j) {
			e.Seq = len(out.Events)
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// FutureClosure returns γ of Proposition 1: the subsequence consisting of all
// events NOT in the strict causal future of e_j (i.e., removing every e' with
// e_j -hb-> e'), which Proposition 1 also guarantees is well-formed. This is
// the α₀ used in the proofs of Lemmas 10 and 11 ("remove from α any event e'
// such that ê -hb-> e' fails"... precisely: keep e' iff NOT (e_j -hb-> e')).
func (h *HB) FutureClosure(j int) *Execution {
	out := New()
	out.nextMsgID = h.execu.nextMsgID
	for id, m := range h.execu.Messages {
		out.Messages[id] = m
	}
	for i, e := range h.execu.Events {
		if i != j && !h.past[i].get(j) {
			e.Seq = len(out.Events)
			out.Events = append(out.Events, e)
		}
	}
	return out
}
