package execution

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// buildChain records r0 writing and broadcasting, r1 receiving then writing.
func buildChain(t *testing.T) *Execution {
	t.Helper()
	x := New()
	x.AppendDo(0, "x", model.Write("a"), model.OKResponse())
	x.AppendSend(0, []byte{1, 2, 3})
	x.AppendReceive(1, 0)
	x.AppendDo(1, "y", model.Write("b"), model.OKResponse())
	return x
}

func TestAppendAssignsSequentialSeqs(t *testing.T) {
	x := buildChain(t)
	for i, e := range x.Events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
}

func TestMessageTableAndCopies(t *testing.T) {
	x := New()
	payload := []byte{9, 9}
	e := x.AppendSend(0, payload)
	payload[0] = 1 // mutate the caller's slice
	m, ok := x.Message(e.MsgID)
	if !ok {
		t.Fatal("message missing")
	}
	if m.Payload[0] != 9 {
		t.Fatal("execution aliases the caller's payload")
	}
	if m.From != 0 || m.Bits() != 16 {
		t.Fatalf("message metadata: %+v", m)
	}
	if _, ok := x.Message(42); ok {
		t.Fatal("unknown message found")
	}
}

func TestProjections(t *testing.T) {
	x := buildChain(t)
	if got := len(x.ProjectReplica(0)); got != 2 {
		t.Fatalf("r0 projection has %d events", got)
	}
	if got := len(x.ProjectDoReplica(1)); got != 1 {
		t.Fatalf("r1 do projection has %d events", got)
	}
	if got := len(x.DoEvents()); got != 2 {
		t.Fatalf("%d do events", got)
	}
	reps := x.Replicas()
	if len(reps) != 2 || reps[0] != 0 || reps[1] != 1 {
		t.Fatalf("replicas = %v", reps)
	}
}

func TestWellFormedAccepts(t *testing.T) {
	x := buildChain(t)
	if err := x.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

func TestWellFormedAcceptsDuplicatesAndDrops(t *testing.T) {
	x := New()
	x.AppendSend(0, []byte{1})
	x.AppendSend(0, []byte{2}) // never delivered: a drop
	x.AppendReceive(1, 0)
	x.AppendReceive(1, 0) // duplicate delivery
	x.AppendReceive(2, 0)
	if err := x.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

func TestWellFormedRejectsReceiveBeforeSend(t *testing.T) {
	x := New()
	x.AppendReceive(1, 0)
	x.AppendSend(0, []byte{1})
	if err := x.CheckWellFormed(); err == nil {
		t.Fatal("expected rejection")
	}
}

func TestWellFormedRejectsSelfReceive(t *testing.T) {
	x := New()
	x.AppendSend(0, []byte{1})
	x.AppendReceive(0, 0)
	if err := x.CheckWellFormed(); err == nil {
		t.Fatal("expected rejection of self-delivery")
	}
}

func TestWellFormedRejectsUnknownMessage(t *testing.T) {
	x := New()
	x.Events = append(x.Events, model.ReceiveEvent(1, 7))
	if err := x.CheckWellFormed(); err == nil {
		t.Fatal("expected rejection of unsent message")
	}
}

func TestHappensBeforeThreadAndMessage(t *testing.T) {
	x := buildChain(t)
	hb := ComputeHB(x)
	// Thread order at r0: do(0) -> send(1).
	if !hb.Before(0, 1) {
		t.Fatal("thread order missing")
	}
	// Message delivery: send(1) -> receive(2).
	if !hb.Before(1, 2) {
		t.Fatal("message edge missing")
	}
	// Transitivity: do(0) -> do(3).
	if !hb.Before(0, 3) {
		t.Fatal("transitive edge missing")
	}
	if hb.Before(3, 0) || hb.Before(0, 0) {
		t.Fatal("hb must be irreflexive and acyclic")
	}
}

func TestConcurrentEvents(t *testing.T) {
	x := New()
	x.AppendDo(0, "x", model.Write("a"), model.OKResponse())
	x.AppendDo(1, "x", model.Write("b"), model.OKResponse())
	hb := ComputeHB(x)
	if !hb.Concurrent(0, 1) {
		t.Fatal("isolated events must be concurrent")
	}
}

func TestPastReturnsSortedSeqs(t *testing.T) {
	x := buildChain(t)
	hb := ComputeHB(x)
	past := hb.Past(3)
	want := []int{0, 1, 2}
	if len(past) != len(want) {
		t.Fatalf("past = %v", past)
	}
	for i := range want {
		if past[i] != want[i] {
			t.Fatalf("past = %v, want %v", past, want)
		}
	}
}

// TestPastClosureIsWellFormed checks Proposition 1(1): the causal past of an
// event is itself a well-formed execution.
func TestPastClosureIsWellFormed(t *testing.T) {
	x := buildChain(t)
	hb := ComputeHB(x)
	beta := hb.PastClosure(3, true)
	if err := beta.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if beta.Len() != 4 {
		t.Fatalf("past closure has %d events", beta.Len())
	}
}

// TestFutureClosureIsWellFormed checks Proposition 1(2): removing the strict
// causal future of an event leaves a well-formed execution.
func TestFutureClosureIsWellFormed(t *testing.T) {
	x := buildChain(t)
	hb := ComputeHB(x)
	gamma := hb.FutureClosure(1) // drop the send and everything after it
	if err := gamma.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	for _, e := range gamma.Events {
		if e.Act == model.ActReceive {
			t.Fatal("receive survived removal of its send's future")
		}
	}
}

// TestClosuresArePrefixesPerReplica checks the "β|R and γ|R are prefixes of
// α|R" clause of Proposition 1.
func TestClosuresArePrefixesPerReplica(t *testing.T) {
	x := buildChain(t)
	hb := ComputeHB(x)
	beta := hb.PastClosure(3, true)
	for _, r := range x.Replicas() {
		full := x.ProjectReplica(r)
		part := beta.ProjectReplica(r)
		if len(part) > len(full) {
			t.Fatalf("r%d: closure longer than original", r)
		}
		for i := range part {
			if part[i].Act != full[i].Act || part[i].MsgID != full[i].MsgID || part[i].Object != full[i].Object {
				t.Fatalf("r%d: closure not a prefix at %d", r, i)
			}
		}
	}
}

func TestStringRendersEvents(t *testing.T) {
	x := buildChain(t)
	if s := x.String(); len(s) == 0 {
		t.Fatal("empty rendering")
	}
}

// TestQuickHBIsStrictPartialOrder checks, on random recorded executions,
// that happens-before is irreflexive and transitive, and totally orders each
// replica's own events (Definition 2).
func TestQuickHBIsStrictPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New()
		var sent []int
		for i := 0; i < 30; i++ {
			r := model.ReplicaID(rng.Intn(3))
			switch {
			case len(sent) > 0 && rng.Intn(3) == 0:
				m := sent[rng.Intn(len(sent))]
				if msg, _ := x.Message(m); msg.From != r {
					x.AppendReceive(r, m)
				}
			case rng.Intn(2) == 0:
				e := x.AppendSend(r, []byte{byte(i)})
				sent = append(sent, e.MsgID)
			default:
				x.AppendDo(r, "x", model.Read(), model.ReadResponse(nil))
			}
		}
		if err := x.CheckWellFormed(); err != nil {
			return false
		}
		hb := ComputeHB(x)
		n := x.Len()
		for i := 0; i < n; i++ {
			if hb.Before(i, i) {
				return false
			}
			for j := 0; j < n; j++ {
				if hb.Before(i, j) && hb.Before(j, i) {
					return false
				}
				for k := 0; k < n; k++ {
					if hb.Before(i, j) && hb.Before(j, k) && !hb.Before(i, k) {
						return false
					}
				}
				// Same-replica events are totally ordered.
				if i < j && x.Events[i].Replica == x.Events[j].Replica && !hb.Before(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineRendersColumns(t *testing.T) {
	x := buildChain(t)
	tl := x.Timeline()
	lines := splitLines(tl)
	if len(lines) != x.Len()+1 {
		t.Fatalf("timeline has %d lines for %d events:\n%s", len(lines), x.Len(), tl)
	}
	if !containsAll(lines[0], "r0", "r1") {
		t.Fatalf("header missing replicas:\n%s", tl)
	}
	if !containsAll(tl, "W x=a", "S m0", "V m0", "W y=b") {
		t.Fatalf("events missing:\n%s", tl)
	}
	// r1's events are indented to its column.
	for _, line := range lines[1:] {
		if len(line) > 0 && line[0] != ' ' {
			// r0 column: must be an r0 event.
			if !containsAll(line, "x") && !containsAll(line, "m0") {
				t.Fatalf("misplaced column entry %q", line)
			}
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	if got := New().Timeline(); got != "(empty execution)\n" {
		t.Fatalf("empty timeline = %q", got)
	}
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
