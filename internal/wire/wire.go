// Package wire provides a compact varint-based binary codec used for every
// message payload in this repository.
//
// Message *size* is a first-class measured quantity here: Theorem 12 lower
// bounds the number of bits a causally+eventually consistent store must put
// on the wire. Payloads therefore use a deterministic, self-delimiting
// encoding with no framing overhead beyond what the content requires, so the
// measured sizes reflect information content rather than codec slack.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/vclock"
)

// ErrTruncated is returned when a decode runs past the end of the buffer.
var ErrTruncated = errors.New("wire: truncated payload")

// Writer accumulates an encoded payload.
type Writer struct {
	buf []byte
	// frameOff is the buffer offset of the open frame header reserved by
	// BeginFrame, or -1 when no frame is open. The zero value (0) is never a
	// valid open-frame offset conflict because BeginFrame always sets it
	// explicitly; NewWriter and Reset set -1.
	frameOff int
}

// NewWriter returns an empty payload writer.
func NewWriter() *Writer { return &Writer{frameOff: -1} }

// Bytes returns the encoded payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current payload length in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the payload to empty while keeping the allocated buffer,
// so a pooled or per-connection Writer encodes repeatedly without
// reallocating (the hot send path's per-event allocation came from minting
// a fresh Writer per frame).
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.frameOff = -1
}

// Raw appends b verbatim, with no length prefix: the zero-copy write path
// for payloads that are already encoded bytes. The old route was
// String(string(b)), which copied b into a string and then copied the
// string into the buffer; Raw appends the bytes once. Callers that need
// self-delimiting framing write a Uvarint length first (the layout Bytes
// decodes).
func (w *Writer) Raw(b []byte) {
	w.buf = append(w.buf, b...)
}

// Write implements io.Writer by appending p verbatim (Raw's contract), so
// stream encoders like compress/flate can emit directly into a payload
// under construction. It never fails.
func (w *Writer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(x uint64) {
	w.buf = binary.AppendUvarint(w.buf, x)
}

// Varint appends a signed (zig-zag) varint.
func (w *Writer) Varint(x int64) {
	w.buf = binary.AppendVarint(w.buf, x)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// VC appends a vector clock as a length-prefixed dense vector of varints.
// Small entries (the common case for the clock components Theorem 12 counts)
// cost one byte each; an entry with value up to k costs Θ(lg k) bits.
func (w *Writer) VC(v vclock.VC) {
	w.Uvarint(uint64(len(v)))
	for _, x := range v {
		w.Uvarint(x)
	}
}

// SparseVC appends a vector clock as (count, (index, value)...) pairs,
// skipping zero entries. This is the "sparse dependency" ablation encoding:
// still Ω(n'·lg k) bits on the Theorem 12 executions, but with different
// constants on sparse clocks.
func (w *Writer) SparseVC(v vclock.VC) {
	nonzero := 0
	for _, x := range v {
		if x != 0 {
			nonzero++
		}
	}
	w.Uvarint(uint64(nonzero))
	for i, x := range v {
		if x != 0 {
			w.Uvarint(uint64(i))
			w.Uvarint(x)
		}
	}
}

// Dot appends an update identifier.
func (w *Writer) Dot(d model.Dot) {
	w.Uvarint(uint64(d.Origin))
	w.Uvarint(d.Seq)
}

// Reader decodes a payload produced by Writer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload for decoding.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", ErrTruncated, r.off)
	}
}

// Uvarint decodes an unsigned varint, returning 0 after an error.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return x
}

// Varint decodes a signed (zig-zag) varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return x
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(r.Remaining()) < n {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Bytes decodes a length-prefixed byte field (the same layout String reads)
// and returns it as a subslice of the underlying buffer — zero-copy, unlike
// String, which materializes a fresh string. The returned slice aliases the
// Reader's buffer: callers that retain it past the buffer's lifetime must
// copy it themselves (the cluster's receive path does, when it records the
// payload into its durable history).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b
}

// Fixed returns the next n bytes verbatim (no length prefix) — the read
// path for fields whose width is fixed by the protocol, like 32-byte
// Merkle hashes. The slice aliases the Reader's buffer, like Bytes.
func (r *Reader) Fixed(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// VC decodes a dense vector clock.
func (r *Reader) VC() vclock.VC {
	n := r.Uvarint()
	if r.err != nil || n > uint64(r.Remaining()) {
		// Each entry takes at least one byte, so a valid count never exceeds
		// the bytes left; anything beyond is corrupt and would otherwise
		// allocate unboundedly. (An earlier guard allowed Remaining+1, one
		// more entry than the buffer can possibly hold.)
		if n > uint64(r.Remaining()) {
			r.fail()
		}
		return nil
	}
	v := make(vclock.VC, n)
	for i := range v {
		v[i] = r.Uvarint()
	}
	return v
}

// SparseVC decodes a sparse vector clock into a dense clock of length n.
// Entries with indices at or beyond n are rejected as corrupt: accepting
// them would let a hostile payload force an allocation proportional to the
// index (found by FuzzReader).
func (r *Reader) SparseVC(n int) vclock.VC {
	count := r.Uvarint()
	v := vclock.New(n)
	for i := uint64(0); i < count && r.err == nil; i++ {
		idx := r.Uvarint()
		val := r.Uvarint()
		if r.err != nil {
			break
		}
		if idx >= uint64(n) {
			if r.err == nil {
				r.err = fmt.Errorf("wire: sparse clock index %d outside population %d", idx, n)
			}
			return nil
		}
		v.Set(model.ReplicaID(idx), val)
	}
	return v
}

// Dot decodes an update identifier.
func (r *Reader) Dot() model.Dot {
	origin := r.Uvarint()
	seq := r.Uvarint()
	return model.Dot{Origin: model.ReplicaID(origin), Seq: seq}
}

// UvarintLen returns the encoded size in bytes of x, used by size-accounting
// benches without materializing payloads.
func UvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
