package wire

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compression algorithm identifiers, negotiated per connection the same
// way codecs are: both ends state what they speak and the minimum wins,
// with CompNone as the floor every version understands. The IDs ride the
// trailing-extension slots of the hello/join exchanges, so a pre-v4 peer
// that never sends one lands on CompNone automatically.
const (
	CompNone  uint64 = 0
	CompFlate uint64 = 1
)

// CompName names a compression ID for logs and error messages.
func CompName(c uint64) string {
	switch c {
	case CompNone:
		return "none"
	case CompFlate:
		return "flate"
	}
	return fmt.Sprintf("comp-%d", c)
}

// flateWriters pools DEFLATE encoders: flate.NewWriter allocates large
// match tables, far too heavy to mint per frame.
var flateWriters = sync.Pool{New: func() any {
	fw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return fw
}}

// DeflateTo compresses raw with DEFLATE at a fixed level (BestSpeed: the
// callers sit on transfer hot paths, and the tracked bench artifacts rely
// on the output being deterministic for a given input and toolchain) and
// appends the compressed stream to w. raw must not alias w's buffer.
// Returns the number of bytes appended.
func DeflateTo(w *Writer, raw []byte) int {
	fw := flateWriters.Get().(*flate.Writer)
	before := w.Len()
	fw.Reset(w)
	fw.Write(raw) // Writer.Write never fails
	fw.Close()
	flateWriters.Put(fw)
	return w.Len() - before
}

// flateReaders pools DEFLATE decoders via the flate.Resetter interface
// every reader returned by flate.NewReader implements.
var flateReaders = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// Inflate decompresses a DEFLATE stream produced by DeflateTo into a fresh
// buffer of exactly rawLen bytes. A stream that inflates short, long, or
// corrupt is an error: the declared length is part of the envelope's
// contract, and enforcing it before and during decode caps the allocation
// a hostile frame can force.
func Inflate(comp []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 {
		return nil, fmt.Errorf("wire: negative inflated length %d", rawLen)
	}
	fr := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		return nil, err
	}
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, out); err != nil {
		return nil, fmt.Errorf("wire: inflate: %w", err)
	}
	// The stream must end exactly at rawLen: trailing decompressed data
	// means the envelope lied about the length.
	var tail [1]byte
	if n, _ := fr.Read(tail[:]); n != 0 {
		return nil, fmt.Errorf("wire: inflate: stream exceeds declared %d bytes", rawLen)
	}
	return out, nil
}
