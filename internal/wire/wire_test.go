package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/vclock"
)

func TestUvarintRoundTrip(t *testing.T) {
	for _, x := range []uint64{0, 1, 127, 128, 1 << 20, 1<<63 - 1} {
		w := NewWriter()
		w.Uvarint(x)
		r := NewReader(w.Bytes())
		if got := r.Uvarint(); got != x || r.Err() != nil {
			t.Fatalf("round trip %d: got %d, err %v", x, got, r.Err())
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	for _, x := range []int64{0, -1, 1, -64, 63, -1 << 40, 1 << 40} {
		w := NewWriter()
		w.Varint(x)
		r := NewReader(w.Bytes())
		if got := r.Varint(); got != x || r.Err() != nil {
			t.Fatalf("round trip %d: got %d, err %v", x, got, r.Err())
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "x", "hello world", "with\x00nul"} {
		w := NewWriter()
		w.String(s)
		r := NewReader(w.Bytes())
		if got := r.String(); got != s || r.Err() != nil {
			t.Fatalf("round trip %q: got %q, err %v", s, got, r.Err())
		}
	}
}

func TestDotRoundTrip(t *testing.T) {
	d := model.Dot{Origin: 7, Seq: 1 << 30}
	w := NewWriter()
	w.Dot(d)
	r := NewReader(w.Bytes())
	if got := r.Dot(); got != d || r.Err() != nil {
		t.Fatalf("round trip %v: got %v, err %v", d, got, r.Err())
	}
}

func TestVCRoundTrip(t *testing.T) {
	v := vclock.VC{0, 5, 1 << 33, 2}
	w := NewWriter()
	w.VC(v)
	r := NewReader(w.Bytes())
	if got := r.VC(); !got.Equal(v) || r.Err() != nil {
		t.Fatalf("round trip %s: got %s, err %v", v, got, r.Err())
	}
}

func TestSparseVCRoundTrip(t *testing.T) {
	v := vclock.VC{0, 5, 0, 0, 9}
	w := NewWriter()
	w.SparseVC(v)
	r := NewReader(w.Bytes())
	if got := r.SparseVC(len(v)); !got.Equal(v) || r.Err() != nil {
		t.Fatalf("round trip %s: got %s, err %v", v, got, r.Err())
	}
}

func TestSparseBeatsDenseOnSparseClocks(t *testing.T) {
	v := vclock.New(64)
	v.Set(3, 100)
	dense := NewWriter()
	dense.VC(v)
	sparse := NewWriter()
	sparse.SparseVC(v)
	if sparse.Len() >= dense.Len() {
		t.Fatalf("sparse %dB not smaller than dense %dB on a 1/64 clock", sparse.Len(), dense.Len())
	}
}

func TestTruncatedPayloadErrors(t *testing.T) {
	w := NewWriter()
	w.String("hello")
	buf := w.Bytes()[:3]
	r := NewReader(buf)
	_ = r.String()
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
}

func TestEmptyReaderErrors(t *testing.T) {
	r := NewReader(nil)
	_ = r.Uvarint()
	if r.Err() == nil {
		t.Fatal("expected error reading from empty payload")
	}
	// Errors are sticky and subsequent reads return zero values.
	if r.Uvarint() != 0 || r.String() != "" {
		t.Fatal("post-error reads should return zero values")
	}
}

func TestCorruptVCCountRejected(t *testing.T) {
	w := NewWriter()
	w.Uvarint(1 << 40) // implausible element count
	r := NewReader(w.Bytes())
	if got := r.VC(); got != nil || r.Err() == nil {
		t.Fatal("expected corrupt count rejection")
	}
}

func TestUvarintLenMatchesEncoding(t *testing.T) {
	f := func(x uint64) bool {
		w := NewWriter()
		w.Uvarint(x)
		return w.Len() == UvarintLen(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := rng.Uint64() >> uint(rng.Intn(60))
		i := rng.Int63() - rng.Int63()
		s := make([]byte, rng.Intn(20))
		rng.Read(s)
		v := vclock.New(rng.Intn(6))
		for j := range v {
			v[j] = uint64(rng.Intn(1000))
		}
		w := NewWriter()
		w.Uvarint(u)
		w.String(string(s))
		w.Varint(i)
		w.VC(v)
		r := NewReader(w.Bytes())
		return r.Uvarint() == u && r.String() == string(s) && r.Varint() == i &&
			r.VC().Equal(v) && r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSparseVCRejectsOutOfRangeIndex is the FuzzReader regression: a sparse
// clock entry with a huge index must be rejected rather than allocating a
// clock of that length.
func TestSparseVCRejectsOutOfRangeIndex(t *testing.T) {
	w := NewWriter()
	w.Uvarint(1)       // one entry
	w.Uvarint(1 << 40) // hostile index
	w.Uvarint(7)
	r := NewReader(w.Bytes())
	if got := r.SparseVC(4); got != nil || r.Err() == nil {
		t.Fatalf("got %v, err %v; want rejection", got, r.Err())
	}
}
