package wire

import (
	"bytes"
	"testing"
)

func TestDeflateInflateRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("x"),
		bytes.Repeat([]byte("the same twelve bytes over and over "), 100),
		func() []byte { // incompressible-ish: a varint counter stream
			w := NewWriter()
			for i := uint64(0); i < 4096; i++ {
				w.Uvarint(i * 2654435761)
			}
			return append([]byte(nil), w.Bytes()...)
		}(),
	}
	for i, raw := range cases {
		w := NewWriter()
		n := DeflateTo(w, raw)
		if n != w.Len() {
			t.Fatalf("case %d: DeflateTo returned %d, wrote %d", i, n, w.Len())
		}
		out, err := Inflate(w.Bytes(), len(raw))
		if err != nil {
			t.Fatalf("case %d: Inflate: %v", i, err)
		}
		if !bytes.Equal(out, raw) {
			t.Fatalf("case %d: round trip mismatch: got %d bytes, want %d", i, len(out), len(raw))
		}
	}
}

func TestDeflateDeterministic(t *testing.T) {
	raw := bytes.Repeat([]byte("deterministic output matters for golden vectors "), 64)
	a, b := NewWriter(), NewWriter()
	DeflateTo(a, raw)
	DeflateTo(b, raw)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two deflates of the same input differ (%d vs %d bytes)", a.Len(), b.Len())
	}
}

func TestInflateLengthContract(t *testing.T) {
	raw := bytes.Repeat([]byte("abc"), 500)
	w := NewWriter()
	DeflateTo(w, raw)
	// Declared length too short: the stream keeps going past it.
	if _, err := Inflate(w.Bytes(), len(raw)-1); err == nil {
		t.Fatal("Inflate accepted a stream longer than its declared length")
	}
	// Declared length too long: the stream ends early.
	if _, err := Inflate(w.Bytes(), len(raw)+1); err == nil {
		t.Fatal("Inflate accepted a stream shorter than its declared length")
	}
	if _, err := Inflate(w.Bytes(), -1); err == nil {
		t.Fatal("Inflate accepted a negative length")
	}
	// Corrupt stream.
	mangled := append([]byte(nil), w.Bytes()...)
	for i := range mangled {
		mangled[i] ^= 0x5a
	}
	if _, err := Inflate(mangled, len(raw)); err == nil {
		t.Fatal("Inflate accepted a corrupt stream")
	}
}

func TestCompName(t *testing.T) {
	if CompName(CompNone) != "none" || CompName(CompFlate) != "flate" {
		t.Fatal("CompName misnames a known algorithm")
	}
	if CompName(7) != "comp-7" {
		t.Fatalf("CompName(7) = %q", CompName(7))
	}
}
