package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestRawBytesRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f}
	w := NewWriter()
	w.Uvarint(uint64(len(payload)))
	w.Raw(payload)
	w.Uvarint(7) // trailing field proves Bytes consumed exactly its span

	r := NewReader(w.Bytes())
	got := r.Bytes()
	if !bytes.Equal(got, payload) {
		t.Fatalf("Bytes() = %x, want %x", got, payload)
	}
	if x := r.Uvarint(); x != 7 || r.Err() != nil {
		t.Fatalf("trailing field = %d, err %v", x, r.Err())
	}
}

// TestBytesAliasesBuffer pins the zero-copy contract: the returned slice
// shares the reader's backing array (so receive paths that retain it must
// copy), and its capacity is clipped to its length (so appending to it
// cannot clobber bytes the reader has yet to decode).
func TestBytesAliasesBuffer(t *testing.T) {
	w := NewWriter()
	w.Uvarint(3)
	w.Raw([]byte{1, 2, 3})
	w.Uvarint(9)
	buf := w.Bytes()

	r := NewReader(buf)
	b := r.Bytes()
	if cap(b) != len(b) {
		t.Fatalf("cap(b) = %d, want %d (three-index slice must clip capacity)", cap(b), len(b))
	}
	buf[1] = 42 // first payload byte
	if b[0] != 42 {
		t.Fatal("Bytes() copied instead of aliasing the buffer")
	}
	if got := append(b, 0xff); got[3] == buf[4] {
		// The append must have reallocated; reaching the shared array here
		// would mean capacity clipping failed.
		t.Fatal("append to Bytes() result wrote into the reader's buffer")
	}
	if x := r.Uvarint(); x != 9 || r.Err() != nil {
		t.Fatalf("trailing field = %d, err %v", x, r.Err())
	}
}

func TestBytesTruncatedRejected(t *testing.T) {
	w := NewWriter()
	w.Uvarint(10)
	w.Raw([]byte{1, 2}) // claims 10, holds 2
	r := NewReader(w.Bytes())
	if b := r.Bytes(); b != nil || r.Err() == nil {
		t.Fatalf("Bytes() on truncated field = %x, err %v; want nil, error", b, r.Err())
	}
}

// TestVCCountBoundaryRejected is the regression for the off-by-one guard:
// the old check allowed a declared count of Remaining()+1 — one more entry
// than the buffer can possibly hold — which then failed later and sloppier,
// after allocating for the impossible count.
func TestVCCountBoundaryRejected(t *testing.T) {
	w := NewWriter()
	w.Uvarint(3)        // declared entries
	w.Raw([]byte{1, 2}) // only two bytes remain: 3 > 2 must be rejected up front
	r := NewReader(w.Bytes())
	if v := r.VC(); v != nil || r.Err() == nil {
		t.Fatalf("VC with count Remaining+1 = %v, err %v; want nil, error", v, r.Err())
	}
}

func TestBeginEndFrame(t *testing.T) {
	w := NewWriter()
	w.BeginFrame()
	w.Uvarint(11)
	w.String("hello")
	frame, err := w.EndFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	// The frame must be readable by ReadFrame, byte-compatible with the
	// WriteFrame format.
	payload, err := ReadFrame(bytes.NewReader(frame), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(payload)
	if x := r.Uvarint(); x != 11 {
		t.Fatalf("field = %d, want 11", x)
	}
	if s := r.String(); s != "hello" || r.Err() != nil {
		t.Fatalf("string = %q, err %v", s, r.Err())
	}

	// Sequential frames in one writer after Reset.
	w.Reset()
	w.BeginFrame()
	w.Uvarint(5)
	if _, err := w.EndFrame(0); err != nil {
		t.Fatal(err)
	}
}

func TestEndFrameOversize(t *testing.T) {
	w := NewWriter()
	w.BeginFrame()
	w.Raw(make([]byte, 100))
	_, err := w.EndFrame(50)
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("err = %v, want *FrameSizeError", err)
	}
	if fse.Size != 100 || fse.Max != 50 {
		t.Fatalf("FrameSizeError = %+v", fse)
	}
	// The frame stays open after the failure; Reset recovers the writer.
	w.Reset()
	w.BeginFrame()
	w.Uvarint(1)
	if _, err := w.EndFrame(0); err != nil {
		t.Fatal(err)
	}
}

func TestBeginFrameNestedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginFrame did not panic")
		}
	}()
	w := NewWriter()
	w.BeginFrame()
	w.BeginFrame()
}

func TestWriterPoolRoundTrip(t *testing.T) {
	w := GetWriter()
	w.Uvarint(123)
	if len(w.Bytes()) == 0 {
		t.Fatal("pooled writer did not encode")
	}
	PutWriter(w)
	w2 := GetWriter()
	defer PutWriter(w2)
	if len(w2.Bytes()) != 0 {
		t.Fatal("GetWriter returned a non-reset writer")
	}
	w2.BeginFrame()
	w2.Uvarint(1)
	if _, err := w2.EndFrame(0); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRegistry(t *testing.T) {
	for _, tc := range []struct {
		id   CodecID
		name string
	}{{CodecJSON, "json"}, {CodecBinary, "binary"}} {
		c, ok := CodecByID(tc.id)
		if !ok || c.Name() != tc.name || c.ID() != tc.id {
			t.Fatalf("CodecByID(%d) = %v, %v", tc.id, c, ok)
		}
		c, ok = CodecByName(tc.name)
		if !ok || c.ID() != tc.id {
			t.Fatalf("CodecByName(%q) = %v, %v", tc.name, c, ok)
		}
	}
	if _, ok := CodecByID(CodecID(99)); ok {
		t.Fatal("unknown codec ID resolved")
	}
	if _, ok := CodecByName("gzip"); ok {
		t.Fatal("unknown codec name resolved")
	}
	names := CodecNames()
	if len(names) < 2 {
		t.Fatalf("CodecNames() = %v", names)
	}
}
