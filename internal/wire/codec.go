package wire

import (
	"fmt"
	"sort"
	"sync"
)

// CodecID is the compact wire identifier of a payload encoding. It travels
// as a uvarint in the cluster's hello negotiation and as a format tag in
// durable journal records, so IDs are assigned once and never reused or
// renumbered.
type CodecID uint64

// The registered codec identifiers.
const (
	// CodecJSON is the v1 format every node understands: structured bodies
	// (stats, histories, journal events) travel as encoding/json blobs and
	// updates as one frame each. It is the fallback a connection speaks
	// until both ends negotiate something better, which is what keeps
	// mixed-codec clusters interoperable.
	CodecJSON CodecID = 0
	// CodecBinary is the compact varint encoding built from this package's
	// Writer/Reader: binary event records, batched update frames, raw (not
	// base64) payload bytes.
	CodecBinary CodecID = 1
)

// Codec names one negotiable payload encoding. It is deliberately an
// identity trait, not a marshaling vtable: the value types being encoded
// (events, stats, histories) belong to the transport and storage layers,
// which hold the typed encode/decode logic and use the Codec only to agree
// on which logic a connection or file speaks. stores declare their
// preference through store.PayloadCodec, and the cluster maps that name to
// a registered Codec here.
type Codec interface {
	// ID is the stable wire identifier.
	ID() CodecID
	// Name is the human/registry name ("json", "binary"), accepted by CLI
	// flags and store preferences.
	Name() string
}

type codec struct {
	id   CodecID
	name string
}

func (c codec) ID() CodecID  { return c.id }
func (c codec) Name() string { return c.name }

// JSON and Binary are the two built-in codecs.
var (
	JSON   Codec = codec{id: CodecJSON, name: "json"}
	Binary Codec = codec{id: CodecBinary, name: "binary"}
)

var (
	codecMu     sync.RWMutex
	codecByID   = map[CodecID]Codec{}
	codecByName = map[string]Codec{}
)

func init() {
	RegisterCodec(JSON)
	RegisterCodec(Binary)
}

// RegisterCodec adds a codec to the process-wide registry. Duplicate IDs or
// names are programmer errors and panic, like store.Register.
func RegisterCodec(c Codec) {
	if c == nil || c.Name() == "" {
		panic("wire: RegisterCodec needs a named codec")
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecByID[c.ID()]; dup {
		panic(fmt.Sprintf("wire: duplicate codec id %d", c.ID()))
	}
	if _, dup := codecByName[c.Name()]; dup {
		panic(fmt.Sprintf("wire: duplicate codec name %q", c.Name()))
	}
	codecByID[c.ID()] = c
	codecByName[c.Name()] = c
}

// CodecByID resolves a negotiated identifier. Unknown IDs come from newer
// peers; callers fall back to JSON, the format every version speaks.
func CodecByID(id CodecID) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecByID[id]
	return c, ok
}

// CodecByName resolves a codec name from a flag or a store preference.
func CodecByName(name string) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecByName[name]
	return c, ok
}

// CodecNames returns the registered codec names, sorted, for CLI error
// messages.
func CodecNames() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	names := make([]string, 0, len(codecByName))
	for name := range codecByName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
