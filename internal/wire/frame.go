package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// DefaultMaxFrame is the frame-size ceiling used when a caller passes a
// non-positive limit: large enough for any replication payload the stores
// produce, small enough that a hostile length prefix cannot force an
// unbounded allocation.
const DefaultMaxFrame = 1 << 20

// FrameSizeError reports a frame whose declared length exceeds the
// receiver's (or sender's) limit. It is a typed error so transports can
// distinguish a hostile or misconfigured peer from an ordinary I/O failure
// with errors.As.
type FrameSizeError struct {
	Size int // declared payload length
	Max  int // the limit it exceeded
}

// Error implements error.
func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds limit %d", e.Size, e.Max)
}

// WriteFrame writes payload as one length-delimited frame: a 4-byte
// big-endian length prefix followed by the payload. It refuses payloads
// beyond max (DefaultMaxFrame when max <= 0) with a *FrameSizeError, so a
// sender cannot emit a frame its peer is guaranteed to reject. It returns
// the number of bytes written to w.
func WriteFrame(w io.Writer, payload []byte, max int) (int, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if len(payload) > max {
		return 0, &FrameSizeError{Size: len(payload), Max: max}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	n, err := w.Write(hdr[:])
	if err != nil {
		return n, err
	}
	m, err := w.Write(payload)
	return n + m, err
}

// ReadFrame reads one length-delimited frame written by WriteFrame and
// returns its payload. A declared length beyond max (DefaultMaxFrame when
// max <= 0) returns a *FrameSizeError BEFORE any payload allocation: the
// guard is what makes the framing safe against a hostile length prefix. A
// clean close before the first header byte returns io.EOF; a header or
// payload truncated mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > uint32(max) {
		return nil, &FrameSizeError{Size: int(size), Max: max}
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
