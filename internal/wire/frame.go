package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// DefaultMaxFrame is the frame-size ceiling used when a caller passes a
// non-positive limit: large enough for any replication payload the stores
// produce, small enough that a hostile length prefix cannot force an
// unbounded allocation.
const DefaultMaxFrame = 1 << 20

// FrameSizeError reports a frame whose declared length exceeds the
// receiver's (or sender's) limit. It is a typed error so transports can
// distinguish a hostile or misconfigured peer from an ordinary I/O failure
// with errors.As.
type FrameSizeError struct {
	Size int // declared payload length
	Max  int // the limit it exceeded
}

// Error implements error.
func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds limit %d", e.Size, e.Max)
}

// WriteFrame writes payload as one length-delimited frame: a 4-byte
// big-endian length prefix followed by the payload. It refuses payloads
// beyond max (DefaultMaxFrame when max <= 0) with a *FrameSizeError, so a
// sender cannot emit a frame its peer is guaranteed to reject. It returns
// the number of bytes written to w.
func WriteFrame(w io.Writer, payload []byte, max int) (int, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if len(payload) > max {
		return 0, &FrameSizeError{Size: len(payload), Max: max}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	n, err := w.Write(hdr[:])
	if err != nil {
		return n, err
	}
	m, err := w.Write(payload)
	return n + m, err
}

// BeginFrame reserves a frame header at the Writer's current position: the
// payload encoded after it, sealed with EndFrame, becomes one wire frame in
// the Writer's own buffer. Together they let a sender build header+payload
// contiguously and hand the result to a single Write call — one syscall and
// zero intermediate allocations per frame, where WriteFrame costs two
// writes and a payload slice. Frames do not nest; BeginFrame panics if one
// is already open (a programming error, not a wire condition).
func (w *Writer) BeginFrame() {
	if w.frameOff >= 0 {
		panic("wire: BeginFrame inside an open frame")
	}
	w.frameOff = len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0)
}

// EndFrame seals the frame opened by BeginFrame: it patches the reserved
// header with the payload length and returns the complete frame (header
// plus payload) as a subslice of the Writer's buffer, valid until the next
// Reset. It enforces the same size limit as WriteFrame (DefaultMaxFrame
// when max <= 0) with a *FrameSizeError, leaving the frame open so the
// caller can observe the oversized state.
func (w *Writer) EndFrame(max int) ([]byte, error) {
	if w.frameOff < 0 {
		panic("wire: EndFrame without BeginFrame")
	}
	if max <= 0 {
		max = DefaultMaxFrame
	}
	size := len(w.buf) - w.frameOff - 4
	if size > max {
		return nil, &FrameSizeError{Size: size, Max: max}
	}
	binary.BigEndian.PutUint32(w.buf[w.frameOff:], uint32(size))
	frame := w.buf[w.frameOff:]
	w.frameOff = -1
	return frame, nil
}

// pooledWriterMax bounds the buffer capacity a Writer may take back into
// the pool: a one-off giant frame (a history transfer) must not pin its
// buffer for the rest of the process.
const pooledWriterMax = 1 << 20

var writerPool = sync.Pool{New: func() any { return NewWriter() }}

// GetWriter returns a reset Writer from the process-wide pool. Pair with
// PutWriter on paths that encode frequently enough for per-frame Writer
// allocation to show up (the cluster's send and journal paths).
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns a Writer to the pool. The caller must no longer hold
// any slice obtained from it (Bytes, EndFrame): the next GetWriter will
// overwrite the shared buffer.
func PutWriter(w *Writer) {
	if cap(w.buf) > pooledWriterMax {
		return
	}
	writerPool.Put(w)
}

// ReadFrame reads one length-delimited frame written by WriteFrame and
// returns its payload. A declared length beyond max (DefaultMaxFrame when
// max <= 0) returns a *FrameSizeError BEFORE any payload allocation: the
// guard is what makes the framing safe against a hostile length prefix. A
// clean close before the first header byte returns io.EOF; a header or
// payload truncated mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > uint32(max) {
		return nil, &FrameSizeError{Size: int(size), Max: max}
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
