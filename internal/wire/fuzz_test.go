package wire

import "testing"

// FuzzReader drains arbitrary bytes through every decoder; no input may
// panic or allocate unboundedly.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 'h', 'e', 'l', 'l', 'o'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.Uvarint()
		_ = r.String()
		_ = r.VC()
		_ = r.SparseVC(4)
		_ = r.Dot()
		_ = r.Varint()
	})
}
