package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if _, err := WriteFrame(&buf, p, 0); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round trip: got %d bytes, want %d", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("read past last frame: %v, want io.EOF", err)
	}
}

func TestWriteFrameReportsBytesWritten(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteFrame(&buf, []byte("abc"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 || buf.Len() != 7 {
		t.Fatalf("wrote %d bytes (buffer %d), want 7", n, buf.Len())
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	_, err := WriteFrame(&buf, make([]byte, 11), 10)
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("err = %v, want *FrameSizeError", err)
	}
	if fse.Size != 11 || fse.Max != 10 {
		t.Fatalf("FrameSizeError = %+v", fse)
	}
	if buf.Len() != 0 {
		t.Fatal("oversize frame partially written")
	}
}

func TestReadFrameRejectsHostileLength(t *testing.T) {
	// A 4-byte header declaring 4 GiB-1 of payload must be rejected before
	// allocation, not trusted.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	_, err := ReadFrame(bytes.NewReader(hdr), 0)
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("err = %v, want *FrameSizeError", err)
	}
	if fse.Max != DefaultMaxFrame {
		t.Fatalf("limit = %d, want DefaultMaxFrame", fse.Max)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	// Header truncated mid-way.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated header: %v, want io.ErrUnexpectedEOF", err)
	}
	// Payload shorter than the header declares.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 10)
	buf.Write(hdr[:])
	buf.WriteString("short")
	if _, err := ReadFrame(&buf, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadFrameCustomLimit(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, make([]byte, 64), 64); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 63); err == nil {
		t.Fatal("frame above the reader's limit was accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 64); err != nil {
		t.Fatalf("frame at the limit rejected: %v", err)
	}
}

// FuzzReadFrame feeds arbitrary byte streams to ReadFrame: it must never
// panic, never allocate beyond the limit, and every successfully read
// payload must re-encode to a frame ReadFrame accepts again.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 3, 'a', 'b', 'c'})
	f.Add([]byte{0, 0, 0, 5, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 12
		payload, err := ReadFrame(bytes.NewReader(data), limit)
		if err != nil {
			return
		}
		if len(payload) > limit {
			t.Fatalf("payload of %d bytes exceeds limit %d", len(payload), limit)
		}
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, payload, limit); err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		back, err := ReadFrame(&buf, limit)
		if err != nil || !bytes.Equal(back, payload) {
			t.Fatalf("round trip changed payload: %v", err)
		}
	})
}
