package durable

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/wire"
)

// The log maintains an incremental Merkle forest over the journaled
// broadcast history (internal/membership), hashing each ActSend/ActReceive
// in the same Append that makes it durable — so the tree a joiner's
// anti-entropy digests against always describes exactly the on-disk log.
//
// The forest's whole state is the per-origin update-hash arrays, so it
// checkpoints alongside snapshots: compact writes tree.ckpt (one CRC'd
// frame: per origin, count then raw 32-byte hashes) atomically, and Open
// reloads it to skip rehashing the snapshot prefix, rehashing only the wal
// tail. The checkpoint is advisory — missing, corrupt, ahead of the
// recovered events, or failing the spot check, it is discarded and the
// forest rebuilds from the recovered payloads, which recovery holds in
// memory anyway.

const treeName = "tree.ckpt"

// hashEvent folds one journaled event into the forest; non-broadcast
// events (ActDo) hash nothing. Gap errors mean the journal itself skipped
// a broadcast seq, which recovery's index checks should make impossible.
func hashEvent(tree *membership.Forest, ev cluster.Event) error {
	if ev.Kind != model.ActSend && ev.Kind != model.ActReceive {
		return nil
	}
	return tree.Append(int(ev.Origin), ev.Seq, ev.Payload)
}

// buildTree reconstructs the forest for a recovered event sequence, seeded
// where possible by the checkpoint's hash arrays.
func buildTree(dir string, n int, events []cluster.Event) (*membership.Forest, error) {
	// Per-origin payloads in seq order, straight from the recovered events.
	payloads := make([][][]byte, n)
	for _, ev := range events {
		if ev.Kind != model.ActSend && ev.Kind != model.ActReceive {
			continue
		}
		o := int(ev.Origin)
		if o < 0 || o >= n {
			return nil, &CorruptionError{File: walName, Reason: fmt.Sprintf("broadcast event from origin %d in a %d-replica log", o, n)}
		}
		if ev.Seq != uint64(len(payloads[o]))+1 {
			return nil, &CorruptionError{File: walName, Reason: fmt.Sprintf("origin %d broadcast seq %d, want %d", o, ev.Seq, len(payloads[o])+1)}
		}
		payloads[o] = append(payloads[o], ev.Payload)
	}

	ckpt := readTreeCkpt(filepath.Join(dir, treeName), n)
	tree := membership.NewForest(n)
	for o := 0; o < n; o++ {
		var prefix []membership.Hash
		if ckpt != nil && uint64(len(ckpt[o])) <= uint64(len(payloads[o])) {
			prefix = ckpt[o]
			// Spot check: the checkpoint's last hash must match the event it
			// claims to cover, or the checkpoint is from another history.
			if k := len(prefix); k > 0 &&
				prefix[k-1] != membership.HashUpdate(o, uint64(k), payloads[o][k-1]) {
				prefix = nil
			}
		}
		for _, h := range prefix {
			if err := tree.AppendHash(o, h); err != nil {
				return nil, err
			}
		}
		for i := len(prefix); i < len(payloads[o]); i++ {
			if err := tree.Append(o, uint64(i)+1, payloads[o][i]); err != nil {
				return nil, err
			}
		}
	}
	return tree, nil
}

// writeTreeCkpt persists the forest atomically: tmp + fsync + rename, the
// same discipline as snapshots, with one CRC over the whole payload.
func writeTreeCkpt(dir string, tree *membership.Forest) error {
	w := wire.NewWriter()
	w.Raw([]byte{0, 0, 0, 0}) // CRC slot
	w.Uvarint(uint64(tree.Origins()))
	for o := 0; o < tree.Origins(); o++ {
		count := tree.Count(o)
		w.Uvarint(count)
		for i := uint64(0); i < count; i++ {
			h := tree.UpdateHash(o, i)
			w.Raw(h[:])
		}
	}
	buf := w.Bytes()
	be32(buf[0:4], crc32.Checksum(buf[4:], castagnoli))

	tmp := filepath.Join(dir, treeName+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("durable: tree checkpoint: %w", err)
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(dir, treeName)); err != nil {
		return fmt.Errorf("durable: tree checkpoint rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// readTreeCkpt loads a checkpoint's hash arrays, or nil if the file is
// missing, damaged, or describes a different origin population — all of
// which just mean "rebuild from the events".
func readTreeCkpt(path string, n int) [][]membership.Hash {
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) < 4 {
		return nil
	}
	if crc32.Checksum(buf[4:], castagnoli) != rd32(buf[0:4]) {
		return nil
	}
	r := wire.NewReader(buf[4:])
	if r.Uvarint() != uint64(n) {
		return nil
	}
	hashes := make([][]membership.Hash, n)
	for o := 0; o < n; o++ {
		count := r.Uvarint()
		if r.Err() != nil || count > uint64(r.Remaining()/32)+1 {
			return nil
		}
		hashes[o] = make([]membership.Hash, 0, count)
		for i := uint64(0); i < count; i++ {
			b := r.Fixed(32)
			if b == nil {
				return nil
			}
			var h membership.Hash
			copy(h[:], b)
			hashes[o] = append(hashes[o], h)
		}
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return nil
	}
	return hashes
}
