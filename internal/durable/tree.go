package durable

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/wire"
)

// The log maintains an incremental Merkle forest over the journaled
// broadcast history (internal/membership), hashing each ActSend/ActReceive
// in the same Append that makes it durable — so the tree a joiner's
// anti-entropy digests against always describes exactly the on-disk log.
//
// The forest's whole state is the per-origin update-hash arrays, so it
// checkpoints alongside snapshots: compact writes tree.ckpt (one CRC'd
// frame: per origin, count, prefix root, then raw 32-byte hashes)
// atomically, and Open reloads it to skip rehashing the snapshot prefix,
// rehashing only the wal tail. The checkpoint is advisory — missing,
// corrupt, ahead of the recovered events, or failing verification, it is
// discarded and the forest rebuilds from the recovered payloads, which
// recovery holds in memory anyway.
//
// The checkpoint is also always potentially STALE: compact writes it after
// the snapshot rename, so a crash in between leaves the previous
// checkpoint next to the new snapshot. Staleness alone is benign (a
// shorter honest prefix seeds fine), but it means the file's contents can
// describe a history other than the one on disk — most plainly after a
// torn-tail truncation made the node re-mint seqs with different payloads.
// Verification therefore never trusts the hash arrays on CRC alone: the
// stored prefix root must reproduce from the stored hashes (catching any
// internal inconsistency the CRC happens to pass), and the stored hashes
// must match the recovered payloads over the whole last leaf (catching a
// divergent recent history, where the old last-hash-only spot check could
// be fooled by a coincidentally-matching final event).

const treeName = "tree.ckpt"

// treeCkptV2 marks the v2 checkpoint layout. It is written where v1 put
// the origin count — which is always ≥ 1 — so a v1 file can never be
// misread as v2. v1 files (no stored roots) are simply discarded: the
// checkpoint is advisory, so the cost is one full rebuild on the first
// open after an upgrade.
const treeCkptV2 = 0

// treeCkpt is one decoded checkpoint: per origin, the prefix root the
// writer computed over its live forest, and the raw update-hash array.
type treeCkpt struct {
	roots  []membership.Hash
	hashes [][]membership.Hash
}

// hashEvent folds one journaled event into the forest; non-broadcast
// events (ActDo) hash nothing. Gap errors mean the journal itself skipped
// a broadcast seq, which recovery's index checks should make impossible.
func hashEvent(tree *membership.Forest, ev cluster.Event) error {
	if ev.Kind != model.ActSend && ev.Kind != model.ActReceive {
		return nil
	}
	return tree.Append(int(ev.Origin), ev.Seq, ev.Payload)
}

// buildTree reconstructs the forest for a recovered event sequence, seeded
// where possible by the checkpoint's hash arrays.
func buildTree(dir string, n int, events []cluster.Event) (*membership.Forest, error) {
	// Per-origin payloads in seq order, straight from the recovered events.
	payloads := make([][][]byte, n)
	for _, ev := range events {
		if ev.Kind != model.ActSend && ev.Kind != model.ActReceive {
			continue
		}
		o := int(ev.Origin)
		if o < 0 || o >= n {
			return nil, &CorruptionError{File: walName, Reason: fmt.Sprintf("broadcast event from origin %d in a %d-replica log", o, n)}
		}
		if ev.Seq != uint64(len(payloads[o]))+1 {
			return nil, &CorruptionError{File: walName, Reason: fmt.Sprintf("origin %d broadcast seq %d, want %d", o, ev.Seq, len(payloads[o])+1)}
		}
		payloads[o] = append(payloads[o], ev.Payload)
	}

	ckpt := readTreeCkpt(filepath.Join(dir, treeName), n)
	tree := membership.NewForest(n)
	for o := 0; o < n; o++ {
		var prefix []membership.Hash
		if ckpt != nil && uint64(len(ckpt.hashes[o])) <= uint64(len(payloads[o])) &&
			verifyCkptOrigin(o, ckpt.roots[o], ckpt.hashes[o], payloads[o]) {
			prefix = ckpt.hashes[o]
		}
		for _, h := range prefix {
			if err := tree.AppendHash(o, h); err != nil {
				return nil, err
			}
		}
		for i := len(prefix); i < len(payloads[o]); i++ {
			if err := tree.Append(o, uint64(i)+1, payloads[o][i]); err != nil {
				return nil, err
			}
		}
	}
	return tree, nil
}

// verifyCkptOrigin decides whether one origin's checkpointed hash array may
// seed the forest. Two independent checks, both required:
//
//   - The stored prefix root must reproduce from the stored hashes. The CRC
//     already rejects bit rot, so what this really catches is a checkpoint
//     whose parts disagree — spliced, truncated-and-extended, or written by
//     a build with different hashing rules — without rehashing any payload.
//   - The stored hashes must match the recovered payloads over the entire
//     last leaf (up to LeafSpan trailing updates), not just the final one.
//     A stale checkpoint from before a torn-tail truncation can describe
//     re-minted recent history; checking one trailing event lets any
//     divergence older than it through, and a forest seeded that way serves
//     digests that "prove" divergence to every honest joiner.
//
// Interior Merkle hashing does not mix in the origin (only leaf update
// hashes do), so the scratch forest recomputes the root from the hash array
// alone.
func verifyCkptOrigin(origin int, root membership.Hash, hashes []membership.Hash, payloads [][]byte) bool {
	k := uint64(len(hashes))
	if k == 0 {
		return root == (membership.Hash{})
	}
	scratch := membership.NewForest(1)
	for _, h := range hashes {
		if scratch.AppendHash(0, h) != nil {
			return false
		}
	}
	if scratch.PrefixRoot(0, k) != root {
		return false
	}
	lo := uint64(0)
	if k > membership.LeafSpan {
		lo = k - membership.LeafSpan
	}
	for i := lo; i < k; i++ {
		if hashes[i] != membership.HashUpdate(origin, i+1, payloads[i]) {
			return false
		}
	}
	return true
}

// writeTreeCkpt persists the forest atomically: tmp + fsync + rename, the
// same discipline as snapshots, with one CRC over the whole payload.
func writeTreeCkpt(dir string, tree *membership.Forest) error {
	w := wire.NewWriter()
	w.Raw([]byte{0, 0, 0, 0}) // CRC slot
	w.Uvarint(treeCkptV2)
	w.Uvarint(2) // layout version
	w.Uvarint(uint64(tree.Origins()))
	for o := 0; o < tree.Origins(); o++ {
		count := tree.Count(o)
		w.Uvarint(count)
		root := tree.Root(o)
		w.Raw(root[:])
		for i := uint64(0); i < count; i++ {
			h := tree.UpdateHash(o, i)
			w.Raw(h[:])
		}
	}
	buf := w.Bytes()
	be32(buf[0:4], crc32.Checksum(buf[4:], castagnoli))

	tmp := filepath.Join(dir, treeName+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("durable: tree checkpoint: %w", err)
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(dir, treeName)); err != nil {
		return fmt.Errorf("durable: tree checkpoint rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// readTreeCkpt loads a checkpoint, or nil if the file is missing, damaged,
// in the rootless v1 layout, or describes a different origin population —
// all of which just mean "rebuild from the events".
func readTreeCkpt(path string, n int) *treeCkpt {
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) < 4 {
		return nil
	}
	if crc32.Checksum(buf[4:], castagnoli) != rd32(buf[0:4]) {
		return nil
	}
	r := wire.NewReader(buf[4:])
	if r.Uvarint() != treeCkptV2 || r.Uvarint() != 2 {
		return nil
	}
	if r.Uvarint() != uint64(n) {
		return nil
	}
	c := &treeCkpt{
		roots:  make([]membership.Hash, n),
		hashes: make([][]membership.Hash, n),
	}
	for o := 0; o < n; o++ {
		count := r.Uvarint()
		if r.Err() != nil || count > uint64(r.Remaining()/32)+1 {
			return nil
		}
		rb := r.Fixed(32)
		if rb == nil {
			return nil
		}
		copy(c.roots[o][:], rb)
		c.hashes[o] = make([]membership.Hash, 0, count)
		for i := uint64(0); i < count; i++ {
			b := r.Fixed(32)
			if b == nil {
				return nil
			}
			var h membership.Hash
			copy(h[:], b)
			c.hashes[o] = append(c.hashes[o], h)
		}
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return nil
	}
	return c
}
