package durable

import "sync"

// A GroupCommitter coalesces fsyncs across the durable logs that share it —
// one per sharded node, covering every shard's wal. Without it, S shards
// appending concurrently cost S fsyncs per tick even though the device
// flushes everything in its write cache at once; with it, appends that
// overlap in time ride one fsync round per dirty file, and the common case
// (every shard busy) converges to one coordinated flush instead of S
// uncoordinated ones.
//
// The protocol is leader/follower, with no background goroutine and no
// timer: the first Commit to arrive while no flush is running becomes the
// round's leader and fsyncs every file the round accumulated; Commits that
// arrive while the leader is flushing join the NEXT round and block until
// its flush completes. Batching therefore emerges from the fsync latency
// itself — the slower the device, the more appends each round absorbs — and
// an idle committer adds zero latency: a lone Commit flushes immediately.
//
// Durability is preserved because a file's fsync is ordered after the
// caller's write (the caller writes under its log's mutex before calling
// Commit, and Commit returns only after a Sync that started after the
// write). An error from the covering Sync is returned to every caller of
// that round; each such caller's append may not be durable, which the node
// treats as fail-stop exactly like a direct fsync failure.
type GroupCommitter struct {
	mu   sync.Mutex
	cur  *commitRound // round accepting joiners, nil if none pending
	busy bool         // a leader is flushing
}

// syncable is the slice of *os.File the committer needs. An interface so
// tests can inject failing or counting files.
type syncable interface {
	Sync() error
}

// commitRound is one fsync batch: the distinct files its joiners dirtied,
// and the completion signal they block on.
type commitRound struct {
	files map[syncable]struct{}
	done  chan struct{}
	err   error
}

// NewGroupCommitter returns an empty committer.
func NewGroupCommitter() *GroupCommitter {
	return &GroupCommitter{}
}

// Commit makes the caller's preceding writes to f durable and returns the
// covering Sync's error. Blocks until an fsync of f that began after entry
// has completed.
func (g *GroupCommitter) Commit(f syncable) error {
	g.mu.Lock()
	if g.cur == nil {
		g.cur = &commitRound{files: make(map[syncable]struct{}), done: make(chan struct{})}
	}
	r := g.cur
	r.files[f] = struct{}{}
	if g.busy {
		// Follower: the running leader will flush this round when its
		// current one completes.
		g.mu.Unlock()
		<-r.done
		return r.err
	}
	// Leader: flush rounds until none accumulated while we worked. Later
	// rounds belong to followers who joined during our flushes; there is no
	// other leader to run them.
	g.busy = true
	for cur := r; ; {
		g.cur = nil
		g.mu.Unlock()
		for f := range cur.files {
			if err := f.Sync(); err != nil && cur.err == nil {
				cur.err = err
			}
		}
		close(cur.done)
		g.mu.Lock()
		if g.cur == nil {
			g.busy = false
			g.mu.Unlock()
			return r.err
		}
		cur = g.cur
	}
}
