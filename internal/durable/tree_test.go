package durable

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/membership"
)

// treeRoots snapshots every origin's root and count for comparison.
func treeRoots(f *membership.Forest) map[int][2]interface{} {
	out := map[int][2]interface{}{}
	for o := 0; o < f.Origins(); o++ {
		if f.Count(o) > 0 {
			out[o] = [2]interface{}{f.Count(o), f.Root(o)}
		}
	}
	return out
}

// TestTreeRecoveredMatchesLive: the Merkle forest rebuilt at Open from the
// journal must be hash-identical to the one the previous incarnation
// maintained incrementally — otherwise a restarted node would refuse (or
// wrongly admit) joiners its predecessor served correctly.
func TestTreeRecoveredMatchesLive(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(60)
	l, hist, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if hist != nil {
		t.Fatal("fresh dir recovered history")
	}
	for _, ev := range events {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	live := treeRoots(l.Tree())
	if len(live) == 0 {
		t.Fatal("no origins hashed; sampleEvents should produce sends and receives")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, _, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recovered := treeRoots(l2.Tree())
	if len(recovered) != len(live) {
		t.Fatalf("recovered %d origins, want %d", len(recovered), len(live))
	}
	for o, want := range live {
		if recovered[o] != want {
			t.Fatalf("origin %d tree diverged across recovery: got %v want %v", o, recovered[o], want)
		}
	}
}

// TestTreeCheckpointRoundTripAndCorruptFallback: compaction writes
// tree.ckpt next to the snapshot, Open seeds the forest from it, and a
// damaged checkpoint degrades to a full rebuild — never to a wrong tree.
func TestTreeCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(60)
	// SnapshotEvery 16 forces several compactions over 60 appends.
	l, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	want := treeRoots(l.Tree())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "tree.ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("compaction left no tree checkpoint: %v", err)
	}

	l2, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	got := treeRoots(l2.Tree())
	l2.Close()
	for o, w := range want {
		if got[o] != w {
			t.Fatalf("origin %d tree diverged after checkpointed recovery: got %v want %v", o, got[o], w)
		}
	}

	// Flip a byte in the checkpoint body: the CRC slot rejects it and Open
	// silently rebuilds from the replayed events instead.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(ckpt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l3, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 16})
	if err != nil {
		t.Fatalf("corrupt tree checkpoint must not fail recovery: %v", err)
	}
	got = treeRoots(l3.Tree())
	l3.Close()
	for o, w := range want {
		if got[o] != w {
			t.Fatalf("origin %d tree wrong after corrupt-checkpoint rebuild: got %v want %v", o, got[o], w)
		}
	}
}

// rewriteCkptCRC recomputes the checkpoint's leading CRC so a deliberate
// body edit survives the integrity check — the point of the tests below is
// what verification catches AFTER the CRC passes.
func rewriteCkptCRC(t *testing.T, path string, edit func(body []byte)) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edit(raw[4:])
	be32(raw[0:4], crc32.Checksum(raw[4:], castagnoli))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// ckptOriginZero locates origin 0's region in a v2 checkpoint body: the
// count, the offset of its stored root, and the offset of its hash array.
// Counts in these tests stay below 128, so every uvarint is one byte.
func ckptOriginZero(t *testing.T, body []byte) (count int, rootOff, hashOff int) {
	t.Helper()
	if body[0] != 0 || body[1] != 2 {
		t.Fatalf("not a v2 checkpoint body: % x", body[:4])
	}
	count = int(body[3])
	if count >= 128 || int(body[2]) >= 128 {
		t.Fatalf("test assumes single-byte varints, got count %d origins %d", count, body[2])
	}
	return count, 4, 4 + 32
}

// TestTreeCkptInconsistentHashArrayRebuilds is the regression for the
// rootless v1 checkpoint: a CRC-valid file whose hash array disagrees with
// its own summary could seed the forest with wrong interior hashes as long
// as the final event's hash happened to match. The v2 layout stores the
// writer's prefix root, and recovery must reproduce that root from the
// stored hashes before trusting any of them — so an edited deep hash (well
// inside the compacted prefix, older than the last leaf, where no payload
// check looks) forces a full rebuild instead of a poisoned forest.
func TestTreeCkptInconsistentHashArrayRebuilds(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(300) // >LeafSpan broadcasts per origin
	l, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	want := treeRoots(l.Tree())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, treeName)

	var count int
	rewriteCkptCRC(t, ckpt, func(body []byte) {
		var hashOff int
		count, _, hashOff = ckptOriginZero(t, body)
		if count <= int(membership.LeafSpan) {
			t.Fatalf("origin 0 checkpointed %d hashes, need > %d for a deep edit", count, membership.LeafSpan)
		}
		body[hashOff] ^= 0x01 // hash[0]: deeper than any payload re-check
	})
	l2, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 64})
	if err != nil {
		t.Fatalf("inconsistent tree checkpoint must not fail recovery: %v", err)
	}
	got := treeRoots(l2.Tree())
	l2.Close()
	for o, w := range want {
		if got[o] != w {
			t.Fatalf("origin %d tree wrong after inconsistent-checkpoint rebuild: got %v want %v", o, got[o], w)
		}
	}
}

// TestTreeCkptDivergentLastLeafRebuilds crafts the harder forgery: the hash
// array and the stored root agree with EACH OTHER (the attacker recomputed
// the root) but describe a recent history that diverges from the recovered
// payloads. The old single-trailing-hash spot check missed any divergence
// older than the final event; v2 verifies the entire last leaf against the
// recovered payloads, so an edit LeafSpan-1 events back is caught too.
func TestTreeCkptDivergentLastLeafRebuilds(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(300)
	l, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	want := treeRoots(l.Tree())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, treeName)

	rewriteCkptCRC(t, ckpt, func(body []byte) {
		count, rootOff, hashOff := ckptOriginZero(t, body)
		if count <= int(membership.LeafSpan) {
			t.Fatalf("origin 0 checkpointed %d hashes, need > %d", count, membership.LeafSpan)
		}
		// Divergence at the START of the last leaf: the final event's hash
		// stays honest, which is exactly what fooled the spot check.
		victim := count - int(membership.LeafSpan)
		body[hashOff+victim*32] ^= 0x01
		// Recompute the root over the edited array so the self-consistency
		// check passes and only the payload comparison can object.
		scratch := membership.NewForest(1)
		for i := 0; i < count; i++ {
			var h membership.Hash
			copy(h[:], body[hashOff+i*32:hashOff+(i+1)*32])
			if err := scratch.AppendHash(0, h); err != nil {
				t.Fatal(err)
			}
		}
		root := scratch.PrefixRoot(0, uint64(count))
		copy(body[rootOff:rootOff+32], root[:])
	})
	l2, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 64})
	if err != nil {
		t.Fatalf("divergent tree checkpoint must not fail recovery: %v", err)
	}
	got := treeRoots(l2.Tree())
	l2.Close()
	for o, w := range want {
		if got[o] != w {
			t.Fatalf("origin %d tree wrong after divergent-checkpoint rebuild: got %v want %v", o, got[o], w)
		}
	}
}

// TestCompactCrashLeavesStaleCkptRecoverable injects a crash between the
// snapshot rename and the checkpoint write — the window where compact has
// published a NEW snapshot while tree.ckpt still describes the OLD forest.
// Reopening must recover every event (snapshot ∪ untruncated wal) and build
// the same forest a checkpoint-less rebuild would: the stale-but-honest
// prefix seeds, it must never poison.
func TestCompactCrashLeavesStaleCkptRecoverable(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(40)
	l, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	// First compaction (event 16) completes normally and writes a real
	// checkpoint; the hook then kills the second one (event 32) after its
	// snapshot rename, stranding that first checkpoint next to the newer
	// snapshot with the wal never truncated.
	crashed := false
	type compactCrash struct{}
	appended := 0
	testCrashCompact = func() {
		if appended > 20 {
			panic(compactCrash{})
		}
	}
	defer func() { testCrashCompact = nil }()
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(compactCrash); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		for _, ev := range events {
			// Count before the call: the Append that crashes mid-compaction
			// has already made its event durable when the panic fires.
			appended++
			if err := l.Append(ev); err != nil {
				t.Fatal(err)
			}
		}
	}()
	if !crashed {
		t.Fatal("crash hook never fired; compaction cadence changed?")
	}
	// No Close: the "process" died. The on-disk state is what recovery gets.
	testCrashCompact = nil

	l2, hist, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 16})
	if err != nil {
		t.Fatalf("recovery from mid-compaction crash: %v", err)
	}
	defer l2.Close()
	if hist == nil || len(hist.Events) != appended {
		got := 0
		if hist != nil {
			got = len(hist.Events)
		}
		t.Fatalf("recovered %d events, want every appended one (%d)", got, appended)
	}
	// Reference forest straight from the recovered events — what a rebuild
	// with no checkpoint at all would produce.
	ref := membership.NewForest(testMeta().N)
	for _, ev := range hist.Events {
		if err := hashEvent(ref, ev); err != nil {
			t.Fatal(err)
		}
	}
	want := treeRoots(ref)
	got := treeRoots(l2.Tree())
	if len(got) != len(want) {
		t.Fatalf("recovered forest covers %d origins, want %d", len(got), len(want))
	}
	for o, w := range want {
		if got[o] != w {
			t.Fatalf("origin %d forest diverged after mid-compaction crash: got %v want %v", o, got[o], w)
		}
	}
}
