package durable

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/membership"
)

// treeRoots snapshots every origin's root and count for comparison.
func treeRoots(f *membership.Forest) map[int][2]interface{} {
	out := map[int][2]interface{}{}
	for o := 0; o < f.Origins(); o++ {
		if f.Count(o) > 0 {
			out[o] = [2]interface{}{f.Count(o), f.Root(o)}
		}
	}
	return out
}

// TestTreeRecoveredMatchesLive: the Merkle forest rebuilt at Open from the
// journal must be hash-identical to the one the previous incarnation
// maintained incrementally — otherwise a restarted node would refuse (or
// wrongly admit) joiners its predecessor served correctly.
func TestTreeRecoveredMatchesLive(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(60)
	l, hist, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if hist != nil {
		t.Fatal("fresh dir recovered history")
	}
	for _, ev := range events {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	live := treeRoots(l.Tree())
	if len(live) == 0 {
		t.Fatal("no origins hashed; sampleEvents should produce sends and receives")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, _, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recovered := treeRoots(l2.Tree())
	if len(recovered) != len(live) {
		t.Fatalf("recovered %d origins, want %d", len(recovered), len(live))
	}
	for o, want := range live {
		if recovered[o] != want {
			t.Fatalf("origin %d tree diverged across recovery: got %v want %v", o, recovered[o], want)
		}
	}
}

// TestTreeCheckpointRoundTripAndCorruptFallback: compaction writes
// tree.ckpt next to the snapshot, Open seeds the forest from it, and a
// damaged checkpoint degrades to a full rebuild — never to a wrong tree.
func TestTreeCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(60)
	// SnapshotEvery 16 forces several compactions over 60 appends.
	l, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	want := treeRoots(l.Tree())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "tree.ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("compaction left no tree checkpoint: %v", err)
	}

	l2, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	got := treeRoots(l2.Tree())
	l2.Close()
	for o, w := range want {
		if got[o] != w {
			t.Fatalf("origin %d tree diverged after checkpointed recovery: got %v want %v", o, got[o], w)
		}
	}

	// Flip a byte in the checkpoint body: the CRC slot rejects it and Open
	// silently rebuilds from the replayed events instead.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(ckpt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l3, _, err := Open(dir, testMeta(), Options{NoSync: true, SnapshotEvery: 16})
	if err != nil {
		t.Fatalf("corrupt tree checkpoint must not fail recovery: %v", err)
	}
	got = treeRoots(l3.Tree())
	l3.Close()
	for o, w := range want {
		if got[o] != w {
			t.Fatalf("origin %d tree wrong after corrupt-checkpoint rebuild: got %v want %v", o, got[o], w)
		}
	}
}
