package durable

import (
	"fmt"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/membership"
	"repro/internal/model"
)

// Storage roots one durable log per node under Dir (node<i>/ subdirectories)
// and plugs into cluster.Config.Storage, so a Supervisor's crash/restart
// directives exercise the same journal-and-recover code path a kill -9'd
// served process takes: crash closes the incarnation's log with the node,
// restart recovers the history from disk instead of from memory.
type Storage struct {
	Dir  string
	Opts Options
}

var _ cluster.NodeStorage = (*Storage)(nil)

// Open implements cluster.NodeStorage: it opens node id's log under Dir,
// returning its append callback, any recovered history, the Merkle forest
// the log maintains over the journaled broadcasts, and the close hook the
// node runs after its event loop has exited.
func (s *Storage) Open(id model.ReplicaID, n int, storeName string) (func(cluster.Event) error, *cluster.History, *membership.Forest, func() error, error) {
	dir := filepath.Join(s.Dir, fmt.Sprintf("node%d", id))
	l, hist, err := Open(dir, Meta{Node: id, N: n, Store: storeName}, s.Opts)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return l.Append, hist, l.Tree(), l.Close, nil
}
