package durable

import (
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/cluster"
	"repro/internal/membership"
	"repro/internal/model"
)

// Storage roots one durable log per node under Dir (node<i>/ subdirectories;
// a sharded node nests node<i>/shard-NNN/, one log per shard) and plugs into
// cluster.Config.Storage, so a Supervisor's crash/restart directives
// exercise the same journal-and-recover code path a kill -9'd served process
// takes: crash closes the incarnation's log with the node, restart recovers
// the history from disk instead of from memory.
//
// When a node opens more than one shard through the same Storage, the shard
// logs share one GroupCommitter automatically: concurrent appends across
// shards coalesce into one fsync round instead of one fsync per shard.
// Opts.Group, if set, overrides the shared committer (tests inject counting
// ones).
type Storage struct {
	Dir  string
	Opts Options

	once  sync.Once
	group *GroupCommitter
}

var _ cluster.NodeStorage = (*Storage)(nil)

// Open implements cluster.NodeStorage: it opens node id's log for one shard
// under Dir, returning its append callback, any recovered history, the
// Merkle forest the log maintains over the journaled broadcasts, and the
// close hook the node runs after that shard's event loop has exited.
func (s *Storage) Open(id model.ReplicaID, n int, storeName string, shard, shards int) (func(cluster.Event) error, *cluster.History, *membership.Forest, func() error, error) {
	dir := filepath.Join(s.Dir, fmt.Sprintf("node%d", id))
	opts := s.Opts
	if shards > 1 {
		dir = filepath.Join(dir, fmt.Sprintf("shard-%03d", shard))
		if opts.Group == nil {
			s.once.Do(func() { s.group = NewGroupCommitter() })
			opts.Group = s.group
		}
	}
	l, hist, err := Open(dir, Meta{Node: id, N: n, Store: storeName, Shard: shard, Shards: shards}, opts)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return l.Append, hist, l.Tree(), l.Close, nil
}
