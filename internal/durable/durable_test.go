package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/wire"

	_ "repro/internal/store/causal"
)

// encodeTestRecord builds one framed record in the chosen codec, copied out
// of the pooled writer so tests can accumulate records freely.
func encodeTestRecord(index uint64, ev cluster.Event, binary bool) ([]byte, error) {
	rec, err := encodeRecord(wire.NewWriter(), index, ev, binary)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), rec...), nil
}

// sampleEvents synthesizes a plausible mixed history: do, send, and receive
// events with the field shapes real nodes record.
func sampleEvents(n int) []cluster.Event {
	evs := make([]cluster.Event, 0, n)
	lamport := uint64(0)
	seq := uint64(0)
	for i := 0; i < n; i++ {
		lamport++
		switch i % 3 {
		case 0:
			evs = append(evs, cluster.Event{
				Kind: model.ActDo, Lamport: lamport,
				Object: "x", Op: model.Write(model.Value(fmt.Sprintf("v%d", i))),
				Rval:     model.OKResponse(),
				Dot:      model.Dot{Origin: 0, Seq: seq + 1},
				Frontier: []uint64{seq, 0, 0},
			})
		case 1:
			seq++
			evs = append(evs, cluster.Event{
				Kind: model.ActSend, Lamport: lamport,
				Origin: 0, Seq: seq, Payload: []byte(fmt.Sprintf("payload-%d", i)),
			})
		default:
			evs = append(evs, cluster.Event{
				Kind: model.ActReceive, Lamport: lamport,
				Origin: 1, Seq: uint64(i/3 + 1), Payload: []byte(fmt.Sprintf("remote-%d", i)),
			})
		}
	}
	return evs
}

// eventsEqual compares event sequences through their JSON form (the codec
// the log itself uses), so nil-vs-empty slice normalization cannot produce
// false mismatches.
func eventsEqual(t *testing.T, got, want []cluster.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		g, _ := json.Marshal(got[i])
		w, _ := json.Marshal(want[i])
		if string(g) != string(w) {
			t.Fatalf("event %d differs:\n got %s\nwant %s", i, g, w)
		}
	}
}

func testMeta() Meta { return Meta{Node: 0, N: 3, Store: "causal"} }

func writeLog(t *testing.T, dir string, events []cluster.Event, opts Options) {
	t.Helper()
	l, hist, err := Open(dir, testMeta(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if hist != nil {
		t.Fatalf("fresh dir recovered %d events", len(hist.Events))
	}
	for _, ev := range events {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(20)
	writeLog(t, dir, events, Options{})

	l, hist, err := Open(dir, testMeta(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if hist == nil {
		t.Fatal("no history recovered")
	}
	if hist.Node != 0 || hist.N != 3 || hist.Store != "causal" {
		t.Fatalf("history meta = %+v", hist)
	}
	eventsEqual(t, hist.Events, events)

	// The log keeps appending where recovery left off.
	extra := sampleEvents(23)[20:]
	for _, ev := range extra {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, hist2, err := Open(dir, testMeta(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	eventsEqual(t, hist2.Events, append(append([]cluster.Event(nil), events...), extra...))
}

func TestMetaMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, sampleEvents(3), Options{NoSync: true})
	for _, wrong := range []Meta{
		{Node: 1, N: 3, Store: "causal"},
		{Node: 0, N: 4, Store: "causal"},
		{Node: 0, N: 3, Store: "lww"},
	} {
		if _, _, err := Open(dir, wrong, Options{}); !errors.Is(err, ErrMetaMismatch) {
			t.Fatalf("meta %+v: err = %v, want ErrMetaMismatch", wrong, err)
		}
	}
}

// TestTornTailTruncatesToPrefix is the torn-write regression sweep: cutting
// the wal at EVERY byte offset inside its last few records must recover a
// clean prefix of the original history — never a fabricated or reordered
// event — and must leave the file re-openable and appendable.
func TestTornTailTruncatesToPrefix(t *testing.T) {
	master := t.TempDir()
	events := sampleEvents(12)
	writeLog(t, master, events, Options{NoSync: true})
	walBytes, err := os.ReadFile(filepath.Join(master, walName))
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries, so cut offsets can be classified.
	boundaries := []int{0}
	for off := 0; off < len(walBytes); {
		size := int(rd32(walBytes[off : off+4]))
		off += 8 + size
		boundaries = append(boundaries, off)
	}
	if boundaries[len(boundaries)-1] != len(walBytes) {
		t.Fatalf("frame walk ended at %d, file is %d", boundaries[len(boundaries)-1], len(walBytes))
	}
	prefixAt := func(cut int) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				n = i
			}
		}
		return n
	}

	start := boundaries[len(boundaries)-4] // sweep the last three records
	for cut := start; cut < len(walBytes); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, hist, err := Open(dir, testMeta(), Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		want := events[:prefixAt(cut)]
		var got []cluster.Event
		if hist != nil {
			got = hist.Events
		}
		eventsEqual(t, got, want)

		// Appending after recovery must continue the sequence...
		if err := l.Append(events[len(want)]); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// ...and a second recovery sees it (truncation was physical).
		l2, hist2, err := Open(dir, testMeta(), Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		eventsEqual(t, hist2.Events, events[:len(want)+1])
		l2.Close()
	}
}

// TestCorruptTailBitFlip flips single bytes in the last record (header,
// CRC, payload) and requires recovery to drop the damaged suffix, keeping
// the intact prefix.
func TestCorruptTailBitFlip(t *testing.T) {
	master := t.TempDir()
	events := sampleEvents(8)
	writeLog(t, master, events, Options{NoSync: true})
	walBytes, err := os.ReadFile(filepath.Join(master, walName))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := []int{0}
	for off := 0; off < len(walBytes); {
		size := int(rd32(walBytes[off : off+4]))
		off += 8 + size
		boundaries = append(boundaries, off)
	}
	lastStart := boundaries[len(boundaries)-2]
	for _, flip := range []int{lastStart, lastStart + 4, lastStart + 8, len(walBytes) - 1} {
		dir := t.TempDir()
		corrupt := append([]byte(nil), walBytes...)
		corrupt[flip] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, walName), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		_, hist, err := Open(dir, testMeta(), Options{NoSync: true})
		if err != nil {
			t.Fatalf("flip at %d: %v", flip, err)
		}
		eventsEqual(t, hist.Events, events[:len(events)-1])
	}
}

// TestIndexGapIsCorruption: a wal whose valid records skip an index cannot
// result from a torn append, so recovery must refuse instead of silently
// bridging the gap.
func TestIndexGapIsCorruption(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(3)
	var walBytes []byte
	for i, ev := range events {
		idx := uint64(i)
		if i == 2 {
			idx = 5 // gap: 0, 1, 5
		}
		rec, err := encodeTestRecord(idx, ev, true)
		if err != nil {
			t.Fatal(err)
		}
		walBytes = append(walBytes, rec...)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptionError
	if _, _, err := Open(dir, testMeta(), Options{}); !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptionError", err)
	}
}

// TestSnapshotCompaction drives the log past SnapshotEvery and checks that
// the wal shrank, the snapshot took over, and recovery still returns the
// complete history.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(30)
	writeLog(t, dir, events, Options{SnapshotEvery: 8, NoSync: true})

	snapInfo, err := os.Stat(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatalf("no snapshot after 30 appends at SnapshotEvery=8: %v", err)
	}
	if snapInfo.Size() == 0 {
		t.Fatal("empty snapshot")
	}
	walInfo, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if walInfo.Size() >= snapInfo.Size() {
		t.Fatalf("wal (%d bytes) not compacted below snapshot (%d bytes)", walInfo.Size(), snapInfo.Size())
	}
	_, hist, err := Open(dir, testMeta(), Options{SnapshotEvery: 8, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eventsEqual(t, hist.Events, events)
}

// TestSnapshotWalOverlapRecovers simulates a crash between the snapshot
// rename and the wal truncation: the wal still holds records the snapshot
// already covers. Recovery must skip the overlap by index, not duplicate.
func TestSnapshotWalOverlapRecovers(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(10)
	writeLog(t, dir, events, Options{SnapshotEvery: -1, NoSync: true}) // wal holds 0..9, no snapshot

	// Hand-write a snapshot covering the prefix 0..5, leaving the wal
	// overlapping it — byte-for-byte the post-crash state.
	var snap []byte
	for i, ev := range events[:6] {
		rec, err := encodeTestRecord(uint64(i), ev, true)
		if err != nil {
			t.Fatal(err)
		}
		snap = append(snap, rec...)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	_, hist, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eventsEqual(t, hist.Events, events)
}

// TestTornSnapshotIsCorruption: snapshots are written atomically, so a torn
// snapshot means real corruption — recovery must fail loudly rather than
// truncate away events the wal can no longer supply.
func TestTornSnapshotIsCorruption(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(6)
	var snap []byte
	for i, ev := range events {
		rec, err := encodeTestRecord(uint64(i), ev, true)
		if err != nil {
			t.Fatal(err)
		}
		snap = append(snap, rec...)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), snap[:len(snap)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptionError
	if _, _, err := Open(dir, testMeta(), Options{}); !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptionError", err)
	}
}

// TestLeftoverTmpSnapshotIgnored: a crash mid-snapshot leaves snap.log.tmp;
// recovery must ignore and remove it, trusting wal + previous snapshot.
func TestLeftoverTmpSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(5)
	writeLog(t, dir, events, Options{NoSync: true})
	tmp := filepath.Join(dir, snapName+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hist, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eventsEqual(t, hist.Events, events)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover tmp snapshot not removed")
	}
}

// TestDiskBackedSupervisorAuditsClean is the tentpole's supervisor half: a
// chaos schedule with crash/restart directives runs against a cluster whose
// histories live on disk (cluster.Config.Storage), so every crash closes a
// journal and every restart recovers through durable.Open — the same code
// path a kill -9'd served process takes. The run must quiesce, converge,
// and audit clean, and the recovered incarnations' journals must hold the
// full merged history.
func TestDiskBackedSupervisorAuditsClean(t *testing.T) {
	st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	dataDir := t.TempDir()
	em := fault.NewNetem(n)
	base := cluster.Config{
		Store: st, Seed: 17,
		Storage:        &Storage{Dir: dataDir, Opts: Options{SnapshotEvery: 64}},
		DialTimeout:    time.Second,
		DialBackoffMin: 5 * time.Millisecond,
		DialBackoffMax: 100 * time.Millisecond,
		RetransmitMin:  25 * time.Millisecond,
		RetransmitMax:  250 * time.Millisecond,
	}
	sup, err := cluster.NewSupervisor(base, n, em, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	sched := fault.Generate(fault.Config{Seed: 17, N: n, Steps: 80, Partitions: 1, Crashes: 2, LinkFaults: 2})
	objects := []model.ObjectID{"x", "y", "z"}

	var wg sync.WaitGroup
	schedErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		schedErr <- sup.RunSchedule(sched)
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 60; i++ {
				obj := objects[rng.Intn(len(objects))]
				op := model.Read()
				if rng.Intn(2) == 0 {
					op = model.Write(model.Value(fmt.Sprintf("w%d.%d", w, i)))
				}
				_, _ = sup.Do(w%n, obj, op) // downtime errors expected
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if err := <-schedErr; err != nil {
		t.Fatalf("schedule: %v", err)
	}
	crashes, restarts := sup.Crashes()
	if crashes == 0 || crashes != restarts {
		t.Fatalf("crashes/restarts = %d/%d; schedule did not exercise disk recovery", crashes, restarts)
	}

	live := sup.Nodes()
	if len(live) != n {
		t.Fatalf("%d nodes live, want %d", len(live), n)
	}
	if !cluster.WaitQuiesced(live, 30*time.Second) {
		t.Fatal("disk-backed cluster did not quiesce after the schedule")
	}
	doers := make([]cluster.Doer, n)
	for i := 0; i < n; i++ {
		doers[i] = sup.Doer(i)
	}
	if err := cluster.CheckConverged(doers, objects); err != nil {
		t.Fatal(err)
	}
	hists, err := sup.Histories()
	if err != nil {
		t.Fatal(err)
	}
	audit, err := cluster.BuildAudit(hists)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatalf("derived abstract execution not causal: %v", err)
	}
	for _, nd := range live {
		if v := nd.Violations(); len(v) != 0 {
			t.Fatalf("r%d property violations: %v", nd.ID(), v)
		}
	}

	// Every node's on-disk log must hold exactly its in-memory history —
	// the journal IS the history, not a lossy shadow of it.
	sup.Close()
	for i := 0; i < n; i++ {
		_, hist, err := Open(filepath.Join(dataDir, fmt.Sprintf("node%d", i)),
			Meta{Node: model.ReplicaID(i), N: n, Store: "causal"}, Options{})
		if err != nil {
			t.Fatalf("reopen node%d: %v", i, err)
		}
		if hist == nil {
			t.Fatalf("node%d journal is empty", i)
		}
		eventsEqual(t, hist.Events, hists[i].Events)
	}
}
