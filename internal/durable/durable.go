// Package durable persists one cluster node's recorded event history to
// disk, turning the in-memory log that Config.Restore already knows how to
// replay into a crash-surviving artifact: a served process can be kill -9'd
// and restarted from its data directory alone.
//
// The design is a write-ahead log with periodic snapshot/compaction:
//
//   - wal.log is append-only. Each record frames one cluster.Event behind a
//     4-byte length and a CRC-32C of the payload, and Append fsyncs before
//     returning. The node invokes Append on its event loop as each
//     do/send/receive is recorded and BEFORE the update's acknowledgement
//     (or the client's response) leaves the process, so any event a peer
//     holds an ack for is durable — the PR 4 crash-window invariant, now
//     across process death.
//   - snap.log is a whole-prefix snapshot: once the tail grows past
//     SnapshotEvery records, the full event sequence so far is rewritten
//     into a temp file, fsynced, renamed over snap.log, and the wal is
//     truncated. The rename is atomic, so recovery never sees a torn
//     snapshot; a crash between rename and truncation only leaves the wal
//     overlapping the snapshot, which the per-record event index detects
//     and skips.
//   - Recovery (Open) loads the snapshot, then scans the wal tail. A torn
//     or corrupted tail frame — short header, short payload, CRC mismatch,
//     undecodable event — truncates the file at the last good record and
//     recovery stops there: the log is a prefix of what the node recorded,
//     never a fabrication. An index *gap* inside otherwise-valid records is
//     different: it cannot result from a torn append, so it is reported as
//     corruption instead of silently skipped.
//
// The recovered history is exactly what cluster.Config.Restore replays, so
// the restart path is the same code the in-process supervisor exercises.
package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/cluster"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/wire"
)

const (
	walName  = "wal.log"
	snapName = "snap.log"
	metaName = "meta.json"

	// maxRecord bounds one framed record: larger than any replication
	// payload the stores produce, small enough that a corrupted length
	// prefix cannot force an unbounded allocation during recovery.
	maxRecord = 16 << 20
)

// castagnoli is the CRC-32C table (the polynomial used by modern storage
// systems; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrMetaMismatch reports a data directory that belongs to a different
// node, cluster size, or store than the one opening it — restoring it
// would replay another replica's history into this one.
var ErrMetaMismatch = errors.New("durable: data directory belongs to a different node configuration")

// CorruptionError reports damage recovery must not repair by guessing: a
// torn snapshot (which the atomic rename should make impossible) or an
// event-index gap between otherwise valid records (which a torn tail
// cannot produce).
type CorruptionError struct {
	File   string
	Offset int64
	Reason string
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("durable: %s corrupt at offset %d: %s", e.File, e.Offset, e.Reason)
}

// Meta identifies whose history a data directory holds. It is written on
// first open and verified on every reopen.
type Meta struct {
	Node  model.ReplicaID `json:"node"`
	N     int             `json:"n"`
	Store string          `json:"store"`
	// Shard/Shards pin a sharded node's per-shard directory to its shard, so
	// two shard directories (whose logs carry overlapping (origin, seq)
	// domains) can never be swapped into each other's place. Zero on
	// single-shard directories — canon() folds Shards==1 down to zero, so
	// meta.json files written before sharding verify unchanged.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
}

// canon normalizes the single-shard representations (Shards 0 and 1 mean
// the same thing) so old and new meta files compare equal.
func (m Meta) canon() Meta {
	if m.Shards <= 1 {
		m.Shard, m.Shards = 0, 0
	}
	return m
}

// Options tune the log.
type Options struct {
	// SnapshotEvery is how many wal records accumulate before the log
	// compacts the whole event sequence into a fresh snapshot and
	// truncates the wal. Zero means the default (1024); negative disables
	// compaction.
	SnapshotEvery int
	// NoSync skips the per-append fsync (tests that only exercise framing
	// and recovery logic, not crash safety, run much faster without it).
	NoSync bool
	// Group, when non-nil, routes per-append fsyncs through a shared
	// GroupCommitter so logs that commit concurrently (a sharded node's
	// per-shard journals) coalesce into one fsync round. Durability
	// semantics are unchanged — Append still returns only after its record
	// is on disk. Ignored under NoSync.
	Group *GroupCommitter
	// Codec names the event encoding for newly written records: "binary"
	// (the default — the same compact codec the transport negotiates) or
	// "json" (the legacy format, debuggable with standard tools). Recovery
	// reads both regardless, per record: the record body carries its own
	// format tag, so a directory written by an old build — or one that
	// changed codecs mid-life — replays unchanged, and compaction rewrites
	// the whole prefix in the current codec as a side effect.
	Codec string
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	if o.Codec == "" {
		o.Codec = "binary"
	}
	return o
}

// Log is one node's open durable history. Append is called from the node's
// event loop (one goroutine), but Close can arrive from a different
// shutdown goroutine, so the mutex serializes them.
type Log struct {
	dir    string
	meta   Meta
	opts   Options
	binary bool // write new records in the binary event codec

	mu       sync.Mutex
	wal      *os.File
	events   []cluster.Event // full recovered+appended sequence
	walCount int             // records currently in the wal tail
	closed   bool

	// tree is the Merkle forest over the journaled broadcast history,
	// updated in the same Append that journals each send/receive. It is
	// handed to the cluster node (cluster.Config.Tree) and read from the
	// node's event loop — the same goroutine that calls Append — so the
	// forest needs no locking of its own.
	tree *membership.Forest
}

// Tree returns the log's Merkle forest over its broadcast history.
func (l *Log) Tree() *membership.Forest { return l.tree }

// Open opens (or initializes) the data directory and recovers the event
// history it holds. The returned history is nil when the directory holds no
// events yet (a fresh boot); otherwise it is exactly what
// cluster.Config.Restore replays. The caller must Close the log after the
// node has shut down.
func Open(dir string, meta Meta, opts Options) (*Log, *cluster.History, error) {
	opts = opts.withDefaults()
	var binary bool
	switch opts.Codec {
	case "binary":
		binary = true
	case "json":
	default:
		return nil, nil, fmt.Errorf("durable: unknown journal codec %q (have json, binary)", opts.Codec)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	if err := checkMeta(dir, meta); err != nil {
		return nil, nil, err
	}

	// Leftover temp files are snapshots whose rename never happened; the
	// previous snapshot (or none) is still authoritative.
	removeGlob(filepath.Join(dir, "*.tmp"))

	events, err := readSnapshot(filepath.Join(dir, snapName))
	if err != nil {
		return nil, nil, err
	}
	snapCount := len(events)
	events, err = recoverWal(filepath.Join(dir, walName), events)
	if err != nil {
		return nil, nil, err
	}

	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	tree, err := buildTree(dir, meta.N, events)
	if err != nil {
		wal.Close()
		return nil, nil, err
	}
	l := &Log{dir: dir, meta: meta, opts: opts, binary: binary, wal: wal, events: events, tree: tree}
	// The surviving tail record count drives compaction: everything beyond
	// the snapshot prefix (a post-crash overlap only makes the next
	// compaction run sooner — harmless).
	l.walCount = len(events) - snapCount

	var hist *cluster.History
	if len(events) > 0 {
		hist = &cluster.History{
			Node: meta.Node, N: meta.N, Store: meta.Store,
			Events: append([]cluster.Event(nil), events...),
		}
	}
	return l, hist, nil
}

// Len returns the number of events currently in the log.
func (l *Log) Len() int { return len(l.events) }

// Append persists one event: frame, write, fsync. It must complete before
// the event's effects are acknowledged to any peer or client — the node's
// event loop guarantees that by journaling at record time. An error means
// the event may not be durable; the node fail-stops on it.
func (l *Log) Append(ev cluster.Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("durable: append to closed log")
	}
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	rec, err := encodeRecord(w, uint64(len(l.events)), ev, l.binary)
	if err != nil {
		return err
	}
	if _, err := l.wal.Write(rec); err != nil {
		return fmt.Errorf("durable: wal append: %w", err)
	}
	if !l.opts.NoSync {
		if g := l.opts.Group; g != nil {
			// Group commit: the round's fsync starts after the write above
			// (Commit guarantees it), so acked ⇒ on-disk holds exactly as
			// with the direct Sync. l.mu stays held — each log has its own,
			// so other shards' appends proceed and pile into the round.
			if err := g.Commit(l.wal); err != nil {
				return fmt.Errorf("durable: wal group sync: %w", err)
			}
		} else if err := l.wal.Sync(); err != nil {
			return fmt.Errorf("durable: wal sync: %w", err)
		}
	}
	l.events = append(l.events, ev)
	l.walCount++
	if err := hashEvent(l.tree, ev); err != nil {
		// The event is durable but the tree cannot describe it: a seq gap
		// the node should never produce. Fail-stop rather than serve
		// digests that would "prove" divergence to every joiner.
		return err
	}
	if l.opts.SnapshotEvery > 0 && l.walCount >= l.opts.SnapshotEvery {
		if err := l.compact(); err != nil {
			return err
		}
	}
	return nil
}

// testCrashCompact, when non-nil, runs inside compact between the snapshot
// rename and the wal truncate / tree checkpoint write. Tests install a
// panicking hook to simulate a kill -9 in exactly that window.
var testCrashCompact func()

// compact rewrites the full event sequence into a fresh snapshot and
// truncates the wal. Ordering is what makes a crash at any point safe:
// the snapshot becomes durable (tmp + fsync + rename + dir fsync) before
// the wal shrinks, so the union of snapshot and wal always covers every
// appended event; overlap is resolved by record index at recovery.
func (l *Log) compact() error {
	tmp := filepath.Join(l.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	for i, ev := range l.events {
		rec, err := encodeRecord(w, uint64(i), ev, l.binary)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(rec); err != nil {
			f.Close()
			return fmt.Errorf("durable: snapshot write: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	syncDir(l.dir)
	if testCrashCompact != nil {
		// Crash-injection point: the snapshot is renamed but the wal is not
		// yet truncated and tree.ckpt not yet rewritten — the stale-
		// checkpoint window the recovery verification exists for.
		testCrashCompact()
	}
	if err := l.wal.Truncate(0); err != nil {
		return fmt.Errorf("durable: wal truncate: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.wal.Sync(); err != nil {
			return fmt.Errorf("durable: wal sync: %w", err)
		}
	}
	l.walCount = 0
	// Checkpoint the Merkle forest beside the snapshot so the next Open
	// skips rehashing the compacted prefix.
	return writeTreeCkpt(l.dir, l.tree)
}

// Close syncs and closes the wal. Call after the node has shut down (no
// Appends can arrive once the event loop has exited).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.wal.Sync(); err != nil {
		l.wal.Close()
		return fmt.Errorf("durable: close sync: %w", err)
	}
	return l.wal.Close()
}

// checkMeta verifies (or initializes) the directory's identity file.
func checkMeta(dir string, meta Meta) error {
	path := filepath.Join(dir, metaName)
	meta = meta.canon()
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var have Meta
		if err := json.Unmarshal(data, &have); err != nil {
			return &CorruptionError{File: metaName, Reason: err.Error()}
		}
		if have.canon() != meta {
			return fmt.Errorf("%w: directory holds r%d/%d/%s (shard %d/%d), node is r%d/%d/%s (shard %d/%d)",
				ErrMetaMismatch, have.Node, have.N, have.Store, have.Shard, have.Shards,
				meta.Node, meta.N, meta.Store, meta.Shard, meta.Shards)
		}
		return nil
	case os.IsNotExist(err):
		data, err := json.Marshal(meta)
		if err != nil {
			return fmt.Errorf("durable: %w", err)
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("durable: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("durable: %w", err)
		}
		syncDir(dir)
		return nil
	default:
		return fmt.Errorf("durable: %w", err)
	}
}

// journalBinaryTag is the first body byte of a record holding a
// binary-encoded event. The legacy format put event JSON in the body, and
// JSON objects always open with '{' (0x7b) — so one leading byte versions
// the journal per record, with no separate header old builds would choke
// on. Recovery dispatches on it: 0x01 → cluster.DecodeEventBinary, '{' (or
// anything else) → json.Unmarshal, which rejects non-JSON damage anyway.
const journalBinaryTag = 0x01

// encodeRecord frames one event: length | crc32c | payload, where the
// payload is (uvarint index, length-prefixed body) and the body is either
// tagged binary (the transport's event codec, compact) or raw event JSON
// (the legacy format, debuggable with standard tools). The returned slice
// aliases a pooled writer; the caller must finish with it before the next
// encodeRecord call on any goroutine, which Append/compact satisfy by
// writing it out immediately.
func encodeRecord(w *wire.Writer, index uint64, ev cluster.Event, binary bool) ([]byte, error) {
	w.Reset()
	// Reserve the 8-byte header; the payload is framed in place behind it.
	w.Raw([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	w.Uvarint(index)
	if binary {
		body := wire.GetWriter()
		body.Raw([]byte{journalBinaryTag})
		if err := cluster.AppendEventBinary(body, ev); err != nil {
			wire.PutWriter(body)
			return nil, fmt.Errorf("durable: encode event: %w", err)
		}
		w.Uvarint(uint64(len(body.Bytes())))
		w.Raw(body.Bytes())
		wire.PutWriter(body)
	} else {
		data, err := json.Marshal(ev)
		if err != nil {
			return nil, fmt.Errorf("durable: encode event: %w", err)
		}
		w.Uvarint(uint64(len(data)))
		w.Raw(data)
	}
	rec := w.Bytes()
	payload := rec[8:]
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("durable: record of %d bytes exceeds limit %d", len(payload), maxRecord)
	}
	be32(rec[0:4], uint32(len(payload)))
	be32(rec[4:8], crc32.Checksum(payload, castagnoli))
	return rec, nil
}

func be32(b []byte, x uint32) {
	b[0], b[1], b[2], b[3] = byte(x>>24), byte(x>>16), byte(x>>8), byte(x)
}

func rd32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// readRecord reads one framed record from r. It returns io.EOF at a clean
// record boundary and errTorn for every way a tail can be damaged.
var errTorn = errors.New("durable: torn record")

func readRecord(r io.Reader) (index uint64, ev cluster.Event, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, ev, io.EOF
		}
		return 0, ev, errTorn // short header
	}
	size := rd32(hdr[0:4])
	if size > maxRecord {
		return 0, ev, errTorn // implausible length (corrupted prefix)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, ev, errTorn // short payload
	}
	if crc32.Checksum(payload, castagnoli) != rd32(hdr[4:8]) {
		return 0, ev, errTorn // bit rot or a torn overwrite
	}
	rd := wire.NewReader(payload)
	index = rd.Uvarint()
	data := rd.Bytes()
	if rd.Err() != nil || rd.Remaining() != 0 {
		return 0, ev, errTorn
	}
	if len(data) > 0 && data[0] == journalBinaryTag {
		er := wire.NewReader(data[1:])
		ev, err = cluster.DecodeEventBinary(er)
		if err != nil || er.Remaining() != 0 {
			return 0, cluster.Event{}, errTorn
		}
	} else if err := json.Unmarshal(data, &ev); err != nil {
		return 0, ev, errTorn
	}
	return index, ev, nil
}

// readSnapshot loads snap.log, whose records must be the contiguous event
// prefix 0..k-1. Snapshots are written atomically, so any damage here is
// real corruption, not a torn tail — it fails loudly rather than truncating
// away events the wal can no longer supply.
func readSnapshot(path string) ([]cluster.Event, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()
	var events []cluster.Event
	var off int64
	for {
		index, ev, err := readRecord(f)
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, &CorruptionError{File: snapName, Offset: off, Reason: "unreadable record in atomically-written snapshot"}
		}
		if index != uint64(len(events)) {
			return nil, &CorruptionError{File: snapName, Offset: off, Reason: fmt.Sprintf("record index %d, want %d", index, len(events))}
		}
		events = append(events, ev)
		off = currentOffset(f, off)
	}
}

// recoverWal scans the wal tail after the snapshot prefix. Records whose
// index precedes len(events) are overlap from a crash between snapshot
// rename and wal truncation: skipped after verifying they are not from the
// future. The first torn record truncates the file at the last good
// boundary and ends recovery — a torn tail yields a prefix, never an
// invention. A clean record whose index jumps past the expected next event
// is corruption (an append can tear, it cannot skip), reported as such.
func recoverWal(path string, events []cluster.Event) ([]cluster.Event, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if os.IsNotExist(err) {
		return events, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()
	var good int64 // offset of the last fully-valid record boundary
	for {
		index, ev, err := readRecord(f)
		if err == io.EOF {
			return events, nil
		}
		if errors.Is(err, errTorn) {
			if err := f.Truncate(good); err != nil {
				return nil, fmt.Errorf("durable: truncate torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				return nil, fmt.Errorf("durable: sync truncated wal: %w", err)
			}
			return events, nil
		}
		switch {
		case index < uint64(len(events)):
			// Overlap with the snapshot; the snapshot copy is authoritative.
		case index == uint64(len(events)):
			events = append(events, ev)
		default:
			return nil, &CorruptionError{File: walName, Offset: good,
				Reason: fmt.Sprintf("record index %d skips past %d (gap cannot come from a torn append)", index, len(events))}
		}
		good = currentOffset(f, good)
	}
}

// currentOffset returns f's read offset, falling back to prev on error (a
// seek on a regular file we just read from cannot realistically fail).
func currentOffset(f *os.File, prev int64) int64 {
	off, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return prev
	}
	return off
}

// syncDir fsyncs a directory so renames and creations within it are
// durable. Errors are ignored: some filesystems refuse directory fsync, and
// the worst case is the pre-rename state — which recovery handles.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// removeGlob deletes files matching the pattern, ignoring errors.
func removeGlob(pattern string) {
	matches, _ := filepath.Glob(pattern)
	for _, m := range matches {
		os.Remove(m)
	}
}
