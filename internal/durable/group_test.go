package durable

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowFile counts Syncs and stalls each one, so concurrent Commits pile
// into rounds the way they would behind a real fsync.
type slowFile struct {
	syncs atomic.Int64
	delay time.Duration
	fail  atomic.Bool
}

func (f *slowFile) Sync() error {
	f.syncs.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.fail.Load() {
		return errors.New("injected sync failure")
	}
	return nil
}

// TestGroupCommitCoalesces drives many goroutines through one committer:
// every Commit must succeed, and the fsync count must come in well under
// one per Commit — the whole point of the group. The per-file guarantee
// (Commit returns only after a Sync of that file started after entry) is
// what the sharded node's acked-⇒-on-disk rests on, so it is checked per
// file, not just in aggregate.
func TestGroupCommitCoalesces(t *testing.T) {
	g := NewGroupCommitter()
	const files = 4
	const workers = 8
	const commits = 50
	fs := make([]*slowFile, files)
	for i := range fs {
		fs[i] = &slowFile{delay: time.Millisecond}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < commits; i++ {
				if err := g.Commit(fs[(w+i)%files]); err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var total int64
	for i, f := range fs {
		n := f.syncs.Load()
		if n == 0 {
			t.Fatalf("file %d never synced", i)
		}
		total += n
	}
	if total >= workers*commits {
		t.Fatalf("%d syncs for %d commits — no coalescing", total, workers*commits)
	}
	t.Logf("%d commits coalesced into %d syncs", workers*commits, total)
}

// TestGroupCommitSoloFlushesImmediately: an idle committer must add no
// batching latency — a lone Commit is its own leader and returns after one
// direct Sync.
func TestGroupCommitSoloFlushesImmediately(t *testing.T) {
	g := NewGroupCommitter()
	f := &slowFile{}
	if err := g.Commit(f); err != nil {
		t.Fatal(err)
	}
	if n := f.syncs.Load(); n != 1 {
		t.Fatalf("solo commit synced %d times, want 1", n)
	}
}

// TestGroupCommitErrorPropagates: a failing Sync must error every Commit of
// its round (any of their appends may not be durable), and a later round
// against a healed file must succeed — the committer itself carries no
// sticky state.
func TestGroupCommitErrorPropagates(t *testing.T) {
	g := NewGroupCommitter()
	f := &slowFile{delay: 2 * time.Millisecond}
	f.fail.Store(true)
	const workers = 6
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- g.Commit(f)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("a commit in a failing round returned nil")
		}
	}
	f.fail.Store(false)
	if err := g.Commit(f); err != nil {
		t.Fatalf("commit after heal: %v", err)
	}
}

// TestGroupCommitShardedStorageShares: opening several shards through one
// durable.Storage must route their appends through a shared committer, and
// a round must sync only the files its joiners dirtied.
func TestGroupCommitShardedStorageShares(t *testing.T) {
	g := NewGroupCommitter()
	s := &Storage{Dir: t.TempDir(), Opts: Options{Group: g}}
	const shards = 4
	closers := make([]func() error, shards)
	appendFns := make([]func() error, shards)
	for sh := 0; sh < shards; sh++ {
		app, hist, tree, closeFn, err := s.Open(1, 3, "causal", sh, shards)
		if err != nil {
			t.Fatal(err)
		}
		if hist != nil || tree == nil {
			t.Fatalf("shard %d: fresh open returned history %v, tree %v", sh, hist, tree)
		}
		closers[sh] = closeFn
		evs := sampleEvents(8)
		i := 0
		appendFns[sh] = func() error {
			ev := evs[i%len(evs)]
			i++
			return app(ev)
		}
	}
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := appendFns[sh](); err != nil {
					t.Errorf("shard %d append: %v", sh, err)
					return
				}
			}
		}(sh)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for sh, c := range closers {
		if err := c(); err != nil {
			t.Fatalf("shard %d close: %v", sh, err)
		}
	}
	// Every shard's journal landed in its own directory.
	for sh := 0; sh < shards; sh++ {
		app, hist, _, closeFn, err := s.Open(1, 3, "causal", sh, shards)
		if err != nil {
			t.Fatalf("shard %d reopen: %v", sh, err)
		}
		_ = app
		if hist == nil || len(hist.Events) != 8 {
			got := 0
			if hist != nil {
				got = len(hist.Events)
			}
			t.Fatalf("shard %d recovered %d events, want 8", sh, got)
		}
		if err := closeFn(); err != nil {
			t.Fatal(err)
		}
	}
}
