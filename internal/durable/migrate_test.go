package durable

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// recordFormats scans a wal and reports each record's on-disk codec, keyed
// off the per-record version byte ('{' opens a JSON body, journalBinaryTag
// a binary one).
func recordFormats(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var formats []string
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(f, hdr[:]); err == io.EOF {
			return formats
		} else if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, rd32(hdr[0:4]))
		if _, err := io.ReadFull(f, payload); err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(payload)
		r.Uvarint() // index
		data := r.Bytes()
		if r.Err() != nil || len(data) == 0 {
			t.Fatalf("unparseable record %d", len(formats))
		}
		switch data[0] {
		case journalBinaryTag:
			formats = append(formats, "binary")
		case '{':
			formats = append(formats, "json")
		default:
			t.Fatalf("record %d: unknown format byte %#x", len(formats), data[0])
		}
	}
}

// TestJSONEraJournalMigration is the upgrade path: a journal written
// entirely in the legacy JSON record format (what every binary before the
// codec option produced) must recover under the current default options,
// keep appending — now in binary — and recover the mixed-format wal in
// full. No flag, no rewrite step.
func TestJSONEraJournalMigration(t *testing.T) {
	dir := t.TempDir()
	old := sampleEvents(12)
	writeLog(t, dir, old, Options{NoSync: true, Codec: "json"})

	wal := filepath.Join(dir, "wal.log")
	for i, f := range recordFormats(t, wal) {
		if f != "json" {
			t.Fatalf("JSON-era record %d written as %s", i, f)
		}
	}

	// Reopen with the defaults a new binary uses: binary codec.
	l, hist, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if hist == nil {
		t.Fatal("no history recovered from JSON-era journal")
	}
	eventsEqual(t, hist.Events, old)

	extra := sampleEvents(20)[12:]
	for _, ev := range extra {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The wal now holds both eras, each record self-describing.
	formats := recordFormats(t, wal)
	if len(formats) != 20 {
		t.Fatalf("wal holds %d records, want 20", len(formats))
	}
	for i, f := range formats {
		want := "json"
		if i >= 12 {
			want = "binary"
		}
		if f != want {
			t.Fatalf("record %d format = %s, want %s", i, f, want)
		}
	}

	all := append(append([]cluster.Event(nil), old...), extra...)
	_, hist2, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if hist2 == nil {
		t.Fatal("no history recovered from mixed-era journal")
	}
	eventsEqual(t, hist2.Events, all)
}

// TestMixedEraTornTail cuts a mixed-format wal inside its binary tail: the
// recovered prefix must be exactly the records before the cut, JSON era
// intact.
func TestMixedEraTornTail(t *testing.T) {
	dir := t.TempDir()
	old := sampleEvents(6)
	writeLog(t, dir, old, Options{NoSync: true, Codec: "json"})
	l, _, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	extra := sampleEvents(10)[6:]
	for _, ev := range extra {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	wal := filepath.Join(dir, "wal.log")
	full, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Cut a few bytes into the last record.
	if err := os.WriteFile(wal, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, hist, err := Open(dir, testMeta(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]cluster.Event(nil), old...), extra[:len(extra)-1]...)
	eventsEqual(t, hist.Events, want)
}
