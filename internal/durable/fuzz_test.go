package durable

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
)

// fuzzPrefix builds the fixed valid wal prefix every fuzz input is appended
// to: three encoded records (indices 0..2). Deterministic, so corpus seeds
// derived from it stay meaningful across runs.
func fuzzPrefix(tb testing.TB) ([]byte, []cluster.Event) {
	events := sampleEvents(3)
	var buf []byte
	for i, ev := range events {
		rec, err := encodeTestRecord(uint64(i), ev, true)
		if err != nil {
			tb.Fatal(err)
		}
		buf = append(buf, rec...)
	}
	return buf, events
}

// fuzzSeedTails returns the hand-picked tail shapes the fuzzer starts from:
// clean boundary, a valid fourth record, torn cuts through it, a bit flip,
// an index gap, an overlapping (already-seen) index, and plain garbage.
func fuzzSeedTails(tb testing.TB) [][]byte {
	events := sampleEvents(5)
	rec3, err := encodeTestRecord(3, events[3], true)
	if err != nil {
		tb.Fatal(err)
	}
	gap, err := encodeTestRecord(9, events[4], true)
	if err != nil {
		tb.Fatal(err)
	}
	overlap, err := encodeTestRecord(0, events[4], true)
	if err != nil {
		tb.Fatal(err)
	}
	flipped := append([]byte(nil), rec3...)
	flipped[len(flipped)-2] ^= 0x40
	return [][]byte{
		{},                                   // clean EOF at a record boundary
		rec3,                                 // one more intact record
		rec3[:4],                             // torn inside the header
		rec3[:len(rec3)/2],                   // torn inside the payload
		rec3[:len(rec3)-1],                   // torn one byte short
		flipped,                              // CRC mismatch
		gap,                                  // index gap: must surface CorruptionError
		overlap,                              // stale index: must be skipped, not duplicated
		[]byte("garbage tail!"),              // arbitrary junk
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, // implausible length header
	}
}

// FuzzRecoverTail appends arbitrary bytes after a valid wal prefix and
// opens the log. Recovery must never panic, never fabricate or reorder the
// valid prefix, fail only with CorruptionError, and be idempotent: a second
// Open of the recovered (physically truncated) file sees exactly the same
// events, and the log stays appendable.
func FuzzRecoverTail(f *testing.F) {
	for _, tail := range fuzzSeedTails(f) {
		f.Add(tail)
	}
	f.Fuzz(func(t *testing.T, tail []byte) {
		prefix, prefixEvents := fuzzPrefix(t)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), append(append([]byte(nil), prefix...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		l, hist, err := Open(dir, testMeta(), Options{NoSync: true})
		if err != nil {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("Open: %v (not a CorruptionError)", err)
			}
			return
		}
		if hist == nil || len(hist.Events) < len(prefixEvents) {
			t.Fatalf("valid prefix lost: recovered %d events, prefix had %d", histLen(hist), len(prefixEvents))
		}
		for i, want := range prefixEvents {
			g, _ := json.Marshal(hist.Events[i])
			w, _ := json.Marshal(want)
			if string(g) != string(w) {
				t.Fatalf("prefix event %d rewritten:\n got %s\nwant %s", i, g, w)
			}
		}
		recovered := len(hist.Events)
		if err := l.Append(sampleEvents(1)[0]); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, hist2, err := Open(dir, testMeta(), Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen after recovery must be clean: %v", err)
		}
		defer l2.Close()
		if histLen(hist2) != recovered+1 {
			t.Fatalf("recovery not idempotent: first saw %d+1 events, reopen sees %d", recovered, histLen(hist2))
		}
	})
}

func histLen(h *cluster.History) int {
	if h == nil {
		return 0
	}
	return len(h.Events)
}
