package explore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store/causal"
	"repro/internal/store/lww"
)

// TestExploreParallelMatchesSequential is the engine's core guarantee: for
// any worker count the Result counters are identical, and so is the
// counterexample error — including WHICH schedule is reported for the lww
// dependency inversion, since merge order, not goroutine scheduling, picks
// the violation.
func TestExploreParallelMatchesSequential(t *testing.T) {
	invariant := func(v *View) error {
		for r := model.ReplicaID(0); r < 3; r++ {
			if v.Read(r, "y").Contains("b") && len(v.Read(r, "x").Values) == 0 {
				return fmt.Errorf("r%d sees y=b with x empty", r)
			}
		}
		return nil
	}

	for _, tc := range []struct {
		name      string
		cfg       Config
		wantError bool
	}{
		{"causal-clean", Config{Store: causal.New(spec.MVRTypes()), Invariant: invariant}, false},
		{"lww-violation", Config{Store: lww.New(spec.MVRTypes()), Invariant: invariant}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.cfg
			base.Parallel = 1
			seqRes, seqErr := Explore(twoWriterScript(), base)
			if (seqErr != nil) != tc.wantError {
				t.Fatalf("sequential: err = %v, wantError = %v", seqErr, tc.wantError)
			}
			for _, workers := range []int{0, 2, 3, 8} {
				cfg := tc.cfg
				cfg.Parallel = workers
				res, err := Explore(twoWriterScript(), cfg)
				if fmt.Sprint(err) != fmt.Sprint(seqErr) {
					t.Errorf("parallel=%d: err = %v, sequential err = %v", workers, err, seqErr)
				}
				if seqRes != nil && res != nil && *res != *seqRes {
					t.Errorf("parallel=%d: result = %+v, sequential = %+v", workers, *res, *seqRes)
				}
				if (res == nil) != (seqRes == nil) {
					t.Errorf("parallel=%d: result nil-ness differs", workers)
				}
			}
		})
	}
}

// TestExploreParallelBudgetDeterministic checks the state budget trips at
// the same state for every worker count: the budget is charged during the
// single-threaded merge, in canonical candidate order.
func TestExploreParallelBudgetDeterministic(t *testing.T) {
	base := Config{Store: causal.New(spec.MVRTypes()), MaxStates: 40}
	base.Parallel = 1
	_, seqErr := Explore(twoWriterScript(), base)
	if seqErr == nil {
		t.Fatal("expected a state-budget error")
	}
	for _, workers := range []int{2, 4} {
		cfg := base
		cfg.Parallel = workers
		_, err := Explore(twoWriterScript(), cfg)
		if fmt.Sprint(err) != fmt.Sprint(seqErr) {
			t.Errorf("parallel=%d: budget err = %v, sequential = %v", workers, err, seqErr)
		}
	}
}

// TestShardedSetConcurrent hammers one sharded set from many goroutines
// with overlapping keys; run under -race this is the contention test for
// the striped locking.
func TestShardedSetConcurrent(t *testing.T) {
	set := NewVisitedSet(8)
	const goroutines = 16
	const keys = 500
	wins := make([][]bool, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wins[g] = make([]bool, keys)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("key-%d", i)
				if set.Add(key) {
					wins[g][i] = true
				}
				if !set.Contains(key) {
					t.Errorf("g%d: %s missing right after Add", g, key)
				}
			}
		}(g)
	}
	wg.Wait()
	if set.Len() != keys {
		t.Fatalf("Len = %d, want %d", set.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		winners := 0
		for g := 0; g < goroutines; g++ {
			if wins[g][i] {
				winners++
			}
		}
		if winners != 1 {
			t.Errorf("key %d: %d goroutines won Add, want exactly 1", i, winners)
		}
	}
}

func TestShardedSetShardCountRounding(t *testing.T) {
	for _, n := range []int{0, 1, 3, 8, 100} {
		set := NewVisitedSet(n)
		if !set.Add("x") || set.Add("x") {
			t.Fatalf("shards=%d: Add semantics broken", n)
		}
		if !set.Contains("x") || set.Contains("y") {
			t.Fatalf("shards=%d: Contains semantics broken", n)
		}
	}
}
