package explore

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store/causal"
	"repro/internal/store/gsp"
	"repro/internal/store/kbuffer"
	"repro/internal/store/lww"
	"repro/internal/store/statesync"
)

// twoWriterScript: concurrent cross-object writes plus reads — small enough
// for exhaustive exploration, rich enough to exercise buffering.
func twoWriterScript() Script {
	return Script{
		Replicas: 3,
		Ops: []Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 0, Object: "y", Op: model.Write("b")},
			{Replica: 1, Object: "x", Op: model.Write("c")},
			{Replica: 2, Object: "x", Op: model.Read()},
			{Replica: 2, Object: "y", Op: model.Read()},
		},
	}
}

func TestExploreCausalStoreAllSchedules(t *testing.T) {
	res, err := Explore(twoWriterScript(), Config{Store: causal.New(spec.MVRTypes())})
	if err != nil {
		t.Fatal(err)
	}
	if res.States < 50 || res.FinalStates == 0 {
		t.Fatalf("suspiciously small exploration: %+v", res)
	}
	t.Logf("explored %d states, %d final, %d transitions", res.States, res.FinalStates, res.Transitions)
}

// TestExploreCausalDependencyInvariant checks, in EVERY reachable state,
// the causal-consistency signature of the two-writer script: y=b is never
// visible anywhere unless x already reflects its dependency x=a — either a
// itself or a write that causally dominates it (c, whose own dependency is
// a). An empty x alongside y=b is the dependency inversion causal delivery
// forbids.
func TestExploreCausalDependencyInvariant(t *testing.T) {
	script := twoWriterScript()
	invariant := func(v *View) error {
		for r := model.ReplicaID(0); r < 3; r++ {
			y := v.Read(r, "y")
			if y.Contains("b") {
				x := v.Read(r, "x")
				if len(x.Values) == 0 {
					return fmt.Errorf("r%d sees y=b with x empty (dependency inversion)", r)
				}
			}
		}
		return nil
	}
	if _, err := Explore(script, Config{Store: causal.New(spec.MVRTypes()), Invariant: invariant}); err != nil {
		t.Fatal(err)
	}
}

// TestExploreLWWViolatesDependencyInvariant shows the same invariant FAILS
// for the eagerly-applying LWW store in some schedule — the explorer finds
// the counterexample deterministically.
func TestExploreLWWViolatesDependencyInvariant(t *testing.T) {
	script := twoWriterScript()
	invariant := func(v *View) error {
		for r := model.ReplicaID(0); r < 3; r++ {
			y := v.Read(r, "y")
			if y.Contains("b") {
				x := v.Read(r, "x")
				if len(x.Values) == 0 {
					return fmt.Errorf("r%d sees y=b with x empty", r)
				}
			}
		}
		return nil
	}
	_, err := Explore(script, Config{Store: lww.New(spec.MVRTypes()), Invariant: invariant})
	if err == nil {
		t.Fatal("explorer failed to find the dependency-inversion schedule for lww")
	}
	if !strings.Contains(err.Error(), "invariant violated") {
		t.Fatalf("unexpected error: %v", err)
	}
	t.Logf("counterexample: %v", err)
}

func TestExploreStateSyncConverges(t *testing.T) {
	res, err := Explore(twoWriterScript(), Config{Store: statesync.New(spec.MVRTypes())})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalStates == 0 {
		t.Fatalf("no final states: %+v", res)
	}
}

func TestExploreGSPAgreedOrderEverywhere(t *testing.T) {
	// In every reachable state, GSP confirmed logs are prefix-compatible
	// across replicas.
	script := Script{
		Replicas: 3,
		Ops: []Op{
			{Replica: 1, Object: "x", Op: model.Write("a")},
			{Replica: 2, Object: "x", Op: model.Write("b")},
			{Replica: 1, Object: "y", Op: model.Write("c")},
		},
	}
	invariant := func(v *View) error {
		logs := make([][]model.Dot, 3)
		for r := model.ReplicaID(0); r < 3; r++ {
			rep, ok := v.Replica(r).(*gsp.Replica)
			if !ok {
				return fmt.Errorf("unexpected replica type")
			}
			logs[r] = rep.Log()
		}
		for i := 1; i < 3; i++ {
			shorter, longer := logs[0], logs[i]
			if len(shorter) > len(longer) {
				shorter, longer = longer, shorter
			}
			for p := range shorter {
				if shorter[p] != longer[p] {
					return fmt.Errorf("confirmed logs disagree at %d: %v vs %v", p, logs[0], logs[i])
				}
			}
		}
		return nil
	}
	res, err := Explore(script, Config{
		Store:                   gsp.New(spec.MVRTypes()),
		Invariant:               invariant,
		AllowPropertyViolations: true, // the sequencer violates Def 15 by design
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d states", res.States)
}

func TestExploreKBufferWithReadRounds(t *testing.T) {
	script := Script{
		Replicas: 2,
		Ops: []Op{
			{Replica: 0, Object: "x", Op: model.Write("a")},
			{Replica: 1, Object: "x", Op: model.Write("b")},
		},
	}
	const k = 2
	if _, err := Explore(script, Config{
		Store:                 kbuffer.New(spec.MVRTypes(), k),
		ConvergenceReadRounds: k,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestExploreStateBudget(t *testing.T) {
	_, err := Explore(twoWriterScript(), Config{Store: causal.New(spec.MVRTypes()), MaxStates: 5})
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
}

func TestExploreRejectsBadScript(t *testing.T) {
	script := Script{Replicas: 1, Ops: []Op{{Replica: 5, Object: "x", Op: model.Write("a")}}}
	if _, err := Explore(script, Config{Store: causal.New(spec.MVRTypes())}); err == nil {
		t.Fatal("expected out-of-range replica rejection")
	}
}

func TestExploreDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Explore(twoWriterScript(), Config{Store: causal.New(spec.MVRTypes())})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.States != b.States || a.FinalStates != b.FinalStates || a.Transitions != b.Transitions {
		t.Fatalf("exploration not deterministic: %+v vs %+v", a, b)
	}
}
