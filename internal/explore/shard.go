package explore

import (
	"hash/maphash"
	"sync"
)

// VisitedSet is a mutex-striped string set: the visited-state set of the
// parallel explorer, exported for other level-synchronized frontier
// searches (internal/chaossearch dedups schedule seeds through it).
// Signatures hash to one of nShards shards, each guarded by its own mutex,
// so concurrent membership probes from worker goroutines contend only when
// they collide on a shard rather than on one global lock.
//
// Determinism note: the explorer's worker phase only READS the set (to skip
// re-checking states merged in earlier frontier levels); all writes happen
// in the single-threaded merge phase. The set itself is nevertheless fully
// safe for concurrent mixed Add/Contains, which the race tests exercise
// directly.
type VisitedSet struct {
	seed   maphash.Seed
	shards []setShard
}

type setShard struct {
	mu sync.Mutex
	m  map[string]struct{}
}

// NewVisitedSet creates a set with the given shard count (rounded up to a
// power of two, minimum 1).
func NewVisitedSet(nShards int) *VisitedSet {
	n := 1
	for n < nShards {
		n <<= 1
	}
	s := &VisitedSet{seed: maphash.MakeSeed(), shards: make([]setShard, n)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]struct{})
	}
	return s
}

func (s *VisitedSet) shard(key string) *setShard {
	return &s.shards[maphash.String(s.seed, key)&uint64(len(s.shards)-1)]
}

// Add inserts key and reports whether it was absent.
func (s *VisitedSet) Add(key string) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		return false
	}
	sh.m[key] = struct{}{}
	return true
}

// Contains reports membership.
func (s *VisitedSet) Contains(key string) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.m[key]
	return ok
}

// Len returns the total number of keys across shards.
func (s *VisitedSet) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += len(s.shards[i].m)
		s.shards[i].mu.Unlock()
	}
	return n
}
