// Package explore is a bounded model checker for store implementations: it
// enumerates EVERY schedule of a small scripted workload — all interleavings
// of client operations (in per-replica program order) and message deliveries
// (any order, any interleaving with operations) — and checks invariants in
// every reachable state, rather than sampling schedules randomly as
// internal/sim does.
//
// Replica state machines offer no undo, so the explorer replays the action
// prefix from scratch for every expansion and deduplicates reachable states
// by a canonical signature (replica digests plus pending queue contents).
// The state graph of a script with a handful of operations has only
// thousands of states, which makes exhaustive checking practical exactly
// where it is most valuable: the boundary cases adversarial schedules
// rarely hit by chance.
//
// Replays are embarrassingly parallel, and the engine exploits that with a
// level-synchronized frontier expansion: each BFS level's candidate
// prefixes are replayed and checked by a pool of Config.Parallel workers
// (the expensive phase), consulting a mutex-striped visited-set to skip
// states merged in earlier levels; a single-threaded merge then
// deduplicates, counts, and schedules children in canonical candidate
// order. Because every Result field and every error is decided in the merge
// phase, output is byte-identical for every worker count — parallel
// exploration is observationally the same as sequential, only faster.
//
// Checked invariants:
//
//   - per-state: the §4 properties claimed by the store hold (via
//     store.PropertyChecker), and a user-supplied predicate on replica
//     reads, if any;
//   - per-final-state (all operations performed, all messages delivered):
//     convergence — every replica returns the same response for every
//     object (Lemma 3 at quiescence).
package explore

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/store"
)

// ErrBudgetExceeded marks an exploration cut short by Config.MaxStates —
// a resource limit, not a property violation; callers distinguish it with
// errors.Is.
var ErrBudgetExceeded = errors.New("state budget exceeded")

// Op is one scripted client operation.
type Op struct {
	Replica model.ReplicaID
	Object  model.ObjectID
	Op      model.Operation
}

// Script is a workload: operations listed per replica in program order.
// After every mutator the replica broadcasts its pending message
// (deterministically), so the schedule choices are exactly "which replica
// performs its next operation" and "which replica consumes which queued
// message next".
type Script struct {
	Replicas int
	Ops      []Op
}

// Config bounds the exploration.
type Config struct {
	Store store.Store
	// MaxStates aborts exploration beyond this many distinct states
	// (default 200000).
	MaxStates int
	// Invariant, if set, is evaluated in every reachable state. Its reads
	// hit the live replicas; the explorer discards the state object after
	// expansion, so visible-read stores are safe to inspect.
	Invariant func(v *View) error
	// ExpectConvergence asserts that every final state is convergent
	// (default true semantics: set SkipConvergence to disable).
	SkipConvergence bool
	// ConvergenceReadRounds performs extra read rounds before asserting
	// convergence in final states (the K-buffer store exposes withheld
	// messages only as reads elapse).
	ConvergenceReadRounds int
	// AllowPropertyViolations disables the §4 property assertions, for
	// stores that violate them by design (GSP's sequencer, K-buffer reads).
	AllowPropertyViolations bool
	// Parallel is the replay worker count: 1 explores sequentially, 0
	// defaults to GOMAXPROCS. Results and errors are byte-identical for
	// every value; the store must tolerate concurrent NewReplica calls
	// (every in-repo store factory is immutable, so all qualify).
	Parallel int
}

// Result summarizes an exploration.
type Result struct {
	States      int
	FinalStates int
	Transitions int
}

// View exposes a reachable state to invariant predicates.
type View struct {
	replicas []store.Replica
	objects  []model.ObjectID
}

// Read returns replica r's current response to a read of obj.
func (v *View) Read(r model.ReplicaID, obj model.ObjectID) model.Response {
	return v.replicas[r].Do(obj, model.Read())
}

// Replica exposes the underlying replica (do not mutate).
func (v *View) Replica(r model.ReplicaID) store.Replica { return v.replicas[r] }

// action encodes one schedule step: op index o executed, or delivery of
// queue position q at replica r.
type action struct {
	kind    byte // 'o' or 'd'
	replica model.ReplicaID
	index   int // op index for 'o'; queue position for 'd' (always 0 .. len-1)
}

// Explore exhaustively enumerates the schedules of script against cfg.Store.
//
// The reachable state set, the Result counters, and any violation error are
// identical for every Config.Parallel value: workers only replay and
// pre-check candidates; the single-threaded merge decides everything in
// canonical candidate order (parent merge order, then action order).
func Explore(script Script, cfg Config) (*Result, error) {
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 200000
	}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	objs := scriptObjects(script)
	res := &Result{}
	seen := NewVisitedSet(64)

	frontier := []candidate{{}}
	for len(frontier) > 0 {
		evals := evaluateFrontier(frontier, script, cfg, objs, seen, workers)
		var next []candidate
		for i := range frontier {
			ev := &evals[i]
			if ev.replayErr != nil {
				return res, ev.replayErr
			}
			if !seen.Add(ev.sig) {
				// Duplicate: either merged in an earlier level or claimed by
				// an earlier candidate of this level.
				continue
			}
			res.States++
			if res.States > cfg.MaxStates {
				return res, fmt.Errorf("explore: %w (%d states)", ErrBudgetExceeded, cfg.MaxStates)
			}
			if ev.checkErr != nil {
				return res, ev.checkErr
			}
			if len(ev.acts) == 0 {
				res.FinalStates++
				if ev.convErr != nil {
					return res, ev.convErr
				}
				continue
			}
			prefix := frontier[i].prefix
			for _, a := range ev.acts {
				res.Transitions++
				next = append(next, candidate{prefix: append(prefix[:len(prefix):len(prefix)], a)})
			}
		}
		frontier = next
	}
	return res, nil
}

// candidate is one unexplored action prefix of the current frontier level.
type candidate struct {
	prefix []action
}

// evaluation is the worker-phase outcome for one candidate. Every error is
// already wrapped with the candidate's rendered prefix, so the merge phase
// can return it verbatim.
type evaluation struct {
	sig       string
	acts      []action
	replayErr error
	checkErr  error // §4 property or invariant violation
	convErr   error // final-state convergence failure
}

// evaluateFrontier replays and pre-checks every candidate of one frontier
// level with a pool of workers, writing results into a slice indexed like
// the frontier so the merge phase is order-deterministic.
func evaluateFrontier(frontier []candidate, script Script, cfg Config, objs []model.ObjectID, seen *VisitedSet, workers int) []evaluation {
	evals := make([]evaluation, len(frontier))
	if workers > len(frontier) {
		workers = len(frontier)
	}
	if workers <= 1 {
		for i := range frontier {
			evals[i] = evaluateOne(frontier[i], script, cfg, objs, seen)
		}
		return evals
	}
	var nextIdx atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= len(frontier) {
					return
				}
				evals[i] = evaluateOne(frontier[i], script, cfg, objs, seen)
			}
		}()
	}
	wg.Wait()
	return evals
}

// evaluateOne replays one candidate prefix from scratch and runs the
// per-state checks, unless the visited-set already holds the state (merged
// in an earlier level), in which case the merge phase will discard the
// candidate and the checks are skipped.
func evaluateOne(c candidate, script Script, cfg Config, objs []model.ObjectID, seen *VisitedSet) evaluation {
	st, err := replay(cfg.Store, script, c.prefix)
	if err != nil {
		return evaluation{replayErr: err}
	}
	ev := evaluation{sig: st.signature()}
	// Schedule choices are fixed BEFORE any checks run: invariant and
	// convergence checks issue reads, which mutate visible-read stores
	// (K-buffer); this state object is discarded after evaluation, so
	// those mutations are harmless once the action list is taken.
	ev.acts = st.enabled(script)
	if seen.Contains(ev.sig) {
		return ev
	}

	if !cfg.AllowPropertyViolations {
		for _, ch := range st.checkers {
			if err := ch.Err(); err != nil {
				ev.checkErr = fmt.Errorf("explore: after %s: %w", renderPrefix(c.prefix), err)
				return ev
			}
		}
	}
	if cfg.Invariant != nil {
		if err := cfg.Invariant(&View{replicas: st.replicas, objects: objs}); err != nil {
			ev.checkErr = fmt.Errorf("explore: invariant violated after %s: %w", renderPrefix(c.prefix), err)
			return ev
		}
	}
	if len(ev.acts) == 0 && !cfg.SkipConvergence {
		for round := 0; round < cfg.ConvergenceReadRounds; round++ {
			for r := 0; r < st.n; r++ {
				for _, obj := range objs {
					st.replicas[r].Do(obj, model.Read())
				}
			}
		}
		if err := st.checkConverged(objs); err != nil {
			ev.convErr = fmt.Errorf("explore: final state after %s: %w", renderPrefix(c.prefix), err)
		}
	}
	return ev
}

// liveState is a materialized cluster state.
type liveState struct {
	st       store.Store
	n        int
	replicas []store.Replica
	checkers []*store.PropertyChecker
	queues   [][][]byte // per destination, in arrival order
	nextOp   []int      // per replica: next op position in its program
	programs [][]int    // per replica: indices into script.Ops
}

// replay executes an action prefix from scratch.
func replay(st store.Store, script Script, prefix []action) (*liveState, error) {
	s := &liveState{st: st, n: script.Replicas}
	s.programs = make([][]int, script.Replicas)
	for i, op := range script.Ops {
		r := int(op.Replica)
		if r < 0 || r >= script.Replicas {
			return nil, fmt.Errorf("explore: op %d at out-of-range replica %d", i, r)
		}
		s.programs[r] = append(s.programs[r], i)
	}
	s.nextOp = make([]int, script.Replicas)
	s.queues = make([][][]byte, script.Replicas)
	for i := 0; i < script.Replicas; i++ {
		r := st.NewReplica(model.ReplicaID(i), script.Replicas)
		s.replicas = append(s.replicas, r)
		s.checkers = append(s.checkers, store.NewPropertyChecker(r))
	}
	for _, a := range prefix {
		if err := s.apply(script, a); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *liveState) apply(script Script, a action) error {
	switch a.kind {
	case 'o':
		r := int(a.replica)
		opIdx := s.programs[r][s.nextOp[r]]
		op := script.Ops[opIdx]
		s.nextOp[r]++
		rep := s.replicas[r]
		s.checkers[r].CheckDo(op.Object, op.Op, func() model.Response {
			return rep.Do(op.Object, op.Op)
		})
		// Deterministic broadcast after the operation, if pending. Sends go
		// to every other replica's queue; the GSP sequencer may also have
		// commits pending after deliveries, which broadcast on its next
		// turn.
		s.broadcast(model.ReplicaID(r))
	case 'd':
		to := int(a.replica)
		if a.index >= len(s.queues[to]) {
			return fmt.Errorf("explore: delivery index %d out of range", a.index)
		}
		payload := s.queues[to][a.index]
		s.queues[to] = append(s.queues[to][:a.index:a.index], s.queues[to][a.index+1:]...)
		rep := s.replicas[to]
		s.checkers[to].CheckReceive(payload, func() { rep.Receive(payload) })
		// Receives may create pending messages in non-op-driven stores
		// (GSP); relay them so exploration terminates in drained states.
		s.broadcast(model.ReplicaID(to))
	default:
		return fmt.Errorf("explore: unknown action kind %q", a.kind)
	}
	return nil
}

func (s *liveState) broadcast(from model.ReplicaID) {
	for {
		payload := s.replicas[from].PendingMessage()
		if payload == nil {
			return
		}
		s.replicas[from].OnSend()
		for to := 0; to < s.n; to++ {
			if model.ReplicaID(to) != from {
				p := make([]byte, len(payload))
				copy(p, payload)
				s.queues[to] = append(s.queues[to], p)
			}
		}
	}
}

// enabled lists the schedule choices in this state: each replica's next
// program operation, and each distinct queued message per destination.
func (s *liveState) enabled(script Script) []action {
	var out []action
	for r := 0; r < s.n; r++ {
		if s.nextOp[r] < len(s.programs[r]) {
			out = append(out, action{kind: 'o', replica: model.ReplicaID(r)})
		}
		// Delivering any queue position is allowed (the network reorders);
		// identical payloads at different positions lead to identical
		// states, so deduplicate by content.
		seen := make(map[string]bool, len(s.queues[r]))
		for q := range s.queues[r] {
			key := string(s.queues[r][q])
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, action{kind: 'd', replica: model.ReplicaID(r), index: q})
		}
	}
	return out
}

// signature canonically renders the state for deduplication.
func (s *liveState) signature() string {
	var b strings.Builder
	for r := 0; r < s.n; r++ {
		fmt.Fprintf(&b, "r%d@%d\n%s\n", r, s.nextOp[r], s.replicas[r].StateDigest())
		queued := make([]string, len(s.queues[r]))
		for i, p := range s.queues[r] {
			queued[i] = string(p)
		}
		// Queue order is not observable to the scheduler's future choices
		// beyond content (any position may be delivered), so sort for a
		// canonical form.
		sort.Strings(queued)
		for _, q := range queued {
			fmt.Fprintf(&b, "q:%q\n", q)
		}
	}
	return b.String()
}

// checkConverged verifies all replicas answer reads identically.
func (s *liveState) checkConverged(objs []model.ObjectID) error {
	for _, obj := range objs {
		base := s.replicas[0].Do(obj, model.Read())
		for r := 1; r < s.n; r++ {
			got := s.replicas[r].Do(obj, model.Read())
			if !got.Equal(base) {
				return fmt.Errorf("diverged on %s: r0=%s r%d=%s", obj, base, r, got)
			}
		}
	}
	return nil
}

func scriptObjects(script Script) []model.ObjectID {
	seen := make(map[model.ObjectID]bool)
	var out []model.ObjectID
	for _, op := range script.Ops {
		if !seen[op.Object] {
			seen[op.Object] = true
			out = append(out, op.Object)
		}
	}
	return out
}

func renderPrefix(prefix []action) string {
	parts := make([]string, len(prefix))
	for i, a := range prefix {
		if a.kind == 'o' {
			parts[i] = fmt.Sprintf("op@r%d", a.replica)
		} else {
			parts[i] = fmt.Sprintf("dlv@r%d[%d]", a.replica, a.index)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}
