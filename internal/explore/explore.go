// Package explore is a bounded model checker for store implementations: it
// enumerates EVERY schedule of a small scripted workload — all interleavings
// of client operations (in per-replica program order) and message deliveries
// (any order, any interleaving with operations) — and checks invariants in
// every reachable state, rather than sampling schedules randomly as
// internal/sim does.
//
// Replica state machines offer no undo, so the explorer replays the action
// prefix from scratch for every expansion and deduplicates reachable states
// by a canonical signature (replica digests plus pending queue contents).
// The state graph of a script with a handful of operations has only
// thousands of states, which makes exhaustive checking practical exactly
// where it is most valuable: the boundary cases adversarial schedules
// rarely hit by chance.
//
// Checked invariants:
//
//   - per-state: the §4 properties claimed by the store hold (via
//     store.PropertyChecker), and a user-supplied predicate on replica
//     reads, if any;
//   - per-final-state (all operations performed, all messages delivered):
//     convergence — every replica returns the same response for every
//     object (Lemma 3 at quiescence).
package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/store"
)

// Op is one scripted client operation.
type Op struct {
	Replica model.ReplicaID
	Object  model.ObjectID
	Op      model.Operation
}

// Script is a workload: operations listed per replica in program order.
// After every mutator the replica broadcasts its pending message
// (deterministically), so the schedule choices are exactly "which replica
// performs its next operation" and "which replica consumes which queued
// message next".
type Script struct {
	Replicas int
	Ops      []Op
}

// Config bounds the exploration.
type Config struct {
	Store store.Store
	// MaxStates aborts exploration beyond this many distinct states
	// (default 200000).
	MaxStates int
	// Invariant, if set, is evaluated in every reachable state. Its reads
	// hit the live replicas; the explorer discards the state object after
	// expansion, so visible-read stores are safe to inspect.
	Invariant func(v *View) error
	// ExpectConvergence asserts that every final state is convergent
	// (default true semantics: set SkipConvergence to disable).
	SkipConvergence bool
	// ConvergenceReadRounds performs extra read rounds before asserting
	// convergence in final states (the K-buffer store exposes withheld
	// messages only as reads elapse).
	ConvergenceReadRounds int
	// AllowPropertyViolations disables the §4 property assertions, for
	// stores that violate them by design (GSP's sequencer, K-buffer reads).
	AllowPropertyViolations bool
}

// Result summarizes an exploration.
type Result struct {
	States      int
	FinalStates int
	Transitions int
}

// View exposes a reachable state to invariant predicates.
type View struct {
	replicas []store.Replica
	objects  []model.ObjectID
}

// Read returns replica r's current response to a read of obj.
func (v *View) Read(r model.ReplicaID, obj model.ObjectID) model.Response {
	return v.replicas[r].Do(obj, model.Read())
}

// Replica exposes the underlying replica (do not mutate).
func (v *View) Replica(r model.ReplicaID) store.Replica { return v.replicas[r] }

// action encodes one schedule step: op index o executed, or delivery of
// queue position q at replica r.
type action struct {
	kind    byte // 'o' or 'd'
	replica model.ReplicaID
	index   int // op index for 'o'; queue position for 'd' (always 0 .. len-1)
}

// Explore exhaustively enumerates the schedules of script against cfg.Store.
func Explore(script Script, cfg Config) (*Result, error) {
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 200000
	}
	objs := scriptObjects(script)
	res := &Result{}
	seen := make(map[string]bool)

	var dfs func(prefix []action) error
	dfs = func(prefix []action) error {
		st, err := replay(cfg.Store, script, prefix)
		if err != nil {
			return err
		}
		sig := st.signature()
		if seen[sig] {
			return nil
		}
		seen[sig] = true
		res.States++
		if res.States > cfg.MaxStates {
			return fmt.Errorf("explore: state budget %d exceeded", cfg.MaxStates)
		}
		// Schedule choices are fixed BEFORE any checks run: invariant and
		// convergence checks issue reads, which mutate visible-read stores
		// (K-buffer); this state object is discarded after expansion, so
		// those mutations are harmless once the action list is taken.
		acts := st.enabled(script)

		if !cfg.AllowPropertyViolations {
			for _, ch := range st.checkers {
				if err := ch.Err(); err != nil {
					return fmt.Errorf("explore: after %s: %w", renderPrefix(prefix), err)
				}
			}
		}
		if cfg.Invariant != nil {
			if err := cfg.Invariant(&View{replicas: st.replicas, objects: objs}); err != nil {
				return fmt.Errorf("explore: invariant violated after %s: %w", renderPrefix(prefix), err)
			}
		}

		if len(acts) == 0 {
			res.FinalStates++
			if !cfg.SkipConvergence {
				for round := 0; round < cfg.ConvergenceReadRounds; round++ {
					for r := 0; r < st.n; r++ {
						for _, obj := range objs {
							st.replicas[r].Do(obj, model.Read())
						}
					}
				}
				if err := st.checkConverged(objs); err != nil {
					return fmt.Errorf("explore: final state after %s: %w", renderPrefix(prefix), err)
				}
			}
			return nil
		}
		for _, a := range acts {
			res.Transitions++
			if err := dfs(append(prefix[:len(prefix):len(prefix)], a)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(nil); err != nil {
		return res, err
	}
	return res, nil
}

// liveState is a materialized cluster state.
type liveState struct {
	st       store.Store
	n        int
	replicas []store.Replica
	checkers []*store.PropertyChecker
	queues   [][][]byte // per destination, in arrival order
	nextOp   []int      // per replica: next op position in its program
	programs [][]int    // per replica: indices into script.Ops
}

// replay executes an action prefix from scratch.
func replay(st store.Store, script Script, prefix []action) (*liveState, error) {
	s := &liveState{st: st, n: script.Replicas}
	s.programs = make([][]int, script.Replicas)
	for i, op := range script.Ops {
		r := int(op.Replica)
		if r < 0 || r >= script.Replicas {
			return nil, fmt.Errorf("explore: op %d at out-of-range replica %d", i, r)
		}
		s.programs[r] = append(s.programs[r], i)
	}
	s.nextOp = make([]int, script.Replicas)
	s.queues = make([][][]byte, script.Replicas)
	for i := 0; i < script.Replicas; i++ {
		r := st.NewReplica(model.ReplicaID(i), script.Replicas)
		s.replicas = append(s.replicas, r)
		s.checkers = append(s.checkers, store.NewPropertyChecker(r))
	}
	for _, a := range prefix {
		if err := s.apply(script, a); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *liveState) apply(script Script, a action) error {
	switch a.kind {
	case 'o':
		r := int(a.replica)
		opIdx := s.programs[r][s.nextOp[r]]
		op := script.Ops[opIdx]
		s.nextOp[r]++
		rep := s.replicas[r]
		s.checkers[r].CheckDo(op.Object, op.Op, func() model.Response {
			return rep.Do(op.Object, op.Op)
		})
		// Deterministic broadcast after the operation, if pending. Sends go
		// to every other replica's queue; the GSP sequencer may also have
		// commits pending after deliveries, which broadcast on its next
		// turn.
		s.broadcast(model.ReplicaID(r))
	case 'd':
		to := int(a.replica)
		if a.index >= len(s.queues[to]) {
			return fmt.Errorf("explore: delivery index %d out of range", a.index)
		}
		payload := s.queues[to][a.index]
		s.queues[to] = append(s.queues[to][:a.index:a.index], s.queues[to][a.index+1:]...)
		rep := s.replicas[to]
		s.checkers[to].CheckReceive(payload, func() { rep.Receive(payload) })
		// Receives may create pending messages in non-op-driven stores
		// (GSP); relay them so exploration terminates in drained states.
		s.broadcast(model.ReplicaID(to))
	default:
		return fmt.Errorf("explore: unknown action kind %q", a.kind)
	}
	return nil
}

func (s *liveState) broadcast(from model.ReplicaID) {
	for {
		payload := s.replicas[from].PendingMessage()
		if payload == nil {
			return
		}
		s.replicas[from].OnSend()
		for to := 0; to < s.n; to++ {
			if model.ReplicaID(to) != from {
				p := make([]byte, len(payload))
				copy(p, payload)
				s.queues[to] = append(s.queues[to], p)
			}
		}
	}
}

// enabled lists the schedule choices in this state: each replica's next
// program operation, and each distinct queued message per destination.
func (s *liveState) enabled(script Script) []action {
	var out []action
	for r := 0; r < s.n; r++ {
		if s.nextOp[r] < len(s.programs[r]) {
			out = append(out, action{kind: 'o', replica: model.ReplicaID(r)})
		}
		// Delivering any queue position is allowed (the network reorders);
		// identical payloads at different positions lead to identical
		// states, so deduplicate by content.
		seen := make(map[string]bool, len(s.queues[r]))
		for q := range s.queues[r] {
			key := string(s.queues[r][q])
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, action{kind: 'd', replica: model.ReplicaID(r), index: q})
		}
	}
	return out
}

// signature canonically renders the state for deduplication.
func (s *liveState) signature() string {
	var b strings.Builder
	for r := 0; r < s.n; r++ {
		fmt.Fprintf(&b, "r%d@%d\n%s\n", r, s.nextOp[r], s.replicas[r].StateDigest())
		queued := make([]string, len(s.queues[r]))
		for i, p := range s.queues[r] {
			queued[i] = string(p)
		}
		// Queue order is not observable to the scheduler's future choices
		// beyond content (any position may be delivered), so sort for a
		// canonical form.
		sort.Strings(queued)
		for _, q := range queued {
			fmt.Fprintf(&b, "q:%q\n", q)
		}
	}
	return b.String()
}

// checkConverged verifies all replicas answer reads identically.
func (s *liveState) checkConverged(objs []model.ObjectID) error {
	for _, obj := range objs {
		base := s.replicas[0].Do(obj, model.Read())
		for r := 1; r < s.n; r++ {
			got := s.replicas[r].Do(obj, model.Read())
			if !got.Equal(base) {
				return fmt.Errorf("diverged on %s: r0=%s r%d=%s", obj, base, r, got)
			}
		}
	}
	return nil
}

func scriptObjects(script Script) []model.ObjectID {
	seen := make(map[model.ObjectID]bool)
	var out []model.ObjectID
	for _, op := range script.Ops {
		if !seen[op.Object] {
			seen[op.Object] = true
			out = append(out, op.Object)
		}
	}
	return out
}

func renderPrefix(prefix []action) string {
	parts := make([]string, len(prefix))
	for i, a := range prefix {
		if a.kind == 'o' {
			parts[i] = fmt.Sprintf("op@r%d", a.replica)
		} else {
			parts[i] = fmt.Sprintf("dlv@r%d[%d]", a.replica, a.index)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}
