package sim_test

import (
	"errors"
	"fmt"

	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/store/causal"
)

// Example drives a seeded random workload with fault injection, quiesces,
// and audits the derived abstract execution against the paper's checkers.
func Example() {
	cluster := sim.NewCluster(causal.New(spec.MVRTypes()), 3, 42)
	cluster.SetFaults(sim.Faults{DupProb: 0.2, Reorder: true})
	cluster.RunRandom(sim.WorkloadConfig{Objects: []model.ObjectID{"x", "y"}, Steps: 100})
	cluster.Quiesce()

	fmt.Println("well-formed:", cluster.Execution().CheckWellFormed() == nil)
	fmt.Println("converged:", cluster.CheckConverged([]model.ObjectID{"x", "y"}) == nil)
	fmt.Println("causally consistent:",
		consistency.CheckCausal(cluster.DerivedAbstract(), spec.MVRTypes()) == nil)
	fmt.Println("§4 violations:", len(cluster.PropertyViolations()))
	// Output:
	// well-formed: true
	// converged: true
	// causally consistent: true
	// §4 violations: 0
}

// Example_lossyRun shows the ErrLossyRun sentinel: once a run genuinely
// drops messages, CheckConverged refuses to assert Lemma 3 — the stores do
// not retransmit, so eventual delivery (Definition 3) failed — instead of
// silently passing or blaming the store for the resulting divergence.
func Example_lossyRun() {
	cluster := sim.NewCluster(causal.New(spec.MVRTypes()), 3, 7)
	cluster.SetFaults(sim.Faults{DropProb: 1.0}) // every broadcast copy is lost
	cluster.Do(0, "x", model.Write("a"))
	cluster.Send(0)
	cluster.Quiesce()

	err := cluster.CheckConverged([]model.ObjectID{"x"})
	fmt.Println("copies dropped:", cluster.Drops())
	fmt.Println("lossy-run sentinel:", errors.Is(err, sim.ErrLossyRun))
	// Output:
	// copies dropped: 2
	// lossy-run sentinel: true
}
