package sim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/consistency"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store/causal"
	"repro/internal/store/kbuffer"
	"repro/internal/store/lww"
	"repro/internal/store/statesync"
)

func newCausalCluster(n int, seed int64) *Cluster {
	return NewCluster(causal.New(spec.MVRTypes()), n, seed)
}

func TestDoRecordsEvents(t *testing.T) {
	c := newCausalCluster(2, 1)
	c.Do(0, "x", model.Write("a"))
	c.Do(1, "x", model.Read())
	if got := len(c.Execution().DoEvents()); got != 2 {
		t.Fatalf("%d do events recorded", got)
	}
}

func TestSendAndDeliver(t *testing.T) {
	c := newCausalCluster(3, 1)
	c.Do(0, "x", model.Write("a"))
	if _, ok := c.Send(0); !ok {
		t.Fatal("send failed")
	}
	if _, ok := c.Send(0); ok {
		t.Fatal("second send should have nothing pending")
	}
	if c.QueueLen(1) != 1 || c.QueueLen(2) != 1 {
		t.Fatalf("queues: %d %d", c.QueueLen(1), c.QueueLen(2))
	}
	if !c.DeliverOne(1) {
		t.Fatal("delivery failed")
	}
	if got := c.Do(1, "x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("read after delivery = %s", got)
	}
	if got := c.Do(2, "x", model.Read()); len(got.Values) != 0 {
		t.Fatalf("undelivered replica read = %s", got)
	}
}

func TestPartitionBlocksDelivery(t *testing.T) {
	c := newCausalCluster(3, 1)
	c.Partition([]model.ReplicaID{0}, []model.ReplicaID{1, 2})
	c.Do(0, "x", model.Write("a"))
	c.Send(0)
	if c.DeliverOne(1) {
		t.Fatal("delivery crossed the partition")
	}
	c.Heal()
	if !c.DeliverOne(1) {
		t.Fatal("delivery failed after healing")
	}
}

func TestQuiesceReachesConvergence(t *testing.T) {
	c := newCausalCluster(4, 7)
	objs := []model.ObjectID{"x", "y"}
	c.RunRandom(WorkloadConfig{Objects: objs, Steps: 200})
	c.Quiesce()
	if !c.IsQuiescent() {
		t.Fatal("cluster not quiescent after Quiesce")
	}
	if err := c.CheckConverged(objs); err != nil {
		t.Fatal(err)
	}
	if err := c.Execution().CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

func TestQuiesceWithFaultsSuspended(t *testing.T) {
	c := newCausalCluster(3, 9)
	c.SetFaults(Faults{DropProb: 1.0}) // everything dropped during the run
	c.Do(0, "x", model.Write("a"))
	c.Send(0) // dropped copies
	c.Quiesce()
	// The dropped message is gone (no retransmission), but quiescence holds.
	if !c.IsQuiescent() {
		t.Fatal("not quiescent")
	}
}

func TestCheckConvergedLossyRunSentinel(t *testing.T) {
	c := newCausalCluster(3, 9)
	c.SetFaults(Faults{DropProb: 1.0})
	c.Do(0, "x", model.Write("a"))
	c.Send(0)
	c.Quiesce()
	if c.Drops() != 2 {
		t.Fatalf("Drops() = %d, want 2", c.Drops())
	}
	err := c.CheckConverged([]model.ObjectID{"x"})
	if !errors.Is(err, ErrLossyRun) {
		t.Fatalf("CheckConverged = %v, want ErrLossyRun", err)
	}
}

func TestCheckConvergedDropFreeRunHasNoSentinel(t *testing.T) {
	c := newCausalCluster(3, 9)
	c.SetFaults(Faults{DupProb: 0.3, Reorder: true}) // faults, but no drops
	c.RunRandom(WorkloadConfig{Objects: []model.ObjectID{"x"}, Steps: 100})
	c.Quiesce()
	if c.Drops() != 0 {
		t.Fatalf("Drops() = %d, want 0", c.Drops())
	}
	if err := c.CheckConverged([]model.ObjectID{"x"}); err != nil {
		t.Fatalf("drop-free run: %v", err)
	}
}

func TestCheckConvergedStateSyncTolerantOfLoss(t *testing.T) {
	// The state-sync store declares store.LossConverger: a post-loss
	// mutation's full-state broadcast subsumes every dropped message, so
	// CheckConverged rules on the reads instead of returning ErrLossyRun.
	c := NewCluster(statesync.New(spec.MVRTypes()), 3, 5)
	c.SetFaults(Faults{DropProb: 0.6})
	objs := []model.ObjectID{"x", "y"}
	c.RunRandom(WorkloadConfig{Objects: objs, Steps: 150, MutateRatio: 0.8})
	if c.Drops() == 0 {
		t.Fatal("workload dropped nothing; the scenario needs real loss")
	}
	c.SetFaults(Faults{})
	// A loss-free tail: one mutation per replica re-dirties everyone, and
	// the quiescence drain then propagates full states everywhere.
	for r := 0; r < c.N(); r++ {
		c.Do(model.ReplicaID(r), "x", model.Write(model.Value(fmt.Sprintf("tail%d", r))))
	}
	c.Quiesce()
	if err := c.CheckConverged(objs); err != nil {
		t.Fatalf("state-sync after lossy run: %v", err)
	}
}

func TestDuplicateFaultDeliversTwiceHarmlessly(t *testing.T) {
	c := newCausalCluster(2, 3)
	c.SetFaults(Faults{DupProb: 1.0})
	c.Do(0, "x", model.Write("a"))
	c.Send(0)
	if c.QueueLen(1) != 2 {
		t.Fatalf("queue = %d, want duplicated 2", c.QueueLen(1))
	}
	c.DeliverOne(1)
	c.DeliverOne(1)
	if got := c.Do(1, "x", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestReorderFaultStillConverges(t *testing.T) {
	c := newCausalCluster(3, 11)
	c.SetFaults(Faults{Reorder: true})
	objs := []model.ObjectID{"x"}
	c.RunRandom(WorkloadConfig{Objects: objs, Steps: 150})
	c.Quiesce()
	if err := c.CheckConverged(objs); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverFromAndDeliverMsg(t *testing.T) {
	c := newCausalCluster(3, 1)
	c.Do(0, "x", model.Write("a"))
	id0, _ := c.Send(0)
	c.Do(1, "y", model.Write("b"))
	c.Send(1)
	if !c.DeliverFrom(2, 1) {
		t.Fatal("DeliverFrom failed")
	}
	if !c.DeliverMsg(2, id0) {
		t.Fatal("DeliverMsg failed")
	}
	if c.DeliverMsg(2, id0) {
		t.Fatal("message delivered twice via DeliverMsg")
	}
}

func TestDerivedAbstractIsCausalForCausalStore(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		c := newCausalCluster(3, seed)
		objs := []model.ObjectID{"x", "y", "z"}
		c.RunRandom(WorkloadConfig{Objects: objs, Steps: 120})
		c.Quiesce()
		a := c.DerivedAbstract()
		if err := consistency.CheckCausal(a, spec.MVRTypes()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDerivedAbstractEventuallyConsistentAfterQuiescence(t *testing.T) {
	c := newCausalCluster(3, 5)
	objs := []model.ObjectID{"x", "y"}
	c.RunRandom(WorkloadConfig{Objects: objs, Steps: 100})
	c.Quiesce()
	boundary := len(c.Execution().DoEvents())
	if err := c.CheckConverged(objs); err != nil {
		t.Fatal(err)
	}
	a := c.DerivedAbstract()
	if err := consistency.CheckConvergedSuffix(a, boundary); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedAbstractLWWIsNotMVRCorrect(t *testing.T) {
	// Drive the LWW store into exposed hiding: with MVR typing its derived
	// abstract execution cannot be correct once concurrency was hidden.
	c := NewCluster(lww.New(spec.MVRTypes()), 2, 1)
	c.Do(0, "x", model.Write("a"))
	c.Do(1, "x", model.Write("b"))
	c.Send(0)
	c.Send(1)
	c.DeliverOne(0)
	c.DeliverOne(1)
	c.Do(0, "x", model.Read())
	c.Do(1, "x", model.Read())
	a := c.DerivedAbstract()
	if err := spec.CheckCorrect(a, spec.MVRTypes()); err == nil {
		t.Fatal("LWW store's derived execution should violate the MVR specification")
	}
}

func TestPropertyCheckersCleanForCausalStore(t *testing.T) {
	c := newCausalCluster(3, 2)
	c.RunRandom(WorkloadConfig{Objects: []model.ObjectID{"x"}, Steps: 100})
	c.Quiesce()
	if v := c.PropertyViolations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestPropertyCheckersFlagKBuffer(t *testing.T) {
	c := NewCluster(kbuffer.New(spec.MVRTypes(), 2), 2, 2)
	c.Do(0, "x", model.Write("a"))
	c.Send(0)
	c.DeliverOne(1)
	c.Do(1, "x", model.Read())
	found := false
	for _, v := range c.PropertyViolations() {
		if v.Property == "invisible reads" {
			found = true
		}
	}
	if !found {
		t.Fatal("K-buffer read went undetected")
	}
}

func TestWorkloadMixedTypes(t *testing.T) {
	types := spec.MVRTypes().
		With("s", spec.TypeORSet).
		With("c", spec.TypeCounter).
		With("r", spec.TypeRegister)
	cl := NewCluster(causal.New(types), 3, 13)
	objs := []model.ObjectID{"x", "s", "c", "r"}
	ops := cl.RunRandom(WorkloadConfig{Objects: objs, Steps: 300})
	if ops != 300 {
		t.Fatalf("ops = %d", ops)
	}
	cl.Quiesce()
	if err := cl.CheckConverged(objs); err != nil {
		t.Fatal(err)
	}
	if v := cl.PropertyViolations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestReadAllReturnsPerReplica(t *testing.T) {
	c := newCausalCluster(3, 1)
	c.Do(0, "x", model.Write("a"))
	resps := c.ReadAll("x")
	if len(resps) != 3 {
		t.Fatalf("%d responses", len(resps))
	}
	if len(resps[0].Values) != 1 || len(resps[1].Values) != 0 {
		t.Fatalf("responses = %v", resps)
	}
}

func TestConvergenceFailureReported(t *testing.T) {
	c := newCausalCluster(2, 1)
	c.Do(0, "x", model.Write("a"))
	// No propagation: replicas disagree.
	if err := c.CheckConverged([]model.ObjectID{"x"}); err == nil {
		t.Fatal("expected divergence report")
	}
}

func TestIsolatedReplicaInPartition(t *testing.T) {
	c := newCausalCluster(3, 1)
	c.Partition([]model.ReplicaID{0, 1}) // replica 2 in no group: isolated
	c.Do(0, "x", model.Write("a"))
	c.Send(0)
	if !c.DeliverOne(1) {
		t.Fatal("intra-group delivery failed")
	}
	if c.DeliverOne(2) {
		t.Fatal("isolated replica received a message")
	}
}

func TestAdversarialDeliveryStillCausal(t *testing.T) {
	// LIFO delivery maximizes dependency inversions; the causal store must
	// buffer through all of them and still produce a causally consistent
	// derived execution and converge.
	for seed := int64(0); seed < 6; seed++ {
		c := newCausalCluster(4, seed)
		c.SetFaults(Faults{Adversarial: true})
		objs := []model.ObjectID{"x", "y"}
		c.RunRandom(WorkloadConfig{Objects: objs, Steps: 200})
		c.Quiesce()
		if err := c.CheckConverged(objs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := consistency.CheckCausal(c.DerivedAbstract(), spec.MVRTypes()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAdversarialDeliveryPicksNewest(t *testing.T) {
	c := newCausalCluster(2, 1)
	c.SetFaults(Faults{Adversarial: true})
	c.Do(0, "x", model.Write("a"))
	c.Send(0)
	c.Do(0, "y", model.Write("b"))
	c.Send(0)
	// The adversarial scheduler delivers the second (newest) message first;
	// the causal store applies it immediately (its deps are satisfied by the
	// first update being... in the same batch? No: separate sends). The
	// second message depends on the first write, so it must buffer.
	c.DeliverOne(1)
	if got := c.Do(1, "y", model.Read()); len(got.Values) != 0 {
		t.Fatalf("dependent update applied before its dependency: %s", got)
	}
	c.DeliverOne(1)
	if got := c.Do(1, "y", model.Read()); !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("read = %s", got)
	}
}

// TestClusterWorkerReproducible pins the seed-splitting contract: a worker
// cluster is a pure function of (root, worker) — same inputs give an
// identical run, different workers give decorrelated ones, and the chosen
// stream is recorded on the cluster.
func TestClusterWorkerReproducible(t *testing.T) {
	runDigest := func(c *Cluster) string {
		c.RunRandom(WorkloadConfig{Objects: []model.ObjectID{"x", "y"}, Steps: 80})
		c.Quiesce()
		return fmt.Sprintf("%v", c.ReadAll("x"))
	}
	a := NewClusterWorker(causal.New(spec.MVRTypes()), 3, 42, 1)
	b := NewClusterWorker(causal.New(spec.MVRTypes()), 3, 42, 1)
	if a.Seed() != b.Seed() || runDigest(a) != runDigest(b) {
		t.Fatal("same (root, worker) must reproduce the same run")
	}
	other := NewClusterWorker(causal.New(spec.MVRTypes()), 3, 42, 2)
	if other.Seed() == a.Seed() {
		t.Fatal("different workers must draw different seed streams")
	}
	root := NewCluster(causal.New(spec.MVRTypes()), 3, 42)
	if root.Seed() != 42 {
		t.Fatalf("Seed() = %d, want the constructor seed 42", root.Seed())
	}
	if a.Seed() == 42 {
		t.Fatal("worker streams must not collide with the root seed")
	}
}
