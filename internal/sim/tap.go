package sim

import (
	"repro/internal/livecheck"
	"repro/internal/model"
	"repro/internal/store"
)

// tapState adapts the simulator's execution to the livecheck event stream:
// per-replica frontiers probed from the stores' own visibility reports
// (exactly how cluster.Node advances its frontier), a global step counter
// standing in for Lamport time (the simulator is single-threaded, so the
// recording order is a linearization with receive > send), and the
// per-origin broadcast sequence numbers the TCP engine mints on the wire.
type tapState struct {
	fn       func(livecheck.Event)
	lamport  uint64
	frontier [][]uint64
	sendSeq  []uint64
	msgSeq   map[int]uint64 // execution msgID -> (from, seq) broadcast seq
}

// SetTap installs a streaming observer: every do/send/receive the cluster
// records is also emitted as a livecheck.Event, so simulated runs are
// checked by the same code as TCP runs. Install before driving any events —
// sequence numbering starts at the install point. A nil fn detaches.
func (c *Cluster) SetTap(fn func(livecheck.Event)) {
	if fn == nil {
		c.tap = nil
		return
	}
	t := &tapState{
		fn:       fn,
		frontier: make([][]uint64, c.n),
		sendSeq:  make([]uint64, c.n),
		msgSeq:   make(map[int]uint64),
	}
	for i := range t.frontier {
		t.frontier[i] = make([]uint64, c.n)
	}
	c.tap = t
}

// tapDo emits the do event just recorded at replica r, with the same
// frontier semantics as cluster.Node: per-origin prefix probing of the
// store's VisReporter, or no frontier at all when the store reports none.
func (c *Cluster) tapDo(r model.ReplicaID, obj model.ObjectID, op model.Operation, resp model.Response, dot model.Dot) {
	t := c.tap
	var frontier []uint64
	if vr, ok := c.replicas[r].(store.VisReporter); ok {
		f := t.frontier[r]
		for o := range f {
			for vr.Sees(model.Dot{Origin: model.ReplicaID(o), Seq: f[o] + 1}) {
				f[o]++
			}
		}
		frontier = append([]uint64(nil), f...)
	}
	t.lamport++
	t.fn(livecheck.Event{
		Node: r, Kind: model.ActDo, Lamport: t.lamport,
		Object: obj, Op: op, Rval: resp, Dot: dot, Frontier: frontier,
	})
}

// tapSend emits the send event for replica r's broadcast msgID, minting the
// per-origin sequence number message identity needs.
func (c *Cluster) tapSend(r model.ReplicaID, msgID int) {
	t := c.tap
	t.sendSeq[r]++
	t.msgSeq[msgID] = t.sendSeq[r]
	t.lamport++
	t.fn(livecheck.Event{
		Node: r, Kind: model.ActSend, Lamport: t.lamport,
		Origin: r, Seq: t.sendSeq[r],
	})
}

// tapReceive emits the receive event for a delivery of msgID (sent by from)
// at replica to.
func (c *Cluster) tapReceive(to, from model.ReplicaID, msgID int) {
	t := c.tap
	t.lamport++
	t.fn(livecheck.Event{
		Node: to, Kind: model.ActReceive, Lamport: t.lamport,
		Origin: from, Seq: t.msgSeq[msgID],
	})
}
