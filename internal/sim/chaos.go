package sim

import (
	"repro/internal/fault"
	"repro/internal/model"
)

// chaosState overlays a fault schedule's effects on the simulated network,
// separate from the user-facing Partition/Heal matrix and the probabilistic
// Faults so the three compose: a directive-cut link blocks delivery exactly
// like a partition (delay, never loss — Definition 3 is preserved), dup
// duplicates broadcast copies on a link, reorder randomizes delivery picks
// on a link, and a crashed replica takes no steps while its state and
// queued messages survive (fail-stop with durable state — equivalent in the
// paper's asynchronous model to a replica that is merely very slow).
type chaosState struct {
	crashed []bool
	// left marks replicas departed by a leave directive. In the simulator
	// a departed replica behaves like a crashed one — no client steps, no
	// deliveries — but its rejoin is a KindJoin, whose catch-up cost (the
	// backlog queued while away) is what the churn metrics measure.
	left    []bool
	cut     [][]bool // partition + link-cut directives
	stall   [][]bool // delay windows: delivery held until the window closes
	dup     [][]bool
	reorder [][]bool
}

func boolMatrix(n int) [][]bool {
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
	}
	return m
}

// chaosOverlay lazily allocates the overlay, so clusters that never see a
// directive pay nothing on the delivery path.
func (c *Cluster) chaosOverlay() *chaosState {
	if c.chaos == nil {
		c.chaos = &chaosState{
			crashed: make([]bool, c.n),
			left:    make([]bool, c.n),
			cut:     boolMatrix(c.n),
			stall:   boolMatrix(c.n),
			dup:     boolMatrix(c.n),
			reorder: boolMatrix(c.n),
		}
	}
	return c.chaos
}

// ClearChaos lifts every directive effect: all links restored and shaped
// clean, all crashed replicas resumed. Quiesce calls this, mirroring how it
// suspends probabilistic faults — quiescence must be reachable.
func (c *Cluster) ClearChaos() {
	if c.chaos == nil {
		return
	}
	for i := 0; i < c.n; i++ {
		c.chaos.crashed[i] = false
		c.chaos.left[i] = false
		for j := 0; j < c.n; j++ {
			c.chaos.cut[i][j] = false
			c.chaos.stall[i][j] = false
			c.chaos.dup[i][j] = false
			c.chaos.reorder[i][j] = false
		}
	}
}

// Crashed reports whether replica r is currently out of the run — crashed
// or departed by a directive. Both suppress client steps and deliveries.
func (c *Cluster) Crashed(r model.ReplicaID) bool {
	return c.chaos != nil && (c.chaos.crashed[r] || c.chaos.left[r])
}

// SetObserver installs a chaos-metrics collector: applied directives,
// blocked deliveries, duplicated copies, and quiesce work report to it.
// The counters it receives are functions of the deterministic execution
// only, so the metrics of a (store, seed, schedule) triple are exactly
// reproducible. A nil observer detaches.
func (c *Cluster) SetObserver(o *fault.Observer) { c.obs = o }

// ApplyDirective enforces one fault-schedule directive on the simulated
// network, with the same semantics fault.Netem gives the TCP cluster:
// partitions overwrite the pairwise cut set (ungrouped replicas isolated),
// heal lifts cuts but not link shaping, link-clear lifts shaping but not
// cuts, and crash/restart toggle a replica's participation.
func (c *Cluster) ApplyDirective(d fault.Directive) {
	cs := c.chaosOverlay()
	c.obs.Directive(d)
	switch d.Kind {
	case fault.KindPartition:
		group := make(map[int]int)
		for gi, g := range d.Groups {
			for _, r := range g {
				group[r] = gi + 1
			}
		}
		for i := 0; i < c.n; i++ {
			for j := 0; j < c.n; j++ {
				if i != j {
					gi, gj := group[i], group[j]
					cs.cut[i][j] = gi != gj || gi == 0
				}
			}
		}
	case fault.KindHeal:
		for i := 0; i < c.n; i++ {
			for j := 0; j < c.n; j++ {
				cs.cut[i][j] = false
			}
		}
	case fault.KindLinkCut:
		cs.cut[d.From][d.To] = true
	case fault.KindLinkRestore:
		cs.cut[d.From][d.To] = false
	case fault.KindLinkDelay:
		cs.stall[d.From][d.To] = true
	case fault.KindLinkDup:
		cs.dup[d.From][d.To] = true
	case fault.KindLinkReorder:
		cs.reorder[d.From][d.To] = true
	case fault.KindLinkRate:
		// Bandwidth caps are a wall-clock construct; the simulator's
		// delivery is not byte-timed, so a rate window shapes nothing here
		// (the TCP engine enforces it in Netem).
	case fault.KindLinkClear:
		cs.stall[d.From][d.To] = false
		cs.dup[d.From][d.To] = false
		cs.reorder[d.From][d.To] = false
	case fault.KindCrash:
		cs.crashed[d.Node] = true
	case fault.KindRestart:
		cs.crashed[d.Node] = false
	case fault.KindLeave:
		cs.left[d.Node] = true
	case fault.KindJoin:
		cs.left[d.Node] = false
		// The backlog queued while away is exactly what anti-entropy would
		// ship on the TCP engine; count it as the join's sync cost.
		c.obs.AddSyncUpdates(int64(len(c.queues[d.Node])))
	}
}

// RunScheduled drives the random workload while enforcing a fault schedule:
// before workload step k executes, every directive due at step k is
// applied. The step count is the larger of cfg.Steps and sched.Steps, so
// the whole schedule always plays out. Crashed replicas take no client
// steps and send nothing, but every RNG draw still happens, so the
// operation sequence is a pure function of the cluster seed and the
// schedule. Directives never drop messages, so a scheduled run stays
// non-lossy (CheckConverged rules on it) unless probabilistic Faults are
// also installed. Returns the number of client operations performed.
func (c *Cluster) RunScheduled(sched fault.Schedule, cfg WorkloadConfig) int {
	cfg.defaults()
	if len(cfg.Objects) == 0 {
		panic("sim: workload needs at least one object")
	}
	steps := cfg.Steps
	if steps < sched.Steps {
		steps = sched.Steps
	}
	types := c.st.Types()
	ops := 0
	nextValue := 0
	di := 0
	for step := 0; step < steps; step++ {
		for di < len(sched.Directives) && sched.Directives[di].Step <= step {
			c.ApplyDirective(sched.Directives[di])
			di++
		}
		r := model.ReplicaID(c.rng.Intn(c.n))
		obj := cfg.Objects[c.rng.Intn(len(cfg.Objects))]
		op := c.randOp(&cfg, types, r, obj, &nextValue)
		if !c.Crashed(r) {
			c.Do(r, obj, op)
			ops++
		}
		if c.rng.Float64() < cfg.SendProb {
			c.Send(model.ReplicaID(c.rng.Intn(c.n)))
		}
		if c.rng.Float64() < cfg.DeliverProb {
			c.DeliverOne(model.ReplicaID(c.rng.Intn(c.n)))
		}
	}
	for di < len(sched.Directives) {
		c.ApplyDirective(sched.Directives[di])
		di++
	}
	c.obs.Finish(steps)
	return ops
}
