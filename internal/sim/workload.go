package sim

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/spec"
)

// WorkloadConfig drives a randomized client/network schedule against a
// cluster. All randomness comes from the cluster's seeded RNG, so runs are
// reproducible.
type WorkloadConfig struct {
	// Objects is the object pool operated on (must be non-empty).
	Objects []model.ObjectID
	// Steps is the number of scheduler steps.
	Steps int
	// MutateRatio is the fraction of client operations that mutate
	// (default 0.5).
	MutateRatio float64
	// SendProb is the per-step probability of broadcasting a random
	// replica's pending message (default 0.3).
	SendProb float64
	// DeliverProb is the per-step probability of delivering one queued
	// message to a random replica (default 0.4).
	DeliverProb float64
	// SetValues is the value pool for ORset adds/removes (default small
	// pool). MVR/register writes always use globally unique values, per the
	// paper's distinct-values assumption.
	SetValues []model.Value
}

func (cfg *WorkloadConfig) defaults() {
	if cfg.MutateRatio == 0 {
		cfg.MutateRatio = 0.5
	}
	if cfg.SendProb == 0 {
		cfg.SendProb = 0.3
	}
	if cfg.DeliverProb == 0 {
		cfg.DeliverProb = 0.4
	}
	if len(cfg.SetValues) == 0 {
		cfg.SetValues = []model.Value{"a", "b", "c", "d"}
	}
}

// randOp draws one client operation for replica r on obj from the cluster
// RNG. Shared by RunRandom and RunScheduled; the draw sequence is part of
// the reproducibility contract, so it must not change.
func (c *Cluster) randOp(cfg *WorkloadConfig, types spec.Types, r model.ReplicaID, obj model.ObjectID, nextValue *int) model.Operation {
	op := model.Read()
	if c.rng.Float64() < cfg.MutateRatio {
		switch types.Of(obj) {
		case spec.TypeMVR, spec.TypeRegister:
			*nextValue++
			op = model.Write(model.Value(fmt.Sprintf("v%d.%d", r, *nextValue)))
		case spec.TypeORSet:
			v := cfg.SetValues[c.rng.Intn(len(cfg.SetValues))]
			if c.rng.Float64() < 0.5 {
				op = model.Add(v)
			} else {
				op = model.Remove(v)
			}
		case spec.TypeCounter:
			op = model.Inc(int64(c.rng.Intn(5) - 2))
		}
	}
	return op
}

// RunRandom executes a random workload: each step performs one client
// operation at a random replica and then, independently, possibly broadcasts
// and possibly delivers. Returns the number of client operations performed.
func (c *Cluster) RunRandom(cfg WorkloadConfig) int {
	cfg.defaults()
	if len(cfg.Objects) == 0 {
		panic("sim: workload needs at least one object")
	}
	types := c.st.Types()
	ops := 0
	nextValue := 0
	for step := 0; step < cfg.Steps; step++ {
		r := model.ReplicaID(c.rng.Intn(c.n))
		obj := cfg.Objects[c.rng.Intn(len(cfg.Objects))]
		op := c.randOp(&cfg, types, r, obj, &nextValue)
		c.Do(r, obj, op)
		ops++
		if c.rng.Float64() < cfg.SendProb {
			c.Send(model.ReplicaID(c.rng.Intn(c.n)))
		}
		if c.rng.Float64() < cfg.DeliverProb {
			c.DeliverOne(model.ReplicaID(c.rng.Intn(c.n)))
		}
	}
	return ops
}
