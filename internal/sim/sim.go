// Package sim drives replicas of any store.Store through interleaved
// executions, recording the resulting concrete execution and deriving the
// abstract execution the run complies with.
//
// The simulator is the paper's execution model made operational: client
// operations complete immediately at a single replica; broadcasts enqueue a
// message per destination; delivery is controlled by the test or workload
// (FIFO, random, adversarial), with optional fault injection — drops,
// duplicates, reordering, and partitions. Partitions delay rather than drop:
// the model requires eventual delivery for eventual consistency (Definition
// 3), so a partition blocks delivery until healed. Explicit drops genuinely
// lose messages (our stores do not retransmit), so CheckConverged refuses to
// rule on a run that dropped anything — it returns ErrLossyRun instead of
// silently asserting Lemma 3 where it cannot hold — unless the store
// declares store.LossConverger (state-sync propagation subsumes losses).
// Safety assertions hold in all runs. For convergence over a genuinely
// lossy network, internal/cluster supplies the reliable-delivery transport
// the stores themselves lack.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/abstract"
	"repro/internal/execution"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/store"
)

// Faults configures probabilistic fault injection.
type Faults struct {
	// DropProb is the probability a broadcast copy to one destination is
	// lost entirely.
	DropProb float64
	// DupProb is the probability a broadcast copy is enqueued twice.
	DupProb float64
	// Reorder makes DeliverOne pick a random queued message instead of the
	// oldest deliverable one.
	Reorder bool
	// Adversarial makes DeliverOne prefer the NEWEST deliverable message
	// (LIFO), maximizing reordering pressure on causal buffering: dependent
	// updates systematically arrive before their dependencies.
	Adversarial bool
}

type queuedMsg struct {
	msgID int
	from  model.ReplicaID
}

// Cluster simulates n replicas of one store.
type Cluster struct {
	st       store.Store
	n        int
	seed     int64
	replicas []store.Replica
	checkers []*store.PropertyChecker
	exec     *execution.Execution
	queues   [][]queuedMsg // inbound queue per replica
	rng      *rand.Rand
	faults   Faults
	drops    int // broadcast copies lost to DropProb

	// connected[i][j] reports whether messages currently flow from i to j.
	connected [][]bool

	// chaos overlays fault-schedule directives (ApplyDirective) on top of
	// the partition matrix and probabilistic faults; nil until the first
	// directive.
	chaos *chaosState

	// obs, when non-nil, collects chaos metrics for this run (SetObserver).
	// Every count it receives is derived from the deterministic execution,
	// never from wall time, so observed metrics are a pure function of
	// (store, seed, schedule).
	obs *fault.Observer

	// tap, when non-nil, streams every recorded event to a livecheck
	// observer (SetTap), mirroring the TCP engine's Config.Tap.
	tap *tapState

	// Visibility derivation: one row per recorded do event.
	doEvents []int       // event Seq of each do event
	doDots   []model.Dot // dot of each do event's mutator (zero Seq for reads)
	sees     [][]bool    // sees[j][i]: do event j sees the dot of do event i
}

// NewCluster creates a cluster of n replicas of st with a seeded RNG.
func NewCluster(st store.Store, n int, seed int64) *Cluster {
	c := &Cluster{
		st:     st,
		n:      n,
		seed:   seed,
		exec:   execution.New(),
		queues: make([][]queuedMsg, n),
		rng:    rand.New(rand.NewSource(seed)),
	}
	c.connected = make([][]bool, n)
	for i := range c.connected {
		c.connected[i] = make([]bool, n)
		for j := range c.connected[i] {
			c.connected[i][j] = i != j
		}
	}
	for i := 0; i < n; i++ {
		r := st.NewReplica(model.ReplicaID(i), n)
		c.replicas = append(c.replicas, r)
		c.checkers = append(c.checkers, store.NewPropertyChecker(r))
	}
	return c
}

// NewClusterWorker creates a cluster whose RNG stream is split from a root
// seed for the given worker index (gen.SplitSeed), so parallel simulations
// remain reproducible from one root seed: the cluster driven as worker i is
// identical no matter which goroutine drives it.
func NewClusterWorker(st store.Store, n int, root int64, worker int) *Cluster {
	return NewCluster(st, n, gen.SplitSeed(root, worker))
}

// N returns the number of replicas.
func (c *Cluster) N() int { return c.n }

// Seed returns the seed the cluster's RNG was created with (for a worker
// cluster, the already-split stream seed).
func (c *Cluster) Seed() int64 { return c.seed }

// Store returns the store under simulation.
func (c *Cluster) Store() store.Store { return c.st }

// Replica returns replica r (for store-specific inspection in tests).
func (c *Cluster) Replica(r model.ReplicaID) store.Replica { return c.replicas[r] }

// Execution returns the recorded concrete execution.
func (c *Cluster) Execution() *execution.Execution { return c.exec }

// SetFaults installs fault injection for subsequent sends/deliveries.
func (c *Cluster) SetFaults(f Faults) { c.faults = f }

// Do invokes op on obj at replica r, records the do event, snapshots
// visibility, and returns the response.
func (c *Cluster) Do(r model.ReplicaID, obj model.ObjectID, op model.Operation) model.Response {
	rep := c.replicas[r]
	resp := c.checkers[r].CheckDo(obj, op, func() model.Response { return rep.Do(obj, op) })
	e := c.exec.AppendDo(r, obj, op, resp)

	var dot model.Dot
	if op.Kind.IsMutator() {
		if dr, ok := rep.(store.DotReporter); ok {
			if d, has := dr.LastDot(); has {
				dot = d
			}
		}
	}
	row := make([]bool, len(c.doDots))
	if vr, ok := rep.(store.VisReporter); ok {
		for i, d := range c.doDots {
			if d.Seq != 0 && vr.Sees(d) {
				row[i] = true
			}
		}
	}
	c.doEvents = append(c.doEvents, e.Seq)
	c.doDots = append(c.doDots, dot)
	c.sees = append(c.sees, row)
	if c.tap != nil {
		c.tapDo(r, obj, op, resp, dot)
	}
	return resp
}

// Send broadcasts replica r's pending message, if any, recording the send
// event and enqueueing a copy per destination (subject to faults and
// partitions — a partition delays enqueued copies, which stay queued until
// delivered after healing; a drop removes the copy entirely). It returns the
// message ID and whether a message was sent.
func (c *Cluster) Send(r model.ReplicaID) (int, bool) {
	if c.Crashed(r) {
		return 0, false
	}
	payload := c.replicas[r].PendingMessage()
	if payload == nil {
		return 0, false
	}
	e := c.exec.AppendSend(r, payload)
	c.replicas[r].OnSend()
	if c.tap != nil {
		c.tapSend(r, e.MsgID)
	}
	for to := 0; to < c.n; to++ {
		if model.ReplicaID(to) == r {
			continue
		}
		if c.rng.Float64() < c.faults.DropProb {
			c.drops++
			continue
		}
		copies := 1
		if c.rng.Float64() < c.faults.DupProb {
			copies = 2
		}
		if c.chaos != nil && c.chaos.dup[r][to] {
			copies = 2
			c.obs.AddDupCopies(1)
		}
		for k := 0; k < copies; k++ {
			c.queues[to] = append(c.queues[to], queuedMsg{msgID: e.MsgID, from: r})
		}
	}
	return e.MsgID, true
}

// SendAll broadcasts every replica's pending message, returning how many
// messages were sent.
func (c *Cluster) SendAll() int {
	sent := 0
	for r := 0; r < c.n; r++ {
		if _, ok := c.Send(model.ReplicaID(r)); ok {
			sent++
		}
	}
	return sent
}

// deliverIndex removes queue entry i of replica to and applies it.
func (c *Cluster) deliverIndex(to model.ReplicaID, i int) {
	q := c.queues[to]
	m := q[i]
	c.queues[to] = append(q[:i], q[i+1:]...)
	msg, ok := c.exec.Message(m.msgID)
	if !ok {
		panic(fmt.Sprintf("sim: queued unknown message m%d", m.msgID))
	}
	c.exec.AppendReceive(to, m.msgID)
	c.checkers[to].CheckReceive(msg.Payload, func() { c.replicas[to].Receive(msg.Payload) })
	if c.tap != nil {
		c.tapReceive(to, m.from, m.msgID)
	}
}

// deliverable returns the indices of queue entries currently allowed through
// the partition and the chaos overlay (directive cuts, delay windows, and a
// crashed destination all hold messages back without losing them).
func (c *Cluster) deliverable(to model.ReplicaID) []int {
	if c.Crashed(to) {
		c.obs.AddBlocked(int64(len(c.queues[to])))
		return nil
	}
	var idx []int
	var blocked int64
	for i, m := range c.queues[to] {
		if !c.connected[m.from][to] {
			continue
		}
		if c.chaos != nil && (c.chaos.cut[m.from][to] || c.chaos.stall[m.from][to]) {
			blocked++
			continue
		}
		idx = append(idx, i)
	}
	c.obs.AddBlocked(blocked)
	return idx
}

// DeliverOne delivers one queued message to replica to: the oldest
// deliverable one, or a random one when reordering is enabled. It reports
// whether anything was delivered.
func (c *Cluster) DeliverOne(to model.ReplicaID) bool {
	idx := c.deliverable(to)
	if len(idx) == 0 {
		return false
	}
	pick := idx[0]
	switch {
	case c.faults.Adversarial:
		pick = idx[len(idx)-1]
	case c.faults.Reorder:
		pick = idx[c.rng.Intn(len(idx))]
	case c.chaosReorders(to, idx):
		pick = idx[c.rng.Intn(len(idx))]
	}
	c.deliverIndex(to, pick)
	return true
}

// chaosReorders reports whether any deliverable entry sits on a link with
// an open reorder window, in which case the pick is randomized.
func (c *Cluster) chaosReorders(to model.ReplicaID, idx []int) bool {
	if c.chaos == nil {
		return false
	}
	for _, i := range idx {
		if c.chaos.reorder[c.queues[to][i].from][to] {
			return true
		}
	}
	return false
}

// DeliverFrom delivers the oldest queued message from a specific sender to a
// specific destination, ignoring partitions (used by scripted scenarios).
func (c *Cluster) DeliverFrom(to, from model.ReplicaID) bool {
	for i, m := range c.queues[to] {
		if m.from == from {
			c.deliverIndex(to, i)
			return true
		}
	}
	return false
}

// DeliverMsg delivers a specific message instance to a destination if it is
// queued there, ignoring partitions.
func (c *Cluster) DeliverMsg(to model.ReplicaID, msgID int) bool {
	for i, m := range c.queues[to] {
		if m.msgID == msgID {
			c.deliverIndex(to, i)
			return true
		}
	}
	return false
}

// QueueLen returns the number of messages queued for replica to.
func (c *Cluster) QueueLen(to model.ReplicaID) int { return len(c.queues[to]) }

// Partition splits the cluster into groups; messages flow only within a
// group. Replicas absent from every group are isolated.
func (c *Cluster) Partition(groups ...[]model.ReplicaID) {
	group := make(map[model.ReplicaID]int)
	for gi, g := range groups {
		for _, r := range g {
			group[r] = gi + 1
		}
	}
	for i := 0; i < c.n; i++ {
		for j := 0; j < c.n; j++ {
			gi, gj := group[model.ReplicaID(i)], group[model.ReplicaID(j)]
			c.connected[i][j] = i != j && gi == gj && gi != 0
		}
	}
}

// Heal restores full connectivity.
func (c *Cluster) Heal() {
	for i := 0; i < c.n; i++ {
		for j := 0; j < c.n; j++ {
			c.connected[i][j] = i != j
		}
	}
}

// Quiesce heals the network, then alternates broadcasting every pending
// message and delivering every queued message until neither remains,
// producing a quiescent execution (Definition 17). It terminates for any
// op-driven store: deliveries create no new pending messages. The fault
// configuration is suspended so quiescence is actually reachable.
func (c *Cluster) Quiesce() {
	savedFaults := c.faults
	c.faults = Faults{}
	c.Heal()
	c.ClearChaos()
	var rounds, delivered int64
	for {
		sent := c.SendAll()
		roundDelivered := 0
		for to := 0; to < c.n; to++ {
			for c.DeliverOne(model.ReplicaID(to)) {
				roundDelivered++
			}
		}
		if sent == 0 && roundDelivered == 0 {
			break
		}
		rounds++
		delivered += int64(roundDelivered)
	}
	c.obs.ObserveQuiesce(rounds, delivered)
	c.faults = savedFaults
}

// IsQuiescent reports whether no replica has a pending message and no
// message is queued (Definition 17 for the recorded run).
func (c *Cluster) IsQuiescent() bool {
	for r := 0; r < c.n; r++ {
		if c.replicas[r].PendingMessage() != nil || len(c.queues[r]) > 0 {
			return false
		}
	}
	return true
}

// ReadAll performs a read of obj at every replica and returns the responses
// (recorded as do events).
func (c *Cluster) ReadAll(obj model.ObjectID) []model.Response {
	out := make([]model.Response, c.n)
	for r := 0; r < c.n; r++ {
		out[r] = c.Do(model.ReplicaID(r), obj, model.Read())
	}
	return out
}

// ErrLossyRun is returned by CheckConverged when the run genuinely lost
// messages: the stores do not retransmit, so Lemma 3's premise (eventual
// delivery, Definition 3) does not hold and convergence cannot be asserted
// — even if the reads happen to agree.
var ErrLossyRun = errors.New("sim: run dropped messages, convergence cannot be asserted (no retransmission)")

// Drops returns the number of broadcast copies lost to fault injection.
func (c *Cluster) Drops() int { return c.drops }

// CheckConverged verifies Lemma 3's conclusion on the current (quiescent)
// state: reads of every listed object return the same response at every
// replica. The reads are recorded like any other client operations.
//
// On a run with explicit drops it returns an error wrapping ErrLossyRun
// instead of a verdict, unless the store reconverges through loss by design
// (store.LossConverger): eventual delivery failed, so agreement would be
// coincidence, not Lemma 3.
func (c *Cluster) CheckConverged(objects []model.ObjectID) error {
	if c.drops > 0 {
		lc, ok := c.st.(store.LossConverger)
		if !ok || !lc.ConvergesUnderLoss() {
			return fmt.Errorf("%w: %d copies dropped", ErrLossyRun, c.drops)
		}
	}
	for _, obj := range objects {
		resps := c.ReadAll(obj)
		for r := 1; r < c.n; r++ {
			if !resps[r].Equal(resps[0]) {
				return fmt.Errorf("sim: %s diverged after quiescence: r0 reads %s, r%d reads %s", obj, resps[0], r, resps[r])
			}
		}
	}
	return nil
}

// PropertyViolations aggregates the §4 property violations observed at all
// replicas.
func (c *Cluster) PropertyViolations() []*store.PropertyViolation {
	var out []*store.PropertyViolation
	for _, ch := range c.checkers {
		out = append(out, ch.Violations()...)
	}
	return out
}

// DerivedAbstract builds the abstract execution this run complies with,
// using the per-do-event visibility snapshots. H is the global do order and
// e_i -vis-> e_j iff one of:
//
//   - session order: same replica, i before j;
//   - e_i is a mutator whose dot was visible at R(e_j) when e_j executed;
//   - e_i is a read whose causal past (the set of mutators it saw) is
//     contained in e_j's.
//
// The read rule matters: reads leave no trace in store state, but the
// abstract execution must still relate them to later events or visibility
// loses transitivity (a read session-precedes a local write that then
// propagates) and eventual consistency would be vacuously violated by
// never-visible reads. Containment of causal pasts is the strongest
// visibility a complying execution can claim for a read, and for a causally
// consistent store it keeps the derived relation transitive. Read-source
// edges never affect specification evaluation, so correctness is untouched.
func (c *Cluster) DerivedAbstract() *abstract.Execution {
	a := abstract.New()
	does := c.exec.DoEvents()
	for _, e := range does {
		a.Append(e)
	}
	// readPastContained reports whether read i's seen-mutator set is a
	// subset of event j's.
	readPastContained := func(i, j int) bool {
		for m := 0; m < i; m++ {
			if c.doDots[m].Seq != 0 && c.sees[i][m] && !c.sees[j][m] {
				return false
			}
		}
		return true
	}
	for j := range does {
		for i := 0; i < j; i++ {
			switch {
			case does[i].Replica == does[j].Replica:
				a.AddVis(i, j)
			case c.doDots[i].Seq != 0: // mutator: dot visibility
				if c.sees[j][i] {
					a.AddVis(i, j)
				}
			default: // read: causal-past containment
				if readPastContained(i, j) {
					a.AddVis(i, j)
				}
			}
		}
	}
	return a
}
