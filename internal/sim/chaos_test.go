package sim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/model"
)

func testSchedule(seed int64) fault.Schedule {
	return fault.Generate(fault.Config{
		Seed: seed, N: 3, Steps: 120,
		Partitions: 2, Crashes: 1, LinkFaults: 3,
	})
}

// TestRunScheduledDeterministic: same seed, same schedule → identical
// executions, down to the digest of every replica.
func TestRunScheduledDeterministic(t *testing.T) {
	run := func() (*Cluster, int) {
		c := newCausalCluster(3, 21)
		ops := c.RunScheduled(testSchedule(21), WorkloadConfig{
			Objects: []model.ObjectID{"x", "y"}, Steps: 120,
		})
		c.Quiesce()
		return c, ops
	}
	c1, ops1 := run()
	c2, ops2 := run()
	if ops1 != ops2 {
		t.Fatalf("op counts differ: %d vs %d", ops1, ops2)
	}
	if len(c1.Execution().Events) != len(c2.Execution().Events) {
		t.Fatalf("event counts differ: %d vs %d", len(c1.Execution().Events), len(c2.Execution().Events))
	}
	for r := 0; r < 3; r++ {
		d1 := c1.Replica(model.ReplicaID(r)).StateDigest()
		d2 := c2.Replica(model.ReplicaID(r)).StateDigest()
		if d1 != d2 {
			t.Fatalf("replica %d digests differ across identical scheduled runs", r)
		}
	}
}

// TestApplyDirectiveCrashAndCut pins the overlay semantics: a crashed
// replica sends nothing and receives nothing, a cut link holds messages
// without losing them, and restore/restart/ClearChaos lift the effects.
func TestApplyDirectiveCrashAndCut(t *testing.T) {
	c := newCausalCluster(3, 1)
	c.Do(0, "x", model.Write("v1"))

	c.ApplyDirective(fault.Directive{Kind: fault.KindCrash, Node: 0})
	if !c.Crashed(0) {
		t.Fatal("crash directive did not mark the replica")
	}
	if _, sent := c.Send(0); sent {
		t.Fatal("crashed replica broadcast a message")
	}
	c.ApplyDirective(fault.Directive{Kind: fault.KindRestart, Node: 0})
	if _, sent := c.Send(0); !sent {
		t.Fatal("restarted replica did not broadcast")
	}

	// Cut r0->r1: the copy stays queued, undeliverable, and no drop is
	// recorded (Definition 3 delivery is delayed, never revoked).
	c.ApplyDirective(fault.Directive{Kind: fault.KindLinkCut, From: 0, To: 1})
	if c.DeliverOne(1) {
		t.Fatal("delivered across a cut link")
	}
	if c.QueueLen(1) != 1 {
		t.Fatalf("queue len = %d, want the copy held", c.QueueLen(1))
	}
	if c.Drops() != 0 {
		t.Fatalf("cut recorded %d drops", c.Drops())
	}
	c.ApplyDirective(fault.Directive{Kind: fault.KindLinkRestore, From: 0, To: 1})
	if !c.DeliverOne(1) {
		t.Fatal("restored link did not deliver")
	}

	// Delivery to a crashed replica is held, and Quiesce clears the crash.
	c.ApplyDirective(fault.Directive{Kind: fault.KindCrash, Node: 2})
	if c.DeliverOne(2) {
		t.Fatal("delivered to a crashed replica")
	}
	c.Quiesce()
	if c.Crashed(2) {
		t.Fatal("Quiesce left the replica crashed")
	}
	if c.QueueLen(2) != 0 {
		t.Fatalf("r2 queue not drained after Quiesce: %d", c.QueueLen(2))
	}
	if err := c.CheckConverged([]model.ObjectID{"x"}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionDirectiveMatchesNetemSemantics: a partition directive
// overwrites the pairwise cut set (ungrouped replicas isolated), and a heal
// directive lifts cuts while leaving link shaping alone.
func TestPartitionDirectiveMatchesNetemSemantics(t *testing.T) {
	c := newCausalCluster(3, 2)
	c.Do(0, "x", model.Write("v1"))
	c.Send(0)
	c.Do(1, "y", model.Write("v2"))
	c.Send(1)

	// Partition {0} | {1}: r2 is ungrouped, so it is isolated too.
	c.ApplyDirective(fault.Directive{Kind: fault.KindPartition, Groups: [][]int{{0}, {1}}})
	for to := model.ReplicaID(1); to <= 2; to++ {
		if c.DeliverOne(to) {
			t.Fatalf("delivered to r%d across the partition", to)
		}
	}
	c.ApplyDirective(fault.Directive{Kind: fault.KindHeal})
	delivered := 0
	for to := model.ReplicaID(0); to < 3; to++ {
		for c.DeliverOne(to) {
			delivered++
		}
	}
	if delivered != 4 {
		t.Fatalf("delivered %d copies after heal, want 4", delivered)
	}
}
