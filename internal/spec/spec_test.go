package spec

import (
	"strings"
	"testing"

	"repro/internal/abstract"
	"repro/internal/model"
)

// build constructs an abstract execution from (replica, object, op) rows
// with explicit vis edges, assigning each event its specified response so
// the result is correct by construction.
type row struct {
	r    model.ReplicaID
	obj  model.ObjectID
	op   model.Operation
	vis  []int // extra vis predecessors (session edges must be listed too)
	rval *model.Response
}

func build(t *testing.T, types Types, rows []row) *abstract.Execution {
	t.Helper()
	a := abstract.New()
	for _, rw := range rows {
		j := a.Append(model.Event{Replica: rw.r, Act: model.ActDo, Object: rw.obj, Op: rw.op})
		for _, i := range rw.vis {
			a.AddVis(i, j)
		}
		if rw.rval != nil {
			a.SetRval(j, *rw.rval)
		} else {
			a.SetRval(j, Specified(a, types, j))
		}
	}
	return a
}

func vals(vs ...model.Value) *model.Response {
	r := model.ReadResponse(vs)
	return &r
}

func TestMVREmptyRead(t *testing.T) {
	types := MVRTypes()
	a := build(t, types, []row{{r: 0, obj: "x", op: model.Read()}})
	if got := a.H[0].Rval; len(got.Values) != 0 {
		t.Fatalf("empty MVR read = %s", got)
	}
	if err := CheckCorrect(a, types); err != nil {
		t.Fatal(err)
	}
}

func TestMVRReadSeesVisibleWrite(t *testing.T) {
	types := MVRTypes()
	a := build(t, types, []row{
		{r: 0, obj: "x", op: model.Write("a")},
		{r: 1, obj: "x", op: model.Read(), vis: []int{0}},
	})
	if got := a.H[1].Rval; !got.Equal(model.ReadResponse([]model.Value{"a"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestMVRConcurrentWritesBothReturned(t *testing.T) {
	types := MVRTypes()
	a := build(t, types, []row{
		{r: 0, obj: "x", op: model.Write("a")},
		{r: 1, obj: "x", op: model.Write("b")},
		{r: 2, obj: "x", op: model.Read(), vis: []int{0, 1}},
	})
	if got := a.H[2].Rval; !got.Equal(model.ReadResponse([]model.Value{"a", "b"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestMVRDominatedWriteSuppressed(t *testing.T) {
	types := MVRTypes()
	a := build(t, types, []row{
		{r: 0, obj: "x", op: model.Write("a")},
		{r: 1, obj: "x", op: model.Write("b"), vis: []int{0}}, // b overwrites a
		{r: 2, obj: "x", op: model.Read(), vis: []int{0, 1}},
	})
	if got := a.H[2].Rval; !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("read = %s", got)
	}
}

func TestMVRInvisibleWriteIgnored(t *testing.T) {
	types := MVRTypes()
	a := build(t, types, []row{
		{r: 0, obj: "x", op: model.Write("a")},
		{r: 1, obj: "x", op: model.Read()}, // write not visible
	})
	if got := a.H[1].Rval; len(got.Values) != 0 {
		t.Fatalf("read = %s", got)
	}
}

func TestMVROtherObjectIgnored(t *testing.T) {
	types := MVRTypes()
	a := build(t, types, []row{
		{r: 0, obj: "y", op: model.Write("a")},
		{r: 1, obj: "x", op: model.Read(), vis: []int{0}},
	})
	if got := a.H[1].Rval; len(got.Values) != 0 {
		t.Fatalf("cross-object leak: %s", got)
	}
}

func TestRegisterLastWriteInHWins(t *testing.T) {
	types := Types{DefaultType: TypeRegister}
	a := build(t, types, []row{
		{r: 0, obj: "reg", op: model.Write("a")},
		{r: 1, obj: "reg", op: model.Write("b")}, // concurrent, later in H
		{r: 2, obj: "reg", op: model.Read(), vis: []int{0, 1}},
	})
	if got := a.H[2].Rval; !got.Equal(model.ReadResponse([]model.Value{"b"})) {
		t.Fatalf("register read = %s", got)
	}
}

func TestRegisterEmptyRead(t *testing.T) {
	types := Types{DefaultType: TypeRegister}
	a := build(t, types, []row{{r: 0, obj: "reg", op: model.Read()}})
	if got := a.H[0].Rval; len(got.Values) != 0 {
		t.Fatalf("empty register read = %s", got)
	}
}

func TestORSetAddVisible(t *testing.T) {
	types := Types{DefaultType: TypeORSet}
	a := build(t, types, []row{
		{r: 0, obj: "s", op: model.Add("e")},
		{r: 1, obj: "s", op: model.Read(), vis: []int{0}},
	})
	if got := a.H[1].Rval; !got.Equal(model.ReadResponse([]model.Value{"e"})) {
		t.Fatalf("set read = %s", got)
	}
}

func TestORSetObservedRemoveWins(t *testing.T) {
	types := Types{DefaultType: TypeORSet}
	a := build(t, types, []row{
		{r: 0, obj: "s", op: model.Add("e")},
		{r: 1, obj: "s", op: model.Remove("e"), vis: []int{0}},
		{r: 2, obj: "s", op: model.Read(), vis: []int{0, 1}},
	})
	if got := a.H[2].Rval; len(got.Values) != 0 {
		t.Fatalf("observed remove lost: %s", got)
	}
}

func TestORSetConcurrentAddWins(t *testing.T) {
	types := Types{DefaultType: TypeORSet}
	a := build(t, types, []row{
		{r: 0, obj: "s", op: model.Add("e")},
		{r: 1, obj: "s", op: model.Remove("e")}, // concurrent with the add
		{r: 2, obj: "s", op: model.Read(), vis: []int{0, 1}},
	})
	if got := a.H[2].Rval; !got.Equal(model.ReadResponse([]model.Value{"e"})) {
		t.Fatalf("add should win over concurrent remove: %s", got)
	}
}

func TestORSetRemoveOnlyNamedElement(t *testing.T) {
	types := Types{DefaultType: TypeORSet}
	a := build(t, types, []row{
		{r: 0, obj: "s", op: model.Add("e")},
		{r: 0, obj: "s", op: model.Add("f"), vis: []int{0}},
		{r: 1, obj: "s", op: model.Remove("e"), vis: []int{0, 1}},
		{r: 2, obj: "s", op: model.Read(), vis: []int{0, 1, 2}},
	})
	if got := a.H[3].Rval; !got.Equal(model.ReadResponse([]model.Value{"f"})) {
		t.Fatalf("set read = %s", got)
	}
}

func TestCounterSumsVisibleDeltas(t *testing.T) {
	types := Types{DefaultType: TypeCounter}
	a := build(t, types, []row{
		{r: 0, obj: "c", op: model.Inc(5)},
		{r: 1, obj: "c", op: model.Inc(-2)},
		{r: 2, obj: "c", op: model.Read(), vis: []int{0, 1}},
		{r: 2, obj: "c", op: model.Read(), vis: []int{0, 2}}, // misses the -2
	})
	if got := a.H[2].Rval; !got.Equal(model.CountResponse(3)) {
		t.Fatalf("counter read = %s", got)
	}
}

func TestCheckCorrectFlagsWrongResponse(t *testing.T) {
	types := MVRTypes()
	a := build(t, types, []row{
		{r: 0, obj: "x", op: model.Write("a")},
		{r: 1, obj: "x", op: model.Read(), vis: []int{0}, rval: vals("zzz")},
	})
	err := CheckCorrect(a, types)
	if err == nil {
		t.Fatal("expected correctness error")
	}
	var ce *CorrectnessError
	if !asCorrectness(err, &ce) {
		t.Fatalf("error type: %T", err)
	}
	if ce.Index != 1 || !strings.Contains(ce.Error(), "specification requires") {
		t.Fatalf("error = %v", ce)
	}
}

func asCorrectness(err error, target **CorrectnessError) bool {
	ce, ok := err.(*CorrectnessError)
	if ok {
		*target = ce
	}
	return ok
}

func TestCheckCorrectFlagsWrongOperation(t *testing.T) {
	types := Types{DefaultType: TypeRegister}
	a := abstract.New()
	a.Append(model.DoEvent(0, "reg", model.Add("e"), model.OKResponse()))
	if err := CheckCorrect(a, types); err == nil {
		t.Fatal("register must reject add")
	}
}

func TestAllows(t *testing.T) {
	cases := []struct {
		sp   Spec
		ok   []model.OpKind
		deny []model.OpKind
	}{
		{MVR{}, []model.OpKind{model.OpRead, model.OpWrite}, []model.OpKind{model.OpAdd, model.OpInc}},
		{Register{}, []model.OpKind{model.OpRead, model.OpWrite}, []model.OpKind{model.OpRemove}},
		{ORSet{}, []model.OpKind{model.OpRead, model.OpAdd, model.OpRemove}, []model.OpKind{model.OpWrite}},
		{Counter{}, []model.OpKind{model.OpRead, model.OpInc}, []model.OpKind{model.OpWrite}},
	}
	for _, tc := range cases {
		for _, k := range tc.ok {
			if !tc.sp.Allows(k) {
				t.Errorf("%s should allow %s", tc.sp.Type(), k)
			}
		}
		for _, k := range tc.deny {
			if tc.sp.Allows(k) {
				t.Errorf("%s should deny %s", tc.sp.Type(), k)
			}
		}
	}
}

func TestTypesMapping(t *testing.T) {
	types := MVRTypes().With("s", TypeORSet).With("c", TypeCounter)
	if types.Of("anything") != TypeMVR {
		t.Fatal("default type lost")
	}
	if types.Of("s") != TypeORSet || types.Of("c") != TypeCounter {
		t.Fatal("per-object types lost")
	}
	if (Types{}).Of("x") != TypeMVR {
		t.Fatal("zero Types should default to MVR")
	}
	if types.SpecOf("s").Type() != TypeORSet {
		t.Fatal("SpecOf wrong")
	}
}

func TestObjectTypeStrings(t *testing.T) {
	for typ, want := range map[ObjectType]string{
		TypeMVR: "mvr", TypeRegister: "register", TypeORSet: "orset", TypeCounter: "counter",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q", int(typ), got)
		}
	}
	if got := ObjectType(9).String(); got != "objecttype(9)" {
		t.Errorf("unknown type = %q", got)
	}
}

func TestForTypePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ForType(ObjectType(99))
}

func TestMutatorsReturnOK(t *testing.T) {
	types := MVRTypes().With("s", TypeORSet).With("c", TypeCounter)
	a := build(t, types, []row{
		{r: 0, obj: "x", op: model.Write("a")},
		{r: 0, obj: "s", op: model.Add("e"), vis: []int{0}},
		{r: 0, obj: "s", op: model.Remove("e"), vis: []int{0, 1}},
		{r: 0, obj: "c", op: model.Inc(1), vis: []int{0, 1, 2}},
	})
	for j := range a.H {
		if !a.H[j].Rval.OK {
			t.Errorf("mutator %d response = %s", j, a.H[j].Rval)
		}
	}
	if err := CheckCorrect(a, types); err != nil {
		t.Fatal(err)
	}
}
