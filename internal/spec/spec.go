// Package spec implements the replicated object specifications of the
// paper's Figure 1 — read/write (last-writer-wins) register, multi-valued
// register (MVR), and observed-remove set (ORset) — plus a PN-counter
// extension, and the correctness check of Definition 8.
//
// A replicated object specification determines the return value of each
// operation from its operation context (Definition 7): the prior same-object
// operations visible to it, with visibility restricted to them, plus the
// total order H to break ties where a specification needs one (only the
// register does).
package spec

import (
	"fmt"

	"repro/internal/abstract"
	"repro/internal/model"
)

// ObjectType selects which Figure 1 specification an object follows.
type ObjectType int

// Supported replicated object types.
const (
	TypeMVR ObjectType = iota + 1
	TypeRegister
	TypeORSet
	TypeCounter
)

// String returns the type name.
func (t ObjectType) String() string {
	switch t {
	case TypeMVR:
		return "mvr"
	case TypeRegister:
		return "register"
	case TypeORSet:
		return "orset"
	case TypeCounter:
		return "counter"
	default:
		return fmt.Sprintf("objecttype(%d)", int(t))
	}
}

// Spec is a replicated object specification: the function f_o of §3.1,
// mapping an operation context to the specified response of its target
// event.
type Spec interface {
	// Type returns the object type this specification describes.
	Type() ObjectType
	// Eval returns f_o(ctxt(A, e)) — the response the specification assigns
	// to the context's target event.
	Eval(ctx *abstract.Context) model.Response
	// Allows reports whether the operation kind is part of this type's
	// interface.
	Allows(k model.OpKind) bool
}

// ForType returns the specification for an object type.
func ForType(t ObjectType) Spec {
	switch t {
	case TypeMVR:
		return MVR{}
	case TypeRegister:
		return Register{}
	case TypeORSet:
		return ORSet{}
	case TypeCounter:
		return Counter{}
	default:
		panic(fmt.Sprintf("spec: unknown object type %d", int(t)))
	}
}

// MVR is the multi-valued register of Figure 1(b): a read returns the set of
// values written by the visible writes that are maximal under visibility —
// i.e. the currently conflicting writes.
type MVR struct{}

// Type implements Spec.
func (MVR) Type() ObjectType { return TypeMVR }

// Allows implements Spec.
func (MVR) Allows(k model.OpKind) bool { return k == model.OpRead || k == model.OpWrite }

// Eval implements Figure 1(b):
//
//	f(H', vis', e) = ok                                   if op(e)=write(v)
//	               = { v : ∃e1∈H' op(e1)=write(v) ∧
//	                   ¬∃e2∈H' op(e2)=write(·) ∧ e1-vis'->e2 }  if op(e)=read
func (MVR) Eval(ctx *abstract.Context) model.Response {
	if ctx.Target().Op.Kind == model.OpWrite {
		return model.OKResponse()
	}
	prior := ctx.Prior()
	var values []model.Value
	for i, e1 := range prior {
		if e1.Op.Kind != model.OpWrite {
			continue
		}
		dominated := false
		for j, e2 := range prior {
			if i != j && e2.Op.Kind == model.OpWrite && ctx.Vis(i, j) {
				dominated = true
				break
			}
		}
		if !dominated {
			values = append(values, e1.Op.Arg)
		}
	}
	return model.ReadResponse(values)
}

// Register is the read/write register of Figure 1(a): a read returns the
// value of the last visible write in H' — the total order H resolves
// conflicts between concurrent writes (last-writer-wins).
type Register struct{}

// Type implements Spec.
func (Register) Type() ObjectType { return TypeRegister }

// Allows implements Spec.
func (Register) Allows(k model.OpKind) bool { return k == model.OpRead || k == model.OpWrite }

// Eval implements Figure 1(a).
func (Register) Eval(ctx *abstract.Context) model.Response {
	if ctx.Target().Op.Kind == model.OpWrite {
		return model.OKResponse()
	}
	prior := ctx.Prior()
	for i := len(prior) - 1; i >= 0; i-- {
		if prior[i].Op.Kind == model.OpWrite {
			return model.ReadResponse([]model.Value{prior[i].Op.Arg})
		}
	}
	return model.ReadResponse(nil)
}

// ORSet is the observed-remove set of Figure 1(c): a read returns every
// value with a visible add that no visible remove observed — when an add and
// a remove of the same element are concurrent, the add wins.
type ORSet struct{}

// Type implements Spec.
func (ORSet) Type() ObjectType { return TypeORSet }

// Allows implements Spec.
func (ORSet) Allows(k model.OpKind) bool {
	return k == model.OpRead || k == model.OpAdd || k == model.OpRemove
}

// Eval implements Figure 1(c):
//
//	read returns { v : ∃e1∈H' op(e1)=add(v) ∧
//	               ¬∃e2∈H' op(e2)=remove(v) ∧ e1-vis'->e2 }
func (ORSet) Eval(ctx *abstract.Context) model.Response {
	if ctx.Target().Op.Kind != model.OpRead {
		return model.OKResponse()
	}
	prior := ctx.Prior()
	var values []model.Value
	for i, e1 := range prior {
		if e1.Op.Kind != model.OpAdd {
			continue
		}
		removed := false
		for j, e2 := range prior {
			if e2.Op.Kind == model.OpRemove && e2.Op.Arg == e1.Op.Arg && ctx.Vis(i, j) {
				removed = true
				break
			}
		}
		if !removed {
			values = append(values, e1.Op.Arg)
		}
	}
	return model.ReadResponse(values)
}

// Counter is a PN-counter (an extension beyond Figure 1, in the same
// framework): a read returns the sum of all visible increments.
type Counter struct{}

// Type implements Spec.
func (Counter) Type() ObjectType { return TypeCounter }

// Allows implements Spec.
func (Counter) Allows(k model.OpKind) bool { return k == model.OpRead || k == model.OpInc }

// Eval sums visible deltas for a read.
func (Counter) Eval(ctx *abstract.Context) model.Response {
	if ctx.Target().Op.Kind != model.OpRead {
		return model.OKResponse()
	}
	var total int64
	for _, e := range ctx.Prior() {
		if e.Op.Kind == model.OpInc {
			total += e.Op.Delta
		}
	}
	return model.CountResponse(total)
}

// Types maps objects to their specifications; objects not present default to
// DefaultType.
type Types struct {
	ByObject    map[model.ObjectID]ObjectType
	DefaultType ObjectType
}

// MVRTypes returns a Types where every object is an MVR (the paper's focus).
func MVRTypes() Types { return Types{DefaultType: TypeMVR} }

// Of returns the type of object o.
func (t Types) Of(o model.ObjectID) ObjectType {
	if typ, ok := t.ByObject[o]; ok {
		return typ
	}
	if t.DefaultType == 0 {
		return TypeMVR
	}
	return t.DefaultType
}

// SpecOf returns the specification of object o.
func (t Types) SpecOf(o model.ObjectID) Spec { return ForType(t.Of(o)) }

// With returns a copy of t with object o assigned type typ.
func (t Types) With(o model.ObjectID, typ ObjectType) Types {
	by := make(map[model.ObjectID]ObjectType, len(t.ByObject)+1)
	for k, v := range t.ByObject {
		by[k] = v
	}
	by[o] = typ
	return Types{ByObject: by, DefaultType: t.DefaultType}
}

// CorrectnessError reports the first event whose response deviates from its
// specification.
type CorrectnessError struct {
	Index int
	Event model.Event
	Want  model.Response
}

// Error implements error.
func (e *CorrectnessError) Error() string {
	return fmt.Sprintf("spec: H[%d] = %s: got %s, specification requires %s",
		e.Index, e.Event, e.Event.Rval, e.Want)
}

// CheckCorrect verifies Definition 8: for every object o, A|o belongs to
// S(o); equivalently, every event's response equals f_o applied to its
// operation context. It returns nil if A is correct, and a
// *CorrectnessError identifying the first deviation otherwise.
func CheckCorrect(a *abstract.Execution, types Types) error {
	for j, e := range a.H {
		sp := types.SpecOf(e.Object)
		if !sp.Allows(e.Op.Kind) {
			return fmt.Errorf("spec: H[%d] = %s: operation %s not in %s interface", j, e, e.Op.Kind, sp.Type())
		}
		want := sp.Eval(a.Context(j))
		if !e.Rval.Equal(want) {
			return &CorrectnessError{Index: j, Event: e, Want: want}
		}
	}
	return nil
}

// Specified returns the response the specification assigns to event j in A,
// from its current context. Generators use this to emit correct executions
// by construction.
func Specified(a *abstract.Execution, types Types, j int) model.Response {
	return types.SpecOf(a.H[j].Object).Eval(a.Context(j))
}
