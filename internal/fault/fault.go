// Package fault generates and enforces deterministic fault schedules:
// partitions, asymmetric link cuts, per-link delay/duplicate/reorder
// windows, and node crash/restart cycles, all derived from one root seed.
//
// Theorem 6's constructive recursion is exactly an adversarial delivery
// schedule — partitions and delays are the instrument the paper uses to
// force OCC-maximal behaviour — and Definition 3 (eventual delivery)
// requires that visibility survive them. A Schedule makes that adversary a
// first-class, replayable artifact: the same (seed, n, steps) always
// produces the identical directive timeline, so "the run survived chaos"
// becomes a checkable claim rather than an anecdote. The schedule is
// interpreted twice by the repository:
//
//   - internal/sim applies directives to its logical delivery queue (one
//     directive step per workload step);
//   - internal/cluster applies them to real TCP links through the Netem
//     frame interceptor, plus node stop/rejoin with history reload.
//
// Both interpretations model fail-stop crashes with a durable local log:
// the replica's recorded history survives the crash, the in-flight network
// state does not.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bench"
	"repro/internal/gen"
)

// Kind names a directive. Window-shaped faults are emitted as balanced
// begin/end pairs (Partition/Heal, LinkCut/LinkRestore, shaping/LinkClear,
// Crash/Restart), so a schedule read front to back is a complete timeline.
type Kind string

const (
	// KindPartition splits the cluster into Groups; messages flow only
	// within a group (nodes absent from every group are isolated).
	KindPartition Kind = "partition"
	// KindHeal restores full connectivity (ends a partition).
	KindHeal Kind = "heal"
	// KindLinkCut blackholes the directed link From→To.
	KindLinkCut Kind = "link-cut"
	// KindLinkRestore reopens the directed link From→To.
	KindLinkRestore Kind = "link-restore"
	// KindLinkDelay delays frames on From→To (DelaySteps ticks each).
	KindLinkDelay Kind = "link-delay"
	// KindLinkDup duplicates every frame on From→To.
	KindLinkDup Kind = "link-dup"
	// KindLinkReorder swaps adjacent frames on From→To.
	KindLinkReorder Kind = "link-reorder"
	// KindLinkRate caps the bandwidth of From→To at RateKBps.
	KindLinkRate Kind = "link-rate"
	// KindLinkClear ends the shaping window (delay/dup/reorder/rate) on
	// From→To.
	KindLinkClear Kind = "link-clear"
	// KindCrash fail-stops Node (its durable history survives).
	KindCrash Kind = "crash"
	// KindRestart rejoins Node, reloading its history and Lamport clock.
	KindRestart Kind = "restart"
	// KindLeave removes Node from the membership view: it announces its
	// departure, peers drop their replication links to it (including
	// unacked queues — a leave, unlike a crash, releases retransmission
	// obligations), and its later KindJoin must catch up via anti-entropy.
	KindLeave Kind = "leave"
	// KindJoin readmits a departed Node through the join protocol: a new
	// epoch, a Merkle digest exchange, and range pulls for whatever its
	// history is missing. Balanced schedules pair every leave with a join.
	KindJoin Kind = "join"
)

// Directive is one timed fault event. Step is a logical tick: the simulator
// maps it to a workload step, the cluster maps it to Step×tick wall time.
type Directive struct {
	Step int  `json:"step"`
	Kind Kind `json:"kind"`

	// Groups is the partition layout (KindPartition only).
	Groups [][]int `json:"groups,omitempty"`
	// From and To name the directed link of link faults.
	From int `json:"from"`
	To   int `json:"to"`
	// Node is the subject of crash/restart directives.
	Node int `json:"node"`
	// DelaySteps is the per-frame delay of KindLinkDelay, in ticks.
	DelaySteps int `json:"delay_steps,omitempty"`
	// JitterSteps widens KindLinkDelay into a distribution: each frame
	// draws an extra delay uniformly from [0, JitterSteps] ticks, so the
	// two directions of a link can carry different delay distributions.
	JitterSteps int `json:"jitter_steps,omitempty"`
	// RateKBps is the bandwidth cap of KindLinkRate, in KiB per second of
	// wall time (the emulator's serialization model; the simulator treats
	// rate windows as a no-op since its delivery is not byte-timed).
	RateKBps int `json:"rate_kbps,omitempty"`
}

// detail renders the directive's parameters for the fault log.
func (d Directive) detail() string {
	switch d.Kind {
	case KindPartition:
		return fmt.Sprintf("groups=%v", d.Groups)
	case KindHeal:
		return "all links"
	case KindLinkDelay:
		if d.JitterSteps > 0 {
			return fmt.Sprintf("r%d->r%d +%d±%d ticks", d.From, d.To, d.DelaySteps, d.JitterSteps)
		}
		return fmt.Sprintf("r%d->r%d +%d ticks", d.From, d.To, d.DelaySteps)
	case KindLinkRate:
		return fmt.Sprintf("r%d->r%d %dKBps", d.From, d.To, d.RateKBps)
	case KindLinkCut, KindLinkRestore, KindLinkDup, KindLinkReorder, KindLinkClear:
		return fmt.Sprintf("r%d->r%d", d.From, d.To)
	case KindCrash, KindRestart, KindLeave, KindJoin:
		return fmt.Sprintf("r%d", d.Node)
	}
	return ""
}

// Schedule is a deterministic fault timeline for an n-node run of Steps
// logical ticks. Directives are sorted by Step (ties keep generation
// order), so enforcement is a single forward scan.
type Schedule struct {
	Seed       int64       `json:"seed"`
	N          int         `json:"n"`
	Steps      int         `json:"steps"`
	Directives []Directive `json:"directives"`
}

// Counts tallies the schedule by fault family (partitions, crashes, link
// windows) for reports and assertions.
func (s Schedule) Counts() (partitions, crashes, linkFaults int) {
	for _, d := range s.Directives {
		switch d.Kind {
		case KindPartition:
			partitions++
		case KindCrash:
			crashes++
		case KindLinkCut, KindLinkDelay, KindLinkDup, KindLinkReorder, KindLinkRate:
			linkFaults++
		}
	}
	return partitions, crashes, linkFaults
}

// Table renders the schedule as the run's fault log: one row per directive,
// built purely from the schedule, so the same seed emits a byte-identical
// log (text or JSON Lines via bench.Output).
func (s Schedule) Table() *bench.Table {
	t := bench.NewTable(
		fmt.Sprintf("fault schedule: seed %d, %d nodes, %d ticks", s.Seed, s.N, s.Steps),
		"step", "directive", "detail")
	for _, d := range s.Directives {
		t.AddRow(d.Step, string(d.Kind), d.detail())
	}
	return t
}

// CheckBalanced verifies the window-balance invariants Generate guarantees
// by construction, on any schedule: every directive lies inside the
// timeline, every window-opening directive is matched by a closing one
// (partitions by heals, cuts by restores, shaping by clears, crashes by
// restarts — the pairing the fault-log reader relies on), no node crashes
// while already down, no link fault targets a self-link, and delay/rate
// windows carry positive parameters. The chaos search asserts this over
// every schedule it evaluates, so an adversarially chosen seed can never
// smuggle in a run that fails to heal itself (eventual delivery,
// Definition 3, must survive the search).
func (s Schedule) CheckBalanced() error {
	openParts := 0
	down := map[int]bool{}
	left := map[int]bool{}
	openCuts := map[[2]int]int{}
	openShapes := map[[2]int]int{}
	for i, d := range s.Directives {
		if d.Step < 0 || (s.Steps > 0 && d.Step >= s.Steps) {
			return fmt.Errorf("fault: directive %d outside timeline [0,%d): %+v", i, s.Steps, d)
		}
		link := [2]int{d.From, d.To}
		switch d.Kind {
		case KindPartition:
			for _, g := range d.Groups {
				if len(g) == 0 {
					return fmt.Errorf("fault: directive %d: empty partition group", i)
				}
			}
			openParts++
		case KindHeal:
			if openParts == 0 {
				return fmt.Errorf("fault: directive %d: heal without an open partition", i)
			}
			openParts--
		case KindCrash:
			if down[d.Node] {
				return fmt.Errorf("fault: directive %d: r%d crashed while down", i, d.Node)
			}
			if left[d.Node] {
				return fmt.Errorf("fault: directive %d: r%d crashed while departed", i, d.Node)
			}
			down[d.Node] = true
		case KindRestart:
			if !down[d.Node] {
				return fmt.Errorf("fault: directive %d: restart of r%d while up", i, d.Node)
			}
			down[d.Node] = false
		case KindLeave:
			if left[d.Node] {
				return fmt.Errorf("fault: directive %d: r%d left while departed", i, d.Node)
			}
			if down[d.Node] {
				return fmt.Errorf("fault: directive %d: r%d left while down", i, d.Node)
			}
			left[d.Node] = true
		case KindJoin:
			if !left[d.Node] {
				return fmt.Errorf("fault: directive %d: join of r%d while present", i, d.Node)
			}
			left[d.Node] = false
		case KindLinkCut:
			if d.From == d.To {
				return fmt.Errorf("fault: directive %d: self link %+v", i, d)
			}
			openCuts[link]++
		case KindLinkRestore:
			if openCuts[link] == 0 {
				return fmt.Errorf("fault: directive %d: restore of uncut link %+v", i, d)
			}
			if openCuts[link]--; openCuts[link] == 0 {
				delete(openCuts, link)
			}
		case KindLinkDelay, KindLinkDup, KindLinkReorder, KindLinkRate:
			if d.From == d.To {
				return fmt.Errorf("fault: directive %d: self link %+v", i, d)
			}
			if d.Kind == KindLinkDelay && d.DelaySteps < 1 {
				return fmt.Errorf("fault: directive %d: delay window without delay", i)
			}
			if d.Kind == KindLinkRate && d.RateKBps < 1 {
				return fmt.Errorf("fault: directive %d: rate window without a rate", i)
			}
			openShapes[link]++
		case KindLinkClear:
			if openShapes[link] == 0 {
				return fmt.Errorf("fault: directive %d: clear of unshaped link %+v", i, d)
			}
			if openShapes[link]--; openShapes[link] == 0 {
				delete(openShapes, link)
			}
		default:
			return fmt.Errorf("fault: directive %d: unknown kind %q", i, d.Kind)
		}
	}
	if openParts > 0 {
		return fmt.Errorf("fault: %d partition windows never healed", openParts)
	}
	for r, d := range down {
		if d {
			return fmt.Errorf("fault: r%d never restarted", r)
		}
	}
	for r, l := range left {
		if l {
			return fmt.Errorf("fault: r%d never rejoined", r)
		}
	}
	if len(openCuts) > 0 {
		return fmt.Errorf("fault: %d cut windows never restored", len(openCuts))
	}
	if len(openShapes) > 0 {
		return fmt.Errorf("fault: %d shaping windows never cleared", len(openShapes))
	}
	return nil
}

// Config parameterizes Generate.
type Config struct {
	// Seed is the root seed; the schedule stream is split from it with
	// gen.SplitSeed, so workload streams split from the same root stay
	// decorrelated.
	Seed int64
	// N is the cluster size (at least 2).
	N int
	// Steps is the logical timeline length.
	Steps int
	// Partitions, Crashes, and LinkFaults are how many windows of each
	// family to schedule. Crashes are capped at N-1 so the cluster never
	// loses every node at once.
	Partitions int
	Crashes    int
	LinkFaults int
	// Churns is how many leave→join windows to schedule. Churn victims are
	// drawn disjoint from crash victims (crashes+churns capped at N),
	// because a leave releases peers' retransmission obligations while a
	// crash does not — overlapping the two on one node would make the
	// schedule ambiguous about which recovery path is under test. Churn
	// windows may overlap crash windows of other nodes; rejoining is
	// retried until a seed is reachable, so the pairing still closes.
	Churns int
}

// scheduleStream is the gen.SplitSeed stream index reserved for fault
// schedules, keeping them decorrelated from worker streams 0..k.
const scheduleStream = -7001

// Generate derives the fault schedule for cfg. It is a pure function of the
// config: the same config always yields the identical schedule.
func Generate(cfg Config) Schedule {
	if cfg.N < 2 || cfg.Steps < 8 {
		return Schedule{Seed: cfg.Seed, N: cfg.N, Steps: cfg.Steps}
	}
	rng := rand.New(rand.NewSource(gen.SplitSeed(cfg.Seed, scheduleStream)))
	s := Schedule{Seed: cfg.Seed, N: cfg.N, Steps: cfg.Steps}
	add := func(d Directive) { s.Directives = append(s.Directives, d) }

	// window picks a [start, end) fault window that closes before the
	// timeline ends, so every schedule heals itself.
	window := func() (start, end int) {
		start = rng.Intn(cfg.Steps * 2 / 3)
		dur := 1 + rng.Intn(cfg.Steps/4+1)
		end = start + dur
		if end >= cfg.Steps {
			end = cfg.Steps - 1
		}
		if end <= start {
			end = start + 1
		}
		return start, end
	}

	for i := 0; i < cfg.Partitions; i++ {
		start, end := window()
		// Random two-sided split with both sides non-empty.
		perm := rng.Perm(cfg.N)
		cut := 1 + rng.Intn(cfg.N-1)
		a, b := perm[:cut], perm[cut:]
		ga := append([]int(nil), a...)
		gb := append([]int(nil), b...)
		sort.Ints(ga)
		sort.Ints(gb)
		add(Directive{Step: start, Kind: KindPartition, Groups: [][]int{ga, gb}})
		add(Directive{Step: end, Kind: KindHeal})
	}

	crashes := cfg.Crashes
	if crashes > cfg.N-1 {
		crashes = cfg.N - 1
	}
	// Distinct victims per crash window so no node crashes while down.
	victims := rng.Perm(cfg.N)
	for i := 0; i < crashes; i++ {
		start, end := window()
		add(Directive{Step: start, Kind: KindCrash, Node: victims[i]})
		add(Directive{Step: end, Kind: KindRestart, Node: victims[i]})
	}

	shapes := []Kind{KindLinkDelay, KindLinkDup, KindLinkReorder, KindLinkCut, KindLinkRate}
	for i := 0; i < cfg.LinkFaults; i++ {
		start, end := window()
		from := rng.Intn(cfg.N)
		to := rng.Intn(cfg.N - 1)
		if to >= from {
			to++
		}
		kind := shapes[rng.Intn(len(shapes))]
		d := Directive{Step: start, Kind: kind, From: from, To: to}
		endKind := KindLinkClear
		switch kind {
		case KindLinkCut:
			endKind = KindLinkRestore
		case KindLinkDelay:
			// Each direction draws its own base delay and jitter width, so
			// the two halves of a link carry asymmetric distributions.
			d.DelaySteps = 1 + rng.Intn(3)
			d.JitterSteps = rng.Intn(3)
		case KindLinkRate:
			d.RateKBps = 8 << rng.Intn(4) // 8..64 KiB/s
		}
		add(d)
		add(Directive{Step: end, Kind: endKind, From: from, To: to})
	}

	// Churn windows draw their victims from the tail of the same
	// permutation the crash loop consumed the head of — disjoint by
	// construction, and with zero extra RNG draws when Churns is zero, so
	// every pre-churn schedule stays byte-identical.
	churns := cfg.Churns
	if max := cfg.N - crashes; churns > max {
		churns = max
	}
	for i := 0; i < churns; i++ {
		start, end := window()
		add(Directive{Step: start, Kind: KindLeave, Node: victims[crashes+i]})
		add(Directive{Step: end, Kind: KindJoin, Node: victims[crashes+i]})
	}

	sort.SliceStable(s.Directives, func(i, j int) bool {
		return s.Directives[i].Step < s.Directives[j].Step
	})
	return s
}
