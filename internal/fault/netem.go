package fault

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/gen"
)

// ErrLinkCut is the write error surfaced on a cut link. The cluster's
// senders treat it like any dead connection: they tear the link down and
// redial with backoff, so a healed cut recovers through the ordinary
// reconnect/retransmit path.
var ErrLinkCut = errors.New("fault: link cut")

type linkState struct {
	cut     bool
	delay   time.Duration
	jitter  time.Duration // uniform extra delay in [0, jitter] per frame
	rate    int           // bandwidth cap in bytes/sec (0 = unlimited)
	dup     bool
	reorder bool
}

// Netem is the shared in-process network emulator of one cluster run: a
// matrix of directed link states that conn interceptors consult on every
// frame. Directives mutate it; the data path only reads it. Crash and
// restart directives are not Netem's business — process lifecycle belongs
// to the supervisor applying the schedule.
type Netem struct {
	mu    sync.Mutex
	n     int
	links [][]linkState
}

// NewNetem creates an emulator for an n-node cluster with all links clean.
func NewNetem(n int) *Netem {
	links := make([][]linkState, n)
	for i := range links {
		links[i] = make([]linkState, n)
	}
	return &Netem{n: n, links: links}
}

// Apply enforces one directive, mapping DelaySteps/JitterSteps to wall time
// with tick and RateKBps to bytes per second. Crash/restart directives are
// ignored (the supervisor owns them).
func (e *Netem) Apply(d Directive, tick time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	inRange := func(i int) bool { return i >= 0 && i < e.n }
	switch d.Kind {
	case KindPartition:
		group := make(map[int]int)
		for gi, g := range d.Groups {
			for _, r := range g {
				group[r] = gi + 1
			}
		}
		for i := 0; i < e.n; i++ {
			for j := 0; j < e.n; j++ {
				gi, gj := group[i], group[j]
				e.links[i][j].cut = i != j && (gi != gj || gi == 0)
			}
		}
	case KindHeal:
		for i := range e.links {
			for j := range e.links[i] {
				e.links[i][j].cut = false
			}
		}
	case KindLinkCut:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].cut = true
		}
	case KindLinkRestore:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].cut = false
		}
	case KindLinkDelay:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].delay = time.Duration(d.DelaySteps) * tick
			e.links[d.From][d.To].jitter = time.Duration(d.JitterSteps) * tick
		}
	case KindLinkRate:
		if inRange(d.From) && inRange(d.To) && d.RateKBps > 0 {
			e.links[d.From][d.To].rate = d.RateKBps * 1024
		}
	case KindLinkDup:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].dup = true
		}
	case KindLinkReorder:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].reorder = true
		}
	case KindLinkClear:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].delay = 0
			e.links[d.From][d.To].jitter = 0
			e.links[d.From][d.To].rate = 0
			e.links[d.From][d.To].dup = false
			e.links[d.From][d.To].reorder = false
		}
	}
}

// Cut reports whether the directed link from→to is currently blackholed
// (dial gates consult this to avoid churning against a cut link).
func (e *Netem) Cut(from, to int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if from < 0 || from >= e.n || to < 0 || to >= e.n {
		return false
	}
	return e.links[from][to].cut
}

// Heal clears every link fault (used by drivers to guarantee the
// post-schedule network is clean before asserting convergence).
func (e *Netem) Heal() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.links {
		for j := range e.links[i] {
			e.links[i][j] = linkState{}
		}
	}
}

func (e *Netem) state(from, to int) linkState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if from < 0 || from >= e.n || to < 0 || to >= e.n {
		return linkState{}
	}
	return e.links[from][to]
}

// jitterStream decorrelates per-link jitter draws from every other seeded
// stream in the repository.
const jitterStream = -7003

// WrapConn interposes the emulator on the write half of conn, shaping the
// frames the local endpoint sends in the direction from→to. All cluster
// traffic is wire.WriteFrame length-delimited, so the wrapper reassembles
// frames from the byte stream (4-byte big-endian length prefix) and applies
// the link's current faults per frame: a cut fails the write synchronously
// (the sender's reconnect/retransmit machinery recovers after the link is
// restored), delay/jitter/rate stamp the frame with a delivery deadline and
// a background writer ships it when the deadline arrives — the caller's
// write path never sleeps — dup enqueues the frame twice, reorder holds a
// frame back and enqueues it after its successor. The first frame of a
// connection (the replication hello) always passes unshaped so a connection
// can at least identify itself. Reads pass through untouched — the reverse
// direction is shaped by the peer's own wrapper, which is how the two
// directions of one link carry asymmetric delay distributions.
func (e *Netem) WrapConn(conn net.Conn, from, to int) net.Conn {
	return &shapedConn{
		Conn: conn, em: e, from: from, to: to,
		rng: rand.New(rand.NewSource(gen.SplitSeed(int64(from)<<16|int64(to), jitterStream))),
	}
}

// timedFrame is one queued frame stamped with its delivery deadline.
type timedFrame struct {
	data []byte
	due  time.Time
}

type shapedConn struct {
	net.Conn
	em       *Netem
	from, to int

	mu      sync.Mutex
	buf     []byte       // bytes of an incomplete frame
	held    []byte       // frame held back by an open reorder window
	wrote   bool         // the connection's first frame has shipped
	q       []timedFrame // deadline-stamped frames awaiting delivery
	lastDue time.Time    // FIFO floor: a frame never overtakes its predecessor
	running bool         // background writer is draining q
	werr    error        // sticky error: the underlying conn failed
	timeout time.Duration
	rng     *rand.Rand // jitter draws; guarded by mu
}

// Write buffers b until whole frames are available, then stamps each frame
// with a delivery deadline and hands it to the background writer. Only a
// cut link fails synchronously; everything else reports b fully written
// immediately — a later delivery failure is indistinguishable from a
// connection loss, which the cluster's reliability layer already absorbs
// (unacked updates are retransmitted on a fresh connection).
func (c *shapedConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.werr != nil {
		return 0, c.werr
	}
	c.buf = append(c.buf, b...)
	for {
		frame, ok := c.splitFrame()
		if !ok {
			return len(b), nil
		}
		if err := c.enqueueFrame(frame); err != nil {
			return 0, err
		}
	}
}

// splitFrame pops one complete length-delimited frame off the buffer.
func (c *shapedConn) splitFrame() ([]byte, bool) {
	if len(c.buf) < 4 {
		return nil, false
	}
	size := int(binary.BigEndian.Uint32(c.buf[:4]))
	if len(c.buf) < 4+size {
		return nil, false
	}
	frame := append([]byte(nil), c.buf[:4+size]...)
	c.buf = c.buf[4+size:]
	return frame, true
}

// enqueueFrame applies the link's current fault state to one frame: cut
// fails, reorder holds, dup doubles, delay/jitter/rate pick the deadline.
// Called with c.mu held.
func (c *shapedConn) enqueueFrame(frame []byte) error {
	st := c.em.state(c.from, c.to)
	first := !c.wrote
	c.wrote = true
	if st.cut {
		c.held = nil
		return ErrLinkCut
	}
	if !first && st.reorder && c.held == nil {
		// Hold this frame; the next one overtakes it. If the connection
		// dies first, the hold is dropped with it and retransmission
		// re-sends the frame on the next connection.
		c.held = frame
		return nil
	}
	c.push(frame, st, first)
	if st.dup && !first {
		c.push(frame, st, first)
	}
	if c.held != nil {
		held := c.held
		c.held = nil
		c.push(held, st, first)
	}
	return nil
}

// push stamps one frame with its delivery deadline and starts the writer
// if it is idle. The deadline is now + delay + jitter draw, floored at the
// previous frame's deadline (FIFO), plus the frame's serialization time
// under an open bandwidth cap — successive frames queue behind each other
// at rate bytes/sec, which is the cap's whole effect. Called with c.mu
// held.
func (c *shapedConn) push(frame []byte, st linkState, first bool) {
	due := time.Now()
	if !first {
		if st.delay > 0 {
			due = due.Add(st.delay)
		}
		if st.jitter > 0 {
			due = due.Add(time.Duration(c.rng.Int63n(int64(st.jitter) + 1)))
		}
	}
	if due.Before(c.lastDue) {
		due = c.lastDue
	}
	if !first && st.rate > 0 {
		due = due.Add(time.Duration(int64(len(frame)) * int64(time.Second) / int64(st.rate)))
	}
	c.lastDue = due
	c.q = append(c.q, timedFrame{data: frame, due: due})
	if !c.running {
		c.running = true
		go c.drain()
	}
}

// drain is the background writer: it sleeps until the head frame's
// deadline, writes it, and exits once the queue empties (a later push
// restarts it) or the underlying conn fails. On failure it records the
// sticky error and closes the underlying conn, so the endpoint's reader
// observes the death and the ordinary teardown/reconnect path runs.
func (c *shapedConn) drain() {
	for {
		c.mu.Lock()
		if c.werr != nil || len(c.q) == 0 {
			c.running = false
			c.mu.Unlock()
			return
		}
		head := c.q[0]
		if wait := time.Until(head.due); wait > 0 {
			c.mu.Unlock()
			time.Sleep(wait)
			continue
		}
		c.q = c.q[1:]
		timeout := c.timeout
		c.mu.Unlock()

		if timeout > 0 {
			c.Conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		if _, err := c.Conn.Write(head.data); err != nil {
			c.mu.Lock()
			c.werr = err
			c.q = nil
			c.running = false
			c.mu.Unlock()
			c.Conn.Close()
			return
		}
	}
}

// SetWriteDeadline records the caller's intended write timeout instead of
// arming the underlying conn: queued frames are written later than the
// caller's Write call, so the background writer re-derives a fresh
// deadline of the same duration at actual write time.
func (c *shapedConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.IsZero() {
		c.timeout = 0
	} else {
		c.timeout = time.Until(t)
	}
	return nil
}
