package fault

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"
)

// ErrLinkCut is the write error surfaced on a cut link. The cluster's
// senders treat it like any dead connection: they tear the link down and
// redial with backoff, so a healed cut recovers through the ordinary
// reconnect/retransmit path.
var ErrLinkCut = errors.New("fault: link cut")

type linkState struct {
	cut     bool
	delay   time.Duration
	dup     bool
	reorder bool
}

// Netem is the shared in-process network emulator of one cluster run: a
// matrix of directed link states that conn interceptors consult on every
// frame. Directives mutate it; the data path only reads it. Crash and
// restart directives are not Netem's business — process lifecycle belongs
// to the supervisor applying the schedule.
type Netem struct {
	mu    sync.Mutex
	n     int
	links [][]linkState
}

// NewNetem creates an emulator for an n-node cluster with all links clean.
func NewNetem(n int) *Netem {
	links := make([][]linkState, n)
	for i := range links {
		links[i] = make([]linkState, n)
	}
	return &Netem{n: n, links: links}
}

// Apply enforces one directive, mapping DelaySteps to wall time with tick.
// Crash/restart directives are ignored (the supervisor owns them).
func (e *Netem) Apply(d Directive, tick time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	inRange := func(i int) bool { return i >= 0 && i < e.n }
	switch d.Kind {
	case KindPartition:
		group := make(map[int]int)
		for gi, g := range d.Groups {
			for _, r := range g {
				group[r] = gi + 1
			}
		}
		for i := 0; i < e.n; i++ {
			for j := 0; j < e.n; j++ {
				gi, gj := group[i], group[j]
				e.links[i][j].cut = i != j && (gi != gj || gi == 0)
			}
		}
	case KindHeal:
		for i := range e.links {
			for j := range e.links[i] {
				e.links[i][j].cut = false
			}
		}
	case KindLinkCut:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].cut = true
		}
	case KindLinkRestore:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].cut = false
		}
	case KindLinkDelay:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].delay = time.Duration(d.DelaySteps) * tick
		}
	case KindLinkDup:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].dup = true
		}
	case KindLinkReorder:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].reorder = true
		}
	case KindLinkClear:
		if inRange(d.From) && inRange(d.To) {
			e.links[d.From][d.To].delay = 0
			e.links[d.From][d.To].dup = false
			e.links[d.From][d.To].reorder = false
		}
	}
}

// Cut reports whether the directed link from→to is currently blackholed
// (dial gates consult this to avoid churning against a cut link).
func (e *Netem) Cut(from, to int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if from < 0 || from >= e.n || to < 0 || to >= e.n {
		return false
	}
	return e.links[from][to].cut
}

// Heal clears every link fault (used by drivers to guarantee the
// post-schedule network is clean before asserting convergence).
func (e *Netem) Heal() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.links {
		for j := range e.links[i] {
			e.links[i][j] = linkState{}
		}
	}
}

func (e *Netem) state(from, to int) linkState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if from < 0 || from >= e.n || to < 0 || to >= e.n {
		return linkState{}
	}
	return e.links[from][to]
}

// WrapConn interposes the emulator on the write half of conn, shaping the
// frames the local endpoint sends in the direction from→to. All cluster
// traffic is wire.WriteFrame length-delimited, so the wrapper reassembles
// frames from the byte stream (4-byte big-endian length prefix) and applies
// the link's current faults per frame: a cut fails the write (the sender's
// reconnect/retransmit machinery recovers after the link is restored), a
// delay sleeps before shipping, dup ships the frame twice, reorder holds a
// frame back and ships it after its successor. The first frame of a
// connection (the replication hello) always passes unshaped so a connection
// can at least identify itself. Reads pass through untouched — the reverse
// direction is shaped by the peer's own wrapper.
func (e *Netem) WrapConn(conn net.Conn, from, to int) net.Conn {
	return &shapedConn{Conn: conn, em: e, from: from, to: to}
}

type shapedConn struct {
	net.Conn
	em       *Netem
	from, to int

	mu    sync.Mutex
	buf   []byte // bytes of an incomplete frame
	held  []byte // frame held back by an open reorder window
	wrote bool   // the connection's first frame has shipped
}

// Write buffers b until whole frames are available, then ships each frame
// through the link's fault state. It reports b fully written even when a
// frame is held or still buffering: a later failure is indistinguishable
// from a connection loss, which the cluster's reliability layer already
// absorbs (unacked updates are retransmitted on a fresh connection).
func (c *shapedConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, b...)
	for {
		frame, ok := c.splitFrame()
		if !ok {
			return len(b), nil
		}
		if err := c.shipFrame(frame); err != nil {
			return 0, err
		}
	}
}

// splitFrame pops one complete length-delimited frame off the buffer.
func (c *shapedConn) splitFrame() ([]byte, bool) {
	if len(c.buf) < 4 {
		return nil, false
	}
	size := int(binary.BigEndian.Uint32(c.buf[:4]))
	if len(c.buf) < 4+size {
		return nil, false
	}
	frame := append([]byte(nil), c.buf[:4+size]...)
	c.buf = c.buf[4+size:]
	return frame, true
}

func (c *shapedConn) shipFrame(frame []byte) error {
	st := c.em.state(c.from, c.to)
	first := !c.wrote
	c.wrote = true
	if st.cut {
		c.held = nil
		return ErrLinkCut
	}
	if !first {
		if st.delay > 0 {
			time.Sleep(st.delay)
		}
		if st.reorder && c.held == nil {
			// Hold this frame; the next one overtakes it. If the
			// connection dies first, the hold is dropped with it and
			// retransmission re-sends the frame on the next connection.
			c.held = frame
			return nil
		}
	}
	if _, err := c.Conn.Write(frame); err != nil {
		return err
	}
	if st.dup && !first {
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
	}
	if c.held != nil {
		held := c.held
		c.held = nil
		if _, err := c.Conn.Write(held); err != nil {
			return err
		}
	}
	return nil
}
