package fault

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/wire"
)

// shapedPipe wires a shaped writer to a frame reader for one direction.
func shapedPipe(t *testing.T, em *Netem) (net.Conn, <-chan []byte) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	w := em.WrapConn(a, 0, 1)
	got := pipeFrames(t, b)
	if _, err := wire.WriteFrame(w, []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for hello")
	}
	return w, got
}

// TestShapedConnDelayDoesNotBlockWriter is the regression test for the
// blocking-sleep delay enforcement: a delay window must stamp frames with
// delivery deadlines, not sleep in the caller's write path. Before the
// fix, each Write slept the full delay while holding the conn lock, so n
// back-to-back frames cost n×delay to write AND n×delay to arrive; now the
// writes return immediately and the frames' delays overlap.
func TestShapedConnDelayDoesNotBlockWriter(t *testing.T) {
	em := NewNetem(2)
	w, got := shapedPipe(t, em)

	em.Apply(Directive{Kind: KindLinkDelay, From: 0, To: 1, DelaySteps: 100}, time.Millisecond)
	start := time.Now()
	const frames = 4
	for i := 0; i < frames; i++ {
		if _, err := wire.WriteFrame(w, []byte(fmt.Sprintf("u%d", i)), 0); err != nil {
			t.Fatalf("write u%d: %v", i, err)
		}
	}
	if wrote := time.Since(start); wrote > 60*time.Millisecond {
		t.Fatalf("writes blocked for %v; delay must not sleep in the writer path", wrote)
	}
	for i := 0; i < frames; i++ {
		select {
		case f := <-got:
			if want := fmt.Sprintf("u%d", i); string(f) != want {
				t.Fatalf("frame %d: got %q, want %q (FIFO violated)", i, f, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout waiting for frame %d", i)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond {
		t.Fatalf("frames arrived after %v; the 100ms delay window was not enforced", elapsed)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("frames took %v; delays serialized instead of overlapping", elapsed)
	}
}

// TestShapedConnBandwidthCap: a rate window spaces frames by their
// serialization time, while the writes themselves return immediately.
func TestShapedConnBandwidthCap(t *testing.T) {
	em := NewNetem(2)
	w, got := shapedPipe(t, em)

	// 2 KiB/s with 512-byte frames (508 payload + 4 header): 250ms each.
	em.Apply(Directive{Kind: KindLinkRate, From: 0, To: 1, RateKBps: 2}, time.Millisecond)
	payload := bytes.Repeat([]byte{'x'}, 508)
	start := time.Now()
	const frames = 3
	for i := 0; i < frames; i++ {
		if _, err := wire.WriteFrame(w, payload, 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if wrote := time.Since(start); wrote > 60*time.Millisecond {
		t.Fatalf("writes blocked for %v under a rate cap", wrote)
	}
	for i := 0; i < frames; i++ {
		select {
		case f := <-got:
			if len(f) != len(payload) {
				t.Fatalf("frame %d: %d bytes, want %d", i, len(f), len(payload))
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timeout waiting for frame %d", i)
		}
	}
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Fatalf("3 frames of 512B passed a 2KiB/s cap in %v; cap not enforced", elapsed)
	}
}

// TestShapedConnJitterAsymmetric: delay windows carry per-direction
// distributions — jitter applies only to the configured direction, frames
// stay FIFO under jitter, and link-clear removes the whole distribution.
func TestShapedConnJitterAsymmetric(t *testing.T) {
	em := NewNetem(2)
	em.Apply(Directive{Kind: KindLinkDelay, From: 0, To: 1, DelaySteps: 2, JitterSteps: 3}, time.Millisecond)
	fwd, rev := em.state(0, 1), em.state(1, 0)
	if fwd.delay != 2*time.Millisecond || fwd.jitter != 3*time.Millisecond {
		t.Fatalf("forward distribution = %v±%v, want 2ms±3ms", fwd.delay, fwd.jitter)
	}
	if rev.delay != 0 || rev.jitter != 0 {
		t.Fatalf("reverse direction shaped too: %+v", rev)
	}

	w, got := shapedPipe(t, em)
	const frames = 8
	for i := 0; i < frames; i++ {
		if _, err := wire.WriteFrame(w, []byte(fmt.Sprintf("j%d", i)), 0); err != nil {
			t.Fatalf("write j%d: %v", i, err)
		}
	}
	for i := 0; i < frames; i++ {
		select {
		case f := <-got:
			if want := fmt.Sprintf("j%d", i); string(f) != want {
				t.Fatalf("frame %d: got %q, want %q (jitter broke FIFO)", i, f, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout waiting for frame %d", i)
		}
	}

	em.Apply(Directive{Kind: KindLinkClear, From: 0, To: 1}, time.Millisecond)
	if st := em.state(0, 1); st.delay != 0 || st.jitter != 0 || st.rate != 0 {
		t.Fatalf("link-clear left shaping behind: %+v", st)
	}
}

// TestObserverSpans: the observer turns directive timelines into
// deterministic span metrics and aggregates engine counters.
func TestObserverSpans(t *testing.T) {
	o := NewObserver(3)
	o.Directive(Directive{Step: 1, Kind: KindLinkCut, From: 0, To: 1})
	o.Directive(Directive{Step: 2, Kind: KindCrash, Node: 1})
	o.Directive(Directive{Step: 3, Kind: KindPartition, Groups: [][]int{{0}, {1, 2}}})
	o.Directive(Directive{Step: 4, Kind: KindLinkRestore, From: 0, To: 1})
	o.Directive(Directive{Step: 5, Kind: KindLinkDelay, From: 1, To: 2, DelaySteps: 2})
	o.Directive(Directive{Step: 7, Kind: KindRestart, Node: 1})
	o.Directive(Directive{Step: 8, Kind: KindLinkClear, From: 1, To: 2})
	o.Directive(Directive{Step: 9, Kind: KindHeal})
	o.AddBlocked(3)
	o.AddDupCopies(2)
	o.AddRetransmits(5)
	o.AddReconnects(1)
	o.AddDupFrames(4)
	o.AddGapFrames(6)
	o.ObserveQuiesce(4, 17)
	o.SetViolations(1)
	o.Finish(10)

	m := o.Metrics()
	want := Metrics{
		Downtime:      []int64{0, 5, 0},
		PartitionSpan: 6,
		LinkFaultSpan: 6, // cut 1..4 plus delay 5..8
		Blocked:       3, DupCopies: 2,
		Retransmits: 5, Reconnects: 1,
		DupFrames: 4, GapFrames: 6,
		QuiesceRounds: 4, QuiesceDeliveries: 17,
		Violations: 1,
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("metrics = %+v, want %+v", m, want)
	}
	if m.TotalDowntime() != 5 {
		t.Fatalf("TotalDowntime = %d, want 5", m.TotalDowntime())
	}
}

// TestObserverFinishAndNil: Finish closes dangling windows; every method
// is a no-op on a nil observer.
func TestObserverFinishAndNil(t *testing.T) {
	o := NewObserver(2)
	o.Directive(Directive{Step: 3, Kind: KindCrash, Node: 0})
	o.Directive(Directive{Step: 4, Kind: KindPartition, Groups: [][]int{{0}, {1}}})
	o.Finish(10)
	m := o.Metrics()
	if m.Downtime[0] != 7 || m.PartitionSpan != 6 {
		t.Fatalf("dangling windows: downtime=%v span=%d, want 7 and 6", m.Downtime, m.PartitionSpan)
	}

	var nilObs *Observer
	nilObs.Directive(Directive{Step: 1, Kind: KindCrash, Node: 0})
	nilObs.AddBlocked(1)
	nilObs.ObserveQuiesce(1, 1)
	nilObs.Finish(10)
	if got := nilObs.Metrics(); !reflect.DeepEqual(got, Metrics{}) {
		t.Fatalf("nil observer returned %+v", got)
	}
}
