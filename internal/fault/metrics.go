package fault

import "sync"

// Metrics is the structured record of how much failure one run absorbed:
// what the schedule did to the cluster (downtime, partition and link-fault
// spans, measured in logical steps so the record is a pure function of the
// run) and what the engines did to survive it (suppressed deliveries,
// duplicated copies, retransmissions, reconnects, dup/gap frames, and the
// work left to reach quiescence). The simulator fills the logical
// counters; the TCP cluster fills the transport counters; both report
// through the same Observer so a schedule's footprint is comparable across
// engines.
type Metrics struct {
	// Downtime is the per-node crashed duration in schedule steps.
	Downtime []int64 `json:"downtime"`
	// PartitionSpan is the total number of steps during which at least one
	// partition directive was in force.
	PartitionSpan int64 `json:"partition_span"`
	// LinkFaultSpan is the summed duration (steps) of link cut and shaping
	// windows, over all directed links.
	LinkFaultSpan int64 `json:"link_fault_span"`
	// Blocked counts delivery attempts suppressed by a cut, stall, or
	// crashed destination (the simulator's retransmit-pressure proxy).
	Blocked int64 `json:"blocked"`
	// DupCopies counts extra broadcast copies enqueued by dup windows.
	DupCopies int64 `json:"dup_copies"`
	// Retransmits and Reconnects are the TCP transport's recovery work.
	Retransmits int64 `json:"retransmits"`
	Reconnects  int64 `json:"reconnects"`
	// DupFrames and GapFrames count redelivered and out-of-order frames
	// observed by receivers (cumulative-seq dedup).
	DupFrames int64 `json:"dup_frames"`
	GapFrames int64 `json:"gap_frames"`
	// QuiesceRounds and QuiesceDeliveries measure convergence latency: how
	// many send/deliver rounds and message deliveries quiescence
	// (Definition 17) still required after the schedule ended.
	QuiesceRounds     int64 `json:"quiesce_rounds"`
	QuiesceDeliveries int64 `json:"quiesce_deliveries"`
	// Violations counts §4 property violations observed by the checkers.
	Violations int64 `json:"violations"`
	// Leaves and Joins count membership churn directives applied, and
	// SyncUpdates counts updates moved by anti-entropy catch-up after
	// joins — the churn cost the schedule imposed, comparable across the
	// simulator and the TCP cluster.
	Leaves      int64 `json:"leaves,omitempty"`
	Joins       int64 `json:"joins,omitempty"`
	SyncUpdates int64 `json:"sync_updates,omitempty"`
	// ShardReceives counts remote updates applied per shard on sharded
	// nodes (index = shard). Nil on single-shard runs, so existing metrics
	// files are unchanged byte for byte.
	ShardReceives []int64 `json:"shard_receives,omitempty"`
}

// TotalDowntime sums the per-node downtime.
func (m Metrics) TotalDowntime() int64 {
	var t int64
	for _, d := range m.Downtime {
		t += d
	}
	return t
}

// Observer collects Metrics for one run. Directives report through
// Directive (window spans are computed from directive steps, so the
// schedule-shaped metrics are deterministic), engines report through the
// Add/Observe counters. All methods are safe for concurrent use and are
// no-ops on a nil observer, so engines thread an optional *Observer
// without guarding every call site.
type Observer struct {
	mu sync.Mutex
	n  int

	crashedAt []int          // step a node went down, -1 while up
	partOpen  int            // open partition windows
	partAt    int            // step the current partition span opened
	cutOpen   map[[2]int]int // open cut windows per directed link
	cutAt     map[[2]int]int
	shapeOpen map[[2]int]int // open shaping windows per directed link
	shapeAt   map[[2]int]int

	m Metrics
}

// NewObserver creates an observer for an n-node run.
func NewObserver(n int) *Observer {
	o := &Observer{
		n:         n,
		crashedAt: make([]int, n),
		partAt:    -1,
		cutOpen:   make(map[[2]int]int),
		cutAt:     make(map[[2]int]int),
		shapeOpen: make(map[[2]int]int),
		shapeAt:   make(map[[2]int]int),
	}
	for i := range o.crashedAt {
		o.crashedAt[i] = -1
	}
	o.m.Downtime = make([]int64, n)
	return o
}

// Directive accounts one applied directive. Mirrors enforcement semantics:
// heal ends every partition and every cut window (Netem and the sim
// overlay clear the whole cut matrix on heal), link-restore ends one cut
// window, link-clear ends one shaping window.
func (o *Observer) Directive(d Directive) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	link := [2]int{d.From, d.To}
	switch d.Kind {
	case KindCrash:
		if d.Node >= 0 && d.Node < o.n && o.crashedAt[d.Node] < 0 {
			o.crashedAt[d.Node] = d.Step
		}
	case KindRestart:
		if d.Node >= 0 && d.Node < o.n && o.crashedAt[d.Node] >= 0 {
			o.m.Downtime[d.Node] += int64(d.Step - o.crashedAt[d.Node])
			o.crashedAt[d.Node] = -1
		}
	case KindLeave:
		o.m.Leaves++
	case KindJoin:
		o.m.Joins++
	case KindPartition:
		if o.partOpen == 0 {
			o.partAt = d.Step
		}
		o.partOpen++
	case KindHeal:
		if o.partOpen > 0 {
			o.m.PartitionSpan += int64(d.Step - o.partAt)
			o.partOpen = 0
		}
		for k, at := range o.cutAt {
			o.m.LinkFaultSpan += int64(d.Step - at)
			delete(o.cutAt, k)
			delete(o.cutOpen, k)
		}
	case KindLinkCut:
		if o.cutOpen[link] == 0 {
			o.cutAt[link] = d.Step
		}
		o.cutOpen[link]++
	case KindLinkRestore:
		if o.cutOpen[link] > 0 {
			o.cutOpen[link]--
			if o.cutOpen[link] == 0 {
				o.m.LinkFaultSpan += int64(d.Step - o.cutAt[link])
				delete(o.cutAt, link)
				delete(o.cutOpen, link)
			}
		}
	case KindLinkDelay, KindLinkDup, KindLinkReorder, KindLinkRate:
		if o.shapeOpen[link] == 0 {
			o.shapeAt[link] = d.Step
		}
		o.shapeOpen[link]++
	case KindLinkClear:
		if o.shapeOpen[link] > 0 {
			o.m.LinkFaultSpan += int64(d.Step - o.shapeAt[link])
			delete(o.shapeAt, link)
			delete(o.shapeOpen, link)
		}
	}
}

// Finish closes any window still open at the end of the timeline. Balanced
// schedules close their own windows; Finish makes the metrics robust to
// truncated or hand-written ones.
func (o *Observer) Finish(steps int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, at := range o.crashedAt {
		if at >= 0 {
			o.m.Downtime[i] += int64(steps - at)
			o.crashedAt[i] = -1
		}
	}
	if o.partOpen > 0 {
		o.m.PartitionSpan += int64(steps - o.partAt)
		o.partOpen = 0
	}
	for k, at := range o.cutAt {
		o.m.LinkFaultSpan += int64(steps - at)
		delete(o.cutAt, k)
		delete(o.cutOpen, k)
	}
	for k, at := range o.shapeAt {
		o.m.LinkFaultSpan += int64(steps - at)
		delete(o.shapeAt, k)
		delete(o.shapeOpen, k)
	}
}

// AddBlocked counts deliveries suppressed by cuts, stalls, or a crashed
// destination.
func (o *Observer) AddBlocked(n int64) { o.add(func(m *Metrics) { m.Blocked += n }) }

// AddDupCopies counts extra broadcast copies created by dup windows.
func (o *Observer) AddDupCopies(n int64) { o.add(func(m *Metrics) { m.DupCopies += n }) }

// AddRetransmits counts update retransmissions on the TCP transport.
func (o *Observer) AddRetransmits(n int64) { o.add(func(m *Metrics) { m.Retransmits += n }) }

// AddReconnects counts replication-link reconnections.
func (o *Observer) AddReconnects(n int64) { o.add(func(m *Metrics) { m.Reconnects += n }) }

// AddDupFrames counts duplicate frames deduplicated by a receiver.
func (o *Observer) AddDupFrames(n int64) { o.add(func(m *Metrics) { m.DupFrames += n }) }

// AddGapFrames counts out-of-order frames a receiver had to wait out.
func (o *Observer) AddGapFrames(n int64) { o.add(func(m *Metrics) { m.GapFrames += n }) }

// AddSyncUpdates counts updates shipped by anti-entropy catch-up after a
// join (the simulator counts requeued backlog, the TCP cluster counts
// range-pulled updates).
func (o *Observer) AddSyncUpdates(n int64) { o.add(func(m *Metrics) { m.SyncUpdates += n }) }

// AddShardReceives counts remote updates a sharded node applied on one
// shard. The slice grows on demand so the observer needs no shard count up
// front (single-shard runs never call this and keep a nil slice).
func (o *Observer) AddShardReceives(shard int, n int64) {
	o.add(func(m *Metrics) {
		for len(m.ShardReceives) <= shard {
			m.ShardReceives = append(m.ShardReceives, 0)
		}
		m.ShardReceives[shard] += n
	})
}

// ObserveQuiesce records the convergence-latency measure: how many rounds
// and deliveries draining the run took.
func (o *Observer) ObserveQuiesce(rounds, deliveries int64) {
	o.add(func(m *Metrics) {
		m.QuiesceRounds += rounds
		m.QuiesceDeliveries += deliveries
	})
}

// SetViolations records the checker-violation count.
func (o *Observer) SetViolations(n int64) { o.add(func(m *Metrics) { m.Violations = n }) }

func (o *Observer) add(f func(*Metrics)) {
	if o == nil {
		return
	}
	o.mu.Lock()
	f(&o.m)
	o.mu.Unlock()
}

// Metrics snapshots the collected metrics.
func (o *Observer) Metrics() Metrics {
	if o == nil {
		return Metrics{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	m := o.m
	m.Downtime = append([]int64(nil), o.m.Downtime...)
	if o.m.ShardReceives != nil {
		m.ShardReceives = append([]int64(nil), o.m.ShardReceives...)
	}
	return m
}
