package fault

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, N: 3, Steps: 100, Partitions: 2, Crashes: 1, LinkFaults: 3}
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different schedules:\n%v\n%v", a, b)
	}
	var bufA, bufB bytes.Buffer
	if err := a.Table().RenderJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Table().RenderJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same seed rendered different fault logs")
	}
	c := Generate(Config{Seed: 43, N: 3, Steps: 100, Partitions: 2, Crashes: 1, LinkFaults: 3})
	if reflect.DeepEqual(a.Directives, c.Directives) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateBalancedWindows: every window-opening directive has a closing
// counterpart at a strictly later step, so schedules always heal themselves
// before the timeline ends.
func TestGenerateBalancedWindows(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := Generate(Config{Seed: seed, N: 4, Steps: 120, Partitions: 2, Crashes: 2, LinkFaults: 4})
		parts, crashes, links := s.Counts()
		if parts != 2 || crashes != 2 || links != 4 {
			t.Fatalf("seed %d: counts = %d/%d/%d", seed, parts, crashes, links)
		}
		opens := map[Kind]int{}
		for _, d := range s.Directives {
			if d.Step < 0 || d.Step >= s.Steps {
				t.Fatalf("seed %d: directive outside timeline: %+v", seed, d)
			}
			switch d.Kind {
			case KindPartition:
				opens[KindPartition]++
				if len(d.Groups) != 2 || len(d.Groups[0]) == 0 || len(d.Groups[1]) == 0 {
					t.Fatalf("seed %d: degenerate partition %+v", seed, d)
				}
			case KindHeal:
				opens[KindPartition]--
			case KindCrash:
				opens[KindCrash]++
			case KindRestart:
				opens[KindCrash]--
			case KindLinkCut:
				opens[KindLinkCut]++
			case KindLinkRestore:
				opens[KindLinkCut]--
			case KindLinkDelay, KindLinkDup, KindLinkReorder, KindLinkRate:
				opens[KindLinkClear]++
				if d.From == d.To {
					t.Fatalf("seed %d: self link %+v", seed, d)
				}
			case KindLinkClear:
				opens[KindLinkClear]--
			}
		}
		for k, open := range opens {
			if open != 0 {
				t.Fatalf("seed %d: %d unclosed %s windows", seed, open, k)
			}
		}
		// Distinct crash victims: a node never crashes while already down.
		down := map[int]bool{}
		for _, d := range s.Directives {
			switch d.Kind {
			case KindCrash:
				if down[d.Node] {
					t.Fatalf("seed %d: r%d crashed while down", seed, d.Node)
				}
				down[d.Node] = true
			case KindRestart:
				down[d.Node] = false
			}
		}
		// CheckBalanced is the reusable form of the assertions above.
		if err := s.CheckBalanced(); err != nil {
			t.Fatalf("seed %d: CheckBalanced: %v", seed, err)
		}
	}
}

// TestCheckBalancedRejects: CheckBalanced is not vacuous — it flags
// hand-built schedules that violate each invariant.
func TestCheckBalancedRejects(t *testing.T) {
	bad := []Schedule{
		{Steps: 10, Directives: []Directive{{Step: 12, Kind: KindHeal}}},
		{Steps: 10, Directives: []Directive{{Step: 1, Kind: KindPartition, Groups: [][]int{{0}, {1}}}}},
		{Steps: 10, Directives: []Directive{{Step: 1, Kind: KindCrash, Node: 0}, {Step: 2, Kind: KindCrash, Node: 0}}},
		{Steps: 10, Directives: []Directive{{Step: 1, Kind: KindRestart, Node: 0}}},
		{Steps: 10, Directives: []Directive{{Step: 1, Kind: KindLinkCut, From: 0, To: 1}}},
		{Steps: 10, Directives: []Directive{{Step: 1, Kind: KindLinkClear, From: 0, To: 1}}},
		{Steps: 10, Directives: []Directive{
			{Step: 1, Kind: KindLinkDelay, From: 0, To: 0, DelaySteps: 1},
			{Step: 2, Kind: KindLinkClear, From: 0, To: 0},
		}},
		{Steps: 10, Directives: []Directive{
			{Step: 1, Kind: KindLinkRate, From: 0, To: 1},
			{Step: 2, Kind: KindLinkClear, From: 0, To: 1},
		}},
	}
	for i, s := range bad {
		if err := s.CheckBalanced(); err == nil {
			t.Fatalf("case %d: CheckBalanced accepted an unbalanced schedule: %+v", i, s)
		}
	}
	if err := (Schedule{}).CheckBalanced(); err != nil {
		t.Fatalf("empty schedule rejected: %v", err)
	}
}

func TestNetemPartitionAndHeal(t *testing.T) {
	em := NewNetem(3)
	em.Apply(Directive{Kind: KindPartition, Groups: [][]int{{0, 2}, {1}}}, time.Millisecond)
	if em.Cut(0, 2) || em.Cut(2, 0) {
		t.Fatal("same-group link cut")
	}
	if !em.Cut(0, 1) || !em.Cut(1, 0) || !em.Cut(1, 2) {
		t.Fatal("cross-group link not cut")
	}
	em.Apply(Directive{Kind: KindHeal}, time.Millisecond)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if em.Cut(i, j) {
				t.Fatalf("link %d->%d still cut after heal", i, j)
			}
		}
	}
	// A node absent from every group is isolated.
	em.Apply(Directive{Kind: KindPartition, Groups: [][]int{{0, 1}}}, time.Millisecond)
	if !em.Cut(2, 0) || !em.Cut(0, 2) {
		t.Fatal("ungrouped node not isolated")
	}
}

// pipeFrames reads frames off a conn until it closes, delivering payloads.
func pipeFrames(t *testing.T, conn net.Conn) <-chan []byte {
	t.Helper()
	out := make(chan []byte, 16)
	go func() {
		defer close(out)
		for {
			b, err := wire.ReadFrame(conn, 0)
			if err != nil {
				return
			}
			out <- b
		}
	}()
	return out
}

func TestShapedConnDupAndReorder(t *testing.T) {
	em := NewNetem(2)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	w := em.WrapConn(a, 0, 1)
	got := pipeFrames(t, b)

	write := func(p string) {
		if _, err := wire.WriteFrame(w, []byte(p), 0); err != nil {
			t.Fatalf("write %q: %v", p, err)
		}
	}
	expect := func(p string) {
		select {
		case f, ok := <-got:
			if !ok || string(f) != p {
				t.Fatalf("got %q (ok=%v), want %q", f, ok, p)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout waiting for %q", p)
		}
	}

	write("hello") // first frame always passes unshaped
	expect("hello")

	em.Apply(Directive{Kind: KindLinkDup, From: 0, To: 1}, time.Millisecond)
	write("u1")
	expect("u1")
	expect("u1")
	em.Apply(Directive{Kind: KindLinkClear, From: 0, To: 1}, time.Millisecond)

	em.Apply(Directive{Kind: KindLinkReorder, From: 0, To: 1}, time.Millisecond)
	write("u2") // held
	write("u3") // overtakes, then u2 flushes
	expect("u3")
	expect("u2")
	em.Apply(Directive{Kind: KindLinkClear, From: 0, To: 1}, time.Millisecond)

	write("u4")
	expect("u4")
}

func TestShapedConnCutFailsWrites(t *testing.T) {
	em := NewNetem(2)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	w := em.WrapConn(a, 0, 1)
	got := pipeFrames(t, b)

	if _, err := wire.WriteFrame(w, []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	<-got

	em.Apply(Directive{Kind: KindLinkCut, From: 0, To: 1}, time.Millisecond)
	if _, err := wire.WriteFrame(w, []byte("lost"), 0); !errors.Is(err, ErrLinkCut) {
		t.Fatalf("write on cut link: err = %v, want ErrLinkCut", err)
	}
	em.Apply(Directive{Kind: KindLinkRestore, From: 0, To: 1}, time.Millisecond)
	if _, err := wire.WriteFrame(w, []byte("back"), 0); err != nil {
		t.Fatalf("write after restore: %v", err)
	}
	select {
	case f := <-got:
		if string(f) != "back" {
			t.Fatalf("got %q after restore", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout after restore")
	}
}

// TestGenerateChurnWindows: churn windows are balanced leave→join pairs on
// victims disjoint from the crash victims, the cap keeps crashes+churns
// within N, and a zero-churn config generates byte-identical schedules to
// the pre-churn generator (no extra RNG draws).
func TestGenerateChurnWindows(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := Generate(Config{Seed: seed, N: 4, Steps: 120, Partitions: 1, Crashes: 1, LinkFaults: 2, Churns: 2})
		if err := s.CheckBalanced(); err != nil {
			t.Fatalf("seed %d: CheckBalanced: %v", seed, err)
		}
		crashVictims := map[int]bool{}
		churnVictims := map[int]bool{}
		leaves, joins := 0, 0
		for _, d := range s.Directives {
			switch d.Kind {
			case KindCrash:
				crashVictims[d.Node] = true
			case KindLeave:
				leaves++
				if churnVictims[d.Node] {
					t.Fatalf("seed %d: r%d left twice", seed, d.Node)
				}
				churnVictims[d.Node] = true
			case KindJoin:
				joins++
			}
		}
		if leaves != 2 || joins != 2 {
			t.Fatalf("seed %d: %d leaves / %d joins, want 2/2", seed, leaves, joins)
		}
		for v := range churnVictims {
			if crashVictims[v] {
				t.Fatalf("seed %d: r%d is both crash and churn victim", seed, v)
			}
		}
	}

	// The cap: 3 nodes with 2 crash victims leave room for exactly one
	// churn victim, however many windows were requested.
	s := Generate(Config{Seed: 7, N: 3, Steps: 120, Crashes: 2, Churns: 5})
	leaves := 0
	for _, d := range s.Directives {
		if d.Kind == KindLeave {
			leaves++
		}
	}
	if leaves != 1 {
		t.Fatalf("cap: %d leaves with 2 crashes on 3 nodes, want 1", leaves)
	}

	// Churns: 0 must not perturb the schedule stream existing benchmarks
	// are pinned to.
	with := Generate(Config{Seed: 9, N: 3, Steps: 100, Partitions: 2, Crashes: 1, LinkFaults: 3})
	without := Generate(Config{Seed: 9, N: 3, Steps: 100, Partitions: 2, Crashes: 1, LinkFaults: 3, Churns: 0})
	if !reflect.DeepEqual(with, without) {
		t.Fatal("Churns:0 changed the generated schedule")
	}
}

// TestCheckBalancedRejectsChurn: the churn invariants are enforced, not
// just generated.
func TestCheckBalancedRejectsChurn(t *testing.T) {
	bad := []Schedule{
		// Leave without a join: the node never comes back.
		{Steps: 10, Directives: []Directive{{Step: 1, Kind: KindLeave, Node: 0}}},
		// Join of a node that never left.
		{Steps: 10, Directives: []Directive{{Step: 1, Kind: KindJoin, Node: 0}}},
		// Crash while departed: ambiguous recovery path.
		{Steps: 10, Directives: []Directive{
			{Step: 1, Kind: KindLeave, Node: 0},
			{Step: 2, Kind: KindCrash, Node: 0},
			{Step: 3, Kind: KindRestart, Node: 0},
			{Step: 4, Kind: KindJoin, Node: 0},
		}},
		// Leave while crashed.
		{Steps: 10, Directives: []Directive{
			{Step: 1, Kind: KindCrash, Node: 0},
			{Step: 2, Kind: KindLeave, Node: 0},
			{Step: 3, Kind: KindRestart, Node: 0},
			{Step: 4, Kind: KindJoin, Node: 0},
		}},
		// Double leave.
		{Steps: 10, Directives: []Directive{
			{Step: 1, Kind: KindLeave, Node: 0},
			{Step: 2, Kind: KindLeave, Node: 0},
			{Step: 3, Kind: KindJoin, Node: 0},
		}},
	}
	for i, s := range bad {
		if err := s.CheckBalanced(); err == nil {
			t.Fatalf("case %d: CheckBalanced accepted an unbalanced churn schedule: %+v", i, s)
		}
	}
	good := Schedule{Steps: 10, Directives: []Directive{
		{Step: 1, Kind: KindLeave, Node: 0},
		{Step: 5, Kind: KindJoin, Node: 0},
	}}
	if err := good.CheckBalanced(); err != nil {
		t.Fatalf("balanced churn schedule rejected: %v", err)
	}
}
