package charronbost

import (
	"fmt"

	"repro/internal/execution"
	"repro/internal/model"
)

// CrownExecution embeds the crown S_n into a concrete execution of the §2
// model: writer replicas P_1..P_n perform the a_i events and broadcast;
// observer replicas Q_1..Q_n receive every message except their own index's
// and then perform the b_j events. The happens-before relation restricted to
// the do events is exactly the crown: a_i -hb-> b_j iff i ≠ j.
//
// This is the bridge between the order-theoretic dimension result and the
// message-passing model: any timestamping scheme that characterizes
// happens-before on this 2n-replica execution embeds S_n, so it needs n
// components — the phenomenon Theorem 12 generalizes to arbitrary message
// contents.
func CrownExecution(n int) (*execution.Execution, []int, []int) {
	x := execution.New()
	aSeqs := make([]int, n)
	bSeqs := make([]int, n)
	msgIDs := make([]int, n)
	// Writers P_i are replicas 0..n-1; observers Q_j are replicas n..2n-1.
	for i := 0; i < n; i++ {
		e := x.AppendDo(model.ReplicaID(i), model.ObjectID(fmt.Sprintf("x%d", i)),
			model.Write(model.Value(fmt.Sprintf("a%d", i))), model.OKResponse())
		aSeqs[i] = e.Seq
		sent := x.AppendSend(model.ReplicaID(i), []byte{byte(i)})
		msgIDs[i] = sent.MsgID
	}
	for j := 0; j < n; j++ {
		q := model.ReplicaID(n + j)
		for i := 0; i < n; i++ {
			if i != j {
				x.AppendReceive(q, msgIDs[i])
			}
		}
		e := x.AppendDo(q, model.ObjectID(fmt.Sprintf("x%d", j)), model.Read(), model.ReadResponse(nil))
		bSeqs[j] = e.Seq
	}
	return x, aSeqs, bSeqs
}

// VerifyCrownEmbedding checks that happens-before on the generated execution
// restricted to the a/b do events is exactly Crown(n).
func VerifyCrownEmbedding(n int) error {
	x, aSeqs, bSeqs := CrownExecution(n)
	if err := x.CheckWellFormed(); err != nil {
		return err
	}
	hb := execution.ComputeHB(x)
	crown := Crown(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := crown.Less(i, n+j)
			got := hb.Before(aSeqs[i], bSeqs[j])
			if want != got {
				return fmt.Errorf("charronbost: a%d -hb-> b%d is %v, crown says %v", i+1, j+1, got, want)
			}
		}
		for j := 0; j < n; j++ {
			if i != j {
				if hb.Before(aSeqs[i], aSeqs[j]) || hb.Before(bSeqs[i], bSeqs[j]) {
					return fmt.Errorf("charronbost: spurious hb among a/b events (%d, %d)", i, j)
				}
			}
		}
	}
	return nil
}
