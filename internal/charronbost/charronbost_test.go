package charronbost

import (
	"errors"
	"testing"

	"repro/internal/execution"
)

func TestCrownStructure(t *testing.T) {
	o := Crown(3)
	if o.N != 6 {
		t.Fatalf("N = %d", o.N)
	}
	if !o.Less(0, 4) || o.Less(0, 3) {
		t.Fatal("crown relations wrong: a1<b2 expected, a1<b1 not")
	}
	if !o.Incomparable(0, 1) || !o.Incomparable(3, 4) || !o.Incomparable(0, 3) {
		t.Fatal("crown incomparabilities wrong")
	}
}

func TestLinearExtensionsRespectOrder(t *testing.T) {
	o := Crown(2)
	exts := o.LinearExtensions()
	if len(exts) == 0 {
		t.Fatal("no extensions")
	}
	for _, ext := range exts {
		pos := make([]int, o.N)
		for p, x := range ext {
			pos[x] = p
		}
		for x := 0; x < o.N; x++ {
			for y := 0; y < o.N; y++ {
				if o.Less(x, y) && pos[x] > pos[y] {
					t.Fatalf("extension %v violates %s < %s", ext, o.Names[x], o.Names[y])
				}
			}
		}
	}
}

func TestChainHasDimensionOne(t *testing.T) {
	o := NewOrder(3)
	o.SetLess(0, 1)
	o.SetLess(1, 2)
	o.SetLess(0, 2)
	d, err := o.Dimension(3)
	if err != nil || d != 1 {
		t.Fatalf("chain dimension = %d, err %v", d, err)
	}
}

func TestAntichainHasDimensionTwo(t *testing.T) {
	o := NewOrder(3) // three incomparable elements
	d, err := o.Dimension(3)
	if err != nil || d != 2 {
		t.Fatalf("antichain dimension = %d, err %v", d, err)
	}
}

func TestCrown2Dimension(t *testing.T) {
	d, err := Crown(2).Dimension(4)
	if err != nil || d != 2 {
		t.Fatalf("crown S_2 dimension = %d, err %v", d, err)
	}
}

// TestCrown3NeedsThreeDimensions is the Charron-Bost core: 2-dimensional
// logical clocks cannot characterize the causality of the 3-process crown,
// but 3-dimensional ones can.
func TestCrown3NeedsThreeDimensions(t *testing.T) {
	o := Crown(3)
	if _, err := o.Realizer(2); !errors.Is(err, ErrNoRealizer) {
		t.Fatalf("2-realizer search: %v (expected exhaustive refutation)", err)
	}
	realizer, err := o.Realizer(3)
	if err != nil {
		t.Fatal(err)
	}
	vecs := Vectors(realizer, o.N)
	if err := CheckCharacterizes(o, vecs); err != nil {
		t.Fatal(err)
	}
}

func TestCrown4NeedsFourDimensions(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive realizer search on S_4 is slow")
	}
	o := Crown(4)
	if _, err := o.Realizer(3); !errors.Is(err, ErrNoRealizer) {
		t.Fatalf("3-realizer search: %v", err)
	}
	realizer, err := o.Realizer(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCharacterizes(o, Vectors(realizer, o.N)); err != nil {
		t.Fatal(err)
	}
}

func TestVectorsFromRealizerCharacterize(t *testing.T) {
	o := Crown(2)
	realizer, err := o.Realizer(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCharacterizes(o, Vectors(realizer, o.N)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCharacterizesDetectsBadVectors(t *testing.T) {
	o := Crown(2)
	bad := [][]int{{0, 0}, {0, 0}, {0, 0}, {0, 0}} // everything equal
	if err := CheckCharacterizes(o, bad); err == nil {
		t.Fatal("expected mischaracterization")
	}
}

func TestDimensionBudgetExceeded(t *testing.T) {
	o := Crown(3)
	if _, err := o.Dimension(2); err == nil {
		t.Fatal("expected dimension > 2 error")
	}
}

func TestCrownExecutionEmbedding(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		if err := VerifyCrownEmbedding(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestRealizerVectorsCharacterizeCrownExecutionHB ties the two halves of
// the extension together: the realizer-derived vector timestamps of S_n
// characterize happens-before among the a/b do events of the crown
// execution in the message-passing model.
func TestRealizerVectorsCharacterizeCrownExecutionHB(t *testing.T) {
	const n = 3
	o := Crown(n)
	realizer, err := o.Realizer(n)
	if err != nil {
		t.Fatal(err)
	}
	vecs := Vectors(realizer, o.N)

	x, aSeqs, bSeqs := CrownExecution(n)
	hb := execution.ComputeHB(x)
	leq := func(u, v []int) bool {
		eq := true
		for k := range u {
			if u[k] > v[k] {
				return false
			}
			if u[k] != v[k] {
				eq = false
			}
		}
		return !eq
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := hb.Before(aSeqs[i], bSeqs[j])
			got := leq(vecs[i], vecs[n+j])
			if want != got {
				t.Fatalf("a%d -hb-> b%d = %v but vectors say %v", i+1, j+1, want, got)
			}
		}
	}
}
