// Package charronbost implements the logical-clock dimension result the
// paper's introduction extends (Charron-Bost, IPL 1991): characterizing the
// causality of executions of n processes with m-tuples (vector clocks)
// requires m ≥ n. The witness is the crown partial order S_n — n minimal
// events a_1..a_n and n maximal events b_1..b_n with a_i < b_j iff i ≠ j —
// whose order dimension is exactly n.
//
// The package computes order dimension exactly via exhaustive realizer
// search (an order has dimension ≤ m iff it is the intersection of m of its
// linear extensions), and converts a realizer into vector timestamps that
// characterize the order: x < y iff f(x) ≤ f(y) pointwise and f(x) ≠ f(y).
// Theorem 12 generalizes the spirit of this bound to arbitrary message
// formats.
package charronbost

import (
	"errors"
	"fmt"
)

// Order is a finite strict partial order over elements 0..N-1.
type Order struct {
	// N is the number of elements.
	N int
	// less[x][y] reports x < y.
	less [][]bool
	// Names labels elements for reporting.
	Names []string
}

// NewOrder creates an order with no relations.
func NewOrder(n int) *Order {
	o := &Order{N: n, less: make([][]bool, n), Names: make([]string, n)}
	for i := range o.less {
		o.less[i] = make([]bool, n)
		o.Names[i] = fmt.Sprintf("e%d", i)
	}
	return o
}

// SetLess records x < y (callers are responsible for transitivity; Crown
// produces transitively closed orders by construction).
func (o *Order) SetLess(x, y int) { o.less[x][y] = true }

// Less reports x < y.
func (o *Order) Less(x, y int) bool { return o.less[x][y] }

// Incomparable reports x ∥ y.
func (o *Order) Incomparable(x, y int) bool {
	return x != y && !o.less[x][y] && !o.less[y][x]
}

// Crown returns the crown S_n: elements 0..n-1 are the minimal a_i,
// elements n..2n-1 are the maximal b_j, and a_i < b_j iff i ≠ j. Its order
// dimension is n for n ≥ 3 (and 2 for n = 2).
func Crown(n int) *Order {
	o := NewOrder(2 * n)
	for i := 0; i < n; i++ {
		o.Names[i] = fmt.Sprintf("a%d", i+1)
		o.Names[n+i] = fmt.Sprintf("b%d", i+1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				o.SetLess(i, n+j)
			}
		}
	}
	return o
}

// LinearExtensions enumerates every linear extension of the order as
// permutations of 0..N-1. Exponential; intended for the small crowns this
// package studies.
func (o *Order) LinearExtensions() [][]int {
	var out [][]int
	used := make([]bool, o.N)
	cur := make([]int, 0, o.N)
	var rec func()
	rec = func() {
		if len(cur) == o.N {
			ext := make([]int, o.N)
			copy(ext, cur)
			out = append(out, ext)
			return
		}
		for x := 0; x < o.N; x++ {
			if used[x] {
				continue
			}
			// x may come next iff every smaller element is already placed.
			ok := true
			for y := 0; y < o.N; y++ {
				if o.less[y][x] && !used[y] {
					ok = false
					break
				}
			}
			if ok {
				used[x] = true
				cur = append(cur, x)
				rec()
				cur = cur[:len(cur)-1]
				used[x] = false
			}
		}
	}
	rec()
	return out
}

// ErrNoRealizer is returned when no realizer of the requested size exists.
var ErrNoRealizer = errors.New("charronbost: no realizer of the requested size")

// Realizer searches exhaustively for m linear extensions whose intersection
// is the order. It returns such a realizer, or ErrNoRealizer when none
// exists — a machine-checked proof that the order's dimension exceeds m.
//
// An extension set realizes the order iff for every ordered incomparable
// pair (x, y) some extension places y before x (the order relations
// themselves hold in every extension).
func (o *Order) Realizer(m int) ([][]int, error) {
	exts := o.LinearExtensions()
	// Critical pairs: ordered incomparable pairs (x, y); a realizer must
	// contain an extension with y before x.
	type pair struct{ x, y int }
	var pairs []pair
	for x := 0; x < o.N; x++ {
		for y := 0; y < o.N; y++ {
			if x != y && o.Incomparable(x, y) {
				pairs = append(pairs, pair{x, y})
			}
		}
	}
	// covers[e] = the set of pairs extension e reverses (y before x). Many
	// extensions reverse the same pair set; only one representative per
	// distinct coverage signature matters for realizability, which collapses
	// the search space by orders of magnitude.
	var covers [][]bool
	var reps []int // representative extension index per signature
	seen := make(map[string]bool)
	for e, ext := range exts {
		pos := make([]int, o.N)
		for p, x := range ext {
			pos[x] = p
		}
		cov := make([]bool, len(pairs))
		sig := make([]byte, len(pairs))
		for pi, pr := range pairs {
			if pos[pr.y] < pos[pr.x] {
				cov[pi] = true
				sig[pi] = 1
			}
		}
		if seen[string(sig)] {
			continue
		}
		seen[string(sig)] = true
		covers = append(covers, cov)
		reps = append(reps, e)
	}
	chosen := make([]int, 0, m)
	covered := make([]int, len(pairs)) // coverage count per pair
	firstUncovered := func() int {
		for pi, c := range covered {
			if c == 0 {
				return pi
			}
		}
		return -1
	}
	// Set-cover DFS: the next extension must cover the first uncovered pair,
	// which prunes the branching factor from |extensions| to the few that
	// reverse that pair.
	var rec func(depth int) bool
	rec = func(depth int) bool {
		target := firstUncovered()
		if target < 0 {
			return true
		}
		if depth == m {
			return false
		}
		for e := 0; e < len(covers); e++ {
			if !covers[e][target] {
				continue
			}
			chosen = append(chosen, e)
			for pi := range pairs {
				if covers[e][pi] {
					covered[pi]++
				}
			}
			if rec(depth + 1) {
				return true
			}
			for pi := range pairs {
				if covers[e][pi] {
					covered[pi]--
				}
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	if !rec(0) {
		return nil, fmt.Errorf("%w: dimension > %d (searched %d extensions)", ErrNoRealizer, m, len(exts))
	}
	out := make([][]int, len(chosen))
	for i, e := range chosen {
		out[i] = exts[reps[e]]
	}
	return out, nil
}

// Dimension computes the order dimension exactly by growing m until a
// realizer exists (maxM bounds the search).
func (o *Order) Dimension(maxM int) (int, error) {
	for m := 1; m <= maxM; m++ {
		if _, err := o.Realizer(m); err == nil {
			return m, nil
		} else if !errors.Is(err, ErrNoRealizer) {
			return 0, err
		}
	}
	return 0, fmt.Errorf("charronbost: dimension exceeds %d", maxM)
}

// Vectors converts a realizer into vector timestamps: element x's k-th
// coordinate is its position in the k-th extension. The vectors
// characterize the order (CheckCharacterizes verifies it).
func Vectors(realizer [][]int, n int) [][]int {
	vecs := make([][]int, n)
	for i := range vecs {
		vecs[i] = make([]int, len(realizer))
	}
	for k, ext := range realizer {
		for p, x := range ext {
			vecs[x][k] = p
		}
	}
	return vecs
}

// CheckCharacterizes verifies that the vectors characterize the order:
// x < y iff vec(x) ≤ vec(y) pointwise with vec(x) ≠ vec(y).
func CheckCharacterizes(o *Order, vecs [][]int) error {
	leq := func(x, y int) bool {
		eq := true
		for k := range vecs[x] {
			if vecs[x][k] > vecs[y][k] {
				return false
			}
			if vecs[x][k] != vecs[y][k] {
				eq = false
			}
		}
		return !eq
	}
	for x := 0; x < o.N; x++ {
		for y := 0; y < o.N; y++ {
			if x == y {
				continue
			}
			if o.Less(x, y) != leq(x, y) {
				return fmt.Errorf("charronbost: vectors mischaracterize %s vs %s: order=%v vectors=%v",
					o.Names[x], o.Names[y], o.Less(x, y), leq(x, y))
			}
		}
	}
	return nil
}
