package cluster

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/store"
)

func openCausal(t *testing.T) store.Store {
	t.Helper()
	st, err := store.Open("causal", spec.MVRTypes(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// bootNode starts one node of an n-population causal cluster without
// linking it to anyone.
func bootNode(t *testing.T, id model.ReplicaID, n int, mut func(*Config)) *Node {
	t.Helper()
	cfg := fastConfig(id, n, openCausal(t))
	if mut != nil {
		mut(&cfg)
	}
	nd, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("node %d: %v", id, err)
	}
	t.Cleanup(func() { nd.Close() })
	return nd
}

// writeN performs k distinct writes on nd, spread over objects, and
// returns the object list.
func writeN(t *testing.T, nd *Node, k int, tag string) []model.ObjectID {
	t.Helper()
	objects := []model.ObjectID{"x", "y", "z"}
	for i := 0; i < k; i++ {
		obj := objects[i%len(objects)]
		if _, err := nd.Do(obj, model.Write(model.Value(fmt.Sprintf("%s.%d", tag, i)))); err != nil {
			t.Fatalf("write %d on r%d: %v", i, nd.ID(), err)
		}
	}
	return objects
}

func auditClean(t *testing.T, hists []History) {
	t.Helper()
	audit, err := BuildAudit(hists)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Exec.CheckWellFormed(); err != nil {
		t.Fatalf("merged execution not well-formed: %v", err)
	}
	if err := consistency.CheckCausal(audit.Abstract, spec.MVRTypes()); err != nil {
		t.Fatalf("derived abstract execution not causal: %v", err)
	}
}

// TestJoinPullsDepartedOriginFully is the tentpole's end-to-end check with
// a deterministic byte-range assertion. All writes originate at r1, which
// then leaves; the joiner r2 has an empty log and only r0's address. Live
// replication links only re-offer a node's own updates, so r1's history
// can reach r2 exclusively through Merkle anti-entropy against r0's log —
// SyncPulled must equal the departed origin's update count exactly, and
// r0 must have served exactly that many (no full-log transfer, no
// retransmission slop in the stop-and-wait pull).
func TestJoinPullsDepartedOriginFully(t *testing.T) {
	const k = 60
	r0 := bootNode(t, 0, 3, nil)
	r1 := bootNode(t, 1, 3, nil)
	if err := r0.Connect(map[model.ReplicaID]string{1: r1.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := r1.Connect(map[model.ReplicaID]string{0: r0.Addr()}); err != nil {
		t.Fatal(err)
	}
	objects := writeN(t, r1, k, "r1")
	if !WaitQuiesced([]*Node{r0, r1}, 30*time.Second) {
		t.Fatal("pair did not quiesce before the leave")
	}
	if err := r1.Leave(); err != nil {
		t.Fatal(err)
	}
	r1.Close()
	h1 := r1.FinalHistory()

	r2 := bootNode(t, 2, 3, func(cfg *Config) {
		cfg.Join = map[model.ReplicaID]string{0: r0.Addr()}
	})
	if got := r2.Stats().SyncPulled; got != k {
		t.Fatalf("joiner pulled %d updates via anti-entropy, want exactly %d", got, k)
	}
	if got := r0.Stats().SyncServed; got != k {
		t.Fatalf("donor served %d updates, want exactly %d", got, k)
	}
	if !WaitQuiesced([]*Node{r0, r2}, 30*time.Second) {
		t.Fatalf("cluster did not quiesce after the join; r0=%+v r2=%+v", r0.Stats(), r2.Stats())
	}
	if err := CheckConverged([]Doer{r0, r2}, objects); err != nil {
		t.Fatal(err)
	}
	// The views must agree: r1 departed, r2 admitted.
	for _, nd := range []*Node{r0, r2} {
		var left, alive int
		for _, m := range nd.Membership() {
			if m.Left {
				left++
			} else {
				alive++
			}
		}
		if left != 1 || alive != 2 {
			t.Fatalf("r%d view: %d left / %d alive, want 1/2: %+v", nd.ID(), left, alive, nd.Membership())
		}
	}
	auditClean(t, []History{r0.History(), h1, r2.History()})
}

// TestRejoinPullsOnlyMissingDelta pins the incremental half of
// anti-entropy: a node that departs with a prefix of the log and rejoins
// later pulls exactly the delta written while it was away — the digest
// exchange proves the prefix matches and the range pull starts past it.
func TestRejoinPullsOnlyMissingDelta(t *testing.T) {
	const k1, k2 = 30, 45
	r0 := bootNode(t, 0, 3, nil)
	r1 := bootNode(t, 1, 3, nil)
	if err := r0.Connect(map[model.ReplicaID]string{1: r1.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := r1.Connect(map[model.ReplicaID]string{0: r0.Addr()}); err != nil {
		t.Fatal(err)
	}
	writeN(t, r1, k1, "a")
	if !WaitQuiesced([]*Node{r0, r1}, 30*time.Second) {
		t.Fatal("pair did not quiesce before the first join")
	}

	r2 := bootNode(t, 2, 3, func(cfg *Config) {
		cfg.Join = map[model.ReplicaID]string{0: r0.Addr()}
	})
	if got := r2.Stats().SyncPulled; got != k1 {
		t.Fatalf("first join pulled %d, want %d", got, k1)
	}
	if !WaitQuiesced([]*Node{r0, r1, r2}, 30*time.Second) {
		t.Fatal("trio did not quiesce after the first join")
	}
	if err := r2.Leave(); err != nil {
		t.Fatal(err)
	}
	r2.Close()
	snap := r2.FinalHistory()

	objects := writeN(t, r1, k2, "b")
	if !WaitQuiesced([]*Node{r0, r1}, 30*time.Second) {
		t.Fatal("pair did not quiesce after the delta writes")
	}
	if err := r1.Leave(); err != nil {
		t.Fatal(err)
	}
	r1.Close()
	h1 := r1.FinalHistory()

	r2b := bootNode(t, 2, 3, func(cfg *Config) {
		cfg.Restore = &snap
		cfg.Join = map[model.ReplicaID]string{0: r0.Addr()}
	})
	if got := r2b.Stats().SyncPulled; got != k2 {
		t.Fatalf("rejoin pulled %d updates, want exactly the missing delta %d", got, k2)
	}
	if !WaitQuiesced([]*Node{r0, r2b}, 30*time.Second) {
		t.Fatalf("cluster did not quiesce after the rejoin; r0=%+v r2=%+v", r0.Stats(), r2b.Stats())
	}
	if err := CheckConverged([]Doer{r0, r2b}, objects); err != nil {
		t.Fatal(err)
	}
	// The rejoin must supersede the Left record: epoch strictly above it.
	for _, m := range r0.Membership() {
		if m.ID == 2 {
			if m.Left {
				t.Fatalf("r0 still sees r2 as left: %+v", m)
			}
			if m.Epoch == 0 {
				t.Fatalf("rejoin did not bump the epoch past the departure: %+v", m)
			}
		}
	}
	auditClean(t, []History{r0.History(), h1, r2b.History()})
}

// TestJoinJSONPinnedFromBinaryCluster covers codec negotiation during
// join: a JSON-pinned joiner syncing from a binary-batching cluster must
// negotiate down per-connection, catch up, and audit clean.
func TestJoinJSONPinnedFromBinaryCluster(t *testing.T) {
	const k = 40
	binary := func(cfg *Config) { cfg.Codec = "binary"; cfg.BatchMax = 8 }
	r0 := bootNode(t, 0, 3, binary)
	r1 := bootNode(t, 1, 3, binary)
	if err := r0.Connect(map[model.ReplicaID]string{1: r1.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := r1.Connect(map[model.ReplicaID]string{0: r0.Addr()}); err != nil {
		t.Fatal(err)
	}
	objects := writeN(t, r1, k, "bin")
	if !WaitQuiesced([]*Node{r0, r1}, 30*time.Second) {
		t.Fatal("pair did not quiesce before the leave")
	}
	if err := r1.Leave(); err != nil {
		t.Fatal(err)
	}
	r1.Close()
	h1 := r1.FinalHistory()

	r2 := bootNode(t, 2, 3, func(cfg *Config) {
		cfg.Codec = "json"
		cfg.Join = map[model.ReplicaID]string{0: r0.Addr()}
	})
	if got := r2.Stats().SyncPulled; got != k {
		t.Fatalf("JSON joiner pulled %d updates, want %d", got, k)
	}
	if !WaitQuiesced([]*Node{r0, r2}, 30*time.Second) {
		t.Fatal("mixed-codec cluster did not quiesce after the join")
	}
	if err := CheckConverged([]Doer{r0, r2}, objects); err != nil {
		t.Fatal(err)
	}
	auditClean(t, []History{r0.History(), h1, r2.History()})
}

// TestJoinRefusedOnDivergentHistory: a joiner whose log disagrees with the
// donor about another origin's prefix must be refused permanently, with
// the divergent leaf range named — silently merging two incompatible
// histories would poison the audit.
func TestJoinRefusedOnDivergentHistory(t *testing.T) {
	const k = 12
	donorA := bootNode(t, 0, 2, nil)
	writeN(t, donorA, k, "worldA")
	r1 := bootNode(t, 1, 2, func(cfg *Config) {
		cfg.Join = map[model.ReplicaID]string{0: donorA.Addr()}
	})
	if !WaitQuiesced([]*Node{donorA, r1}, 30*time.Second) {
		t.Fatal("world A did not quiesce")
	}
	r1.Close()
	snap := r1.FinalHistory()
	donorA.Close()

	donorB := bootNode(t, 0, 2, nil)
	writeN(t, donorB, k, "worldB")
	st := openCausal(t)
	cfg := fastConfig(1, 2, st)
	cfg.Restore = &snap
	cfg.Join = map[model.ReplicaID]string{0: donorB.Addr()}
	nd, err := NewNode(cfg)
	if err == nil {
		nd.Close()
		t.Fatal("join with a divergent origin-0 history was admitted")
	}
	if !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("want a divergence refusal naming the leaf range, got: %v", err)
	}
}

// TestJoinRefusedWithoutOriginalLog: a node that crashed (without leaving)
// and lost its data dir cannot rejoin under the same ID with an empty log
// while the cluster still holds updates it originated — that incarnation's
// history is irreplaceable, and admitting the impostor would fork the
// origin's sequence space.
func TestJoinRefusedWithoutOriginalLog(t *testing.T) {
	r0 := bootNode(t, 0, 2, nil)
	r1 := bootNode(t, 1, 2, nil)
	if err := r0.Connect(map[model.ReplicaID]string{1: r1.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := r1.Connect(map[model.ReplicaID]string{0: r0.Addr()}); err != nil {
		t.Fatal(err)
	}
	writeN(t, r1, 10, "orig")
	if !WaitQuiesced([]*Node{r0, r1}, 30*time.Second) {
		t.Fatal("pair did not quiesce")
	}
	r1.Close() // crash, not leave: the cluster still expects this log to exist

	cfg := fastConfig(1, 2, openCausal(t))
	cfg.Join = map[model.ReplicaID]string{0: r0.Addr()}
	nd, err := NewNode(cfg)
	if err == nil {
		nd.Close()
		t.Fatal("amnesiac rejoin under a live origin was admitted")
	}
	if !strings.Contains(err.Error(), "original log") {
		t.Fatalf("want the original-log refusal, got: %v", err)
	}
}

// TestConnectOffersLiveBacklogToLateJoiner pins the late-connect contract
// for a first-boot node (no Restore): updates recorded before the first
// Connect are part of the live backlog and must be offered to the late
// peer — offering only restored events would strand them forever.
func TestConnectOffersLiveBacklogToLateJoiner(t *testing.T) {
	r0 := bootNode(t, 0, 2, nil)
	objects := writeN(t, r0, 25, "early")

	r1 := bootNode(t, 1, 2, nil)
	if err := r0.Connect(map[model.ReplicaID]string{1: r1.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := r1.Connect(map[model.ReplicaID]string{0: r0.Addr()}); err != nil {
		t.Fatal(err)
	}
	if !WaitQuiesced([]*Node{r0, r1}, 30*time.Second) {
		t.Fatalf("late-connected pair did not quiesce; r0=%+v r1=%+v", r0.Stats(), r1.Stats())
	}
	if err := CheckConverged([]Doer{r0, r1}, objects); err != nil {
		t.Fatal(err)
	}
	auditClean(t, []History{r0.History(), r1.History()})
}

// TestSupervisorChurnScheduleAuditsClean runs a generated schedule that
// mixes a crash window with a leave→join window on a live TCP cluster
// under load: the departed node must rejoin through the membership path
// (tJoin + anti-entropy), and the run must quiesce, converge, and audit
// clean.
func TestSupervisorChurnScheduleAuditsClean(t *testing.T) {
	st := openCausal(t)
	const n = 3
	em := fault.NewNetem(n)
	obs := fault.NewObserver(n)
	base := Config{
		Store: st, Seed: 23,
		DialTimeout:    time.Second,
		DialBackoffMin: 5 * time.Millisecond,
		DialBackoffMax: 100 * time.Millisecond,
		RetransmitMin:  25 * time.Millisecond,
		RetransmitMax:  250 * time.Millisecond,
		GossipInterval: 50 * time.Millisecond,
		Observer:       obs,
	}
	sup, err := NewSupervisor(base, n, em, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	sched := fault.Generate(fault.Config{Seed: 23, N: n, Steps: 80, Partitions: 1, Crashes: 1, LinkFaults: 1, Churns: 1})
	if err := sched.CheckBalanced(); err != nil {
		t.Fatalf("generated schedule unbalanced: %v", err)
	}
	objects := []model.ObjectID{"x", "y", "z"}

	var wg sync.WaitGroup
	schedErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		schedErr <- sup.RunSchedule(sched)
	}()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 60; i++ {
				obj := objects[rng.Intn(len(objects))]
				op := model.Read()
				if rng.Intn(2) == 0 {
					op = model.Write(model.Value(fmt.Sprintf("w%d.%d", w, i)))
				}
				// Downtime errors are expected while a victim is away.
				_, _ = sup.Do(w%n, obj, op)
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if err := <-schedErr; err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if leaves, joins := sup.Churn(); leaves != 1 || joins != 1 {
		t.Fatalf("leaves/joins = %d/%d, want 1/1", leaves, joins)
	}
	m := obs.Metrics()
	if m.Leaves != 1 || m.Joins != 1 {
		t.Fatalf("observer leaves/joins = %d/%d, want 1/1", m.Leaves, m.Joins)
	}

	live := sup.Nodes()
	if len(live) != n {
		t.Fatalf("%d nodes live after schedule, want %d", len(live), n)
	}
	if !WaitQuiesced(live, 30*time.Second) {
		for _, nd := range live {
			t.Logf("r%d stats: %+v", nd.ID(), nd.Stats())
		}
		t.Fatal("cluster did not quiesce after the churn schedule")
	}
	doers := make([]Doer, n)
	for i := 0; i < n; i++ {
		doers[i] = sup.Doer(i)
	}
	if err := CheckConverged(doers, objects); err != nil {
		t.Fatal(err)
	}
	hists, err := sup.Histories()
	if err != nil {
		t.Fatal(err)
	}
	auditClean(t, hists)
	for _, nd := range live {
		if v := nd.Violations(); len(v) != 0 {
			t.Fatalf("r%d property violations: %v", nd.ID(), v)
		}
	}
}
