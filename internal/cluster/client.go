package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/wire"
)

// Client is a synchronous wire client for one node: operations, stats, and
// history downloads over a single connection. Safe for concurrent use (the
// protocol is strict request/response, so calls serialize on a mutex —
// loadgen opens one Client per simulated client).
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	maxFrame int
	nextReq  uint64
}

// Dial connects a client to a node.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, maxFrame: wire.DefaultMaxFrame}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip writes one frame and reads one reply of the expected type,
// returning the reply's reader positioned after the type tag.
func (c *Client) roundTrip(req []byte, wantType uint64, replyMax int) (*wire.Reader, error) {
	if _, err := wire.WriteFrame(c.conn, req, c.maxFrame); err != nil {
		return nil, fmt.Errorf("cluster: client write: %w", err)
	}
	b, err := wire.ReadFrame(c.conn, replyMax)
	if err != nil {
		return nil, fmt.Errorf("cluster: client read: %w", err)
	}
	r := wire.NewReader(b)
	if typ := r.Uvarint(); r.Err() != nil || typ != wantType {
		return nil, fmt.Errorf("cluster: unexpected reply frame type %d (want %d)", r.Uvarint(), wantType)
	}
	return r, nil
}

// Do performs one operation at the node and returns its response.
func (c *Client) Do(obj model.ObjectID, op model.Operation) (model.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextReq++
	id := c.nextReq
	r, err := c.roundTrip(encodeRequest(id, obj, op), tResponse, c.maxFrame)
	if err != nil {
		return model.Response{}, err
	}
	gotID, resp, err := decodeResponse(r)
	if err != nil {
		return model.Response{}, fmt.Errorf("cluster: bad response frame: %w", err)
	}
	if gotID != id {
		return model.Response{}, fmt.Errorf("cluster: response for request %d, want %d", gotID, id)
	}
	return resp, nil
}

// Stats fetches the node's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, err := c.roundTrip(encodeEmpty(tStats), tStatsResp, c.maxFrame)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	data := r.String()
	if err := r.Err(); err != nil {
		return Stats{}, fmt.Errorf("cluster: bad stats frame: %w", err)
	}
	if err := json.Unmarshal([]byte(data), &s); err != nil {
		return Stats{}, fmt.Errorf("cluster: decode stats: %w", err)
	}
	return s, nil
}

// History downloads the node's recorded local history for auditing.
func (c *Client) History() (History, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, err := c.roundTrip(encodeEmpty(tHistory), tHistoryResp, historyMaxFrame)
	if err != nil {
		return History{}, err
	}
	var h History
	data := r.String()
	if err := r.Err(); err != nil {
		return History{}, fmt.Errorf("cluster: bad history frame: %w", err)
	}
	if err := json.Unmarshal([]byte(data), &h); err != nil {
		return History{}, fmt.Errorf("cluster: decode history: %w", err)
	}
	return h, nil
}
