package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/wire"
)

// Client is a synchronous wire client for one node: operations, stats, and
// history downloads over a single connection. Safe for concurrent use (the
// protocol is strict request/response, so calls serialize on a mutex —
// loadgen opens one Client per simulated client).
//
// Structured requests (Stats, History) carry the client's codec preference;
// the node answers binary when both sides prefer it and JSON otherwise, and
// the client accepts either reply form regardless of what it asked for — so
// one client binary works against nodes of both protocol versions.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	maxFrame  int
	nextReq   uint64
	codec     wire.CodecID
	opTimeout time.Duration
}

// Dial connects a client to a node.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, maxFrame: wire.DefaultMaxFrame, codec: wire.CodecBinary}, nil
}

// SetCodec sets the codec the client asks structured replies in. The
// default is binary; "json" pins the v1 fallback (useful against old nodes
// in tests, and for humans reading packet captures).
func (c *Client) SetCodec(name string) error {
	codec, ok := wire.CodecByName(name)
	if !ok {
		return fmt.Errorf("cluster: unknown wire codec %q (have %v)", name, wire.CodecNames())
	}
	c.mu.Lock()
	c.codec = codec.ID()
	c.mu.Unlock()
	return nil
}

// SetOpTimeout bounds each subsequent operation's full round trip (write
// plus reply read) with a connection deadline. Zero — the default —
// disables the bound for compatibility: convergence tests legitimately
// block in Do while a partition heals. Interactive and load-generation
// callers should set one so a wedged node (accepting but never replying)
// cannot hang them forever.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	c.opTimeout = d
	c.mu.Unlock()
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip writes one frame and reads one reply whose type is in want,
// returning the reply's reader positioned after the type tag plus the type
// it got.
func (c *Client) roundTrip(req []byte, replyMax int, want ...uint64) (*wire.Reader, uint64, error) {
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if _, err := wire.WriteFrame(c.conn, req, c.maxFrame); err != nil {
		return nil, 0, fmt.Errorf("cluster: client write: %w", err)
	}
	b, err := recvFrame(c.conn, replyMax)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: client read: %w", err)
	}
	r := wire.NewReader(b)
	typ := r.Uvarint()
	if r.Err() == nil {
		for _, w := range want {
			if typ == w {
				return r, typ, nil
			}
		}
	}
	return nil, 0, fmt.Errorf("cluster: unexpected reply frame type %d (want %v)", typ, want)
}

// Do performs one operation at the node and returns its response.
func (c *Client) Do(obj model.ObjectID, op model.Operation) (model.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextReq++
	id := c.nextReq
	r, _, err := c.roundTrip(encodeRequest(id, obj, op), c.maxFrame, tResponse)
	if err != nil {
		return model.Response{}, err
	}
	gotID, resp, err := decodeResponse(r)
	if err != nil {
		return model.Response{}, fmt.Errorf("cluster: bad response frame: %w", err)
	}
	if gotID != id {
		return model.Response{}, fmt.Errorf("cluster: response for request %d, want %d", gotID, id)
	}
	return resp, nil
}

// Stats fetches the node's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, typ, err := c.roundTrip(encodeStructuredReq(tStats, c.codec, wire.CompFlate), c.maxFrame, tStatsResp, tStatsRespB)
	if err != nil {
		return Stats{}, err
	}
	if typ == tStatsRespB {
		s, err := decodeStats(r)
		if err != nil {
			return Stats{}, fmt.Errorf("cluster: bad stats frame: %w", err)
		}
		return s, nil
	}
	var s Stats
	data := r.String()
	if err := r.Err(); err != nil {
		return Stats{}, fmt.Errorf("cluster: bad stats frame: %w", err)
	}
	if err := json.Unmarshal([]byte(data), &s); err != nil {
		return Stats{}, fmt.Errorf("cluster: decode stats: %w", err)
	}
	return s, nil
}

// History downloads the node's recorded local history for auditing (shard
// 0's projection on a sharded node — see ShardHistory).
func (c *Client) History() (History, error) {
	return c.ShardHistory(0)
}

// ShardHistory downloads one shard's recorded local history. The shard
// index trails the request's negotiation fields, so an old single-shard
// node ignores it and answers its whole history — which is shard 0's
// projection exactly.
func (c *Client) ShardHistory(shard int) (History, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, typ, err := c.roundTrip(encodeStructuredReqShard(tHistory, c.codec, wire.CompFlate, uint64(shard)), historyMaxFrame, tHistoryResp, tHistoryRespB)
	if err != nil {
		return History{}, err
	}
	if typ == tHistoryRespB {
		h, err := decodeHistory(r)
		if err != nil {
			return History{}, fmt.Errorf("cluster: bad history frame: %w", err)
		}
		return h, nil
	}
	var h History
	data := r.String()
	if err := r.Err(); err != nil {
		return History{}, fmt.Errorf("cluster: bad history frame: %w", err)
	}
	if err := json.Unmarshal([]byte(data), &h); err != nil {
		return History{}, fmt.Errorf("cluster: decode history: %w", err)
	}
	return h, nil
}
