// Package cluster runs the paper's replicated data stores over real TCP
// connections. Each Node wraps one store.Replica behind a single-goroutine
// event loop — preserving the §2 single-threaded state-machine contract —
// and exchanges the replica's broadcast messages with its peers through a
// length-framed protocol (internal/wire) that provides reliable eventual
// delivery: per-peer unacked queues, cumulative acknowledgements,
// retransmission with exponential backoff, and reconnection on failure.
// Unlike the lossy schedules internal/sim can produce (see sim.ErrLossyRun),
// the transport makes Definition 3 hold on a network that drops and resets
// connections, so quiescence still owes convergence (Lemma 3).
//
// Every do, send, and receive event is recorded locally with a Lamport
// timestamp. After a run, the per-node histories merge into a concrete
// execution (MergeHistories) and a derived abstract execution (BuildAudit)
// that replay through execution.CheckWellFormed, consistency.CheckCausal,
// and the §4 property checkers — the same audit pipeline the simulator
// applies in-process, now spanning processes and machines.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/livecheck"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/wire"
)

// ErrClosed is returned by operations on a node that has shut down.
var ErrClosed = errors.New("cluster: node closed")

// Config describes one node of a cluster.
type Config struct {
	// ID is this node's replica ID (0-based, unique in the cluster).
	ID model.ReplicaID
	// N is the cluster size.
	N int
	// Store builds the replica this node serves.
	Store store.Store
	// Listen is the TCP address to listen on ("127.0.0.1:0" for tests).
	Listen string
	// Peers maps peer replica IDs to their listen addresses. May be left
	// nil and supplied later via Connect (e.g. when addresses are only
	// known after every listener is up).
	Peers map[model.ReplicaID]string

	// Seed seeds the per-peer jitter streams (redial and retransmission
	// timing), split per (node, peer) with gen.SplitSeed: runs with the
	// same seed reproduce retransmission timing. Zero is a valid seed.
	Seed int64
	// Faults, when non-nil, is the shared in-process network emulator:
	// replication connections are wrapped on both the dial side (updates)
	// and the accept side (acks), so the emulator's partitions, cuts, and
	// per-link shaping windows apply to this node's links.
	Faults *fault.Netem
	// Restore, when non-nil, reloads a previous incarnation's recorded
	// history before serving: the replica state is rebuilt by replaying
	// the events, the Lamport clock and sequence counters resume where
	// they left off, and every past broadcast is re-offered to the peers
	// (receivers deduplicate by cumulative sequence number). This is the
	// rejoin half of a fail-stop crash whose durable state is the local
	// event log.
	Restore *History
	// Journal, when non-nil, is invoked on the event loop with each
	// do/send/receive event as it is appended to the local history, and
	// must make the event durable before returning (internal/durable
	// fsyncs a CRC-framed record). Because the call happens in the same
	// event-loop turn that records the event — before the update's
	// acknowledgement or the client's response leaves the node — an event
	// any peer holds an ack for is always in the journal. A Journal error
	// fail-stops the node: it suppresses the pending ack, refuses further
	// operations, and closes, because a replica that cannot persist must
	// not promise delivery. Events replayed via Restore are NOT
	// re-journaled (they came from the journal).
	Journal func(Event) error
	// Storage, when non-nil, supplies Journal and Restore for each
	// incarnation from durable per-node storage (mutually exclusive with
	// setting either directly): NewNode opens it before serving and closes
	// it after the event loop exits. The Supervisor threads it through
	// crash/restart directives, so chaos schedules exercise the on-disk
	// recovery path instead of handing histories through memory.
	Storage NodeStorage
	// Observer, when non-nil, receives transport-level chaos metrics
	// (retransmits, reconnects, dup/gap frames) from this node; the
	// supervisor additionally reports applied directives to it. All
	// Observer methods are nil-safe, so the field is threaded unguarded.
	Observer *fault.Observer
	// Tap, when non-nil, receives every event this node records — do,
	// send, receive — in the same event-loop turn that records it,
	// immediately after the journal (if any) accepted it, so the streamed
	// prefix never runs ahead of the durable log and a restart can never
	// regress the stream. Events replayed via Restore are not re-tapped
	// (their first recording was); sends re-minted during restore are new
	// events and are. The callback runs on the node's event loop: it must
	// return quickly and must not call back into the node. Intended for
	// internal/livecheck; the Supervisor copies it into every restart
	// incarnation like the rest of the base config.
	Tap func(livecheck.Event)

	// Join, when non-nil, lists seed nodes (id → address) to join the
	// cluster through instead of (or in addition to) static Peers: NewNode
	// dials a seed, announces itself with a tJoin frame, adopts the seed's
	// membership view, catches up on missing history via Merkle
	// anti-entropy (pulling only the ranges its durable log lacks), and
	// only then enters normal replication. NewNode blocks until one seed
	// admits the node or a permanent refusal (divergent or lost history)
	// aborts it.
	Join map[model.ReplicaID]string
	// Epoch is this incarnation's membership epoch. Leave/rejoin cycles
	// need strictly increasing epochs; a joiner discovering a record of
	// itself at an equal or higher epoch bumps past it automatically, so
	// callers can normally leave this zero.
	Epoch uint64
	// GossipInterval paces the membership gossip loop (default 200ms).
	// Gossip only runs once the node is membership-dynamic: it joined via
	// Join, was asked to Leave, or heard a tJoin/tGossip frame. A static
	// cluster never gossips.
	GossipInterval time.Duration
	// SyncChunkDelay, when positive, makes this node pause between
	// anti-entropy range chunks it serves to a joiner — a test knob that
	// holds a sync open long enough to kill -9 the joiner mid-pull.
	SyncChunkDelay time.Duration
	// SyncWindow is the credit window this node requests when pulling
	// anti-entropy ranges as a joiner: how many unacked chunks the donor
	// may keep in flight toward it (default 8; 1 is the old stop-and-wait,
	// one round-trip per chunk). Every chunk is still applied and
	// journaled before its ack leaves, whatever the window — the window
	// pipelines the transfer, not the durability.
	SyncWindow int
	// Tree, when non-nil, is the Merkle forest the durable layer maintains
	// over this node's journaled events (durable.Log hashes each update in
	// the same turn that fsyncs it, and checkpoints the forest alongside
	// snapshots). When nil, the node builds and maintains its own in-memory
	// forest. Either way the forest backs digest exchange and range serving
	// for joining peers. Storage supplies it together with Journal/Restore.
	Tree *membership.Forest

	// Codec names this node's preferred wire codec ("json", "binary").
	// Empty means the store's own preference: stores implementing
	// store.PayloadCodec get the compact binary codec, the rest the JSON
	// fallback. The preference is an upper bound, not a demand — each
	// replication connection negotiates down to what both ends speak via
	// the hello exchange, so a cluster mixing codecs still interoperates.
	Codec string
	// BatchMax caps how many queued updates coalesce into one tBatch frame
	// on a binary-codec connection (default 64; negative disables batching
	// so every update travels as its own frame even on binary links).
	BatchMax int
	// Compress names this node's preferred per-frame compression for
	// large transfers ("flate", "none"; empty means flate). Like Codec it
	// is an offer, not a demand: each connection negotiates min-wins on
	// the hello/join exchange, so a peer that never offers (or a pre-v4
	// peer that cannot) pins the connection to none. Only bulk frames over
	// a size floor are ever compressed — see compress.go.
	Compress string

	// MaxFrame bounds replication and request frames (wire.DefaultMaxFrame
	// if zero); history transfers use the larger historyMaxFrame.
	MaxFrame int
	// DialTimeout bounds one TCP dial attempt.
	DialTimeout time.Duration
	// DialBackoffMin/Max bound the reconnect backoff.
	DialBackoffMin, DialBackoffMax time.Duration
	// RetransmitMin/Max bound the unacked-update retransmission backoff.
	RetransmitMin, RetransmitMax time.Duration
	// WriteTimeout bounds one frame write.
	WriteTimeout time.Duration
}

// NodeStorage provides per-incarnation durable storage for a node's
// recorded history (implemented by durable.Storage). Open is called once
// per incarnation, before the node serves anything: journal persists each
// newly recorded event, restore is the recovered history of the previous
// incarnation (nil on first boot), and closeLog is invoked after the event
// loop has exited.
type NodeStorage interface {
	Open(id model.ReplicaID, n int, storeName string) (journal func(Event) error, restore *History, tree *membership.Forest, closeLog func() error, err error)
}

func (c Config) withDefaults() Config {
	if c.MaxFrame == 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.BatchMax == 0 {
		c.BatchMax = 64
	}
	def := func(d *time.Duration, v time.Duration) {
		if *d == 0 {
			*d = v
		}
	}
	def(&c.DialTimeout, 2*time.Second)
	def(&c.DialBackoffMin, 50*time.Millisecond)
	def(&c.DialBackoffMax, 2*time.Second)
	def(&c.RetransmitMin, 200*time.Millisecond)
	def(&c.RetransmitMax, 2*time.Second)
	def(&c.WriteTimeout, 5*time.Second)
	def(&c.GossipInterval, 200*time.Millisecond)
	if c.SyncWindow == 0 {
		c.SyncWindow = 8
	}
	if c.SyncWindow < 1 {
		c.SyncWindow = 1
	}
	return c
}

// Stats is a point-in-time snapshot of a node's counters, served to
// clients over the wire (cmd/loadgen aggregates them into its report).
// The snapshot is coherent: every field is captured in one event-loop
// turn, so Events always equals Ops+Sends+Receives for a node that did
// not restore a prior history, and Quiesced agrees with the counters it
// is reported next to.
type Stats struct {
	Node        model.ReplicaID `json:"node"`
	Store       string          `json:"store"`
	Codec       string          `json:"codec,omitempty"`
	Ops         int64           `json:"ops"`
	Sends       int64           `json:"sends"`
	Receives    int64           `json:"receives"`
	Events      int64           `json:"events"`
	BytesOut    int64           `json:"bytes_out"`
	FramesOut   int64           `json:"frames_out,omitempty"`
	Retransmits int64           `json:"retransmits"`
	Reconnects  int64           `json:"reconnects"`
	DupFrames   int64           `json:"dup_frames"`
	GapFrames   int64           `json:"gap_frames"`
	Violations  int             `json:"violations"`
	Quiesced    bool            `json:"quiesced"`
	// Members is how many nodes this node's membership view currently
	// considers alive (including itself).
	Members int `json:"members,omitempty"`
	// SyncPulled counts updates this node applied from anti-entropy range
	// pulls while joining; SyncServed counts updates it shipped to joiners.
	// The pair is the byte-range evidence that a join moved only the
	// missing ranges, not the whole log.
	SyncPulled int64 `json:"sync_pulled,omitempty"`
	SyncServed int64 `json:"sync_served,omitempty"`
	// FailedLinks counts replication links that fail-stopped on a terminal
	// sender error (an update the frame limit can never carry). A non-zero
	// value means some peer will not converge through this node's direct
	// link; the node itself keeps serving.
	FailedLinks int64 `json:"failed_links,omitempty"`
}

// Node is one replica of a TCP-backed cluster.
type Node struct {
	cfg     Config
	replica store.Replica
	// reportsVis caches whether the replica implements store.VisReporter:
	// only then do recorded do events carry a frontier (an absent report is
	// recorded as absent, not as an all-zero claim).
	reportsVis bool
	checker    *store.PropertyChecker
	ln         net.Listener
	// codec is this node's resolved codec preference (cfg.Codec, else the
	// store's own declaration via store.PayloadCodec). Connections negotiate
	// down from it, never up.
	codec wire.Codec
	// comp is this node's resolved compression preference (from
	// cfg.Compress), negotiated down per connection the same way.
	comp uint64

	calls chan func()
	done  chan struct{}
	wg    sync.WaitGroup

	// closeJournal, when non-nil, closes the NodeStorage log; it runs in
	// Close after the event loop has exited (no Appends can follow it).
	closeJournal func() error

	// State below is owned by the event loop goroutine.
	lamport   uint64
	seq       uint64   // this node's broadcast sequence counter
	delivered []uint64 // per-origin cumulative applied broadcast seq
	frontier  []uint64 // per-origin visible store-dot prefix
	events    []Event
	// jerr latches the first journal failure. Once set, the node is
	// fail-stopping: no further acks are written, operations error, and an
	// async Close is already underway.
	jerr error
	// updates indexes every broadcast update this node holds, per origin in
	// seq order (updates[o][i].Seq == i+1): its own live backlog — what
	// Connect offers a new link, so a late-connecting peer sees post-boot
	// writes too — plus everything received, which is what anti-entropy
	// range serving reads. Payloads are shared with the recorded events
	// and immutable once appended. Loop-owned.
	updates [][]protoUpdate
	// tree is the Merkle forest over updates, backing digest exchange with
	// joiners. treeOwned means this node appends each update's hash itself
	// (in the same loop turn that records it); otherwise cfg.Tree was
	// supplied and the durable layer hashes on journal append — same turn,
	// different owner, never both. Loop-owned after NewNode.
	tree      *membership.Forest
	treeOwned bool

	// view is this node's convergent membership picture. Internally locked;
	// epoch is this incarnation's announcement epoch.
	view  *membership.View
	epoch atomic.Uint64
	// dynamic flips once membership is in play (Join config, Leave, or a
	// tJoin/tGossip heard) and starts the gossip loop; static clusters
	// never pay for it.
	dynamic    atomic.Bool
	syncPulled atomic.Int64
	syncServed atomic.Int64

	peerMu sync.Mutex
	peers  map[model.ReplicaID]*peerSender

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // accepted connections

	ops       atomic.Int64
	sends     atomic.Int64
	receives  atomic.Int64
	bytesOut  atomic.Int64
	framesOut atomic.Int64
	dupFrames atomic.Int64
	gapFrames atomic.Int64

	closeOnce sync.Once
}

// NewNode opens the listener, starts the event loop, and — if cfg.Peers is
// set — starts the replication links. It does not block on peers being up:
// links dial in the background and retry until the peer appears.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("cluster: Config.Store is required")
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("cluster: invalid cluster size %d", cfg.N)
	}
	if int(cfg.ID) < 0 || int(cfg.ID) >= cfg.N {
		return nil, fmt.Errorf("cluster: node ID r%d outside cluster of %d", cfg.ID, cfg.N)
	}
	codecName := cfg.Codec
	if codecName == "" {
		codecName = store.PreferredWireCodec(cfg.Store)
	}
	codec, ok := wire.CodecByName(codecName)
	if !ok {
		if cfg.Codec != "" {
			// An explicit misspelling is a config error; only a store's own
			// unknown declaration degrades silently to the fallback.
			return nil, fmt.Errorf("cluster: unknown wire codec %q (have %v)", cfg.Codec, wire.CodecNames())
		}
		codec = wire.JSON
	}
	comp := wire.CompFlate
	switch cfg.Compress {
	case "", "flate":
	case "none":
		comp = wire.CompNone
	default:
		return nil, fmt.Errorf("cluster: unknown compression %q (have none, flate)", cfg.Compress)
	}
	var closeJournal func() error
	if cfg.Storage != nil {
		if cfg.Journal != nil || cfg.Restore != nil {
			return nil, errors.New("cluster: Config.Storage is mutually exclusive with Journal/Restore")
		}
		journal, restored, tree, closeLog, err := cfg.Storage.Open(cfg.ID, cfg.N, cfg.Store.Name())
		if err != nil {
			return nil, fmt.Errorf("cluster: open storage for r%d: %w", cfg.ID, err)
		}
		cfg.Journal = journal
		cfg.Restore = restored
		cfg.Tree = tree
		closeJournal = closeLog
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		if closeJournal != nil {
			closeJournal()
		}
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Listen, err)
	}
	replica := cfg.Store.NewReplica(cfg.ID, cfg.N)
	_, reportsVis := replica.(store.VisReporter)
	n := &Node{
		cfg:        cfg,
		replica:    replica,
		reportsVis: reportsVis,
		checker:    store.NewPropertyChecker(replica),
		ln:         ln,
		codec:      codec,
		comp:       comp,
		calls:      make(chan func()),
		done:       make(chan struct{}),
		delivered:  make([]uint64, cfg.N),
		frontier:   make([]uint64, cfg.N),
		updates:    make([][]protoUpdate, cfg.N),
		peers:      make(map[model.ReplicaID]*peerSender),
		conns:      make(map[net.Conn]struct{}),
		view:       membership.NewView(),
	}
	n.closeJournal = closeJournal
	n.epoch.Store(cfg.Epoch)
	if n.tree = cfg.Tree; n.tree == nil {
		n.tree = membership.NewForest(cfg.N)
		n.treeOwned = true
	}
	// Seed the view: self plus every statically named peer, at epoch 0 —
	// later gossip (with real epochs) supersedes these placeholders.
	n.view.Merge(membership.Member{ID: int(cfg.ID), Addr: n.Addr(), Epoch: cfg.Epoch})
	for id, addr := range cfg.Peers {
		n.view.Merge(membership.Member{ID: int(id), Addr: addr})
	}
	if cfg.Restore != nil {
		if err := n.restore(cfg.Restore); err != nil {
			ln.Close()
			if closeJournal != nil {
				closeJournal()
			}
			return nil, err
		}
	}
	n.wg.Add(2)
	go n.loop()
	go n.acceptLoop()
	if cfg.Join != nil {
		// Join owns link setup: it syncs, announces, and connects to every
		// alive member (statically named peers were merged into the view
		// above), so the static Connect below would only race it.
		if err := n.join(); err != nil {
			n.Close()
			return nil, err
		}
	} else if cfg.Peers != nil {
		if err := n.Connect(cfg.Peers); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// Addr returns the listener's address (resolving ":0" ports).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's replica ID.
func (n *Node) ID() model.ReplicaID { return n.cfg.ID }

// Connect starts replication links to the given peers. Each link dials in
// the background with backoff, so Connect succeeds even while peers are
// still coming up. A new link is offered this node's full live backlog —
// every broadcast it has ever recorded, not just what a restore left
// unacked — so a peer connected after boot still receives the post-boot
// writes. The offer is enqueued in one event-loop turn (no broadcast can
// interleave), and costs little on reconnects: the peer's v3 hello ack
// carries its delivered watermark, pruning the queue before the first
// send. Receivers deduplicate by cumulative seq regardless.
func (n *Node) Connect(peers map[model.ReplicaID]string) error {
	return n.connect(peers, false)
}

func (n *Node) connect(peers map[model.ReplicaID]string, skipLinked bool) error {
	var err error
	if e := n.inLoop(func() { err = n.connectInLoop(peers, skipLinked) }); e != nil {
		return e
	}
	return err
}

// connectInLoop validates and starts the links on the event loop, so the
// full-backlog offer and the peer-map insertion happen atomically with
// respect to broadcastPending. (It must not be called while holding
// peerMu: the loop itself takes it via allPeers.)
func (n *Node) connectInLoop(peers map[model.ReplicaID]string, skipLinked bool) error {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	for id := range peers {
		if id == n.cfg.ID {
			return fmt.Errorf("cluster: r%d listed as its own peer", id)
		}
		if int(id) < 0 || int(id) >= n.cfg.N {
			return fmt.Errorf("cluster: peer r%d outside cluster of %d", id, n.cfg.N)
		}
		if _, dup := n.peers[id]; dup && !skipLinked {
			return fmt.Errorf("cluster: duplicate link to r%d", id)
		}
	}
	for id, addr := range peers {
		if _, dup := n.peers[id]; dup {
			continue
		}
		n.view.Merge(membership.Member{ID: int(id), Addr: addr})
		p := newPeerSender(n, id, addr)
		for _, u := range n.updates[n.cfg.ID] {
			p.enqueue(u)
		}
		n.peers[id] = p
		n.wg.Add(1)
		go p.run()
	}
	return nil
}

// restore replays a previous incarnation's history into the fresh replica
// before the node serves anything: do events re-execute (the replica is the
// deterministic state machine of §2, so replay reproduces the state), send
// events drain the outbox and rebuild the broadcast sequence counter, and
// receive events re-apply their recorded payloads and rebuild the
// per-origin delivery counters. The events themselves are kept verbatim, so
// the restarted node's History is the crash-surviving log plus whatever it
// records next, and the Lamport clock resumes past everything restored.
// Runs before the event-loop goroutine starts; no locking needed.
func (n *Node) restore(h *History) error {
	if h.Node != n.cfg.ID {
		return fmt.Errorf("cluster: restoring r%d's history into r%d", h.Node, n.cfg.ID)
	}
	if h.N != n.cfg.N {
		return fmt.Errorf("cluster: restored history is for a cluster of %d, node configured for %d", h.N, n.cfg.N)
	}
	for i, ev := range h.Events {
		switch ev.Kind {
		case model.ActDo:
			obj, op := ev.Object, ev.Op
			n.checker.CheckDo(obj, op, func() model.Response { return n.replica.Do(obj, op) })
		case model.ActSend:
			if ev.Origin != n.cfg.ID {
				return fmt.Errorf("cluster: restored send event %d claims origin r%d", i, ev.Origin)
			}
			n.replica.OnSend()
			n.seq = ev.Seq
			if err := n.noteUpdate(ev.Origin, ev.Seq, ev.Lamport, append([]byte(nil), ev.Payload...)); err != nil {
				return err
			}
		case model.ActReceive:
			if ev.Payload == nil {
				return fmt.Errorf("cluster: restored receive event %d has no payload (history predates payload recording)", i)
			}
			if int(ev.Origin) < 0 || int(ev.Origin) >= n.cfg.N {
				return fmt.Errorf("cluster: restored receive event %d has origin r%d outside cluster", i, ev.Origin)
			}
			payload := ev.Payload
			n.checker.CheckReceive(payload, func() { n.replica.Receive(payload) })
			n.delivered[ev.Origin] = ev.Seq
			if err := n.noteUpdate(ev.Origin, ev.Seq, ev.Lamport, payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: restored event %d has unknown kind %v", i, ev.Kind)
		}
		if ev.Lamport > n.lamport {
			n.lamport = ev.Lamport
		}
		// Replayed events are appended verbatim, NOT via record: they came
		// from the journal, and re-journaling them would duplicate the log.
		n.events = append(n.events, ev)
	}
	// A message pending at crash time was never recorded as sent: mint its
	// send event now (the history stays well-formed — the send follows
	// every restored event) and add it to the live backlog. Minted events
	// are new, so they go through record and reach the journal.
	for {
		p := n.replica.PendingMessage()
		if p == nil {
			break
		}
		payload := append([]byte(nil), p...)
		n.replica.OnSend()
		n.seq++
		n.lamport++
		n.record(Event{
			Kind: model.ActSend, Lamport: n.lamport,
			Origin: n.cfg.ID, Seq: n.seq, Payload: payload,
		})
		if n.jerr != nil {
			return n.jerr
		}
		if err := n.noteUpdate(n.cfg.ID, n.seq, n.lamport, payload); err != nil {
			return err
		}
	}
	return nil
}

// noteUpdate indexes one broadcast update into the per-origin backlog and,
// when this node owns its Merkle forest, hashes it in — always in the same
// turn the update's event is recorded, so backlog, forest, and journal
// never disagree. (With a durable-supplied forest the durable layer hashes
// on journal append instead; appending here too would double-hash.) Runs
// on the event loop, or in restore before the loop starts.
func (n *Node) noteUpdate(origin model.ReplicaID, seq, lamport uint64, payload []byte) error {
	n.updates[origin] = append(n.updates[origin], protoUpdate{Origin: origin, Seq: seq, Lamport: lamport, Payload: payload})
	if n.treeOwned {
		if err := n.tree.Append(int(origin), seq, payload); err != nil {
			return fmt.Errorf("cluster: r%d merkle append: %w", n.cfg.ID, err)
		}
	}
	return nil
}

// noteUpdateInLoop is noteUpdate for event-loop callers, latching a
// failure into jerr (a misaligned forest would corrupt anti-entropy, so
// the node fail-stops like it does on a journal failure).
func (n *Node) noteUpdateInLoop(origin model.ReplicaID, seq, lamport uint64, payload []byte) {
	if err := n.noteUpdate(origin, seq, lamport, payload); err != nil && n.jerr == nil {
		n.jerr = err
		go n.Close()
	}
}

func (n *Node) allPeers() []*peerSender {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	out := make([]*peerSender, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	return out
}

// loop is the event loop: the only goroutine that touches the replica and
// the recorded history, serializing concurrent clients and peer deliveries
// into the single-threaded executions of Definition 1.
func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.calls:
			fn()
		case <-n.done:
			return
		}
	}
}

// inLoop runs fn on the event loop and waits for it to finish. calls is
// unbuffered, so a successful send means the loop goroutine received fn
// and is committed to running it — after that the only correct move is to
// wait for completion. (The previous version also selected on done while
// waiting, so a node closing mid-call could return ErrClosed while the
// loop was still executing fn, and the caller would read the result
// concurrently with the loop writing it.)
func (n *Node) inLoop(fn func()) error {
	ran := make(chan struct{})
	select {
	case n.calls <- func() { fn(); close(ran) }:
		<-ran
		return nil
	case <-n.done:
		return ErrClosed
	}
}

// record appends one event to the local history and, when a journal is
// configured, persists it in the same event-loop turn — before the
// update's ack or the client's response can leave the node, so an
// acknowledged event is always durable. A journal failure fail-stops the
// node (a replica that cannot persist must not promise delivery): the
// error latches into jerr, which suppresses the pending ack and errors
// subsequent operations, and an async Close tears the node down. Runs on
// the event loop (or in restore, before the loop starts).
func (n *Node) record(ev Event) {
	n.events = append(n.events, ev)
	if n.cfg.Journal != nil && n.jerr == nil {
		if err := n.cfg.Journal(ev); err != nil {
			n.jerr = fmt.Errorf("cluster: journal r%d event %d: %w", n.cfg.ID, len(n.events)-1, err)
			go n.Close()
		}
	}
	// Tap after the journal verdict: a fail-stopping node streams nothing
	// it cannot also promise to remember, so the streamed prefix is always
	// a prefix of the durable log.
	if n.cfg.Tap != nil && n.jerr == nil {
		n.cfg.Tap(liveEvent(n.cfg.ID, ev))
	}
}

// liveEvent converts a recorded event for the streaming checker: the
// payload is stripped (the checker never inspects store state) and the
// recording node stamped on. The Frontier slice is shared with the history
// entry, which never mutates it.
func liveEvent(node model.ReplicaID, ev Event) livecheck.Event {
	return livecheck.Event{
		Node: node, Kind: ev.Kind, Lamport: ev.Lamport,
		Object: ev.Object, Op: ev.Op, Rval: ev.Rval,
		Dot: ev.Dot, Frontier: ev.Frontier,
		Origin: ev.Origin, Seq: ev.Seq,
	}
}

// Do applies one client operation at this replica, records the do event
// (with visibility snapshot), and broadcasts any messages the operation
// made pending. Safe for concurrent use.
func (n *Node) Do(obj model.ObjectID, op model.Operation) (model.Response, error) {
	var resp model.Response
	var jerr error
	err := n.inLoop(func() {
		resp = n.doInLoop(obj, op)
		jerr = n.jerr
	})
	if err == nil {
		// A fail-stopping node must not confirm an operation whose event
		// may never have reached the journal.
		err = jerr
	}
	return resp, err
}

func (n *Node) doInLoop(obj model.ObjectID, op model.Operation) model.Response {
	// The counter moves with the event append, inside the loop: a Stats
	// snapshot must never see the op counted but its event missing (or
	// vice versa).
	n.ops.Add(1)
	resp := n.checker.CheckDo(obj, op, func() model.Response { return n.replica.Do(obj, op) })
	n.lamport++
	ev := Event{Kind: model.ActDo, Lamport: n.lamport, Object: obj, Op: op, Rval: resp}
	if op.Kind.IsMutator() {
		if dr, ok := n.replica.(store.DotReporter); ok {
			if d, has := dr.LastDot(); has {
				ev.Dot = d
			}
		}
	}
	n.advanceFrontier()
	if n.reportsVis {
		ev.Frontier = append([]uint64(nil), n.frontier...)
	}
	// Stores without visibility reporting record no frontier at all: an
	// all-zero frontier would claim "this read saw nothing", and BuildAudit
	// would derive read-containment edges from a claim the store never made.
	n.record(ev)
	n.broadcastPending()
	return resp
}

// advanceFrontier pushes each origin's visible prefix forward by probing
// the store's own visibility report. Stores without a VisReporter keep an
// all-zero frontier, which derives the same (vacuous) visibility the
// simulator derives for them.
func (n *Node) advanceFrontier() {
	vr, ok := n.replica.(store.VisReporter)
	if !ok {
		return
	}
	for o := range n.frontier {
		for vr.Sees(model.Dot{Origin: model.ReplicaID(o), Seq: n.frontier[o] + 1}) {
			n.frontier[o]++
		}
	}
}

// broadcastPending drains the replica's outbox: each pending message
// becomes one recorded send event and one update enqueued to every peer
// link. Runs on the event loop.
func (n *Node) broadcastPending() {
	for {
		p := n.replica.PendingMessage()
		if p == nil {
			return
		}
		payload := append([]byte(nil), p...)
		n.replica.OnSend()
		n.seq++
		n.lamport++
		n.record(Event{
			Kind: model.ActSend, Lamport: n.lamport,
			Origin: n.cfg.ID, Seq: n.seq, Payload: payload,
		})
		n.sends.Add(1)
		n.noteUpdateInLoop(n.cfg.ID, n.seq, n.lamport, payload)
		u := protoUpdate{Origin: n.cfg.ID, Seq: n.seq, Lamport: n.lamport, Payload: payload}
		for _, ps := range n.allPeers() {
			ps.enqueue(u)
		}
	}
}

// applyUpdate delivers one replication frame on the event loop and returns
// the cumulative applied seq for the update's origin (the ack value) plus
// whether the ack may be written: false means the journal failed, so the
// receive event backing this ack may not be durable and acknowledging it
// would let the sender prune an update the next incarnation never saw.
// Exactly-once, in-order application falls out of the cumulative counter:
// duplicates re-ack, gaps wait for retransmission to fill them.
func (n *Node) applyUpdate(u protoUpdate) (uint64, bool) {
	next := n.delivered[u.Origin] + 1
	switch {
	case u.Seq < next:
		n.dupFrames.Add(1)
		n.cfg.Observer.AddDupFrames(1)
	case u.Seq > next:
		n.gapFrames.Add(1)
		n.cfg.Observer.AddGapFrames(1)
	default:
		n.checker.CheckReceive(u.Payload, func() { n.replica.Receive(u.Payload) })
		n.delivered[u.Origin] = u.Seq
		if u.Lamport > n.lamport {
			n.lamport = u.Lamport
		}
		n.lamport++
		payload := append([]byte(nil), u.Payload...)
		n.record(Event{
			Kind: model.ActReceive, Lamport: n.lamport,
			Origin: u.Origin, Seq: u.Seq,
			Payload: payload,
		})
		n.receives.Add(1)
		n.noteUpdateInLoop(u.Origin, u.Seq, u.Lamport, payload)
		n.broadcastPending()
	}
	return n.delivered[u.Origin], n.jerr == nil
}

// Quiesced reports whether this node has nothing left to say: no pending
// broadcast and every peer link fully acknowledged. Cluster-wide
// quiescence (Definition 17) is all nodes reporting true — and because
// acks are only written after the receiver applied the update, a stable
// all-quiesced poll really does mean every sent message was delivered.
func (n *Node) Quiesced() bool {
	var pending bool
	if n.inLoop(func() { pending = n.replica.PendingMessage() != nil }) != nil {
		return false
	}
	if pending {
		return false
	}
	for _, p := range n.allPeers() {
		if !p.drained() {
			return false
		}
	}
	return n.viewLinked()
}

// viewLinked reports whether every member this node's view considers alive
// has a replication link. Without it a node could report quiescence while
// still holding updates a known-but-not-yet-linked joiner lacks — the
// drained() condition is vacuous for a link that does not exist yet.
func (n *Node) viewLinked() bool {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	for _, m := range n.view.Alive() {
		if m.ID == int(n.cfg.ID) || m.ID < 0 || m.ID >= n.cfg.N {
			continue
		}
		if _, ok := n.peers[model.ReplicaID(m.ID)]; !ok {
			return false
		}
	}
	return true
}

// Stats snapshots the node's counters coherently: one event-loop turn
// captures the loop-owned counters, the recorded-event count, the checker
// verdicts, the per-peer transport counters, and the quiescence verdict at
// a single instant. (The earlier implementation mixed an inLoop checker
// read with lock-free counter reads taken before and after it, so a
// snapshot could report a quiesced node whose counters predated its last
// delivery.) The quiescence condition is evaluated inline — calling
// Quiesced() here would re-enter the event loop and deadlock.
func (n *Node) Stats() Stats {
	s := Stats{Node: n.cfg.ID, Store: n.cfg.Store.Name(), Codec: n.codec.Name()}
	counters := func() {
		s.Ops = n.ops.Load()
		s.Sends = n.sends.Load()
		s.Receives = n.receives.Load()
		s.BytesOut = n.bytesOut.Load()
		s.FramesOut = n.framesOut.Load()
		s.DupFrames = n.dupFrames.Load()
		s.GapFrames = n.gapFrames.Load()
		s.SyncPulled = n.syncPulled.Load()
		s.SyncServed = n.syncServed.Load()
		s.Members = len(n.view.Alive())
		for _, p := range n.allPeers() {
			s.Retransmits += p.retransmits.Load()
			s.Reconnects += p.reconnects.Load()
			if p.failed.Load() {
				s.FailedLinks++
			}
		}
	}
	err := n.inLoop(func() {
		counters()
		s.Events = int64(len(n.events))
		s.Violations = len(n.checker.Violations())
		quiesced := n.replica.PendingMessage() == nil
		for _, p := range n.allPeers() {
			if !p.drained() {
				quiesced = false
			}
		}
		s.Quiesced = quiesced && n.viewLinked()
	})
	if err != nil {
		// Node closed: the loop is gone, so a coherent snapshot is moot —
		// report the counters' final values (loop-owned state stays zero;
		// reading it here would race with the exiting loop).
		counters()
	}
	return s
}

// Violations returns the §4 property violations the node's checker
// observed (live counterpart of sim.Cluster.PropertyViolations).
func (n *Node) Violations() []*store.PropertyViolation {
	var v []*store.PropertyViolation
	n.inLoop(func() { v = append(v, n.checker.Violations()...) })
	return v
}

// History snapshots the node's recorded local history.
func (n *Node) History() History {
	h := History{Node: n.cfg.ID, N: n.cfg.N, Store: n.cfg.Store.Name()}
	n.inLoop(func() { h.Events = append([]Event(nil), n.events...) })
	return h
}

// FinalHistory returns the recorded history of a node that has been
// Closed: the event loop has exited, the log is frozen, and it can be read
// without a loop turn. This is the durable state a fail-stop crash leaves
// behind — capturing it only after Close means no update can be applied
// (and acknowledged to its sender) after the snapshot, so an acked update
// is always in the log that survives. Calling it on a live node would race
// the loop; it panics instead.
func (n *Node) FinalHistory() History {
	select {
	case <-n.done:
	default:
		panic("cluster: FinalHistory called before Close")
	}
	return History{
		Node: n.cfg.ID, N: n.cfg.N, Store: n.cfg.Store.Name(),
		Events: append([]Event(nil), n.events...),
	}
}

// BreakConnections closes every live dial-side replication connection,
// simulating network resets. Links redial and retransmit; no update is
// lost. Returns how many connections were torn down.
func (n *Node) BreakConnections() int {
	broken := 0
	for _, p := range n.allPeers() {
		p.mu.Lock()
		live := p.conn != nil
		p.mu.Unlock()
		if live {
			p.breakConn()
			broken++
		}
	}
	return broken
}

// Close shuts the node down: stops the event loop, listener, links, and
// open connections, then waits for every goroutine to exit.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		n.ln.Close()
		for _, p := range n.allPeers() {
			p.close()
		}
		n.connMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connMu.Unlock()
		n.wg.Wait()
		// The event loop has exited: no Append can follow, so the journal
		// can close (flushing its final state) without racing the loop.
		if n.closeJournal != nil {
			n.closeJournal()
		}
	})
	return nil
}

func (n *Node) track(c net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	select {
	case <-n.done:
		return false
	default:
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) untrack(c net.Conn) {
	n.connMu.Lock()
	delete(n.conns, c)
	n.connMu.Unlock()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !n.track(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn classifies an inbound connection by its first frame: a tHello
// marks a peer's replication stream; anything else is a client speaking
// request/response.
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer n.untrack(conn)
	defer conn.Close()
	first, err := recvFrame(conn, n.cfg.MaxFrame)
	if err != nil {
		return
	}
	r := wire.NewReader(first)
	switch typ := r.Uvarint(); {
	case r.Err() != nil:
		return
	case typ == tHello:
		if h, err := decodeHello(r); err == nil {
			// Wrap the accept side too: acks written back to this peer
			// travel the reverse link, so an asymmetric cut of this→peer
			// suppresses acknowledgements even while updates flow in.
			if n.cfg.Faults != nil && int(h.From) < n.cfg.N {
				conn = n.cfg.Faults.WrapConn(conn, int(n.cfg.ID), int(h.From))
			}
			if h.Version >= 2 {
				// Seal the negotiation before any update arrives: the dialer
				// streams v1 frames until this ack lands, so an ack lost to a
				// connection reset only ever costs compactness, not data.
				// The delivered watermark lets a v3 dialer prune its
				// full-backlog offer down to what we actually lack.
				var delivered uint64
				if int(h.From) >= 0 && int(h.From) < n.cfg.N {
					if n.inLoop(func() { delivered = n.delivered[h.From] }) != nil {
						return
					}
				}
				chosen := negotiateCodec(n.codec.ID(), h.Codec)
				chosenComp := negotiateComp(n.comp, h.Comp)
				w := wire.GetWriter()
				appendHelloAck(w, chosen, delivered, chosenComp)
				ok := n.writeFrame(conn, w.Bytes(), n.cfg.MaxFrame)
				wire.PutWriter(w)
				if !ok {
					return
				}
			}
			n.serveReplication(conn)
		}
		return
	case typ == tJoin:
		if j, err := decodeJoin(r); err == nil {
			n.serveJoin(conn, j)
		}
		return
	case typ == tGossip:
		if from, ms, err := decodeGossip(r, n.cfg.N); err == nil {
			n.serveGossip(conn, from, ms)
		}
		return
	}
	n.serveClient(conn, first)
}

// serveReplication applies a peer's update stream, answering each frame
// with the cumulative ack for its origin. The ack is written only after
// the event loop applied (or deduplicated) the update — an acked update is
// a delivered update. A tBatch frame applies all its updates in one
// event-loop turn and answers with one cumulative ack — the ack
// coalescing half of the batching win.
func (n *Node) serveReplication(conn net.Conn) {
	for {
		b, err := recvFrame(conn, n.cfg.MaxFrame)
		if err != nil {
			return
		}
		r := wire.NewReader(b)
		var us []protoUpdate
		switch r.Uvarint() {
		case tUpdate:
			u, err := decodeUpdate(r)
			if err != nil {
				return
			}
			us = []protoUpdate{u}
		case tBatch:
			if us, err = decodeBatch(r); err != nil || len(us) == 0 {
				return
			}
		default:
			return
		}
		if int(us[0].Origin) < 0 || int(us[0].Origin) >= n.cfg.N {
			return
		}
		var cum uint64
		var ackable bool
		if n.inLoop(func() {
			for _, u := range us {
				cum, ackable = n.applyUpdate(u)
				if !ackable {
					return
				}
			}
		}) != nil {
			return
		}
		if !ackable {
			// Journal failure: the node is fail-stopping and these updates'
			// durability is unknown — drop the connection without acking so
			// the sender keeps them queued for the next incarnation.
			return
		}
		w := wire.GetWriter()
		appendAck(w, cum)
		ok := n.writeFrame(conn, w.Bytes(), n.cfg.MaxFrame)
		wire.PutWriter(w)
		if !ok {
			return
		}
	}
}

// serveClient answers request/response frames from one client connection.
// tStats/tHistory requests may trail a codec ID after the bare v1 request;
// a binary-codec request earns a binary reply (tStatsRespB/tHistoryRespB),
// anything else — including the bare v1 form — gets the JSON fallback. A
// compression offer may trail the codec (v4): a binary history reply that
// clears the floor then travels as a tCompressed envelope.
func (n *Node) serveClient(conn net.Conn, first []byte) {
	// reqMeta reads the optional trailing codec and compression fields of
	// a structured request and resolves both against this node's own
	// preferences.
	reqMeta := func(r *wire.Reader) (wire.CodecID, uint64) {
		if r.Remaining() == 0 {
			return wire.CodecJSON, wire.CompNone
		}
		codec := negotiateCodec(n.codec.ID(), wire.CodecID(r.Uvarint()))
		if r.Remaining() == 0 {
			return codec, wire.CompNone
		}
		return codec, negotiateComp(n.comp, r.Uvarint())
	}
	frame := first
	for {
		r := wire.NewReader(frame)
		typ := r.Uvarint()
		if r.Err() != nil {
			return
		}
		var reply []byte
		maxFrame := n.cfg.MaxFrame
		replyComp := wire.CompNone
		w := wire.GetWriter()
		switch typ {
		case tRequest:
			reqID, obj, op, err := decodeRequest(r)
			if err != nil {
				wire.PutWriter(w)
				return
			}
			resp, err := n.Do(obj, op)
			if err != nil {
				wire.PutWriter(w)
				return
			}
			reply = encodeResponse(reqID, resp)
		case tStats:
			if codec, _ := reqMeta(r); codec == wire.CodecBinary {
				w.Uvarint(tStatsRespB)
				appendStats(w, n.Stats())
				reply = w.Bytes()
			} else {
				data, err := json.Marshal(n.Stats())
				if err != nil {
					wire.PutWriter(w)
					return
				}
				reply = encodeJSON(tStatsResp, data)
			}
		case tHistory:
			maxFrame = historyMaxFrame
			if codec, comp := reqMeta(r); codec == wire.CodecBinary {
				w.Uvarint(tHistoryRespB)
				if appendHistory(w, n.History()) != nil {
					wire.PutWriter(w)
					return
				}
				reply = w.Bytes()
				replyComp = comp
			} else {
				data, err := json.Marshal(n.History())
				if err != nil {
					wire.PutWriter(w)
					return
				}
				reply = encodeJSON(tHistoryResp, data)
			}
		default:
			wire.PutWriter(w)
			return
		}
		ok := n.writeFrameComp(conn, reply, maxFrame, replyComp)
		wire.PutWriter(w)
		if !ok {
			return
		}
		var err error
		if frame, err = recvFrame(conn, n.cfg.MaxFrame); err != nil {
			return
		}
	}
}

func (n *Node) writeFrame(conn net.Conn, payload []byte, maxFrame int) bool {
	conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
	nBytes, err := wire.WriteFrame(conn, payload, maxFrame)
	n.bytesOut.Add(int64(nBytes))
	n.framesOut.Add(1)
	return err == nil
}

// WaitQuiesced polls until every node reports quiescence twice in a row
// (one clean poll can race an update in flight between an unacked queue
// and the receiving event loop; two consecutive clean polls cannot, since
// acks flow only after application). Returns false on timeout.
func WaitQuiesced(nodes []*Node, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	clean := 0
	for time.Now().Before(deadline) {
		all := true
		for _, n := range nodes {
			if !n.Quiesced() {
				all = false
				break
			}
		}
		if all {
			if clean++; clean >= 2 {
				return true
			}
		} else {
			clean = 0
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}
